#!/bin/sh
# verify.sh — the repo's full verification gate.
#
# Runs vet, a full build, the complete test suite, the race detector over
# the packages with real concurrency (the push engine's pooled scratch
# state, the census worker pool, the journal writer, the throttle
# limiter, the planning service with its client, and the chaos proxy), a
# kill/resume smoke test (a journaled census is SIGKILLed mid-flight and
# resumed, and its output must be byte-identical to an uninterrupted
# run), a pland drain smoke test (degraded serving under an injected
# straggler fault, full-quality serving without it — with a /metrics
# scrape verified after the healthy workload — clean SIGTERM drain,
# and a non-zero exit when the drain window is forced shut), a chaos
# smoke test (three real pland replicas behind fault-injection proxies:
# a partition plus a straggler must not cost availability, and in-flight
# response corruption must never get a plan accepted), and an atlas
# serving smoke test (shapeopt bakes a coarse shape atlas, its dump
# spot-check re-derives cells against the live search, and a pland
# serving from it answers an all-on-lattice loadgen burst with zero
# errors while /metrics proves the search engine never ran). CI and
# pre-commit hooks run exactly this script; it exits non-zero on the
# first failure — no step may be skipped.
set -eux

go vet ./...
go build ./...
go test ./...
go test -race ./internal/push/... ./internal/experiment/... \
    ./internal/journal/... ./internal/throttle/... \
    ./internal/serve/... ./internal/chaos/... ./serve/...

# --- chaos smoke test (~5s) -------------------------------------------
# The replicated-cluster invariants, under the race detector: with one
# of three replicas blackholed and another straggling, every request
# completes within its deadline and ≥80% at full quality; with one
# replica's responses corrupted in flight, zero corrupt plans are
# accepted (client-side VoC re-verification catches every one).
go test -race -count=1 -run 'TestChaosCluster' ./internal/chaos/

# --- kill/resume smoke test (~10s) ------------------------------------
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/pushsearch" ./cmd/pushsearch

# Sized so the census takes ~2s: the kill below reliably lands mid-census.
flags="-n 120 -runs 300 -ratios 3:1:1 -seed 7 -workers 2"

# Uninterrupted baseline (no journal).
"$tmp/pushsearch" $flags > "$tmp/clean.out"

# Journaled run, SIGKILLed mid-census. The kill may land before, during,
# or after the census — every case must leave a resumable (or absent)
# journal behind.
"$tmp/pushsearch" $flags -journal "$tmp/census.jsonl" -resume \
    > "$tmp/killed.out" 2>&1 &
pid=$!
sleep 0.4
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true

# Resume (also creates the journal if the kill won the race) and compare:
# the resumed output must be byte-identical to the uninterrupted run.
"$tmp/pushsearch" $flags -journal "$tmp/census.jsonl" -resume \
    > "$tmp/resumed.out"
cmp "$tmp/clean.out" "$tmp/resumed.out"

# --- pland drain smoke test (~15s) ------------------------------------
# Three scenarios against the planning service:
#   1. injected straggler fault + short deadlines → every answer is the
#      canonical fallback marked Degraded, inside the deadline, and a
#      SIGTERM mid-burst drains clean (exit 0) with the cache flushed;
#   2. healthy server → the same workload comes back full quality;
#   3. a drain window too small for the in-flight request → exit non-zero.
go build -o "$tmp/pland" ./cmd/pland
go build -o "$tmp/loader" ./examples/planner_service

wait_addr() {
    for _ in $(seq 100); do
        [ -s "$1" ] && return 0
        sleep 0.1
    done
    echo "pland never wrote $1" >&2
    return 1
}

# Scenario 1: faulted server, degraded serving, clean drain.
"$tmp/pland" -addr 127.0.0.1:0 -addr-file "$tmp/a1" \
    -fault-straggler 1000 -fault-step 2ms \
    -max-concurrent 8 -max-queue 16 \
    -cache-journal "$tmp/plancache.jsonl" 2> "$tmp/pland1.log" &
p1=$!
wait_addr "$tmp/a1"
url1="http://$(cat "$tmp/a1")"
"$tmp/loader" -url "$url1" -requests 12 -conc 4 -timeout 500ms -expect degraded

"$tmp/loader" -url "$url1" -requests 30 -conc 4 -timeout 500ms \
    > /dev/null 2>&1 &
l1=$!
sleep 0.3
kill -TERM "$p1"
wait "$p1" || { echo "pland dirty drain" >&2; cat "$tmp/pland1.log" >&2; exit 1; }
wait "$l1" || true      # the burst's tail sees 503s once draining — expected
[ -s "$tmp/plancache.jsonl" ]
grep -q "drained clean" "$tmp/pland1.log"

# Scenario 2: healthy server, full-quality serving, clean drain when idle.
# -scrape-metrics additionally pulls the server's /metrics after the
# workload and asserts the Prometheus text parses and carries the
# serving families the burst must have populated (request counts,
# latency histogram, cache, breaker, push-search counters).
"$tmp/pland" -addr 127.0.0.1:0 -addr-file "$tmp/a2" \
    -max-concurrent 8 -max-queue 16 2> "$tmp/pland2.log" &
p2=$!
wait_addr "$tmp/a2"
"$tmp/loader" -url "http://$(cat "$tmp/a2")" -requests 6 -conc 2 \
    -timeout 5s -expect searched -scrape-metrics
kill -TERM "$p2"
wait "$p2" || { echo "idle pland dirty drain" >&2; cat "$tmp/pland2.log" >&2; exit 1; }

# Scenario 3: forced shutdown must be an honest failure, not a hang or a
# fake success.
"$tmp/pland" -addr 127.0.0.1:0 -addr-file "$tmp/a3" \
    -fault-straggler 1000 -fault-step 2ms -drain-timeout 200ms \
    2> "$tmp/pland3.log" &
p3=$!
wait_addr "$tmp/a3"
"$tmp/loader" -url "http://$(cat "$tmp/a3")" -requests 1 -conc 1 -timeout 5s \
    > /dev/null 2>&1 &
l3=$!
sleep 0.4
kill -TERM "$p3"
if wait "$p3"; then
    echo "pland exited 0 despite a forced drain" >&2
    exit 1
fi
wait "$l3" || true

# --- atlas serving smoke test (~10s) -----------------------------------
# The O(1) answer tier end to end: shapeopt bakes a coarse atlas and its
# dump spot-check re-derives cells against the live search (exit 2 on any
# divergence); pland refuses nothing at startup verification, warms every
# cell, and serves a pure on-lattice burst — loadgen fails the run unless
# every request succeeds, pland_atlas_hits_total grew, and
# pland_searched_total / push_runs_total stayed flat (the search engine
# never ran).
go build -o "$tmp/shapeopt" ./cmd/shapeopt
go build -o "$tmp/loadgen" ./cmd/loadgen

"$tmp/shapeopt" -build-atlas "$tmp/atlas.bin" -scale 2 -pr-max 4 -rr-max 3 -n 40
"$tmp/shapeopt" -dump-atlas "$tmp/atlas.bin" -spot 25 > "$tmp/atlas_dump.out"
grep -q "bit-identical to live search" "$tmp/atlas_dump.out"

"$tmp/pland" -addr 127.0.0.1:0 -addr-file "$tmp/a4" \
    -atlas "$tmp/atlas.bin" -atlas-verify 4 \
    -max-concurrent 8 -max-queue 16 2> "$tmp/pland4.log" &
p4=$!
wait_addr "$tmp/a4"
"$tmp/loadgen" -url "http://$(cat "$tmp/a4")" \
    -rate 50 -duration 3s -mix atlas=1 \
    -n 40 -scale 2 -pr-max 4 -rr-max 3 \
    -fail-on-error -metrics-check
kill -TERM "$p4"
wait "$p4" || { echo "atlas pland dirty drain" >&2; cat "$tmp/pland4.log" >&2; exit 1; }
