#!/bin/sh
# verify.sh — the repo's full verification gate.
#
# Runs vet, a full build, the complete test suite, the race detector over
# the packages with real concurrency (the push engine's pooled scratch
# state, the census worker pool, the journal writer, and the throttle
# limiter), and a kill/resume smoke test: a journaled census is SIGKILLed
# mid-flight and resumed, and its output must be byte-identical to an
# uninterrupted run. CI and pre-commit hooks run exactly this script; it
# exits non-zero on the first failure — no step may be skipped.
set -eux

go vet ./...
go build ./...
go test ./...
go test -race ./internal/push/... ./internal/experiment/... \
    ./internal/journal/... ./internal/throttle/...

# --- kill/resume smoke test (~10s) ------------------------------------
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/pushsearch" ./cmd/pushsearch

# Sized so the census takes ~2s: the kill below reliably lands mid-census.
flags="-n 120 -runs 300 -ratios 3:1:1 -seed 7 -workers 2"

# Uninterrupted baseline (no journal).
"$tmp/pushsearch" $flags > "$tmp/clean.out"

# Journaled run, SIGKILLed mid-census. The kill may land before, during,
# or after the census — every case must leave a resumable (or absent)
# journal behind.
"$tmp/pushsearch" $flags -journal "$tmp/census.jsonl" -resume \
    > "$tmp/killed.out" 2>&1 &
pid=$!
sleep 0.4
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true

# Resume (also creates the journal if the kill won the race) and compare:
# the resumed output must be byte-identical to the uninterrupted run.
"$tmp/pushsearch" $flags -journal "$tmp/census.jsonl" -resume \
    > "$tmp/resumed.out"
cmp "$tmp/clean.out" "$tmp/resumed.out"
