#!/bin/sh
# verify.sh — the repo's full verification gate.
#
# Runs vet, a full build, the complete test suite, the race detector over
# the packages with real concurrency (the push engine's pooled scratch
# state, the census worker pool, the journal writer, the throttle
# limiter, the planning service with its client, and the chaos proxy), a
# kill/resume smoke test (a journaled census is SIGKILLed mid-flight and
# resumed, and its output must be byte-identical to an uninterrupted
# run), a pland drain smoke test (degraded serving under an injected
# straggler fault, full-quality serving without it — with a /metrics
# scrape verified after the healthy workload — clean SIGTERM drain,
# and a non-zero exit when the drain window is forced shut), a chaos
# smoke test (three real pland replicas behind fault-injection proxies:
# a partition plus a straggler must not cost availability, and in-flight
# response corruption must never get a plan accepted), and an atlas
# serving smoke test (shapeopt bakes a coarse shape atlas, its dump
# spot-check re-derives cells against the live search, and a pland
# serving from it answers an all-on-lattice loadgen burst with zero
# errors while /metrics proves the search engine never ran), a
# self-tuning drift smoke test (live calibration under an injected 8x
# straggler must re-plan, change the served shape, and never serve the
# invalidated pre-drift plan again), a monotone degradation ramp
# (an open-loop overload sweep to ~3x capacity must walk the shed
# ladder one rung at a time with zero availability loss), and an
# exec-chaos smoke test (a worker killed mid-multiply recovers on the
# survivors via the twoproc re-plan, and a paced mmmsim run SIGKILLed
# mid-multiply resumes from its checkpoint — both bit-identical to the
# serial kij kernel), and an integrity smoke test (ABFT verification
# catches injected single-cell flips and quarantines a deterministically
# corrupting worker as Byzantine, then the full silent-corruption study
# must detect every injection with every product bit-exact), a
# differential-equivalence step (the UniformHockney cost model must
# reproduce the pre-refactor seed goldens byte-for-byte across every
# evaluation path), and a topology-census smoke (shapeopt -winner-map
# must show the 2+1 and 3-island link classes each moving at least one
# winner-map cell off the uniform baseline). CI and pre-commit hooks run
# exactly this script; it exits non-zero on the first failure — no step
# may be skipped.
set -eux

go vet ./...
go build ./...
go test ./...
go test -race ./internal/push/... ./internal/experiment/... \
    ./internal/journal/... ./internal/throttle/... \
    ./internal/serve/... ./internal/chaos/... ./serve/... \
    ./internal/calibrate/... ./internal/exec/... ./internal/sim/...

# --- chaos smoke test (~5s) -------------------------------------------
# The replicated-cluster invariants, under the race detector: with one
# of three replicas blackholed and another straggling, every request
# completes within its deadline and ≥80% at full quality; with one
# replica's responses corrupted in flight, zero corrupt plans are
# accepted (client-side VoC re-verification catches every one).
go test -race -count=1 -run 'TestChaosCluster' ./internal/chaos/

# --- kill/resume smoke test (~10s) ------------------------------------
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/pushsearch" ./cmd/pushsearch

# Sized so the census takes ~2s: the kill below reliably lands mid-census.
flags="-n 120 -runs 300 -ratios 3:1:1 -seed 7 -workers 2"

# Uninterrupted baseline (no journal).
"$tmp/pushsearch" $flags > "$tmp/clean.out"

# Journaled run, SIGKILLed mid-census. The kill may land before, during,
# or after the census — every case must leave a resumable (or absent)
# journal behind.
"$tmp/pushsearch" $flags -journal "$tmp/census.jsonl" -resume \
    > "$tmp/killed.out" 2>&1 &
pid=$!
sleep 0.4
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true

# Resume (also creates the journal if the kill won the race) and compare:
# the resumed output must be byte-identical to the uninterrupted run.
"$tmp/pushsearch" $flags -journal "$tmp/census.jsonl" -resume \
    > "$tmp/resumed.out"
cmp "$tmp/clean.out" "$tmp/resumed.out"

# --- pland drain smoke test (~15s) ------------------------------------
# Three scenarios against the planning service:
#   1. injected straggler fault + short deadlines → every answer is the
#      canonical fallback marked Degraded, inside the deadline, and a
#      SIGTERM mid-burst drains clean (exit 0) with the cache flushed;
#   2. healthy server → the same workload comes back full quality;
#   3. a drain window too small for the in-flight request → exit non-zero.
go build -o "$tmp/pland" ./cmd/pland
go build -o "$tmp/loader" ./examples/planner_service

wait_addr() {
    for _ in $(seq 100); do
        [ -s "$1" ] && return 0
        sleep 0.1
    done
    echo "pland never wrote $1" >&2
    return 1
}

# Scenario 1: faulted server, degraded serving, clean drain.
"$tmp/pland" -addr 127.0.0.1:0 -addr-file "$tmp/a1" \
    -fault-straggler 1000 -fault-step 2ms \
    -max-concurrent 8 -max-queue 16 \
    -cache-journal "$tmp/plancache.jsonl" 2> "$tmp/pland1.log" &
p1=$!
wait_addr "$tmp/a1"
url1="http://$(cat "$tmp/a1")"
"$tmp/loader" -url "$url1" -requests 12 -conc 4 -timeout 500ms -expect degraded

"$tmp/loader" -url "$url1" -requests 30 -conc 4 -timeout 500ms \
    > /dev/null 2>&1 &
l1=$!
sleep 0.3
kill -TERM "$p1"
wait "$p1" || { echo "pland dirty drain" >&2; cat "$tmp/pland1.log" >&2; exit 1; }
wait "$l1" || true      # the burst's tail sees 503s once draining — expected
[ -s "$tmp/plancache.jsonl" ]
grep -q "drained clean" "$tmp/pland1.log"

# Scenario 2: healthy server, full-quality serving, clean drain when idle.
# -scrape-metrics additionally pulls the server's /metrics after the
# workload and asserts the Prometheus text parses and carries the
# serving families the burst must have populated (request counts,
# latency histogram, cache, breaker, push-search counters).
"$tmp/pland" -addr 127.0.0.1:0 -addr-file "$tmp/a2" \
    -max-concurrent 8 -max-queue 16 2> "$tmp/pland2.log" &
p2=$!
wait_addr "$tmp/a2"
"$tmp/loader" -url "http://$(cat "$tmp/a2")" -requests 6 -conc 2 \
    -timeout 5s -expect searched -scrape-metrics
kill -TERM "$p2"
wait "$p2" || { echo "idle pland dirty drain" >&2; cat "$tmp/pland2.log" >&2; exit 1; }

# Scenario 3: forced shutdown must be an honest failure, not a hang or a
# fake success.
"$tmp/pland" -addr 127.0.0.1:0 -addr-file "$tmp/a3" \
    -fault-straggler 1000 -fault-step 2ms -drain-timeout 200ms \
    2> "$tmp/pland3.log" &
p3=$!
wait_addr "$tmp/a3"
"$tmp/loader" -url "http://$(cat "$tmp/a3")" -requests 1 -conc 1 -timeout 5s \
    > /dev/null 2>&1 &
l3=$!
sleep 0.4
kill -TERM "$p3"
if wait "$p3"; then
    echo "pland exited 0 despite a forced drain" >&2
    exit 1
fi
wait "$l3" || true

# --- differential equivalence suite (~5s) ------------------------------
# The cost-model refactor's contract, run explicitly and uncached: every
# evaluation path (Evaluate breakdowns, closed forms, plan JSON) under an
# explicit UniformHockney must be byte-identical to the seed goldens
# generated before the refactor, and the weighted-push property tests
# must hold under the race detector.
go test -count=1 -run 'TestSeedEquivalence|TestPlanSeedEquivalence' . ./internal/model/
go test -race -count=1 -run 'TestWeighted' ./internal/push/

# --- topology census smoke (~3s) ---------------------------------------
# The per-link cost model must be live end to end: each non-uniform
# topology class has to move at least one winner-map cell off the
# uniform baseline (a flat rescale provably cannot — see
# model.TopologySpec).
go build -o "$tmp/shapeopt" ./cmd/shapeopt
"$tmp/shapeopt" -winner-map -alg SCB -rr-max 4 -pr-max 12 -step 1 -n 60 > "$tmp/census.out"
grep -q "winner map: SCB, 3-island topology" "$tmp/census.out"
grep -Eq "class 2\+1: [1-9][0-9]* cells change winner" "$tmp/census.out"
grep -Eq "class 3-island: [1-9][0-9]* cells change winner" "$tmp/census.out"

# --- atlas serving smoke test (~10s) -----------------------------------
# The O(1) answer tier end to end: shapeopt bakes a coarse atlas and its
# dump spot-check re-derives cells against the live search (exit 2 on any
# divergence); pland refuses nothing at startup verification, warms every
# cell, and serves a pure on-lattice burst — loadgen fails the run unless
# every request succeeds, pland_atlas_hits_total grew, and
# pland_searched_total / push_runs_total stayed flat (the search engine
# never ran).
go build -o "$tmp/loadgen" ./cmd/loadgen

"$tmp/shapeopt" -build-atlas "$tmp/atlas.bin" -scale 2 -pr-max 4 -rr-max 3 -n 40
"$tmp/shapeopt" -dump-atlas "$tmp/atlas.bin" -spot 25 > "$tmp/atlas_dump.out"
grep -q "bit-identical to live search" "$tmp/atlas_dump.out"

"$tmp/pland" -addr 127.0.0.1:0 -addr-file "$tmp/a4" \
    -atlas "$tmp/atlas.bin" -atlas-verify 4 \
    -max-concurrent 8 -max-queue 16 2> "$tmp/pland4.log" &
p4=$!
wait_addr "$tmp/a4"
"$tmp/loadgen" -url "http://$(cat "$tmp/a4")" \
    -rate 50 -duration 3s -mix atlas=1 \
    -n 40 -scale 2 -pr-max 4 -rr-max 3 \
    -fail-on-error -metrics-check
kill -TERM "$p4"
wait "$p4" || { echo "atlas pland dirty drain" >&2; cat "$tmp/pland4.log" >&2; exit 1; }

# --- self-tuning drift smoke test (~12s) -------------------------------
# Live calibration end to end: pland boots with the calibrator on, a
# ratio:auto request resolves against the measured (uniform) baseline,
# then an injected 8x straggler drifts the estimate — the calibrator
# must publish the shift, invalidate and re-plan the tracked scenario
# (pland_replans_total), and every post-drift answer must carry the new
# ratio; the optimal shape itself must change. The old plan is never
# served again after invalidation.
"$tmp/pland" -addr 127.0.0.1:0 -addr-file "$tmp/a5" \
    -calibrate -calibrate-interval 200ms -calibrate-bench-n 48 \
    -calibrate-quantum 0.5 \
    -calibrate-straggler 8 -calibrate-straggler-after 3s \
    2> "$tmp/pland5.log" &
p5=$!
wait_addr "$tmp/a5"
url5="http://$(cat "$tmp/a5")"

base=$(curl -sf "$url5/v1/plan?n=64&ratio=auto&algorithm=SCB")
echo "$base" | grep -q '"ratio":"1:1:1"' \
    || { echo "baseline auto ratio is not uniform: $base" >&2; exit 1; }
shape_before=$(echo "$base" | sed -n 's/.*"shape":"\([^"]*\)".*/\1/p')
[ -n "$shape_before" ]

# Wait for the drift to register and the plan to change shape (the EWMA
# converges over a few rounds; first publish may be partial).
shape_after="$shape_before"
for i in $(seq 1 150); do
    resp=$(curl -sf "$url5/v1/plan?n=64&ratio=auto&algorithm=SCB")
    shape_after=$(echo "$resp" | sed -n 's/.*"shape":"\([^"]*\)".*/\1/p')
    if [ "$shape_after" != "$shape_before" ]; then break; fi
    sleep 0.2
done
[ "$shape_after" != "$shape_before" ] \
    || { echo "plan shape never changed after drift" >&2; cat "$tmp/pland5.log" >&2; exit 1; }

curl -sf "$url5/metrics" | grep -q '^pland_replans_total [1-9]' \
    || { echo "no re-plan after drift" >&2; exit 1; }
curl -sf "$url5/metrics" | grep -q '^pland_calibration_drift_events_total [1-9]' \
    || { echo "no drift event recorded" >&2; exit 1; }

# The invalidated baseline plan must be structurally unreachable.
for i in 1 2 3 4 5; do
    if curl -sf "$url5/v1/plan?n=64&ratio=auto&algorithm=SCB" \
        | grep -q '"ratio":"1:1:1"'; then
        echo "stale pre-drift plan served after invalidation" >&2
        exit 1
    fi
done

kill -TERM "$p5"
wait "$p5" || { echo "calibrating pland dirty drain" >&2; cat "$tmp/pland5.log" >&2; exit 1; }

# --- monotone degradation ramp smoke test (~12s) -----------------------
# Overload the planner with an open-loop ramp to ~3x search capacity
# (4 slots x ~100ms searches ~= 40/s). The shed ladder must walk its
# rungs one at a time (loadgen exits non-zero on any skipped rung), the
# tier mix must shift smoothly toward degraded answers, and gate
# saturation must fall back to the closed form instead of refusing
# work — zero availability loss at 3x on an idle machine.
"$tmp/pland" -addr 127.0.0.1:0 -addr-file "$tmp/a6" \
    -fault-straggler 10 -fault-step 100us \
    -max-concurrent 4 -max-queue 96 \
    -shed-target-latency 400ms -shed-interval 50ms \
    2> "$tmp/pland6.log" &
p6=$!
wait_addr "$tmp/a6"
"$tmp/loadgen" -url "http://$(cat "$tmp/a6")" \
    -ramp 10:120:5 -step-duration 2s -mix search=1 -search-pool 4000 \
    -n 40 -scale 10 -pr-max 20 -rr-max 20 \
    -out "$tmp/degrade.json" \
    || { echo "degradation ramp failed (skipped rung or errors)" >&2; cat "$tmp/pland6.log" >&2; exit 1; }
grep -q '"no_rung_skipped": true' "$tmp/degrade.json"
# Availability: on an otherwise-idle machine every step reads exactly
# 1.0 (that run is committed as BENCH_degrade.json). A loaded CI box
# can halve search capacity, turning the last steps into a ~6x
# overload where the ladder legitimately rides to its reject rung —
# so the gate is strict 1.0 while under capacity (steps 1-3) and a
# 0.85 floor beyond, which still fails on any fallback regression
# (a broken saturation fallback drops step 2-3 availability first).
i=0
for a in $(grep '"availability":' "$tmp/degrade.json" \
    | sed 's/.*"availability": *//; s/,.*//'); do
    i=$((i+1))
    awk -v a="$a" -v i="$i" 'BEGIN {
        if (i <= 3 && a+0 != 1) exit 1
        if (a+0 < 0.85) exit 1
    }' || { echo "availability $a at ramp step $i breaches the gate" >&2; cat "$tmp/degrade.json" >&2; exit 1; }
done
[ "$i" -eq 5 ]
# The ladder actually shed: the last step must not still be at full search.
if tail -n 40 "$tmp/degrade.json" | grep -q '"shed_tier_end": "search"'; then
    echo "ladder never left the search tier under 3x overload" >&2
    exit 1
fi
kill -TERM "$p6"
wait "$p6" || { echo "ramp pland dirty drain" >&2; cat "$tmp/pland6.log" >&2; exit 1; }

# --- exec-chaos smoke test (~5s) ---------------------------------------
# The fault-tolerant execution engine end to end, through the real CLI.
go build -o "$tmp/mmmsim" ./cmd/mmmsim

# 1. Worker R killed at 50% of its work: the run must finish on the two
#    survivors via the twoproc re-plan, bit-identical to the serial kij
#    kernel (mmmsim exits non-zero on MISMATCH).
"$tmp/mmmsim" -exec -alg SCB -n 64 -ratio 3:2:1 -block 8 \
    -fault kill:R@0.5 > "$tmp/exec_kill.out"
grep -q "replan-2proc" "$tmp/exec_kill.out"
grep -q "result MATCH" "$tmp/exec_kill.out"

# 2. A paced, checkpointed run SIGKILLed mid-multiply must resume from
#    its journal: completed blocks replay, only the rest is recomputed,
#    and the product still matches the serial kernel. The kill may race
#    the run's start; the resume must cope with either a partial or an
#    absent checkpoint (it creates one when the kill won the race).
exec_flags="-exec -alg SCB -n 64 -ratio 3:2:1 -block 8 -seed 5"
"$tmp/mmmsim" $exec_flags -pace -pace-rate 20000 \
    -checkpoint "$tmp/exec.ckpt" > "$tmp/exec_killed.out" 2>&1 &
mpid=$!
sleep 1.2
kill -9 "$mpid" 2>/dev/null || true
wait "$mpid" 2>/dev/null || true
if [ -s "$tmp/exec.ckpt" ]; then
    "$tmp/mmmsim" $exec_flags -checkpoint "$tmp/exec.ckpt" -resume \
        > "$tmp/exec_resumed.out"
    grep -q "resumed [0-9]* blocks from checkpoint" "$tmp/exec_resumed.out"
else
    "$tmp/mmmsim" $exec_flags -checkpoint "$tmp/exec.ckpt" \
        > "$tmp/exec_resumed.out"
fi
grep -q "result MATCH" "$tmp/exec_resumed.out"

# --- integrity smoke test (~5s) ----------------------------------------
# ABFT verification end to end through the real CLI.

# 1. Single-cell exponent flips injected into R's results: the checksum
#    layer must see real corruption (injected ≥ 1) and the product must
#    still come out bit-identical to the serial kij kernel — a missed
#    flip would surface as MISMATCH and a non-zero exit.
"$tmp/mmmsim" -exec -alg SCB -n 64 -ratio 3:2:1 -block 16 \
    -verify -fault flip:R@0.9 > "$tmp/exec_flip.out"
grep -Eq "\(injected [1-9]" "$tmp/exec_flip.out"
grep -q "result MATCH" "$tmp/exec_flip.out"

# 2. A worker that deterministically scales every result by 8: it must
#    be quarantined as Byzantine once it burns its mismatch budget, the
#    run finishes on the survivors, and the product is still bit-exact.
"$tmp/mmmsim" -exec -alg SCB -n 64 -ratio 3:2:1 -block 16 \
    -verify -fault scale:S@8 > "$tmp/exec_scale.out"
grep -q "quarantined \[S\] as Byzantine" "$tmp/exec_scale.out"
grep -q "result MATCH" "$tmp/exec_scale.out"

# 3. The full silent-corruption study: flips at 5%/10%, the Byzantine
#    scaler and a combined drill under SCB and PCB — every injected
#    corruption detected, every product bit-exact (the study exits
#    non-zero otherwise), and the clean-run ABFT overhead under a
#    deliberately generous CI ceiling (the committed BENCH_integrity.json
#    records ~0% on an idle machine; the 25% ceiling only trips on a
#    real regression, never on a loaded CI box).
"$tmp/mmmsim" -integrity-study run -out "$tmp/bench_integrity.json" \
    -max-overhead 25 > "$tmp/integrity_study.out"
grep -q "every injected corruption detected" "$tmp/integrity_study.out"
[ -s "$tmp/bench_integrity.json" ]

echo "verify.sh: all checks passed"
