package heteropart

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/model"
	"repro/internal/partition"
)

// ProcPlan summarises one processor's share of a Plan.
type ProcPlan struct {
	Processor string  `json:"processor"`
	Speed     float64 `json:"speed"`
	Elements  int     `json:"elements"`
	// Rect is the enclosing rectangle [top, left, bottom, right)
	// (absent for the remainder processor P, whose region may span the
	// whole matrix).
	Rect [4]int `json:"rect"`
	// SendElements is the number of elements this processor must send.
	SendElements int64 `json:"sendElements"`
}

// Plan is a complete, serialisable partitioning decision for a platform:
// the chosen shape, the concrete assignment, and the expected costs. It
// is what a downstream runtime would persist and ship to the workers.
type Plan struct {
	N         int        `json:"n"`
	Ratio     string     `json:"ratio"`
	Algorithm string     `json:"algorithm"`
	Topology  string     `json:"topology"`
	Shape     string     `json:"shape"`
	VoC       int64      `json:"voc"`
	Expected  Breakdown  `json:"expected"`
	Procs     []ProcPlan `json:"procs"`
	// Grid is the base64-encoded cell assignment (see Partition.Encode).
	Grid string `json:"grid"`

	partition *Partition
}

// NewPlan picks the optimal candidate shape for the machine and algorithm
// and packages the full decision.
func NewPlan(a Algorithm, m Machine, n int) (*Plan, error) {
	best, _, err := Optimal(a, m, n)
	if err != nil {
		return nil, err
	}
	g, err := BuildShape(best, n, m.Ratio)
	if err != nil {
		return nil, err
	}
	snap := g.Snapshot()
	p := &Plan{
		N:         n,
		Ratio:     m.Ratio.String(),
		Algorithm: a.String(),
		Topology:  m.Topology.String(),
		Shape:     best.String(),
		VoC:       g.VoC(),
		Expected:  Evaluate(a, m, g),
		Grid:      base64.StdEncoding.EncodeToString(g.Encode()),
		partition: g,
	}
	for _, proc := range partition.Procs {
		r := g.EnclosingRect(proc)
		p.Procs = append(p.Procs, ProcPlan{
			Processor:    proc.String(),
			Speed:        m.Ratio.Speed(proc),
			Elements:     g.Count(proc),
			Rect:         [4]int{r.Top, r.Left, r.Bottom, r.Right},
			SendElements: model.SendVolume(snap, proc),
		})
	}
	return p, nil
}

// Partition returns the plan's concrete partition, decoding it if the
// plan was loaded from JSON.
func (p *Plan) Partition() (*Partition, error) {
	if p.partition != nil {
		return p.partition, nil
	}
	raw, err := base64.StdEncoding.DecodeString(p.Grid)
	if err != nil {
		return nil, fmt.Errorf("heteropart: plan grid: %w", err)
	}
	g, err := partition.Decode(raw)
	if err != nil {
		return nil, err
	}
	p.partition = g
	return g, nil
}

// WriteJSON serialises the plan.
func (p *Plan) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// ReadPlan parses a JSON plan.
func ReadPlan(r io.Reader) (*Plan, error) {
	var p Plan
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("heteropart: plan decode: %w", err)
	}
	return &p, nil
}
