package heteropart

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/model"
	"repro/internal/partition"
)

// ProcPlan summarises one processor's share of a Plan.
type ProcPlan struct {
	Processor string  `json:"processor"`
	Speed     float64 `json:"speed"`
	Elements  int     `json:"elements"`
	// Rect is the enclosing rectangle [top, left, bottom, right)
	// (absent for the remainder processor P, whose region may span the
	// whole matrix).
	Rect [4]int `json:"rect"`
	// SendElements is the number of elements this processor must send.
	SendElements int64 `json:"sendElements"`
}

// Plan is a complete, serialisable partitioning decision for a platform:
// the chosen shape, the concrete assignment, and the expected costs. It
// is what a downstream runtime would persist and ship to the workers.
type Plan struct {
	N         int        `json:"n"`
	Ratio     string     `json:"ratio"`
	Algorithm string     `json:"algorithm"`
	Topology  string     `json:"topology"`
	Shape     string     `json:"shape"`
	VoC       int64      `json:"voc"`
	Expected  Breakdown  `json:"expected"`
	Procs     []ProcPlan `json:"procs"`
	// Grid is the base64-encoded cell assignment (see Partition.Encode).
	Grid string `json:"grid"`

	partition *Partition
}

// NewPlan picks the optimal candidate shape for the machine and algorithm
// and packages the full decision.
func NewPlan(a Algorithm, m Machine, n int) (*Plan, error) {
	best, _, err := Optimal(a, m, n)
	if err != nil {
		return nil, err
	}
	return NewPlanForShape(a, m, n, best)
}

// NewPlanForShape packages the full decision for one already-chosen
// candidate shape, skipping the six-way Optimal comparison. It exists for
// callers that decided the winner elsewhere — above all the shape atlas,
// which precomputes the winner per quantized ratio offline and must serve
// a plan bit-identical to what NewPlan would have produced for the same
// scenario.
func NewPlanForShape(a Algorithm, m Machine, n int, s Shape) (*Plan, error) {
	if n < 4 {
		return nil, fmt.Errorf("heteropart: n must be ≥ 4, got %d", n)
	}
	g, err := BuildShape(s, n, m.Ratio)
	if err != nil {
		return nil, err
	}
	snap := g.Snapshot()
	p := &Plan{
		N:         n,
		Ratio:     m.Ratio.String(),
		Algorithm: a.String(),
		Topology:  m.TopologyName(),
		Shape:     s.String(),
		VoC:       g.VoC(),
		Expected:  Evaluate(a, m, g),
		Grid:      base64.StdEncoding.EncodeToString(g.Encode()),
		partition: g,
	}
	for _, proc := range partition.Procs {
		r := g.EnclosingRect(proc)
		p.Procs = append(p.Procs, ProcPlan{
			Processor:    proc.String(),
			Speed:        m.Ratio.Speed(proc),
			Elements:     g.Count(proc),
			Rect:         [4]int{r.Top, r.Left, r.Bottom, r.Right},
			SendElements: model.SendVolume(snap, proc),
		})
	}
	return p, nil
}

// Partition returns the plan's concrete partition, decoding it if the
// plan was loaded from JSON.
func (p *Plan) Partition() (*Partition, error) {
	if p.partition != nil {
		return p.partition, nil
	}
	raw, err := base64.StdEncoding.DecodeString(p.Grid)
	if err != nil {
		return nil, fmt.Errorf("heteropart: plan grid: %w", err)
	}
	g, err := partition.Decode(raw)
	if err != nil {
		return nil, err
	}
	p.partition = g
	return g, nil
}

// WriteJSON serialises the plan.
func (p *Plan) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// PlanError reports a plan file whose JSON parsed but whose content is
// invalid or internally inconsistent — a truncated copy, a hand-edited
// field, or bit rot that survived the transport layer.
type PlanError struct {
	Field  string
	Reason string
}

func (e *PlanError) Error() string {
	return fmt.Sprintf("heteropart: plan field %s: %s", e.Field, e.Reason)
}

// Validate checks a plan's fields for range and cross-field consistency:
// parseable ratio/algorithm/topology/shape, a grid that decodes to the
// declared dimension, per-processor element counts that cover the matrix,
// and a VoC that matches the decoded grid. It returns a *PlanError on the
// first violation, so a corrupt plan is rejected instead of propagating a
// zero-valued decision into a runtime.
func (p *Plan) Validate() error {
	if p.N <= 0 {
		return &PlanError{Field: "n", Reason: fmt.Sprintf("must be positive, got %d", p.N)}
	}
	if _, err := partition.ParseRatio(p.Ratio); err != nil {
		return &PlanError{Field: "ratio", Reason: err.Error()}
	}
	if _, err := model.ParseAlgorithm(p.Algorithm); err != nil {
		return &PlanError{Field: "algorithm", Reason: err.Error()}
	}
	if _, err := model.ParseTopologySpec(p.Topology); err != nil {
		return &PlanError{Field: "topology", Reason: err.Error()}
	}
	if _, err := partition.ParseShape(p.Shape); err != nil {
		return &PlanError{Field: "shape", Reason: err.Error()}
	}
	if p.VoC < 0 {
		return &PlanError{Field: "voc", Reason: fmt.Sprintf("must be non-negative, got %d", p.VoC)}
	}
	raw, err := base64.StdEncoding.DecodeString(p.Grid)
	if err != nil {
		return &PlanError{Field: "grid", Reason: fmt.Sprintf("bad base64: %v", err)}
	}
	g, err := partition.Decode(raw)
	if err != nil {
		return &PlanError{Field: "grid", Reason: err.Error()}
	}
	if g.N() != p.N {
		return &PlanError{Field: "grid", Reason: fmt.Sprintf("decodes to %d×%d, plan says n=%d", g.N(), g.N(), p.N)}
	}
	if got := g.VoC(); got != p.VoC {
		return &PlanError{Field: "voc", Reason: fmt.Sprintf("plan says %d, grid has %d", p.VoC, got)}
	}
	if len(p.Procs) > 0 {
		total := 0
		for _, pp := range p.Procs {
			proc, perr := parseProc(pp.Processor)
			if perr != nil {
				return &PlanError{Field: "procs", Reason: perr.Error()}
			}
			if pp.Elements < 0 {
				return &PlanError{Field: "procs", Reason: fmt.Sprintf("%s has negative element count %d", pp.Processor, pp.Elements)}
			}
			if got := g.Count(proc); got != pp.Elements {
				return &PlanError{Field: "procs", Reason: fmt.Sprintf("%s claims %d elements, grid assigns %d", pp.Processor, pp.Elements, got)}
			}
			total += pp.Elements
		}
		if total != p.N*p.N {
			return &PlanError{Field: "procs", Reason: fmt.Sprintf("element counts sum to %d, want n² = %d", total, p.N*p.N)}
		}
	}
	p.partition = g
	return nil
}

// parseProc maps a processor name ("P", "R", "S") back to its identifier.
func parseProc(s string) (partition.Proc, error) {
	for _, proc := range partition.Procs {
		if proc.String() == s {
			return proc, nil
		}
	}
	return 0, fmt.Errorf("unknown processor %q", s)
}

// ReadPlan parses and validates a JSON plan. Truncated or otherwise
// unparseable input fails with a decode error; input that parses but
// carries out-of-range or inconsistent fields fails with a *PlanError.
func ReadPlan(r io.Reader) (*Plan, error) {
	var p Plan
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("heteropart: plan decode: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}
