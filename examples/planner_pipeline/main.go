// planner_pipeline shows the workflow a downstream runtime would follow:
//
//  1. describe the platform;
//  2. let the library pick the optimal candidate shape and write the
//     decision to a JSON plan (the artefact a scheduler would persist);
//  3. reload the plan, inspect the schedule as a Gantt chart;
//  4. execute the multiplication with the interleaved pipeline (PIO) on
//     three goroutine processors and verify the traffic matches the plan.
//
// Run with: go run ./examples/planner_pipeline
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	heteropart "repro"
)

func main() {
	log.SetFlags(0)
	const n = 160
	ratio := heteropart.MustRatio(12, 1, 1)
	m := heteropart.DefaultMachine(ratio)

	// 1–2: plan.
	plan, err := heteropart.NewPlan(heteropart.SCB, m, n)
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := plan.WriteJSON(&buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planned %s for ratio %s: VoC %d elements, expected T_exe %.6fs (%d bytes of JSON)\n\n",
		plan.Shape, plan.Ratio, plan.VoC, plan.Expected.Total, buf.Len())

	// 3: reload and inspect.
	loaded, err := heteropart.ReadPlan(&buf)
	if err != nil {
		log.Fatal(err)
	}
	g, err := loaded.Partition()
	if err != nil {
		log.Fatal(err)
	}
	chart, err := heteropart.GanttChart(heteropart.SCO, m, g, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("schedule under bulk overlap (SCO):")
	fmt.Println(chart)

	// 4: execute with the interleaved pipeline.
	rng := rand.New(rand.NewSource(1))
	a := heteropart.NewMatrix(n)
	b := heteropart.NewMatrix(n)
	a.FillRandom(rng)
	b.FillRandom(rng)
	_, stats, err := heteropart.MultiplyPIO(heteropart.ExecConfig{Machine: m}, g, a, b)
	if err != nil {
		log.Fatal(err)
	}
	status := "matches the plan"
	if stats.TotalVolume != loaded.VoC {
		status = "MISMATCH"
	}
	fmt.Printf("PIO execution moved %d elements — %s (wall %v)\n", stats.TotalVolume, status, stats.Wall)
}
