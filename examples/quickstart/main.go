// Quickstart: the library in five steps.
//
//  1. Describe the platform as a speed ratio Pr:Rr:Sr.
//  2. Run the Push search from a random arrangement of matrix elements and
//     watch it condense into one of the paper's four archetypes.
//  3. Reduce the terminal state to Archetype A (Theorems 8.1–8.4).
//  4. Compare the six candidate canonical shapes and pick the optimum for
//     an MMM algorithm.
//  5. Actually multiply two matrices with the chosen partition on three
//     goroutine "processors" and verify the result.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	heteropart "repro"
)

func main() {
	log.SetFlags(0)

	// 1. A node where one device is 5× and another 2× faster than the
	// slowest (the paper's 5:2:1 study ratio).
	ratio := heteropart.MustRatio(5, 2, 1)
	const n = 120
	fmt.Printf("platform ratio %s, matrix %d×%d\n\n", ratio, n, n)

	// 2. The Push search (the paper's DFA, Section VI).
	res, err := heteropart.Search(heteropart.SearchConfig{N: n, Ratio: ratio, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Push search: %d pushes, VoC %d → %d (−%.0f%%), archetype %v\n",
		res.Steps, res.InitialVoC, res.FinalVoC,
		100*(1-float64(res.FinalVoC)/float64(res.InitialVoC)),
		heteropart.Classify(res.Final))

	// 3. Reduce to Archetype A.
	red, err := heteropart.ReduceToA(res.Final)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reduced %v → %v, VoC %d → %d\n\n", red.From, red.To, red.VoCBefore, red.VoCAfter)

	// 4. Candidate comparison for the SCB algorithm.
	m := heteropart.DefaultMachine(ratio)
	best, cands, err := heteropart.Optimal(heteropart.SCB, m, n)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range cands {
		if !c.Feasible {
			fmt.Printf("  %-22s infeasible (Thm 9.1)\n", c.Shape)
			continue
		}
		fmt.Printf("  %-22s VoC %6d   T_exe %.6fs\n", c.Shape, c.VoC, c.Breakdown.Total)
	}
	fmt.Printf("optimal shape under SCB: %v\n\n", best)

	// 5. Multiply for real with the winning shape.
	g, err := heteropart.BuildShape(best, n, ratio)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	a := heteropart.NewMatrix(n)
	b := heteropart.NewMatrix(n)
	a.FillRandom(rng)
	b.FillRandom(rng)
	_, stats, err := heteropart.Multiply(
		heteropart.ExecConfig{Machine: m, Algorithm: heteropart.SCB}, g, a, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed on 3 goroutine processors: moved %d elements (= VoC %d), wall %v\n",
		stats.TotalVolume, g.VoC(), stats.Wall)
}
