// four_processors exercises the paper's §XI extension: the Push search on
// four heterogeneous processors (e.g. two GPUs and two CPU sockets). The
// example runs the generalised DFA and shows that the same condensation
// behaviour — monotone VoC reduction terminating in compact, blocky
// shapes — carries over past three processors, exactly as the paper
// anticipates.
//
// Run with: go run ./examples/four_processors
package main

import (
	"fmt"
	"log"

	"repro/internal/nproc"
)

func main() {
	log.SetFlags(0)
	ratio := nproc.Ratio{8, 4, 2, 1} // GPU0 : GPU1 : socket0 : socket1
	const n = 80
	fmt.Printf("four abstract processors, speeds %s, N=%d\n\n", ratio, n)

	var bestDrop float64
	var best *nproc.RunResult
	for seed := int64(0); seed < 6; seed++ {
		res, err := nproc.Run(nproc.RunConfig{N: n, Ratio: ratio, Seed: seed, FullDirections: true})
		if err != nil {
			log.Fatal(err)
		}
		drop := 1 - float64(res.FinalVoC)/float64(res.InitialVoC)
		fmt.Printf("seed %d: %4d pushes, VoC %6d → %6d (−%2.0f%%)\n",
			seed, res.Steps, res.InitialVoC, res.FinalVoC, 100*drop)
		if drop > bestDrop {
			bestDrop, best = drop, res
		}
	}
	fmt.Printf("\nbest condensed shape ('.'=fastest, 1..3=slower processors):\n\n%s\n",
		best.Final.RenderASCII(40))
	fmt.Println("The slower processors condense into compact blocks whose rows and columns")
	fmt.Println("overlap as little as possible — the same structure the three-processor")
	fmt.Println("candidates formalise, now discovered automatically for four processors.")
}
