// Command chaos_cluster is a self-contained chaos drill: it boots three
// in-process pland replicas, puts a fault-injection proxy in front of
// each, and drives a replica-pool client through three phases —
//
//  1. healthy cluster (baseline),
//  2. replica 0 blackholed + replica 1 straggling (the paper's
//     heterogeneous-peers premise applied to the serving tier itself),
//  3. partition healed, but replica 0 now corrupting every response's
//     "voc" digits in flight.
//
// After each phase it prints what the client observed: success rate,
// degraded fraction, ejections, hedges, and — in phase 3 — how many
// tampered payloads the client's independent VoC re-verification
// caught. The drill exits non-zero if any request fails or any corrupt
// plan is accepted, so it doubles as a manual smoke test.
//
// Usage:
//
//	go run ./examples/chaos_cluster [-requests 30] [-seed 1]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/chaos"
	serveimpl "repro/internal/serve"
	wire "repro/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("chaos_cluster: ")
	requests := flag.Int("requests", 30, "requests per phase")
	seed := flag.Int64("seed", 1, "chaos proxy seed")
	flag.Parse()
	if err := run(*requests, *seed); err != nil {
		log.Fatal(err)
	}
}

func run(requests int, seed int64) error {
	// Three real pland servers on loopback, each behind its own proxy.
	var proxies []*chaos.Proxy
	var urls []string
	for i := 0; i < 3; i++ {
		impl, err := serveimpl.New(serveimpl.Config{
			DefaultTimeout: time.Second,
			MaxTimeout:     5 * time.Second,
			CacheTTL:       time.Minute,
			SearchSeed:     int64(i + 1),
		})
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: impl.Handler()}
		go hs.Serve(ln)
		defer hs.Close()

		proxy, err := chaos.New("127.0.0.1:0", ln.Addr().String(), chaos.Faults{}, seed+int64(i))
		if err != nil {
			return err
		}
		defer proxy.Close()
		proxies = append(proxies, proxy)
		urls = append(urls, proxy.URL())
		fmt.Printf("replica %d: %s (upstream %s)\n", i, proxy.URL(), ln.Addr())
	}

	client, err := wire.NewPool(urls, wire.ClientConfig{
		Timeout:           2 * time.Second,
		Retry:             wire.RetryPolicy{MaxAttempts: 4, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond},
		Hedge:             wire.HedgePolicy{Delay: 60 * time.Millisecond, MaxHedges: 1},
		RetryBudget:       1000,
		RetryRefillPerSec: 1000,
		ProbeInterval:     25 * time.Millisecond,
		EjectThreshold:    3,
		EjectCooldown:     300 * time.Millisecond,
		HTTPClient:        &http.Client{Transport: &http.Transport{DisableKeepAlives: true}},
	})
	if err != nil {
		return err
	}
	defer client.Close()

	phase := func(name string) error {
		var degraded, failed int
		start := time.Now()
		for i := 0; i < requests; i++ {
			req := wire.PlanRequest{N: 24 + 4*(i%4), Ratio: "3:1:1", Algorithm: "SCB"}
			resp, err := client.Plan(context.Background(), req)
			if err != nil {
				failed++
				continue
			}
			if verr := wire.VerifyPlanResponse(req, resp); verr != nil {
				return fmt.Errorf("phase %q accepted a corrupt plan: %v", name, verr)
			}
			if resp.Degraded {
				degraded++
			}
		}
		fmt.Printf("\n[%s] %d requests in %v\n", name, requests, time.Since(start).Round(time.Millisecond))
		fmt.Printf("  failed %d · degraded %d · hedges %d · ejections %d · corrupt rejected %d\n",
			failed, degraded, client.Hedges(), client.Ejections(), client.CorruptRejected())
		for _, st := range client.Replicas() {
			fmt.Printf("  %-28s %-9s failures=%d ewma=%.1fms ejections=%d\n",
				st.URL, st.State, st.ConsecutiveFailures, st.LatencyEWMAMs, st.Ejections)
		}
		if failed > 0 {
			return fmt.Errorf("phase %q: %d/%d requests failed", name, failed, requests)
		}
		return nil
	}

	if err := phase("healthy baseline"); err != nil {
		return err
	}

	proxies[0].SetFaults(chaos.Faults{Blackhole: true})
	proxies[1].SetFaults(chaos.Faults{Latency: 40 * time.Millisecond, Jitter: 10 * time.Millisecond})
	if err := phase("partition + straggler"); err != nil {
		return err
	}

	proxies[0].SetFaults(chaos.Faults{CorruptProb: 1.0})
	proxies[1].SetFaults(chaos.Faults{})
	// Give probes a beat to re-admit replica 0 so it actually takes
	// traffic and the corruption path is exercised.
	time.Sleep(400 * time.Millisecond)
	if err := phase("response corruption"); err != nil {
		return err
	}

	if client.CorruptRejected() == 0 {
		fmt.Fprintln(os.Stderr, "warning: corruption phase never hit the corrupting replica")
	}
	for i, p := range proxies {
		s := p.Stats()
		fmt.Printf("\nproxy %d: conns=%d resets=%d blackholed=%d corrupted=%d cut=%d",
			i, s.Connections, s.Resets, s.Blackholed, s.Corrupted, s.Cut)
	}
	fmt.Println("\n\nall phases passed: no failed requests, no corrupt plan accepted")
	return nil
}
