// gpu_node models the hybrid-node scenario the paper's introduction
// motivates (via Zhong, Rychkov & Lastovetsky [9]): a modern compute node
// seen as a small number of *abstract processors* — here a GPU with its
// host core (fast), a multi-core CPU socket (medium), and a second, older
// socket (slow). The example sweeps the GPU's relative speed and shows
// where the non-rectangular Square-Corner partition takes over from the
// traditional rectangular ones, under both barrier and overlap algorithms.
//
// Run with: go run ./examples/gpu_node
package main

import (
	"fmt"
	"log"

	heteropart "repro"
)

func main() {
	log.SetFlags(0)
	const n = 240
	// CPU sockets fixed at 2:1; the GPU sweeps from 2× to 24× the slow
	// socket.
	fmt.Println("abstract processors: P = GPU+host core, R = CPU socket 0, S = CPU socket 1 (R:S = 2:1)")
	fmt.Println()
	fmt.Printf("%-10s %-14s %-22s %-22s\n", "GPU speed", "SC feasible?", "optimal (SCB barrier)", "optimal (PCO overlap)")
	for _, gpu := range []float64{2, 4, 6, 8, 10, 12, 16, 20, 24} {
		ratio := heteropart.MustRatio(gpu, 2, 1)
		m := heteropart.DefaultMachine(ratio)
		scb, _, err := heteropart.Optimal(heteropart.SCB, m, n)
		if err != nil {
			log.Fatal(err)
		}
		pco, _, err := heteropart.Optimal(heteropart.PCO, m, n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10.0f %-14v %-22v %-22v\n",
			gpu, heteropart.SquareCornerFeasible(ratio), scb, pco)
	}

	fmt.Println()
	fmt.Println("At high GPU dominance the slow sockets shrink to corner squares; their")
	fmt.Println("rows and columns stop crossing each other, which is exactly what cuts the")
	fmt.Println("volume of communication (paper Fig 13/14).")

	// Render the winning high-heterogeneity shape.
	ratio := heteropart.MustRatio(20, 2, 1)
	m := heteropart.DefaultMachine(ratio)
	best, _, err := heteropart.Optimal(heteropart.SCB, m, n)
	if err != nil {
		log.Fatal(err)
	}
	g, err := heteropart.BuildShape(best, n, ratio)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%v at 20:2:1 (·=GPU, R=socket0, S=socket1), VoC %d:\n\n%s",
		best, g.VoC(), g.RenderASCII(30))
}
