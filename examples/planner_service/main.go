// planner_service exercises the partition-planning service end to end
// with the robust client from package serve: hedged requests, jittered
// retries with a retry budget, and graceful handling of degraded-mode
// answers.
//
// With no flags it starts an in-process pland-equivalent server, fires a
// small mixed workload at it (plans, evaluations, a deliberate duplicate
// burst to show coalescing), and prints what came back and from where —
// searched, cached, or degraded canonical.
//
// With -url it instead acts as a load client against an already-running
// pland, which is how verify.sh drives the drain smoke test:
//
//	planner_service -url http://127.0.0.1:PORT \
//	    -requests 20 -conc 4 -timeout 300ms -expect degraded
//
// -expect searched|degraded|any asserts on every response's mode; any
// violation (or transport failure) exits non-zero. -scrape-metrics
// additionally fetches the server's /metrics after the workload and
// asserts the scrape parses and carries the serving families the
// workload must have populated.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	serveimpl "repro/internal/serve"
	"repro/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("planner_service: ")
	var (
		url     = flag.String("url", "", "target an external pland instead of an in-process demo server")
		reqs    = flag.Int("requests", 20, "load mode: total requests")
		conc    = flag.Int("conc", 4, "load mode: concurrent workers")
		timeout = flag.Duration("timeout", 2*time.Second, "load mode: per-request deadline")
		expect  = flag.String("expect", "any", "load mode: assert every answer is searched|degraded|any")
		wait    = flag.Duration("wait", 5*time.Second, "load mode: how long to wait for the server's /healthz")
		scrape  = flag.Bool("scrape-metrics", false, "load mode: scrape and verify the server's /metrics after the workload")
	)
	flag.Parse()

	if *url != "" {
		os.Exit(loadMode(*url, *reqs, *conc, *timeout, *expect, *wait, *scrape))
	}
	demo()
}

// demo runs the full client/server round trip in one process.
func demo() {
	srv, err := serveimpl.New(serveimpl.Config{CacheTTL: time.Minute})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	client := serve.NewClient(ts.URL, serve.ClientConfig{
		Timeout: 10 * time.Second,
		Hedge:   serve.HedgePolicy{Delay: 500 * time.Millisecond, MaxHedges: 1},
	})
	ctx := context.Background()

	fmt.Println("== optimal plans for three scenarios ==")
	for _, sc := range []serve.PlanRequest{
		{N: 64, Ratio: "2:1:1", Algorithm: "SCB"},
		{N: 64, Ratio: "5:2:1", Algorithm: "SCB"},
		{N: 64, Ratio: "25:2:1", Algorithm: "PCB", Topology: "star"},
	} {
		resp, err := client.Plan(ctx, sc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  ratio %-8s alg %-3s → %-21s VoC %-6d source=%s",
			sc.Ratio, sc.Algorithm, resp.Plan.Shape, resp.Plan.VoC, resp.Source)
		if resp.Search != nil {
			fmt.Printf(" (search: %d steps, VoC %d→%d)", resp.Search.Steps,
				resp.Search.InitialVoC, resp.Search.FinalVoC)
		}
		fmt.Println()
	}

	fmt.Println("\n== duplicate burst: coalescing and caching ==")
	var wg sync.WaitGroup
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := client.Plan(ctx, serve.PlanRequest{N: 96, Ratio: "3:2:1", Algorithm: "SCB"}); err != nil {
				log.Fatal(err)
			}
		}()
	}
	wg.Wait()
	stats, err := client.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  server totals after the burst: %d searches, %d coalesced, %d cache hits\n",
		stats.Searched, stats.Coalesced, stats.CacheHits)

	fmt.Println("\n== evaluating a named shape ==")
	ev, err := client.Evaluate(ctx, serve.EvaluateRequest{
		N: 64, Ratio: "5:2:1", Algorithm: "SCB", Shape: "Square-Corner"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  Square-Corner at 5:2:1: VoC %d, expected T_exe %.6fs\n",
		ev.VoC, ev.Breakdown.Total)
	for _, p := range ev.Procs {
		fmt.Printf("    %s: %d elements\n", p.Processor, p.Elements)
	}
}

// loadMode hammers an external pland and verifies the serving mode of
// every answer. Exit codes: 0 all good, 1 assertion or transport failure.
func loadMode(url string, reqs, conc int, timeout time.Duration, expect string, wait time.Duration, scrape bool) int {
	if err := waitHealthy(url, wait); err != nil {
		log.Printf("server never became healthy: %v", err)
		return 1
	}
	client := serve.NewClient(url, serve.ClientConfig{
		// The per-call ctx below carries the real deadline; the client
		// forwards it to the server as the Request-Timeout header.
		Timeout: timeout + 2*time.Second,
		Retry:   serve.RetryPolicy{MaxAttempts: 3, BaseDelay: 20 * time.Millisecond, MaxDelay: 500 * time.Millisecond},
	})

	var failures, degraded, searched atomic.Int64
	sem := make(chan struct{}, conc)
	var wg sync.WaitGroup
	for i := 0; i < reqs; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			ctx, cancel := context.WithTimeout(context.Background(), timeout)
			defer cancel()
			resp, err := client.Plan(ctx, serve.PlanRequest{
				N: 24 + 4*(i%3), Ratio: "5:2:1", Algorithm: "SCB",
			})
			if err != nil {
				log.Printf("request %d failed: %v", i, err)
				failures.Add(1)
				return
			}
			if resp.Degraded {
				degraded.Add(1)
			} else {
				searched.Add(1)
			}
			mode := "searched"
			if resp.Degraded {
				mode = "degraded"
			}
			if expect != "any" && mode != expect {
				log.Printf("request %d: got %s answer (source %s), want %s", i, mode, resp.Source, expect)
				failures.Add(1)
			}
		}(i)
	}
	wg.Wait()
	log.Printf("%d requests: %d searched, %d degraded, %d failures",
		reqs, searched.Load(), degraded.Load(), failures.Load())
	if failures.Load() > 0 {
		return 1
	}
	if scrape {
		if err := scrapeMetrics(url); err != nil {
			log.Printf("metrics scrape failed: %v", err)
			return 1
		}
		log.Printf("metrics scrape ok")
	}
	return 0
}

// scrapeMetrics fetches /metrics and asserts the exposition parses and
// carries the families a just-completed plan workload must populate:
// per-endpoint traffic and latency histograms, cache and breaker
// state, and the in-process push-search counters.
func scrapeMetrics(url string) error {
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/metrics status %d", resp.StatusCode)
	}
	got, err := metrics.ParseText(resp.Body)
	if err != nil {
		return fmt.Errorf("scrape does not parse: %w", err)
	}
	required := []string{
		`pland_requests_total{endpoint="plan"}`,
		`pland_request_duration_seconds_bucket{endpoint="plan",le="+Inf"}`,
		`pland_request_duration_seconds_count{endpoint="plan"}`,
		"pland_cache_hits_total",
		"pland_cache_misses_total",
		"pland_cache_entries",
		"pland_breaker_state",
		"pland_gate_slots",
		"push_runs_total",
	}
	for _, name := range required {
		if _, ok := got[name]; !ok {
			return fmt.Errorf("scrape missing %s", name)
		}
	}
	if got[`pland_requests_total{endpoint="plan"}`] < 1 {
		return fmt.Errorf("plan requests not counted in scrape")
	}
	return nil
}

func waitHealthy(url string, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	var last error
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			last = fmt.Errorf("healthz status %d", resp.StatusCode)
		} else {
			last = err
		}
		time.Sleep(50 * time.Millisecond)
	}
	return last
}
