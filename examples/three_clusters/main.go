// three_clusters models the "three interconnected clusters" setting of
// Becker & Lastovetsky [10]: three geographically separate clusters of
// different aggregate speeds jointly multiply matrices. The interconnect
// matters here — if the two slower clusters reach each other only through
// the fastest one (a star), shapes that avoid R↔S traffic gain an extra
// edge. The example compares every candidate under both topologies and
// under a simulated execution.
//
// Run with: go run ./examples/three_clusters
package main

import (
	"fmt"
	"log"

	heteropart "repro"
)

func main() {
	log.SetFlags(0)
	const n = 200
	ratio := heteropart.MustRatio(4, 2, 1) // aggregate cluster speeds
	fmt.Printf("three clusters, aggregate speeds %s, N=%d\n\n", ratio, n)

	for _, topo := range []heteropart.Topology{heteropart.FullyConnected, heteropart.Star} {
		m := heteropart.DefaultMachine(ratio)
		m.Topology = topo
		fmt.Printf("— %s topology —\n", topo)
		fmt.Printf("%-22s %-10s %-14s %-14s\n", "shape", "VoC", "SCB model(s)", "SCB sim(s)")
		for _, s := range heteropart.AllShapes {
			g, err := heteropart.BuildShape(s, n, ratio)
			if err != nil {
				fmt.Printf("%-22s infeasible\n", s)
				continue
			}
			mod := heteropart.Evaluate(heteropart.SCB, m, g)
			res, err := heteropart.Simulate(heteropart.SCB, m, g)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-22s %-10d %-14.6f %-14.6f\n", s, g.VoC(), mod.Total, res.TExe)
		}
		best, _, err := heteropart.Optimal(heteropart.SCB, m, n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("optimal: %v\n\n", best)
	}

	fmt.Println("Shapes that keep the two slow clusters out of each other's rows and")
	fmt.Println("columns avoid the double hop through the fast cluster under the star,")
	fmt.Println("so the star topology widens the margin of the corner-style partitions.")
}
