// shape_atlas renders the paper's shape menagerie for a chosen ratio: the
// six candidate canonical shapes of Section IX (Figs 11–12) and the four
// archetype exemplars of Fig 5, each with its communication volume and
// corner counts — a visual tour of the taxonomy.
//
// Run with: go run ./examples/shape_atlas [ratio]
package main

import (
	"fmt"
	"log"
	"os"

	heteropart "repro"
	"repro/internal/partition"
	"repro/internal/shape"
)

func main() {
	log.SetFlags(0)
	ratio := heteropart.MustRatio(6, 2, 1)
	if len(os.Args) > 1 {
		r, err := heteropart.ParseRatio(os.Args[1])
		if err != nil {
			log.Fatal(err)
		}
		ratio = r
	}
	const n = 120

	fmt.Printf("== The six candidate canonical shapes (Section IX) at ratio %s ==\n\n", ratio)
	for _, s := range heteropart.AllShapes {
		g, err := heteropart.BuildShape(s, n, ratio)
		if err != nil {
			fmt.Printf("--- %s: infeasible for %s (Theorem 9.1) ---\n\n", s, ratio)
			continue
		}
		fmt.Printf("--- %s ---\nVoC %d (%.4f × N²) · corners: R=%d S=%d · archetype %v\n%s\n",
			s, g.VoC(), float64(g.VoC())/float64(n*n),
			heteropart.CornerCount(g, heteropart.R),
			heteropart.CornerCount(g, heteropart.S),
			heteropart.Classify(g),
			g.RenderASCII(24))
	}

	fmt.Println("== The four terminal-state archetypes (Fig 5) ==")
	fmt.Println()
	for _, a := range []heteropart.Archetype{
		heteropart.ArchetypeA, heteropart.ArchetypeB,
		heteropart.ArchetypeC, heteropart.ArchetypeD,
	} {
		g, err := shape.Exemplar(a, 48)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- Archetype %v ---\nVoC %d · corners: R=%d S=%d\n%s\n",
			a, g.VoC(),
			shape.CornerCount(g, partition.R),
			shape.CornerCount(g, partition.S),
			g.RenderASCII(24))
		red, err := shape.ReduceToA(g)
		if err != nil {
			log.Fatal(err)
		}
		if a != heteropart.ArchetypeA {
			fmt.Printf("reduces to %v with VoC %d → %d (Theorems 8.2–8.4)\n\n", red.To, red.VoCBefore, red.VoCAfter)
		}
	}
}
