package heteropart

// One benchmark per experiment in the paper's evaluation (see DESIGN.md §5
// for the index). Each benchmark both measures the cost of regenerating
// the experiment and — once per process — prints the rows/series the paper
// reports, so `go test -bench=. -benchmem` doubles as the reproduction
// harness whose output EXPERIMENTS.md records.

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"

	"repro/internal/exec"
	"repro/internal/experiment"
	"repro/internal/matrix"
	"repro/internal/model"
	"repro/internal/nproc"
	"repro/internal/partition"
	"repro/internal/push"
	"repro/internal/shape"
	"repro/internal/twoproc"
)

var benchOnce sync.Map

func printOnce(key string, f func()) {
	if _, loaded := benchOnce.LoadOrStore(key, true); !loaded {
		f()
	}
}

// BenchmarkFig5ArchetypeCensus regenerates the Section VII census: DFA
// runs across the paper's eleven ratios, every terminal state classified
// into archetypes A–D (Fig 5). The paper ran ~10,000×11 at N=1000; the
// benchmark uses a laptop-scale sample with identical structure.
func BenchmarkFig5ArchetypeCensus(b *testing.B) {
	cfg := experiment.CensusConfig{N: 60, RunsPerRatio: 8, Seed: 1, Beautify: true}
	for i := 0; i < b.N; i++ {
		rows, err := experiment.Census(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cx := experiment.CensusCounterexamples(rows)
		b.ReportMetric(float64(cx), "counterexamples")
		printOnce("fig5", func() {
			fmt.Printf("\n== Fig 5 / §VII census (N=%d, %d runs/ratio) ==\n", cfg.N, cfg.RunsPerRatio)
			experiment.WriteCensusTable(os.Stdout, rows)
			fmt.Printf("counterexamples to Postulate 1: %d\n", cx)
		})
	}
}

// BenchmarkFig7ExampleRun regenerates the Fig 7 example: a single seeded
// 2:1:1 run rendered at coarse granularity at several snapshot steps.
func BenchmarkFig7ExampleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		frames, res, err := experiment.ExampleRun(100, partition.MustRatio(2, 1, 1), 4, []int{0, 60, 120, 180}, 25)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Steps), "pushes")
		printOnce("fig7", func() {
			fmt.Printf("\n== Fig 7 example run (2:1:1, N=100, seed 4): %d pushes, VoC %d → %d ==\n",
				res.Steps, res.InitialVoC, res.FinalVoC)
			for _, step := range []int{0, 60, 120, res.Steps} {
				if f, ok := frames[step]; ok {
					fmt.Printf("--- step %d ---\n%s", step, f)
				}
			}
		})
	}
}

// BenchmarkFig10Candidates builds all six candidate shapes (Fig 10) for a
// representative ratio and reports their communication volumes.
func BenchmarkFig10Candidates(b *testing.B) {
	ratio := MustRatio(5, 2, 1)
	const n = 200
	for i := 0; i < b.N; i++ {
		type row struct {
			s   Shape
			voc int64
			ok  bool
		}
		var rows []row
		for _, s := range AllShapes {
			g, err := BuildShape(s, n, ratio)
			if err != nil {
				rows = append(rows, row{s: s})
				continue
			}
			rows = append(rows, row{s, g.VoC(), true})
		}
		printOnce("fig10", func() {
			fmt.Printf("\n== Fig 10 candidates (ratio %s, N=%d) ==\n", ratio, n)
			for _, r := range rows {
				if !r.ok {
					fmt.Printf("%-22s infeasible\n", r.s)
					continue
				}
				fmt.Printf("%-22s VoC %d (%.4f × N²)\n", r.s, r.voc, float64(r.voc)/float64(n*n))
			}
		})
	}
}

// BenchmarkFig11Type1Canonical regenerates the Fig 11 content: the
// Square-Corner (1A) canonical form where feasible (Thm 9.1) and the
// Rectangle-Corner (1B) optimum where not, across a ratio sweep.
func BenchmarkFig11Type1Canonical(b *testing.B) {
	const n = 200
	for i := 0; i < b.N; i++ {
		type row struct {
			ratio    Ratio
			feasible bool
			voc1a    int64
			voc1b    int64
		}
		var rows []row
		for _, ratio := range PaperRatios {
			r := row{ratio: ratio, feasible: SquareCornerFeasible(ratio)}
			if g, err := BuildShape(SquareCorner, n, ratio); err == nil {
				r.voc1a = g.VoC()
			}
			if g, err := BuildShape(RectangleCorner, n, ratio); err == nil {
				r.voc1b = g.VoC()
			}
			rows = append(rows, r)
		}
		printOnce("fig11", func() {
			fmt.Printf("\n== Fig 11 Type 1 canonical forms (N=%d) ==\n", n)
			fmt.Println("| ratio | Pr>2√(RrSr)? | Square-Corner VoC | Rectangle-Corner VoC |")
			for _, r := range rows {
				sc := "-"
				if r.feasible {
					sc = fmt.Sprint(r.voc1a)
				}
				fmt.Printf("| %s | %v | %s | %d |\n", r.ratio, r.feasible, sc, r.voc1b)
			}
		})
	}
}

// BenchmarkFig12Canonical36 regenerates Fig 12: canonical Types 3–6 and
// their volumes for a ratio sweep.
func BenchmarkFig12Canonical36(b *testing.B) {
	const n = 200
	shapes := []Shape{SquareRectangle, BlockRectangle, LRectangle, TraditionalRectangle}
	for i := 0; i < b.N; i++ {
		out := make(map[string][4]int64)
		var order []string
		for _, ratio := range PaperRatios {
			var vals [4]int64
			for k, s := range shapes {
				if g, err := BuildShape(s, n, ratio); err == nil {
					vals[k] = g.VoC()
				} else {
					vals[k] = -1
				}
			}
			out[ratio.String()] = vals
			order = append(order, ratio.String())
		}
		printOnce("fig12", func() {
			fmt.Printf("\n== Fig 12 canonical Types 3–6 VoC (N=%d) ==\n", n)
			fmt.Println("| ratio | Square-Rect | Block-Rect | L-Rect | Traditional |")
			for _, k := range order {
				v := out[k]
				fmt.Printf("| %s | %d | %d | %d | %d |\n", k, v[0], v[1], v[2], v[3])
			}
		})
	}
}

// BenchmarkFig13CostSurface regenerates the Fig 13 cost surfaces
// (Square-Corner vs Block-Rectangle under SCB with the feasibility wall).
func BenchmarkFig13CostSurface(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiment.Fig13Surface(10, 20, 0.5)
		if len(pts) == 0 {
			b.Fatal("no surface points")
		}
		b.ReportMetric(float64(len(pts)), "samples")
		printOnce("fig13", func() {
			fmt.Printf("\n== Fig 13 cost surface (corners of the sampled plane) ==\n")
			fmt.Println("| Rr | Pr | SC | BR | SC feasible |")
			for _, p := range pts {
				corner := (p.Rr == 1 || p.Rr == 10) && (p.Pr == 1 || p.Pr == 10.5 || p.Pr == 20)
				if corner {
					sc := "-"
					if p.Feasible {
						sc = fmt.Sprintf("%.4f", p.SC)
					}
					fmt.Printf("| %.0f | %.1f | %s | %.4f | %v |\n", p.Rr, p.Pr, sc, p.BR, p.Feasible)
				}
			}
		})
	}
}

// BenchmarkFig14CommTime regenerates Fig 14: SCB communication seconds for
// Square-Corner vs Block-Rectangle, N=5000, 1000 MB/s, ratios x:1:1 —
// closed form plus simulated grids.
func BenchmarkFig14CommTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.Fig14Sweep(nil, 5000, 160)
		if err != nil {
			b.Fatal(err)
		}
		x := experiment.Crossover(rows)
		b.ReportMetric(x, "crossover_x")
		printOnce("fig14", func() {
			fmt.Printf("\n== Fig 14 communication time (SCB, fully connected, N=5000, 1000 MB/s) ==\n")
			experiment.WriteFig14Table(os.Stdout, rows)
			fmt.Printf("Square-Corner overtakes Block-Rectangle at x = %.0f (theory: x ≈ 9.7)\n", x)
		})
	}
}

// BenchmarkAlgoModelTable regenerates the Section X methodology: the
// optimal candidate per (ratio, algorithm) under both topologies.
func BenchmarkAlgoModelTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		full, err := experiment.OptimalShapes(120, nil, model.FullyConnected)
		if err != nil {
			b.Fatal(err)
		}
		star, err := experiment.OptimalShapes(120, nil, model.Star)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("algotable", func() {
			fmt.Printf("\n== §X optimal shape per ratio × algorithm (N=120, fully connected) ==\n")
			experiment.WriteOptimalTable(os.Stdout, full)
			fmt.Printf("\n== same, star topology ==\n")
			experiment.WriteOptimalTable(os.Stdout, star)
		})
	}
}

// BenchmarkTwoProcOptimality regenerates the §II baseline: the prior
// work's two-processor optimality rule over a ratio sweep.
func BenchmarkTwoProcOptimality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		type row struct {
			fast          float64
			scVoC, slVoC  float64
			barrier, bulk twoproc.Shape
		}
		var rows []row
		for _, fast := range []float64{1, 2, 3, 4, 5, 10, 15, 25} {
			ratio := twoproc.Ratio{Fast: fast}
			rows = append(rows, row{
				fast:    fast,
				scVoC:   twoproc.NormalizedVoC(twoproc.SquareCorner, ratio),
				slVoC:   twoproc.NormalizedVoC(twoproc.StraightLine, ratio),
				barrier: twoproc.Optimal(model.SCB, ratio),
				bulk:    twoproc.Optimal(model.SCO, ratio),
			})
		}
		printOnce("twoproc", func() {
			fmt.Printf("\n== §II two-processor baseline (prior work [8]) ==\n")
			fmt.Println("| fast:1 | SC VoC/N² | SL VoC/N² | optimal (barrier) | optimal (overlap) |")
			for _, r := range rows {
				fmt.Printf("| %.0f | %.4f | %.4f | %v | %v |\n", r.fast, r.scVoC, r.slVoC, r.barrier, r.bulk)
			}
		})
	}
}

// BenchmarkPushSearch measures the raw DFA throughput the census rests on.
func BenchmarkPushSearch(b *testing.B) {
	for _, n := range []int{60, 120} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := push.Run(push.Config{N: n, Ratio: partition.MustRatio(2, 1, 1), Seed: int64(i)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReduceToA measures the Section VIII reduction pipeline.
func BenchmarkReduceToA(b *testing.B) {
	g, err := shape.Exemplar(shape.ArchetypeD, 96)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := shape.ReduceToA(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecutorMMM measures the end-to-end goroutine execution with a
// non-rectangular partition (the Fig 14 platform substitute).
func BenchmarkExecutorMMM(b *testing.B) {
	const n = 128
	ratio := MustRatio(10, 1, 1)
	g, err := BuildShape(SquareCorner, n, ratio)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	x := matrix.New(n)
	y := matrix.New(n)
	x.FillRandom(rng)
	y.FillRandom(rng)
	cfg := exec.Config{Machine: model.DefaultMachine(ratio), Algorithm: model.SCB}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := exec.Multiply(cfg, g, x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPushTypes isolates the engine's design choices
// (DESIGN.md §4): plateau types 5–6, the beautify pass, and clustered
// adversarial starts.
func BenchmarkAblationPushTypes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.PushAblation(60, partition.MustRatio(3, 1, 1), 6, 2)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("ablation-types", func() {
			fmt.Printf("\n== Ablation: Push engine configurations (3:1:1, N=60, 6 runs) ==\n")
			experiment.WriteAblationTable(os.Stdout, rows)
		})
	}
}

// BenchmarkAblationLatency regenerates the latency-sensitivity study the
// paper's conclusion defers to future work: PIO pays N Hockney latencies
// where the barrier algorithms pay one.
func BenchmarkAblationLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.LatencySweep(nil, partition.MustRatio(5, 2, 1), 200)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("ablation-latency", func() {
			fmt.Printf("\n== Latency sensitivity (Block-Rectangle, 5:2:1, N=200) ==\n")
			experiment.WriteLatencyTable(os.Stdout, rows)
		})
	}
}

// BenchmarkFourProcessorSearch exercises the §XI extension: the
// generalised Push search on four heterogeneous processors.
func BenchmarkFourProcessorSearch(b *testing.B) {
	ratio := nproc.Ratio{8, 4, 2, 1}
	for i := 0; i < b.N; i++ {
		res, err := nproc.Run(nproc.RunConfig{N: 60, Ratio: ratio, Seed: int64(i), FullDirections: true})
		if err != nil {
			b.Fatal(err)
		}
		if res.FinalVoC > res.InitialVoC {
			b.Fatal("VoC rose")
		}
		b.ReportMetric(100*(1-float64(res.FinalVoC)/float64(res.InitialVoC)), "%VoC_drop")
		printOnce("fourproc", func() {
			fmt.Printf("\n== §XI extension: 4-processor search (8:4:2:1, N=60, seed 0) ==\n")
			fmt.Printf("%d pushes, VoC %d → %d, converged=%v\n",
				res.Steps, res.InitialVoC, res.FinalVoC, res.Converged)
		})
	}
}

// BenchmarkWinnerMap extends the Fig 13 comparison to all six candidates:
// a phase diagram of the optimal shape over the ratio plane.
func BenchmarkWinnerMap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		wm, err := experiment.ComputeWinnerMap(model.SCB, model.FullyConnected, 6, 20, 1, 80)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("winnermap", func() {
			fmt.Printf("\n== Optimal-shape phase diagram (SCB, N=80 grids) ==\n")
			wm.Write(os.Stdout)
			fmt.Printf("cells won: %v\n", wm.Count())
		})
	}
}

// BenchmarkVoCDecayTrace records the convergence curve of a Push run —
// the quantitative companion to the Fig 7 snapshots.
func BenchmarkVoCDecayTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr, err := experiment.TraceRun(100, partition.MustRatio(2, 1, 1), 4)
		if err != nil {
			b.Fatal(err)
		}
		if !tr.Monotone() {
			b.Fatal("trace not monotone")
		}
		printOnce("voctrace", func() {
			first := tr.Points[0].VoC
			last := tr.Points[len(tr.Points)-1].VoC
			fmt.Printf("\n== VoC decay (2:1:1, N=100): %d steps, %d → %d ==\n%s\n",
				len(tr.Points)-1, first, last, tr.Sparkline(72))
		})
	}
}
