package heteropart

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestNewPlanRoundTrip(t *testing.T) {
	m := DefaultMachine(MustRatio(10, 1, 1))
	p, err := NewPlan(SCB, m, 96)
	if err != nil {
		t.Fatal(err)
	}
	if p.Shape != "Square-Corner" {
		t.Errorf("plan shape %q, want Square-Corner at 10:1:1", p.Shape)
	}
	if len(p.Procs) != 3 {
		t.Fatalf("procs = %d", len(p.Procs))
	}
	var sendSum int64
	elements := 0
	for _, pp := range p.Procs {
		elements += pp.Elements
		sendSum += pp.SendElements
	}
	if elements != 96*96 {
		t.Errorf("plan elements sum %d", elements)
	}
	if sendSum != p.VoC {
		t.Errorf("Σ sends %d != VoC %d", sendSum, p.VoC)
	}

	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"shape": "Square-Corner"`) {
		t.Errorf("JSON missing shape:\n%s", buf.String())
	}
	back, err := ReadPlan(&buf)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := p.Partition()
	if err != nil {
		t.Fatal(err)
	}
	g2, err := back.Partition()
	if err != nil {
		t.Fatal(err)
	}
	if !g1.Equal(g2) {
		t.Error("plan partition did not survive the JSON round trip")
	}
	if back.VoC != p.VoC || back.Expected.Total != p.Expected.Total {
		t.Error("plan scalars did not survive the round trip")
	}
}

func TestPlanExecutable(t *testing.T) {
	// A deserialised plan drives a real execution.
	m := DefaultMachine(MustRatio(4, 2, 1))
	p, err := NewPlan(PCB, m, 40)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadPlan(&buf)
	if err != nil {
		t.Fatal(err)
	}
	g, err := loaded.Partition()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	a := NewMatrix(40)
	b := NewMatrix(40)
	a.FillRandom(rng)
	b.FillRandom(rng)
	_, stats, err := Multiply(ExecConfig{Machine: m, Algorithm: PCB}, g, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalVolume != loaded.VoC {
		t.Errorf("executed volume %d != planned VoC %d", stats.TotalVolume, loaded.VoC)
	}
}

func TestReadPlanErrors(t *testing.T) {
	if _, err := ReadPlan(strings.NewReader("{not json")); err == nil {
		t.Error("bad JSON should error")
	}
	p := &Plan{Grid: "!!!not-base64!!!"}
	if _, err := p.Partition(); err == nil {
		t.Error("bad base64 should error")
	}
	p2 := &Plan{Grid: "AAAA"}
	if _, err := p2.Partition(); err == nil {
		t.Error("truncated grid should error")
	}
}

func TestMultiplyPIOPublicAPI(t *testing.T) {
	const n = 24
	ratio := MustRatio(3, 1, 1)
	g, err := BuildShape(SquareCorner, n, ratio)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	a := NewMatrix(n)
	b := NewMatrix(n)
	a.FillRandom(rng)
	b.FillRandom(rng)
	c, stats, err := MultiplyPIO(ExecConfig{Machine: DefaultMachine(ratio)}, g, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalVolume != g.VoC() {
		t.Errorf("volume %d != VoC %d", stats.TotalVolume, g.VoC())
	}
	if c.N() != n {
		t.Error("dimension")
	}
}
