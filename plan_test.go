package heteropart

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
)

func TestNewPlanRoundTrip(t *testing.T) {
	m := DefaultMachine(MustRatio(10, 1, 1))
	p, err := NewPlan(SCB, m, 96)
	if err != nil {
		t.Fatal(err)
	}
	if p.Shape != "Square-Corner" {
		t.Errorf("plan shape %q, want Square-Corner at 10:1:1", p.Shape)
	}
	if len(p.Procs) != 3 {
		t.Fatalf("procs = %d", len(p.Procs))
	}
	var sendSum int64
	elements := 0
	for _, pp := range p.Procs {
		elements += pp.Elements
		sendSum += pp.SendElements
	}
	if elements != 96*96 {
		t.Errorf("plan elements sum %d", elements)
	}
	if sendSum != p.VoC {
		t.Errorf("Σ sends %d != VoC %d", sendSum, p.VoC)
	}

	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"shape": "Square-Corner"`) {
		t.Errorf("JSON missing shape:\n%s", buf.String())
	}
	back, err := ReadPlan(&buf)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := p.Partition()
	if err != nil {
		t.Fatal(err)
	}
	g2, err := back.Partition()
	if err != nil {
		t.Fatal(err)
	}
	if !g1.Equal(g2) {
		t.Error("plan partition did not survive the JSON round trip")
	}
	if back.VoC != p.VoC || back.Expected.Total != p.Expected.Total {
		t.Error("plan scalars did not survive the round trip")
	}
}

func TestPlanExecutable(t *testing.T) {
	// A deserialised plan drives a real execution.
	m := DefaultMachine(MustRatio(4, 2, 1))
	p, err := NewPlan(PCB, m, 40)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadPlan(&buf)
	if err != nil {
		t.Fatal(err)
	}
	g, err := loaded.Partition()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	a := NewMatrix(40)
	b := NewMatrix(40)
	a.FillRandom(rng)
	b.FillRandom(rng)
	_, stats, err := Multiply(ExecConfig{Machine: m, Algorithm: PCB}, g, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalVolume != loaded.VoC {
		t.Errorf("executed volume %d != planned VoC %d", stats.TotalVolume, loaded.VoC)
	}
}

func TestReadPlanErrors(t *testing.T) {
	if _, err := ReadPlan(strings.NewReader("{not json")); err == nil {
		t.Error("bad JSON should error")
	}
	p := &Plan{Grid: "!!!not-base64!!!"}
	if _, err := p.Partition(); err == nil {
		t.Error("bad base64 should error")
	}
	p2 := &Plan{Grid: "AAAA"}
	if _, err := p2.Partition(); err == nil {
		t.Error("truncated grid should error")
	}
}

// TestReadPlanRejectsCorrupt feeds ReadPlan plans that parse as JSON but
// are truncated, hand-edited, or bit-rotted. Every one must fail with a
// typed *PlanError naming the bad field — never return a zero-valued or
// inconsistent plan.
func TestReadPlanRejectsCorrupt(t *testing.T) {
	goodJSON := func(t *testing.T) string {
		t.Helper()
		p, err := NewPlan(SCB, DefaultMachine(MustRatio(5, 2, 1)), 24)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := p.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	cases := []struct {
		name    string
		mutate  func(s string) string
		field   string // expected PlanError field; "" = any decode error
		wantErr bool
	}{
		{"pristine", func(s string) string { return s }, "", false},
		{"truncated JSON", func(s string) string { return s[:len(s)/2] }, "", true},
		{"empty input", func(string) string { return "" }, "", true},
		{"zero n", func(s string) string { return strings.Replace(s, `"n": 24`, `"n": 0`, 1) }, "n", true},
		{"negative n", func(s string) string { return strings.Replace(s, `"n": 24`, `"n": -8`, 1) }, "n", true},
		{"bad ratio", func(s string) string { return strings.Replace(s, `"ratio": "5:2:1"`, `"ratio": "fast:slow"`, 1) }, "ratio", true},
		{"inverted ratio", func(s string) string { return strings.Replace(s, `"ratio": "5:2:1"`, `"ratio": "1:2:5"`, 1) }, "ratio", true},
		{"bad algorithm", func(s string) string { return strings.Replace(s, `"algorithm": "SCB"`, `"algorithm": "QUIC"`, 1) }, "algorithm", true},
		{"bad topology", func(s string) string { return strings.Replace(s, `"topology": "fully-connected"`, `"topology": "mesh"`, 1) }, "topology", true},
		{"bad shape", func(s string) string { return strings.Replace(s, `"shape": "`, `"shape": "Hexagon-`, 1) }, "shape", true},
		{"negative voc", func(s string) string { return strings.Replace(s, `"voc": `, `"voc": -`, 1) }, "voc", true},
		{"voc mismatch", func(s string) string { return strings.Replace(s, `"voc": `, `"voc": 1`, 1) }, "voc", true},
		{"garbage grid", func(s string) string {
			i := strings.Index(s, `"grid": "`)
			j := strings.Index(s[i+9:], `"`)
			return s[:i+9] + "AAAA" + s[i+9+j:]
		}, "grid", true},
		{"grid not base64", func(s string) string {
			i := strings.Index(s, `"grid": "`)
			j := strings.Index(s[i+9:], `"`)
			return s[:i+9] + "@@@@" + s[i+9+j:]
		}, "grid", true},
		{"proc count tampered", func(s string) string { return strings.Replace(s, `"elements": `, `"elements": 9`, 1) }, "procs", true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			in := c.mutate(goodJSON(t))
			p, err := ReadPlan(strings.NewReader(in))
			if !c.wantErr {
				if err != nil {
					t.Fatalf("pristine plan rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("corrupt plan accepted: %+v", p)
			}
			if c.field != "" {
				var pe *PlanError
				if !errors.As(err, &pe) {
					t.Fatalf("err = %v (%T), want *PlanError", err, err)
				}
				if pe.Field != c.field {
					t.Fatalf("PlanError field = %q (%v), want %q", pe.Field, err, c.field)
				}
			}
		})
	}
}

func TestMultiplyPIOPublicAPI(t *testing.T) {
	const n = 24
	ratio := MustRatio(3, 1, 1)
	g, err := BuildShape(SquareCorner, n, ratio)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	a := NewMatrix(n)
	b := NewMatrix(n)
	a.FillRandom(rng)
	b.FillRandom(rng)
	c, stats, err := MultiplyPIO(ExecConfig{Machine: DefaultMachine(ratio)}, g, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalVolume != g.VoC() {
		t.Errorf("volume %d != VoC %d", stats.TotalVolume, g.VoC())
	}
	if c.N() != n {
		t.Error("dimension")
	}
}
