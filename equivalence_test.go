package heteropart

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateEquivalence = flag.Bool("update", false, "rewrite the equivalence golden files with the current output")

// The plan equivalence golden pins the full /v1/plan-shaped facade output
// (NewPlan and NewPlanForShape JSON, floats and all) to bytes generated at
// seed state, before the CostModel refactor. A Machine carrying an explicit
// UniformHockney cost model must keep producing these exact bytes.

type planScenario struct {
	ratio string
	alg   Algorithm
	topo  string
	n     int
}

var planScenarios = []planScenario{
	{"10:1:1", SCB, "fully-connected", 64},
	{"10:1:1", PIO, "star", 64},
	{"5:2:1", PCB, "fully-connected", 96},
	{"3:1:1", SCO, "star", 64},
	{"2:2:1", PCO, "fully-connected", 64},
	{"4:3:2", PIO, "fully-connected", 80},
}

// writePlanCorpus renders NewPlan plus all six NewPlanForShape outputs for
// every scenario, using mutate to install the machine configuration under
// test (nil-cost legacy at seed; explicit cost models post-refactor).
func writePlanCorpus(t *testing.T, mutate func(*Machine)) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, sc := range planScenarios {
		ratio, err := ParseRatio(sc.ratio)
		if err != nil {
			t.Fatal(err)
		}
		topo, err := ParseTopology(sc.topo)
		if err != nil {
			t.Fatal(err)
		}
		m := DefaultMachine(ratio)
		m.Topology = topo
		if mutate != nil {
			mutate(&m)
		}
		buf.WriteString("== optimal " + sc.ratio + " " + sc.alg.String() + " " + sc.topo + "\n")
		p, err := NewPlan(sc.alg, m, sc.n)
		if err != nil {
			t.Fatalf("NewPlan %+v: %v", sc, err)
		}
		if err := p.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		for _, s := range AllShapes {
			sp, err := NewPlanForShape(sc.alg, m, sc.n, s)
			if err != nil {
				buf.WriteString("== shape " + s.String() + " infeasible\n")
				continue
			}
			buf.WriteString("== shape " + s.String() + "\n")
			if err := sp.WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
		}
	}
	return buf.Bytes()
}

func checkPlanGolden(t *testing.T, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "plan_seed_equivalence.golden")
	if *updateEquivalence {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update at seed state first): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("plan JSON diverged from the seed golden %s.\n"+
			"The UniformHockney path is contractually byte-identical to the seed;\n"+
			"regenerate with -update only for an intentional, justified change.", path)
	}
}

// TestPlanSeedEquivalenceLegacy pins the default Machine plan path to the
// seed bytes.
func TestPlanSeedEquivalenceLegacy(t *testing.T) {
	checkPlanGolden(t, writePlanCorpus(t, nil))
}

// TestPlanSeedEquivalenceUniformCost replays the corpus with an explicit
// UniformHockney installed: plan JSON must stay byte-identical to seed.
func TestPlanSeedEquivalenceUniformCost(t *testing.T) {
	checkPlanGolden(t, writePlanCorpus(t, func(m *Machine) {
		m.Cost = NewUniformCost(*m)
	}))
}

// TestPlanTopologySpecRoundTrip checks the wire path for link topologies:
// the plan's topology field carries the canonical spec, validates, and
// round-trips through ReadPlan.
func TestPlanTopologySpecRoundTrip(t *testing.T) {
	spec, err := ParseTopologySpec("2+1:10")
	if err != nil {
		t.Fatal(err)
	}
	m := spec.Apply(DefaultMachine(MustRatio(5, 2, 1)))
	p, err := NewPlan(SCB, m, 64)
	if err != nil {
		t.Fatal(err)
	}
	if p.Topology != "2+1:10" {
		t.Fatalf("plan topology %q, want canonical spec", p.Topology)
	}
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPlan(&buf)
	if err != nil {
		t.Fatalf("spec-topology plan failed validation round trip: %v", err)
	}
	if back.Topology != p.Topology || back.Shape != p.Shape {
		t.Fatalf("round trip changed plan: %q/%q vs %q/%q", back.Topology, back.Shape, p.Topology, p.Shape)
	}
	// A corrupt spec must be rejected with a typed error.
	p.Topology = "links:PR=1"
	if err := p.Validate(); err == nil {
		t.Fatal("plan with incomplete link spec validated")
	} else if _, ok := err.(*PlanError); !ok {
		t.Fatalf("error %T, want *PlanError", err)
	}
}
