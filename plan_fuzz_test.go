package heteropart

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/partition"
)

// validPlanJSON builds a real plan and serialises it, so the fuzz corpus
// starts from the deepest reachable code path: full JSON decode, base64
// grid decode, and every cross-field consistency check.
func validPlanJSON(tb testing.TB) []byte {
	tb.Helper()
	m := DefaultMachine(MustRatio(5, 2, 1))
	p, err := NewPlan(SCB, m, 24)
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// rotateVoCDigits applies the chaos proxy's corruption pattern (see
// internal/chaos): every digit following a `"voc":` key is rotated
// d→(d+1)%10, which keeps the JSON perfectly well-formed while making
// the summary lie about the grid.
func rotateVoCDigits(doc []byte) []byte {
	out := bytes.Clone(doc)
	for i := 0; i+6 < len(out); i++ {
		if !bytes.HasPrefix(out[i:], []byte(`"voc":`)) {
			continue
		}
		for j := i + 6; j < len(out) && out[j] >= '0' && out[j] <= '9'; j++ {
			out[j] = '0' + (out[j]-'0'+1)%10
		}
	}
	return out
}

// FuzzReadPlan hammers the plan wire format: arbitrary bytes must never
// panic, and any input ReadPlan accepts must survive a serialise/re-read
// round trip — the invariant the planning client's corrupt-plan
// rejection (serve.VerifyPlanResponse) is built on.
func FuzzReadPlan(f *testing.F) {
	valid := validPlanJSON(f)
	f.Add(valid)
	// The chaos proxy's in-flight corruption: voc digits rotated.
	f.Add(rotateVoCDigits(valid))
	// A torn transfer: the payload cut mid-grid.
	f.Add(valid[:len(valid)/2])
	// Structurally fine, semantically empty.
	f.Add([]byte(`{}`))
	// Grid field that is not base64, and one that decodes but is torn.
	f.Add(bytes.Replace(bytes.Clone(valid), []byte(`"grid": "`), []byte(`"grid": "!!!`), 1))
	f.Add([]byte(`{"n":4,"ratio":"2:1:1","algorithm":"SCB","topology":"fully-connected","shape":"Block-Rectangle","voc":0,"grid":"AAAA"}`))
	// Mismatched dimension: grid decodes to a different n than declared.
	f.Add(bytes.Replace(bytes.Clone(valid), []byte(`"n": 24`), []byte(`"n": 23`), 1))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ReadPlan(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted plans must be internally consistent and round-trip.
		var buf bytes.Buffer
		if err := p.WriteJSON(&buf); err != nil {
			t.Fatalf("accepted plan does not serialise: %v", err)
		}
		q, err := ReadPlan(&buf)
		if err != nil {
			t.Fatalf("accepted plan does not re-read: %v\noriginal: %s", err, data)
		}
		if q.N != p.N || q.VoC != p.VoC || q.Shape != p.Shape {
			t.Fatalf("round trip changed the plan: n %d→%d voc %d→%d shape %q→%q",
				p.N, q.N, p.VoC, q.VoC, p.Shape, q.Shape)
		}
		// The decoded partition must agree with the validated summary.
		g, err := p.Partition()
		if err != nil {
			t.Fatalf("accepted plan has undecodable partition: %v", err)
		}
		if g.VoC() != p.VoC {
			t.Fatalf("accepted plan: grid VoC %d != field %d", g.VoC(), p.VoC)
		}
	})
}

// FuzzPlanValidate drives Validate's field checks through a structured
// generator, reaching the consistency branches (procs totals,
// per-processor counts, grid/dimension agreement) that raw-byte fuzzing
// rarely assembles. Whatever the fields, Validate must either accept a
// self-consistent plan or return a typed *PlanError — never panic, never
// return an untyped error.
func FuzzPlanValidate(f *testing.F) {
	f.Add(24, "5:2:1", "SCB", "fully-connected", "Square-Corner", int64(100), "AAAA", "P", 10)
	f.Add(4, "2:1:1", "PCB", "star", "Block-Rectangle", int64(-1), "", "R", -5)
	f.Add(0, "", "", "", "", int64(0), "####", "X", 0)
	f.Add(1, "1:1:1", "SCO", "fully-connected", "L-Rectangle", int64(0), "AAAAAQA=", "P", 1)
	f.Fuzz(func(t *testing.T, n int, ratio, alg, topo, shape string, voc int64, grid, procName string, elems int) {
		p := &Plan{
			N: n, Ratio: ratio, Algorithm: alg, Topology: topo, Shape: shape,
			VoC: voc, Grid: grid,
			Procs: []ProcPlan{{Processor: procName, Elements: elems}},
		}
		err := p.Validate()
		if err == nil {
			// Validate caches the decoded grid; the accepted summary must
			// match it.
			g, perr := p.Partition()
			if perr != nil {
				t.Fatalf("validated plan has no partition: %v", perr)
			}
			if g.N() != n || g.VoC() != voc {
				t.Fatalf("validated plan disagrees with its grid: n %d vs %d, voc %d vs %d",
					n, g.N(), voc, g.VoC())
			}
			return
		}
		var pe *PlanError
		if !errors.As(err, &pe) {
			t.Fatalf("Validate returned %T (%v), want *PlanError", err, err)
		}
		if pe.Field == "" || pe.Error() == "" {
			t.Fatalf("PlanError without a field name: %+v", pe)
		}
	})
}

// FuzzGridDecode drives the binary grid codec directly: arbitrary bytes
// must never panic, and any accepted buffer must re-encode to itself
// (the codec is bijective on its valid range).
func FuzzGridDecode(f *testing.F) {
	g, err := BuildShape(BlockRectangle, 8, MustRatio(2, 1, 1))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(g.Encode())
	f.Add([]byte{0, 0, 0, 1, 0})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{255, 255, 255, 255, 1, 2, 3})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := partition.Decode(data)
		if err != nil {
			return
		}
		if !bytes.Equal(g.Encode(), data) {
			t.Fatalf("accepted buffer does not round-trip (n=%d)", g.N())
		}
	})
}
