// Command reproduce runs the complete reproduction suite in one shot and
// writes a markdown report: the §VII census, the Fig 13/14 comparisons,
// the §X optimal-shape tables, the engine ablation, the latency sweep,
// the optimal-shape phase diagram and the fault-injection study. It is
// the non-benchmark twin of `go test -bench=.` for generating
// EXPERIMENTS.md-style reports.
//
// Usage:
//
//	reproduce [-n 80] [-runs 20] [-seed 1] > report.md
//
// A failing section is reported inside the markdown and the remaining
// sections still run; the command exits non-zero if any section failed.
// SIGINT/SIGTERM stops the current section, flushes what was generated,
// and skips the rest (also a non-zero exit).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/experiment"
	"repro/internal/model"
	"repro/internal/partition"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("reproduce: ")
	var (
		n    = flag.Int("n", 80, "matrix dimension for grid-based studies")
		runs = flag.Int("runs", 20, "DFA runs per ratio in the census")
		seed = flag.Int64("seed", 1, "base seed")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := report(ctx, os.Stdout, *n, *runs, *seed); err != nil {
		log.Fatal(err)
	}
}

// section is one report chapter: its body writes markdown to w and may
// fail without sinking the whole report.
type section struct {
	title string
	body  func(ctx context.Context, w io.Writer) error
}

// report runs every section, embedding failures in the markdown, and
// returns an error if any section failed or the run was interrupted.
func report(ctx context.Context, out io.Writer, n, runs int, seed int64) error {
	start := time.Now()
	fmt.Fprintf(out, "# Reproduction report (N=%d, %d runs/ratio, seed %d)\n\n", n, runs, seed)

	sections := []section{
		{"§VII archetype census (Postulate 1)", func(ctx context.Context, w io.Writer) error {
			census, err := experiment.CensusContext(ctx, experiment.CensusConfig{
				N: n, RunsPerRatio: runs, Seed: seed, Beautify: true,
			})
			// A quarantine means the census still completed around the
			// failed runs: print the table, then surface the error.
			var qe *experiment.QuarantineError
			if err != nil && !errors.As(err, &qe) {
				return err
			}
			if werr := experiment.WriteCensusTable(w, census); werr != nil {
				return werr
			}
			fmt.Fprintf(w, "\ncounterexamples: %d\n", experiment.CensusCounterexamples(census))
			return err
		}},
		{fmt.Sprintf("Fig 14 sweep (SCB, fully connected, N=5000 model / N=%d sim)", n), func(ctx context.Context, w io.Writer) error {
			fig14, err := experiment.Fig14SweepContext(ctx, nil, 5000, n)
			if err != nil {
				return err
			}
			if err := experiment.WriteFig14Table(w, fig14); err != nil {
				return err
			}
			fmt.Fprintf(w, "\ncrossover: x = %.0f (theory ≈ 9.7)\n", experiment.Crossover(fig14))
			return nil
		}},
		{"§X optimal shape per ratio × algorithm", func(ctx context.Context, w io.Writer) error {
			fmt.Fprintf(w, "### fully connected\n\n")
			full, err := experiment.OptimalShapesContext(ctx, n, nil, model.FullyConnected)
			if err != nil {
				return err
			}
			if err := experiment.WriteOptimalTable(w, full); err != nil {
				return err
			}
			fmt.Fprintf(w, "\n### star topology\n\n")
			star, err := experiment.OptimalShapesContext(ctx, n, nil, model.Star)
			if err != nil {
				return err
			}
			return experiment.WriteOptimalTable(w, star)
		}},
		{"Optimal-shape phase diagram (SCB)", func(ctx context.Context, w io.Writer) error {
			wm, err := experiment.ComputeWinnerMapContext(ctx, model.SCB, model.FullyConnected, 6, 20, 1, n)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "```\n")
			if err := wm.Write(w); err != nil {
				return err
			}
			fmt.Fprintf(w, "```\n")
			return nil
		}},
		{"Push-engine ablation (3:1:1)", func(ctx context.Context, w io.Writer) error {
			abl, err := experiment.PushAblationContext(ctx, n, partition.MustRatio(3, 1, 1), min(runs, 8), seed)
			if err != nil {
				return err
			}
			return experiment.WriteAblationTable(w, abl)
		}},
		{"Latency sensitivity (Block-Rectangle, 5:2:1)", func(ctx context.Context, w io.Writer) error {
			lat, err := experiment.LatencySweep(nil, partition.MustRatio(5, 2, 1), n)
			if err != nil {
				return err
			}
			return experiment.WriteLatencyTable(w, lat)
		}},
		{"Fault-injection study (SCB, 5:2:1, canonical plan)", func(ctx context.Context, w io.Writer) error {
			rows, err := experiment.FaultStudy(ctx, model.SCB, model.FullyConnected, n,
				partition.MustRatio(5, 2, 1), experiment.CanonicalFaultPlan)
			if err != nil {
				return err
			}
			return experiment.WriteFaultTable(w, rows)
		}},
		{"Execution recovery study (worker R killed mid-multiply)", func(ctx context.Context, w io.Writer) error {
			rows, err := experiment.RecoveryStudy(ctx, experiment.RecoveryStudyConfig{})
			if err != nil {
				return err
			}
			return experiment.WriteRecoveryTable(w, rows)
		}},
	}

	var failed []string
	for _, s := range sections {
		if err := ctx.Err(); err != nil {
			fmt.Fprintf(out, "## %s\n\n**skipped: %v**\n\n", s.title, err)
			failed = append(failed, s.title)
			continue
		}
		fmt.Fprintf(out, "## %s\n\n", s.title)
		if err := s.body(ctx, out); err != nil {
			fmt.Fprintf(out, "\n**section failed: %v**\n", err)
			failed = append(failed, s.title)
			log.Printf("section %q: %v", s.title, err)
		}
		fmt.Fprintf(out, "\n")
	}

	fmt.Fprintf(out, "_generated in %v_\n", time.Since(start).Round(time.Millisecond))
	if len(failed) > 0 {
		return fmt.Errorf("%d of %d sections failed: %v", len(failed), len(sections), failed)
	}
	return nil
}
