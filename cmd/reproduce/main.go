// Command reproduce runs the complete reproduction suite in one shot and
// writes a markdown report: the §VII census, the Fig 13/14 comparisons,
// the §X optimal-shape tables, the engine ablation, the latency sweep and
// the optimal-shape phase diagram. It is the non-benchmark twin of
// `go test -bench=.` for generating EXPERIMENTS.md-style reports.
//
// Usage:
//
//	reproduce [-n 80] [-runs 20] [-seed 1] > report.md
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/experiment"
	"repro/internal/model"
	"repro/internal/partition"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("reproduce: ")
	var (
		n    = flag.Int("n", 80, "matrix dimension for grid-based studies")
		runs = flag.Int("runs", 20, "DFA runs per ratio in the census")
		seed = flag.Int64("seed", 1, "base seed")
	)
	flag.Parse()
	out := os.Stdout
	start := time.Now()

	fmt.Fprintf(out, "# Reproduction report (N=%d, %d runs/ratio, seed %d)\n\n", *n, *runs, *seed)

	fmt.Fprintf(out, "## §VII archetype census (Postulate 1)\n\n")
	census, err := experiment.Census(experiment.CensusConfig{
		N: *n, RunsPerRatio: *runs, Seed: *seed, Beautify: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := experiment.WriteCensusTable(out, census); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(out, "\ncounterexamples: %d\n\n", experiment.CensusCounterexamples(census))

	fmt.Fprintf(out, "## Fig 14 sweep (SCB, fully connected, N=5000 model / N=%d sim)\n\n", *n)
	fig14, err := experiment.Fig14Sweep(nil, 5000, *n)
	if err != nil {
		log.Fatal(err)
	}
	if err := experiment.WriteFig14Table(out, fig14); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(out, "\ncrossover: x = %.0f (theory ≈ 9.7)\n\n", experiment.Crossover(fig14))

	fmt.Fprintf(out, "## §X optimal shape per ratio × algorithm\n\n### fully connected\n\n")
	full, err := experiment.OptimalShapes(*n, nil, model.FullyConnected)
	if err != nil {
		log.Fatal(err)
	}
	if err := experiment.WriteOptimalTable(out, full); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(out, "\n### star topology\n\n")
	star, err := experiment.OptimalShapes(*n, nil, model.Star)
	if err != nil {
		log.Fatal(err)
	}
	if err := experiment.WriteOptimalTable(out, star); err != nil {
		log.Fatal(err)
	}

	fmt.Fprintf(out, "\n## Optimal-shape phase diagram (SCB)\n\n```\n")
	wm, err := experiment.ComputeWinnerMap(model.SCB, model.FullyConnected, 6, 20, 1, *n)
	if err != nil {
		log.Fatal(err)
	}
	if err := wm.Write(out); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(out, "```\n\n## Push-engine ablation (3:1:1)\n\n")
	abl, err := experiment.PushAblation(*n, partition.MustRatio(3, 1, 1), min(*runs, 8), *seed)
	if err != nil {
		log.Fatal(err)
	}
	if err := experiment.WriteAblationTable(out, abl); err != nil {
		log.Fatal(err)
	}

	fmt.Fprintf(out, "\n## Latency sensitivity (Block-Rectangle, 5:2:1)\n\n")
	lat, err := experiment.LatencySweep(nil, partition.MustRatio(5, 2, 1), *n)
	if err != nil {
		log.Fatal(err)
	}
	if err := experiment.WriteLatencyTable(out, lat); err != nil {
		log.Fatal(err)
	}

	fmt.Fprintf(out, "\n_generated in %v_\n", time.Since(start).Round(time.Millisecond))
}
