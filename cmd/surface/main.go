// Command surface emits the Fig 13 cost-surface samples as CSV: the SCB
// communication cost of the Square-Corner and Block-Rectangle partitions
// over the ratio plane Rr ∈ [1, rrmax], Pr ∈ [1, prmax] (Sr = 1), with
// the Theorem 9.1 feasibility wall marked.
//
// Usage:
//
//	surface [-rrmax 10] [-prmax 20] [-step 0.5] > fig13.csv
package main

import (
	"flag"
	"log"
	"os"

	"repro/internal/experiment"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("surface: ")
	var (
		rrMax = flag.Float64("rrmax", 10, "maximum Rr (paper: 10)")
		prMax = flag.Float64("prmax", 20, "maximum Pr (paper: 20)")
		step  = flag.Float64("step", 0.5, "sampling step")
	)
	flag.Parse()
	pts := experiment.Fig13Surface(*rrMax, *prMax, *step)
	if err := experiment.WriteSurfaceCSV(os.Stdout, pts); err != nil {
		log.Fatal(err)
	}
}
