package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files with the current output")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s (re-run with -update if the change is intended)\n--- got ---\n%s--- want ---\n%s",
			path, got, want)
	}
}

// TestGoldenCensus pins the census table for a small seeded run: the
// archetype counts, mean push counts, and VoC drops are a deterministic
// function of (N, runs, seed), so any drift in the DFA, the plateau
// logic, or the classifier shows up as a golden diff. The -trace
// timeline is exercised separately (its durations are wall-clock).
func TestGoldenCensus(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-n", "32", "-runs", "4", "-ratios", "3:1:1,5:2:1",
		"-seed", "7", "-workers", "1",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	checkGolden(t, "census_n32_seed7", out.Bytes())
}

// TestTraceTimelineShape checks the -trace output structurally instead of
// byte for byte — span durations are wall-clock — but everything else is
// pinned: one timeline per ratio, the three phases in order, and the
// seeded search's step/VoC numbers embedded in the header lines.
func TestTraceTimelineShape(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-n", "32", "-runs", "2", "-ratios", "4:1:1",
		"-seed", "7", "-workers", "1", "-trace",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "Per-run span timelines (one traced run per ratio, seed 7):") {
		t.Errorf("missing timeline banner:\n%s", s)
	}
	if n := strings.Count(s, "ratio 4:1:1: "); n != 1 {
		t.Errorf("want exactly 1 traced-run header, got %d:\n%s", n, s)
	}
	// Phases appear in execution order.
	setup := strings.Index(s, "setup")
	condense := strings.Index(s, "condense")
	total := strings.LastIndex(s, "total")
	if setup < 0 || condense < setup || total < condense {
		t.Errorf("phases out of order (setup=%d condense=%d total=%d):\n%s", setup, condense, total, s)
	}
	// The traced run reuses the census seed, so its step count is pinned.
	if !strings.Contains(s, "steps, VoC") {
		t.Errorf("traced-run header missing step/VoC summary:\n%s", s)
	}
}

// TestRunBadFlags: unparseable flags and ratios surface as errors from
// run, not panics or os.Exit.
func TestRunBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "notanumber"}, &out); err == nil {
		t.Error("bad -n accepted")
	}
	if err := run([]string{"-ratios", "bogus"}, &out); err == nil {
		t.Error("bad -ratios accepted")
	}
}
