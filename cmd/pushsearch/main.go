// Command pushsearch runs the paper's Push-search census (Section VII):
// many randomised DFA runs per processor ratio, with every terminal state
// classified into the four shape archetypes. A nonzero "other" column
// would be a counterexample to the paper's Postulate 1.
//
// Usage:
//
//	pushsearch [-n 100] [-runs 50] [-ratios 2:1:1,5:2:1] [-seed 1] [-beautify]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/experiment"
	"repro/internal/partition"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pushsearch: ")
	var (
		n        = flag.Int("n", 100, "matrix dimension N (paper: 1000)")
		runs     = flag.Int("runs", 50, "DFA runs per ratio (paper: ~10000)")
		ratios   = flag.String("ratios", "", "comma-separated Pr:Rr:Sr list (default: the paper's eleven)")
		seed     = flag.Int64("seed", 1, "base random seed")
		beautify = flag.Bool("beautify", true, "apply the Thm 8.3 cleanup before classification")
		workers  = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	)
	flag.Parse()

	cfg := experiment.CensusConfig{
		N:            *n,
		RunsPerRatio: *runs,
		Seed:         *seed,
		Beautify:     *beautify,
		Workers:      *workers,
	}
	if *ratios != "" {
		for _, s := range strings.Split(*ratios, ",") {
			r, err := partition.ParseRatio(s)
			if err != nil {
				log.Fatal(err)
			}
			cfg.Ratios = append(cfg.Ratios, r)
		}
	}
	rows, err := experiment.Census(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := experiment.WriteCensusTable(os.Stdout, rows); err != nil {
		log.Fatal(err)
	}
	if cx := experiment.CensusCounterexamples(rows); cx > 0 {
		fmt.Printf("\nWARNING: %d terminal state(s) outside archetypes A–D (Postulate 1 counterexample?)\n", cx)
		os.Exit(1)
	}
	fmt.Printf("\nAll terminal states fall into archetypes A–D (Postulate 1 holds on this sample).\n")
}
