// Command pushsearch runs the paper's Push-search census (Section VII):
// many randomised DFA runs per processor ratio, with every terminal state
// classified into the four shape archetypes. A nonzero "other" column
// would be a counterexample to the paper's Postulate 1.
//
// Usage:
//
//	pushsearch [-n 100] [-runs 50] [-ratios 2:1:1,5:2:1] [-seed 1] [-beautify]
//	           [-workers 0] [-cpuprofile search.pprof] [-memprofile heap.pprof]
//
// The profile flags write pprof data covering the census (use
// `go tool pprof` to inspect); the heap profile is taken after a final GC
// so it reflects live memory, not garbage.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/experiment"
	"repro/internal/partition"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pushsearch: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// run carries the whole program so deferred profile writers fire on every
// exit path (log.Fatal in main would skip them).
func run() error {
	var (
		n          = flag.Int("n", 100, "matrix dimension N (paper: 1000)")
		runs       = flag.Int("runs", 50, "DFA runs per ratio (paper: ~10000)")
		ratios     = flag.String("ratios", "", "comma-separated Pr:Rr:Sr list (default: the paper's eleven)")
		seed       = flag.Int64("seed", 1, "base random seed")
		beautify   = flag.Bool("beautify", true, "apply the Thm 8.3 cleanup before classification")
		workers    = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		defer func() {
			runtime.GC() // measure live objects, not garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Printf("memprofile: %v", err)
			}
			f.Close()
		}()
	}

	cfg := experiment.CensusConfig{
		N:            *n,
		RunsPerRatio: *runs,
		Seed:         *seed,
		Beautify:     *beautify,
		Workers:      *workers,
	}
	if *ratios != "" {
		for _, s := range strings.Split(*ratios, ",") {
			r, err := partition.ParseRatio(s)
			if err != nil {
				return err
			}
			cfg.Ratios = append(cfg.Ratios, r)
		}
	}
	rows, err := experiment.Census(cfg)
	if err != nil {
		return err
	}
	if err := experiment.WriteCensusTable(os.Stdout, rows); err != nil {
		return err
	}
	if cx := experiment.CensusCounterexamples(rows); cx > 0 {
		return fmt.Errorf("%d terminal state(s) outside archetypes A–D (Postulate 1 counterexample?)", cx)
	}
	fmt.Printf("\nAll terminal states fall into archetypes A–D (Postulate 1 holds on this sample).\n")
	return nil
}
