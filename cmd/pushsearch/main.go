// Command pushsearch runs the paper's Push-search census (Section VII):
// many randomised DFA runs per processor ratio, with every terminal state
// classified into the four shape archetypes. A nonzero "other" column
// would be a counterexample to the paper's Postulate 1.
//
// Usage:
//
//	pushsearch [-n 100] [-runs 50] [-ratios 2:1:1,5:2:1] [-seed 1] [-beautify]
//	           [-workers 0] [-journal census.jsonl] [-resume] [-trace]
//	           [-cpuprofile search.pprof] [-memprofile heap.pprof]
//
// The profile flags write pprof data covering the census (use
// `go tool pprof` to inspect); the heap profile is taken after a final GC
// so it reflects live memory, not garbage.
//
// -trace appends one instrumented DFA run per ratio after the census and
// prints each run's span timeline (setup, condense, beautify) as an
// ASCII chart — where a slow search's wall time went, without attaching
// a profiler.
//
// -journal checkpoints every completed DFA run to an append-only
// CRC-checked JSONL file; SIGINT/SIGTERM (or SIGKILL) mid-census loses at
// most the in-flight runs. Re-running with -resume replays the journal
// and finishes only the remaining work — the output is bit-identical to
// an uninterrupted run. An interrupted census still flushes the rows it
// completed and exits non-zero.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"repro/internal/experiment"
	"repro/internal/partition"
	"repro/internal/push"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pushsearch: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run carries the whole program so deferred profile writers fire on every
// exit path (log.Fatal in main would skip them). It takes its argument
// list and output stream explicitly so tests can drive it like a user
// and golden-check stdout.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pushsearch", flag.ContinueOnError)
	var (
		n          = fs.Int("n", 100, "matrix dimension N (paper: 1000)")
		runs       = fs.Int("runs", 50, "DFA runs per ratio (paper: ~10000)")
		ratios     = fs.String("ratios", "", "comma-separated Pr:Rr:Sr list (default: the paper's eleven)")
		seed       = fs.Int64("seed", 1, "base random seed")
		beautify   = fs.Bool("beautify", true, "apply the Thm 8.3 cleanup before classification")
		workers    = fs.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		journal    = fs.String("journal", "", "checkpoint completed runs to this JSONL file")
		resume     = fs.Bool("resume", false, "replay an existing -journal and finish the remaining runs")
		traceRuns  = fs.Bool("trace", false, "run one instrumented DFA per ratio after the census and print its span timeline")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		defer func() {
			runtime.GC() // measure live objects, not garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Printf("memprofile: %v", err)
			}
			f.Close()
		}()
	}

	cfg := experiment.CensusConfig{
		N:            *n,
		RunsPerRatio: *runs,
		Seed:         *seed,
		Beautify:     *beautify,
		Workers:      *workers,
		Journal:      *journal,
		Resume:       *resume,
	}
	if *ratios != "" {
		for _, s := range strings.Split(*ratios, ",") {
			r, err := partition.ParseRatio(s)
			if err != nil {
				return err
			}
			cfg.Ratios = append(cfg.Ratios, r)
		}
	}
	rows, err := experiment.CensusContext(ctx, cfg)

	var quarantined *experiment.QuarantineError
	switch {
	case err == nil:
	case errors.As(err, &quarantined):
		// The census completed around the quarantined runs; report them
		// below but still print the table.
	default:
		// Interrupted or failed: flush whatever completed, then exit
		// non-zero through main.
		if len(rows) > 0 {
			total := len(cfg.Ratios)
			if total == 0 {
				total = len(partition.PaperRatios)
			}
			fmt.Fprintf(stdout, "(partial census: %d of %d ratio rows completed before the error)\n\n",
				len(rows), total)
			if werr := experiment.WriteCensusTable(stdout, rows); werr != nil {
				log.Printf("flushing partial table: %v", werr)
			}
		}
		return err
	}

	if err := experiment.WriteCensusTable(stdout, rows); err != nil {
		return err
	}
	if quarantined != nil {
		fmt.Fprintf(stdout, "\n%d run(s) quarantined after repeated failures:\n", len(quarantined.Failures))
		for _, f := range quarantined.Failures {
			fmt.Fprintf(stdout, "  ratio %s run %d (seed %d, %d attempts): %v\n",
				f.Ratio, f.Run, f.Seed, f.Attempts, f.Err)
		}
		return fmt.Errorf("census completed with %d quarantined run(s)", len(quarantined.Failures))
	}
	if cx := experiment.CensusCounterexamples(rows); cx > 0 {
		return fmt.Errorf("%d terminal state(s) outside archetypes A–D (Postulate 1 counterexample?)", cx)
	}
	fmt.Fprintf(stdout, "\nAll terminal states fall into archetypes A–D (Postulate 1 holds on this sample).\n")

	if *traceRuns {
		if err := writeTraces(ctx, stdout, cfg); err != nil {
			return err
		}
	}
	return nil
}

// writeTraces runs one instrumented DFA per ratio and prints each run's
// span timeline. The traced runs reuse the census base seed, so the
// timeline explains a run of the same family the census just measured.
func writeTraces(ctx context.Context, w io.Writer, cfg experiment.CensusConfig) error {
	ratios := cfg.Ratios
	if len(ratios) == 0 {
		ratios = partition.PaperRatios
	}
	fmt.Fprintf(w, "\nPer-run span timelines (one traced run per ratio, seed %d):\n", cfg.Seed)
	for _, r := range ratios {
		tr := trace.New()
		res, err := push.RunContext(ctx, push.Config{
			N:        cfg.N,
			Ratio:    r,
			Seed:     cfg.Seed,
			Beautify: cfg.Beautify,
			Trace:    tr,
		})
		if err != nil {
			return fmt.Errorf("traced run for %s: %w", r, err)
		}
		fmt.Fprintf(w, "\nratio %s: %d steps, VoC %d -> %d\n", r, res.Steps, res.InitialVoC, res.FinalVoC)
		if err := tr.WriteTimeline(w, 48); err != nil {
			return err
		}
	}
	return nil
}
