// Command npush runs the generalised N-processor Push search — the
// paper's §XI extension ("The ultimate aim is to determine the optimal
// data partitioning shape … for any number of heterogeneous processors").
//
// Usage:
//
//	npush -ratio 8:4:2:1 [-n 80] [-runs 5] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"repro/internal/nproc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("npush: ")
	var (
		ratioStr = flag.String("ratio", "8:4:2:1", "speed ratio, fastest first, colon-separated")
		n        = flag.Int("n", 80, "matrix dimension")
		runs     = flag.Int("runs", 3, "number of runs")
		seed     = flag.Int64("seed", 1, "base seed")
		boxes    = flag.Int("boxes", 32, "render granularity")
		full     = flag.Bool("fulldirs", true, "give every processor all four push directions")
	)
	flag.Parse()

	var ratio nproc.Ratio
	for _, part := range strings.Split(*ratioStr, ":") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			log.Fatal(err)
		}
		ratio = append(ratio, v)
	}
	if err := ratio.Validate(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d-processor Push search, ratio %s, N=%d\n\n", len(ratio), ratio, *n)
	for run := 0; run < *runs; run++ {
		res, err := nproc.Run(nproc.RunConfig{
			N: *n, Ratio: ratio, Seed: *seed + int64(run), FullDirections: *full,
		})
		if err != nil {
			log.Fatal(err)
		}
		drop := 100 * (1 - float64(res.FinalVoC)/float64(res.InitialVoC))
		fmt.Printf("run %d: %d pushes, VoC %d → %d (−%.0f%%), converged=%v\n",
			run, res.Steps, res.InitialVoC, res.FinalVoC, drop, res.Converged)
		if run == 0 {
			fmt.Printf("\nterminal shape ('.'=fastest, digits=slower processors):\n%s\n",
				res.Final.RenderASCII(*boxes))
		}
	}
}
