// Command pland serves partition plans over HTTP — the paper's optimal
// shape decision (Section V) behind a deadline-aware JSON API with
// admission control, degraded-mode fallback, and graceful drain.
//
// Usage:
//
//	pland [-addr 127.0.0.1:0] [-addr-file pland.addr]
//	      [-default-timeout 2s] [-max-timeout 30s]
//	      [-max-concurrent 0] [-max-queue 0]
//	      [-cache-ttl 5m] [-cache-journal plancache.jsonl]
//	      [-breaker-threshold 3] [-breaker-cooldown 5s]
//	      [-fault-straggler 0] [-fault-step 200us]
//	      [-atlas atlas.bin] [-atlas-warm] [-atlas-verify 4]
//	      [-calibrate] [-calibrate-interval 1s] [-calibrate-quantum 0.25]
//	      [-calibrate-straggler 0] [-calibrate-straggler-after 0]
//	      [-shed-target-latency 300ms] [-shed-interval 100ms]
//	      [-drain-timeout 10s] [-seed 1] [-debug-addr ""]
//
// -calibrate runs the background calibrator (internal/calibrate): it
// micro-benchmarks the multiply kernel each period, maintains EWMA
// speed-ratio estimates with confidence intervals, and publishes them
// as the scenario default that /v1/plan requests with ratio "auto"
// resolve against. Drift past -drift-threshold invalidates the plans
// computed under the old estimate and re-plans them in the background
// (pland_replans_total counts these). -calibrate-straggler N arms a
// drift drill: the calibrator's bench sees an N× straggler on P
// starting -calibrate-straggler-after into the run, so the published
// ratio — and the optimal shape — visibly change while serving.
//
// The shed ladder degrades answer quality one rung at a time as load
// rises — full search, bounded search, atlas/closed-form, stale cache,
// 429 — and recovers the same way; transitions move at most one rung
// per -shed-interval, so no quality level is ever skipped
// (pland_tier_transitions_total records every move).
//
// -atlas loads a shape-atlas snapshot (built with shapeopt -build-atlas)
// and serves on-atlas /v1/plan requests from it in O(1), bypassing the
// search engine, cache, and admission gate entirely. At startup the
// snapshot's integrity is checked (CRC) and -atlas-verify N cells are
// re-derived against the live planner — a divergent snapshot (wrong
// machine model vintage) is a refusal to start, exit 2, not a quiet
// wrong answer. -atlas-warm pre-encodes every cell's response at boot so
// the first hit on each cell is as cheap as the thousandth.
//
// Endpoints: POST (or GET with query params) /v1/plan, /v1/plan:batch,
// /v1/evaluate,
// /v1/search; GET /v1/stats, /healthz (liveness), /readyz (readiness:
// breaker state, admission-gate occupancy, cache-journal health — what
// a replica pool uses to eject a degraded replica), and /metrics (a
// Prometheus text scrape of the serving and search counters, which
// stays up during a drain). Clients bound the server's work with a
// Request-Timeout header; past it the planner answers with the
// canonical candidate shape marked Degraded instead of going silent.
//
// -debug-addr starts a second listener serving net/http/pprof under
// /debug/pprof/ plus the same /metrics scrape. Keep it on a loopback
// or otherwise private address: profiles are not for the open
// internet, which is why they do not ride on the main listener.
//
// -addr-file writes the bound address (useful with -addr :0) after the
// listener is live, so scripts can poll for it race-free.
//
// At startup the -cache-journal file is integrity-scanned: a journal
// with unrepairable damage is renamed aside (.corrupt) and pland starts
// cold, reporting the quarantine via /readyz, instead of crashing or
// serving from a torn file.
//
// -fault-straggler N injects an N× CPU straggler into the search path via
// the simulator's fault plan — a drill switch for verifying degraded-mode
// behaviour end to end, not a production knob.
//
// On SIGTERM/SIGINT pland stops accepting work, finishes in-flight
// requests, persists the plan cache to -cache-journal, and exits 0. If
// the drain outlives -drain-timeout — or a second signal arrives — it
// exits 1 immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/atlas"
	"repro/internal/calibrate"
	"repro/internal/journal"
	"repro/internal/partition"
	serveimpl "repro/internal/serve"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pland: ")
	os.Exit(run())
}

// scrubCacheJournal warms the plan cache from the journal chain at path
// (rotated segments included) after a per-segment integrity scan. A
// segment with unrepairable damage (mid-file corruption — a torn tail is
// fine, the journal layer repairs that) is quarantined individually:
// renamed aside for forensics and reported via /readyz. Quarantining a
// rotated segment leaves a numbering gap, which ends the chain at the
// damage point — history older than the corruption is abandoned rather
// than spliced across it — while newer segments still warm the cache.
// Crashing would turn one bad file into an outage, and loading anyway
// would serve from a file known to be lying.
func scrubCacheJournal(srv *serveimpl.Server, path string) {
	segs := journal.Segments(path)
	if len(segs) == 0 {
		// First boot: nothing to warm from.
		return
	}
	for _, seg := range segs {
		if err := journal.Verify(seg); err != nil && !errors.Is(err, os.ErrNotExist) {
			quarantine(srv, seg, err)
		}
	}
	n, lerr := srv.LoadCache(path)
	if lerr != nil && !errors.Is(lerr, os.ErrNotExist) {
		// Verified clean but unloadable (e.g. wrong journal kind):
		// quarantine rather than overwrite it on drain.
		quarantine(srv, path, lerr)
		return
	}
	if n > 0 {
		log.Printf("warmed plan cache with %d entries from %s (%d segments)", n, path, len(segs))
	}
}

func quarantine(srv *serveimpl.Server, path string, cause error) {
	q, qerr := journal.Quarantine(path)
	if qerr != nil {
		log.Printf("cache journal corrupt (%v) and quarantine failed (%v): starting cold, journal left in place", cause, qerr)
		srv.SetJournalHealth(fmt.Errorf("corrupt (%v); quarantine failed: %v", cause, qerr))
		return
	}
	log.Printf("cache journal corrupt: %v — quarantined to %s, starting cold", cause, q)
	srv.SetJournalHealth(fmt.Errorf("corrupt journal quarantined to %s: %v", q, cause))
}

func run() int {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
		addrFile     = flag.String("addr-file", "", "write the bound address to this file once listening")
		defTimeout   = flag.Duration("default-timeout", 2*time.Second, "deadline when the client sends no Request-Timeout")
		maxTimeout   = flag.Duration("max-timeout", 30*time.Second, "upper clamp on client-requested deadlines")
		maxConc      = flag.Int("max-concurrent", 0, "in-flight planning bound (0 = GOMAXPROCS)")
		maxQueue     = flag.Int("max-queue", 0, "admission queue bound (0 = 2×max-concurrent)")
		cacheTTL     = flag.Duration("cache-ttl", 5*time.Minute, "plan cache freshness window")
		cacheJournal = flag.String("cache-journal", "", "persist the plan cache to this CRC journal on drain (and warm from it on start)")
		cjMaxBytes   = flag.Int64("cache-journal-max-bytes", 1<<20, "rotate the live cache journal segment at this size")
		cjMaxAge     = flag.Duration("cache-journal-max-age", 0, "rotate the live cache journal segment at this age (0 = size-only)")
		cjSegments   = flag.Int("cache-journal-segments", 3, "rotated cache journal segments kept before the oldest is deleted")
		brkThreshold = flag.Int("breaker-threshold", 3, "consecutive search failures that open the breaker (-1 disables)")
		brkCooldown  = flag.Duration("breaker-cooldown", 5*time.Second, "how long the breaker stays open")
		faultFactor  = flag.Float64("fault-straggler", 0, "inject an N× CPU straggler into the search path (0 = off; drill switch)")
		faultStep    = flag.Duration("fault-step", 200*time.Microsecond, "nominal per-Push cost billed against the injected fault")
		atlasPath    = flag.String("atlas", "", "serve on-atlas plan requests from this snapshot (shapeopt -build-atlas)")
		atlasWarm    = flag.Bool("atlas-warm", true, "pre-encode every atlas cell's response at startup")
		atlasVerify  = flag.Int("atlas-verify", 4, "re-derive this many random atlas cells against the live planner at startup; any divergence refuses to start (0 = trust the CRC)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "how long SIGTERM waits for in-flight requests")
		seed         = flag.Int64("seed", 1, "default search seed for requests that omit one")
		debugAddr    = flag.String("debug-addr", "", "serve net/http/pprof and /metrics on this private address (empty = off)")

		calOn        = flag.Bool("calibrate", false, "run the background calibrator; ratio \"auto\" requests resolve against its estimates")
		calInterval  = flag.Duration("calibrate-interval", time.Second, "calibration period")
		calBenchN    = flag.Int("calibrate-bench-n", 64, "calibration micro-benchmark matrix size")
		calQuantum   = flag.Float64("calibrate-quantum", 0.25, "grid the published ratio is rounded to")
		calDrift     = flag.Float64("drift-threshold", 0.25, "relative estimate change that triggers a re-publish")
		calStraggler = flag.Float64("calibrate-straggler", 0, "inject an N× CPU straggler into the calibrator's bench (0 = off; drift drill)")
		calStragAft  = flag.Duration("calibrate-straggler-after", 0, "arm the calibration straggler this long after start")

		shedTarget   = flag.Duration("shed-target-latency", 300*time.Millisecond, "latency the shed ladder steers toward")
		shedInterval = flag.Duration("shed-interval", 100*time.Millisecond, "how often the shed ladder re-evaluates (one rung max per evaluation)")
	)
	flag.Parse()

	cfg := serveimpl.Config{
		DefaultTimeout:    *defTimeout,
		MaxTimeout:        *maxTimeout,
		MaxConcurrent:     *maxConc,
		MaxQueue:          *maxQueue,
		CacheTTL:          *cacheTTL,
		BreakerThreshold:  *brkThreshold,
		BreakerCooldown:   *brkCooldown,
		SearchSeed:        *seed,
		ShedTargetLatency: *shedTarget,
		ShedInterval:      *shedInterval,
		Logf:              log.Printf,
	}
	if *faultFactor > 0 {
		fp := sim.NewFaultPlan()
		if err := fp.AddStraggler(partition.P, *faultFactor, 0, 1e12); err != nil {
			log.Printf("bad -fault-straggler: %v", err)
			return 2
		}
		cfg.Fault = fp
		cfg.FaultStepCost = *faultStep
		log.Printf("fault injection armed: %.0f× straggler on processor P", *faultFactor)
	}
	if *atlasPath != "" {
		a, err := atlas.Load(*atlasPath)
		if err != nil {
			log.Printf("atlas: %v", err)
			return 2
		}
		if *atlasVerify > 0 {
			mismatches, err := a.SpotCheck(context.Background(), *atlasVerify, *seed)
			if err != nil {
				log.Printf("atlas verify: %v", err)
				return 2
			}
			if len(mismatches) > 0 {
				for _, m := range mismatches {
					log.Printf("atlas verify: MISMATCH %s", m)
				}
				log.Printf("atlas %s diverges from the live planner in %d cells — refusing to serve from it", *atlasPath, len(mismatches))
				return 2
			}
		}
		cfg.Atlas = a
		log.Printf("atlas loaded: %s, %s topology, n=%d, %d valid cells (%d verified)",
			a.Algorithm(), a.Topology(), a.N(), a.ValidCells(), *atlasVerify)
	}

	srv, err := serveimpl.New(cfg)
	if err != nil {
		log.Printf("config: %v", err)
		return 2
	}
	if *cacheJournal != "" {
		scrubCacheJournal(srv, *cacheJournal)
		rc := journal.RotateConfig{MaxBytes: *cjMaxBytes, MaxAge: *cjMaxAge, MaxSegments: *cjSegments}
		if err := srv.JournalCache(*cacheJournal, rc); err != nil {
			log.Printf("cache journal: live append disabled: %v", err)
		}
	}
	if *calOn {
		ccfg := calibrate.Config{
			Interval:       *calInterval,
			BenchN:         *calBenchN,
			Quantum:        *calQuantum,
			DriftThreshold: *calDrift,
			OnPublish:      srv.ApplyEstimate,
			Logf:           log.Printf,
		}
		if *calStraggler > 0 {
			fp := sim.NewFaultPlan()
			// The calibrator's Stretch start is seconds since its
			// creation, so a straggler armed "after" needs no timer: the
			// fault window simply opens when the clock reaches it.
			if err := fp.AddStraggler(partition.P, *calStraggler, calStragAft.Seconds(), 1e12); err != nil {
				log.Printf("bad -calibrate-straggler: %v", err)
				return 2
			}
			ccfg.Stretch = fp.StretchCPU
			log.Printf("calibration drift drill armed: %.0f× straggler on P after %v", *calStraggler, *calStragAft)
		}
		cal := calibrate.New(ccfg)
		srv.AttachCalibrator(cal)
		// One synchronous round so ratio:"auto" is answerable the moment
		// the listener is up, then the background loop takes over.
		cal.RunOnce(context.Background())
		cal.Start()
		defer cal.Close()
		log.Printf("calibrator running: interval %v, bench n=%d, quantum %g, drift threshold %g",
			*calInterval, *calBenchN, *calQuantum, *calDrift)
	}
	if *atlasPath != "" && *atlasWarm {
		encoded, rejected := srv.WarmAtlas()
		if rejected > 0 {
			log.Printf("atlas warm: %d cells rejected by the encode-time cross-check — those ratios fall through to search", rejected)
		}
		log.Printf("atlas warm: %d cells pre-encoded", encoded)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Printf("listen: %v", err)
		return 2
	}
	if *addrFile != "" {
		tmp := *addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			log.Printf("write -addr-file: %v", err)
			return 2
		}
		if err := os.Rename(tmp, *addrFile); err != nil {
			log.Printf("write -addr-file: %v", err)
			return 2
		}
	}
	log.Printf("serving on http://%s", ln.Addr())

	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Printf("debug listen: %v", err)
			return 2
		}
		mux := http.NewServeMux()
		// The default pprof mux registrations, mounted explicitly so the
		// profiles live on this private listener only — importing the
		// package must not open them on the serving mux.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/metrics", srv.MetricsRegistry().Handler())
		dbgSrv := &http.Server{Handler: mux}
		go func() {
			if err := dbgSrv.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("debug serve: %v", err)
			}
		}()
		defer dbgSrv.Close()
		log.Printf("debug (pprof + metrics) on http://%s", dln.Addr())
	}

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)

	select {
	case err := <-serveErr:
		log.Printf("serve: %v", err)
		return 1
	case sig := <-sigs:
		log.Printf("%v: draining (timeout %v)", sig, *drainTimeout)
	}

	// Drain: refuse new work, let in-flight requests finish, then flush
	// the cache journal. A second signal or an overrun drain aborts hard.
	srv.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- httpSrv.Shutdown(ctx) }()

	select {
	case sig := <-sigs:
		log.Printf("%v during drain: aborting", sig)
		httpSrv.Close()
		return 1
	case err := <-done:
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				log.Printf("drain timed out after %v with requests still in flight", *drainTimeout)
			} else {
				log.Printf("drain: %v", err)
			}
			httpSrv.Close()
			return 1
		}
	}

	if *cacheJournal != "" {
		n, err := srv.SaveCache(*cacheJournal)
		if err != nil {
			log.Printf("cache flush failed: %v", err)
			return 1
		}
		log.Printf("flushed %d cache entries to %s", n, *cacheJournal)
	}
	st := srv.Stats()
	log.Printf("drained clean: %d requests (%d searched, %d degraded, %d shed)",
		st.Requests, st.Searched, st.Degraded, st.Shed)
	fmt.Fprintln(os.Stderr, "pland: bye")
	return 0
}
