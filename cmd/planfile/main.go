// Command planfile creates, inspects and executes partition plans — the
// serialisable artefact a downstream runtime would consume.
//
// Modes:
//
//	planfile -create -ratio 10:1:1 -alg SCB -n 500 -o plan.json
//	planfile -show plan.json
//	planfile -exec plan.json [-seed 1]      run the plan on goroutine processors
//
// A truncated, corrupt, or internally inconsistent plan file (fields out
// of range, grid/VoC mismatch, tampered processor shares) is rejected
// with a one-line diagnostic naming the offending field, and the process
// exits non-zero — it is never silently executed.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	heteropart "repro"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main's testable core: parses args, performs one mode, and
// returns the process exit code. Failures print a single diagnostic line
// to stderr.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("planfile", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		create   = fs.Bool("create", false, "create a plan")
		show     = fs.String("show", "", "print a plan file")
		execPath = fs.String("exec", "", "execute a plan file")
		ratioStr = fs.String("ratio", "5:2:1", "create: processor ratio")
		algStr   = fs.String("alg", "SCB", "create: MMM algorithm")
		n        = fs.Int("n", 200, "create: matrix dimension")
		out      = fs.String("o", "", "create: output path (default stdout)")
		star     = fs.Bool("star", false, "create: star topology")
		seed     = fs.Int64("seed", 1, "exec: matrix seed")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintf(stderr, "planfile: %v\n", err)
		return 1
	}

	switch {
	case *create:
		ratio, err := heteropart.ParseRatio(*ratioStr)
		if err != nil {
			return fail(err)
		}
		alg, err := heteropart.ParseAlgorithm(*algStr)
		if err != nil {
			return fail(err)
		}
		m := heteropart.DefaultMachine(ratio)
		if *star {
			m.Topology = heteropart.Star
		}
		plan, err := heteropart.NewPlan(alg, m, *n)
		if err != nil {
			return fail(err)
		}
		w := stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				return fail(err)
			}
			defer f.Close()
			w = f
		}
		if err := plan.WriteJSON(w); err != nil {
			return fail(err)
		}
		if *out != "" {
			fmt.Fprintf(stdout, "wrote %s: %s for ratio %s (VoC %d, expected T_exe %.6fs)\n",
				*out, plan.Shape, plan.Ratio, plan.VoC, plan.Expected.Total)
		}
		return 0

	case *show != "":
		plan, err := readPlanFile(*show)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "plan: %s, ratio %s, N=%d, %s on %s topology\n",
			plan.Shape, plan.Ratio, plan.N, plan.Algorithm, plan.Topology)
		fmt.Fprintf(stdout, "VoC %d elements; expected T_comm=%.6fs T_exe=%.6fs\n",
			plan.VoC, plan.Expected.Comm, plan.Expected.Total)
		for _, pp := range plan.Procs {
			fmt.Fprintf(stdout, "  %s: speed %g, %d elements, sends %d, rect rows %d..%d cols %d..%d\n",
				pp.Processor, pp.Speed, pp.Elements, pp.SendElements,
				pp.Rect[0], pp.Rect[2]-1, pp.Rect[1], pp.Rect[3]-1)
		}
		g, err := plan.Partition()
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "\n%s", g.RenderASCII(32))
		return 0

	case *execPath != "":
		plan, err := readPlanFile(*execPath)
		if err != nil {
			return fail(err)
		}
		g, err := plan.Partition()
		if err != nil {
			return fail(err)
		}
		ratio, err := heteropart.ParseRatio(plan.Ratio)
		if err != nil {
			return fail(err)
		}
		alg, err := heteropart.ParseAlgorithm(plan.Algorithm)
		if err != nil {
			return fail(err)
		}
		if alg != heteropart.SCB && alg != heteropart.PCB {
			alg = heteropart.SCB
		}
		rng := rand.New(rand.NewSource(*seed))
		a := heteropart.NewMatrix(plan.N)
		b := heteropart.NewMatrix(plan.N)
		a.FillRandom(rng)
		b.FillRandom(rng)
		_, stats, err := heteropart.Multiply(
			heteropart.ExecConfig{Machine: heteropart.DefaultMachine(ratio), Algorithm: alg}, g, a, b)
		if err != nil {
			return fail(err)
		}
		status := "volume matches plan"
		if stats.TotalVolume != plan.VoC {
			status = fmt.Sprintf("VOLUME MISMATCH: moved %d, planned %d", stats.TotalVolume, plan.VoC)
		}
		fmt.Fprintf(stdout, "executed %s: moved %d elements, wall %v — %s\n",
			plan.Shape, stats.TotalVolume, stats.Wall, status)
		return 0

	default:
		fs.Usage()
		return 2
	}
}

// readPlanFile loads and validates a plan, prefixing the diagnostic with
// the file path and, for validation failures, the offending field.
func readPlanFile(path string) (*heteropart.Plan, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	plan, err := heteropart.ReadPlan(f)
	if err != nil {
		var pe *heteropart.PlanError
		if errors.As(err, &pe) {
			return nil, fmt.Errorf("%s: corrupt plan (field %q): %s", path, pe.Field, pe.Reason)
		}
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return plan, nil
}
