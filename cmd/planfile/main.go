// Command planfile creates, inspects and executes partition plans — the
// serialisable artefact a downstream runtime would consume.
//
// Modes:
//
//	planfile -create -ratio 10:1:1 -alg SCB -n 500 -o plan.json
//	planfile -show plan.json
//	planfile -exec plan.json [-seed 1]      run the plan on goroutine processors
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	heteropart "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("planfile: ")
	var (
		create   = flag.Bool("create", false, "create a plan")
		show     = flag.String("show", "", "print a plan file")
		execPath = flag.String("exec", "", "execute a plan file")
		ratioStr = flag.String("ratio", "5:2:1", "create: processor ratio")
		algStr   = flag.String("alg", "SCB", "create: MMM algorithm")
		n        = flag.Int("n", 200, "create: matrix dimension")
		out      = flag.String("o", "", "create: output path (default stdout)")
		star     = flag.Bool("star", false, "create: star topology")
		seed     = flag.Int64("seed", 1, "exec: matrix seed")
	)
	flag.Parse()

	switch {
	case *create:
		ratio, err := heteropart.ParseRatio(*ratioStr)
		if err != nil {
			log.Fatal(err)
		}
		alg, err := heteropart.ParseAlgorithm(*algStr)
		if err != nil {
			log.Fatal(err)
		}
		m := heteropart.DefaultMachine(ratio)
		if *star {
			m.Topology = heteropart.Star
		}
		plan, err := heteropart.NewPlan(alg, m, *n)
		if err != nil {
			log.Fatal(err)
		}
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := plan.WriteJSON(w); err != nil {
			log.Fatal(err)
		}
		if *out != "" {
			fmt.Printf("wrote %s: %s for ratio %s (VoC %d, expected T_exe %.6fs)\n",
				*out, plan.Shape, plan.Ratio, plan.VoC, plan.Expected.Total)
		}

	case *show != "":
		f, err := os.Open(*show)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		plan, err := heteropart.ReadPlan(f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("plan: %s, ratio %s, N=%d, %s on %s topology\n",
			plan.Shape, plan.Ratio, plan.N, plan.Algorithm, plan.Topology)
		fmt.Printf("VoC %d elements; expected T_comm=%.6fs T_exe=%.6fs\n",
			plan.VoC, plan.Expected.Comm, plan.Expected.Total)
		for _, pp := range plan.Procs {
			fmt.Printf("  %s: speed %g, %d elements, sends %d, rect rows %d..%d cols %d..%d\n",
				pp.Processor, pp.Speed, pp.Elements, pp.SendElements,
				pp.Rect[0], pp.Rect[2]-1, pp.Rect[1], pp.Rect[3]-1)
		}
		g, err := plan.Partition()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s", g.RenderASCII(32))

	case *execPath != "":
		f, err := os.Open(*execPath)
		if err != nil {
			log.Fatal(err)
		}
		plan, err := heteropart.ReadPlan(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		g, err := plan.Partition()
		if err != nil {
			log.Fatal(err)
		}
		ratio, err := heteropart.ParseRatio(plan.Ratio)
		if err != nil {
			log.Fatal(err)
		}
		alg, err := heteropart.ParseAlgorithm(plan.Algorithm)
		if err != nil {
			log.Fatal(err)
		}
		if alg != heteropart.SCB && alg != heteropart.PCB {
			alg = heteropart.SCB
		}
		rng := rand.New(rand.NewSource(*seed))
		a := heteropart.NewMatrix(plan.N)
		b := heteropart.NewMatrix(plan.N)
		a.FillRandom(rng)
		b.FillRandom(rng)
		_, stats, err := heteropart.Multiply(
			heteropart.ExecConfig{Machine: heteropart.DefaultMachine(ratio), Algorithm: alg}, g, a, b)
		if err != nil {
			log.Fatal(err)
		}
		status := "volume matches plan"
		if stats.TotalVolume != plan.VoC {
			status = fmt.Sprintf("VOLUME MISMATCH: moved %d, planned %d", stats.TotalVolume, plan.VoC)
		}
		fmt.Printf("executed %s: moved %d elements, wall %v — %s\n",
			plan.Shape, stats.TotalVolume, stats.Wall, status)

	default:
		flag.Usage()
		os.Exit(2)
	}
}
