package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files with the current output")

// checkGolden compares got against testdata/<name>.golden, rewriting the
// file when -update is set:
//
//	go test ./cmd/planfile -run TestGolden -update
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s (re-run with -update if the change is intended)\n--- got ---\n%s--- want ---\n%s",
			path, got, want)
	}
}

// TestGoldenCreate pins the serialised plan artefact byte for byte: the
// chosen shape, the cost model numbers, the processor shares, and the
// base64 grid for a few representative scenarios. Any change to the
// planning pipeline's output format or decisions shows up as a golden
// diff instead of silently shifting what downstream runtimes consume.
func TestGoldenCreate(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"create_10_1_1_scb", []string{"-create", "-ratio", "10:1:1", "-alg", "SCB", "-n", "24"}},
		{"create_2_2_1_pcb", []string{"-create", "-ratio", "2:2:1", "-alg", "PCB", "-n", "24"}},
		{"create_5_2_1_sco_star", []string{"-create", "-ratio", "5:2:1", "-alg", "SCO", "-n", "24", "-star"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, stdout, stderr := runCLI(t, tc.args...)
			if code != 0 {
				t.Fatalf("exit %d: %s", code, stderr)
			}
			checkGolden(t, tc.name, []byte(stdout))
		})
	}
}

// TestGoldenShow pins the human-readable rendering of a plan file,
// including the ASCII grid picture.
func TestGoldenShow(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plan.json")
	if code, _, stderr := runCLI(t, "-create", "-ratio", "10:1:1", "-alg", "SCB", "-n", "24", "-o", path); code != 0 {
		t.Fatalf("create exit %d: %s", code, stderr)
	}
	code, stdout, stderr := runCLI(t, "-show", path)
	if code != 0 {
		t.Fatalf("show exit %d: %s", code, stderr)
	}
	checkGolden(t, "show_10_1_1_scb", []byte(stdout))
}
