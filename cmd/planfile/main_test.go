package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestCreateShowRoundTrip: a created plan file shows cleanly.
func TestCreateShowRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plan.json")
	code, _, stderr := runCLI(t, "-create", "-ratio", "5:2:1", "-alg", "SCB", "-n", "24", "-o", path)
	if code != 0 {
		t.Fatalf("create exit %d: %s", code, stderr)
	}
	code, stdout, stderr := runCLI(t, "-show", path)
	if code != 0 {
		t.Fatalf("show exit %d: %s", code, stderr)
	}
	if !strings.Contains(stdout, "N=24") || !strings.Contains(stdout, "VoC") {
		t.Fatalf("show output missing plan summary:\n%s", stdout)
	}
}

// TestShowCorruptPlanFails: a tampered plan file must exit non-zero with
// a one-line diagnostic naming the bad field, for -show and -exec alike.
func TestShowCorruptPlanFails(t *testing.T) {
	good := filepath.Join(t.TempDir(), "plan.json")
	if code, _, stderr := runCLI(t, "-create", "-n", "24", "-o", good); code != 0 {
		t.Fatalf("create exit %d: %s", code, stderr)
	}
	raw, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		mutate  func(string) string
		wantMsg string
	}{
		{"truncated", func(s string) string { return s[:len(s)/2] }, ""},
		{"negative n", func(s string) string { return strings.Replace(s, `"n": 24`, `"n": -24`, 1) }, `"n"`},
		{"tampered voc", func(s string) string { return strings.Replace(s, `"voc"`, `"voc": 1, "ignored"`, 1) }, ""},
		{"bad shape", func(s string) string { return strings.Replace(s, `"shape": "`, `"shape": "Mystery-`, 1) }, `"shape"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := filepath.Join(t.TempDir(), "bad.json")
			if err := os.WriteFile(bad, []byte(tc.mutate(string(raw))), 0o644); err != nil {
				t.Fatal(err)
			}
			for _, mode := range []string{"-show", "-exec"} {
				code, _, stderr := runCLI(t, mode, bad)
				if code == 0 {
					t.Fatalf("%s accepted corrupt plan (%s)", mode, tc.name)
				}
				if !strings.HasPrefix(stderr, "planfile: ") || strings.Count(strings.TrimSpace(stderr), "\n") != 0 {
					t.Fatalf("%s diagnostic not a single planfile: line:\n%s", mode, stderr)
				}
				if tc.wantMsg != "" && !strings.Contains(stderr, tc.wantMsg) {
					t.Fatalf("%s diagnostic does not name field %s:\n%s", mode, tc.wantMsg, stderr)
				}
			}
		})
	}
}

// TestMissingFileFails: a nonexistent path is a non-zero exit with a
// diagnostic, not a panic.
func TestMissingFileFails(t *testing.T) {
	code, _, stderr := runCLI(t, "-show", filepath.Join(t.TempDir(), "absent.json"))
	if code == 0 || !strings.Contains(stderr, "absent.json") {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
}

// TestBadFlagsExit2: unparseable flags and no-mode invocations exit 2.
func TestBadFlagsExit2(t *testing.T) {
	if code, _, _ := runCLI(t, "-n", "notanumber"); code != 2 {
		t.Fatalf("bad flag exit %d, want 2", code)
	}
	if code, _, _ := runCLI(t); code != 2 {
		t.Fatalf("no mode exit %d, want 2", code)
	}
}

// TestCreateBadInputsFail: invalid creation parameters are rejected.
func TestCreateBadInputsFail(t *testing.T) {
	for _, args := range [][]string{
		{"-create", "-ratio", "bogus"},
		{"-create", "-alg", "nope"},
		{"-create", "-n", "2"},
	} {
		code, _, stderr := runCLI(t, args...)
		if code != 1 || !strings.HasPrefix(stderr, "planfile: ") {
			t.Fatalf("args %v: exit %d, stderr %q", args, code, stderr)
		}
	}
}
