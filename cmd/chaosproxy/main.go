// Command chaosproxy runs the internal/chaos fault-injection TCP proxy
// as a standalone process — a manual drill switch for chaos-testing a
// pland replica (or any TCP upstream) without touching the server.
//
// Usage:
//
//	chaosproxy -upstream 127.0.0.1:8080 [-addr 127.0.0.1:0]
//	    [-addr-file chaos.addr] [-seed 1]
//	    [-latency 0] [-jitter 0] [-reset-prob 0] [-blackhole]
//	    [-corrupt-prob 0] [-trickle-bytes 0] [-trickle-every 10ms]
//	    [-cut-after 0]
//
// Point a serve.Client (or curl) at the proxy's address instead of the
// replica's and the configured faults are injected on every connection:
//
//	chaosproxy -upstream 127.0.0.1:8080 -addr 127.0.0.1:9090 \
//	    -latency 200ms -jitter 50ms          # a straggling replica
//	chaosproxy -upstream 127.0.0.1:8080 -blackhole   # a partition
//	chaosproxy -upstream 127.0.0.1:8080 -corrupt-prob 1  # corrupt VoCs
//
// -addr-file writes the bound address once listening (useful with
// -addr :0), mirroring pland's flag. On SIGINT/SIGTERM the proxy closes
// every connection, prints its fault counters, and exits 0.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/chaos"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("chaosproxy: ")
	os.Exit(run())
}

func run() int {
	var (
		addr     = flag.String("addr", "127.0.0.1:0", "listen address")
		addrFile = flag.String("addr-file", "", "write the bound address to this file once listening")
		upstream = flag.String("upstream", "", "upstream address to forward to (required)")
		seed     = flag.Int64("seed", 1, "seed for the probabilistic faults")

		latency     = flag.Duration("latency", 0, "added latency before the first response byte")
		jitter      = flag.Duration("jitter", 0, "uniform random extra latency in [0, jitter)")
		resetProb   = flag.Float64("reset-prob", 0, "per-connection probability of an abrupt reset")
		blackhole   = flag.Bool("blackhole", false, "swallow every connection without answering (partition)")
		corruptProb = flag.Float64("corrupt-prob", 0, "per-connection probability of rotating response voc digits")
		trickle     = flag.Int("trickle-bytes", 0, "throttle responses to this many bytes per -trickle-every")
		trickleTick = flag.Duration("trickle-every", 10*time.Millisecond, "trickle interval")
		cutAfter    = flag.Int64("cut-after", 0, "cut the connection after this many response bytes")
	)
	flag.Parse()
	if *upstream == "" {
		log.Printf("-upstream is required")
		flag.Usage()
		return 2
	}

	p, err := chaos.New(*addr, *upstream, chaos.Faults{
		Latency:       *latency,
		Jitter:        *jitter,
		ResetProb:     *resetProb,
		Blackhole:     *blackhole,
		CorruptProb:   *corruptProb,
		TrickleBytes:  *trickle,
		TrickleEvery:  *trickleTick,
		CutAfterBytes: *cutAfter,
	}, *seed)
	if err != nil {
		log.Printf("%v", err)
		return 2
	}
	if *addrFile != "" {
		tmp := *addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(p.Addr()+"\n"), 0o644); err != nil {
			log.Printf("write -addr-file: %v", err)
			return 2
		}
		if err := os.Rename(tmp, *addrFile); err != nil {
			log.Printf("write -addr-file: %v", err)
			return 2
		}
	}
	log.Printf("proxying %s → %s (faults: %+v)", p.Addr(), *upstream, p.Faults())

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	<-sigs

	p.Close()
	st := p.Stats()
	log.Printf("done: %d connections, %d reset, %d blackholed, %d corrupted, %d cut",
		st.Connections, st.Resets, st.Blackholed, st.Corrupted, st.Cut)
	return 0
}
