package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiment"
	"repro/internal/model"
)

var update = flag.Bool("update", false, "rewrite the winner-map golden files")

// censusWindow is the standard small census the goldens pin: fast enough
// for CI, wide enough that every topology class moves cells.
const (
	censusRrMax = 4.0
	censusPrMax = 12.0
	censusStep  = 1.0
	censusN     = 60
)

// TestWinnerMapGoldens pins one golden phase diagram per topology class
// (-update to regenerate). The non-uniform classes additionally record
// their flip list against the uniform baseline, so a pricing regression
// in the link-matrix cost model shows up as a golden diff naming the
// exact cells that moved.
func TestWinnerMapGoldens(t *testing.T) {
	entries, err := experiment.RunTopologyCensus(context.Background(), model.SCB, censusRrMax, censusPrMax, censusStep, censusN)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		var buf bytes.Buffer
		if err := e.Map.Write(&buf); err != nil {
			t.Fatal(err)
		}
		if e.Class.Name != "uniform" {
			fmt.Fprintf(&buf, "flips vs uniform: %d\n", e.Flips)
			for _, line := range experiment.CensusFlipSummary(entries[0], e) {
				fmt.Fprintf(&buf, "  %s\n", line)
			}
		}
		name := "winnermap_" + strings.ReplaceAll(e.Class.Name, "+", "plus") + ".golden"
		path := filepath.Join("testdata", name)
		if *update {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden (run with -update first): %v", err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("class %s winner map diverged from %s:\n%s", e.Class.Name, path, buf.Bytes())
		}
	}
}

// TestWinnerMapModeOutput drives the -winner-map entry point end to end:
// all three class diagrams and the flip summary lines must render, and
// every non-uniform class must move at least one cell.
func TestWinnerMapModeOutput(t *testing.T) {
	var buf bytes.Buffer
	if code := winnerMapMode(&buf, "PIO", censusRrMax, censusPrMax, censusStep, censusN); code != 0 {
		t.Fatalf("winnerMapMode exit %d", code)
	}
	out := buf.String()
	for _, want := range []string{
		"winner map: PIO, uniform topology",
		"winner map: PIO, 2+1 topology",
		"winner map: PIO, 3-island topology",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	for _, class := range []string{"2+1", "3-island"} {
		if strings.Contains(out, fmt.Sprintf("class %s: 0 cells change winner", class)) {
			t.Errorf("class %s moved no cells", class)
		}
		if !strings.Contains(out, fmt.Sprintf("class %s: ", class)) {
			t.Errorf("output missing flip summary for %s:\n%s", class, out)
		}
	}
	if code := winnerMapMode(&buf, "nope", censusRrMax, censusPrMax, censusStep, censusN); code != 2 {
		t.Fatalf("bad algorithm: exit %d, want 2", code)
	}
}

// TestParseTopologyGrammar: the -topology flag accepts the legacy alias
// and the spec grammar, and rejects garbage with a typed error.
func TestParseTopologyGrammar(t *testing.T) {
	for _, s := range []string{"full", "fully-connected", "star", "2+1", "3-island:5", "links:PR=1,PS=2,RS=3"} {
		if _, err := parseTopology(s); err != nil {
			t.Errorf("parseTopology(%q): %v", s, err)
		}
	}
	if _, err := parseTopology("ring"); err == nil {
		t.Error("parseTopology accepted \"ring\"")
	}
}
