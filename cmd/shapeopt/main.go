// Command shapeopt compares the six candidate canonical shapes for a
// processor ratio and reports the optimum per MMM algorithm (the Section X
// methodology).
//
// Usage:
//
//	shapeopt -ratio 10:1:1 [-n 200] [-alg SCB] [-topology star]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("shapeopt: ")
	var (
		ratioStr = flag.String("ratio", "5:2:1", "processor speed ratio Pr:Rr:Sr")
		n        = flag.Int("n", 200, "matrix dimension")
		algStr   = flag.String("alg", "", "algorithm (SCB, PCB, SCO, PCO, PIO); empty = all")
		topoStr  = flag.String("topology", "full", "network topology: full or star")
	)
	flag.Parse()

	ratio, err := partition.ParseRatio(*ratioStr)
	if err != nil {
		log.Fatal(err)
	}
	m := model.DefaultMachine(ratio)
	switch *topoStr {
	case "full", "fully-connected":
		m.Topology = model.FullyConnected
	case "star":
		m.Topology = model.Star
	default:
		log.Fatalf("unknown topology %q (want full or star)", *topoStr)
	}
	algs := model.AllAlgorithms[:]
	if *algStr != "" {
		a, err := model.ParseAlgorithm(*algStr)
		if err != nil {
			log.Fatal(err)
		}
		algs = []model.Algorithm{a}
	}

	fmt.Printf("Candidate shapes for ratio %s on N=%d (%s topology)\n\n", ratio, *n, m.Topology)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "shape\tVoC (elements)\talgorithm\tmodel T_exe (s)\tsim T_exe (s)\tefficiency")
	type key struct {
		alg  model.Algorithm
		best float64
		name partition.Shape
	}
	bests := map[model.Algorithm]*key{}
	for _, s := range partition.AllShapes {
		g, err := partition.Build(s, *n, ratio)
		if err != nil {
			fmt.Fprintf(w, "%s\tinfeasible\t\t\t\t\n", s)
			continue
		}
		for i, a := range algs {
			mod := model.EvaluateGrid(a, m, g)
			res, err := sim.Simulate(a, m, g, 0)
			if err != nil {
				log.Fatal(err)
			}
			name := ""
			voc := ""
			if i == 0 {
				name = s.String()
				voc = fmt.Sprintf("%d", g.VoC())
			}
			eff := model.Efficiency(a, m, g.Snapshot())
			fmt.Fprintf(w, "%s\t%s\t%s\t%.6f\t%.6f\t%.1f%%\n", name, voc, a, mod.Total, res.TExe, 100*eff)
			if b := bests[a]; b == nil || mod.Total < b.best {
				bests[a] = &key{alg: a, best: mod.Total, name: s}
			}
		}
	}
	w.Flush()
	fmt.Println()
	for _, a := range algs {
		if b := bests[a]; b != nil {
			fmt.Printf("optimal for %s: %s (model T_exe %.6f s)\n", a, b.name, b.best)
		}
	}
}
