// Command shapeopt compares the six candidate canonical shapes for a
// processor ratio and reports the optimum per MMM algorithm (the Section X
// methodology).
//
// Usage:
//
//	shapeopt -ratio 10:1:1 [-n 200] [-alg SCB] [-topology star]
//
// Atlas mode bakes that decision for a whole quantized ratio plane into
// a snapshot pland can serve from without searching:
//
//	shapeopt -build-atlas atlas.bin [-scale 10] [-pr-max 20] [-rr-max 20]
//	         [-n 200] [-alg SCB] [-topology full]
//	shapeopt -dump-atlas atlas.bin [-spot 200] [-spot-seed 1]
//
// -dump-atlas prints the snapshot header, grid resolution, per-shape
// winner counts, and the winner phase diagram; -spot N additionally
// re-derives N randomly chosen cells with the live search and exits 2
// on any divergence (0 or a value over the cell count means every
// cell).
//
// Winner-map mode runs the topology census: the Section IX–X winner map
// recomputed once per interconnect class (uniform, 2+1, 3-island), with
// a per-class count of cells whose winner moved:
//
//	shapeopt -winner-map [-alg SCB] [-pr-max 12] [-rr-max 4] [-step 1] [-n 60]
//
// The -topology flag accepts the full spec grammar everywhere outside
// atlas mode: the legacy "full"/"star", the classes "2+1[:f]" and
// "3-island[:f]", and explicit "links:PR=…,PS=…,RS=…" matrices.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/atlas"
	"repro/internal/experiment"
	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("shapeopt: ")
	var (
		ratioStr  = flag.String("ratio", "5:2:1", "processor speed ratio Pr:Rr:Sr")
		n         = flag.Int("n", 200, "matrix dimension")
		algStr    = flag.String("alg", "", "algorithm (SCB, PCB, SCO, PCO, PIO); empty = all (atlas modes: SCB)")
		topoStr   = flag.String("topology", "full", "network topology: full, star, 2+1[:f], 3-island[:f], or links:PR=…,PS=…,RS=…")
		winnerMap = flag.Bool("winner-map", false, "run the topology census: per-class winner maps over the ratio plane")
		step      = flag.Float64("step", 1, "winner-map ratio-plane sample step")
		buildPath = flag.String("build-atlas", "", "sweep the ratio grid and write an atlas snapshot to this path")
		dumpPath  = flag.String("dump-atlas", "", "load an atlas snapshot and print its contents")
		scale     = flag.Int("scale", 10, "atlas grid resolution: lattice step is 1/scale")
		prMax     = flag.Float64("pr-max", 20, "atlas grid upper bound for Pr")
		rrMax     = flag.Float64("rr-max", 20, "atlas grid upper bound for Rr")
		spot      = flag.Int("spot", 0, "with -dump-atlas: spot-check this many random cells against live search (≤0 = none with 0 meaning none, over cell count = all)")
		spotSeed  = flag.Int64("spot-seed", 1, "seed for the spot-check cell sample")
	)
	flag.Parse()

	if *buildPath != "" && *dumpPath != "" {
		log.Fatal("-build-atlas and -dump-atlas are mutually exclusive")
	}
	if *buildPath != "" {
		os.Exit(buildAtlas(*buildPath, *algStr, *topoStr, *n, *scale, *prMax, *rrMax))
	}
	if *dumpPath != "" {
		os.Exit(dumpAtlas(*dumpPath, *spot, *spotSeed))
	}
	if *winnerMap {
		os.Exit(winnerMapMode(os.Stdout, *algStr, *rrMax, *prMax, *step, *n))
	}
	compareShapes(*ratioStr, *n, *algStr, *topoStr)
}

// parseTopology accepts the full topology spec grammar, with "full" kept
// as the historical alias for "fully-connected".
func parseTopology(s string) (model.TopologySpec, error) {
	if s == "full" {
		s = model.FullyConnected.String()
	}
	return model.ParseTopologySpec(s)
}

// winnerMapMode runs the topology census and renders each class's phase
// diagram plus its flip count against the uniform baseline.
func winnerMapMode(w io.Writer, algStr string, rrMax, prMax, step float64, n int) int {
	alg := model.SCB
	if algStr != "" {
		a, err := model.ParseAlgorithm(algStr)
		if err != nil {
			log.Print(err)
			return 2
		}
		alg = a
	}
	entries, err := experiment.RunTopologyCensus(context.Background(), alg, rrMax, prMax, step, n)
	if err != nil {
		log.Print(err)
		return 1
	}
	if err := experiment.WriteCensus(w, entries); err != nil {
		log.Print(err)
		return 1
	}
	return 0
}

// buildAtlas sweeps the quantized ratio plane and writes the snapshot.
func buildAtlas(path, algStr, topoStr string, n, scale int, prMax, rrMax float64) int {
	alg := model.SCB
	if algStr != "" {
		a, err := model.ParseAlgorithm(algStr)
		if err != nil {
			log.Print(err)
			return 2
		}
		alg = a
	}
	spec, err := parseTopology(topoStr)
	if err != nil {
		log.Print(err)
		return 2
	}
	topo, legacy := spec.Legacy()
	if !legacy {
		// The snapshot format bakes winners for the uniform cost model
		// only; pland's atlas tier skips link-matrix scenarios to match.
		log.Printf("atlas mode supports the legacy topologies (full, star) only, got %q", topoStr)
		return 2
	}
	g, err := atlas.NewGrid(scale, prMax, rrMax)
	if err != nil {
		log.Print(err)
		return 2
	}
	log.Printf("sweeping %d cells (%s, %s topology, n=%d, step 1/%d, Pr≤%g, Rr≤%g)",
		g.Cells(), alg, topo, n, scale, prMax, rrMax)
	lastPct := -1
	a, err := atlas.Build(context.Background(), atlas.BuildConfig{
		Algorithm: alg,
		Topology:  topo,
		N:         n,
		Grid:      g,
		Progress: func(done, total int) {
			if pct := done * 100 / total; pct >= lastPct+10 {
				lastPct = pct
				log.Printf("  %3d%% (%d/%d rows)", pct, done, total)
			}
		},
	})
	if err != nil {
		log.Print(err)
		return 1
	}
	if err := a.Write(path); err != nil {
		log.Print(err)
		return 1
	}
	log.Printf("wrote %s: %d cells (%d valid) in %d bytes", path, a.Cells(), a.ValidCells(), len(a.Encode()))
	return 0
}

// dumpAtlas prints a snapshot and optionally spot-checks it against the
// live planner.
func dumpAtlas(path string, spot int, seed int64) int {
	a, err := atlas.Load(path)
	if err != nil {
		log.Print(err)
		return 1
	}
	if err := a.Dump(os.Stdout); err != nil {
		log.Print(err)
		return 1
	}
	if spot <= 0 {
		return 0
	}
	cells := spot
	if cells > a.ValidCells() {
		cells = a.ValidCells()
	}
	fmt.Printf("\nspot-check: re-deriving %d of %d valid cells with the live search (seed %d)\n",
		cells, a.ValidCells(), seed)
	mismatches, err := a.SpotCheck(context.Background(), spot, seed)
	if err != nil {
		log.Print(err)
		return 1
	}
	if len(mismatches) > 0 {
		for _, m := range mismatches {
			fmt.Printf("  MISMATCH %s\n", m)
		}
		log.Printf("%d/%d cells diverge from live search", len(mismatches), cells)
		return 2
	}
	fmt.Printf("spot-check: all %d cells bit-identical to live search\n", cells)
	return 0
}

// compareShapes is the original single-ratio report.
func compareShapes(ratioStr string, n int, algStr, topoStr string) {
	ratio, err := partition.ParseRatio(ratioStr)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := parseTopology(topoStr)
	if err != nil {
		log.Fatal(err)
	}
	m := spec.Apply(model.DefaultMachine(ratio))
	algs := model.AllAlgorithms[:]
	if algStr != "" {
		a, err := model.ParseAlgorithm(algStr)
		if err != nil {
			log.Fatal(err)
		}
		algs = []model.Algorithm{a}
	}

	fmt.Printf("Candidate shapes for ratio %s on N=%d (%s topology)\n\n", ratio, n, m.TopologyName())
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "shape\tVoC (elements)\talgorithm\tmodel T_exe (s)\tsim T_exe (s)\tefficiency")
	type key struct {
		alg  model.Algorithm
		best float64
		name partition.Shape
	}
	bests := map[model.Algorithm]*key{}
	for _, s := range partition.AllShapes {
		g, err := partition.Build(s, n, ratio)
		if err != nil {
			fmt.Fprintf(w, "%s\tinfeasible\t\t\t\t\n", s)
			continue
		}
		for i, a := range algs {
			mod := model.EvaluateGrid(a, m, g)
			name := ""
			voc := ""
			if i == 0 {
				name = s.String()
				voc = fmt.Sprintf("%d", g.VoC())
			}
			// The discrete-event simulator and the efficiency metric
			// price the uniform network only; under a per-link cost
			// model those columns would silently disagree with the
			// model column, so they are dashed out instead.
			simCol, effCol := "-", "-"
			if m.Cost == nil {
				res, err := sim.Simulate(a, m, g, 0)
				if err != nil {
					log.Fatal(err)
				}
				simCol = fmt.Sprintf("%.6f", res.TExe)
				effCol = fmt.Sprintf("%.1f%%", 100*model.Efficiency(a, m, g.Snapshot()))
			}
			fmt.Fprintf(w, "%s\t%s\t%s\t%.6f\t%s\t%s\n", name, voc, a, mod.Total, simCol, effCol)
			if b := bests[a]; b == nil || mod.Total < b.best {
				bests[a] = &key{alg: a, best: mod.Total, name: s}
			}
		}
	}
	w.Flush()
	fmt.Println()
	for _, a := range algs {
		if b := bests[a]; b != nil {
			fmt.Printf("optimal for %s: %s (model T_exe %.6f s)\n", a, b.name, b.best)
		}
	}
}
