// Command shapeopt compares the six candidate canonical shapes for a
// processor ratio and reports the optimum per MMM algorithm (the Section X
// methodology).
//
// Usage:
//
//	shapeopt -ratio 10:1:1 [-n 200] [-alg SCB] [-topology star]
//
// Atlas mode bakes that decision for a whole quantized ratio plane into
// a snapshot pland can serve from without searching:
//
//	shapeopt -build-atlas atlas.bin [-scale 10] [-pr-max 20] [-rr-max 20]
//	         [-n 200] [-alg SCB] [-topology full]
//	shapeopt -dump-atlas atlas.bin [-spot 200] [-spot-seed 1]
//
// -dump-atlas prints the snapshot header, grid resolution, per-shape
// winner counts, and the winner phase diagram; -spot N additionally
// re-derives N randomly chosen cells with the live search and exits 2
// on any divergence (0 or a value over the cell count means every
// cell).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/atlas"
	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("shapeopt: ")
	var (
		ratioStr  = flag.String("ratio", "5:2:1", "processor speed ratio Pr:Rr:Sr")
		n         = flag.Int("n", 200, "matrix dimension")
		algStr    = flag.String("alg", "", "algorithm (SCB, PCB, SCO, PCO, PIO); empty = all (atlas modes: SCB)")
		topoStr   = flag.String("topology", "full", "network topology: full or star")
		buildPath = flag.String("build-atlas", "", "sweep the ratio grid and write an atlas snapshot to this path")
		dumpPath  = flag.String("dump-atlas", "", "load an atlas snapshot and print its contents")
		scale     = flag.Int("scale", 10, "atlas grid resolution: lattice step is 1/scale")
		prMax     = flag.Float64("pr-max", 20, "atlas grid upper bound for Pr")
		rrMax     = flag.Float64("rr-max", 20, "atlas grid upper bound for Rr")
		spot      = flag.Int("spot", 0, "with -dump-atlas: spot-check this many random cells against live search (≤0 = none with 0 meaning none, over cell count = all)")
		spotSeed  = flag.Int64("spot-seed", 1, "seed for the spot-check cell sample")
	)
	flag.Parse()

	if *buildPath != "" && *dumpPath != "" {
		log.Fatal("-build-atlas and -dump-atlas are mutually exclusive")
	}
	if *buildPath != "" {
		os.Exit(buildAtlas(*buildPath, *algStr, *topoStr, *n, *scale, *prMax, *rrMax))
	}
	if *dumpPath != "" {
		os.Exit(dumpAtlas(*dumpPath, *spot, *spotSeed))
	}
	compareShapes(*ratioStr, *n, *algStr, *topoStr)
}

func parseTopology(s string) (model.Topology, error) {
	switch s {
	case "full", "fully-connected":
		return model.FullyConnected, nil
	case "star":
		return model.Star, nil
	}
	return 0, fmt.Errorf("unknown topology %q (want full or star)", s)
}

// buildAtlas sweeps the quantized ratio plane and writes the snapshot.
func buildAtlas(path, algStr, topoStr string, n, scale int, prMax, rrMax float64) int {
	alg := model.SCB
	if algStr != "" {
		a, err := model.ParseAlgorithm(algStr)
		if err != nil {
			log.Print(err)
			return 2
		}
		alg = a
	}
	topo, err := parseTopology(topoStr)
	if err != nil {
		log.Print(err)
		return 2
	}
	g, err := atlas.NewGrid(scale, prMax, rrMax)
	if err != nil {
		log.Print(err)
		return 2
	}
	log.Printf("sweeping %d cells (%s, %s topology, n=%d, step 1/%d, Pr≤%g, Rr≤%g)",
		g.Cells(), alg, topo, n, scale, prMax, rrMax)
	lastPct := -1
	a, err := atlas.Build(context.Background(), atlas.BuildConfig{
		Algorithm: alg,
		Topology:  topo,
		N:         n,
		Grid:      g,
		Progress: func(done, total int) {
			if pct := done * 100 / total; pct >= lastPct+10 {
				lastPct = pct
				log.Printf("  %3d%% (%d/%d rows)", pct, done, total)
			}
		},
	})
	if err != nil {
		log.Print(err)
		return 1
	}
	if err := a.Write(path); err != nil {
		log.Print(err)
		return 1
	}
	log.Printf("wrote %s: %d cells (%d valid) in %d bytes", path, a.Cells(), a.ValidCells(), len(a.Encode()))
	return 0
}

// dumpAtlas prints a snapshot and optionally spot-checks it against the
// live planner.
func dumpAtlas(path string, spot int, seed int64) int {
	a, err := atlas.Load(path)
	if err != nil {
		log.Print(err)
		return 1
	}
	if err := a.Dump(os.Stdout); err != nil {
		log.Print(err)
		return 1
	}
	if spot <= 0 {
		return 0
	}
	cells := spot
	if cells > a.ValidCells() {
		cells = a.ValidCells()
	}
	fmt.Printf("\nspot-check: re-deriving %d of %d valid cells with the live search (seed %d)\n",
		cells, a.ValidCells(), seed)
	mismatches, err := a.SpotCheck(context.Background(), spot, seed)
	if err != nil {
		log.Print(err)
		return 1
	}
	if len(mismatches) > 0 {
		for _, m := range mismatches {
			fmt.Printf("  MISMATCH %s\n", m)
		}
		log.Printf("%d/%d cells diverge from live search", len(mismatches), cells)
		return 2
	}
	fmt.Printf("spot-check: all %d cells bit-identical to live search\n", cells)
	return 0
}

// compareShapes is the original single-ratio report.
func compareShapes(ratioStr string, n int, algStr, topoStr string) {
	ratio, err := partition.ParseRatio(ratioStr)
	if err != nil {
		log.Fatal(err)
	}
	m := model.DefaultMachine(ratio)
	topo, err := parseTopology(topoStr)
	if err != nil {
		log.Fatal(err)
	}
	m.Topology = topo
	algs := model.AllAlgorithms[:]
	if algStr != "" {
		a, err := model.ParseAlgorithm(algStr)
		if err != nil {
			log.Fatal(err)
		}
		algs = []model.Algorithm{a}
	}

	fmt.Printf("Candidate shapes for ratio %s on N=%d (%s topology)\n\n", ratio, n, m.Topology)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "shape\tVoC (elements)\talgorithm\tmodel T_exe (s)\tsim T_exe (s)\tefficiency")
	type key struct {
		alg  model.Algorithm
		best float64
		name partition.Shape
	}
	bests := map[model.Algorithm]*key{}
	for _, s := range partition.AllShapes {
		g, err := partition.Build(s, n, ratio)
		if err != nil {
			fmt.Fprintf(w, "%s\tinfeasible\t\t\t\t\n", s)
			continue
		}
		for i, a := range algs {
			mod := model.EvaluateGrid(a, m, g)
			res, err := sim.Simulate(a, m, g, 0)
			if err != nil {
				log.Fatal(err)
			}
			name := ""
			voc := ""
			if i == 0 {
				name = s.String()
				voc = fmt.Sprintf("%d", g.VoC())
			}
			eff := model.Efficiency(a, m, g.Snapshot())
			fmt.Fprintf(w, "%s\t%s\t%s\t%.6f\t%.6f\t%.1f%%\n", name, voc, a, mod.Total, res.TExe, 100*eff)
			if b := bests[a]; b == nil || mod.Total < b.best {
				bests[a] = &key{alg: a, best: mod.Total, name: s}
			}
		}
	}
	w.Flush()
	fmt.Println()
	for _, a := range algs {
		if b := bests[a]; b != nil {
			fmt.Printf("optimal for %s: %s (model T_exe %.6f s)\n", a, b.name, b.best)
		}
	}
}
