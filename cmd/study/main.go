// Command study runs the paper's full pipeline for one ratio: the Push
// census (Postulate 1 check), the Section VIII reduction of the best
// terminal state, and the Section X candidate comparison.
//
// Usage:
//
//	study -ratio 5:2:1 [-n 100] [-runs 50] [-topology star]
//	      [-journal study.jsonl] [-resume]
//
// SIGINT/SIGTERM interrupts the pipeline cleanly (non-zero exit). With
// -journal the census phase checkpoints every completed DFA run, and
// -resume replays the journal so a restarted study repeats no work.
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/partition"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("study: ")
	var (
		ratioStr = flag.String("ratio", "5:2:1", "processor speed ratio Pr:Rr:Sr")
		n        = flag.Int("n", 100, "matrix dimension")
		runs     = flag.Int("runs", 30, "DFA runs")
		seed     = flag.Int64("seed", 1, "base seed")
		topoStr  = flag.String("topology", "full", "full or star")
		journal  = flag.String("journal", "", "checkpoint census runs to this JSONL file")
		resume   = flag.Bool("resume", false, "replay an existing -journal and finish the remaining runs")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ratio, err := partition.ParseRatio(*ratioStr)
	if err != nil {
		log.Fatal(err)
	}
	topo := model.FullyConnected
	if *topoStr == "star" {
		topo = model.Star
	}
	st, err := core.RunContext(ctx, core.StudyConfig{
		N:        *n,
		Ratio:    ratio,
		Runs:     *runs,
		Seed:     *seed,
		Topology: topo,
		Journal:  *journal,
		Resume:   *resume,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := st.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}
	if st.Counterexamples > 0 {
		os.Exit(1)
	}
}
