// Command loadgen drives a running pland with an open-loop workload and
// reports latency percentiles, throughput, and plans/sec — the measuring
// half of the serving benchmark (BENCH_serve.json).
//
// Usage:
//
//	loadgen -url http://127.0.0.1:8080 [-rate 200] [-duration 10s]
//	        [-mix atlas=1] [-batch-size 64] [-max-inflight 64]
//	        [-n 200] [-alg SCB] [-scale 10] [-pr-max 20] [-rr-max 20]
//	        [-seed 1] [-json] [-fail-on-error] [-max-p99 0]
//	        [-metrics-check]
//
// The arrival process is open-loop: operations launch on a fixed clock
// regardless of how many are still in flight, so a slow server shows up
// as queueing delay in the percentiles instead of silently lowering the
// offered rate. -max-inflight bounds the client's own fan-out; arrivals
// that would exceed it are counted as dropped, not blocked.
//
// -mix weights three operation classes (comma-separated class=weight):
//
//	atlas   single /v1/plan requests whose ratio sits ON the atlas
//	        lattice given by -scale/-pr-max/-rr-max — O(1) answers
//	search  single /v1/plan requests just OFF the lattice, cycling a
//	        small scenario pool so both cold searches and cache hits
//	        appear, like real off-atlas traffic
//	batch   /v1/plan:batch requests carrying -batch-size on-lattice
//	        items each (each item counts toward plans/sec)
//
// -metrics-check scrapes /metrics after the run and fails (exit 1)
// unless the atlas tier actually served (pland_atlas_hits_total > 0)
// and — for a pure atlas mix — the search engine never ran
// (pland_searched_total == 0 and push_runs_total unchanged from the
// pre-run scrape). -fail-on-error and -max-p99 turn the run into a CI
// gate.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/atlas"
	"repro/internal/metrics"
	wire "repro/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	os.Exit(run())
}

// mix is the parsed -mix: cumulative thresholds over [0, 1).
type mix struct {
	atlas, search float64 // batch is the remainder
}

func parseMix(s string) (mix, error) {
	w := map[string]float64{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return mix{}, fmt.Errorf("bad -mix component %q (want class=weight)", part)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || f < 0 {
			return mix{}, fmt.Errorf("bad -mix weight %q", part)
		}
		switch name {
		case "atlas", "search", "batch":
			w[name] += f
		default:
			return mix{}, fmt.Errorf("unknown -mix class %q (want atlas, search, or batch)", name)
		}
	}
	total := w["atlas"] + w["search"] + w["batch"]
	if total <= 0 {
		return mix{}, fmt.Errorf("-mix has no positive weight")
	}
	return mix{atlas: w["atlas"] / total, search: (w["atlas"] + w["search"]) / total}, nil
}

// classOf maps one uniform draw to an operation class.
func (m mix) classOf(u float64) string {
	switch {
	case u < m.atlas:
		return "atlas"
	case u < m.search:
		return "search"
	}
	return "batch"
}

// recorder accumulates one class's latencies and counts.
type recorder struct {
	mu      sync.Mutex
	lat     []float64 // milliseconds
	ops     int
	plans   int
	errors  int
	errMsgs map[string]int
}

func (r *recorder) record(latMS float64, plans int, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ops++
	if err != nil {
		r.errors++
		if r.errMsgs == nil {
			r.errMsgs = map[string]int{}
		}
		msg := err.Error()
		if len(msg) > 120 {
			msg = msg[:120]
		}
		r.errMsgs[msg]++
		return
	}
	r.plans += plans
	r.lat = append(r.lat, latMS)
}

// percentile reads p (0..100) from sorted data.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p / 100 * float64(len(sorted)-1))
	return sorted[idx]
}

// classReport is one class's slice of the -json output.
type classReport struct {
	Ops    int     `json:"ops"`
	Plans  int     `json:"plans"`
	Errors int     `json:"errors"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

func (r *recorder) report() classReport {
	r.mu.Lock()
	defer r.mu.Unlock()
	sort.Float64s(r.lat)
	rep := classReport{Ops: r.ops, Plans: r.plans, Errors: r.errors}
	if n := len(r.lat); n > 0 {
		rep.P50MS = percentile(r.lat, 50)
		rep.P95MS = percentile(r.lat, 95)
		rep.P99MS = percentile(r.lat, 99)
		rep.MaxMS = r.lat[n-1]
	}
	return rep
}

// scenarios generates the request bodies for each class from the atlas
// grid parameters, so on-lattice really means on the server's lattice.
type scenarios struct {
	n       int
	alg     string
	onGrid  []string // lattice ratio strings (atlas hits)
	offGrid []string // just-off-lattice ratio strings (searched)
}

func buildScenarios(n int, algStr string, scale int, prMax, rrMax float64, searchPool int) (*scenarios, error) {
	g, err := atlas.NewGrid(scale, prMax, rrMax)
	if err != nil {
		return nil, err
	}
	sc := &scenarios{n: n, alg: algStr}
	for idx := 0; idx < g.Cells(); idx++ {
		c := g.Cell(idx)
		if !g.Valid(c) {
			continue
		}
		r := g.Ratio(c)
		sc.onGrid = append(sc.onGrid, r.String())
		if len(sc.offGrid) < searchPool {
			// Nudge Pr by a half step: guaranteed off-lattice, still a
			// legal ratio (Pr only grows, Pr ≥ Rr ≥ Sr holds).
			off := r
			off.Pr += g.Step() / 2
			sc.offGrid = append(sc.offGrid, off.String())
		}
	}
	if len(sc.onGrid) == 0 {
		return nil, fmt.Errorf("grid has no valid cells")
	}
	return sc, nil
}

func (sc *scenarios) planReq(rng *rand.Rand, onLattice bool) wire.PlanRequest {
	pool := sc.onGrid
	if !onLattice {
		pool = sc.offGrid
	}
	return wire.PlanRequest{N: sc.n, Ratio: pool[rng.Intn(len(pool))], Algorithm: sc.alg}
}

// scrape fetches url's /metrics into a name→value map.
func scrape(client *http.Client, url string) (map[string]float64, error) {
	resp, err := client.Get(url + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics: HTTP %d", resp.StatusCode)
	}
	return metrics.ParseText(resp.Body)
}

func run() int {
	var (
		url         = flag.String("url", "", "base URL of the pland under test (required)")
		rate        = flag.Float64("rate", 200, "offered operations per second (open loop)")
		duration    = flag.Duration("duration", 10*time.Second, "how long to offer load")
		mixStr      = flag.String("mix", "atlas=1", "workload mix, e.g. atlas=0.8,search=0.15,batch=0.05")
		batchSize   = flag.Int("batch-size", 64, "items per /v1/plan:batch operation")
		maxInflight = flag.Int("max-inflight", 64, "client-side fan-out bound; arrivals past it are dropped")
		n           = flag.Int("n", 200, "matrix dimension for generated requests")
		algStr      = flag.String("alg", "SCB", "algorithm for generated requests")
		scale       = flag.Int("scale", 10, "atlas lattice step is 1/scale (match the served atlas)")
		prMax       = flag.Float64("pr-max", 20, "atlas grid Pr bound (match the served atlas)")
		rrMax       = flag.Float64("rr-max", 20, "atlas grid Rr bound (match the served atlas)")
		searchPool  = flag.Int("search-pool", 32, "distinct off-lattice scenarios the search class cycles")
		seed        = flag.Int64("seed", 1, "scenario sampling seed")
		jsonOut     = flag.Bool("json", false, "emit the report as JSON on stdout")
		failOnErr   = flag.Bool("fail-on-error", false, "exit 1 if any operation failed")
		maxP99      = flag.Duration("max-p99", 0, "exit 1 if any class's p99 exceeds this (0 = no gate)")
		metricsChk  = flag.Bool("metrics-check", false, "scrape /metrics and assert the atlas tier served (and, for a pure atlas mix, that search never ran)")
	)
	flag.Parse()
	if *url == "" {
		log.Print("-url is required")
		return 2
	}
	m, err := parseMix(*mixStr)
	if err != nil {
		log.Print(err)
		return 2
	}
	sc, err := buildScenarios(*n, *algStr, *scale, *prMax, *rrMax, *searchPool)
	if err != nil {
		log.Print(err)
		return 2
	}
	if *rate <= 0 || *batchSize < 1 || *maxInflight < 1 {
		log.Print("-rate, -batch-size, and -max-inflight must be positive")
		return 2
	}

	httpClient := &http.Client{Timeout: 30 * time.Second}
	var before map[string]float64
	if *metricsChk {
		if before, err = scrape(httpClient, *url); err != nil {
			log.Printf("pre-run metrics scrape: %v", err)
			return 2
		}
	}

	recs := map[string]*recorder{"atlas": {}, "search": {}, "batch": {}}
	rng := rand.New(rand.NewSource(*seed))
	var reqMu sync.Mutex // guards rng: operations draw scenarios concurrently
	drawReq := func(onLattice bool) wire.PlanRequest {
		reqMu.Lock()
		defer reqMu.Unlock()
		return sc.planReq(rng, onLattice)
	}
	drawBatch := func() wire.BatchPlanRequest {
		reqMu.Lock()
		defer reqMu.Unlock()
		items := make([]wire.PlanRequest, *batchSize)
		for i := range items {
			items[i] = sc.planReq(rng, true)
		}
		return wire.BatchPlanRequest{Items: items}
	}

	post := func(path string, body, out any) error {
		raw, err := json.Marshal(body)
		if err != nil {
			return err
		}
		resp, err := httpClient.Post(*url+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: HTTP %d: %.120s", path, resp.StatusCode, data)
		}
		return json.Unmarshal(data, out)
	}

	runOp := func(class string) {
		start := time.Now()
		var plans int
		var err error
		switch class {
		case "batch":
			var resp wire.BatchPlanResponse
			if err = post("/v1/plan:batch", drawBatch(), &resp); err == nil {
				plans = resp.Succeeded
				if resp.Failed > 0 {
					err = fmt.Errorf("batch: %d/%d items failed", resp.Failed, len(resp.Items))
				}
			}
		default:
			var resp wire.PlanResponse
			if err = post("/v1/plan", drawReq(class == "atlas"), &resp); err == nil {
				plans = 1
			}
		}
		recs[class].record(float64(time.Since(start))/float64(time.Millisecond), plans, err)
	}

	// Open loop: arrivals on a fixed clock, late arrivals burst to catch
	// up, a full semaphore drops (never blocks the clock).
	sem := make(chan struct{}, *maxInflight)
	var wg sync.WaitGroup
	interval := time.Duration(float64(time.Second) / *rate)
	start := time.Now()
	deadline := start.Add(*duration)
	sent, dropped := 0, 0
	for next := start; next.Before(deadline); next = next.Add(interval) {
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		reqMu.Lock()
		class := m.classOf(rng.Float64())
		reqMu.Unlock()
		sent++
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				runOp(class)
				<-sem
			}()
		default:
			dropped++
			recs[class].record(0, 0, fmt.Errorf("dropped: max-inflight reached"))
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	type report struct {
		Mix         string                 `json:"mix"`
		RatePerSec  float64                `json:"offered_rate_per_sec"`
		DurationSec float64                `json:"duration_sec"`
		Sent        int                    `json:"sent"`
		Dropped     int                    `json:"dropped"`
		Errors      int                    `json:"errors"`
		Plans       int                    `json:"plans"`
		OpsPerSec   float64                `json:"achieved_ops_per_sec"`
		PlansPerSec float64                `json:"plans_per_sec"`
		Classes     map[string]classReport `json:"classes"`
	}
	rep := report{
		Mix:         *mixStr,
		RatePerSec:  *rate,
		DurationSec: elapsed.Seconds(),
		Sent:        sent,
		Dropped:     dropped,
		Classes:     map[string]classReport{},
	}
	okOps := 0
	for class, r := range recs {
		cr := r.report()
		if cr.Ops == 0 {
			continue
		}
		rep.Classes[class] = cr
		rep.Errors += cr.Errors
		rep.Plans += cr.Plans
		okOps += cr.Ops - cr.Errors
	}
	rep.OpsPerSec = float64(okOps) / elapsed.Seconds()
	rep.PlansPerSec = float64(rep.Plans) / elapsed.Seconds()

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
	} else {
		fmt.Printf("mix %s: %d sent (%d dropped, %d errors) in %.1fs → %.0f ops/s, %.0f plans/s\n",
			*mixStr, sent, dropped, rep.Errors, elapsed.Seconds(), rep.OpsPerSec, rep.PlansPerSec)
		for _, class := range []string{"atlas", "search", "batch"} {
			cr, ok := rep.Classes[class]
			if !ok {
				continue
			}
			fmt.Printf("  %-6s %6d ops  %8d plans  p50 %8.3fms  p95 %8.3fms  p99 %8.3fms  max %8.3fms\n",
				class, cr.Ops, cr.Plans, cr.P50MS, cr.P95MS, cr.P99MS, cr.MaxMS)
		}
	}
	for class, r := range recs {
		r.mu.Lock()
		for msg, count := range r.errMsgs {
			log.Printf("%s: %d× %s", class, count, msg)
		}
		r.mu.Unlock()
	}

	exit := 0
	if *failOnErr && (rep.Errors > 0 || dropped > 0) {
		log.Printf("FAIL: %d errors, %d dropped with -fail-on-error", rep.Errors, dropped)
		exit = 1
	}
	if *maxP99 > 0 {
		gate := float64(*maxP99) / float64(time.Millisecond)
		for class, cr := range rep.Classes {
			if cr.P99MS > gate {
				log.Printf("FAIL: %s p99 %.3fms exceeds -max-p99 %v", class, cr.P99MS, *maxP99)
				exit = 1
			}
		}
	}
	if *metricsChk {
		after, err := scrape(httpClient, *url)
		if err != nil {
			log.Printf("post-run metrics scrape: %v", err)
			return 1
		}
		if hits := after["pland_atlas_hits_total"] - before["pland_atlas_hits_total"]; hits <= 0 {
			log.Printf("FAIL: metrics-check: pland_atlas_hits_total did not grow (Δ=%g) — the atlas tier never served", hits)
			exit = 1
		} else {
			log.Printf("metrics-check: atlas tier served %g answers", hits)
		}
		if m.atlas >= 1 { // pure atlas mix
			if ds := after["pland_searched_total"] - before["pland_searched_total"]; ds != 0 {
				log.Printf("FAIL: metrics-check: pland_searched_total grew by %g on a pure atlas mix", ds)
				exit = 1
			}
			if dp := after["push_runs_total"] - before["push_runs_total"]; dp != 0 {
				log.Printf("FAIL: metrics-check: push_runs_total grew by %g on a pure atlas mix — the search engine ran", dp)
				exit = 1
			}
		}
	}
	return exit
}
