// Command loadgen drives a running pland with an open-loop workload and
// reports latency percentiles, throughput, and plans/sec — the measuring
// half of the serving benchmark (BENCH_serve.json).
//
// Usage:
//
//	loadgen -url http://127.0.0.1:8080 [-rate 200] [-duration 10s]
//	        [-mix atlas=1] [-batch-size 64] [-max-inflight 64]
//	        [-n 200] [-alg SCB] [-scale 10] [-pr-max 20] [-rr-max 20]
//	        [-seed 1] [-json] [-fail-on-error] [-max-p99 0]
//	        [-metrics-check]
//	        [-ramp 50:400:8] [-step-duration 5s] [-out BENCH_degrade.json]
//
// -ramp replaces the single fixed-rate phase with a stepped rate sweep
// (open loop throughout): the offered rate climbs linearly from start
// to end over the given number of steps, each held for -step-duration.
// After every step the server's /metrics is scraped and the report
// records that step's latency quantiles, availability, and answer-tier
// mix (Δ pland_answers_total{tier=...}) — the degradation curve of the
// shed ladder. The run fails if the transition matrix shows the ladder
// ever skipped a rung. The JSON report goes to -out (default stdout).
//
// The arrival process is open-loop: operations launch on a fixed clock
// regardless of how many are still in flight, so a slow server shows up
// as queueing delay in the percentiles instead of silently lowering the
// offered rate. -max-inflight bounds the client's own fan-out; arrivals
// that would exceed it are counted as dropped, not blocked.
//
// -mix weights three operation classes (comma-separated class=weight):
//
//	atlas   single /v1/plan requests whose ratio sits ON the atlas
//	        lattice given by -scale/-pr-max/-rr-max — O(1) answers
//	search  single /v1/plan requests just OFF the lattice, cycling a
//	        small scenario pool so both cold searches and cache hits
//	        appear, like real off-atlas traffic
//	batch   /v1/plan:batch requests carrying -batch-size on-lattice
//	        items each (each item counts toward plans/sec)
//
// -metrics-check scrapes /metrics after the run and fails (exit 1)
// unless the atlas tier actually served (pland_atlas_hits_total > 0)
// and — for a pure atlas mix — the search engine never ran
// (pland_searched_total == 0 and push_runs_total unchanged from the
// pre-run scrape). -fail-on-error and -max-p99 turn the run into a CI
// gate.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/atlas"
	"repro/internal/metrics"
	wire "repro/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	os.Exit(run())
}

// mix is the parsed -mix: cumulative thresholds over [0, 1).
type mix struct {
	atlas, search float64 // batch is the remainder
}

func parseMix(s string) (mix, error) {
	w := map[string]float64{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return mix{}, fmt.Errorf("bad -mix component %q (want class=weight)", part)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || f < 0 {
			return mix{}, fmt.Errorf("bad -mix weight %q", part)
		}
		switch name {
		case "atlas", "search", "batch":
			w[name] += f
		default:
			return mix{}, fmt.Errorf("unknown -mix class %q (want atlas, search, or batch)", name)
		}
	}
	total := w["atlas"] + w["search"] + w["batch"]
	if total <= 0 {
		return mix{}, fmt.Errorf("-mix has no positive weight")
	}
	return mix{atlas: w["atlas"] / total, search: (w["atlas"] + w["search"]) / total}, nil
}

// classOf maps one uniform draw to an operation class.
func (m mix) classOf(u float64) string {
	switch {
	case u < m.atlas:
		return "atlas"
	case u < m.search:
		return "search"
	}
	return "batch"
}

// recorder accumulates one class's latencies and counts.
type recorder struct {
	mu      sync.Mutex
	lat     []float64 // milliseconds
	ops     int
	plans   int
	errors  int
	errMsgs map[string]int
}

func (r *recorder) record(latMS float64, plans int, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ops++
	if err != nil {
		r.errors++
		if r.errMsgs == nil {
			r.errMsgs = map[string]int{}
		}
		msg := err.Error()
		if len(msg) > 120 {
			msg = msg[:120]
		}
		r.errMsgs[msg]++
		return
	}
	r.plans += plans
	r.lat = append(r.lat, latMS)
}

// percentile reads p (0..100) from sorted data.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p / 100 * float64(len(sorted)-1))
	return sorted[idx]
}

// classReport is one class's slice of the -json output.
type classReport struct {
	Ops    int     `json:"ops"`
	Plans  int     `json:"plans"`
	Errors int     `json:"errors"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

func (r *recorder) report() classReport {
	r.mu.Lock()
	defer r.mu.Unlock()
	sort.Float64s(r.lat)
	rep := classReport{Ops: r.ops, Plans: r.plans, Errors: r.errors}
	if n := len(r.lat); n > 0 {
		rep.P50MS = percentile(r.lat, 50)
		rep.P95MS = percentile(r.lat, 95)
		rep.P99MS = percentile(r.lat, 99)
		rep.MaxMS = r.lat[n-1]
	}
	return rep
}

// scenarios generates the request bodies for each class from the atlas
// grid parameters, so on-lattice really means on the server's lattice.
type scenarios struct {
	n       int
	alg     string
	onGrid  []string // lattice ratio strings (atlas hits)
	offGrid []string // just-off-lattice ratio strings (searched)
}

func buildScenarios(n int, algStr string, scale int, prMax, rrMax float64, searchPool int) (*scenarios, error) {
	g, err := atlas.NewGrid(scale, prMax, rrMax)
	if err != nil {
		return nil, err
	}
	sc := &scenarios{n: n, alg: algStr}
	for idx := 0; idx < g.Cells(); idx++ {
		c := g.Cell(idx)
		if !g.Valid(c) {
			continue
		}
		r := g.Ratio(c)
		sc.onGrid = append(sc.onGrid, r.String())
		if len(sc.offGrid) < searchPool {
			// Nudge Pr by a half step: guaranteed off-lattice, still a
			// legal ratio (Pr only grows, Pr ≥ Rr ≥ Sr holds).
			off := r
			off.Pr += g.Step() / 2
			sc.offGrid = append(sc.offGrid, off.String())
		}
	}
	if len(sc.onGrid) == 0 {
		return nil, fmt.Errorf("grid has no valid cells")
	}
	return sc, nil
}

func (sc *scenarios) planReq(rng *rand.Rand, onLattice bool) wire.PlanRequest {
	pool := sc.onGrid
	if !onLattice {
		pool = sc.offGrid
	}
	return wire.PlanRequest{N: sc.n, Ratio: pool[rng.Intn(len(pool))], Algorithm: sc.alg}
}

// scrape fetches url's /metrics into a name→value map.
func scrape(client *http.Client, url string) (map[string]float64, error) {
	resp, err := client.Get(url + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics: HTTP %d", resp.StatusCode)
	}
	return metrics.ParseText(resp.Body)
}

// rampStep is one step's slice of the ramp report.
type rampStep struct {
	Step       int     `json:"step"`
	RatePerSec float64 `json:"rate_per_sec"`
	Sent       int     `json:"sent"`
	Dropped    int     `json:"dropped"`
	Errors     int     `json:"errors"`
	OK         int     `json:"ok"`
	// Availability is successful answers over offered (non-dropped)
	// operations: 1.0 means the server answered everything it was sent.
	Availability float64 `json:"availability"`
	P50MS        float64 `json:"p50_ms"`
	P95MS        float64 `json:"p95_ms"`
	P99MS        float64 `json:"p99_ms"`
	MaxMS        float64 `json:"max_ms"`
	// TierMix is this step's served answers by answer tier
	// (Δ pland_answers_total{tier=...}).
	TierMix map[string]float64 `json:"tier_mix"`
	// Rejected is this step's 429s (Δ pland_shed_total).
	Rejected float64 `json:"rejected"`
	// ShedTierEnd is the shed ladder rung at the end of the step.
	ShedTierEnd string `json:"shed_tier_end"`
}

// rampReport is the BENCH_degrade.json schema.
type rampReport struct {
	Ramp            string             `json:"ramp"`
	StepDurationSec float64            `json:"step_duration_sec"`
	Steps           []rampStep         `json:"steps"`
	Transitions     map[string]float64 `json:"tier_transitions"`
	NoRungSkipped   bool               `json:"no_rung_skipped"`
}

var shedTierNames = []string{"search", "bounded", "atlas", "stale", "reject"}

func parseRamp(s string) (start, end float64, steps int, err error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("bad -ramp %q (want start:end:steps)", s)
	}
	if start, err = strconv.ParseFloat(parts[0], 64); err != nil || start <= 0 {
		return 0, 0, 0, fmt.Errorf("bad -ramp start %q", parts[0])
	}
	if end, err = strconv.ParseFloat(parts[1], 64); err != nil || end <= 0 {
		return 0, 0, 0, fmt.Errorf("bad -ramp end %q", parts[1])
	}
	if steps, err = strconv.Atoi(parts[2]); err != nil || steps < 2 {
		return 0, 0, 0, fmt.Errorf("bad -ramp steps %q (want ≥ 2)", parts[2])
	}
	return start, end, steps, nil
}

// tierTransitionSkips scans the transition matrix for non-adjacent
// moves. The server pre-touches every adjacent from/to pair at zero, so
// any series with |from−to| ≠ 1 — or any count on a pair that should
// not exist — is a rung skip.
func tierTransitionSkips(mx map[string]float64) []string {
	idx := map[string]int{}
	for i, n := range shedTierNames {
		idx[n] = i
	}
	var skips []string
	for series, v := range mx {
		from, to, ok := parseFromTo(series)
		if !ok {
			skips = append(skips, fmt.Sprintf("unparseable transition series %q", series))
			continue
		}
		fi, fok := idx[from]
		ti, tok := idx[to]
		if !fok || !tok || (fi-ti != 1 && ti-fi != 1) {
			if v > 0 || !fok || !tok {
				skips = append(skips, fmt.Sprintf("%s→%s ×%g", from, to, v))
			}
		}
	}
	return skips
}

// parseFromTo extracts from/to labels out of a series key like
// `pland_tier_transitions_total{from="search",to="bounded"}`.
func parseFromTo(series string) (from, to string, ok bool) {
	grab := func(label string) (string, bool) {
		i := strings.Index(series, label+`="`)
		if i < 0 {
			return "", false
		}
		rest := series[i+len(label)+2:]
		j := strings.IndexByte(rest, '"')
		if j < 0 {
			return "", false
		}
		return rest[:j], true
	}
	from, fok := grab("from")
	to, tok := grab("to")
	return from, to, fok && tok
}

// runRamp steps the offered rate from start to end and records, per
// step, the latency quantiles and the server's answer-tier mix — the
// degradation curve. It also asserts the structural no-skip property of
// the shed ladder from the transition matrix.
func runRamp(spec string, stepDur time.Duration, outFile string, client *http.Client, url string,
	runPhase func(rate float64, dur time.Duration) (map[string]*recorder, int, int, time.Duration)) int {
	start, end, steps, err := parseRamp(spec)
	if err != nil {
		log.Print(err)
		return 2
	}
	answerTiers := []string{"atlas", "cache", "searched", "degraded"}
	rep := rampReport{Ramp: spec, StepDurationSec: stepDur.Seconds()}

	before, err := scrape(client, url)
	if err != nil {
		log.Printf("pre-ramp metrics scrape: %v", err)
		return 2
	}
	for i := 0; i < steps; i++ {
		rate := start + (end-start)*float64(i)/float64(steps-1)
		recs, sent, dropped, _ := runPhase(rate, stepDur)
		after, err := scrape(client, url)
		if err != nil {
			log.Printf("step %d metrics scrape: %v", i+1, err)
			return 1
		}

		st := rampStep{Step: i + 1, RatePerSec: rate, Sent: sent, Dropped: dropped,
			TierMix: map[string]float64{}}
		var all []float64
		for _, r := range recs {
			r.mu.Lock()
			all = append(all, r.lat...)
			st.Errors += r.errors
			st.OK += r.ops - r.errors
			r.mu.Unlock()
		}
		if served := sent - dropped; served > 0 {
			st.Availability = float64(st.OK) / float64(served)
		}
		sort.Float64s(all)
		if n := len(all); n > 0 {
			st.P50MS = percentile(all, 50)
			st.P95MS = percentile(all, 95)
			st.P99MS = percentile(all, 99)
			st.MaxMS = all[n-1]
		}
		for _, tier := range answerTiers {
			key := fmt.Sprintf(`pland_answers_total{tier=%q}`, tier)
			st.TierMix[tier] = after[key] - before[key]
		}
		st.Rejected = after["pland_shed_total"] - before["pland_shed_total"]
		if rung := int(after["pland_shed_tier"]); rung >= 0 && rung < len(shedTierNames) {
			st.ShedTierEnd = shedTierNames[rung]
		}
		rep.Steps = append(rep.Steps, st)
		log.Printf("step %d/%d @ %.0f ops/s: %d ok, %d errors, %d dropped, p99 %.1fms, tier=%s, mix %v",
			i+1, steps, rate, st.OK, st.Errors, dropped, st.P99MS, st.ShedTierEnd, st.TierMix)
		before = after
	}

	final, err := scrape(client, url)
	if err != nil {
		log.Printf("post-ramp metrics scrape: %v", err)
		return 1
	}
	rep.Transitions = map[string]float64{}
	for series, v := range final {
		if strings.HasPrefix(series, "pland_tier_transitions_total{") {
			rep.Transitions[series] = v
		}
	}
	skips := tierTransitionSkips(rep.Transitions)
	rep.NoRungSkipped = len(skips) == 0

	var w io.Writer = os.Stdout
	if outFile != "" {
		f, err := os.Create(outFile)
		if err != nil {
			log.Printf("-out: %v", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Printf("write report: %v", err)
		return 1
	}
	if len(skips) > 0 {
		log.Printf("FAIL: shed ladder skipped rungs: %v", skips)
		return 1
	}
	return 0
}

func run() int {
	var (
		url         = flag.String("url", "", "base URL of the pland under test (required)")
		rate        = flag.Float64("rate", 200, "offered operations per second (open loop)")
		duration    = flag.Duration("duration", 10*time.Second, "how long to offer load")
		mixStr      = flag.String("mix", "atlas=1", "workload mix, e.g. atlas=0.8,search=0.15,batch=0.05")
		batchSize   = flag.Int("batch-size", 64, "items per /v1/plan:batch operation")
		maxInflight = flag.Int("max-inflight", 64, "client-side fan-out bound; arrivals past it are dropped")
		n           = flag.Int("n", 200, "matrix dimension for generated requests")
		algStr      = flag.String("alg", "SCB", "algorithm for generated requests")
		scale       = flag.Int("scale", 10, "atlas lattice step is 1/scale (match the served atlas)")
		prMax       = flag.Float64("pr-max", 20, "atlas grid Pr bound (match the served atlas)")
		rrMax       = flag.Float64("rr-max", 20, "atlas grid Rr bound (match the served atlas)")
		searchPool  = flag.Int("search-pool", 32, "distinct off-lattice scenarios the search class cycles")
		seed        = flag.Int64("seed", 1, "scenario sampling seed")
		jsonOut     = flag.Bool("json", false, "emit the report as JSON on stdout")
		failOnErr   = flag.Bool("fail-on-error", false, "exit 1 if any operation failed")
		maxP99      = flag.Duration("max-p99", 0, "exit 1 if any class's p99 exceeds this (0 = no gate)")
		metricsChk  = flag.Bool("metrics-check", false, "scrape /metrics and assert the atlas tier served (and, for a pure atlas mix, that search never ran)")

		rampStr      = flag.String("ramp", "", "run a rate ramp instead of one phase: start:end:steps in ops/sec (e.g. 50:400:8)")
		stepDuration = flag.Duration("step-duration", 5*time.Second, "how long each ramp step offers its rate")
		outFile      = flag.String("out", "", "write the ramp report JSON to this file (empty = stdout)")
	)
	flag.Parse()
	if *url == "" {
		log.Print("-url is required")
		return 2
	}
	m, err := parseMix(*mixStr)
	if err != nil {
		log.Print(err)
		return 2
	}
	sc, err := buildScenarios(*n, *algStr, *scale, *prMax, *rrMax, *searchPool)
	if err != nil {
		log.Print(err)
		return 2
	}
	if *rate <= 0 || *batchSize < 1 || *maxInflight < 1 {
		log.Print("-rate, -batch-size, and -max-inflight must be positive")
		return 2
	}

	httpClient := &http.Client{Timeout: 30 * time.Second}
	var before map[string]float64
	if *metricsChk {
		if before, err = scrape(httpClient, *url); err != nil {
			log.Printf("pre-run metrics scrape: %v", err)
			return 2
		}
	}

	rng := rand.New(rand.NewSource(*seed))
	var reqMu sync.Mutex // guards rng: operations draw scenarios concurrently
	drawReq := func(onLattice bool) wire.PlanRequest {
		reqMu.Lock()
		defer reqMu.Unlock()
		return sc.planReq(rng, onLattice)
	}
	drawBatch := func() wire.BatchPlanRequest {
		reqMu.Lock()
		defer reqMu.Unlock()
		items := make([]wire.PlanRequest, *batchSize)
		for i := range items {
			items[i] = sc.planReq(rng, true)
		}
		return wire.BatchPlanRequest{Items: items}
	}

	post := func(path string, body, out any) error {
		raw, err := json.Marshal(body)
		if err != nil {
			return err
		}
		resp, err := httpClient.Post(*url+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: HTTP %d: %.120s", path, resp.StatusCode, data)
		}
		return json.Unmarshal(data, out)
	}

	runOp := func(recs map[string]*recorder, class string) {
		start := time.Now()
		var plans int
		var err error
		switch class {
		case "batch":
			var resp wire.BatchPlanResponse
			if err = post("/v1/plan:batch", drawBatch(), &resp); err == nil {
				plans = resp.Succeeded
				if resp.Failed > 0 {
					err = fmt.Errorf("batch: %d/%d items failed", resp.Failed, len(resp.Items))
				}
			}
		default:
			var resp wire.PlanResponse
			if err = post("/v1/plan", drawReq(class == "atlas"), &resp); err == nil {
				plans = 1
			}
		}
		recs[class].record(float64(time.Since(start))/float64(time.Millisecond), plans, err)
	}

	// runPhase offers one open-loop phase: arrivals on a fixed clock,
	// late arrivals burst to catch up, a full semaphore drops (never
	// blocks the clock).
	runPhase := func(rate float64, dur time.Duration) (recs map[string]*recorder, sent, dropped int, elapsed time.Duration) {
		recs = map[string]*recorder{"atlas": {}, "search": {}, "batch": {}}
		sem := make(chan struct{}, *maxInflight)
		var wg sync.WaitGroup
		interval := time.Duration(float64(time.Second) / rate)
		start := time.Now()
		deadline := start.Add(dur)
		for next := start; next.Before(deadline); next = next.Add(interval) {
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			reqMu.Lock()
			class := m.classOf(rng.Float64())
			reqMu.Unlock()
			sent++
			select {
			case sem <- struct{}{}:
				wg.Add(1)
				go func() {
					defer wg.Done()
					runOp(recs, class)
					<-sem
				}()
			default:
				dropped++
				recs[class].record(0, 0, fmt.Errorf("dropped: max-inflight reached"))
			}
		}
		wg.Wait()
		return recs, sent, dropped, time.Since(start)
	}

	if *rampStr != "" {
		return runRamp(*rampStr, *stepDuration, *outFile, httpClient, *url, runPhase)
	}

	recs, sent, dropped, elapsed := runPhase(*rate, *duration)

	type report struct {
		Mix         string                 `json:"mix"`
		RatePerSec  float64                `json:"offered_rate_per_sec"`
		DurationSec float64                `json:"duration_sec"`
		Sent        int                    `json:"sent"`
		Dropped     int                    `json:"dropped"`
		Errors      int                    `json:"errors"`
		Plans       int                    `json:"plans"`
		OpsPerSec   float64                `json:"achieved_ops_per_sec"`
		PlansPerSec float64                `json:"plans_per_sec"`
		Classes     map[string]classReport `json:"classes"`
	}
	rep := report{
		Mix:         *mixStr,
		RatePerSec:  *rate,
		DurationSec: elapsed.Seconds(),
		Sent:        sent,
		Dropped:     dropped,
		Classes:     map[string]classReport{},
	}
	okOps := 0
	for class, r := range recs {
		cr := r.report()
		if cr.Ops == 0 {
			continue
		}
		rep.Classes[class] = cr
		rep.Errors += cr.Errors
		rep.Plans += cr.Plans
		okOps += cr.Ops - cr.Errors
	}
	rep.OpsPerSec = float64(okOps) / elapsed.Seconds()
	rep.PlansPerSec = float64(rep.Plans) / elapsed.Seconds()

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
	} else {
		fmt.Printf("mix %s: %d sent (%d dropped, %d errors) in %.1fs → %.0f ops/s, %.0f plans/s\n",
			*mixStr, sent, dropped, rep.Errors, elapsed.Seconds(), rep.OpsPerSec, rep.PlansPerSec)
		for _, class := range []string{"atlas", "search", "batch"} {
			cr, ok := rep.Classes[class]
			if !ok {
				continue
			}
			fmt.Printf("  %-6s %6d ops  %8d plans  p50 %8.3fms  p95 %8.3fms  p99 %8.3fms  max %8.3fms\n",
				class, cr.Ops, cr.Plans, cr.P50MS, cr.P95MS, cr.P99MS, cr.MaxMS)
		}
	}
	for class, r := range recs {
		r.mu.Lock()
		for msg, count := range r.errMsgs {
			log.Printf("%s: %d× %s", class, count, msg)
		}
		r.mu.Unlock()
	}

	exit := 0
	if *failOnErr && (rep.Errors > 0 || dropped > 0) {
		log.Printf("FAIL: %d errors, %d dropped with -fail-on-error", rep.Errors, dropped)
		exit = 1
	}
	if *maxP99 > 0 {
		gate := float64(*maxP99) / float64(time.Millisecond)
		for class, cr := range rep.Classes {
			if cr.P99MS > gate {
				log.Printf("FAIL: %s p99 %.3fms exceeds -max-p99 %v", class, cr.P99MS, *maxP99)
				exit = 1
			}
		}
	}
	if *metricsChk {
		after, err := scrape(httpClient, *url)
		if err != nil {
			log.Printf("post-run metrics scrape: %v", err)
			return 1
		}
		if hits := after["pland_atlas_hits_total"] - before["pland_atlas_hits_total"]; hits <= 0 {
			log.Printf("FAIL: metrics-check: pland_atlas_hits_total did not grow (Δ=%g) — the atlas tier never served", hits)
			exit = 1
		} else {
			log.Printf("metrics-check: atlas tier served %g answers", hits)
		}
		if m.atlas >= 1 { // pure atlas mix
			if ds := after["pland_searched_total"] - before["pland_searched_total"]; ds != 0 {
				log.Printf("FAIL: metrics-check: pland_searched_total grew by %g on a pure atlas mix", ds)
				exit = 1
			}
			if dp := after["push_runs_total"] - before["push_runs_total"]; dp != 0 {
				log.Printf("FAIL: metrics-check: push_runs_total grew by %g on a pure atlas mix — the search engine ran", dp)
				exit = 1
			}
		}
	}
	return exit
}
