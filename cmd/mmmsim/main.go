// Command mmmsim simulates (or really executes) partitioned parallel MMM.
//
// Modes:
//
//	mmmsim -shape square-corner -ratio 10:1:1 -alg SCB [-n 200]   one scenario
//	mmmsim -sweep [-nmodel 5000] [-nsim 200]                      the Fig 14 sweep
//	mmmsim -exec -shape block-rectangle -ratio 4:2:1 [-n 128]     real goroutine run
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"

	"repro/internal/exec"
	"repro/internal/experiment"
	"repro/internal/matrix"
	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/sim"
)

func parseShape(s string) (partition.Shape, error) {
	for _, sh := range partition.AllShapes {
		if strings.EqualFold(strings.ReplaceAll(sh.String(), "-", ""), strings.ReplaceAll(s, "-", "")) {
			return sh, nil
		}
	}
	return 0, fmt.Errorf("unknown shape %q (want one of square-corner, rectangle-corner, square-rectangle, block-rectangle, l-rectangle, traditional-rectangle)", s)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("mmmsim: ")
	var (
		shapeStr = flag.String("shape", "block-rectangle", "candidate shape")
		ratioStr = flag.String("ratio", "5:2:1", "processor speed ratio")
		algStr   = flag.String("alg", "SCB", "MMM algorithm")
		n        = flag.Int("n", 200, "matrix dimension")
		sweep    = flag.Bool("sweep", false, "run the Fig 14 x:1:1 sweep instead")
		nModel   = flag.Int("nmodel", 5000, "sweep: model matrix dimension (paper: 5000)")
		nSim     = flag.Int("nsim", 200, "sweep: simulated grid dimension")
		doExec   = flag.Bool("exec", false, "really execute on goroutine processors and verify the product")
		gantt    = flag.Bool("gantt", false, "render the simulated schedule as a Gantt chart")
		star     = flag.Bool("star", false, "use the star topology")
		seed     = flag.Int64("seed", 1, "seed for -exec matrices")
	)
	flag.Parse()

	if *sweep {
		rows, err := experiment.Fig14Sweep(nil, *nModel, *nSim)
		if err != nil {
			log.Fatal(err)
		}
		if err := experiment.WriteFig14Table(os.Stdout, rows); err != nil {
			log.Fatal(err)
		}
		if x := experiment.Crossover(rows); x > 0 {
			fmt.Printf("\nSquare-Corner overtakes Block-Rectangle at ratio %.0f:1:1\n", x)
		}
		return
	}

	ratio, err := partition.ParseRatio(*ratioStr)
	if err != nil {
		log.Fatal(err)
	}
	alg, err := model.ParseAlgorithm(*algStr)
	if err != nil {
		log.Fatal(err)
	}
	s, err := parseShape(*shapeStr)
	if err != nil {
		log.Fatal(err)
	}
	g, err := partition.Build(s, *n, ratio)
	if err != nil {
		log.Fatal(err)
	}
	m := model.DefaultMachine(ratio)
	if *star {
		m.Topology = model.Star
	}

	fmt.Printf("%s, ratio %s, N=%d, %s, %s topology\n", s, ratio, *n, alg, m.Topology)
	fmt.Printf("VoC: %d elements (%.4f × N²)\n", g.VoC(), float64(g.VoC())/float64(*n**n))
	mod := model.EvaluateGrid(alg, m, g)
	fmt.Printf("model: T_comm=%.6fs T_comp=%.6fs T_exe=%.6fs\n", mod.Comm, mod.Comp, mod.Total)
	res, err := sim.Simulate(alg, m, g, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sim:   T_comm=%.6fs T_exe=%.6fs (%d tasks)\n", res.TComm, res.TExe, res.Tasks)

	if *gantt {
		fmt.Println()
		if err := sim.WriteGantt(os.Stdout, alg, m, g, 72); err != nil {
			log.Fatal(err)
		}
	}

	if *doExec {
		rng := rand.New(rand.NewSource(*seed))
		a := matrix.New(*n)
		b := matrix.New(*n)
		a.FillRandom(rng)
		b.FillRandom(rng)
		cfg := exec.Config{Machine: m, Algorithm: alg}
		var (
			c     *matrix.Dense
			stats *exec.Stats
			err   error
		)
		switch alg {
		case model.SCB, model.PCB:
			c, stats, err = exec.Multiply(cfg, g, a, b)
		case model.SCO, model.PCO:
			c, stats, err = exec.MultiplyOverlap(cfg, g, a, b)
		case model.PIO:
			c, stats, err = exec.MultiplyPIO(cfg, g, a, b)
		}
		if err != nil {
			log.Fatal(err)
		}
		want := matrix.New(*n)
		matrix.MulKIJ(want, a, b)
		status := "MATCH (bit-exact vs serial kij)"
		if !c.Equal(want) {
			status = "MISMATCH"
		}
		fmt.Printf("exec:  moved %d elements (VoC %d), virtual T_exe=%.6fs, wall %v, result %s\n",
			stats.TotalVolume, g.VoC(), stats.VirtualExe, stats.Wall, status)
		if status == "MISMATCH" {
			os.Exit(1)
		}
	}
}
