// Command mmmsim simulates (or really executes) partitioned parallel MMM.
//
// Modes:
//
//	mmmsim -shape square-corner -ratio 10:1:1 -alg SCB [-n 200]   one scenario
//	mmmsim -sweep [-nmodel 5000] [-nsim 200]                      the Fig 14 sweep
//	mmmsim -exec -shape block-rectangle -ratio 4:2:1 [-n 128]     real goroutine run
//	mmmsim -exec -fault kill:R@0.5 [-checkpoint run.ckpt]         chaos run with recovery
//	mmmsim -exec -checkpoint run.ckpt -resume                     resume a killed run
//	mmmsim -exec -verify -fault flip:R@0.3                        ABFT-checked run under corruption
//	mmmsim -recovery-study [-out BENCH_exec.json]                 recovery-overhead study
//	mmmsim -integrity-study [-out BENCH_integrity.json]           silent-corruption drill study
//
// Ctrl-C cancels a running (paced) execution promptly; with -checkpoint
// the completed blocks survive for a later -resume.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/exec"
	"repro/internal/experiment"
	"repro/internal/matrix"
	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/sim"
)

func parseShape(s string) (partition.Shape, error) {
	for _, sh := range partition.AllShapes {
		if strings.EqualFold(strings.ReplaceAll(sh.String(), "-", ""), strings.ReplaceAll(s, "-", "")) {
			return sh, nil
		}
	}
	return 0, fmt.Errorf("unknown shape %q (want one of square-corner, rectangle-corner, square-rectangle, block-rectangle, l-rectangle, traditional-rectangle)", s)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("mmmsim: ")
	var (
		shapeStr = flag.String("shape", "block-rectangle", "candidate shape")
		ratioStr = flag.String("ratio", "5:2:1", "processor speed ratio")
		algStr   = flag.String("alg", "SCB", "MMM algorithm")
		n        = flag.Int("n", 200, "matrix dimension")
		sweep    = flag.Bool("sweep", false, "run the Fig 14 x:1:1 sweep instead")
		nModel   = flag.Int("nmodel", 5000, "sweep: model matrix dimension (paper: 5000)")
		nSim     = flag.Int("nsim", 200, "sweep: simulated grid dimension")
		doExec   = flag.Bool("exec", false, "really execute on goroutine processors and verify the product")
		gantt    = flag.Bool("gantt", false, "render the simulated schedule as a Gantt chart")
		star     = flag.Bool("star", false, "use the star topology")
		seed     = flag.Int64("seed", 1, "seed for -exec matrices")

		faultStr = flag.String("fault", "", "exec: worker faults, e.g. kill:R@0.5,hang:P@0.3,slow:S@8")
		ckptPath = flag.String("checkpoint", "", "exec: journal completed C-blocks to this path")
		resume   = flag.Bool("resume", false, "exec: resume from -checkpoint instead of starting fresh")
		pace     = flag.Bool("pace", false, "exec: throttle workers to their relative speeds in real time")
		paceRate = flag.Float64("pace-rate", 5e7, "exec: real flops/s of the slowest worker when pacing")
		blockSz  = flag.Int("block", 32, "exec: scheduler block size (C tile edge)")
		verify   = flag.Bool("verify", false, "exec: ABFT-verify every C tile against supervisor checksums")
		budget   = flag.Int("mismatch-budget", 3, "exec: uncorrectable mismatches before a worker is quarantined as Byzantine")

		recStudy    = flag.String("recovery-study", "", "run the recovery-overhead study ('run' or with -out a BENCH json path)")
		intStudy    = flag.String("integrity-study", "", "run the silent-corruption integrity study ('run' or with -out a BENCH json path)")
		maxOverhead = flag.Float64("max-overhead", 0, "integrity-study: fail if ABFT overhead exceeds this percent (0 disables)")
		outPath     = flag.String("out", "", "study: write the BENCH json report here")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *recStudy != "" {
		runRecoveryStudy(ctx, *outPath)
		return
	}
	if *intStudy != "" {
		runIntegrityStudy(ctx, *outPath, *maxOverhead)
		return
	}

	if *sweep {
		rows, err := experiment.Fig14Sweep(nil, *nModel, *nSim)
		if err != nil {
			log.Fatal(err)
		}
		if err := experiment.WriteFig14Table(os.Stdout, rows); err != nil {
			log.Fatal(err)
		}
		if x := experiment.Crossover(rows); x > 0 {
			fmt.Printf("\nSquare-Corner overtakes Block-Rectangle at ratio %.0f:1:1\n", x)
		}
		return
	}

	ratio, err := partition.ParseRatio(*ratioStr)
	if err != nil {
		log.Fatal(err)
	}
	alg, err := model.ParseAlgorithm(*algStr)
	if err != nil {
		log.Fatal(err)
	}
	s, err := parseShape(*shapeStr)
	if err != nil {
		log.Fatal(err)
	}
	g, err := partition.Build(s, *n, ratio)
	if err != nil {
		log.Fatal(err)
	}
	m := model.DefaultMachine(ratio)
	if *star {
		m.Topology = model.Star
	}

	fmt.Printf("%s, ratio %s, N=%d, %s, %s topology\n", s, ratio, *n, alg, m.Topology)
	fmt.Printf("VoC: %d elements (%.4f × N²)\n", g.VoC(), float64(g.VoC())/float64(*n**n))
	mod := model.EvaluateGrid(alg, m, g)
	fmt.Printf("model: T_comm=%.6fs T_comp=%.6fs T_exe=%.6fs\n", mod.Comm, mod.Comp, mod.Total)
	res, err := sim.Simulate(alg, m, g, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sim:   T_comm=%.6fs T_exe=%.6fs (%d tasks)\n", res.TComm, res.TExe, res.Tasks)

	if *gantt {
		fmt.Println()
		if err := sim.WriteGantt(os.Stdout, alg, m, g, 72); err != nil {
			log.Fatal(err)
		}
	}

	if !*doExec {
		return
	}

	var faults *sim.FaultPlan
	if *faultStr != "" {
		faults, err = sim.ParseWorkerFaults(*faultStr)
		if err != nil {
			log.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(*seed))
	a := matrix.New(*n)
	b := matrix.New(*n)
	a.FillRandom(rng)
	b.FillRandom(rng)
	cfg := exec.Config{
		Machine:         m,
		Algorithm:       alg,
		Pace:            *pace,
		PaceFlopsPerSec: *paceRate,
		BlockSize:       *blockSz,
		Faults:          faults,
		Checkpoint:      *ckptPath,
		Resume:          *resume,
		Verify:          *verify,
		MismatchBudget:  *budget,
	}
	var (
		c     *matrix.Dense
		stats *exec.Stats
	)
	switch alg {
	case model.SCB, model.PCB:
		c, stats, err = exec.MultiplyContext(ctx, cfg, g, a, b)
	case model.SCO, model.PCO:
		if faults != nil || *ckptPath != "" || *verify {
			log.Fatal("-fault, -checkpoint and -verify need a barrier algorithm (SCB or PCB)")
		}
		c, stats, err = exec.MultiplyOverlapContext(ctx, cfg, g, a, b)
	case model.PIO:
		if faults != nil || *ckptPath != "" || *verify {
			log.Fatal("-fault, -checkpoint and -verify need a barrier algorithm (SCB or PCB)")
		}
		c, stats, err = exec.MultiplyPIO(cfg, g, a, b)
	}
	if err != nil {
		if ctx.Err() != nil && *ckptPath != "" {
			log.Fatalf("interrupted (%v); completed blocks are in %s, resume with -resume", err, *ckptPath)
		}
		log.Fatal(err)
	}
	want := matrix.New(*n)
	matrix.MulKIJ(want, a, b)
	status := "MATCH (bit-exact vs serial kij)"
	if !c.Equal(want) {
		status = "MISMATCH"
	}
	fmt.Printf("exec:  moved %d elements (VoC %d), virtual T_exe=%.6fs, wall %v, result %s\n",
		stats.TotalVolume, g.VoC(), stats.VirtualExe, stats.Wall, status)
	if *resume || stats.BlocksResumed > 0 {
		fmt.Printf("exec:  resumed %d blocks from checkpoint, recomputed %d\n", stats.BlocksResumed, stats.BlocksDone)
	}
	if len(stats.Lost) > 0 {
		fmt.Printf("exec:  lost %v, %d survivors, recoveries %v, redistributed %d elements (from-scratch need %d), recovery latency %v\n",
			stats.Lost, stats.Survivors(), stats.RecoveryKinds, stats.RecoveryVolume, stats.RemainderNeed, stats.RecoveryLatency)
	}
	if stats.Speculations > 0 {
		fmt.Printf("exec:  speculated %d straggling blocks, discarded %d duplicate results\n",
			stats.Speculations, stats.BlocksDiscarded)
	}
	if *verify {
		fmt.Printf("exec:  integrity: %d tiles checked, %d cells corrected, %d blocks recomputed (injected %d)\n",
			stats.IntegrityChecks, stats.CorruptionsCorrected, stats.BlocksRecomputed, stats.InjectedCorruptions)
		if len(stats.Byzantine) > 0 {
			fmt.Printf("exec:  quarantined %v as Byzantine (budget %d), rejected %d in-flight results, re-plans %v\n",
				stats.Byzantine, *budget, stats.ByzantineRejected, stats.RecoveryKinds)
		}
	}
	if status == "MISMATCH" {
		os.Exit(1)
	}
}

// benchExecReport is the BENCH_exec.json schema: the recovery study's
// rows plus enough environment to rerun it.
type benchExecReport struct {
	Description string                   `json:"description"`
	Environment map[string]string        `json:"environment"`
	Rows        []experiment.RecoveryRow `json:"rows"`
}

func runRecoveryStudy(ctx context.Context, outPath string) {
	rows, err := experiment.RecoveryStudy(ctx, experiment.RecoveryStudyConfig{})
	if err != nil {
		log.Fatal(err)
	}
	if err := experiment.WriteRecoveryTable(os.Stdout, rows); err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		if !r.BitExact {
			log.Fatalf("%s kill %s@%g: recovered product is NOT bit-exact", r.Algorithm, r.Victim, r.KillFrac)
		}
		if !r.BoundOK {
			log.Fatalf("%s kill %s@%g: recovery volume %d breaches the 2× remainder-need bound (%d)",
				r.Algorithm, r.Victim, r.KillFrac, r.RecoveryVolume, r.RemainderNeed)
		}
	}
	fmt.Println("\nall recovered products bit-exact; recovery volume within 2× remainder need")
	if outPath == "" {
		return
	}
	report := benchExecReport{
		Description: "Execution-engine recovery overhead: worker R killed at {10,50,90}% of its assigned work " +
			"under SCB and PCB (N=64, ratio 3:2:1, Block-Rectangle). Each faulted run completes on the 2 survivors " +
			"via the twoproc re-plan and is verified bit-identical to the serial kij kernel. " +
			"Reproduce with: go run ./cmd/mmmsim -recovery-study run -out BENCH_exec.json",
		Environment: map[string]string{
			"goos":   runtime.GOOS,
			"goarch": runtime.GOARCH,
			"date":   time.Now().Format("2006-01-02"),
		},
		Rows: rows,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", outPath)
}

// benchIntegrityReport is the BENCH_integrity.json schema: the
// integrity study's corruption rows and overhead measurement plus
// enough environment to rerun it.
type benchIntegrityReport struct {
	Description string                       `json:"description"`
	Environment map[string]string            `json:"environment"`
	Rows        []experiment.IntegrityRow    `json:"rows"`
	Overhead    experiment.IntegrityOverhead `json:"overhead"`
}

func runIntegrityStudy(ctx context.Context, outPath string, maxOverheadPct float64) {
	res, err := experiment.IntegrityStudy(ctx, experiment.IntegrityStudyConfig{})
	if err != nil {
		log.Fatal(err)
	}
	if err := experiment.WriteIntegrityTable(os.Stdout, res); err != nil {
		log.Fatal(err)
	}
	for _, r := range res.Rows {
		if !r.BitExact {
			log.Fatalf("%s %q: verified product is NOT bit-exact", r.Algorithm, r.Faults)
		}
		if r.DetectionRate < 1 {
			log.Fatalf("%s %q: detection rate %.2f < 1 (injected %d, caught %d+%d+%d)",
				r.Algorithm, r.Faults, r.DetectionRate, r.Injected, r.Corrected, r.Recomputed, r.Rejected)
		}
	}
	fmt.Println("all verified products bit-exact; every injected corruption detected")
	if maxOverheadPct > 0 && res.Overhead.OverheadPct > maxOverheadPct {
		log.Fatalf("ABFT overhead %.1f%% exceeds the -max-overhead limit of %.1f%%",
			res.Overhead.OverheadPct, maxOverheadPct)
	}
	if outPath == "" {
		return
	}
	report := benchIntegrityReport{
		Description: "ABFT integrity drill: runs under injected silent corruption (single-cell flips on R at 5%/10% " +
			"of its blocks, deterministic ×8 scaling of every S result, and a combined flip+scale drill) with " +
			"supervisor-side checksum verification on (N=96, block 16, ratio 3:2:1, Block-Rectangle, SCB and PCB). " +
			"Every product is verified bit-identical to the serial kij kernel and every injected corruption is " +
			"detected (corrected in place, recomputed, or rejected from a quarantined Byzantine worker). The " +
			"overhead block times clean runs at N=256, block 64 with verification off vs on. " +
			"Reproduce with: go run ./cmd/mmmsim -integrity-study run -out BENCH_integrity.json",
		Environment: map[string]string{
			"goos":   runtime.GOOS,
			"goarch": runtime.GOARCH,
			"date":   time.Now().Format("2006-01-02"),
		},
		Rows:     res.Rows,
		Overhead: res.Overhead,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", outPath)
}
