// Command partrender renders partitions as ASCII art or PGM images, in
// the paper's white/gray/black convention at reduced granularity (Fig 7).
//
// Modes:
//
//	partrender -shape square-corner -ratio 10:1:1            a canonical shape
//	partrender -evolve -ratio 2:1:1 -n 200 -at 0,100,200     a DFA run's frames
//	partrender -shape block-rectangle -pgm out.pgm           write a PGM image
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiment"
	"repro/internal/partition"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("partrender: ")
	var (
		shapeStr = flag.String("shape", "", "candidate shape to render")
		ratioStr = flag.String("ratio", "2:1:1", "processor speed ratio")
		n        = flag.Int("n", 200, "matrix dimension")
		boxes    = flag.Int("boxes", 40, "render granularity (boxes per side)")
		evolve   = flag.Bool("evolve", false, "render snapshots of a DFA run (Fig 7)")
		at       = flag.String("at", "0,50,100,150", "evolve: comma-separated snapshot steps")
		seed     = flag.Int64("seed", 1, "evolve: run seed")
		pgmPath  = flag.String("pgm", "", "write a PGM image to this path instead of ASCII")
	)
	flag.Parse()

	ratio, err := partition.ParseRatio(*ratioStr)
	if err != nil {
		log.Fatal(err)
	}

	if *evolve {
		var steps []int
		for _, s := range strings.Split(*at, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				log.Fatal(err)
			}
			steps = append(steps, v)
		}
		frames, res, err := experiment.ExampleRun(*n, ratio, *seed, steps, *boxes)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("DFA run: ratio %s, N=%d, seed %d — %d pushes, VoC %d → %d, plan %v\n\n",
			ratio, *n, *seed, res.Steps, res.InitialVoC, res.FinalVoC, res.Plan)
		shown := map[int]bool{}
		for _, s := range append(steps, res.Steps) {
			if shown[s] {
				continue
			}
			shown[s] = true
			if f, ok := frames[s]; ok {
				fmt.Printf("--- step %d ---\n%s\n", s, f)
			}
		}
		return
	}

	if *shapeStr == "" {
		log.Fatal("need -shape or -evolve")
	}
	var g *partition.Grid
	for _, sh := range partition.AllShapes {
		if strings.EqualFold(strings.ReplaceAll(sh.String(), "-", ""), strings.ReplaceAll(*shapeStr, "-", "")) {
			g, err = partition.Build(sh, *n, ratio)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%s, ratio %s, N=%d, VoC %d\n\n", sh, ratio, *n, g.VoC())
			break
		}
	}
	if g == nil {
		log.Fatalf("unknown shape %q", *shapeStr)
	}
	if *pgmPath != "" {
		f, err := os.Create(*pgmPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := g.WritePGM(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d×%d PGM)\n", *pgmPath, *n, *n)
		return
	}
	fmt.Println(g.RenderASCII(*boxes))
}
