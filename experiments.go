package heteropart

// This file re-exports the reproduction/analysis capabilities so external
// users of the module get the full toolbox: the archetype census
// (Postulate 1), the Fig 13/14 comparisons, phase diagrams, search
// traces, schedule Gantt charts, the two-processor baseline and the
// K-processor extension.

import (
	"io"

	"repro/internal/experiment"
	"repro/internal/nproc"
	"repro/internal/sim"
	"repro/internal/twoproc"
)

// CensusConfig parameterises the Section VII archetype census.
type CensusConfig = experiment.CensusConfig

// CensusRow is one ratio's census outcome.
type CensusRow = experiment.CensusRow

// Census runs the DFA many times per ratio and classifies every terminal
// state (Fig 5 / §VII; Postulate 1 predicts zero ArchetypeUnknown).
func Census(cfg CensusConfig) ([]CensusRow, error) { return experiment.Census(cfg) }

// WriteCensusTable renders census rows as a markdown table.
func WriteCensusTable(w io.Writer, rows []CensusRow) error {
	return experiment.WriteCensusTable(w, rows)
}

// Fig14Row is one point of the Fig 14 communication-time comparison.
type Fig14Row = experiment.Fig14Row

// Fig14Sweep reproduces the paper's headline experiment: SCB
// communication time, Square-Corner vs Block-Rectangle, ratio x:1:1.
func Fig14Sweep(xs []float64, nModel, nSim int) ([]Fig14Row, error) {
	return experiment.Fig14Sweep(xs, nModel, nSim)
}

// PhaseDiagram computes the optimal-shape winner map over the ratio plane
// (the all-candidates generalisation of Fig 13).
func PhaseDiagram(a Algorithm, topo Topology, rrMax, prMax, step float64, n int) (*experiment.WinnerMap, error) {
	return experiment.ComputeWinnerMap(a, topo, rrMax, prMax, step, n)
}

// SearchTrace runs a Push search recording the VoC after every committed
// Push — the convergence curve behind Fig 7.
func SearchTrace(n int, ratio Ratio, seed int64) (*experiment.Trace, error) {
	return experiment.TraceRun(n, ratio, seed)
}

// GanttChart renders the simulated schedule of a barrier or bulk-overlap
// algorithm as a text Gantt chart.
func GanttChart(a Algorithm, m Machine, g *Partition, width int) (string, error) {
	return sim.Gantt(a, m, g, width)
}

// TwoProcShape is a two-processor candidate from the prior work [8].
type TwoProcShape = twoproc.Shape

// The two-processor candidates.
const (
	TwoProcStraightLine    = twoproc.StraightLine
	TwoProcSquareCorner    = twoproc.SquareCorner
	TwoProcRectangleCorner = twoproc.RectangleCorner
)

// TwoProcOptimal returns the prior work's optimal two-processor shape for
// the algorithm and fast:slow ratio (Square-Corner above 3:1 under the
// barrier algorithms, always under bulk overlap).
func TwoProcOptimal(a Algorithm, fastRatio float64) (TwoProcShape, error) {
	r, err := twoproc.NewRatio(fastRatio)
	if err != nil {
		return 0, err
	}
	return twoproc.Optimal(a, r), nil
}

// BuildTwoProc constructs a two-processor candidate on the shared grid
// type (fast processor = P, slow = R).
func BuildTwoProc(s TwoProcShape, n int, fastRatio float64) (*Partition, error) {
	r, err := twoproc.NewRatio(fastRatio)
	if err != nil {
		return nil, err
	}
	return twoproc.Build(s, n, r)
}

// NProcRatio is a K-processor speed ratio, fastest first.
type NProcRatio = nproc.Ratio

// NProcConfig parameterises a K-processor Push search (§XI extension).
type NProcConfig = nproc.RunConfig

// NProcResult is its outcome.
type NProcResult = nproc.RunResult

// NProcSearch runs the generalised Push search for any number of
// processors (2–10).
func NProcSearch(cfg NProcConfig) (*NProcResult, error) { return nproc.Run(cfg) }
