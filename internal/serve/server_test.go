package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/partition"
	"repro/internal/sim"
	wire "repro/serve"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, timeout string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(string(buf)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if timeout != "" {
		req.Header.Set("Request-Timeout", timeout)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out []byte
	dec := json.NewDecoder(resp.Body)
	var raw json.RawMessage
	if err := dec.Decode(&raw); err == nil {
		out = raw
	}
	return resp, out
}

func decodePlan(t *testing.T, body []byte) wire.PlanResponse {
	t.Helper()
	var pr wire.PlanResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatalf("decode plan response: %v\n%s", err, body)
	}
	return pr
}

// TestPlanSearchedWhenHealthy: with no faults and a generous deadline the
// service returns the full searched answer, not a degraded one.
func TestPlanSearchedWhenHealthy(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/plan", "10s",
		wire.PlanRequest{N: 24, Ratio: "5:2:1", Algorithm: "SCB"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	pr := decodePlan(t, body)
	if pr.Degraded {
		t.Fatalf("healthy request degraded: %+v", pr)
	}
	if pr.Source != wire.SourceSearch || pr.Search == nil {
		t.Fatalf("want searched answer, got source=%q search=%v", pr.Source, pr.Search)
	}
	if pr.Plan == nil || pr.Plan.N != 24 {
		t.Fatalf("bad plan payload: %+v", pr.Plan)
	}
	if err := pr.Plan.Validate(); err != nil {
		t.Fatalf("served plan fails validation: %v", err)
	}
}

// TestPlanDegradesUnderStragglerFault: a persistent 1000× straggler on
// the planner CPU makes the search unable to finish inside a short
// deadline; the service must still answer in time with the canonical
// shape marked Degraded.
func TestPlanDegradesUnderStragglerFault(t *testing.T) {
	fp := sim.NewFaultPlan()
	if err := fp.AddStraggler(partition.P, 1000, 0, 1e9); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{
		Fault:         fp,
		FaultStepCost: 2 * time.Millisecond,
	})
	start := time.Now()
	resp, body := postJSON(t, ts.URL+"/v1/plan", "300ms",
		wire.PlanRequest{N: 24, Ratio: "5:2:1", Algorithm: "SCB"})
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if elapsed > 900*time.Millisecond {
		t.Fatalf("degraded answer took %v — deadline not honoured", elapsed)
	}
	pr := decodePlan(t, body)
	if !pr.Degraded || pr.DegradedReason != "deadline" {
		t.Fatalf("want Degraded deadline fallback, got %+v", pr)
	}
	if pr.Source != wire.SourceCanonical {
		t.Fatalf("source = %q, want %q", pr.Source, wire.SourceCanonical)
	}
	if resp.Header.Get("Degraded") != "true" {
		t.Fatal("Degraded response header missing")
	}
	if pr.Plan == nil || pr.Plan.Shape == "" {
		t.Fatalf("degraded response must still carry the canonical plan: %+v", pr.Plan)
	}
}

// TestPlanCacheHitAndStaleServing: the second identical request is a
// cache hit; once the entry has expired and the search path is broken, the
// stale entry is served marked Degraded rather than falling back to bare
// canonical.
func TestPlanCacheHitAndStaleServing(t *testing.T) {
	s, ts := newTestServer(t, Config{CacheTTL: time.Hour})
	req := wire.PlanRequest{N: 24, Ratio: "5:2:1", Algorithm: "SCB"}

	_, body := postJSON(t, ts.URL+"/v1/plan", "10s", req)
	first := decodePlan(t, body)
	if first.Source != wire.SourceSearch {
		t.Fatalf("first answer source %q", first.Source)
	}

	_, body = postJSON(t, ts.URL+"/v1/plan", "10s", req)
	second := decodePlan(t, body)
	if second.Source != wire.SourceCache || second.Degraded {
		t.Fatalf("second answer should be a fresh cache hit: %+v", second)
	}

	// Expire the cache and break the search path, then ask again: the
	// stale searched answer must be served, marked Degraded.
	s.cache.mu.Lock()
	for k, e := range s.cache.entries {
		e.expires = time.Now().Add(-time.Minute)
		s.cache.entries[k] = e
	}
	s.cache.mu.Unlock()
	fp := sim.NewFaultPlan()
	if err := fp.AddStraggler(partition.P, 1000, 0, 1e9); err != nil {
		t.Fatal(err)
	}
	s.cfg.Fault = fp
	s.cfg.FaultStepCost = 2 * time.Millisecond

	_, body = postJSON(t, ts.URL+"/v1/plan", "150ms", req)
	third := decodePlan(t, body)
	if !third.Degraded || third.Source != wire.SourceStaleCache {
		t.Fatalf("want stale-cache degraded answer, got %+v", third)
	}
	if third.Search == nil {
		t.Fatal("stale answer should retain its original search summary")
	}
	st := s.Stats()
	if st.CacheHits != 1 || st.StaleServed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestAdmissionControlSheds: with one slot, no queue, and a slow search,
// concurrent requests beyond capacity are not failed with 429 — they are
// served the ungated degraded fallback (load-shed closed form) so
// overload converts to quality loss, never availability loss.
func TestAdmissionControlSheds(t *testing.T) {
	fp := sim.NewFaultPlan()
	if err := fp.AddStraggler(partition.P, 1000, 0, 1e9); err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{
		MaxConcurrent: 1,
		MaxQueue:      1,
		Fault:         fp,
		FaultStepCost: 2 * time.Millisecond,
	})
	const workers = 8
	var degraded, full atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct seeds defeat coalescing so every request really
			// contends for the gate.
			resp, body := postJSON(t, ts.URL+"/v1/plan", "400ms",
				wire.PlanRequest{N: 24, Ratio: "5:2:1", Algorithm: "SCB", Seed: int64(i + 1)})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d: %s", resp.StatusCode, body)
				return
			}
			var pr wire.PlanResponse
			if err := json.Unmarshal(body, &pr); err != nil {
				t.Errorf("bad body: %v", err)
				return
			}
			if pr.Degraded && pr.DegradedReason == wire.DegradedLoadShed {
				degraded.Add(1)
			} else {
				full.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if degraded.Load() == 0 {
		t.Fatalf("no request hit the saturation fallback (full=%d)", full.Load())
	}
	if full.Load() == 0 {
		t.Fatal("every request fell back — gate never admitted")
	}
	st := s.Stats()
	if st.GateFallbacks == 0 {
		t.Fatalf("stats.GateFallbacks = 0, want > 0 (degraded=%d)", degraded.Load())
	}
	if st.Shed != 0 {
		t.Fatalf("stats.Shed = %d, want 0 — saturation must not 429", st.Shed)
	}
}

// TestSingleflightCoalesces: concurrent identical requests share one
// computation.
func TestSingleflightCoalesces(t *testing.T) {
	// The gate must admit all workers at once so coalescing (not
	// admission control) is what bounds the search count.
	s, ts := newTestServer(t, Config{MaxConcurrent: 8, MaxQueue: 16})
	const workers = 6
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := postJSON(t, ts.URL+"/v1/plan", "10s",
				wire.PlanRequest{N: 32, Ratio: "5:2:1", Algorithm: "SCB"})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d: %s", resp.StatusCode, body)
			}
		}()
	}
	wg.Wait()
	st := s.Stats()
	if st.Coalesced == 0 && st.CacheHits == 0 {
		t.Fatalf("no request coalesced or hit cache: %+v", st)
	}
	if st.Searched > workers-1 {
		t.Fatalf("searched %d times for %d identical requests", st.Searched, workers)
	}
}

// TestBreakerOpensAfterConsecutiveFailures: repeated deadline misses trip
// the breaker; subsequent requests degrade with reason breaker-open
// without touching the search path.
func TestBreakerOpensAfterConsecutiveFailures(t *testing.T) {
	fp := sim.NewFaultPlan()
	if err := fp.AddStraggler(partition.P, 1000, 0, 1e9); err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{
		Fault:            fp,
		FaultStepCost:    2 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour,
	})
	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/plan", "150ms",
			wire.PlanRequest{N: 24, Ratio: "5:2:1", Algorithm: "SCB", Seed: int64(i + 1)})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warm-up %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	if s.Stats().BreakerTrips != 1 {
		t.Fatalf("breaker trips = %d after threshold failures", s.Stats().BreakerTrips)
	}
	start := time.Now()
	_, body := postJSON(t, ts.URL+"/v1/plan", "10s",
		wire.PlanRequest{N: 24, Ratio: "5:2:1", Algorithm: "SCB", Seed: 99})
	pr := decodePlan(t, body)
	if !pr.Degraded || pr.DegradedReason != "breaker-open" {
		t.Fatalf("want breaker-open degraded answer, got %+v", pr)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("breaker-open answer took %v — search was not skipped", elapsed)
	}
}

// TestDrainRefusesNewWork: after BeginDrain, new requests get 503 and
// /healthz flips unhealthy.
func TestDrainRefusesNewWork(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.BeginDrain()
	resp, _ := postJSON(t, ts.URL+"/v1/plan", "1s",
		wire.PlanRequest{N: 24, Ratio: "5:2:1", Algorithm: "SCB"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining plan status = %d, want 503", resp.StatusCode)
	}
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /healthz status = %d, want 503", hr.StatusCode)
	}
}

// TestPanicIsolation: a handler panic is quarantined into a 500, counted,
// and the server keeps serving.
func TestPanicIsolation(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.Handle("/boom", s.endpoint("boom", true, func(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
		panic("poisoned request")
	}))
	// admit=false mirrors Handler(): /v1/plan self-admits after the
	// atlas tier.
	mux.Handle("/v1/plan", s.endpoint("plan", false, s.handlePlan))
	ts := httptest.NewServer(mux)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panic endpoint status = %d, want 500", resp.StatusCode)
	}
	if s.Stats().Panics != 1 {
		t.Fatalf("panics = %d, want 1", s.Stats().Panics)
	}
	// The gate slot must have been released despite the panic.
	resp2, body := postJSON(t, ts.URL+"/v1/plan", "10s",
		wire.PlanRequest{N: 24, Ratio: "5:2:1", Algorithm: "SCB"})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("server broken after panic: %d %s", resp2.StatusCode, body)
	}
}

// TestValidationErrors: malformed inputs get 400 with a diagnostic, not a
// search.
func TestValidationErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []wire.PlanRequest{
		{N: 0, Ratio: "5:2:1", Algorithm: "SCB"},
		{N: 24, Ratio: "bogus", Algorithm: "SCB"},
		{N: 24, Ratio: "5:2:1", Algorithm: "nope"},
		{N: 24, Ratio: "5:2:1", Algorithm: "SCB", Topology: "ring"},
		{N: 1 << 30, Ratio: "5:2:1", Algorithm: "SCB"},
	}
	for i, c := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/plan", "1s", c)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d (%s), want 400", i, resp.StatusCode, body)
		}
		var eb wire.ErrorBody
		if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
			t.Errorf("case %d: no diagnostic in body %s", i, body)
		}
	}
}

// TestEvaluateEndpoint: a named shape evaluates to its VoC and model
// breakdown; an infeasible one reports Feasible=false.
func TestEvaluateEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/evaluate", "5s",
		wire.EvaluateRequest{N: 24, Ratio: "5:2:1", Algorithm: "SCB", Shape: "Square-Corner"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var er wire.EvaluateResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if !er.Feasible || er.VoC <= 0 || len(er.Procs) != 3 {
		t.Fatalf("evaluate = %+v", er)
	}
	var total int
	for _, p := range er.Procs {
		total += p.Elements
	}
	if total != 24*24 {
		t.Fatalf("proc shares sum to %d, want %d", total, 24*24)
	}
}

// TestSearchEndpoint: a bounded search request completes and reports its
// trajectory.
func TestSearchEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/search", "10s",
		wire.SearchRequest{N: 20, Ratio: "3:2:1", MaxSteps: 2000, Beautify: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr wire.SearchResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Steps <= 0 || sr.FinalVoC <= 0 || sr.FinalVoC > sr.InitialVoC {
		t.Fatalf("search = %+v", sr)
	}
	if sr.Archetype == "" {
		t.Fatal("search response missing archetype classification")
	}
}

// TestCachePersistence: SaveCache/LoadCache round-trips entries through
// the CRC journal, and a corrupted plan inside the journal is dropped
// rather than served.
func TestCachePersistence(t *testing.T) {
	s, ts := newTestServer(t, Config{CacheTTL: time.Hour})
	_, body := postJSON(t, ts.URL+"/v1/plan", "10s",
		wire.PlanRequest{N: 24, Ratio: "5:2:1", Algorithm: "SCB"})
	if pr := decodePlan(t, body); pr.Source != wire.SourceSearch {
		t.Fatalf("seed request source %q", pr.Source)
	}

	path := filepath.Join(t.TempDir(), "plancache.journal")
	saved, err := s.SaveCache(path)
	if err != nil || saved != 1 {
		t.Fatalf("SaveCache = (%d, %v), want (1, nil)", saved, err)
	}

	s2, err := New(Config{CacheTTL: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := s2.LoadCache(path)
	if err != nil || loaded != 1 {
		t.Fatalf("LoadCache = (%d, %v), want (1, nil)", loaded, err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	_, body = postJSON(t, ts2.URL+"/v1/plan", "10s",
		wire.PlanRequest{N: 24, Ratio: "5:2:1", Algorithm: "SCB"})
	pr := decodePlan(t, body)
	if pr.Source != wire.SourceCache {
		t.Fatalf("warmed cache not used: %+v", pr)
	}

	// Loading a journal from a missing path warms nothing and is not an
	// error.
	s3, _ := New(Config{})
	if n, err := s3.LoadCache(filepath.Join(t.TempDir(), "absent.journal")); n != 0 || err != nil {
		t.Fatalf("missing journal load = (%d, %v)", n, err)
	}
}

// TestRequestTimeoutHeaderForms: both duration and integer-millisecond
// header forms parse; garbage is a 400.
func TestRequestTimeoutHeaderForms(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, h := range []string{"2s", "2000"} {
		resp, body := postJSON(t, ts.URL+"/v1/plan", h,
			wire.PlanRequest{N: 24, Ratio: "5:2:1", Algorithm: "SCB"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("Request-Timeout %q: status %d: %s", h, resp.StatusCode, body)
		}
	}
	resp, _ := postJSON(t, ts.URL+"/v1/plan", "soon",
		wire.PlanRequest{N: 24, Ratio: "5:2:1", Algorithm: "SCB"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage Request-Timeout: status %d, want 400", resp.StatusCode)
	}
}

// TestGetQueryForm: the GET query-parameter form of /v1/plan works for
// quick curl-style probing.
func TestGetQueryForm(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(fmt.Sprintf("%s/v1/plan?n=24&ratio=5:2:1&alg=SCB", ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET plan status %d", resp.StatusCode)
	}
	var pr wire.PlanResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if pr.Plan == nil || pr.Plan.N != 24 {
		t.Fatalf("GET plan = %+v", pr.Plan)
	}
}

// TestSearchStepBound: 0 selects the engine default, in-range requests
// pass through, and oversized requests clamp to the configured cap
// instead of silently resetting to the default.
func TestSearchStepBound(t *testing.T) {
	const limit = 1_000_000
	cases := []struct {
		requested, n, want int
	}{
		{0, 100, 4_000},         // engine default 40·N
		{0, 100_000, limit},     // default capped by the limit
		{500, 100, 500},         // in range: pass through
		{2_000_000, 100, limit}, // oversized: clamp to cap, not 40·N
	}
	for _, c := range cases {
		if got := searchStepBound(c.requested, c.n, limit); got != c.want {
			t.Errorf("searchStepBound(%d, %d, %d) = %d, want %d", c.requested, c.n, limit, got, c.want)
		}
	}
}

// TestCoalescedWaiterFullDeadlineExpiry504: a waiter whose entire request
// deadline (not just the reply-margin slice) expires while coalesced on
// another caller's flight is a client deadline expiry and must map to
// 504, not be wrapped as a 500 server fault.
func TestCoalescedWaiterFullDeadlineExpiry504(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/plan?n=24&ratio=5:2:1&algorithm=SCB", nil)
	in, err := s.parsePlan(req)
	if err != nil {
		t.Fatal(err)
	}
	// Occupy the flight so the request becomes a waiter, with an expired
	// request context standing in for the full deadline having passed.
	s.flights.mu.Lock()
	s.flights.m[in.key] = &flight{done: make(chan struct{})}
	s.flights.mu.Unlock()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	herr := s.handlePlan(ctx, httptest.NewRecorder(), req)
	var he *httpError
	if !errors.As(herr, &he) || he.status != http.StatusGatewayTimeout {
		t.Fatalf("expired coalesced waiter returned %v, want httpError 504", herr)
	}
}
