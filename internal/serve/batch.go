package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	wire "repro/serve"
)

// POST /v1/plan:batch — many plan scenarios in one round trip. The
// request decodes once, each item runs the same tiered path as a
// standalone /v1/plan (atlas first, then the gated search path), and
// items fail independently: a malformed ratio in one slot yields a
// per-item error there while the rest still carry plans. Atlas-hit
// items splice their pre-encoded bytes straight into the response
// without re-marshalling.
//
// With "Accept: application/x-ndjson" (or ?stream=1) the response
// streams instead: one BatchItemResult per line as each item completes,
// closed by a BatchStreamTrailer line — so a client fanning a large
// batch out to workers can start on early items while late ones still
// compute.

func (s *Server) handleBatch(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	if r.Method != http.MethodPost {
		return &httpError{status: http.StatusMethodNotAllowed, msg: "use POST"}
	}
	var req wire.BatchPlanRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, s.cfg.MaxBatchBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return badRequest("bad batch body: %v", err)
	}
	if len(req.Items) == 0 {
		return badRequest("batch has no items")
	}
	if len(req.Items) > s.cfg.MaxBatchItems {
		return &httpError{
			status: http.StatusRequestEntityTooLarge,
			msg:    fmt.Sprintf("batch of %d items exceeds the %d-item limit", len(req.Items), s.cfg.MaxBatchItems),
		}
	}
	s.batchRequests.Add(1)
	s.batchItems.Add(int64(len(req.Items)))
	start := time.Now()

	if wantsStream(r) {
		return s.streamBatch(ctx, w, req.Items, start)
	}
	resp := wire.BatchPlanResponse{Items: make([]wire.BatchItemResult, len(req.Items))}
	for i, item := range req.Items {
		resp.Items[i] = s.planItem(ctx, i, item)
		if resp.Items[i].Status == http.StatusOK {
			resp.Succeeded++
		} else {
			resp.Failed++
		}
	}
	resp.ElapsedMS = msSince(start)
	writeJSON(w, http.StatusOK, resp)
	return nil
}

// streamBatch emits NDJSON: one result line per item as it completes,
// then the trailer.
func (s *Server) streamBatch(ctx context.Context, w http.ResponseWriter, items []wire.PlanRequest, start time.Time) error {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	succeeded, failed := 0, 0
	for i, item := range items {
		res := s.planItem(ctx, i, item)
		if res.Status == http.StatusOK {
			succeeded++
		} else {
			failed++
		}
		if err := enc.Encode(res); err != nil {
			return nil // client went away; nothing left to report to it
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	enc.Encode(wire.BatchStreamTrailer{
		Trailer:   true,
		Succeeded: succeeded,
		Failed:    failed,
		ElapsedMS: msSince(start),
	})
	return nil
}

// planItem runs one batch item through the same tiers as /v1/plan.
// Failures become per-item status/error entries, never a batch failure.
func (s *Server) planItem(ctx context.Context, idx int, item wire.PlanRequest) wire.BatchItemResult {
	res := wire.BatchItemResult{Index: idx}
	in, err := s.parsePlanRequest(item)
	if err != nil {
		res.Status, res.Error = itemStatus(err)
		return res
	}
	tier := s.ladder.tick(time.Now(), s.loadSignal)
	if body, ok := s.atlasAnswer(in); ok {
		s.atlasHits.Add(1)
		res.Status = http.StatusOK
		res.Response = json.RawMessage(body)
		return res
	}
	start := time.Now()
	switch tier {
	case tierAtlas, tierStale:
		resp, err := s.shedPlan(in, tier, start)
		if err != nil {
			res.Status, res.Error = itemStatus(err)
			return res
		}
		return marshalItem(res, resp)
	case tierReject:
		res.Status, res.Error = itemStatus(s.rejectShed())
		return res
	}
	release, herr, saturated := s.admitPlan(ctx)
	if saturated {
		resp, err := s.shedPlan(in, tierAtlas, start)
		if err != nil {
			res.Status, res.Error = itemStatus(err)
			return res
		}
		return marshalItem(res, resp)
	}
	if herr != nil {
		res.Status, res.Error = itemStatus(herr)
		return res
	}
	resp, err := s.planScenario(ctx, in, start, tier == tierBounded)
	release()
	if err != nil {
		res.Status, res.Error = itemStatus(err)
		return res
	}
	return marshalItem(res, resp)
}

// marshalItem finalises a successful item with its encoded response.
func marshalItem(res wire.BatchItemResult, resp *wire.PlanResponse) wire.BatchItemResult {
	body, err := json.Marshal(resp)
	if err != nil {
		res.Status, res.Error = http.StatusInternalServerError, err.Error()
		return res
	}
	res.Status = http.StatusOK
	res.Response = body
	return res
}

// itemStatus flattens a handler error into a per-item status and message.
func itemStatus(err error) (int, string) {
	var he *httpError
	if errors.As(err, &he) {
		return he.status, he.msg
	}
	return http.StatusInternalServerError, err.Error()
}

// wantsStream reports whether the client asked for the NDJSON variant.
func wantsStream(r *http.Request) bool {
	if v := r.URL.Query().Get("stream"); v == "1" || v == "true" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
}
