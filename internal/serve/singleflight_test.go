package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	wire "repro/serve"
)

// TestFlightGroupCoalesces: concurrent callers of one key share a
// single execution.
func TestFlightGroupCoalesces(t *testing.T) {
	g := newFlightGroup()
	var execs atomic.Int32
	started := make(chan struct{})
	release := make(chan struct{})
	leaderDone := make(chan struct{})

	go func() {
		defer close(leaderDone)
		_, shared, err := g.do(context.Background(), "k", func() (*wire.PlanResponse, error) {
			close(started)
			<-release
			execs.Add(1)
			return &wire.PlanResponse{Source: wire.SourceSearch}, nil
		})
		if err != nil || shared {
			t.Errorf("leader: shared=%v err=%v", shared, err)
		}
	}()
	<-started

	const waiters = 8
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, shared, err := g.do(context.Background(), "k", func() (*wire.PlanResponse, error) {
				t.Error("waiter executed fn")
				return nil, nil
			})
			if err != nil || !shared || resp == nil || resp.Source != wire.SourceSearch {
				t.Errorf("waiter: resp=%v shared=%v err=%v", resp, shared, err)
			}
		}()
	}
	// Give the waiters time to join the flight, then let the leader go.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	<-leaderDone
	if got := execs.Load(); got != 1 {
		t.Fatalf("fn executed %d times, want 1", got)
	}
}

// TestFlightGroupWaiterCancellation: a subset of waiters cancels while
// the leader is still computing. The cancelled waiters must return
// promptly with a waiterTimeoutError; the survivors and the leader must
// be unaffected and still share the one result.
func TestFlightGroupWaiterCancellation(t *testing.T) {
	g := newFlightGroup()
	started := make(chan struct{})
	release := make(chan struct{})
	leaderDone := make(chan struct{})

	go func() {
		defer close(leaderDone)
		g.do(context.Background(), "k", func() (*wire.PlanResponse, error) {
			close(started)
			<-release
			return &wire.PlanResponse{Source: wire.SourceSearch}, nil
		})
	}()
	<-started

	const total = 12 // even waiters cancel, odd waiters stay
	type outcome struct {
		resp *wire.PlanResponse
		err  error
		took time.Duration
	}
	outcomes := make([]outcome, total)
	var joined, cancelled sync.WaitGroup
	cancels := make([]context.CancelFunc, total)
	for i := 0; i < total; i++ {
		ctx := context.Background()
		if i%2 == 0 {
			ctx, cancels[i] = context.WithCancel(ctx)
			cancelled.Add(1)
		}
		joined.Add(1)
		go func(i int, ctx context.Context) {
			defer joined.Done()
			if i%2 == 0 {
				defer cancelled.Done()
			}
			start := time.Now()
			resp, _, err := g.do(ctx, "k", func() (*wire.PlanResponse, error) {
				t.Error("waiter executed fn")
				return nil, nil
			})
			outcomes[i] = outcome{resp: resp, err: err, took: time.Since(start)}
		}(i, ctx)
	}
	time.Sleep(50 * time.Millisecond) // let every waiter join the flight

	// Cancel the even half, concurrently with each other.
	for i := 0; i < total; i += 2 {
		go cancels[i]()
	}
	cancelled.Wait() // cancelled waiters must return without the leader finishing

	close(release)
	joined.Wait()
	<-leaderDone

	for i, o := range outcomes {
		if i%2 == 0 {
			var wt *waiterTimeoutError
			if !errors.As(o.err, &wt) || !errors.Is(o.err, context.Canceled) {
				t.Fatalf("cancelled waiter %d: err = %v, want waiterTimeoutError wrapping context.Canceled", i, o.err)
			}
			if o.took > time.Second {
				t.Fatalf("cancelled waiter %d took %v — must abandon promptly", i, o.took)
			}
		} else {
			if o.err != nil || o.resp == nil || o.resp.Source != wire.SourceSearch {
				t.Fatalf("surviving waiter %d: resp=%v err=%v", i, o.resp, o.err)
			}
		}
	}
}

// TestFlightGroupChurn: many goroutines hammer overlapping keys with
// short deadlines and random cancellation while leaders keep completing.
// This is a race-detector workout: the invariant is simply that every
// call returns either a real result or a waiterTimeoutError, and that
// results are never torn.
func TestFlightGroupChurn(t *testing.T) {
	g := newFlightGroup()
	var wg sync.WaitGroup
	const workers = 16
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("k%d", (w+i)%4)
				ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i%3)*time.Millisecond)
				resp, _, err := g.do(ctx, key, func() (*wire.PlanResponse, error) {
					time.Sleep(time.Duration(i%2) * time.Millisecond)
					return &wire.PlanResponse{Source: key}, nil
				})
				cancel()
				switch {
				case err == nil:
					if resp == nil || resp.Source != key {
						t.Errorf("worker %d call %d: torn result %+v for %s", w, i, resp, key)
						return
					}
				default:
					var wt *waiterTimeoutError
					if !errors.As(err, &wt) {
						t.Errorf("worker %d call %d: unexpected error %v", w, i, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestFlightGroupLeaderErrorShared: a leader's error propagates to all
// waiters, and the key is reusable afterwards.
func TestFlightGroupLeaderErrorShared(t *testing.T) {
	g := newFlightGroup()
	boom := errors.New("boom")
	started := make(chan struct{})
	release := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		g.do(context.Background(), "k", func() (*wire.PlanResponse, error) {
			close(started)
			<-release
			return nil, boom
		})
	}()
	<-started

	waiterErr := make(chan error, 1)
	go func() {
		_, shared, err := g.do(context.Background(), "k", func() (*wire.PlanResponse, error) {
			return nil, nil
		})
		if !shared {
			waiterErr <- errors.New("waiter was not shared")
			return
		}
		waiterErr <- err
	}()
	time.Sleep(5 * time.Millisecond)
	close(release)
	if err := <-waiterErr; !errors.Is(err, boom) {
		t.Fatalf("waiter err = %v, want leader's boom", err)
	}
	<-leaderDone

	// The finished flight must not haunt the key.
	resp, shared, err := g.do(context.Background(), "k", func() (*wire.PlanResponse, error) {
		return &wire.PlanResponse{Source: wire.SourceCache}, nil
	})
	if err != nil || shared || resp.Source != wire.SourceCache {
		t.Fatalf("fresh flight after error: resp=%+v shared=%v err=%v", resp, shared, err)
	}
}
