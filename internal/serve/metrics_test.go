package serve

import (
	"net/http"
	"testing"
	"time"

	"repro/internal/metrics"
	wire "repro/serve"
)

// TestMetricsEndpointScrape drives real traffic through the handler —
// a computed plan, a cached replay, and a shed-free stats call — then
// scrapes /metrics and checks the exposed numbers agree with what the
// traffic did. This is the acceptance gate for "curl /metrics returns
// parseable Prometheus text including request latency histograms,
// cache, and breaker metrics".
func TestMetricsEndpointScrape(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheTTL: time.Hour})

	req := wire.PlanRequest{N: 40, Ratio: "3:1:1", Algorithm: "SCB"}
	for i := 0; i < 2; i++ { // second call is a fresh cache hit
		resp, _ := postJSON(t, ts.URL+"/v1/plan", "5s", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("plan call %d: HTTP %d", i, resp.StatusCode)
		}
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/plan", "5s", struct {
		Bogus string `json:"bogus"`
	}{"x"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus plan: HTTP %d, want 400", resp.StatusCode)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", resp.StatusCode)
	}
	got, err := metrics.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("scrape does not parse: %v", err)
	}

	checks := map[string]float64{
		`pland_requests_total{endpoint="plan"}`:                 3,
		`pland_responses_total{endpoint="plan",code="200"}`:     2,
		`pland_responses_total{endpoint="plan",code="400"}`:     1,
		`pland_request_duration_seconds_count{endpoint="plan"}`: 3,
		"pland_cache_hits_total":                                1,
		"pland_cache_misses_total":                              1,
		"pland_cache_entries":                                   1,
		"pland_searched_total":                                  1,
		"pland_breaker_state":                                   0,
		"pland_shed_total":                                      0,
		"pland_panics_total":                                    0,
		"pland_draining":                                        0,
		`pland_breaker_transitions_total{to="open"}`:            0,
	}
	for k, want := range checks {
		v, ok := got[k]
		if !ok {
			t.Errorf("scrape missing %s", k)
			continue
		}
		if v != want {
			t.Errorf("%s = %v, want %v", k, v, want)
		}
	}
	// Histogram buckets are cumulative: the +Inf bucket equals _count.
	if inf := got[`pland_request_duration_seconds_bucket{endpoint="plan",le="+Inf"}`]; inf != 3 {
		t.Errorf("+Inf bucket = %v, want 3", inf)
	}
	// The in-process push engine's counters ride along on the scrape.
	for _, name := range []string{"push_runs_total", "push_steps_total", "push_memo_probes_total"} {
		if got[name] < 1 {
			t.Errorf("%s = %v, want >= 1 after a searched plan", name, got[name])
		}
	}
	if _, ok := got[`push_phase_seconds_total{phase="condense"}`]; !ok {
		t.Error("scrape missing push_phase_seconds_total{phase=\"condense\"}")
	}
}

// TestMetricsServedWhileDraining: the scrape must stay up during a
// drain — that is when an operator most needs it — while the API
// endpoints refuse.
func TestMetricsServedWhileDraining(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.BeginDrain()

	if resp, _ := postJSON(t, ts.URL+"/v1/plan", "", wire.PlanRequest{N: 40, Ratio: "2:1:1", Algorithm: "SCB"}); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("plan while draining: HTTP %d, want 503", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics while draining: HTTP %d, want 200", resp.StatusCode)
	}
	got, err := metrics.ParseText(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if got["pland_draining"] != 1 {
		t.Errorf("pland_draining = %v, want 1", got["pland_draining"])
	}
	// Drained refusals are deliberately uncounted in the per-endpoint
	// traffic series (the server refused admission, not served).
	if got[`pland_requests_total{endpoint="plan"}`] != 0 {
		t.Errorf("drained refusal counted as a request: %v", got[`pland_requests_total{endpoint="plan"}`])
	}
}
