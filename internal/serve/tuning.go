package serve

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	heteropart "repro"
	"repro/internal/atlas"
	"repro/internal/calibrate"
	wire "repro/serve"
)

// Self-tuning: the shed ladder and the calibration loop.
//
// Two control loops close here. The LOAD loop watches admission-gate
// occupancy and a latency EWMA and sheds answer quality one rung at a
// time — full search → bounded search → atlas/closed-form → stale cache
// → 429 — so plan quality degrades monotonically with offered load and
// recovers the same way. Transitions are clamped to ±1 rung per
// evaluation tick, which makes "no rung is ever skipped" a structural
// property rather than a tuning outcome; the hysteresis gap between the
// up and down thresholds keeps it from flapping. The atlas tier answers
// at every rung, including reject: on-grid scenarios never lose
// availability no matter the load.
//
// The CALIBRATION loop (internal/calibrate) publishes drifting
// speed-ratio estimates into the server via ApplyEstimate. Requests
// that ask for ratio "auto" resolve against the latest published
// estimate — the resolved ratio is baked into the cache/coalescing key,
// so after a publish the old keys are structurally unreachable (an old
// plan can never be served for an auto request again), and the
// previously tracked auto scenarios are invalidated and re-planned in
// the background, counted by pland_replans_total.

// ---------------------------------------------------------------------
// shed ladder

// shedTier is a rung on the degradation ladder. Higher sheds more.
type shedTier int32

const (
	tierSearch  shedTier = iota // full search budget
	tierBounded                 // search with a capped step budget
	tierAtlas                   // no search: atlas shape or closed-form canonical
	tierStale                   // stale cache preferred, then atlas shape/canonical
	tierReject                  // 429 for everything the atlas can't answer
	numTiers
)

var tierNames = [numTiers]string{"search", "bounded", "atlas", "stale", "reject"}

func (t shedTier) String() string {
	if t < 0 || t >= numTiers {
		return fmt.Sprintf("tier(%d)", int32(t))
	}
	return tierNames[t]
}

// loadController is the adaptive admission controller. It is evaluated
// lazily on the request path (at most once per interval) rather than on
// a timer: an idle server pays nothing, and a loaded one evaluates
// exactly as often as configured.
type loadController struct {
	target   time.Duration // latency the EWMA is normalized against
	interval time.Duration
	up, down float64

	tier     atomic.Int32
	lastEval atomic.Int64  // unixnano of the last evaluation
	signal   atomic.Uint64 // float64 bits of the last load signal
	obsSince atomic.Int64  // latency observations folded in since the last shift

	mu      sync.Mutex
	latEWMA float64 // seconds

	transitions [numTiers][numTiers]atomic.Int64
	onShift     func(from, to shedTier)
}

func newLoadController(target, interval time.Duration, up, down float64, now time.Time) *loadController {
	lc := &loadController{target: target, interval: interval, up: up, down: down}
	// Start the clock at construction: the first transition can happen
	// no earlier than one full interval into serving.
	lc.lastEval.Store(now.UnixNano())
	return lc
}

// observe folds one answered-request latency into the EWMA.
func (lc *loadController) observe(d time.Duration) {
	const alpha = 0.2
	lc.mu.Lock()
	lc.latEWMA += alpha * (d.Seconds() - lc.latEWMA)
	lc.mu.Unlock()
	lc.obsSince.Add(1)
}

// climbMinObs is how many latency observations must have refreshed the
// EWMA since the last shift before the ladder may climb OUT of a shed
// tier. At shed tiers the admission gate is bypassed, so occupancy
// reads zero and the only climb signal is the latency EWMA — which,
// right after a shift, still reflects answers served under the previous
// (slower) tier. Climbing on that stale data would overshoot into
// reject and shed requests the cheap tier could have answered; a few
// fresh shed-tier samples decay the EWMA first if the tier is actually
// keeping up. Climbs from the search tiers are exempt: there the gate
// is live and occupancy is current data.
const climbMinObs = 4

// current returns the tier without evaluating.
func (lc *loadController) current() shedTier { return shedTier(lc.tier.Load()) }

// tick returns the tier to serve this request under, re-evaluating the
// ladder if an interval has passed since the last evaluation. load is
// computed from the gate and latency EWMA by the caller-supplied func
// only when an evaluation actually runs.
func (lc *loadController) tick(now time.Time, load func() float64) shedTier {
	last := lc.lastEval.Load()
	if now.Sub(time.Unix(0, last)) < lc.interval {
		return lc.current()
	}
	if !lc.lastEval.CompareAndSwap(last, now.UnixNano()) {
		return lc.current() // another request won this evaluation
	}
	sig := load()
	lc.signal.Store(math.Float64bits(sig))
	from := lc.current()
	to := from
	switch {
	case sig >= lc.up && from < numTiers-1:
		if from < tierAtlas || lc.obsSince.Load() >= climbMinObs {
			to = from + 1
		}
	case sig <= lc.down && from > 0:
		to = from - 1
	}
	if to != from {
		lc.tier.Store(int32(to))
		lc.obsSince.Store(0)
		lc.transitions[from][to].Add(1)
		if lc.onShift != nil {
			lc.onShift(from, to)
		}
	}
	return to
}

// loadSignal computes the composite load: the worse of gate pressure
// (in-flight plus queued, over the slot count — exceeds 1 when queuing)
// and latency pressure (EWMA over target). At shed tiers the gate is
// bypassed, so pressure there reads low and the ladder descends on its
// own once the latency EWMA recovers — the controller needs no separate
// "recovered" signal.
func (s *Server) loadSignal() float64 {
	occ := float64(s.gate.InUse()+s.gate.Waiting()) / float64(s.gate.Slots())
	s.ladder.mu.Lock()
	lat := s.ladder.latEWMA
	s.ladder.mu.Unlock()
	return math.Max(occ, lat/s.ladder.target.Seconds())
}

// lastLoadSignal returns the signal from the most recent evaluation.
func (lc *loadController) lastLoadSignal() float64 {
	return math.Float64frombits(lc.signal.Load())
}

// shedPlan answers a request at the atlas or stale rung without
// touching the gate, the flight group, or the search engine. The
// quality order is the ladder's: tierAtlas prefers a *fresh* answer
// (atlas shape, then the canonical closed-form comparison); tierStale
// reaches for a stale cached search first and computes only when there
// is nothing to reheat.
func (s *Server) shedPlan(in planInputs, tier shedTier, start time.Time) (*wire.PlanResponse, error) {
	s.degraded.Add(1)
	s.metrics.degraded.With(string(wire.DegradedLoadShed)).Inc()
	if tier >= tierStale {
		if stale, _, ok := s.cache.get(in.key); ok {
			stale.Degraded = true
			stale.DegradedReason = wire.DegradedLoadShed
			stale.Source = wire.SourceStaleCache
			stale.Search = nil
			stale.ElapsedMS = msSince(start)
			s.staleServed.Add(1)
			return &stale, nil
		}
	}
	resp := &wire.PlanResponse{Degraded: true, DegradedReason: wire.DegradedLoadShed}
	if plan := s.atlasShapeFallback(in); plan != nil {
		resp.Plan, resp.Source = plan, wire.SourceAtlasShape
	} else {
		plan, err := heteropart.NewPlan(in.alg, in.m, in.n)
		if err != nil {
			return nil, &httpError{status: 422, msg: err.Error()}
		}
		resp.Plan, resp.Source = plan, wire.SourceCanonical
	}
	resp.ElapsedMS = msSince(start)
	return resp, nil
}

// rejectShed is the top rung's answer for anything the atlas couldn't
// serve: a 429 distinguishable from gate saturation by its message.
func (s *Server) rejectShed() *httpError {
	s.shed.Add(1)
	return &httpError{status: 429, msg: "load shed: serving atlas tier only", retryAfter: time.Second}
}

// ---------------------------------------------------------------------
// calibration: auto scenarios, drift invalidation, re-planning

// autoScenario is the published scenario default that ratio:"auto"
// requests resolve against.
type autoScenario struct {
	ratio heteropart.Ratio
	beta  float64 // seconds/byte; 0 = keep the model default
	gen   uint64
}

// AttachCalibrator exposes a calibrator's counters on /metrics. The
// estimate flow itself goes through ApplyEstimate (wire it to the
// calibrator's OnPublish).
func (s *Server) AttachCalibrator(c *calibrate.Calibrator) { s.cal.Store(c) }

// ApplyEstimate publishes a calibration estimate as the scenario
// default for ratio:"auto" requests. If the ratio (or β) actually
// changed, every tracked auto scenario is invalidated — its cache entry
// is dropped, and because auto keys embed the resolved ratio, the old
// entries become unreachable even if eviction raced — and re-planned in
// the background under the new estimate, counted in Stats.Replans /
// pland_replans_total.
func (s *Server) ApplyEstimate(e calibrate.Estimate) {
	next := &autoScenario{ratio: e.Ratio, beta: e.Beta, gen: e.Generation}
	old := s.scenario.Swap(next)
	if old != nil && old.ratio == next.ratio && old.beta == next.beta {
		return
	}
	s.cfg.Logf("serve: calibration gen=%d published ratio=%s beta=%.3g", e.Generation, e.Ratio, e.Beta)
	if old == nil {
		return // first publish: nothing was planned under "auto" yet
	}
	s.autoMu.Lock()
	tracked := s.autoTracked
	s.autoTracked = make(map[string]planInputs)
	s.autoMu.Unlock()
	if len(tracked) == 0 {
		return
	}
	go s.replanTracked(tracked, next)
}

// replanTracked re-plans each invalidated auto scenario under the new
// estimate, sequentially — drift is rare and the point is a warm cache,
// not a thundering herd against our own gate.
func (s *Server) replanTracked(tracked map[string]planInputs, sc *autoScenario) {
	for key, in := range tracked {
		s.cache.remove(key)
		if s.draining.Load() {
			continue
		}
		fresh := s.reresolveAuto(in, sc)
		s.replans.Add(1)
		ctx, cancel := context.WithTimeout(context.Background(), s.cfg.DefaultTimeout)
		if _, err := s.computePlan(ctx, fresh, false); err != nil {
			s.cfg.Logf("serve: drift re-plan for %s failed: %v", fresh.key, err)
		} else {
			s.trackAuto(fresh)
		}
		cancel()
	}
}

// reresolveAuto rebuilds an auto scenario's inputs under a new
// published estimate, keeping n, algorithm, topology, and seed.
func (s *Server) reresolveAuto(in planInputs, sc *autoScenario) planInputs {
	topo := in.m.Topology
	m := s.cfg.Machine(sc.ratio)
	m.Topology = topo
	if sc.beta > 0 && s.atlasSt.Load() == nil {
		m.Net.Beta = sc.beta
	}
	return planInputs{
		n:     in.n,
		ratio: sc.ratio,
		alg:   in.alg,
		m:     m,
		seed:  in.seed,
		auto:  true,
		key:   fmt.Sprintf("%d|%s|%s|%s|%d", in.n, sc.ratio.Key(), in.alg, topo, in.seed),
	}
}

// trackAuto remembers an auto-resolved scenario for drift invalidation.
func (s *Server) trackAuto(in planInputs) {
	s.autoMu.Lock()
	if len(s.autoTracked) < s.cfg.CacheMax {
		s.autoTracked[in.key] = in
	}
	s.autoMu.Unlock()
}

// Scenario returns the current published auto scenario default, if any.
func (s *Server) Scenario() (ratio heteropart.Ratio, generation uint64, ok bool) {
	sc := s.scenario.Load()
	if sc == nil {
		return heteropart.Ratio{}, 0, false
	}
	return sc.ratio, sc.gen, true
}

// ---------------------------------------------------------------------
// atlas hot-swap

// SetAtlas atomically swaps the served atlas snapshot (nil removes it).
// In-flight requests keep whichever snapshot they already loaded — the
// swap can never tear a response. The same validity rules as Config
// apply: the atlas is baked against the default machine model and must
// fit under MaxN.
func (s *Server) SetAtlas(a *atlas.Atlas) error {
	if a != nil {
		if s.customMachine {
			return fmt.Errorf("serve: atlas requires the default machine model")
		}
		if a.N() > s.cfg.MaxN {
			return fmt.Errorf("serve: atlas n=%d exceeds MaxN=%d", a.N(), s.cfg.MaxN)
		}
	}
	s.atlasSt.Store(newAtlasState(a))
	return nil
}
