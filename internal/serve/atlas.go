package serve

import (
	"encoding/json"
	"net/http"
	"sync/atomic"

	heteropart "repro"
	"repro/internal/atlas"
	wire "repro/serve"
)

// The atlas answer tier.
//
// When Config.Atlas is set, a /v1/plan request whose scenario sits
// exactly on the atlas grid (matching n, algorithm, topology, and a
// ratio on the quantization lattice) is answered before admission
// control: the baked winner is encoded once per cell into a complete
// PlanResponse body and every later hit writes those cached bytes —
// no search engine, no breaker, no singleflight, no allocation on the
// steady-state path. Off-atlas scenarios fall through to the normal
// gated search path unchanged.

// atlasState is the server's per-cell encode cache over the immutable
// atlas: atlasEnc[i] holds the fully encoded PlanResponse body for grid
// cell i once some request (or WarmAtlas) has built it.
type atlasState struct {
	atlas *atlas.Atlas
	enc   []atomic.Pointer[[]byte]
}

func newAtlasState(a *atlas.Atlas) *atlasState {
	if a == nil {
		return nil
	}
	return &atlasState{atlas: a, enc: make([]atomic.Pointer[[]byte], a.Cells())}
}

// atlasAnswer returns the pre-encoded response body for an on-atlas
// scenario, or ok=false to fall through to the search path. The first
// hit on a cell pays one plan construction and JSON encode; every later
// hit is a pointer load.
func (s *Server) atlasAnswer(in planInputs) ([]byte, bool) {
	st := s.atlasSt.Load()
	if st == nil {
		return nil, false
	}
	a := st.atlas
	// A machine carrying a per-link cost model (a "links:"/"2+1"/"3-island"
	// topology spec) is priced differently from the uniform model the atlas
	// was baked with — those scenarios always take the search path.
	if in.n != a.N() || in.alg != a.Algorithm() || in.m.Topology != a.Topology() || in.m.Cost != nil {
		return nil, false
	}
	rec, c, ok := a.Lookup(in.ratio)
	if !ok || !rec.Feasible {
		return nil, false
	}
	idx := a.Grid().Index(c)
	if body := st.enc[idx].Load(); body != nil {
		return *body, true
	}
	body, ok := s.encodeAtlasCell(in, rec)
	if !ok {
		return nil, false
	}
	st.enc[idx].Store(&body)
	return body, true
}

// encodeAtlasCell builds and encodes the response for one atlas cell,
// cross-checking the baked record against the live planner: a snapshot
// baked by an older binary whose cost model has since changed would
// disagree here, and the request falls through to the search path
// (counted in atlasRejects) instead of serving a stale decision.
func (s *Server) encodeAtlasCell(in planInputs, rec atlas.Record) ([]byte, bool) {
	plan, err := heteropart.NewPlanForShape(in.alg, in.m, in.n, rec.Shape)
	if err != nil ||
		plan.VoC != rec.VoC ||
		plan.Expected.Total != rec.Total ||
		plan.Expected.Comm != rec.Comm {
		s.atlasRejects.Add(1)
		s.cfg.Logf("serve: atlas record for ratio %v disagrees with live planner (err=%v); serving via search", in.ratio, err)
		return nil, false
	}
	body, err := json.Marshal(&wire.PlanResponse{Plan: plan, Source: wire.SourceAtlas})
	if err != nil {
		s.atlasRejects.Add(1)
		s.cfg.Logf("serve: atlas response encode failed: %v", err)
		return nil, false
	}
	return body, true
}

// WarmAtlas pre-encodes every feasible atlas cell so the first request
// per cell does not pay the encode. Returns how many cells were encoded
// and how many records failed the live cross-check. Call at startup;
// safe (but pointless) without a configured atlas.
func (s *Server) WarmAtlas() (encoded, rejected int) {
	st := s.atlasSt.Load()
	if st == nil {
		return 0, 0
	}
	a := st.atlas
	g := a.Grid()
	before := s.atlasRejects.Load()
	for idx := 0; idx < a.Cells(); idx++ {
		c := g.Cell(idx)
		rec, ok := a.At(c)
		if !ok || !rec.Feasible {
			continue
		}
		ratio := g.Ratio(c)
		m := s.cfg.Machine(ratio)
		m.Topology = a.Topology()
		in := planInputs{n: a.N(), ratio: ratio, alg: a.Algorithm(), m: m}
		body, ok := s.encodeAtlasCell(in, rec)
		if !ok {
			continue
		}
		st.enc[idx].Store(&body)
		encoded++
	}
	return encoded, int(s.atlasRejects.Load() - before)
}

// writeAtlasBody writes a pre-encoded atlas response.
func writeAtlasBody(w http.ResponseWriter, body []byte) error {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, err := w.Write(body)
	return err
}

// atlasShapeFallback builds the degraded atlas-shape answer: the baked
// winner for the request's ratio, rebuilt at the request's (off-atlas)
// matrix dimension. One shape construction instead of the canonical
// six-way comparison, and informed by the same decision the full search
// path would start from. Returns nil when the ratio is off-grid or the
// algorithm/topology differ from the atlas's.
func (s *Server) atlasShapeFallback(in planInputs) *heteropart.Plan {
	st := s.atlasSt.Load()
	if st == nil {
		return nil
	}
	a := st.atlas
	if in.alg != a.Algorithm() || in.m.Topology != a.Topology() || in.m.Cost != nil {
		return nil
	}
	rec, _, ok := a.Lookup(in.ratio)
	if !ok || !rec.Feasible {
		return nil
	}
	plan, err := heteropart.NewPlanForShape(in.alg, in.m, in.n, rec.Shape)
	if err != nil {
		return nil
	}
	return plan
}
