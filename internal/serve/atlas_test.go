package serve

import (
	"bytes"
	"context"
	"net/http"
	"testing"
	"time"

	heteropart "repro"
	"repro/internal/atlas"
	"repro/internal/metrics"
	"repro/internal/model"
	wire "repro/serve"
)

// buildTestAtlas bakes a small atlas for the serving tests: scale 2,
// Pr ∈ [1,4], Rr ∈ [1,3], n=24 (SCB, fully connected).
func buildTestAtlas(t testing.TB) *atlas.Atlas {
	t.Helper()
	g, err := atlas.NewGrid(2, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	a, err := atlas.Build(context.Background(), atlas.BuildConfig{
		Algorithm: model.SCB,
		Topology:  model.FullyConnected,
		N:         24,
		Grid:      g,
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestAtlasHitServesWithoutSearch: an on-atlas request is answered with
// Source "atlas", bit-identical to the live planner's answer, without
// the search engine, cache, or admission gate being involved.
func TestAtlasHitServesWithoutSearch(t *testing.T) {
	s, ts := newTestServer(t, Config{Atlas: buildTestAtlas(t)})
	resp, body := postJSON(t, ts.URL+"/v1/plan", "10s",
		wire.PlanRequest{N: 24, Ratio: "2.5:1.5:1", Algorithm: "SCB"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	pr := decodePlan(t, body)
	if pr.Source != wire.SourceAtlas {
		t.Fatalf("source = %q, want %q", pr.Source, wire.SourceAtlas)
	}
	if pr.Degraded || pr.Search != nil {
		t.Fatalf("atlas answer marked degraded=%v search=%v", pr.Degraded, pr.Search)
	}
	if err := pr.Plan.Validate(); err != nil {
		t.Fatalf("atlas plan does not validate: %v", err)
	}

	// Bit-identical to what the live planner computes for the scenario.
	ratio := heteropart.MustRatio(2.5, 1.5, 1)
	m := heteropart.DefaultMachine(ratio)
	live, err := heteropart.NewPlan(heteropart.SCB, m, 24)
	if err != nil {
		t.Fatal(err)
	}
	var liveJSON, servedJSON bytes.Buffer
	if err := live.WriteJSON(&liveJSON); err != nil {
		t.Fatal(err)
	}
	if err := pr.Plan.WriteJSON(&servedJSON); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(liveJSON.Bytes(), servedJSON.Bytes()) {
		t.Fatalf("atlas plan differs from live plan:\n%s\nvs\n%s", servedJSON.Bytes(), liveJSON.Bytes())
	}

	st := s.Stats()
	if st.AtlasHits != 1 {
		t.Fatalf("atlasHits = %d, want 1", st.AtlasHits)
	}
	if st.Searched != 0 || st.CacheHits != 0 || st.CacheMisses != 0 {
		t.Fatalf("atlas hit leaked into the search path: %+v", st)
	}
	if got := s.gate.InUse(); got != 0 {
		t.Fatalf("gate in use after atlas hit: %d", got)
	}
}

// TestAtlasMissFallsThrough: off-atlas scenarios (off-lattice ratio, or
// a different n/algorithm/topology than the atlas was baked for) take
// the normal search path.
func TestAtlasMissFallsThrough(t *testing.T) {
	s, ts := newTestServer(t, Config{Atlas: buildTestAtlas(t)})
	cases := []wire.PlanRequest{
		{N: 24, Ratio: "2.51:1.5:1", Algorithm: "SCB"},      // off-lattice
		{N: 24, Ratio: "9:1:1", Algorithm: "SCB"},           // beyond grid
		{N: 32, Ratio: "2.5:1.5:1", Algorithm: "SCB"},       // different n
		{N: 24, Ratio: "2.5:1.5:1", Algorithm: "PCB"},       // different algorithm
		{N: 24, Ratio: "2.5:1.5:1", Algorithm: "SCB", Topology: "star"}, // different topology
	}
	for _, c := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/plan", "10s", c)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%+v: status %d: %s", c, resp.StatusCode, body)
		}
		if pr := decodePlan(t, body); pr.Source == wire.SourceAtlas {
			t.Fatalf("%+v served from atlas, want fall-through", c)
		}
	}
	if st := s.Stats(); st.AtlasHits != 0 {
		t.Fatalf("atlasHits = %d, want 0", st.AtlasHits)
	}
}

// TestAtlasRepeatHitsShareEncoding: the second hit on a cell serves the
// cached bytes (still a correct, validating plan).
func TestAtlasRepeatHitsShareEncoding(t *testing.T) {
	s, ts := newTestServer(t, Config{Atlas: buildTestAtlas(t)})
	var first, second []byte
	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/plan", "10s",
			wire.PlanRequest{N: 24, Ratio: "3:2:1", Algorithm: "SCB"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		if i == 0 {
			first = body
		} else {
			second = body
		}
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("atlas responses differ across hits:\n%s\nvs\n%s", first, second)
	}
	if st := s.Stats(); st.AtlasHits != 2 {
		t.Fatalf("atlasHits = %d, want 2", st.AtlasHits)
	}
}

func TestWarmAtlas(t *testing.T) {
	a := buildTestAtlas(t)
	s, err := New(Config{Atlas: a})
	if err != nil {
		t.Fatal(err)
	}
	encoded, rejected := s.WarmAtlas()
	if rejected != 0 {
		t.Fatalf("warm rejected %d cells", rejected)
	}
	if encoded != a.ValidCells() {
		t.Fatalf("warm encoded %d cells, want %d", encoded, a.ValidCells())
	}
	// Every warmed cell is servable without further encoding.
	in, err := s.parsePlanRequest(wire.PlanRequest{N: 24, Ratio: "4:3:1", Algorithm: "SCB"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.atlasAnswer(in); !ok {
		t.Fatal("warmed cell missed")
	}
}

// TestAtlasRejectsCustomMachine: serving a default-machine atlas under a
// custom cost model would answer with another machine's winners.
func TestAtlasRejectsCustomMachine(t *testing.T) {
	_, err := New(Config{
		Atlas:   buildTestAtlas(t),
		Machine: heteropart.DefaultMachine,
	})
	if err == nil {
		t.Fatal("New accepted an atlas with a custom machine model")
	}
}

func TestAtlasRejectsOversizedN(t *testing.T) {
	if _, err := New(Config{Atlas: buildTestAtlas(t), MaxN: 10}); err == nil {
		t.Fatal("New accepted an atlas whose n exceeds MaxN")
	}
}

// TestAnswerTierMetrics: the tier counters in /v1/stats and /metrics
// agree with the traffic actually served — one atlas answer, one
// searched answer, then a cache hit for repeating the searched one.
func TestAnswerTierMetrics(t *testing.T) {
	s, ts := newTestServer(t, Config{Atlas: buildTestAtlas(t)})

	reqs := []wire.PlanRequest{
		{N: 24, Ratio: "2.5:1.5:1", Algorithm: "SCB"}, // atlas
		{N: 24, Ratio: "5:2:1", Algorithm: "SCB"},     // searched (off-grid)
		{N: 24, Ratio: "5:2:1", Algorithm: "SCB"},     // cache
	}
	for _, c := range reqs {
		resp, body := postJSON(t, ts.URL+"/v1/plan", "10s", c)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%+v: status %d: %s", c, resp.StatusCode, body)
		}
	}

	st := s.Stats()
	tiers := st.AnswerTiers()
	want := map[string]int64{"atlas": 1, "cache": 1, "searched": 1, "degraded": 0}
	for tier, n := range want {
		if tiers[tier] != n {
			t.Fatalf("stats tier %q = %d, want %d (%+v)", tier, tiers[tier], n, tiers)
		}
	}

	// The same mix must appear in the Prometheus scrape.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	samples, err := metrics.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("parse /metrics: %v", err)
	}
	for tier, n := range want {
		series := `pland_answers_total{tier="` + tier + `"}`
		if got := samples[series]; got != float64(n) {
			t.Fatalf("%s = %v, want %d", series, got, n)
		}
	}
	if got := samples["pland_atlas_hits_total"]; got != 1 {
		t.Fatalf("pland_atlas_hits_total = %v, want 1", got)
	}
	if got := samples["pland_atlas_cells"]; got <= 0 {
		t.Fatalf("pland_atlas_cells = %v, want > 0", got)
	}
}

// TestDegradedPrefersAtlasShape: a flight waiter that degrades on
// deadline uses the atlas's baked winner at the request's (off-atlas)
// dimension — Source "atlas-shape" — instead of the canonical fallback.
func TestDegradedPrefersAtlasShape(t *testing.T) {
	a := buildTestAtlas(t)
	s, err := New(Config{Atlas: a})
	if err != nil {
		t.Fatal(err)
	}
	// Ratio on the lattice, n far from the atlas's 24: the atlas tier
	// misses, but the degraded path can still use the baked winner.
	in, err := s.parsePlanRequest(wire.PlanRequest{N: 48, Ratio: "2.5:1.5:1", Algorithm: "SCB"})
	if err != nil {
		t.Fatal(err)
	}
	resp, derr := s.degradedPlan(in, wire.DegradedDeadline, time.Now())
	if derr != nil {
		t.Fatal(derr)
	}
	if resp.Source != wire.SourceAtlasShape {
		t.Fatalf("degraded source = %q, want %q", resp.Source, wire.SourceAtlasShape)
	}
	if !resp.Degraded || resp.DegradedReason != wire.DegradedDeadline {
		t.Fatalf("degraded flags wrong: %+v", resp)
	}
	if resp.Plan.N != 48 {
		t.Fatalf("plan built for n=%d, want 48", resp.Plan.N)
	}
	if err := resp.Plan.Validate(); err != nil {
		t.Fatalf("atlas-shape plan does not validate: %v", err)
	}
	// Off-lattice ratio: no atlas shape available, canonical fallback.
	in2, err := s.parsePlanRequest(wire.PlanRequest{N: 48, Ratio: "5:2:1", Algorithm: "SCB"})
	if err != nil {
		t.Fatal(err)
	}
	resp2, derr := s.degradedPlan(in2, wire.DegradedDeadline, time.Now())
	if derr != nil {
		t.Fatal(derr)
	}
	if resp2.Source != wire.SourceCanonical {
		t.Fatalf("off-lattice degraded source = %q, want %q", resp2.Source, wire.SourceCanonical)
	}
}

// BenchmarkPlanAtlasHit measures the full handler path for an on-atlas
// request (parse, lookup, pre-encoded write) — the number BENCH_serve's
// loadgen reproduces over HTTP.
func BenchmarkPlanAtlasHit(b *testing.B) {
	s, err := New(Config{Atlas: buildTestAtlas(b)})
	if err != nil {
		b.Fatal(err)
	}
	s.WarmAtlas()
	h := s.Handler()
	body := []byte(`{"n":24,"ratio":"2.5:1.5:1","algorithm":"SCB"}`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := newBenchRequest(body)
		w := &nullResponseWriter{}
		h.ServeHTTP(w, req)
		if w.status != http.StatusOK {
			b.Fatalf("status %d", w.status)
		}
	}
}

func newBenchRequest(body []byte) *http.Request {
	req, _ := http.NewRequest(http.MethodPost, "/v1/plan", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	return req
}

// nullResponseWriter discards the response body without the recorder
// bookkeeping, so the benchmark measures the serving path, not the
// harness.
type nullResponseWriter struct {
	h      http.Header
	status int
}

func (w *nullResponseWriter) Header() http.Header {
	if w.h == nil {
		w.h = make(http.Header)
	}
	return w.h
}

func (w *nullResponseWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
}

func (w *nullResponseWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return len(b), nil
}
