package serve

import (
	"context"
	"sync"

	wire "repro/serve"
)

// flightGroup coalesces concurrent identical plan requests: the first
// caller (the leader) computes, every other caller with the same key
// waits for the leader's result instead of duplicating the search. A
// waiter whose own deadline expires first abandons the flight and lets
// the handler serve its degraded fallback.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

type flight struct {
	done chan struct{}
	resp *wire.PlanResponse
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flight)}
}

// errWaiterTimeout reports a waiter whose context expired while the
// flight leader was still computing.
type waiterTimeoutError struct{ cause error }

func (e *waiterTimeoutError) Error() string {
	return "serve: abandoned coalesced flight: " + e.cause.Error()
}
func (e *waiterTimeoutError) Unwrap() error { return e.cause }

// do runs fn once per concurrently-requested key. The bool reports
// whether the result was shared from another caller's flight.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (*wire.PlanResponse, error)) (*wire.PlanResponse, bool, error) {
	g.mu.Lock()
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-f.done:
			return f.resp, true, f.err
		case <-ctx.Done():
			return nil, true, &waiterTimeoutError{cause: ctx.Err()}
		}
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	g.mu.Unlock()

	f.resp, f.err = fn()
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(f.done)
	return f.resp, false, f.err
}
