package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/partition"
	"repro/internal/sim"
)

// fakeClock lets breaker tests step through the cooldown deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTrippedBreaker(clk *fakeClock) *breaker {
	b := newBreaker(1, time.Second)
	b.now = clk.now
	b.failure() // threshold 1: opens immediately
	return b
}

// TestBreakerHalfOpenReleaseWithoutVerdict: an admitted half-open trial
// that ends without a success/failure verdict (client abort, panic) must
// return its slot via release, or every future allow would report false
// until restart.
func TestBreakerHalfOpenReleaseWithoutVerdict(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newTrippedBreaker(clk)
	if b.allow() {
		t.Fatal("breaker must be open right after tripping")
	}
	clk.advance(2 * time.Second)
	if !b.allow() {
		t.Fatal("cooldown elapsed: half-open trial must be admitted")
	}
	if b.allow() {
		t.Fatal("only one half-open trial may be in flight")
	}
	b.release() // trial abandoned with no verdict
	if !b.allow() {
		t.Fatal("released trial slot must be claimable again")
	}
	b.success()
	if !b.allow() {
		t.Fatal("breaker must be closed after a successful trial")
	}
}

func planInputsForTest(t *testing.T, s *Server) planInputs {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/v1/plan?n=24&ratio=5:2:1&algorithm=SCB", nil)
	in, err := s.parsePlan(req)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestDeadlineDegradeDoesNotClaimTrial: a request that degrades because
// its remaining budget is below MinSearchBudget must not consume the
// breaker's half-open trial slot — it has no search outcome to report.
func TestDeadlineDegradeDoesNotClaimTrial(t *testing.T) {
	s, err := New(Config{BreakerThreshold: 1, BreakerCooldown: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	clk := &fakeClock{t: time.Unix(0, 0)}
	s.brk.now = clk.now
	s.brk.failure()
	clk.advance(2 * time.Second) // half-open window

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	resp, err := s.computePlan(ctx, planInputsForTest(t, s), false)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded || resp.DegradedReason != "deadline" {
		t.Fatalf("want deadline degrade, got %+v", resp)
	}
	if !s.brk.allow() {
		t.Fatal("deadline degrade consumed the half-open trial slot")
	}
}

// TestClientCancelDoesNotCountBreakerFailure: a flight leader whose
// client disconnects mid-search surfaces context.Canceled; that says
// nothing about backend health and must neither count toward the
// breaker's failure threshold nor leak a half-open trial slot.
func TestClientCancelDoesNotCountBreakerFailure(t *testing.T) {
	fp := sim.NewFaultPlan()
	if err := fp.AddStraggler(partition.P, 1000, 0, 1e9); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Fault:            fp,
		FaultStepCost:    2 * time.Millisecond,
		BreakerThreshold: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client is already gone
	resp, err := s.computePlan(ctx, planInputsForTest(t, s), false)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded || resp.DegradedReason != "cancelled" {
		t.Fatalf("want cancelled degrade, got %+v", resp)
	}
	s.brk.mu.Lock()
	failures, open := s.brk.failures, !s.brk.openUntil.IsZero()
	s.brk.mu.Unlock()
	if failures != 0 || open {
		t.Fatalf("client abort counted against the breaker: failures=%d open=%v", failures, open)
	}
	if !s.brk.allow() {
		t.Fatal("breaker must still admit searches after a client abort")
	}
}
