package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"testing"
	"time"

	wire "repro/serve"
)

func getReady(t *testing.T, url string) (int, wire.ReadyResponse) {
	t.Helper()
	resp, err := http.Get(url + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rr wire.ReadyResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, rr
}

// TestReadyHealthyServer: a fresh server is ready, with a closed breaker,
// an empty gate, and a healthy journal.
func TestReadyHealthyServer(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 2, MaxQueue: 4})
	code, rr := getReady(t, ts.URL)
	if code != http.StatusOK || !rr.Ready {
		t.Fatalf("readyz = %d %+v, want 200 ready", code, rr)
	}
	if rr.Breaker != "closed" || rr.MaxConcurrent != 2 || rr.MaxQueue != 4 || rr.InFlight != 0 {
		t.Fatalf("readyz body = %+v", rr)
	}
	if !rr.JournalHealthy {
		t.Fatalf("fresh server reports unhealthy journal: %+v", rr)
	}
}

// TestReadyDraining: a draining server is alive but not ready.
func TestReadyDraining(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.BeginDrain()
	code, rr := getReady(t, ts.URL)
	if code != http.StatusServiceUnavailable || rr.Ready {
		t.Fatalf("draining readyz = %d %+v, want 503 not-ready", code, rr)
	}
	if len(rr.Reasons) == 0 || rr.Reasons[0] != "draining" {
		t.Fatalf("reasons = %v", rr.Reasons)
	}
}

// TestReadyBreakerOpen: an open search breaker flips readiness — the
// replica still answers (degraded), but a pool should prefer replicas
// that can search.
func TestReadyBreakerOpen(t *testing.T) {
	s, ts := newTestServer(t, Config{BreakerThreshold: 2, BreakerCooldown: time.Hour})
	s.brk.failure()
	s.brk.failure()
	code, rr := getReady(t, ts.URL)
	if code != http.StatusServiceUnavailable || rr.Ready {
		t.Fatalf("breaker-open readyz = %d %+v, want 503 not-ready", code, rr)
	}
	if rr.Breaker != "open" {
		t.Fatalf("breaker state = %q, want open", rr.Breaker)
	}
	// Liveness must be unaffected: the process is fine.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d while breaker open, want 200", hr.StatusCode)
	}
}

// TestReadyBreakerHalfOpen: past the cooldown the breaker reports
// half-open and the server is ready again (a trial will be admitted).
func TestReadyBreakerHalfOpen(t *testing.T) {
	s, ts := newTestServer(t, Config{BreakerThreshold: 1, BreakerCooldown: 10 * time.Millisecond})
	s.brk.failure()
	time.Sleep(20 * time.Millisecond)
	code, rr := getReady(t, ts.URL)
	if code != http.StatusOK || !rr.Ready {
		t.Fatalf("half-open readyz = %d %+v, want 200 ready", code, rr)
	}
	if rr.Breaker != "half-open" {
		t.Fatalf("breaker state = %q, want half-open", rr.Breaker)
	}
}

// TestReadyGateSaturated: a full admission gate (slots and queue) means
// new work would be shed — not ready.
func TestReadyGateSaturated(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1, MaxQueue: 1})
	if err := s.gate.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer s.gate.Release()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	queued := make(chan error, 1)
	go func() { queued <- s.gate.Acquire(ctx) }()
	deadline := time.Now().Add(2 * time.Second)
	for s.gate.Waiting() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	code, rr := getReady(t, ts.URL)
	if code != http.StatusServiceUnavailable || rr.Ready {
		t.Fatalf("saturated readyz = %d %+v, want 503 not-ready", code, rr)
	}
	if rr.InFlight != 1 || rr.Queued != 1 {
		t.Fatalf("occupancy = %d/%d inflight, %d/%d queued", rr.InFlight, rr.MaxConcurrent, rr.Queued, rr.MaxQueue)
	}
	cancel()
	if err := <-queued; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued waiter returned %v", err)
	}

	// Gate drained → ready again.
	s.gate.Release()
	code, rr = getReady(t, ts.URL)
	if code != http.StatusOK || !rr.Ready {
		t.Fatalf("drained-gate readyz = %d %+v, want 200 ready", code, rr)
	}
	if err := s.gate.Acquire(context.Background()); err != nil { // rebalance the deferred Release
		t.Fatal(err)
	}
}

// TestReadyJournalUnhealthy: a quarantined cache journal is surfaced in
// the body but does not flip readiness — a cold replica is still a
// full-quality replica.
func TestReadyJournalUnhealthy(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.SetJournalHealth(errors.New("quarantined: mid-file corruption at line 3"))
	code, rr := getReady(t, ts.URL)
	if code != http.StatusOK || !rr.Ready {
		t.Fatalf("cold-journal readyz = %d %+v, want 200 ready", code, rr)
	}
	if rr.JournalHealthy || rr.JournalError == "" {
		t.Fatalf("journal health not surfaced: %+v", rr)
	}
	s.SetJournalHealth(nil)
	_, rr = getReady(t, ts.URL)
	if !rr.JournalHealthy || rr.JournalError != "" {
		t.Fatalf("journal health not cleared: %+v", rr)
	}
}
