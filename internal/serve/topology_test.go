package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	heteropart "repro"
	wire "repro/serve"
)

// planJSON marshals a served plan for byte comparison (PlanResponse
// carries per-request noise like ElapsedMS; the Plan itself must not).
func planJSON(t *testing.T, p *heteropart.Plan) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestPlanTopologySpecServed: a link-class topology spec is accepted on
// /v1/plan, echoed back canonically in the plan's topology field, and
// prices communication differently from the uniform machine.
func TestPlanTopologySpecServed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/plan", "10s",
		wire.PlanRequest{N: 24, Ratio: "5:2:1", Algorithm: "SCB", Topology: "3-island:10"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	pr := decodePlan(t, body)
	if pr.Plan.Topology != "3-island:10" {
		t.Fatalf("plan topology %q, want canonical spec", pr.Plan.Topology)
	}
	if err := pr.Plan.Validate(); err != nil {
		t.Fatalf("spec-topology plan fails validation: %v", err)
	}
	respU, bodyU := postJSON(t, ts.URL+"/v1/plan", "10s",
		wire.PlanRequest{N: 24, Ratio: "5:2:1", Algorithm: "SCB"})
	if respU.StatusCode != http.StatusOK {
		t.Fatalf("uniform status %d: %s", respU.StatusCode, bodyU)
	}
	uniform := decodePlan(t, bodyU)
	if pr.Plan.Expected.Comm <= uniform.Plan.Expected.Comm {
		t.Fatalf("3-island:10 comm %v not above uniform %v",
			pr.Plan.Expected.Comm, uniform.Plan.Expected.Comm)
	}
}

// TestPlanTopologySpecRejected: malformed specs answer 400 with the
// typed ConfigError's message, which names the offending entry.
func TestPlanTopologySpecRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, bad := range []string{"links:PR=1", "links:PR=1,PS=-2,RS=3", "2+1:", "ring"} {
		resp, body := postJSON(t, ts.URL+"/v1/plan", "2s",
			wire.PlanRequest{N: 24, Ratio: "5:2:1", Algorithm: "SCB", Topology: bad})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("spec %q: status %d, want 400: %s", bad, resp.StatusCode, body)
		}
		if !strings.Contains(string(body), "topology") {
			t.Fatalf("spec %q: error body does not name the field: %s", bad, body)
		}
	}
	// /v1/evaluate shares the grammar and the rejection.
	resp, body := postJSON(t, ts.URL+"/v1/evaluate", "2s",
		wire.EvaluateRequest{N: 24, Ratio: "5:2:1", Algorithm: "SCB", Shape: "Square-Corner", Topology: "links:PR=1"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("evaluate: status %d, want 400: %s", resp.StatusCode, body)
	}
}

// TestEvaluateTopologySpec: /v1/evaluate prices a shape under a link
// spec; a 10× three-island matrix must raise the modelled comm time.
func TestEvaluateTopologySpec(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	eval := func(topo string) wire.EvaluateResponse {
		resp, body := postJSON(t, ts.URL+"/v1/evaluate", "5s",
			wire.EvaluateRequest{N: 24, Ratio: "5:2:1", Algorithm: "SCB", Shape: "Square-Corner", Topology: topo})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("topology %q: status %d: %s", topo, resp.StatusCode, body)
		}
		var er wire.EvaluateResponse
		if err := json.Unmarshal(body, &er); err != nil {
			t.Fatalf("decode evaluate response: %v\n%s", err, body)
		}
		return er
	}
	uniform := eval("")
	island := eval("3-island:10")
	if !uniform.Feasible || !island.Feasible {
		t.Fatal("Square-Corner infeasible for 5:2:1")
	}
	if island.Breakdown.Comm <= uniform.Breakdown.Comm {
		t.Fatalf("3-island comm %v not above uniform %v", island.Breakdown.Comm, uniform.Breakdown.Comm)
	}
}

// TestPlanUniformCostMachineByteIdentical is the serve-level half of the
// differential equivalence suite: a Machine hook that installs an
// explicit UniformHockney must serve /v1/plan bytes identical to the
// default (nil cost model) server.
func TestPlanUniformCostMachineByteIdentical(t *testing.T) {
	_, tsDefault := newTestServer(t, Config{})
	_, tsUniform := newTestServer(t, Config{
		Machine: func(ratio heteropart.Ratio) heteropart.Machine {
			m := heteropart.DefaultMachine(ratio)
			m.Cost = heteropart.NewUniformCost(m)
			return m
		},
	})
	req := wire.PlanRequest{N: 24, Ratio: "5:2:1", Algorithm: "PIO", Topology: "star"}
	respD, bodyD := postJSON(t, tsDefault.URL+"/v1/plan", "10s", req)
	respU, bodyU := postJSON(t, tsUniform.URL+"/v1/plan", "10s", req)
	if respD.StatusCode != http.StatusOK || respU.StatusCode != http.StatusOK {
		t.Fatalf("status %d / %d", respD.StatusCode, respU.StatusCode)
	}
	prD, prU := decodePlan(t, bodyD), decodePlan(t, bodyU)
	if got, want := planJSON(t, prU.Plan), planJSON(t, prD.Plan); !bytes.Equal(got, want) {
		t.Fatalf("UniformHockney machine served different plan bytes:\n%s\nvs\n%s", got, want)
	}
}

// TestAtlasSkipsLinkTopology: a scenario that sits exactly on the atlas
// grid but carries a per-link topology spec must bypass the atlas tier —
// the baked winners were priced under the uniform model.
func TestAtlasSkipsLinkTopology(t *testing.T) {
	s, ts := newTestServer(t, Config{Atlas: buildTestAtlas(t)})
	resp, body := postJSON(t, ts.URL+"/v1/plan", "10s",
		wire.PlanRequest{N: 24, Ratio: "2.5:1.5:1", Algorithm: "SCB", Topology: "3-island:10"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	pr := decodePlan(t, body)
	if pr.Source == wire.SourceAtlas {
		t.Fatal("link-topology scenario served from the atlas tier")
	}
	if pr.Plan.Topology != "3-island:10" {
		t.Fatalf("plan topology %q, want the spec", pr.Plan.Topology)
	}
	if st := s.Stats(); st.AtlasHits != 0 {
		t.Fatalf("atlasHits = %d, want 0", st.AtlasHits)
	}
}
