package serve

import (
	"runtime"

	"repro/internal/metrics"
	"repro/internal/push"
)

// serverMetrics is the server's instrumentation surface, exported at
// /metrics in Prometheus text format. Two kinds of series live here:
// vectors the request path writes directly (per-endpoint traffic and
// latency), and func-backed series that read state the server already
// tracks — the admission gate, breaker, cache, and traffic atomics —
// so the serving path pays nothing extra for them.
//
// Families (all pland_-prefixed unless noted):
//
//	pland_requests_total{endpoint}            admitted requests
//	pland_responses_total{endpoint,code}      responses by HTTP status
//	pland_request_duration_seconds{endpoint}  latency histogram
//	pland_shed_total                          429s from the admission gate
//	pland_searched_total                      full-quality search answers
//	pland_degraded_total{reason}              degraded answers by reason
//	pland_coalesced_total                     requests served by another flight
//	pland_panics_total                        quarantined handler panics
//	pland_gate_in_flight / _queued / _slots / _queue_capacity
//	pland_cache_hits_total / _misses_total / _stale_served_total / _entries
//	pland_atlas_hits_total / _rejects_total   atlas-tier answers and cross-check falls
//	pland_atlas_cells                         valid cells in the loaded atlas
//	pland_answers_total{tier}                 served answers by tier (atlas/cache/searched/degraded)
//	pland_batch_requests_total / _items_total batch traffic
//	pland_breaker_state                       0 closed, 1 half-open, 2 open
//	pland_breaker_transitions_total{to}       state changes by destination
//	pland_draining                            1 once BeginDrain has run
//	go_goroutines                             scheduler pressure
//
// plus the push_* families (see push.RegisterMetrics), since pland's
// search traffic drives the push engine in-process.
type serverMetrics struct {
	reg       *metrics.Registry
	requests  *metrics.CounterVec   // by endpoint
	responses *metrics.CounterVec   // by endpoint, status code
	latency   *metrics.HistogramVec // by endpoint, seconds
	degraded  *metrics.CounterVec   // by reason
	tierTrans *metrics.CounterVec   // shed ladder transitions, by from/to
}

func newServerMetrics(s *Server) *serverMetrics {
	reg := metrics.NewRegistry()
	m := &serverMetrics{
		reg: reg,
		requests: reg.NewCounterVec("pland_requests_total",
			"Requests accepted per endpoint (drained refusals excluded).", "endpoint"),
		responses: reg.NewCounterVec("pland_responses_total",
			"Responses per endpoint and HTTP status code.", "endpoint", "code"),
		latency: reg.NewHistogramVec("pland_request_duration_seconds",
			"Request latency per endpoint, admission to response, in seconds.",
			nil, "endpoint"),
		degraded: reg.NewCounterVec("pland_degraded_total",
			"Degraded answers by reason.", "reason"),
		tierTrans: reg.NewCounterVec("pland_tier_transitions_total",
			"Shed ladder transitions by from/to rung. Adjacent rungs only, by construction.",
			"from", "to"),
	}
	// The ladder reports its transitions into the vec; pre-touch every
	// adjacent pair so a scrape can assert "no rung skipped" against a
	// complete matrix instead of absent series.
	for t := tierSearch; t < numTiers-1; t++ {
		m.tierTrans.With(t.String(), (t + 1).String())
		m.tierTrans.With((t + 1).String(), t.String())
	}

	counterFuncs := []struct {
		name, help string
		fn         func() float64
	}{
		{"pland_shed_total", "Requests answered 429 at the ladder's reject rung (or a saturated ancillary endpoint).",
			func() float64 { return float64(s.shed.Load()) }},
		{"pland_gate_saturation_fallbacks_total", "Search-path requests that found the gate saturated and were served the degraded fallback instead of a 429.",
			func() float64 { return float64(s.gateFallbacks.Load()) }},
		{"pland_searched_total", "Full-quality answers produced by a completed search.",
			func() float64 { return float64(s.searched.Load()) }},
		{"pland_coalesced_total", "Requests that shared another request's in-flight computation.",
			func() float64 { return float64(s.coalesced.Load()) }},
		{"pland_panics_total", "Handler panics caught and quarantined.",
			func() float64 { return float64(s.panics.Load()) }},
		{"pland_cache_hits_total", "Plan requests answered from a fresh cache entry.",
			func() float64 { return float64(s.cacheHits.Load()) }},
		{"pland_cache_misses_total", "Plan computations that found no fresh cache entry.",
			func() float64 { return float64(s.cacheMisses.Load()) }},
		{"pland_cache_stale_served_total", "Degraded answers served from a stale cache entry.",
			func() float64 { return float64(s.staleServed.Load()) }},
		{"pland_atlas_hits_total", "Plan answers (single and batch items) served from the shape atlas.",
			func() float64 { return float64(s.atlasHits.Load()) }},
		{"pland_atlas_rejects_total", "Atlas records that failed the live cross-check and fell through to search.",
			func() float64 { return float64(s.atlasRejects.Load()) }},
		{"pland_batch_requests_total", "Accepted /v1/plan:batch requests.",
			func() float64 { return float64(s.batchRequests.Load()) }},
		{"pland_batch_items_total", "Plan items carried inside accepted batch requests.",
			func() float64 { return float64(s.batchItems.Load()) }},
		{"pland_replans_total", "Background re-plans triggered by calibration drift publishes.",
			func() float64 { return float64(s.replans.Load()) }},
		{"pland_calibration_rounds_total", "Calibration rounds run by the attached calibrator.",
			func() float64 {
				if c := s.cal.Load(); c != nil {
					return float64(c.Rounds())
				}
				return 0
			}},
		{"pland_calibration_drift_events_total", "Drift-triggered estimate publishes (the initial publish excluded).",
			func() float64 {
				if c := s.cal.Load(); c != nil {
					return float64(c.DriftEvents())
				}
				return 0
			}},
	}
	for _, c := range counterFuncs {
		reg.CounterFunc(c.name, c.help, c.fn)
	}

	// The answer-tier mix: where served plans actually came from. One
	// family so a single query yields the atlas/cache/search/degraded
	// ratio — the serving tier's quality dashboard.
	for _, t := range []struct {
		tier string
		fn   func() float64
	}{
		{"atlas", func() float64 { return float64(s.atlasHits.Load()) }},
		{"cache", func() float64 { return float64(s.cacheHits.Load()) }},
		{"searched", func() float64 { return float64(s.searched.Load()) }},
		{"degraded", func() float64 { return float64(s.degraded.Load()) }},
	} {
		reg.LabeledCounterFunc("pland_answers_total",
			"Served plan answers by answer tier.", "tier", t.tier, t.fn)
	}

	gaugeFuncs := []struct {
		name, help string
		fn         func() float64
	}{
		{"pland_gate_in_flight", "Planning requests currently holding an admission slot.",
			func() float64 { return float64(s.gate.InUse()) }},
		{"pland_gate_queued", "Requests waiting for an admission slot.",
			func() float64 { return float64(s.gate.Waiting()) }},
		{"pland_gate_slots", "Configured admission slots (MaxConcurrent).",
			func() float64 { return float64(s.gate.Slots()) }},
		{"pland_gate_queue_capacity", "Configured admission queue capacity (MaxQueue).",
			func() float64 { return float64(s.gate.Queue()) }},
		{"pland_cache_entries", "Entries in the plan cache, stale included.",
			func() float64 { return float64(s.cache.len()) }},
		{"pland_atlas_cells", "Valid cells in the loaded shape atlas (0 when none is configured).",
			func() float64 {
				st := s.atlasSt.Load()
				if st == nil {
					return 0
				}
				return float64(st.atlas.ValidCells())
			}},
		{"pland_breaker_state", "Search breaker state: 0 closed, 1 half-open, 2 open.",
			s.brk.stateValue},
		{"pland_draining", "1 once the server has begun draining, else 0.",
			func() float64 {
				if s.draining.Load() {
					return 1
				}
				return 0
			}},
		{"pland_shed_tier", "Current shed ladder rung: 0 search, 1 bounded, 2 atlas, 3 stale, 4 reject.",
			func() float64 { return float64(s.ladder.current()) }},
		{"pland_load_signal", "Composite load signal at the last ladder evaluation (1.0 = at capacity).",
			func() float64 { return s.ladder.lastLoadSignal() }},
		{"pland_calibration_generation", "Generation of the published auto-ratio scenario (0 = none yet).",
			func() float64 {
				if sc := s.scenario.Load(); sc != nil {
					return float64(sc.gen)
				}
				return 0
			}},
		{"go_goroutines", "Goroutines in the process.",
			func() float64 { return float64(runtime.NumGoroutine()) }},
	}
	for _, g := range gaugeFuncs {
		reg.GaugeFunc(g.name, g.help, g.fn)
	}

	// The published scenario ratio, one series per processor — drift
	// made visible on the dashboard that also shows the replan counter.
	for _, pr := range []struct {
		proc string
		fn   func(sc *autoScenario) float64
	}{
		{"P", func(sc *autoScenario) float64 { return sc.ratio.Pr }},
		{"R", func(sc *autoScenario) float64 { return sc.ratio.Rr }},
		{"S", func(sc *autoScenario) float64 { return sc.ratio.Sr }},
	} {
		fn := pr.fn
		reg.LabeledGaugeFunc("pland_calibration_ratio",
			"Published scenario ratio component per processor (0 = no estimate yet).",
			"proc", pr.proc, func() float64 {
				if sc := s.scenario.Load(); sc != nil {
					return fn(sc)
				}
				return 0
			})
	}

	for _, t := range []struct {
		to string
		fn func() float64
	}{
		{"open", func() float64 { o, _, _ := s.brk.transitions(); return float64(o) }},
		{"half-open", func() float64 { _, h, _ := s.brk.transitions(); return float64(h) }},
		{"closed", func() float64 { _, _, c := s.brk.transitions(); return float64(c) }},
	} {
		reg.LabeledCounterFunc("pland_breaker_transitions_total",
			"Breaker state transitions by destination state.", "to", t.to, t.fn)
	}

	// pland's searches run the push engine in-process, so its scrape
	// carries the search-side counters too.
	push.RegisterMetrics(reg)
	return m
}

// MetricsRegistry exposes the server's metrics registry so an
// operator binary can mount the same scrape on a debug listener.
func (s *Server) MetricsRegistry() *metrics.Registry { return s.metrics.reg }
