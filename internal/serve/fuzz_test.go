package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// FuzzHandlerBodies throws arbitrary request bodies, paths, and
// Request-Timeout headers at the full serving handler. The server's
// endpoint wrapper converts handler panics into counted 500s, so the
// acceptance condition is twofold: ServeHTTP itself never panics (the
// fuzz harness catches that), and the panic counter stays at zero —
// a malformed request must be rejected, not recovered from.
func FuzzHandlerBodies(f *testing.F) {
	srv, err := New(Config{
		MaxN:           64, // keep accidental valid requests cheap
		MaxSearchSteps: 200,
		DefaultTimeout: 500 * time.Millisecond,
		CacheTTL:       time.Minute,
	})
	if err != nil {
		f.Fatal(err)
	}
	handler := srv.Handler()

	f.Add("/v1/plan", `{"n":24,"ratio":"5:2:1","algorithm":"SCB"}`, "1s")
	f.Add("/v1/plan", `{"n":24,"ratio":"5:2:1","algorithm":"SCB","voc":12345}`, "")
	f.Add("/v1/evaluate", `{"n":24,"ratio":"2:1:1","algorithm":"SCB","shape":"Square-Corner"}`, "250ms")
	f.Add("/v1/search", `{"n":16,"ratio":"3:1:1","maxSteps":50}`, "100")
	// The chaos proxy's voc-digit rotation pattern, applied to a request.
	f.Add("/v1/plan", `{"n":24,"ratio":"5:2:1","algorithm":"SCB","voc":23456}`, "1s")
	// Torn and hostile bodies.
	f.Add("/v1/plan", `{"n":24,"ratio":"5:2`, "1s")
	f.Add("/v1/plan", `{"n":-9223372036854775808,"ratio":"5:2:1","algorithm":"SCB"}`, "")
	f.Add("/v1/search", `{"n":16,"maxSteps":-1}`, "not-a-duration")
	f.Add("/v1/stats", ``, "")
	f.Add("/readyz", ``, "0")
	f.Add("/metrics", ``, "")

	f.Fuzz(func(t *testing.T, path, body, timeoutHdr string) {
		// Constrain to the served paths: fuzzing the mux's 404 space
		// wastes the budget without touching decode code.
		switch path {
		case "/v1/plan", "/v1/evaluate", "/v1/search", "/v1/stats", "/healthz", "/readyz", "/metrics":
		default:
			path = "/v1/plan"
		}
		req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader([]byte(body)))
		req.Header.Set("Content-Type", "application/json")
		if timeoutHdr != "" {
			req.Header.Set("Request-Timeout", timeoutHdr)
		}
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if rec.Code == 0 {
			t.Fatal("handler wrote no status")
		}
		if n := srv.Stats().Panics; n != 0 {
			t.Fatalf("request panicked the handler (panics=%d): POST %s %q hdr %q → %d",
				n, path, body, timeoutHdr, rec.Code)
		}
	})
}

// FuzzQueryParams drives the GET parameter-decoding path (atoiDefault,
// ratio/shape parsing from the query string) with arbitrary values.
func FuzzQueryParams(f *testing.F) {
	srv, err := New(Config{
		MaxN:           64,
		MaxSearchSteps: 200,
		DefaultTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		f.Fatal(err)
	}
	handler := srv.Handler()

	f.Add("24", "5:2:1", "SCB", "Square-Corner", "7")
	f.Add("-1", ":::", "XXX", "", "999999999999999999999")
	f.Add("", "", "", "Shape(99)", "")
	f.Fuzz(func(t *testing.T, n, ratio, alg, shape, seed string) {
		for _, path := range []string{"/v1/plan", "/v1/evaluate", "/v1/search"} {
			req := httptest.NewRequest(http.MethodGet, path, nil)
			q := req.URL.Query()
			q.Set("n", n)
			q.Set("ratio", ratio)
			q.Set("algorithm", alg)
			q.Set("shape", shape)
			q.Set("seed", seed)
			req.URL.RawQuery = q.Encode()
			rec := httptest.NewRecorder()
			handler.ServeHTTP(rec, req)
			if n := srv.Stats().Panics; n != 0 {
				t.Fatalf("query panicked the handler: GET %s?%s → %d", path, req.URL.RawQuery, rec.Code)
			}
		}
	})
}
