package serve

import (
	"sync"
	"time"
)

// breaker is a consecutive-failure circuit breaker over the search path.
// Closed: searches run normally. After threshold consecutive failures it
// opens for cooldown, during which allow reports false and the server
// answers from the canonical/stale-cache fallback without burning a
// goroutine on a search that will miss its deadline anyway. After the
// cooldown one trial search is admitted (half-open); its outcome closes
// or re-opens the breaker.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	failures  int
	openUntil time.Time
	halfOpen  bool // a trial is in flight
	trips     int64

	// State-transition tallies for the metrics exporter. toOpen counts
	// trips (closed/half-open → open), toHalfOpen counts admitted
	// trials, toClosed counts recoveries (a success while open or
	// half-open).
	toHalfOpen int64
	toClosed   int64
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// allow reports whether a search may run now. In the half-open window it
// admits exactly one trial at a time.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.threshold <= 0 {
		return true // breaker disabled
	}
	if b.now().Before(b.openUntil) {
		return false
	}
	if !b.openUntil.IsZero() {
		// Cooldown elapsed: half-open. Admit one trial; others keep
		// falling back until it reports.
		if b.halfOpen {
			return false
		}
		b.halfOpen = true
		b.toHalfOpen++
	}
	return true
}

// success records a completed search and closes the breaker.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.halfOpen || !b.openUntil.IsZero() {
		b.toClosed++
	}
	b.failures = 0
	b.openUntil = time.Time{}
	b.halfOpen = false
}

// release returns an admitted trial slot without recording a verdict —
// used when an admitted search never completes normally (client abort,
// panic in the search path). Without it a claimed half-open slot would
// leak and allow would refuse every future trial until restart.
func (b *breaker) release() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.halfOpen = false
}

// failure records a search that missed its deadline or errored; at
// threshold consecutive failures the breaker opens.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.threshold <= 0 {
		return
	}
	if b.halfOpen {
		// The half-open trial failed: re-open immediately.
		b.halfOpen = false
		b.openUntil = b.now().Add(b.cooldown)
		b.trips++
		return
	}
	b.failures++
	if b.failures >= b.threshold {
		b.failures = 0
		b.openUntil = b.now().Add(b.cooldown)
		b.trips++
	}
}

// state reports the breaker's position for readiness probes: "closed"
// (searches run), "open" (cooling down, every search falls back), or
// "half-open" (cooldown elapsed, a trial is or may be admitted).
func (b *breaker) state() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case b.threshold <= 0:
		return "closed" // disabled breakers never block
	case b.now().Before(b.openUntil):
		return "open"
	case !b.openUntil.IsZero():
		return "half-open"
	default:
		return "closed"
	}
}

// tripCount returns how many times the breaker has opened.
func (b *breaker) tripCount() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// transitions returns the cumulative state-transition counts
// (→open, →half-open, →closed) for the metrics exporter.
func (b *breaker) transitions() (open, halfOpen, closed int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips, b.toHalfOpen, b.toClosed
}

// stateValue encodes state() as a gauge: 0 closed, 1 half-open, 2 open.
func (b *breaker) stateValue() float64 {
	switch b.state() {
	case "open":
		return 2
	case "half-open":
		return 1
	default:
		return 0
	}
}
