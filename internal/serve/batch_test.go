package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	wire "repro/serve"
)

func postBatch(t *testing.T, url string, timeout string, req wire.BatchPlanRequest) (*http.Response, []byte) {
	t.Helper()
	return postJSON(t, url+"/v1/plan:batch", timeout, req)
}

func decodeBatch(t *testing.T, body []byte) wire.BatchPlanResponse {
	t.Helper()
	var br wire.BatchPlanResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatalf("decode batch response: %v\n%s", err, body)
	}
	return br
}

// TestBatchMixedTiers: one batch mixing atlas hits, a searched item, and
// a repeat of the searched scenario (cache) — each item reports its own
// source and the counters see every item.
func TestBatchMixedTiers(t *testing.T) {
	s, ts := newTestServer(t, Config{Atlas: buildTestAtlas(t)})
	resp, body := postBatch(t, ts.URL, "10s", wire.BatchPlanRequest{Items: []wire.PlanRequest{
		{N: 24, Ratio: "2.5:1.5:1", Algorithm: "SCB"}, // atlas
		{N: 24, Ratio: "5:2:1", Algorithm: "SCB"},     // searched
		{N: 24, Ratio: "3:2:1", Algorithm: "SCB"},     // atlas
		{N: 24, Ratio: "5:2:1", Algorithm: "SCB"},     // cache (same key as item 1)
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	br := decodeBatch(t, body)
	if br.Succeeded != 4 || br.Failed != 0 {
		t.Fatalf("succeeded=%d failed=%d, want 4/0", br.Succeeded, br.Failed)
	}
	wantSources := []string{wire.SourceAtlas, wire.SourceSearch, wire.SourceAtlas, wire.SourceCache}
	for i, it := range br.Items {
		if it.Index != i {
			t.Fatalf("item %d carries index %d", i, it.Index)
		}
		pr, err := it.Plan()
		if err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
		if pr.Source != wantSources[i] {
			t.Fatalf("item %d source = %q, want %q", i, pr.Source, wantSources[i])
		}
		if err := pr.Plan.Validate(); err != nil {
			t.Fatalf("item %d plan invalid: %v", i, err)
		}
	}
	st := s.Stats()
	if st.BatchRequests != 1 || st.BatchItems != 4 {
		t.Fatalf("batch counters %d/%d, want 1/4", st.BatchRequests, st.BatchItems)
	}
	if st.AtlasHits != 2 {
		t.Fatalf("atlasHits = %d, want 2", st.AtlasHits)
	}
}

// TestBatchPerItemErrors: invalid items fail alone; the batch and its
// valid items still succeed.
func TestBatchPerItemErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Atlas: buildTestAtlas(t)})
	resp, body := postBatch(t, ts.URL, "10s", wire.BatchPlanRequest{Items: []wire.PlanRequest{
		{N: 24, Ratio: "2.5:1.5:1", Algorithm: "SCB"}, // good (atlas)
		{N: 0, Ratio: "5:2:1", Algorithm: "SCB"},      // bad n
		{N: 24, Ratio: "bogus", Algorithm: "SCB"},     // bad ratio
		{N: 24, Ratio: "5:2:1", Algorithm: "nope"},    // bad algorithm
		{N: 24, Ratio: "3:2:1", Algorithm: "SCB"},     // good (atlas)
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	br := decodeBatch(t, body)
	if br.Succeeded != 2 || br.Failed != 3 {
		t.Fatalf("succeeded=%d failed=%d, want 2/3", br.Succeeded, br.Failed)
	}
	for _, i := range []int{1, 2, 3} {
		it := br.Items[i]
		if it.Status != http.StatusBadRequest {
			t.Fatalf("item %d status = %d, want 400", i, it.Status)
		}
		if it.Error == "" || it.Response != nil {
			t.Fatalf("item %d: error=%q response=%s", i, it.Error, it.Response)
		}
	}
	for _, i := range []int{0, 4} {
		if _, err := br.Items[i].Plan(); err != nil {
			t.Fatalf("valid item %d failed: %v", i, err)
		}
	}
}

func TestBatchLimits(t *testing.T) {
	_, ts := newTestServer(t, Config{Atlas: buildTestAtlas(t), MaxBatchItems: 2})

	// Empty batch.
	resp, _ := postBatch(t, ts.URL, "10s", wire.BatchPlanRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch status = %d, want 400", resp.StatusCode)
	}

	// Too many items.
	resp, _ = postBatch(t, ts.URL, "10s", wire.BatchPlanRequest{Items: []wire.PlanRequest{
		{N: 24, Ratio: "2:1:1", Algorithm: "SCB"},
		{N: 24, Ratio: "3:1:1", Algorithm: "SCB"},
		{N: 24, Ratio: "4:1:1", Algorithm: "SCB"},
	}})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch status = %d, want 413", resp.StatusCode)
	}

	// GET is not a batch method.
	gr, err := http.Get(ts.URL + "/v1/plan:batch")
	if err != nil {
		t.Fatal(err)
	}
	gr.Body.Close()
	if gr.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET batch status = %d, want 405", gr.StatusCode)
	}
}

func TestBatchOversizedBody(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatchBytes: 256})
	items := make([]wire.PlanRequest, 16)
	for i := range items {
		items[i] = wire.PlanRequest{N: 24, Ratio: "5:2:1", Algorithm: "SCB"}
	}
	resp, _ := postBatch(t, ts.URL, "10s", wire.BatchPlanRequest{Items: items})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized body status = %d, want 400", resp.StatusCode)
	}
}

// TestBatchStreamNDJSON: the streaming variant emits one result line per
// item plus a trailer, with per-item errors inline.
func TestBatchStreamNDJSON(t *testing.T) {
	_, ts := newTestServer(t, Config{Atlas: buildTestAtlas(t)})
	reqBody, err := json.Marshal(wire.BatchPlanRequest{Items: []wire.PlanRequest{
		{N: 24, Ratio: "2.5:1.5:1", Algorithm: "SCB"},
		{N: 24, Ratio: "bogus", Algorithm: "SCB"},
		{N: 24, Ratio: "3:2:1", Algorithm: "SCB"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/plan:batch", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "application/x-ndjson")
	req.Header.Set("Request-Timeout", "10s")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) != "" {
			lines = append(lines, sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 4 {
		t.Fatalf("stream has %d lines, want 3 items + trailer:\n%s", len(lines), strings.Join(lines, "\n"))
	}
	for i := 0; i < 3; i++ {
		var it wire.BatchItemResult
		if err := json.Unmarshal([]byte(lines[i]), &it); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if it.Index != i {
			t.Fatalf("line %d carries index %d", i, it.Index)
		}
		wantStatus := http.StatusOK
		if i == 1 {
			wantStatus = http.StatusBadRequest
		}
		if it.Status != wantStatus {
			t.Fatalf("item %d status = %d, want %d", i, it.Status, wantStatus)
		}
	}
	var tr wire.BatchStreamTrailer
	if err := json.Unmarshal([]byte(lines[3]), &tr); err != nil {
		t.Fatalf("trailer: %v", err)
	}
	if !tr.Trailer || tr.Succeeded != 2 || tr.Failed != 1 {
		t.Fatalf("trailer %+v, want trailer=true 2/1", tr)
	}
}

// TestBatchWireRoundTrip: the batch wire types survive an encode/decode
// cycle with raw responses intact.
func TestBatchWireRoundTrip(t *testing.T) {
	orig := wire.BatchPlanResponse{
		Items: []wire.BatchItemResult{
			{Index: 0, Status: 200, Response: json.RawMessage(`{"plan":null,"degraded":false,"source":"atlas","elapsedMs":0}`)},
			{Index: 1, Status: 400, Error: "bad ratio"},
		},
		Succeeded: 1,
		Failed:    1,
		ElapsedMS: 1.5,
	}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back wire.BatchPlanResponse
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Succeeded != 1 || back.Failed != 1 || len(back.Items) != 2 {
		t.Fatalf("round-trip lost totals: %+v", back)
	}
	if !bytes.Equal(back.Items[0].Response, orig.Items[0].Response) {
		t.Fatalf("raw response changed: %s", back.Items[0].Response)
	}
	if pr, err := back.Items[0].Plan(); err != nil || pr.Source != "atlas" {
		t.Fatalf("item 0 Plan() = %+v, %v", pr, err)
	}
	if _, err := back.Items[1].Plan(); err == nil {
		t.Fatal("failed item decoded to a plan")
	}
	if _, err := (&wire.BatchItemResult{Index: 2, Error: "shard down"}).Plan(); err == nil {
		t.Fatal("unattempted item decoded to a plan")
	}
}

// FuzzBatchBodies throws truncated, oversized, and hostile bodies at the
// batch endpoint: decode must reject garbage with 4xx, never panic, and
// valid batches inside the noise must keep per-item isolation.
func FuzzBatchBodies(f *testing.F) {
	srv, err := New(Config{
		MaxN:           64,
		MaxSearchSteps: 200,
		DefaultTimeout: 500 * time.Millisecond,
		MaxBatchItems:  8,
		MaxBatchBytes:  1 << 16,
	})
	if err != nil {
		f.Fatal(err)
	}
	handler := srv.Handler()

	f.Add(`{"items":[{"n":24,"ratio":"5:2:1","algorithm":"SCB"}]}`, "")
	f.Add(`{"items":[{"n":24,"ratio":"5:2:1","algorithm":"SCB"},{"n":0}]}`, "1")
	f.Add(`{"items":[]}`, "")
	f.Add(`{"items":[{"n":24,"ratio":"5:2`, "") // truncated mid-item
	f.Add(`{"items":`+strings.Repeat(`[`, 1000), "")
	f.Add(strings.Repeat(`{"items":[{"n":24}]}`, 100), "1")
	f.Add(`{"unknown":true}`, "")
	f.Add(`[]`, "true")

	f.Fuzz(func(t *testing.T, body, stream string) {
		target := "/v1/plan:batch"
		if stream != "" {
			target += "?stream=" + stream
		}
		req := httptest.NewRequest(http.MethodPost, target, strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if rec.Code == 0 {
			t.Fatal("handler wrote no status")
		}
		if n := srv.Stats().Panics; n != 0 {
			t.Fatalf("batch body panicked the handler (panics=%d): %q → %d", n, body, rec.Code)
		}
		// A 200 means the batch decoded: the response must itself decode
		// and its totals must cover every item.
		if rec.Code == http.StatusOK && stream == "" {
			var br wire.BatchPlanResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &br); err != nil {
				t.Fatalf("200 batch response does not decode: %v\n%s", err, rec.Body.Bytes())
			}
			if br.Succeeded+br.Failed != len(br.Items) {
				t.Fatalf("totals %d+%d disagree with %d items", br.Succeeded, br.Failed, len(br.Items))
			}
		}
	})
}
