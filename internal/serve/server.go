// Package serve implements the partition-planning service behind
// cmd/pland: an HTTP JSON API over the heteropart planner wrapped in a
// robustness stack —
//
//   - per-request deadlines propagated from the Request-Timeout header
//     into context.Context and down to push.RunContext;
//   - admission control with a bounded work queue (throttle.Gate) and
//     load shedding (429 + Retry-After);
//   - singleflight coalescing of identical plan requests;
//   - a TTL result cache whose expired entries double as the degraded-
//     mode inventory, persisted across restarts via internal/journal;
//   - a circuit breaker over the Push-search path;
//   - degraded-mode fallback: when the search cannot meet the deadline
//     (or the breaker is open) the response is the canonical-candidate
//     answer — the paper's six provably-strong shapes — marked Degraded;
//   - panic-isolated handlers and a draining mode for graceful SIGTERM
//     shutdown.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	heteropart "repro"
	"repro/internal/atlas"
	"repro/internal/calibrate"
	"repro/internal/journal"
	"repro/internal/partition"
	"repro/internal/push"
	"repro/internal/shape"
	"repro/internal/sim"
	"repro/internal/throttle"
	wire "repro/serve"
)

// Config parameterises a Server. Zero fields select the documented
// defaults.
type Config struct {
	// DefaultTimeout is the serving deadline when the client sends no
	// Request-Timeout header (default 2s); MaxTimeout clamps what a
	// client may ask for (default 30s).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// ReplyMargin is reserved out of every deadline for encoding the
	// response: the search budget is remaining − margin (default 10% of
	// the deadline, capped at 50ms).
	ReplyMargin time.Duration
	// MinSearchBudget is the smallest remaining budget worth starting a
	// search for; below it the request degrades immediately rather than
	// starting work guaranteed to be abandoned (default 10ms).
	MinSearchBudget time.Duration

	// MaxConcurrent bounds in-flight planning work (default GOMAXPROCS);
	// MaxQueue bounds callers waiting for a slot (default 2×MaxConcurrent).
	// Callers beyond both are shed with 429.
	MaxConcurrent int
	MaxQueue      int

	// MaxN bounds the accepted matrix dimension (default 2000): an
	// unbounded N is an O(N²)-memory request from the network.
	MaxN int
	// MaxSearchSteps clamps a /v1/search request's step bound
	// (default 1e6; 0 in a request selects the engine default of 40·N).
	MaxSearchSteps int

	// CacheTTL is the freshness window of the plan cache (default 5m);
	// CacheMax soft-caps its entry count (default 4096).
	CacheTTL time.Duration
	CacheMax int

	// BreakerThreshold consecutive search failures open the circuit
	// breaker for BreakerCooldown (defaults 3 and 5s; threshold < 0
	// disables the breaker).
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// SearchSeed is the refinement seed used when a request omits one
	// (default 1, so identical requests coalesce and cache).
	SearchSeed int64

	// Fault, when non-nil, injects a planner-CPU straggler: every
	// committed Push is billed FaultStepCost of nominal work against the
	// fault plan's processor-P windows and the handler sleeps out the
	// stretch. This is the serving twin of sim.SimulateFaults — it makes
	// deadline pressure reproducible for tests and drills.
	Fault         *sim.FaultPlan
	FaultStepCost time.Duration

	// Machine builds the platform model for a ratio (default
	// heteropart.DefaultMachine).
	Machine func(ratio heteropart.Ratio) heteropart.Machine

	// Atlas, when non-nil, is the first answer tier: plan requests whose
	// scenario sits exactly on the atlas grid are served the baked winner
	// in O(1), before admission control and without touching the search
	// engine. Requires the default machine model — the atlas was baked
	// with it, and a custom model could change the winners.
	Atlas *atlas.Atlas

	// MaxBatchItems bounds the plan items in one /v1/plan:batch request
	// (default 1024); MaxBatchBytes bounds its body size (default 8 MiB).
	MaxBatchItems int
	MaxBatchBytes int64

	// The adaptive shed ladder (see tuning.go). ShedTargetLatency is
	// the latency the EWMA is normalized against (default 300ms);
	// ShedInterval how often the ladder re-evaluates (default 100ms);
	// ShedUp/ShedDown the load-signal thresholds for climbing and
	// descending a rung (defaults 0.85 and 0.5 — the gap is the
	// hysteresis). BoundedSearchSteps is the capped step budget of the
	// tierBounded rung (default 256).
	ShedTargetLatency  time.Duration
	ShedInterval       time.Duration
	ShedUp             float64
	ShedDown           float64
	BoundedSearchSteps int

	// Logf receives operational log lines (default: discard).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Second
	}
	if c.MinSearchBudget <= 0 {
		c.MinSearchBudget = 10 * time.Millisecond
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 2 * c.MaxConcurrent
	}
	if c.MaxN <= 0 {
		c.MaxN = 2000
	}
	if c.MaxSearchSteps <= 0 {
		c.MaxSearchSteps = 1_000_000
	}
	if c.CacheTTL <= 0 {
		c.CacheTTL = 5 * time.Minute
	}
	if c.CacheMax <= 0 {
		c.CacheMax = 4096
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerThreshold < 0 {
		c.BreakerThreshold = 0 // disabled
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.SearchSeed == 0 {
		c.SearchSeed = 1
	}
	if c.Fault != nil && c.FaultStepCost <= 0 {
		c.FaultStepCost = 200 * time.Microsecond
	}
	if c.MaxBatchItems <= 0 {
		c.MaxBatchItems = 1024
	}
	if c.MaxBatchBytes <= 0 {
		c.MaxBatchBytes = 8 << 20
	}
	if c.ShedTargetLatency <= 0 {
		c.ShedTargetLatency = 300 * time.Millisecond
	}
	if c.ShedInterval <= 0 {
		c.ShedInterval = 100 * time.Millisecond
	}
	if c.ShedUp <= 0 {
		c.ShedUp = 0.85
	}
	if c.ShedDown <= 0 {
		c.ShedDown = 0.5
	}
	if c.BoundedSearchSteps <= 0 {
		c.BoundedSearchSteps = 256
	}
	if c.Machine == nil {
		c.Machine = heteropart.DefaultMachine
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server is the planning service. Create with New; serve via Handler.
type Server struct {
	cfg     Config
	gate    *throttle.Gate
	flights *flightGroup
	cache   *planCache
	brk     *breaker
	atlasSt atomic.Pointer[atlasState]
	ladder  *loadController

	// customMachine records whether Config.Machine was caller-supplied
	// (the atlas validity rules care; the post-defaults cfg cannot tell).
	customMachine bool

	// Self-tuning state: the published auto-ratio scenario, the tracked
	// auto keys for drift invalidation, and the attached calibrator
	// (metrics only — estimates flow through ApplyEstimate).
	scenario    atomic.Pointer[autoScenario]
	cal         atomic.Pointer[calibrate.Calibrator]
	autoMu      sync.Mutex
	autoTracked map[string]planInputs
	replans     atomic.Int64

	draining atomic.Bool

	journalMu  sync.Mutex
	journalErr string // non-empty: the cache journal failed its startup scrub

	requests      atomic.Int64
	shed          atomic.Int64
	gateFallbacks atomic.Int64
	degraded      atomic.Int64
	searched      atomic.Int64
	cacheHits     atomic.Int64
	cacheMisses   atomic.Int64
	staleServed   atomic.Int64
	coalesced     atomic.Int64
	panics        atomic.Int64
	atlasHits     atomic.Int64
	atlasRejects  atomic.Int64
	batchRequests atomic.Int64
	batchItems    atomic.Int64

	metrics *serverMetrics
}

// New builds a Server from cfg.
func New(cfg Config) (*Server, error) {
	// The atlas is baked against the default machine model; serving its
	// records under a different model would answer with another machine's
	// winners. Checked before withDefaults erases the distinction.
	if cfg.Atlas != nil && cfg.Machine != nil {
		return nil, fmt.Errorf("serve: Atlas requires the default machine model")
	}
	customMachine := cfg.Machine != nil
	cfg = cfg.withDefaults()
	if cfg.Atlas != nil && cfg.Atlas.N() > cfg.MaxN {
		return nil, fmt.Errorf("serve: atlas n=%d exceeds MaxN=%d; its scenarios would be rejected before lookup", cfg.Atlas.N(), cfg.MaxN)
	}
	gate, err := throttle.NewGate(cfg.MaxConcurrent, cfg.MaxQueue)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:           cfg,
		gate:          gate,
		flights:       newFlightGroup(),
		cache:         newPlanCache(cfg.CacheTTL, cfg.CacheMax),
		brk:           newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		customMachine: customMachine,
		autoTracked:   make(map[string]planInputs),
		ladder: newLoadController(cfg.ShedTargetLatency, cfg.ShedInterval,
			cfg.ShedUp, cfg.ShedDown, time.Now()),
	}
	s.atlasSt.Store(newAtlasState(cfg.Atlas))
	s.ladder.onShift = func(from, to shedTier) {
		// s.metrics is assigned below, before any request can tick the
		// ladder.
		s.metrics.tierTrans.With(from.String(), to.String()).Inc()
		s.cfg.Logf("serve: shed ladder %s -> %s (load %.2f)", from, to, s.ladder.lastLoadSignal())
	}
	s.metrics = newServerMetrics(s)
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	// /v1/plan and /v1/plan:batch admit inside the handler, not in the
	// wrapper: the atlas tier answers before the gate, so an on-atlas
	// request never queues behind search work.
	mux.Handle("/v1/plan", s.endpoint("plan", false, s.handlePlan))
	mux.Handle("/v1/plan:batch", s.endpoint("batch", false, s.handleBatch))
	mux.Handle("/v1/evaluate", s.endpoint("evaluate", true, s.handleEvaluate))
	mux.Handle("/v1/search", s.endpoint("search", true, s.handleSearch))
	mux.Handle("/v1/stats", s.endpoint("stats", false, s.handleStats))
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/readyz", s.handleReady)
	// The scrape stays up while draining — the drain itself is the
	// most interesting thing a dashboard will ever watch.
	mux.Handle("/metrics", s.metrics.reg.Handler())
	return mux
}

// BeginDrain flips the server into draining mode: every new request is
// refused with 503 while in-flight ones run to completion (the HTTP
// server's Shutdown waits for them). Idempotent.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// LoadCache warms the plan cache from a journal written by SaveCache,
// returning the number of entries loaded. A missing file loads nothing.
func (s *Server) LoadCache(path string) (int, error) { return s.cache.load(path) }

// SaveCache persists the plan cache (stale entries included — they are
// the degraded-mode inventory) to an atomic CRC-framed journal and
// compacts away any rotated segments the live journal left behind.
func (s *Server) SaveCache(path string) (int, error) { return s.cache.save(path) }

// JournalCache attaches a live rotating journal at path: every cache
// store is appended incrementally so a crash loses at most the torn
// tail, with size/age rotation bounding the on-disk footprint. Call
// after LoadCache; a later SaveCache supersedes and compacts it.
func (s *Server) JournalCache(path string, rc journal.RotateConfig) error {
	return s.cache.journalTo(path, rc)
}

// CacheJournalHealth reports the error that disabled live cache
// journaling, or nil while it is healthy (or not configured).
func (s *Server) CacheJournalHealth() error { return s.cache.journalHealth() }

// Stats snapshots the traffic counters.
func (s *Server) Stats() wire.Stats {
	st := wire.Stats{
		Replans:       s.replans.Load(),
		ShedTier:      s.ladder.current().String(),
		GateFallbacks: s.gateFallbacks.Load(),
		Requests:      s.requests.Load(),
		Shed:          s.shed.Load(),
		Degraded:      s.degraded.Load(),
		Searched:      s.searched.Load(),
		CacheHits:     s.cacheHits.Load(),
		CacheMisses:   s.cacheMisses.Load(),
		StaleServed:   s.staleServed.Load(),
		Coalesced:     s.coalesced.Load(),
		Panics:        s.panics.Load(),
		BreakerTrips:  s.brk.tripCount(),
		AtlasHits:     s.atlasHits.Load(),
		AtlasRejects:  s.atlasRejects.Load(),
		BatchRequests: s.batchRequests.Load(),
		BatchItems:    s.batchItems.Load(),
	}
	return st
}

// httpError carries a status code and optional backpressure hint from a
// handler to the endpoint wrapper.
type httpError struct {
	status     int
	msg        string
	retryAfter time.Duration
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) *httpError {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// endpoint wraps a handler with the shared robustness stack: draining
// refusal, panic isolation, deadline derivation, and (when admit is set)
// admission control with load shedding.
func (s *Server) endpoint(name string, admit bool, h func(ctx context.Context, w http.ResponseWriter, r *http.Request) error) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		// Latency/outcome flush. Registered before the recover below so
		// it runs after it (LIFO): a quarantined panic's 500 is already
		// written to sw and lands in pland_responses_total like any
		// other outcome. started stays zero for drained refusals, which
		// are counted nowhere else either.
		var started time.Time
		defer func() {
			if started.IsZero() {
				return
			}
			elapsed := time.Since(started)
			s.metrics.latency.With(name).Observe(elapsed.Seconds())
			s.metrics.responses.With(name, strconv.Itoa(sw.statusOr(http.StatusOK))).Inc()
			// The shed ladder's latency signal watches the planning
			// endpoints only: probe and stats traffic must not mask (or
			// fake) planning-path pressure.
			if name == "plan" || name == "batch" {
				s.ladder.observe(elapsed)
			}
		}()
		// Panic isolation: one poisoned request must not take down the
		// process. The quarantine counter is the operator's signal.
		defer func() {
			if rec := recover(); rec != nil {
				s.panics.Add(1)
				s.cfg.Logf("serve: panic in %s handler quarantined: %v\n%s", name, rec, debug.Stack())
				writeError(sw, &httpError{status: http.StatusInternalServerError, msg: "internal error"})
			}
		}()
		if s.draining.Load() {
			sw.Header().Set("Connection", "close")
			writeError(sw, &httpError{status: http.StatusServiceUnavailable, msg: "draining", retryAfter: time.Second})
			return
		}
		s.requests.Add(1)
		s.metrics.requests.With(name).Inc()
		started = time.Now()

		timeout, err := requestTimeout(r, s.cfg.DefaultTimeout, s.cfg.MaxTimeout)
		if err != nil {
			writeError(sw, badRequest("bad Request-Timeout: %v", err))
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()

		if admit {
			switch err := s.gate.Acquire(ctx); {
			case errors.Is(err, throttle.ErrSaturated):
				s.shed.Add(1)
				writeError(sw, &httpError{status: http.StatusTooManyRequests, msg: "saturated: work queue full", retryAfter: time.Second})
				return
			case err != nil:
				writeError(sw, &httpError{status: http.StatusGatewayTimeout, msg: "deadline expired in admission queue"})
				return
			}
			defer s.gate.Release()
		}

		if err := h(ctx, sw, r); err != nil {
			var he *httpError
			if !errors.As(err, &he) {
				he = &httpError{status: http.StatusInternalServerError, msg: err.Error()}
			}
			writeError(sw, he)
		}
	})
}

// statusWriter records the first status code written so the endpoint
// wrapper can label the outcome counter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) statusOr(def int) int {
	if w.status == 0 {
		return def
	}
	return w.status
}

func writeError(w http.ResponseWriter, e *httpError) {
	body := wire.ErrorBody{Error: e.msg}
	if e.retryAfter > 0 {
		body.RetryAfterMS = e.retryAfter.Milliseconds()
		secs := int(e.retryAfter.Seconds())
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	writeJSON(w, e.status, body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// requestTimeout derives the serving deadline from the Request-Timeout
// header — a Go duration ("250ms") or an integer millisecond count —
// clamped to [1ms, max]; absent means def.
func requestTimeout(r *http.Request, def, max time.Duration) (time.Duration, error) {
	h := r.Header.Get("Request-Timeout")
	if h == "" {
		return def, nil
	}
	d, err := time.ParseDuration(h)
	if err != nil {
		ms, merr := strconv.ParseInt(h, 10, 64)
		if merr != nil {
			return 0, err
		}
		d = time.Duration(ms) * time.Millisecond
	}
	if d <= 0 {
		return 0, fmt.Errorf("non-positive timeout %q", h)
	}
	if d < time.Millisecond {
		d = time.Millisecond
	}
	if d > max {
		d = max
	}
	return d, nil
}

// ---------------------------------------------------------------------
// /v1/plan

// planInputs is a validated plan request plus its coalescing/cache key.
type planInputs struct {
	n     int
	ratio heteropart.Ratio
	alg   heteropart.Algorithm
	m     heteropart.Machine
	seed  int64
	auto  bool // ratio was "auto", resolved from the calibrated scenario
	key   string
}

func (s *Server) parsePlan(r *http.Request) (planInputs, error) {
	var req wire.PlanRequest
	if err := decodeRequest(r, &req, func(q url.Values) {
		req.N = atoiDefault(q.Get("n"), 0)
		req.Ratio = q.Get("ratio")
		req.Algorithm = firstOf(q.Get("algorithm"), q.Get("alg"))
		req.Topology = q.Get("topology")
		req.Seed = int64(atoiDefault(q.Get("seed"), 0))
	}); err != nil {
		return planInputs{}, err
	}
	return s.parsePlanRequest(req)
}

// parsePlanRequest validates one decoded plan request (the shared tail
// of /v1/plan parsing and per-item batch parsing).
func (s *Server) parsePlanRequest(req wire.PlanRequest) (planInputs, error) {
	if req.N < 4 || req.N > s.cfg.MaxN {
		return planInputs{}, badRequest("n must be in [4, %d], got %d", s.cfg.MaxN, req.N)
	}
	var (
		ratio heteropart.Ratio
		sc    *autoScenario
		err   error
	)
	if strings.EqualFold(req.Ratio, "auto") {
		// "auto" resolves against the latest calibrated scenario at
		// request time. The resolved ratio lands in the cache key below,
		// so once a new estimate publishes, the old keys can never be
		// hit again — a superseded plan is structurally unservable.
		sc = s.scenario.Load()
		if sc == nil {
			return planInputs{}, &httpError{
				status:     http.StatusServiceUnavailable,
				msg:        `ratio "auto": no calibrated scenario published yet`,
				retryAfter: time.Second,
			}
		}
		ratio = sc.ratio
	} else if ratio, err = heteropart.ParseRatio(req.Ratio); err != nil {
		return planInputs{}, badRequest("%v", err)
	}
	alg, err := heteropart.ParseAlgorithm(req.Algorithm)
	if err != nil {
		return planInputs{}, badRequest("%v", err)
	}
	spec, err := heteropart.ParseTopologySpec(req.Topology)
	if err != nil {
		// *model.ConfigError — the message names the offending entry.
		return planInputs{}, badRequest("%v", err)
	}
	m := s.cfg.Machine(ratio)
	if sc != nil && sc.beta > 0 && s.atlasSt.Load() == nil {
		// Calibrated link estimate. Applied only without an atlas: the
		// atlas is baked for the default β, and serving its records
		// under another model would answer with a different machine's
		// winners (the cross-check would reject every cell anyway).
		m.Net.Beta = sc.beta
	}
	// The spec applies after calibration so per-link multipliers stack on
	// the calibrated base β, not the factory default.
	m = spec.Apply(m)
	seed := req.Seed
	if seed == 0 {
		seed = s.cfg.SearchSeed
	}
	in := planInputs{
		n:     req.N,
		ratio: ratio,
		alg:   alg,
		m:     m,
		seed:  seed,
		auto:  sc != nil,
		// The ratio is quantized into the key via Ratio.Key — the same
		// identity the atlas lattice snaps on — so the cache and the
		// atlas can never disagree about two ratios being the same
		// scenario (see partition.Ratio.Key). The topology enters as the
		// canonical spec string, which for the legacy names is exactly
		// the old Topology.String() — pre-existing keys are unchanged.
		key: fmt.Sprintf("%d|%s|%s|%s|%d", req.N, ratio.Key(), alg, spec, seed),
	}
	if in.auto {
		s.trackAuto(in)
	}
	return in, nil
}

func (s *Server) handlePlan(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	in, err := s.parsePlan(r)
	if err != nil {
		return err
	}
	// The ladder evaluates on the request path (at most once per
	// interval) — before the atlas tier, so even an all-atlas workload
	// lets an overloaded ladder recover.
	tier := s.ladder.tick(time.Now(), s.loadSignal)
	// Tier 1: the atlas. On-grid scenarios are answered from the baked
	// snapshot before admission control — a pointer load on the steady
	// state, with no gate, flight, breaker, or search involvement. The
	// atlas answers at EVERY shed rung, reject included: on-grid
	// scenarios never lose availability.
	if body, ok := s.atlasAnswer(in); ok {
		s.atlasHits.Add(1)
		return writeAtlasBody(w, body)
	}
	start := time.Now()
	switch tier {
	case tierAtlas, tierStale:
		resp, err := s.shedPlan(in, tier, start)
		if err != nil {
			return err
		}
		return s.writeResult(w, resp)
	case tierReject:
		return s.rejectShed()
	}
	release, herr, saturated := s.admitPlan(ctx)
	if saturated {
		resp, err := s.shedPlan(in, tierAtlas, start)
		if err != nil {
			return err
		}
		return s.writeResult(w, resp)
	}
	if herr != nil {
		return herr
	}
	defer release()
	resp, err := s.planScenario(ctx, in, start, tier == tierBounded)
	if err != nil {
		return err
	}
	return s.writeResult(w, resp)
}

// admitPlan acquires an admission-gate slot for search-path work (the
// atlas tier deliberately never holds one). A saturated gate does not
// fail the request: it reports saturated=true and the caller serves the
// ungated degraded fallback — a full queue is an overload signal for
// the shed ladder's next tick, not a client error, and the closed form
// is always affordable. Only the ladder's reject rung answers 429.
func (s *Server) admitPlan(ctx context.Context) (release func(), herr error, saturated bool) {
	switch err := s.gate.Acquire(ctx); {
	case errors.Is(err, throttle.ErrSaturated):
		s.gateFallbacks.Add(1)
		return nil, nil, true
	case err != nil:
		return nil, &httpError{status: http.StatusGatewayTimeout, msg: "deadline expired in admission queue"}, false
	}
	return s.gate.Release, nil, false
}

// planScenario runs the gated planning path for one validated scenario:
// singleflight coalescing, cache, bounded search, degraded fallback. It
// is shared by /v1/plan and each /v1/plan:batch item.
func (s *Server) planScenario(ctx context.Context, in planInputs, start time.Time, bounded bool) (*wire.PlanResponse, error) {
	// Waiters leave the coalesced flight early enough to still serve
	// their degraded fallback inside their own deadline.
	waitCtx, cancel := s.withReplyMargin(ctx)
	defer cancel()
	resp, shared, err := s.flights.do(waitCtx, in.key, func() (*wire.PlanResponse, error) {
		return s.computePlan(ctx, in, bounded)
	})
	if shared {
		s.coalesced.Add(1)
	}
	var wt *waiterTimeoutError
	if errors.As(err, &wt) {
		if ctx.Err() == nil {
			// The flight leader is still grinding but our deadline is close:
			// serve this caller the degraded fallback now.
			resp, err = s.degradedPlan(in, wire.DegradedDeadline, start)
		} else {
			// The full request deadline — not just the reply-margin one —
			// expired while coalesced. That is a deadline expiry, not a
			// server fault; report 504, not 500.
			err = &httpError{status: http.StatusGatewayTimeout, msg: "deadline expired while waiting on a coalesced flight"}
		}
	}
	if err != nil {
		return nil, err
	}
	out := *resp
	out.ElapsedMS = msSince(start)
	return &out, nil
}

// computePlan is the flight leader's path: fresh cache, canonical
// evaluation, then the deadline-bounded search refinement with breaker
// and degraded fallback.
func (s *Server) computePlan(ctx context.Context, in planInputs, bounded bool) (*wire.PlanResponse, error) {
	if resp, fresh, ok := s.cache.get(in.key); ok && fresh {
		s.cacheHits.Add(1)
		resp.Source = wire.SourceCache
		return &resp, nil
	}
	s.cacheMisses.Add(1)

	plan, err := heteropart.NewPlan(in.alg, in.m, in.n)
	if err != nil {
		if errors.Is(err, heteropart.ErrInfeasible) {
			return nil, &httpError{status: http.StatusUnprocessableEntity, msg: err.Error()}
		}
		return nil, &httpError{status: http.StatusUnprocessableEntity, msg: err.Error()}
	}
	resp := &wire.PlanResponse{Plan: plan, Source: wire.SourceSearch}

	// The budget check runs before brk.allow(): a request destined to
	// degrade on deadline must never claim the breaker's single half-open
	// trial slot, since it has no search outcome to report.
	var reason wire.DegradedReason
	budget := s.searchBudget(ctx)
	switch {
	case budget < s.cfg.MinSearchBudget:
		reason = wire.DegradedDeadline
	case !s.brk.allow():
		reason = wire.DegradedBreakerOpen
	default:
		maxSteps := 0
		if bounded {
			maxSteps = s.cfg.BoundedSearchSteps
		}
		reason = s.refineSearch(ctx, budget, in, resp, maxSteps)
	}
	if reason != "" {
		return s.degradedPlanWith(resp, in, reason)
	}
	s.cache.put(in.key, *resp)
	return resp, nil
}

// refineSearch runs the breaker-admitted search refinement, reports the
// outcome to the breaker, and returns the degraded reason ("" on
// success). Every admitted trial must end in exactly one of success(),
// failure(), or release(): the deferred release guarantees a half-open
// trial slot is returned even when the search panics or is abandoned,
// otherwise the slot would leak and the breaker would refuse every
// future trial until restart.
func (s *Server) refineSearch(ctx context.Context, budget time.Duration, in planInputs, resp *wire.PlanResponse, maxSteps int) (reason wire.DegradedReason) {
	reported := false
	defer func() {
		if !reported {
			s.brk.release()
		}
	}()
	sctx, cancel := context.WithTimeout(ctx, budget)
	defer cancel()
	sum, serr := s.runSearch(sctx, in.n, in.ratio, in.seed, maxSteps, true)
	switch {
	case serr == nil:
		s.brk.success()
		reported = true
		s.searched.Add(1)
		sum.Improved = sum.FinalVoC < resp.Plan.VoC
		resp.Search = sum
		return ""
	case errors.Is(serr, context.DeadlineExceeded):
		s.brk.failure()
		reported = true
		return wire.DegradedDeadline
	case errors.Is(serr, context.Canceled):
		// The flight leader's client disconnected mid-search. That says
		// nothing about backend health, so release the trial without a
		// verdict — impatient clients must not trip the breaker.
		return wire.DegradedCancelled
	default:
		s.brk.failure()
		reported = true
		s.cfg.Logf("serve: search refinement failed: %v", serr)
		return wire.DegradedSearchError
	}
}

// degradedPlan builds the degraded response from scratch (used by flight
// waiters that abandoned the leader). It prefers the atlas's baked
// winner for the request's ratio — one shape built instead of the
// canonical six-way comparison — over the bare canonical fallback.
func (s *Server) degradedPlan(in planInputs, reason wire.DegradedReason, start time.Time) (*wire.PlanResponse, error) {
	if plan := s.atlasShapeFallback(in); plan != nil {
		return s.degradedPlanWith(&wire.PlanResponse{Plan: plan, Source: wire.SourceAtlasShape}, in, reason)
	}
	plan, err := heteropart.NewPlan(in.alg, in.m, in.n)
	if err != nil {
		return nil, &httpError{status: http.StatusUnprocessableEntity, msg: err.Error()}
	}
	return s.degradedPlanWith(&wire.PlanResponse{Plan: plan}, in, reason)
}

// degradedPlanWith finalises a degraded answer, preferring a stale
// cached search result, then an atlas-shape answer the caller already
// built, then the bare canonical evaluation.
func (s *Server) degradedPlanWith(resp *wire.PlanResponse, in planInputs, reason wire.DegradedReason) (*wire.PlanResponse, error) {
	s.degraded.Add(1)
	s.metrics.degraded.With(string(reason)).Inc()
	if stale, _, ok := s.cache.get(in.key); ok {
		stale.Degraded = true
		stale.DegradedReason = reason
		stale.Source = wire.SourceStaleCache
		s.staleServed.Add(1)
		return &stale, nil
	}
	out := *resp
	out.Degraded = true
	out.DegradedReason = reason
	if out.Source != wire.SourceAtlasShape {
		out.Source = wire.SourceCanonical
	}
	out.Search = nil
	return &out, nil
}

// searchBudget returns how much of ctx's deadline may be spent searching
// while leaving the reply margin intact.
func (s *Server) searchBudget(ctx context.Context) time.Duration {
	dl, ok := ctx.Deadline()
	if !ok {
		return s.cfg.MaxTimeout
	}
	remain := time.Until(dl)
	return remain - s.replyMargin(remain)
}

func (s *Server) replyMargin(remain time.Duration) time.Duration {
	m := s.cfg.ReplyMargin
	if m <= 0 {
		m = remain / 10
		if m > 50*time.Millisecond {
			m = 50 * time.Millisecond
		}
	}
	return m
}

// withReplyMargin derives the context a flight waiter may wait under:
// the request deadline minus the reply margin.
func (s *Server) withReplyMargin(ctx context.Context) (context.Context, context.CancelFunc) {
	dl, ok := ctx.Deadline()
	if !ok {
		return context.WithCancel(ctx)
	}
	remain := time.Until(dl)
	return context.WithDeadline(ctx, dl.Add(-s.replyMargin(remain)))
}

func (s *Server) writeResult(w http.ResponseWriter, resp *wire.PlanResponse) error {
	if resp.Degraded {
		w.Header().Set("Degraded", "true")
	}
	writeJSON(w, http.StatusOK, resp)
	return nil
}

// runSearch executes one deadline-bounded Push search, billing each
// committed Push against the injected fault plan's straggler windows (the
// serving twin of the simulator's CPU stretch).
func (s *Server) runSearch(ctx context.Context, n int, ratio heteropart.Ratio, seed int64, maxSteps int, beautify bool) (*wire.SearchSummary, error) {
	cfg := push.Config{N: n, Ratio: ratio, Seed: seed, MaxSteps: maxSteps, Beautify: beautify}
	if s.cfg.Fault != nil {
		var virtual float64 // wall-clock position inside the fault profile
		nominal := s.cfg.FaultStepCost.Seconds()
		cfg.Snapshot = func(step int, _ *partition.Grid) {
			stretched := s.cfg.Fault.StretchCPU(partition.P, virtual, nominal)
			virtual += stretched
			if extra := stretched - nominal; extra > 0 {
				sleepCtx(ctx, time.Duration(extra*float64(time.Second)))
			}
		}
	}
	start := time.Now()
	res, err := push.RunContext(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return &wire.SearchSummary{
		Steps:      res.Steps,
		InitialVoC: res.InitialVoC,
		FinalVoC:   res.FinalVoC,
		Converged:  res.Converged,
		Archetype:  shape.Classify(res.Final).String(),
		ElapsedMS:  msSince(start),
	}, nil
}

// ---------------------------------------------------------------------
// /v1/evaluate

func (s *Server) handleEvaluate(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	var req wire.EvaluateRequest
	if err := decodeRequest(r, &req, func(q url.Values) {
		req.N = atoiDefault(q.Get("n"), 0)
		req.Ratio = q.Get("ratio")
		req.Algorithm = firstOf(q.Get("algorithm"), q.Get("alg"))
		req.Topology = q.Get("topology")
		req.Shape = q.Get("shape")
	}); err != nil {
		return err
	}
	if req.N < 4 || req.N > s.cfg.MaxN {
		return badRequest("n must be in [4, %d], got %d", s.cfg.MaxN, req.N)
	}
	ratio, err := heteropart.ParseRatio(req.Ratio)
	if err != nil {
		return badRequest("%v", err)
	}
	alg, err := heteropart.ParseAlgorithm(req.Algorithm)
	if err != nil {
		return badRequest("%v", err)
	}
	spec, err := heteropart.ParseTopologySpec(req.Topology)
	if err != nil {
		return badRequest("%v", err)
	}
	sh, err := heteropart.ParseShape(req.Shape)
	if err != nil {
		return badRequest("%v", err)
	}
	start := time.Now()
	m := spec.Apply(s.cfg.Machine(ratio))
	resp := wire.EvaluateResponse{Shape: sh.String()}
	g, err := heteropart.BuildShape(sh, req.N, ratio)
	switch {
	case errors.Is(err, heteropart.ErrInfeasible):
		resp.Feasible = false
	case err != nil:
		return badRequest("%v", err)
	default:
		resp.Feasible = true
		resp.VoC = g.VoC()
		resp.Breakdown = heteropart.Evaluate(alg, m, g)
		for _, proc := range []heteropart.Proc{heteropart.P, heteropart.R, heteropart.S} {
			resp.Procs = append(resp.Procs, wire.ProcShare{Processor: proc.String(), Elements: g.Count(proc)})
		}
	}
	resp.ElapsedMS = msSince(start)
	writeJSON(w, http.StatusOK, resp)
	return nil
}

// ---------------------------------------------------------------------
// /v1/search

func (s *Server) handleSearch(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	var req wire.SearchRequest
	if err := decodeRequest(r, &req, func(q url.Values) {
		req.N = atoiDefault(q.Get("n"), 0)
		req.Ratio = q.Get("ratio")
		req.Seed = int64(atoiDefault(q.Get("seed"), 0))
		req.MaxSteps = atoiDefault(q.Get("maxSteps"), 0)
		req.Beautify = q.Get("beautify") == "true" || q.Get("beautify") == "1"
	}); err != nil {
		return err
	}
	if req.N < 2 || req.N > s.cfg.MaxN {
		return badRequest("n must be in [2, %d], got %d", s.cfg.MaxN, req.N)
	}
	ratio, err := heteropart.ParseRatio(req.Ratio)
	if err != nil {
		return badRequest("%v", err)
	}
	if req.MaxSteps < 0 {
		return badRequest("maxSteps must be non-negative, got %d", req.MaxSteps)
	}
	maxSteps := searchStepBound(req.MaxSteps, req.N, s.cfg.MaxSearchSteps)
	seed := req.Seed
	if seed == 0 {
		seed = s.cfg.SearchSeed
	}
	start := time.Now()
	budget := s.searchBudget(ctx)
	if budget <= 0 {
		return &httpError{status: http.StatusGatewayTimeout, msg: "deadline too short for any search"}
	}
	sctx, cancel := context.WithTimeout(ctx, budget)
	defer cancel()
	sum, err := s.runSearch(sctx, req.N, ratio, seed, maxSteps, req.Beautify)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			return &httpError{status: http.StatusGatewayTimeout, msg: "search exceeded the request deadline"}
		}
		return badRequest("%v", err)
	}
	writeJSON(w, http.StatusOK, wire.SearchResponse{
		Steps:      sum.Steps,
		InitialVoC: sum.InitialVoC,
		FinalVoC:   sum.FinalVoC,
		Converged:  sum.Converged,
		Archetype:  sum.Archetype,
		ElapsedMS:  msSince(start),
	})
	return nil
}

// searchStepBound resolves a request's step bound against the configured
// cap: 0 selects the engine default (40·N), oversized requests clamp to
// the cap rather than silently resetting to the default.
func searchStepBound(requested, n, limit int) int {
	switch {
	case requested <= 0:
		return min(40*n, limit)
	case requested > limit:
		return limit
	default:
		return requested
	}
}

// ---------------------------------------------------------------------
// /v1/stats and /healthz

func (s *Server) handleStats(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	writeJSON(w, http.StatusOK, s.Stats())
	return nil
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Connection", "close")
		writeJSON(w, http.StatusServiceUnavailable, wire.ErrorBody{Error: "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// SetJournalHealth records the cache journal's startup-scrub outcome.
// A nil error marks the journal healthy; a non-nil one is surfaced by
// /readyz so operators see a replica running cold after a quarantine.
func (s *Server) SetJournalHealth(err error) {
	s.journalMu.Lock()
	defer s.journalMu.Unlock()
	if err == nil {
		s.journalErr = ""
	} else {
		s.journalErr = err.Error()
	}
}

// Ready reports whether the server can currently give full-quality
// service, and why not. Liveness (/healthz) is "the process is up";
// readiness additionally requires the search breaker to be closed (or
// probing half-open) and the admission gate to have room — the signals
// a replica pool uses to route around a degraded replica before its
// requests turn into timeouts or shed load. A quarantined cache journal
// is reported but does not flip readiness: a cold replica still serves
// full-quality answers.
func (s *Server) Ready() wire.ReadyResponse {
	s.journalMu.Lock()
	journalErr := s.journalErr
	s.journalMu.Unlock()
	resp := wire.ReadyResponse{
		Ready:          true,
		Breaker:        s.brk.state(),
		InFlight:       s.gate.InUse(),
		MaxConcurrent:  s.gate.Slots(),
		Queued:         s.gate.Waiting(),
		MaxQueue:       s.gate.Queue(),
		JournalHealthy: journalErr == "",
		JournalError:   journalErr,
		Draining:       s.draining.Load(),
	}
	if resp.Draining {
		resp.Ready = false
		resp.Reasons = append(resp.Reasons, "draining")
	}
	if resp.Breaker == "open" {
		resp.Ready = false
		resp.Reasons = append(resp.Reasons, "search breaker open")
	}
	if resp.InFlight >= resp.MaxConcurrent && resp.Queued >= resp.MaxQueue {
		resp.Ready = false
		resp.Reasons = append(resp.Reasons, "admission gate saturated")
	}
	return resp
}

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	resp := s.Ready()
	status := http.StatusOK
	if !resp.Ready {
		status = http.StatusServiceUnavailable
		if resp.Draining {
			w.Header().Set("Connection", "close")
		}
	}
	writeJSON(w, status, resp)
}

// ---------------------------------------------------------------------
// request plumbing

// decodeRequest fills req from a POST JSON body or, for GET, via
// fromQuery. Unknown JSON fields are rejected — a misspelled field in a
// planning request should fail loudly, not silently default.
func decodeRequest(r *http.Request, req any, fromQuery func(url.Values)) error {
	switch r.Method {
	case http.MethodGet:
		fromQuery(r.URL.Query())
		return nil
	case http.MethodPost:
		dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(req); err != nil {
			return badRequest("bad request body: %v", err)
		}
		return nil
	default:
		return &httpError{status: http.StatusMethodNotAllowed, msg: "use GET or POST"}
	}
}

func atoiDefault(s string, def int) int {
	if s == "" {
		return def
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return def
	}
	return v
}

func firstOf(vals ...string) string {
	for _, v := range vals {
		if v != "" {
			return v
		}
	}
	return ""
}

func msSince(start time.Time) float64 {
	return float64(time.Since(start)) / float64(time.Millisecond)
}

// sleepCtx waits for d or until ctx is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
	case <-timer.C:
	}
}
