package serve

import (
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/calibrate"
	"repro/internal/partition"
	wire "repro/serve"
)

// TestAutoRatioBeforeEstimateIs503: ratio "auto" with no published
// scenario is a clean 503 with Retry-After, not a guess.
func TestAutoRatioBeforeEstimateIs503(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/plan", "5s",
		wire.PlanRequest{N: 24, Ratio: "auto", Algorithm: "SCB"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 for unresolved auto ratio carries no Retry-After")
	}
}

// TestAutoRatioDriftReplansAndNeverServesOldPlan is the drift half of
// the tentpole: a published estimate resolves ratio "auto" requests;
// when a new estimate with a different ratio publishes, the old plan is
// never served again (its cache key is unreachable), the tracked
// scenario is re-planned in the background, and Stats.Replans counts it.
func TestAutoRatioDriftReplansAndNeverServesOldPlan(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	est := func(pr, rr float64, gen uint64) calibrate.Estimate {
		return calibrate.Estimate{Ratio: partition.MustRatio(pr, rr, 1), Generation: gen}
	}
	s.ApplyEstimate(est(1, 1, 1))
	if ratio, gen, ok := s.Scenario(); !ok || gen != 1 || ratio != partition.MustRatio(1, 1, 1) {
		t.Fatalf("scenario after first publish = %v gen=%d ok=%v", ratio, gen, ok)
	}

	req := wire.PlanRequest{N: 24, Ratio: "auto", Algorithm: "SCB"}
	resp, body := postJSON(t, ts.URL+"/v1/plan", "10s", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	oldRatio := partition.MustRatio(1, 1, 1).String()
	if pr := decodePlan(t, body); pr.Plan.Ratio != oldRatio {
		t.Fatalf("auto plan ratio = %q, want %q", pr.Plan.Ratio, oldRatio)
	}

	// Drift: the calibrator publishes 4:1:1. Replans must happen in the
	// background and new auto requests must resolve to the new ratio.
	s.ApplyEstimate(est(4, 1, 1))
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Replans == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no background re-plan counted after drift publish")
		}
		time.Sleep(5 * time.Millisecond)
	}

	newRatio := partition.MustRatio(4, 1, 1).String()
	for i := 0; i < 5; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/plan", "10s", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d after drift: %s", resp.StatusCode, body)
		}
		pr := decodePlan(t, body)
		if pr.Plan.Ratio == oldRatio {
			t.Fatalf("superseded plan served after drift publish: %+v", pr.Plan)
		}
		if pr.Plan.Ratio != newRatio {
			t.Fatalf("auto plan ratio = %q after drift, want %q", pr.Plan.Ratio, newRatio)
		}
	}
}

// TestApplyEstimateUnchangedRatioIsANoOp: re-publishing the same
// ratio/β must not invalidate or re-plan anything.
func TestApplyEstimateUnchangedRatioIsANoOp(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.ApplyEstimate(calibrate.Estimate{Ratio: partition.MustRatio(2, 1, 1), Generation: 1})
	resp, body := postJSON(t, ts.URL+"/v1/plan", "10s",
		wire.PlanRequest{N: 24, Ratio: "auto", Algorithm: "SCB"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	s.ApplyEstimate(calibrate.Estimate{Ratio: partition.MustRatio(2, 1, 1), Generation: 2})
	time.Sleep(50 * time.Millisecond)
	if n := s.Stats().Replans; n != 0 {
		t.Fatalf("unchanged estimate triggered %d replans", n)
	}
}

// TestLadderMovesOneRungPerInterval proves the structural no-skip
// property: however hard the load signal slams, the ladder moves at
// most one rung per evaluation interval, in both directions, and every
// recorded transition is between adjacent rungs.
func TestLadderMovesOneRungPerInterval(t *testing.T) {
	base := time.Unix(1000, 0)
	lc := newLoadController(300*time.Millisecond, 10*time.Millisecond, 0.85, 0.5, base)
	var shifts []string
	lc.onShift = func(from, to shedTier) {
		if d := int(to - from); d != 1 && d != -1 {
			t.Errorf("transition %v→%v skips rungs", from, to)
		}
		shifts = append(shifts, fmt.Sprintf("%v→%v", from, to))
	}
	overload := func() float64 { return 100.0 } // far past every threshold
	idle := func() float64 { return 0.0 }

	now := base
	// Within the first interval nothing may move, even under huge load.
	if got := lc.tick(now.Add(time.Millisecond), overload); got != tierSearch {
		t.Fatalf("tier moved to %v within the first interval", got)
	}
	// One rung per elapsed interval on the way up... (climbs out of the
	// shed tiers additionally require the latency EWMA to have been
	// refreshed since the last shift, so feed observations between ticks)
	for i := 1; i < int(numTiers); i++ {
		for o := 0; o < climbMinObs; o++ {
			lc.observe(time.Second)
		}
		now = now.Add(11 * time.Millisecond)
		if got := lc.tick(now, overload); got != shedTier(i) {
			t.Fatalf("after %d intervals of overload: tier %v, want %v", i, got, shedTier(i))
		}
	}
	// ...saturating at the top rather than walking off the ladder.
	for o := 0; o < climbMinObs; o++ {
		lc.observe(time.Second)
	}
	now = now.Add(11 * time.Millisecond)
	if got := lc.tick(now, overload); got != tierReject {
		t.Fatalf("tier %v past the top rung", got)
	}
	// And one rung per interval back down.
	for i := int(numTiers) - 2; i >= 0; i-- {
		now = now.Add(11 * time.Millisecond)
		if got := lc.tick(now, idle); got != shedTier(i) {
			t.Fatalf("recovery: tier %v, want %v", got, shedTier(i))
		}
	}
	if len(shifts) != 2*(int(numTiers)-1) {
		t.Fatalf("recorded %d shifts (%v), want %d", len(shifts), shifts, 2*(int(numTiers)-1))
	}
	// The transition matrix agrees: adjacent cells only.
	for from := 0; from < int(numTiers); from++ {
		for to := 0; to < int(numTiers); to++ {
			n := lc.transitions[from][to].Load()
			if n > 0 && from-to != 1 && to-from != 1 {
				t.Errorf("transition matrix has %d non-adjacent %v→%v moves", n, shedTier(from), shedTier(to))
			}
		}
	}
}

// TestLadderShedTierClimbNeedsFreshObservations: at a shed tier the
// gate is bypassed, so the latency EWMA is the only climb signal — and
// right after a shift it still reflects the previous tier's answers.
// The ladder must not climb again until enough fresh samples have
// refreshed it.
func TestLadderShedTierClimbNeedsFreshObservations(t *testing.T) {
	base := time.Unix(1000, 0)
	lc := newLoadController(300*time.Millisecond, 10*time.Millisecond, 0.85, 0.5, base)
	lc.tier.Store(int32(tierAtlas))
	overload := func() float64 { return 100.0 }
	now := base
	for i := 0; i < 5; i++ {
		now = now.Add(11 * time.Millisecond)
		if got := lc.tick(now, overload); got != tierAtlas {
			t.Fatalf("climbed to %v out of a shed tier on a stale EWMA", got)
		}
	}
	for o := 0; o < climbMinObs; o++ {
		lc.observe(time.Second)
	}
	now = now.Add(11 * time.Millisecond)
	if got := lc.tick(now, overload); got != tierStale {
		t.Fatalf("refreshed EWMA under overload: tier %v, want %v", got, tierStale)
	}
}

// TestLadderHysteresisHoldsBetweenThresholds: a load signal between the
// down and up thresholds moves nothing — the gap is the flap damper.
func TestLadderHysteresisHoldsBetweenThresholds(t *testing.T) {
	base := time.Unix(1000, 0)
	lc := newLoadController(300*time.Millisecond, 10*time.Millisecond, 0.85, 0.5, base)
	lc.tier.Store(int32(tierAtlas))
	mid := func() float64 { return 0.7 }
	now := base
	for i := 0; i < 10; i++ {
		now = now.Add(11 * time.Millisecond)
		if got := lc.tick(now, mid); got != tierAtlas {
			t.Fatalf("mid-band signal moved the ladder to %v", got)
		}
	}
}

// TestShedTiersServeDegradedWithoutSearch: at the atlas rung an
// off-atlas request gets the canonical closed form; at the stale rung a
// previously searched answer is reheated from the cache. Both are
// marked Degraded/load-shed, neither touches the gate.
func TestShedTiersServeDegradedWithoutSearch(t *testing.T) {
	s, ts := newTestServer(t, Config{ShedInterval: time.Hour})
	req := wire.PlanRequest{N: 24, Ratio: "5:2:1", Algorithm: "SCB"}

	// Warm the cache with a full-quality answer while at tierSearch.
	if resp, body := postJSON(t, ts.URL+"/v1/plan", "10s", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup status %d: %s", resp.StatusCode, body)
	}

	s.ladder.tier.Store(int32(tierAtlas))
	resp, body := postJSON(t, ts.URL+"/v1/plan", "10s",
		wire.PlanRequest{N: 32, Ratio: "3:2:1", Algorithm: "SCB"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("atlas-tier status %d: %s", resp.StatusCode, body)
	}
	pr := decodePlan(t, body)
	if !pr.Degraded || pr.DegradedReason != wire.DegradedLoadShed {
		t.Fatalf("atlas-tier answer not marked load-shed: %+v", pr)
	}
	if pr.Source != wire.SourceCanonical {
		t.Fatalf("atlas-tier source = %q, want %q (no atlas configured)", pr.Source, wire.SourceCanonical)
	}
	if err := pr.Plan.Validate(); err != nil {
		t.Fatalf("shed plan does not validate: %v", err)
	}

	s.ladder.tier.Store(int32(tierStale))
	resp, body = postJSON(t, ts.URL+"/v1/plan", "10s", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stale-tier status %d: %s", resp.StatusCode, body)
	}
	pr = decodePlan(t, body)
	if pr.Source != wire.SourceStaleCache || !pr.Degraded || pr.DegradedReason != wire.DegradedLoadShed {
		t.Fatalf("stale-tier answer = source %q degraded %v/%q, want reheated cache entry",
			pr.Source, pr.Degraded, pr.DegradedReason)
	}
}

// TestRejectTierStillServesAtlas: at the top rung, off-atlas requests
// get 429 with Retry-After while on-atlas scenarios still answer 200 —
// zero availability loss for the atlas tier, at any load.
func TestRejectTierStillServesAtlas(t *testing.T) {
	s, ts := newTestServer(t, Config{Atlas: buildTestAtlas(t), ShedInterval: time.Hour})
	s.ladder.tier.Store(int32(tierReject))

	resp, body := postJSON(t, ts.URL+"/v1/plan", "10s",
		wire.PlanRequest{N: 24, Ratio: "2:1.5:1", Algorithm: "SCB"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("on-atlas request at reject tier: status %d: %s", resp.StatusCode, body)
	}
	if pr := decodePlan(t, body); pr.Source != wire.SourceAtlas {
		t.Fatalf("on-atlas source = %q at reject tier", pr.Source)
	}

	resp, body = postJSON(t, ts.URL+"/v1/plan", "10s",
		wire.PlanRequest{N: 32, Ratio: "7:3:1", Algorithm: "SCB"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("off-atlas request at reject tier: status %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("reject-tier 429 carries no Retry-After")
	}
	if s.Stats().Shed == 0 {
		t.Fatal("reject-tier 429 not counted in Stats.Shed")
	}
}

// TestAtlasSwapDuringInFlightRequests exercises the atomic snapshot
// swap: requests hammer an on-atlas scenario while SetAtlas flips the
// snapshot between two atlases (and nil) and WarmAtlas re-encodes
// concurrently. Run under -race; every response must be a complete,
// valid plan — a torn swap would fail validation or 500.
func TestAtlasSwapDuringInFlightRequests(t *testing.T) {
	a1, a2 := buildTestAtlas(t), buildTestAtlas(t)
	s, ts := newTestServer(t, Config{Atlas: a1, ShedInterval: time.Hour})
	s.WarmAtlas()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, body := postJSON(t, ts.URL+"/v1/plan", "10s",
					wire.PlanRequest{N: 24, Ratio: "2:1.5:1", Algorithm: "SCB"})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("status %d during atlas swap: %s", resp.StatusCode, body)
					return
				}
				pr := decodePlan(t, body)
				if err := pr.Plan.Validate(); err != nil {
					t.Errorf("torn plan during atlas swap: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < 25; i++ {
		next := a2
		if i%2 == 1 {
			next = a1
		}
		if err := s.SetAtlas(next); err != nil {
			t.Errorf("SetAtlas: %v", err)
			break
		}
		s.WarmAtlas()
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
}
