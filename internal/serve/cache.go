package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/journal"
	wire "repro/serve"
)

// planCache is the TTL result cache of the serving layer. Fresh entries
// short-circuit the whole plan path; expired entries are deliberately
// kept, because a stale searched answer is still a better degraded
// response than a bare canonical evaluation — the candidate shapes are
// scale-free in the ratio, so yesterday's search for the same scenario
// remains a principled fallback.
type planCache struct {
	mu      sync.Mutex
	entries map[string]cacheEntry
	ttl     time.Duration
	max     int
	now     func() time.Time

	// jw, when set, is the live rotating journal: every put is appended
	// so a crash loses at most the torn tail of the active segment, and
	// size/age rotation bounds the on-disk footprint across long
	// calibration runs. A failed append disables journaling (jwErr keeps
	// the cause); the drain-time save still rewrites the cache in full.
	jw    *journal.RotatingWriter
	jwErr error
}

type cacheEntry struct {
	resp    wire.PlanResponse
	expires time.Time
}

func newPlanCache(ttl time.Duration, max int) *planCache {
	return &planCache{
		entries: make(map[string]cacheEntry),
		ttl:     ttl,
		max:     max,
		now:     time.Now,
	}
}

// get returns a copy of the cached response for key. fresh reports
// whether it is within TTL; ok whether any entry (stale included) exists.
func (c *planCache) get(key string) (resp wire.PlanResponse, fresh, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return wire.PlanResponse{}, false, false
	}
	return e.resp, c.now().Before(e.expires), true
}

// put stores a response under key, evicting the stalest entries when the
// soft size cap is exceeded.
func (c *planCache) put(key string, resp wire.PlanResponse) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := cacheEntry{resp: resp, expires: c.now().Add(c.ttl)}
	c.entries[key] = e
	if c.jw != nil {
		rec := cacheJournalRecord{Key: key, Expires: e.expires.UnixNano(), Response: resp}
		if err := c.jw.AppendPayload(rec); err != nil {
			c.jw.Close()
			c.jw, c.jwErr = nil, err
		}
	}
	if c.max > 0 && len(c.entries) > c.max {
		type aged struct {
			key     string
			expires time.Time
		}
		all := make([]aged, 0, len(c.entries))
		for k, e := range c.entries {
			all = append(all, aged{k, e.expires})
		}
		sort.Slice(all, func(i, j int) bool { return all[i].expires.Before(all[j].expires) })
		for _, a := range all[:len(all)-c.max] {
			delete(c.entries, a.key)
		}
	}
}

// remove drops an entry (drift invalidation: the plan under this key
// was computed for a superseded scenario estimate).
func (c *planCache) remove(key string) {
	c.mu.Lock()
	delete(c.entries, key)
	c.mu.Unlock()
}

func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// cacheJournalHeader identifies a plan-cache journal file.
type cacheJournalHeader struct {
	Kind    string `json:"kind"`
	Version int    `json:"version"`
}

// cacheJournalRecord is one persisted cache entry.
type cacheJournalRecord struct {
	Key string `json:"key"`
	// Expires is the entry's expiry as Unix nanoseconds.
	Expires  int64             `json:"expires"`
	Response wire.PlanResponse `json:"response"`
}

const cacheJournalKind = "plancache"

// journalTo attaches a live rotating journal at path: subsequent puts
// are appended incrementally. Call after load() — the journal is opened
// in append mode over whatever active segment survived the scrub.
func (c *planCache) journalTo(path string, rc journal.RotateConfig) error {
	rw, err := journal.OpenRotating(path, cacheJournalHeader{Kind: cacheJournalKind, Version: 1}, rc)
	if err != nil {
		return err
	}
	c.mu.Lock()
	if c.jw != nil {
		c.jw.Close()
	}
	c.jw, c.jwErr = rw, nil
	c.mu.Unlock()
	return nil
}

// journalHealth reports the error that disabled live journaling, if any.
func (c *planCache) journalHealth() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.jwErr
}

// save writes the cache to path as a CRC-framed journal, atomically: the
// journal is built in a sibling tempfile and renamed over path, so a
// crash mid-save leaves either the old cache or the new one. It returns
// the number of entries written.
func (c *planCache) save(path string) (int, error) {
	c.mu.Lock()
	if c.jw != nil {
		// The full rewrite below supersedes the incremental journal;
		// release the active segment so the rename can replace it.
		c.jw.Close()
		c.jw = nil
	}
	recs := make([]cacheJournalRecord, 0, len(c.entries))
	for k, e := range c.entries {
		recs = append(recs, cacheJournalRecord{Key: k, Expires: e.expires.UnixNano(), Response: e.resp})
	}
	c.mu.Unlock()
	sort.Slice(recs, func(i, j int) bool { return recs[i].Key < recs[j].Key })

	tmp := path + ".tmp"
	os.Remove(tmp)
	w, err := journal.CreateRaw(tmp, cacheJournalHeader{Kind: cacheJournalKind, Version: 1})
	if err != nil {
		return 0, err
	}
	for _, r := range recs {
		if err := w.AppendPayload(r); err != nil {
			w.Close()
			os.Remove(tmp)
			return 0, err
		}
	}
	if err := w.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("serve: cache journal rename: %w", err)
	}
	// Compaction: the rewrite above holds every live entry, so any
	// rotated segments from incremental journaling are redundant history.
	if err := journal.RemoveSegments(path); err != nil {
		return len(recs), fmt.Errorf("serve: cache journal compact: %w", err)
	}
	return len(recs), nil
}

// load warms the cache from the journal chain at path — rotated segments
// oldest first, then the active segment — tolerating a torn tail on any
// segment (the journal layer repairs it). Records replay in append
// order, so the latest record for a key wins. Entries already expired
// are still loaded — they are the stale-serving inventory. A missing
// file is not an error; a journal of the wrong kind is.
func (c *planCache) load(path string) (int, error) {
	hdrRaw, recRaws, err := journal.RecoverRawAll(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	var hdr cacheJournalHeader
	if err := json.Unmarshal(hdrRaw, &hdr); err != nil || hdr.Kind != cacheJournalKind {
		return 0, fmt.Errorf("serve: %s is not a plan-cache journal", path)
	}
	n := 0
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, raw := range recRaws {
		var rec cacheJournalRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return n, fmt.Errorf("serve: cache journal record: %w", err)
		}
		if rec.Key == "" || rec.Response.Plan == nil {
			continue
		}
		if err := rec.Response.Plan.Validate(); err != nil {
			// A corrupt persisted plan must not be served; drop it.
			continue
		}
		c.entries[rec.Key] = cacheEntry{resp: rec.Response, expires: time.Unix(0, rec.Expires)}
		n++
	}
	return n, nil
}
