// Package journal implements an append-only, CRC-checked JSONL run
// journal for long studies. Each line is a small JSON envelope
// {"c":<crc32>,"p":{...}} whose checksum covers the payload bytes exactly
// as written, so a record torn by SIGKILL or a full disk is detected on
// the next open instead of silently corrupting a resumed study. Recovery
// rewrites the valid prefix through a tempfile+rename, so the journal on
// disk is always either the old file or a fully valid one — never a
// half-truncated in-between.
//
// The journal's unit of durability is one record: every Append is flushed
// to the operating system before it returns, so a killed process loses at
// most the record being written when the signal landed (which recovery
// then drops). Completed work recorded before the kill is never lost.
package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Header identifies the study a journal belongs to. Resume logic compares
// the header of an existing journal against the study's own configuration
// and refuses to mix runs from different studies.
type Header struct {
	// Kind names the study family (e.g. "census").
	Kind string `json:"kind"`
	// N is the matrix dimension.
	N int `json:"n"`
	// Runs is the per-ratio run count.
	Runs int `json:"runs"`
	// Seed is the study's base seed.
	Seed int64 `json:"seed"`
	// Beautify records whether the Thm 8.3 cleanup pass was enabled.
	Beautify bool `json:"beautify"`
	// Ratios lists the ratios in study order, formatted Pr:Rr:Sr.
	Ratios []string `json:"ratios"`
}

// Record is one completed or quarantined run, keyed by its position in
// the study. Outcomes are stored raw (archetype ordinal, exact float
// bits via JSON's shortest-round-trip encoding) so a replayed record
// reproduces the in-memory outcome bit-for-bit.
type Record struct {
	// RatioIndex and Run key the record: run Run of ratio RatioIndex.
	RatioIndex int `json:"ri"`
	Run        int `json:"run"`
	// Seed is the derived per-run seed, recorded for auditability.
	Seed int64 `json:"seed"`
	// Archetype is the terminal archetype ordinal (valid when !Failed).
	Archetype int `json:"arch"`
	// Steps is the committed-Push count of the run.
	Steps int `json:"steps"`
	// VoCDrop is the fractional VoC reduction of the run.
	VoCDrop float64 `json:"drop"`
	// Failed marks a quarantined run: the worker panicked on every
	// attempt and the run was excluded from the study's aggregates.
	Failed bool `json:"failed,omitempty"`
	// Error is the recovered panic value for a quarantined run.
	Error string `json:"error,omitempty"`
	// Attempts is how many times the run was tried before quarantine.
	Attempts int `json:"attempts,omitempty"`
}

// CorruptError reports a journal whose damage recovery cannot repair:
// an invalid record followed by further valid ones (mid-file corruption,
// not a torn tail).
type CorruptError struct {
	Path string
	Line int // 1-based line number of the first bad record
	Why  string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("journal: %s: line %d corrupt (%s) with valid records after it", e.Path, e.Line, e.Why)
}

// envelope is the on-disk line format.
type envelope struct {
	C uint32          `json:"c"`
	P json.RawMessage `json:"p"`
}

// Writer appends CRC-framed records to a journal file.
type Writer struct {
	f  *os.File
	bw *bufio.Writer
}

// Create starts a fresh journal at path, writing the header record. It
// fails if the file already exists (use Recover + Append to resume).
func Create(path string, h Header) (*Writer, error) {
	return CreateRaw(path, h)
}

// Append opens an existing journal for appending. The caller is expected
// to have validated the file via Recover first.
func Append(path string) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: append: %w", err)
	}
	return &Writer{f: f, bw: bufio.NewWriter(f)}, nil
}

// AppendRecord writes one record and flushes it to the OS, so a
// subsequently killed process cannot lose it.
func (w *Writer) AppendRecord(rec Record) error {
	_, err := w.appendJSON(rec)
	return err
}

// AppendPayload writes an arbitrary JSON-marshalable payload as one
// CRC-framed record, with the same per-record durability as
// AppendRecord. Journals written this way are read back with RecoverRaw.
func (w *Writer) AppendPayload(payload any) error {
	_, err := w.appendJSON(payload)
	return err
}

// AppendPayloadSized is AppendPayload reporting the bytes written,
// which size-bounded rotation (RotatingWriter) accounts against its
// segment budget.
func (w *Writer) AppendPayloadSized(payload any) (int64, error) {
	return w.appendJSON(payload)
}

// CreateRaw starts a fresh journal at path whose header is an arbitrary
// JSON-marshalable value (read back raw by RecoverRaw). Like Create, it
// fails if the file already exists.
func CreateRaw(path string, header any) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: create: %w", err)
	}
	w := &Writer{f: f, bw: bufio.NewWriter(f)}
	if _, err := w.appendJSON(header); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return w, nil
}

func (w *Writer) appendJSON(payload any) (int64, error) {
	body, err := json.Marshal(payload)
	if err != nil {
		return 0, fmt.Errorf("journal: marshal: %w", err)
	}
	line, err := json.Marshal(envelope{C: crc32.ChecksumIEEE(body), P: body})
	if err != nil {
		return 0, fmt.Errorf("journal: marshal: %w", err)
	}
	if _, err := w.bw.Write(line); err != nil {
		return 0, fmt.Errorf("journal: write: %w", err)
	}
	if err := w.bw.WriteByte('\n'); err != nil {
		return 0, fmt.Errorf("journal: write: %w", err)
	}
	if err := w.bw.Flush(); err != nil {
		return 0, fmt.Errorf("journal: flush: %w", err)
	}
	return int64(len(line)) + 1, nil
}

// Close flushes and closes the journal file.
func (w *Writer) Close() error {
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return fmt.Errorf("journal: flush: %w", err)
	}
	return w.f.Close()
}

// decodeLine validates one journal line and unmarshals its payload into
// out. It reports (reason, false) when the line is damaged.
func decodeLine(line []byte, out any) (string, bool) {
	var env envelope
	if err := json.Unmarshal(line, &env); err != nil {
		return "unparseable envelope", false
	}
	if crc32.ChecksumIEEE(env.P) != env.C {
		return "CRC mismatch", false
	}
	if err := json.Unmarshal(env.P, out); err != nil {
		return "unparseable payload", false
	}
	return "", true
}

// Recover reads a journal, validating every record's CRC. A damaged tail
// — the torn record of a SIGKILLed writer — is detected and the file is
// atomically rewritten (tempfile+rename) to the valid prefix, so the
// caller can Append to it safely. Damage in the middle of the file (a
// bad record followed by valid ones) is not repairable and returns a
// *CorruptError. A missing file returns an error satisfying
// errors.Is(err, os.ErrNotExist).
func Recover(path string) (Header, []Record, error) {
	var (
		hdr  Header
		recs []Record
	)
	err := recoverScan(path,
		func(line []byte) (string, bool) { return decodeLine(line, &hdr) },
		func(line []byte, commit bool) (string, bool) {
			var rec Record
			why, ok := decodeLine(line, &rec)
			if ok && commit {
				recs = append(recs, rec)
			}
			return why, ok
		})
	if err != nil {
		return Header{}, nil, err
	}
	return hdr, recs, nil
}

// RecoverRaw is Recover for journals written with CreateRaw /
// AppendPayload: it applies the same CRC validation and torn-tail repair
// but returns the header and record payloads as raw JSON for the caller
// to interpret. The serving layer's plan cache persists through this
// path.
func RecoverRaw(path string) (json.RawMessage, []json.RawMessage, error) {
	var (
		hdr  json.RawMessage
		recs []json.RawMessage
	)
	err := recoverScan(path,
		func(line []byte) (string, bool) { return decodeLine(line, &hdr) },
		func(line []byte, commit bool) (string, bool) {
			var rec json.RawMessage
			why, ok := decodeLine(line, &rec)
			if ok && commit {
				recs = append(recs, rec)
			}
			return why, ok
		})
	if err != nil {
		return nil, nil, err
	}
	return hdr, recs, nil
}

// recoverScan drives the validation and repair shared by Recover and
// RecoverRaw. decodeHeader decodes the first line; decodeRecord decodes
// every later one and retains the value only when commit is true (probe
// calls distinguishing torn tails from mid-file corruption pass false).
func recoverScan(path string, decodeHeader func([]byte) (string, bool), decodeRecord func(line []byte, commit bool) (string, bool)) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("journal: recover: %w", err)
	}
	lines := bytes.Split(data, []byte("\n"))
	// A well-formed journal ends in '\n', leaving one empty trailing
	// element; keep empties in place so line numbers stay meaningful.
	var (
		goodLen int // byte length of the valid prefix
		badLine int // 1-based, 0 = none
		badWhy  string
	)
	offset := 0
	for i, line := range lines {
		lineLen := len(line) + 1 // +'\n'; the last element has no newline but is then the tail anyway
		if len(bytes.TrimSpace(line)) == 0 {
			offset += lineLen
			continue
		}
		if badLine != 0 {
			// A valid record after the damage point means mid-file
			// corruption — check and refuse rather than silently dropping
			// completed work.
			if _, ok := decodeRecord(line, false); ok {
				return &CorruptError{Path: path, Line: badLine, Why: badWhy}
			}
			offset += lineLen
			continue
		}
		if i == 0 {
			if why, ok := decodeHeader(line); !ok {
				return fmt.Errorf("journal: %s: header %s", path, why)
			}
		} else {
			if why, ok := decodeRecord(line, true); !ok {
				badLine, badWhy = i+1, why
				offset += lineLen
				continue
			}
		}
		offset += lineLen
		goodLen = offset
	}
	switch {
	case badLine != 0:
		return rewritePrefix(path, data[:min(goodLen, len(data))])
	case len(data) > 0 && data[len(data)-1] != '\n':
		// The writer died after the record bytes but before the newline:
		// the record is intact, but a later Append would glue onto the
		// same line. Restore the newline atomically.
		return rewritePrefix(path, append(append([]byte(nil), data...), '\n'))
	}
	return nil
}

// rewritePrefix atomically replaces path with its valid prefix.
func rewritePrefix(path string, prefix []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".journal-recover-*")
	if err != nil {
		return fmt.Errorf("journal: recover rewrite: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(prefix); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("journal: recover rewrite: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("journal: recover rewrite: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("journal: recover rewrite: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("journal: recover rewrite: %w", err)
	}
	return nil
}

// Verify performs a read-only integrity scan of a journal: the header
// must parse and every record's CRC must check out. A torn tail — the
// damaged final record of a SIGKILLed writer — is NOT an error (Recover
// and RecoverRaw repair it losslessly), so Verify returns nil for it.
// Mid-file corruption (a damaged record followed by valid ones) returns
// a *CorruptError; a damaged header returns a plain error; a missing
// file satisfies errors.Is(err, os.ErrNotExist). Unlike Recover, Verify
// never rewrites the file, so it is safe to run on a journal another
// process may still own.
func Verify(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("journal: verify: %w", err)
	}
	lines := bytes.Split(data, []byte("\n"))
	var (
		sawHeader bool
		badLine   int // 1-based, 0 = none yet
		badWhy    string
	)
	for i, line := range lines {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var payload json.RawMessage
		why, ok := decodeLine(line, &payload)
		switch {
		case !sawHeader:
			if !ok {
				return fmt.Errorf("journal: %s: header %s", path, why)
			}
			sawHeader = true
		case badLine != 0 && ok:
			// A valid record after the damage point: mid-file corruption,
			// which no repair can distinguish from lost work.
			return &CorruptError{Path: path, Line: badLine, Why: badWhy}
		case !ok && badLine == 0:
			badLine, badWhy = i+1, why
		}
	}
	if !sawHeader && len(data) > 0 {
		return fmt.Errorf("journal: %s: no header record", path)
	}
	return nil
}

// Quarantine renames a damaged journal aside — path becomes
// path.corrupt (or path.corrupt.1, .2, … if earlier quarantines exist) —
// so the writer can start cold without destroying the evidence. It
// returns the quarantine path.
func Quarantine(path string) (string, error) {
	for i := 0; ; i++ {
		q := path + ".corrupt"
		if i > 0 {
			q = fmt.Sprintf("%s.corrupt.%d", path, i)
		}
		if _, err := os.Lstat(q); err == nil {
			continue
		} else if !errors.Is(err, os.ErrNotExist) {
			return "", fmt.Errorf("journal: quarantine: %w", err)
		}
		if err := os.Rename(path, q); err != nil {
			return "", fmt.Errorf("journal: quarantine: %w", err)
		}
		return q, nil
	}
}

// HeaderMatches reports whether two headers describe the same study.
func HeaderMatches(a, b Header) bool {
	if a.Kind != b.Kind || a.N != b.N || a.Runs != b.Runs || a.Seed != b.Seed || a.Beautify != b.Beautify {
		return false
	}
	if len(a.Ratios) != len(b.Ratios) {
		return false
	}
	for i := range a.Ratios {
		if a.Ratios[i] != b.Ratios[i] {
			return false
		}
	}
	return true
}

// ErrExists is returned by callers that require a fresh journal path.
var ErrExists = errors.New("journal: file already exists")
