package journal

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

type rotHeader struct {
	Kind string `json:"kind"`
}

type rotRec struct {
	I int `json:"i"`
}

func readAllInts(t *testing.T, path string) []int {
	t.Helper()
	_, raws, err := RecoverRawAll(path)
	if err != nil {
		t.Fatalf("RecoverRawAll: %v", err)
	}
	out := make([]int, 0, len(raws))
	for _, raw := range raws {
		var r rotRec
		if err := json.Unmarshal(raw, &r); err != nil {
			t.Fatalf("record: %v", err)
		}
		out = append(out, r.I)
	}
	return out
}

func TestRotatingWriterSizeRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.jsonl")
	rw, err := OpenRotating(path, rotHeader{Kind: "rot-test"}, RotateConfig{MaxBytes: 256, MaxSegments: 2})
	if err != nil {
		t.Fatalf("OpenRotating: %v", err)
	}
	const total = 200
	for i := 0; i < total; i++ {
		if err := rw.AppendPayload(rotRec{I: i}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := rw.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	segs := Segments(path)
	if len(segs) != 3 { // path.2, path.1, path
		t.Fatalf("segments = %v, want 3", segs)
	}
	for _, seg := range segs {
		st, err := os.Stat(seg)
		if err != nil {
			t.Fatalf("stat %s: %v", seg, err)
		}
		// MaxBytes plus at most one record of slop (rotation happens
		// before the append that would breach).
		if st.Size() > 256+128 {
			t.Errorf("%s is %d bytes, exceeds the rotation bound", seg, st.Size())
		}
		if err := Verify(seg); err != nil {
			t.Errorf("segment %s does not verify: %v", seg, err)
		}
	}

	// The retained tail must be contiguous and end at the last record:
	// rotation drops only the oldest history.
	got := readAllInts(t, path)
	if len(got) == 0 || got[len(got)-1] != total-1 {
		t.Fatalf("tail record = %v, want last %d", got, total-1)
	}
	for i := 1; i < len(got); i++ {
		if got[i] != got[i-1]+1 {
			t.Fatalf("records not contiguous at %d: %v", i, got)
		}
	}
}

func TestRotatingWriterAgeRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.jsonl")
	now := time.Unix(1000, 0)
	rc := RotateConfig{MaxBytes: 1 << 30, MaxAge: time.Minute, MaxSegments: 2,
		now: func() time.Time { return now }}
	rw, err := OpenRotating(path, rotHeader{Kind: "rot-test"}, rc)
	if err != nil {
		t.Fatalf("OpenRotating: %v", err)
	}
	if err := rw.AppendPayload(rotRec{I: 1}); err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Minute)
	if err := rw.AppendPayload(rotRec{I: 2}); err != nil {
		t.Fatal(err)
	}
	if err := rw.Close(); err != nil {
		t.Fatal(err)
	}
	if segs := Segments(path); len(segs) != 2 {
		t.Fatalf("segments = %v, want rotated+active after age rotation", segs)
	}
	if got := readAllInts(t, path); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("records = %v, want [1 2]", got)
	}
}

func TestOpenRotatingResumesActiveSegment(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.jsonl")
	rw, err := OpenRotating(path, rotHeader{Kind: "k"}, RotateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rw.AppendPayload(rotRec{I: 1}); err != nil {
		t.Fatal(err)
	}
	if err := rw.Close(); err != nil {
		t.Fatal(err)
	}
	rw, err = OpenRotating(path, rotHeader{Kind: "k"}, RotateConfig{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if err := rw.AppendPayload(rotRec{I: 2}); err != nil {
		t.Fatal(err)
	}
	if err := rw.Close(); err != nil {
		t.Fatal(err)
	}
	if got := readAllInts(t, path); len(got) != 2 || got[1] != 2 {
		t.Fatalf("records after reopen = %v, want [1 2]", got)
	}
}

func TestOpenRotatingRepairsTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.jsonl")
	rw, err := OpenRotating(path, rotHeader{Kind: "k"}, RotateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := rw.AppendPayload(rotRec{I: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := rw.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail the way SIGKILL does: truncate mid-record.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	rw, err = OpenRotating(path, rotHeader{Kind: "k"}, RotateConfig{})
	if err != nil {
		t.Fatalf("reopen over torn tail: %v", err)
	}
	if err := rw.AppendPayload(rotRec{I: 99}); err != nil {
		t.Fatal(err)
	}
	if err := rw.Close(); err != nil {
		t.Fatal(err)
	}
	got := readAllInts(t, path)
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 99 {
		t.Fatalf("records after torn-tail repair = %v, want [0 1 99]", got)
	}
}

func TestRecoverRawAllMergesSegmentsOldestFirst(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.jsonl")
	rw, err := OpenRotating(path, rotHeader{Kind: "k"}, RotateConfig{MaxBytes: 1 << 30, MaxSegments: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		if err := rw.AppendPayload(rotRec{I: i}); err != nil {
			t.Fatal(err)
		}
		if i%3 == 2 && i != 8 {
			if err := rw.Rotate(); err != nil {
				t.Fatalf("rotate: %v", err)
			}
		}
	}
	if err := rw.Close(); err != nil {
		t.Fatal(err)
	}
	got := readAllInts(t, path)
	for i, v := range got {
		if v != i {
			t.Fatalf("records out of order: %v", got)
		}
	}
	if len(got) != 9 {
		t.Fatalf("got %d records, want 9", len(got))
	}
}

func TestVerifyAllFlagsCorruptRotatedSegment(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.jsonl")
	rw, err := OpenRotating(path, rotHeader{Kind: "k"}, RotateConfig{MaxBytes: 1 << 30, MaxSegments: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := rw.AppendPayload(rotRec{I: i}); err != nil {
			t.Fatal(err)
		}
		if i == 1 {
			if err := rw.Rotate(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := rw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := VerifyAll(path); err != nil {
		t.Fatalf("clean chain must verify: %v", err)
	}

	// Corrupt the middle of the rotated segment (not its tail).
	seg := segmentName(path, 1)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	err = VerifyAll(path)
	if err == nil {
		t.Fatal("VerifyAll accepted a corrupt rotated segment")
	}
	var ce *CorruptError
	if !errors.As(err, &ce) && err == nil {
		t.Fatalf("unexpected error type: %v", err)
	}
}

func TestVerifyAllMissing(t *testing.T) {
	if err := VerifyAll(filepath.Join(t.TempDir(), "nope.jsonl")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("want os.ErrNotExist, got %v", err)
	}
	if _, _, err := RecoverRawAll(filepath.Join(t.TempDir(), "nope.jsonl")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("want os.ErrNotExist, got %v", err)
	}
}

func TestRemoveSegments(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.jsonl")
	rw, err := OpenRotating(path, rotHeader{Kind: "k"}, RotateConfig{MaxBytes: 1 << 30, MaxSegments: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := rw.AppendPayload(rotRec{I: i}); err != nil {
			t.Fatal(err)
		}
		if i%2 == 1 && i != 5 {
			if err := rw.Rotate(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := rw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := RemoveSegments(path); err != nil {
		t.Fatal(err)
	}
	segs := Segments(path)
	if len(segs) != 1 || segs[0] != path {
		t.Fatalf("segments after RemoveSegments = %v, want only the active file", segs)
	}
}

func TestSegmentsStopAtGap(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.jsonl")
	for _, name := range []string{path, path + ".1", path + ".3"} {
		if err := os.WriteFile(name, []byte("x\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	segs := Segments(path)
	want := []string{path + ".1", path}
	if fmt.Sprint(segs) != fmt.Sprint(want) {
		t.Fatalf("segments = %v, want %v (gap at .2 ends the chain)", segs, want)
	}
}
