package journal

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"
)

// Rotation and multi-segment recovery.
//
// A long-lived writer — above all the pland plan-cache journal, which a
// self-tuning server appends to on every search completion and drift
// re-plan — must not grow without bound. RotatingWriter bounds it with
// logrotate-style segments: the active file lives at path, rotated
// segments at path.1 (newest) … path.K (oldest), and rotation is driven
// by segment size and age. Segments beyond MaxSegments are deleted, so
// the total footprint is capped at roughly (MaxSegments+1)·MaxBytes.
//
// Every segment is an ordinary CRC-framed journal (header + records), so
// the existing single-file tooling — Verify, Recover, Quarantine — works
// unchanged on each one. RecoverRawAll and VerifyAll extend recovery and
// scrubbing across the whole segment chain, oldest first, which is the
// order a reader replaying "latest record wins" semantics needs.

// RotateConfig bounds a RotatingWriter's active segment. Zero fields
// select the documented defaults.
type RotateConfig struct {
	// MaxBytes rotates the active segment once its size reaches this
	// (default 1 MiB). A single oversized record still lands in one
	// segment — rotation happens before the append that would breach.
	MaxBytes int64
	// MaxAge rotates the active segment once the oldest record in it is
	// older than this (0 = no age-based rotation).
	MaxAge time.Duration
	// MaxSegments is how many rotated segments are kept besides the
	// active one (default 3); older segments are deleted at rotation.
	MaxSegments int

	// now is a test hook (default time.Now).
	now func() time.Time
}

func (rc RotateConfig) withDefaults() RotateConfig {
	if rc.MaxBytes <= 0 {
		rc.MaxBytes = 1 << 20
	}
	if rc.MaxSegments <= 0 {
		rc.MaxSegments = 3
	}
	if rc.now == nil {
		rc.now = time.Now
	}
	return rc
}

// RotatingWriter appends CRC-framed payload records to a size/age-bounded
// segment chain. It is not safe for concurrent use; callers serialise.
type RotatingWriter struct {
	path   string
	header any
	rc     RotateConfig

	w      *Writer
	size   int64     // bytes in the active segment
	opened time.Time // when the active segment was created (age basis)
}

// OpenRotating opens (or creates) the rotating journal at path. An
// existing active segment is recovered first — torn tails are repaired —
// and appending continues where it left off; its header must be present
// but is not compared against the given one (the caller's scrub decides
// what to do with a foreign journal). header is written to every freshly
// created segment.
func OpenRotating(path string, header any, rc RotateConfig) (*RotatingWriter, error) {
	rc = rc.withDefaults()
	rw := &RotatingWriter{path: path, header: header, rc: rc}
	switch _, _, err := RecoverRaw(path); {
	case err == nil:
		w, err := Append(path)
		if err != nil {
			return nil, err
		}
		st, err := os.Stat(path)
		if err != nil {
			w.Close()
			return nil, fmt.Errorf("journal: rotate open: %w", err)
		}
		rw.w, rw.size = w, st.Size()
		// The file's mtime is the best age estimate an append-only
		// segment has; an idle recovered segment ages from its last
		// write, not from zero.
		rw.opened = st.ModTime()
		return rw, nil
	case errors.Is(err, os.ErrNotExist):
		return rw, rw.openFresh()
	default:
		return nil, err
	}
}

func (rw *RotatingWriter) openFresh() error {
	w, err := CreateRaw(rw.path, rw.header)
	if err != nil {
		return err
	}
	st, err := os.Stat(rw.path)
	if err != nil {
		w.Close()
		return fmt.Errorf("journal: rotate open: %w", err)
	}
	rw.w, rw.size, rw.opened = w, st.Size(), rw.rc.now()
	return nil
}

// AppendPayload writes one record, rotating first when the active
// segment has reached its size or age bound.
func (rw *RotatingWriter) AppendPayload(payload any) error {
	if rw.size >= rw.rc.MaxBytes ||
		(rw.rc.MaxAge > 0 && rw.rc.now().Sub(rw.opened) >= rw.rc.MaxAge) {
		if err := rw.Rotate(); err != nil {
			return err
		}
	}
	n, err := rw.w.AppendPayloadSized(payload)
	rw.size += n
	return err
}

// Rotate forces a rotation: the active segment becomes path.1, existing
// rotated segments shift up, segments beyond MaxSegments are deleted,
// and a fresh active segment (with the header) is started.
func (rw *RotatingWriter) Rotate() error {
	if err := rw.w.Close(); err != nil {
		return err
	}
	// Delete the oldest, then shift path.K-1→path.K … path.1→path.2.
	os.Remove(segmentName(rw.path, rw.rc.MaxSegments))
	for i := rw.rc.MaxSegments - 1; i >= 1; i-- {
		from, to := segmentName(rw.path, i), segmentName(rw.path, i+1)
		if _, err := os.Lstat(from); err == nil {
			if err := os.Rename(from, to); err != nil {
				return fmt.Errorf("journal: rotate shift: %w", err)
			}
		}
	}
	if err := os.Rename(rw.path, segmentName(rw.path, 1)); err != nil {
		return fmt.Errorf("journal: rotate: %w", err)
	}
	return rw.openFresh()
}

// Size returns the byte size of the active segment.
func (rw *RotatingWriter) Size() int64 { return rw.size }

// Close flushes and closes the active segment.
func (rw *RotatingWriter) Close() error { return rw.w.Close() }

func segmentName(path string, i int) string { return fmt.Sprintf("%s.%d", path, i) }

// Segments lists the on-disk segment chain for path, oldest first: the
// highest-numbered rotated segment down to path.1, then the active
// segment if it exists. Gaps in the numbering end the chain (a deleted
// middle segment must not silently splice unrelated eras together).
func Segments(path string) []string {
	var rotated []string
	for i := 1; ; i++ {
		name := segmentName(path, i)
		if _, err := os.Lstat(name); err != nil {
			break
		}
		rotated = append(rotated, name)
	}
	// rotated is newest-first (path.1 newest); reverse to oldest-first.
	var out []string
	for i := len(rotated) - 1; i >= 0; i-- {
		out = append(out, rotated[i])
	}
	if _, err := os.Lstat(path); err == nil {
		out = append(out, path)
	}
	return out
}

// RecoverRawAll recovers every segment of the rotating journal at path,
// oldest first, returning the concatenated record payloads and the
// newest segment's header. Each segment gets the full single-file
// treatment: CRC validation and torn-tail repair. A *CorruptError from
// any segment aborts the whole recovery — the caller decides whether to
// quarantine just that segment (see the pland scrub) — and a completely
// missing chain returns os.ErrNotExist like RecoverRaw.
func RecoverRawAll(path string) (json.RawMessage, []json.RawMessage, error) {
	segs := Segments(path)
	if len(segs) == 0 {
		return nil, nil, fmt.Errorf("journal: recover: %w", os.ErrNotExist)
	}
	var (
		hdr  json.RawMessage
		recs []json.RawMessage
	)
	for _, seg := range segs {
		h, rs, err := RecoverRaw(seg)
		if err != nil {
			return nil, nil, err
		}
		hdr = h
		recs = append(recs, rs...)
	}
	return hdr, recs, nil
}

// VerifyAll runs the read-only integrity scan over every segment of the
// rotating journal at path, oldest first, stopping at the first damaged
// segment. The returned error wraps the failing segment's path in its
// message; a missing chain satisfies errors.Is(err, os.ErrNotExist).
func VerifyAll(path string) error {
	segs := Segments(path)
	if len(segs) == 0 {
		return fmt.Errorf("journal: verify: %w", os.ErrNotExist)
	}
	for _, seg := range segs {
		if err := Verify(seg); err != nil {
			return err
		}
	}
	return nil
}

// RemoveSegments deletes every rotated segment of path (the active
// segment is left alone). A drain-time full rewrite of the active
// segment makes the rotated history redundant; removing it is the
// compaction step.
func RemoveSegments(path string) error {
	var firstErr error
	for i := 1; ; i++ {
		name := segmentName(path, i)
		if _, err := os.Lstat(name); err != nil {
			break
		}
		if err := os.Remove(name); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
