package journal

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func testHeader() Header {
	return Header{Kind: "census", N: 40, Runs: 6, Seed: 7, Beautify: true, Ratios: []string{"3:1:1", "5:2:1"}}
}

func testRecords() []Record {
	return []Record{
		{RatioIndex: 0, Run: 0, Seed: 7, Archetype: 0, Steps: 81, VoCDrop: 0.512345678901234},
		{RatioIndex: 0, Run: 1, Seed: 8, Archetype: 1, Steps: 92, VoCDrop: 0.25},
		{RatioIndex: 1, Run: 0, Seed: 1000010, Failed: true, Error: "boom", Attempts: 2},
	}
}

func writeAll(t *testing.T, path string) {
	t.Helper()
	w, err := Create(path, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range testRecords() {
		if err := w.AppendRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	writeAll(t, path)
	hdr, recs, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if !HeaderMatches(hdr, testHeader()) {
		t.Fatalf("header mismatch: %+v", hdr)
	}
	if !reflect.DeepEqual(recs, testRecords()) {
		t.Fatalf("records mismatch:\ngot  %+v\nwant %+v", recs, testRecords())
	}
}

func TestCreateRefusesExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	writeAll(t, path)
	if _, err := Create(path, testHeader()); err == nil {
		t.Fatal("Create over an existing journal should fail")
	}
}

func TestRecoverMissingFile(t *testing.T) {
	_, _, err := Recover(filepath.Join(t.TempDir(), "nope.jsonl"))
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("want ErrNotExist, got %v", err)
	}
}

// TestTornTailRecovery is the SIGKILL scenario: the last record is cut
// mid-bytes. Recover must drop exactly that record, rewrite the file
// atomically, and leave a journal that appends and re-recovers cleanly.
func TestTornTailRecovery(t *testing.T) {
	for _, chop := range []int{2, 5, 20} {
		path := filepath.Join(t.TempDir(), "j.jsonl")
		writeAll(t, path)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)-chop], 0o644); err != nil {
			t.Fatal(err)
		}

		hdr, recs, err := Recover(path)
		if err != nil {
			t.Fatalf("chop %d: %v", chop, err)
		}
		want := testRecords()[:2]
		if !HeaderMatches(hdr, testHeader()) || !reflect.DeepEqual(recs, want) {
			t.Fatalf("chop %d: got %+v", chop, recs)
		}

		// The file must now be fully valid: append the lost record and
		// recover again.
		w, err := Append(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.AppendRecord(testRecords()[2]); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		_, recs, err = Recover(path)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(recs, testRecords()) {
			t.Fatalf("chop %d after re-append: got %+v", chop, recs)
		}
	}
}

// TestMissingFinalNewline covers a writer killed between the record
// bytes and the newline: the record is intact and must be kept, and the
// newline must be restored so later appends stay line-framed.
func TestMissingFinalNewline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	writeAll(t, path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	_, recs, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recs, testRecords()) {
		t.Fatalf("intact final record dropped: %+v", recs)
	}
	w, err := Append(path)
	if err != nil {
		t.Fatal(err)
	}
	extra := Record{RatioIndex: 1, Run: 1, Seed: 11, Archetype: 2, Steps: 3}
	if err := w.AppendRecord(extra); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, err = Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recs, append(testRecords(), extra)) {
		t.Fatalf("after re-append: %+v", recs)
	}
}

// TestCorruptTailCRC flips a byte inside the last record's payload: the
// CRC must catch it and recovery must drop the record.
func TestCorruptTailCRC(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	writeAll(t, path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	last := []byte(lines[len(lines)-1])
	// Flip a digit inside the payload without breaking JSON syntax.
	i := strings.LastIndexAny(string(last), "0123456789")
	last[i] ^= 1
	lines[len(lines)-1] = string(last)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, recs, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("corrupted record not dropped: %+v", recs)
	}
}

// TestMidFileCorruption damages a record that has valid records after it
// — not a torn tail — and must be refused with a *CorruptError rather
// than silently discarding completed work.
func TestMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	writeAll(t, path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	lines[1] = lines[1][:len(lines[1])/2] // tear record 1, records 2..3 intact
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Recover(path)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CorruptError, got %v", err)
	}
	if ce.Line != 2 {
		t.Fatalf("corrupt line = %d, want 2", ce.Line)
	}
}

func TestHeaderMatches(t *testing.T) {
	a := testHeader()
	if !HeaderMatches(a, testHeader()) {
		t.Fatal("identical headers must match")
	}
	for _, mutate := range []func(*Header){
		func(h *Header) { h.N = 41 },
		func(h *Header) { h.Runs = 7 },
		func(h *Header) { h.Seed = 8 },
		func(h *Header) { h.Beautify = false },
		func(h *Header) { h.Kind = "ablation" },
		func(h *Header) { h.Ratios = h.Ratios[:1] },
		func(h *Header) { h.Ratios = []string{"3:1:1", "5:3:1"} },
	} {
		b := testHeader()
		mutate(&b)
		if HeaderMatches(a, b) {
			t.Fatalf("mutated header %+v must not match", b)
		}
	}
}

// rawHeader / rawRecord are the arbitrary-payload types of the raw
// journal tests (the shape the serving layer's plan cache uses).
type rawHeader struct {
	Kind    string `json:"kind"`
	Version int    `json:"version"`
}

type rawRecord struct {
	Key     string `json:"key"`
	Expires int64  `json:"expires"`
	Body    string `json:"body"`
}

func writeAllRaw(t *testing.T, path string) []rawRecord {
	t.Helper()
	recs := []rawRecord{
		{Key: "4:1:1|SCB|200", Expires: 1700000000, Body: "plan-a"},
		{Key: "25:5:1|PIO|500", Expires: 1700000300, Body: "plan-b"},
	}
	w, err := CreateRaw(path, rawHeader{Kind: "plancache", Version: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.AppendPayload(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestRawRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	want := writeAllRaw(t, path)
	hdrRaw, recRaws, err := RecoverRaw(path)
	if err != nil {
		t.Fatal(err)
	}
	var hdr rawHeader
	if err := json.Unmarshal(hdrRaw, &hdr); err != nil {
		t.Fatal(err)
	}
	if hdr.Kind != "plancache" || hdr.Version != 1 {
		t.Fatalf("header = %+v", hdr)
	}
	if len(recRaws) != len(want) {
		t.Fatalf("got %d records, want %d", len(recRaws), len(want))
	}
	for i, raw := range recRaws {
		var rec rawRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rec, want[i]) {
			t.Fatalf("record %d = %+v, want %+v", i, rec, want[i])
		}
	}
}

// TestRawTornTail proves the raw path gets the same SIGKILL repair as the
// typed one: a record cut mid-bytes is dropped and the file rewritten to
// the valid prefix.
func TestRawTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	writeAllRaw(t, path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	_, recRaws, err := RecoverRaw(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recRaws) != 1 {
		t.Fatalf("got %d records after torn tail, want 1", len(recRaws))
	}
	// The repaired file must be appendable and fully valid.
	w, err := Append(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendPayload(rawRecord{Key: "again", Body: "plan-c"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, recRaws, err = RecoverRaw(path)
	if err != nil || len(recRaws) != 2 {
		t.Fatalf("after re-append: %d records, err %v", len(recRaws), err)
	}
}
