package journal

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// mutateLines rewrites the journal at path through fn over its
// newline-split lines (trailing newline preserved).
func mutateLines(t *testing.T, path string, fn func(lines []string) []string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	out := strings.Join(fn(lines), "\n") + "\n"
	if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestVerifyCleanJournal: a well-formed journal verifies with no error
// and — critically — no mutation.
func TestVerifyCleanJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	writeAll(t, path)
	before, _ := os.ReadFile(path)
	if err := Verify(path); err != nil {
		t.Fatal(err)
	}
	after, _ := os.ReadFile(path)
	if string(before) != string(after) {
		t.Fatal("Verify mutated the journal")
	}
}

// TestVerifyMissingFile: absence maps to os.ErrNotExist so callers can
// treat "no journal yet" as the cold-start case, not corruption.
func TestVerifyMissingFile(t *testing.T) {
	err := Verify(filepath.Join(t.TempDir(), "nope.jsonl"))
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("err = %v, want os.ErrNotExist", err)
	}
}

// TestVerifyTornTail: a torn final record is the normal SIGKILL
// signature — repairable, so Verify accepts it and leaves the repair to
// Recover.
func TestVerifyTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	writeAll(t, path)
	mutateLines(t, path, func(lines []string) []string {
		last := len(lines) - 1
		lines[last] = lines[last][:len(lines[last])/2]
		return lines
	})
	before, _ := os.ReadFile(path)
	if err := Verify(path); err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	after, _ := os.ReadFile(path)
	if string(before) != string(after) {
		t.Fatal("Verify repaired the tail; that is Recover's job")
	}
}

// TestVerifyMidFileCorruption: damage followed by valid records is the
// unrepairable case and must surface as *CorruptError.
func TestVerifyMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	writeAll(t, path)
	mutateLines(t, path, func(lines []string) []string {
		lines[1] = lines[1][:len(lines[1])/2]
		return lines
	})
	err := Verify(path)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CorruptError", err)
	}
	if ce.Line != 2 {
		t.Fatalf("corrupt line = %d, want 2", ce.Line)
	}
}

// TestVerifyBadHeader: a journal whose header does not parse is
// rejected outright.
func TestVerifyBadHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	if err := os.WriteFile(path, []byte("not a journal\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Verify(path); err == nil {
		t.Fatal("garbage header verified")
	}
}

// TestVerifyAgreesWithRecover: over a sweep of truncation points,
// Verify must accept exactly the journals Recover can open (everything
// except mid-file damage, which this sweep cannot produce).
func TestVerifyAgreesWithRecover(t *testing.T) {
	full := filepath.Join(t.TempDir(), "full.jsonl")
	writeAll(t, full)
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(data); cut += 7 {
		path := filepath.Join(t.TempDir(), "cut.jsonl")
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		verr := Verify(path)
		_, _, rerr := Recover(path)
		if (verr == nil) != (rerr == nil) {
			t.Fatalf("cut=%d: Verify err %v, Recover err %v — they must agree", cut, verr, rerr)
		}
	}
}

// TestQuarantine: the damaged file moves aside (preserving evidence)
// and repeated quarantines pick fresh names.
func TestQuarantine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.jsonl")
	for i, want := range []string{path + ".corrupt", path + ".corrupt.1", path + ".corrupt.2"} {
		if err := os.WriteFile(path, []byte("damaged\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		q, err := Quarantine(path)
		if err != nil {
			t.Fatalf("quarantine %d: %v", i, err)
		}
		if q != want {
			t.Fatalf("quarantine %d: moved to %q, want %q", i, q, want)
		}
		if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("quarantine %d: original still present", i)
		}
		if b, err := os.ReadFile(q); err != nil || string(b) != "damaged\n" {
			t.Fatalf("quarantine %d: evidence lost: %q, %v", i, b, err)
		}
	}
}

// TestQuarantineMissing: quarantining a file that is not there fails.
func TestQuarantineMissing(t *testing.T) {
	if _, err := Quarantine(filepath.Join(t.TempDir(), "gone.jsonl")); err == nil {
		t.Fatal("quarantined a missing file")
	}
}
