// Package throttle provides a token-bucket rate limiter for simulated
// processor heterogeneity. The paper controlled processor speed ratios
// with a /proc-based CPU limiter that let a process run until it consumed
// its CPU-time fraction and then put it to sleep (Section X-B); Limiter
// reproduces that behaviour for goroutine "processors": work is metered
// in abstract operations and the goroutine sleeps whenever it runs ahead
// of its allotted rate.
package throttle

import (
	"context"
	"errors"
	"sync"
	"time"
)

// Limiter meters operations at a fixed rate. The zero value is unusable;
// use New.
type Limiter struct {
	mu      sync.Mutex
	rate    float64 // operations per second
	started time.Time
	used    float64 // operations consumed so far
	now     func() time.Time
	// sleep, when non-nil (tests), replaces the interruptible timer wait.
	sleep func(time.Duration)
}

// New returns a limiter admitting rate operations per second.
func New(rate float64) (*Limiter, error) {
	if rate <= 0 {
		return nil, errors.New("throttle: rate must be positive")
	}
	return &Limiter{
		rate: rate,
		now:  time.Now,
	}, nil
}

// MustNew is New that panics on error.
func MustNew(rate float64) *Limiter {
	l, err := New(rate)
	if err != nil {
		panic(err)
	}
	return l
}

// Rate returns the configured operations per second.
func (l *Limiter) Rate() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rate
}

// Acquire consumes n operations, sleeping as needed so that consumption
// never runs ahead of the configured rate. The first call starts the
// clock.
func (l *Limiter) Acquire(n int64) {
	l.AcquireContext(context.Background(), n)
}

// AcquireContext is Acquire with an interruptible sleep: a paced
// goroutine parked mid-wait wakes immediately when ctx is cancelled and
// returns ctx's error. The n operations stay consumed either way — a
// cancelled waiter has already been admitted against the budget, and a
// subsequent resume at the same rate accounts for them.
func (l *Limiter) AcquireContext(ctx context.Context, n int64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if n <= 0 {
		return nil
	}
	l.mu.Lock()
	if l.started.IsZero() {
		l.started = l.now()
	}
	l.used += float64(n)
	due := l.started.Add(time.Duration(l.used / l.rate * float64(time.Second)))
	wait := due.Sub(l.now())
	sleep := l.sleep
	l.mu.Unlock()
	if wait <= 0 {
		return nil
	}
	if sleep != nil {
		// Test clock: not interruptible, but the fake never really parks.
		sleep(wait)
		return ctx.Err()
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// Used returns the operations consumed so far.
func (l *Limiter) Used() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.used
}

// VirtualClock meters the same token-bucket arithmetic without real
// sleeping: Acquire advances a virtual time instead. It lets the executor
// report the timings a paced run would produce while running at full
// machine speed.
type VirtualClock struct {
	mu   sync.Mutex
	rate float64
	t    float64 // virtual seconds elapsed
}

// NewVirtual returns a virtual clock at the given operation rate.
func NewVirtual(rate float64) (*VirtualClock, error) {
	if rate <= 0 {
		return nil, errors.New("throttle: rate must be positive")
	}
	return &VirtualClock{rate: rate}, nil
}

// Acquire accounts n operations and returns the virtual time at which
// they complete.
func (v *VirtualClock) Acquire(n int64) float64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	if n > 0 {
		v.t += float64(n) / v.rate
	}
	return v.t
}

// Elapsed returns the current virtual time in seconds.
func (v *VirtualClock) Elapsed() float64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.t
}
