// Package throttle provides flow-control primitives: a token-bucket rate
// limiter for simulated processor heterogeneity and a bounded admission
// gate for the serving layer.
//
// The paper controlled processor speed ratios with a /proc-based CPU
// limiter that let a process run until it consumed its CPU-time fraction
// and then put it to sleep (Section X-B); Limiter reproduces that
// behaviour for goroutine "processors": work is metered in abstract
// operations and the goroutine sleeps whenever it runs ahead of its
// allotted rate.
//
// Gate is the admission-control counterpart: a fixed number of
// concurrency slots plus a bounded wait queue. Callers beyond both
// bounds are shed immediately with ErrSaturated instead of queueing
// without limit — the load-shedding discipline pland uses to stay
// responsive under overload.
package throttle

import (
	"context"
	"errors"
	"sync"
	"time"
)

// Limiter meters operations at a fixed rate. The zero value is unusable;
// use New.
type Limiter struct {
	mu      sync.Mutex
	rate    float64 // operations per second
	started time.Time
	used    float64 // operations consumed so far
	now     func() time.Time
	// sleep, when non-nil (tests), replaces the interruptible timer wait.
	sleep func(time.Duration)
}

// New returns a limiter admitting rate operations per second.
func New(rate float64) (*Limiter, error) {
	if rate <= 0 {
		return nil, errors.New("throttle: rate must be positive")
	}
	return &Limiter{
		rate: rate,
		now:  time.Now,
	}, nil
}

// MustNew is New that panics on error.
func MustNew(rate float64) *Limiter {
	l, err := New(rate)
	if err != nil {
		panic(err)
	}
	return l
}

// Rate returns the configured operations per second.
func (l *Limiter) Rate() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rate
}

// Acquire consumes n operations, sleeping as needed so that consumption
// never runs ahead of the configured rate. The first call starts the
// clock.
func (l *Limiter) Acquire(n int64) {
	l.AcquireContext(context.Background(), n)
}

// AcquireContext is Acquire with an interruptible sleep: a paced
// goroutine parked mid-wait wakes immediately when ctx is cancelled and
// returns ctx's error. The n operations stay consumed either way — a
// cancelled waiter has already been admitted against the budget, and a
// subsequent resume at the same rate accounts for them.
func (l *Limiter) AcquireContext(ctx context.Context, n int64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if n <= 0 {
		return nil
	}
	l.mu.Lock()
	if l.started.IsZero() {
		l.started = l.now()
	}
	l.used += float64(n)
	due := l.started.Add(time.Duration(l.used / l.rate * float64(time.Second)))
	wait := due.Sub(l.now())
	sleep := l.sleep
	l.mu.Unlock()
	if wait <= 0 {
		return nil
	}
	if sleep != nil {
		// Test clock: not interruptible, but the fake never really parks.
		sleep(wait)
		return ctx.Err()
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// Used returns the operations consumed so far.
func (l *Limiter) Used() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.used
}

// ErrSaturated reports an admission attempt against a Gate whose
// concurrency slots and wait queue are both full. Callers translate it
// into backpressure (HTTP 429 + Retry-After).
var ErrSaturated = errors.New("throttle: gate saturated")

// Gate is a bounded admission controller: at most Slots callers run
// concurrently, at most Queue more wait for a slot, and any caller
// beyond that is rejected immediately with ErrSaturated. The zero value
// is unusable; use NewGate.
type Gate struct {
	mu      sync.Mutex
	waiting int
	queue   int
	slots   chan struct{}
}

// NewGate returns a gate admitting slots concurrent holders with a wait
// queue of queue callers. queue may be 0 (no waiting: full means shed).
func NewGate(slots, queue int) (*Gate, error) {
	if slots <= 0 {
		return nil, errors.New("throttle: gate slots must be positive")
	}
	if queue < 0 {
		return nil, errors.New("throttle: gate queue must be non-negative")
	}
	return &Gate{queue: queue, slots: make(chan struct{}, slots)}, nil
}

// Acquire claims a slot, waiting in the bounded queue if none is free.
// It returns ErrSaturated without waiting when the queue is full, and
// ctx's error if the context is cancelled first (a pre-cancelled context
// never claims a slot). A nil return must be paired with Release.
func (g *Gate) Acquire(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	// Fast path: free slot, no queueing.
	select {
	case g.slots <- struct{}{}:
		return nil
	default:
	}
	g.mu.Lock()
	if g.waiting >= g.queue {
		g.mu.Unlock()
		return ErrSaturated
	}
	g.waiting++
	g.mu.Unlock()
	defer func() {
		g.mu.Lock()
		g.waiting--
		g.mu.Unlock()
	}()
	select {
	case g.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release frees a slot claimed by a successful Acquire. Releasing more
// than was acquired panics: it always indicates a caller bug.
func (g *Gate) Release() {
	select {
	case <-g.slots:
	default:
		panic("throttle: Gate.Release without matching Acquire")
	}
}

// InUse returns the number of currently held slots.
func (g *Gate) InUse() int { return len(g.slots) }

// Slots returns the gate's concurrency capacity.
func (g *Gate) Slots() int { return cap(g.slots) }

// Queue returns the gate's wait-queue capacity.
func (g *Gate) Queue() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.queue
}

// Waiting returns the number of callers parked in the wait queue.
func (g *Gate) Waiting() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.waiting
}

// VirtualClock meters the same token-bucket arithmetic without real
// sleeping: Acquire advances a virtual time instead. It lets the executor
// report the timings a paced run would produce while running at full
// machine speed.
type VirtualClock struct {
	mu   sync.Mutex
	rate float64
	t    float64 // virtual seconds elapsed
}

// NewVirtual returns a virtual clock at the given operation rate.
func NewVirtual(rate float64) (*VirtualClock, error) {
	if rate <= 0 {
		return nil, errors.New("throttle: rate must be positive")
	}
	return &VirtualClock{rate: rate}, nil
}

// Acquire accounts n operations and returns the virtual time at which
// they complete.
func (v *VirtualClock) Acquire(n int64) float64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	if n > 0 {
		v.t += float64(n) / v.rate
	}
	return v.t
}

// Elapsed returns the current virtual time in seconds.
func (v *VirtualClock) Elapsed() float64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.t
}
