package throttle

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("zero rate should error")
	}
	if _, err := New(-5); err == nil {
		t.Error("negative rate should error")
	}
	l, err := New(100)
	if err != nil || l.Rate() != 100 {
		t.Fatalf("New(100): %v %v", l, err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew(0) should panic")
		}
	}()
	MustNew(0)
}

func TestAcquirePacing(t *testing.T) {
	// Fake clock: capture sleeps instead of waiting.
	l := MustNew(1000)             // 1000 ops/s
	now := time.Unix(1_000_000, 0) // nonzero: the zero Time is the "not started" sentinel
	var slept time.Duration
	l.now = func() time.Time { return now }
	l.sleep = func(d time.Duration) { slept += d; now = now.Add(d) }

	l.Acquire(500) // 0.5s worth
	if slept < 450*time.Millisecond || slept > 550*time.Millisecond {
		t.Fatalf("slept %v, want ≈ 500ms", slept)
	}
	l.Acquire(500)
	if slept < 950*time.Millisecond || slept > 1050*time.Millisecond {
		t.Fatalf("after 1000 ops slept %v, want ≈ 1s", slept)
	}
	if l.Used() != 1000 {
		t.Fatalf("Used = %v", l.Used())
	}
}

func TestAcquireZeroNoop(t *testing.T) {
	l := MustNew(10)
	l.Acquire(0)
	l.Acquire(-3)
	if l.Used() != 0 {
		t.Fatal("non-positive acquire should not consume")
	}
}

func TestAcquireNoSleepWhenBehind(t *testing.T) {
	l := MustNew(1e12) // effectively unlimited
	slept := false
	l.sleep = func(time.Duration) { slept = true }
	l.Acquire(1000)
	if slept {
		t.Fatal("should not sleep at an unlimited rate")
	}
}

func TestAcquireConcurrent(t *testing.T) {
	l := MustNew(1e9)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Acquire(10)
			}
		}()
	}
	wg.Wait()
	if l.Used() != 8000 {
		t.Fatalf("Used = %v, want 8000", l.Used())
	}
}

func TestAcquireContextCancelledBeforeWait(t *testing.T) {
	l := MustNew(10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := l.AcquireContext(ctx, 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if l.Used() != 0 {
		t.Fatal("a pre-cancelled acquire must not consume tokens")
	}
}

func TestAcquireContextCancelMidWait(t *testing.T) {
	// 1 op/s: acquiring 1000 ops would park for ~1000s. Cancellation must
	// wake the waiter long before the timer fires.
	l := MustNew(1)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- l.AcquireContext(ctx, 1000) }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled AcquireContext never returned")
	}
	if l.Used() != 1000 {
		t.Fatalf("Used = %v; cancelled waiters stay accounted", l.Used())
	}
}

// TestAcquireConcurrentFakeClock hammers the limiter from many goroutines
// under a shared fake clock — the race detector checks the clock and the
// limiter's internal state are accessed safely, and the total virtual
// sleep must equal the deterministic pacing debt regardless of
// interleaving.
func TestAcquireConcurrentFakeClock(t *testing.T) {
	l := MustNew(1000) // 1000 ops/s
	var mu sync.Mutex
	now := time.Unix(1_000_000, 0)
	var sleptNanos int64
	l.now = func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	l.sleep = func(d time.Duration) {
		atomic.AddInt64(&sleptNanos, int64(d))
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}

	const workers, perWorker, chunk = 8, 50, 10
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if err := l.AcquireContext(context.Background(), chunk); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := l.Used(); got != workers*perWorker*chunk {
		t.Fatalf("Used = %v, want %d", got, workers*perWorker*chunk)
	}
	// 4000 ops at 1000 ops/s = 4s of pacing debt. Concurrent sleepers may
	// overshoot (waits computed against a stale clock), but the final
	// acquire always leaves the clock at or past its own due time, so the
	// total virtual sleep is at least the debt.
	total := time.Duration(atomic.LoadInt64(&sleptNanos))
	if total < 3900*time.Millisecond {
		t.Fatalf("total virtual sleep %v, want ≥ 4s of pacing debt", total)
	}
}

func TestGateValidation(t *testing.T) {
	if _, err := NewGate(0, 1); err == nil {
		t.Error("zero slots should error")
	}
	if _, err := NewGate(2, -1); err == nil {
		t.Error("negative queue should error")
	}
	if g, err := NewGate(2, 0); err != nil || g == nil {
		t.Fatalf("NewGate(2, 0): %v %v", g, err)
	}
}

func TestGateShedsWhenSaturated(t *testing.T) {
	g, err := NewGate(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := g.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	// Slot held, queue size 0: the next acquire must shed immediately,
	// not block.
	if err := g.Acquire(ctx); !errors.Is(err, ErrSaturated) {
		t.Fatalf("err = %v, want ErrSaturated", err)
	}
	g.Release()
	if err := g.Acquire(ctx); err != nil {
		t.Fatalf("after release: %v", err)
	}
	g.Release()
}

func TestGateQueueFullSheds(t *testing.T) {
	g, err := NewGate(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := g.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	// Fill the one queue slot with a parked waiter.
	waiterIn := make(chan error, 1)
	go func() { waiterIn <- g.Acquire(ctx) }()
	deadline := time.Now().Add(2 * time.Second)
	for g.Waiting() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	// Queue full: the third caller is shed.
	if err := g.Acquire(ctx); !errors.Is(err, ErrSaturated) {
		t.Fatalf("err = %v, want ErrSaturated", err)
	}
	// Releasing the slot admits the parked waiter.
	g.Release()
	select {
	case err := <-waiterIn:
		if err != nil {
			t.Fatalf("queued waiter: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued waiter never admitted")
	}
	g.Release()
}

func TestGateAcquireCancelled(t *testing.T) {
	g, err := NewGate(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Pre-cancelled context: never claims a slot.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := g.Acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if g.InUse() != 0 {
		t.Fatal("pre-cancelled acquire claimed a slot")
	}
	// A waiter cancelled mid-queue frees its queue position.
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	wctx, wcancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- g.Acquire(wctx) }()
	deadline := time.Now().Add(2 * time.Second)
	for g.Waiting() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	wcancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled waiter never returned")
	}
	deadline = time.Now().Add(2 * time.Second)
	for g.Waiting() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("cancelled waiter still counted as queued")
		}
		time.Sleep(time.Millisecond)
	}
	g.Release()
}

func TestGateReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unbalanced Release should panic")
		}
	}()
	g, _ := NewGate(1, 0)
	g.Release()
}

// TestGateConcurrent hammers the gate from many goroutines under the race
// detector: the concurrency bound must never be exceeded, shed callers
// must not leak slots, and everything admitted must complete.
func TestGateConcurrent(t *testing.T) {
	const slots, queue, workers, iters = 3, 4, 16, 50
	g, err := NewGate(slots, queue)
	if err != nil {
		t.Fatal(err)
	}
	var inside, maxSeen, admitted, shed int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				err := g.Acquire(context.Background())
				if errors.Is(err, ErrSaturated) {
					atomic.AddInt64(&shed, 1)
					continue
				}
				if err != nil {
					t.Error(err)
					return
				}
				cur := atomic.AddInt64(&inside, 1)
				for {
					old := atomic.LoadInt64(&maxSeen)
					if cur <= old || atomic.CompareAndSwapInt64(&maxSeen, old, cur) {
						break
					}
				}
				atomic.AddInt64(&admitted, 1)
				time.Sleep(time.Duration(i%3) * 100 * time.Microsecond)
				atomic.AddInt64(&inside, -1)
				g.Release()
			}
		}()
	}
	wg.Wait()
	if maxSeen > slots {
		t.Fatalf("observed %d concurrent holders, bound is %d", maxSeen, slots)
	}
	if g.InUse() != 0 || g.Waiting() != 0 {
		t.Fatalf("gate not drained: inUse=%d waiting=%d", g.InUse(), g.Waiting())
	}
	if admitted == 0 {
		t.Fatal("nothing admitted")
	}
	t.Logf("admitted %d, shed %d, peak concurrency %d", admitted, shed, maxSeen)
}

func TestVirtualClock(t *testing.T) {
	v, err := NewVirtual(100)
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Acquire(50); got != 0.5 {
		t.Fatalf("Acquire(50) = %v, want 0.5", got)
	}
	if got := v.Acquire(50); got != 1.0 {
		t.Fatalf("second Acquire = %v, want 1.0", got)
	}
	if v.Elapsed() != 1.0 {
		t.Fatalf("Elapsed = %v", v.Elapsed())
	}
	v.Acquire(-1)
	if v.Elapsed() != 1.0 {
		t.Fatal("negative acquire must not advance the clock")
	}
}

func TestNewVirtualValidation(t *testing.T) {
	if _, err := NewVirtual(0); err == nil {
		t.Error("zero rate should error")
	}
}

func TestRealPacingSmoke(t *testing.T) {
	// A small real-time smoke test: 2e6 ops at 1e7 ops/s ≈ 200ms.
	if testing.Short() {
		t.Skip("timing test")
	}
	l := MustNew(1e7)
	start := time.Now()
	for i := 0; i < 20; i++ {
		l.Acquire(1e5)
	}
	elapsed := time.Since(start)
	if elapsed < 150*time.Millisecond || elapsed > 800*time.Millisecond {
		t.Errorf("paced run took %v, want ≈ 200ms", elapsed)
	}
}
