package push

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/partition"
)

func ratio211() partition.Ratio { return partition.MustRatio(2, 1, 1) }

func TestAttemptOnPFails(t *testing.T) {
	g := partition.NewGrid(10)
	if _, ok := Attempt(g, partition.P, geom.Down, TypeOne, nil); ok {
		t.Fatal("the fastest processor must never be pushed")
	}
}

func TestAttemptEmptyProcessorFails(t *testing.T) {
	g := partition.NewGrid(10) // R owns nothing
	for _, d := range geom.AllDirections {
		if _, ok := AttemptAny(g, partition.R, d, nil, nil); ok {
			t.Fatalf("push of empty processor succeeded in %v", d)
		}
	}
}

func TestAttemptSolidRectangleFails(t *testing.T) {
	// A processor whose region exactly fills its enclosing rectangle has
	// no interior slots: no Push is possible in any direction.
	g := partition.NewGrid(12)
	g.FillRect(geom.NewRect(3, 3, 7, 9), R())
	for _, d := range geom.AllDirections {
		for _, ty := range AllTypes {
			before := g.Fingerprint()
			if _, ok := Attempt(g, partition.R, d, ty, nil); ok {
				t.Fatalf("push of solid rectangle succeeded: %v %v", d, ty)
			}
			if g.Fingerprint() != before {
				t.Fatalf("failed push mutated the grid (%v %v)", d, ty)
			}
		}
	}
}

func R() partition.Proc { return partition.R }
func S() partition.Proc { return partition.S }

func TestPushDownMovesEdgeDown(t *testing.T) {
	// R occupies a 3×6 block with a ragged extra top row; its enclosing
	// rectangle's top row can be cleaned downward into the P slack.
	g := partition.NewGrid(12)
	g.FillRect(geom.NewRect(4, 2, 7, 8), R()) // 3 rows
	// Dirty top row of a taller rectangle: two R cells in row 3.
	g.Set(3, 2, R())
	g.Set(3, 3, R())
	// Give the rectangle interior some P holes so the push has slots.
	g.Set(5, 4, partition.P)
	g.Set(5, 5, partition.P)
	rectBefore := g.EnclosingRect(R())
	vocBefore := g.VoC()

	res, ok := AttemptAny(g, R(), geom.Down, nil, nil)
	if !ok {
		t.Fatal("expected a legal Push Down")
	}
	if res.Moved != 2 {
		t.Errorf("moved %d, want 2", res.Moved)
	}
	rectAfter := g.EnclosingRect(R())
	if rectAfter.Top != rectBefore.Top+1 {
		t.Errorf("top edge should advance: %v -> %v", rectBefore, rectAfter)
	}
	if g.VoC() > vocBefore {
		t.Errorf("VoC rose %d -> %d", vocBefore, g.VoC())
	}
	if g.VoC()-vocBefore != res.DeltaVoC {
		t.Errorf("reported delta %d, actual %d", res.DeltaVoC, g.VoC()-vocBefore)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPushPreservesCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := partition.NewRandom(24, ratio211(), rng)
	var before [partition.NumProcs]int
	for _, p := range partition.Procs {
		before[p] = g.Count(p)
	}
	pushes := 0
	for i := 0; i < 200; i++ {
		p := partition.Procs[rng.Intn(2)] // R or S
		d := geom.AllDirections[rng.Intn(4)]
		if _, ok := AttemptAny(g, p, d, nil, nil); ok {
			pushes++
		}
		for _, q := range partition.Procs {
			if g.Count(q) != before[q] {
				t.Fatalf("push changed Count(%v): %d -> %d", q, before[q], g.Count(q))
			}
		}
	}
	if pushes == 0 {
		t.Fatal("expected at least one successful push")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPushNeverIncreasesVoC(t *testing.T) {
	// The paper's core guarantee, exercised across ratios and seeds.
	for _, ratio := range partition.PaperRatios[:6] {
		for seed := int64(0); seed < 3; seed++ {
			rng := rand.New(rand.NewSource(seed))
			g := partition.NewRandom(20, ratio, rng)
			voc := g.VoC()
			for i := 0; i < 400; i++ {
				p := partition.Procs[rng.Intn(2)]
				d := geom.AllDirections[rng.Intn(4)]
				ty := AllTypes[rng.Intn(len(AllTypes))]
				res, ok := Attempt(g, p, d, ty, nil)
				if !ok {
					continue
				}
				if g.VoC() > voc {
					t.Fatalf("ratio %v seed %d: VoC rose %d -> %d via %+v", ratio, seed, voc, g.VoC(), res)
				}
				if res.DeltaVoC > 0 {
					t.Fatalf("positive reported delta: %+v", res)
				}
				voc = g.VoC()
			}
		}
	}
}

func TestPushTypeContracts(t *testing.T) {
	// Types 1–4 must strictly decrease VoC; 5–6 may leave it equal.
	rng := rand.New(rand.NewSource(3))
	g := partition.NewRandom(24, ratio211(), rng)
	for i := 0; i < 600; i++ {
		p := partition.Procs[rng.Intn(2)]
		d := geom.AllDirections[rng.Intn(4)]
		ty := AllTypes[rng.Intn(len(AllTypes))]
		res, ok := Attempt(g, p, d, ty, nil)
		if !ok {
			continue
		}
		switch ty {
		case TypeOne, TypeTwo, TypeThree, TypeFour:
			if res.DeltaVoC >= 0 {
				t.Fatalf("%v committed with delta %d", ty, res.DeltaVoC)
			}
		default:
			if res.DeltaVoC > 0 {
				t.Fatalf("%v committed with delta %d", ty, res.DeltaVoC)
			}
		}
	}
}

func TestActiveRectangleNeverGrows(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := partition.NewRandom(22, ratio211(), rng)
	for i := 0; i < 400; i++ {
		p := partition.Procs[rng.Intn(2)]
		d := geom.AllDirections[rng.Intn(4)]
		before := g.EnclosingRect(p)
		if _, ok := AttemptAny(g, p, d, nil, nil); ok {
			after := g.EnclosingRect(p)
			if !before.ContainsRect(after) {
				t.Fatalf("active rect grew: %v -> %v", before, after)
			}
			if after.Eq(before) {
				t.Fatalf("successful push left active rect unchanged: %v", before)
			}
		}
	}
}

func TestFailedAttemptIsByteExactNoOp(t *testing.T) {
	// Failure injection: exhaust pushes, then verify every further attempt
	// leaves the grid byte-for-byte untouched (rollback correctness).
	res, err := Run(Config{N: 18, Ratio: ratio211(), Seed: 5, Beautify: true})
	if err != nil {
		t.Fatal(err)
	}
	g := res.Final
	// Drain any remaining pushes with the full plan.
	for {
		moved := false
		for _, p := range [2]partition.Proc{partition.R, partition.S} {
			for _, d := range geom.AllDirections {
				if _, ok := AttemptAny(g, p, d, nil, nil); ok {
					moved = true
				}
			}
		}
		if !moved {
			break
		}
	}
	snap := g.Encode()
	for _, p := range [2]partition.Proc{partition.R, partition.S} {
		for _, d := range geom.AllDirections {
			for _, ty := range AllTypes {
				if _, ok := Attempt(g, p, d, ty, nil); ok {
					t.Fatalf("grid was supposed to be fully condensed (%v %v %v)", p, d, ty)
				}
				now := g.Encode()
				for i := range snap {
					if snap[i] != now[i] {
						t.Fatalf("failed attempt mutated cell %d (%v %v %v)", i, p, d, ty)
					}
				}
			}
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAcceptVeto(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := partition.NewRandom(20, ratio211(), rng)
	before := g.Fingerprint()
	vetoed := false
	res, ok := AttemptAny(g, partition.R, geom.Down, nil, func(*partition.Grid) bool {
		vetoed = true
		return false
	})
	if ok {
		t.Fatalf("vetoed push reported success: %+v", res)
	}
	if !vetoed {
		t.Skip("no push was available to veto")
	}
	if g.Fingerprint() != before {
		t.Fatal("vetoed push left mutations behind")
	}
}

func TestRunConvergesAllPaperRatios(t *testing.T) {
	for _, ratio := range partition.PaperRatios {
		res, err := Run(Config{N: 30, Ratio: ratio, Seed: 7})
		if err != nil {
			t.Fatalf("ratio %v: %v", ratio, err)
		}
		if !res.Converged {
			t.Errorf("ratio %v: did not converge in %d steps", ratio, res.Steps)
		}
		if res.FinalVoC > res.InitialVoC {
			t.Errorf("ratio %v: VoC rose", ratio)
		}
		if err := res.Final.Validate(); err != nil {
			t.Errorf("ratio %v: %v", ratio, err)
		}
		counts := ratio.Counts(30)
		for _, p := range partition.Procs {
			if res.Final.Count(p) != counts[p] {
				t.Errorf("ratio %v: count(%v) drifted", ratio, p)
			}
		}
	}
}

func TestRunFixedPointIsCondensed(t *testing.T) {
	res, err := Run(Config{N: 26, Ratio: partition.MustRatio(3, 2, 1), Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !Condensed(res.Final, res.Plan, nil) {
		t.Fatal("Run returned a state that still admits a push within its plan")
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	a, err := Run(Config{N: 24, Ratio: ratio211(), Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{N: 24, Ratio: ratio211(), Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Final.Equal(b.Final) || a.Steps != b.Steps {
		t.Fatal("same seed must reproduce the same run")
	}
}

func TestRunFromSuppliedStart(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	start := partition.NewRandom(20, ratio211(), rng)
	orig := start.Clone()
	res, err := Run(Config{N: 20, Ratio: ratio211(), Seed: 1, Start: start})
	if err != nil {
		t.Fatal(err)
	}
	if !start.Equal(orig) {
		t.Fatal("Run must not mutate the supplied start grid")
	}
	if res.InitialVoC != orig.VoC() {
		t.Fatal("InitialVoC should reflect the supplied start")
	}
}

func TestRunArgumentValidation(t *testing.T) {
	if _, err := Run(Config{N: 1, Ratio: ratio211()}); err == nil {
		t.Error("N=1 should error")
	}
	if _, err := Run(Config{N: 10, Ratio: partition.Ratio{}}); err == nil {
		t.Error("zero ratio should error")
	}
	small := partition.NewGrid(5)
	if _, err := Run(Config{N: 10, Ratio: ratio211(), Start: small}); err == nil {
		t.Error("mismatched start size should error")
	}
}

func TestRunSnapshotHook(t *testing.T) {
	var steps []int
	res, err := Run(Config{
		N: 20, Ratio: ratio211(), Seed: 3,
		Snapshot: func(step int, g *partition.Grid) {
			steps = append(steps, step)
			if g == nil {
				t.Fatal("nil grid in snapshot")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != res.Steps+1 {
		t.Fatalf("snapshot called %d times, want %d (steps+start)", len(steps), res.Steps+1)
	}
	if steps[0] != 0 {
		t.Fatal("first snapshot must be the start state")
	}
	for i := 1; i < len(steps); i++ {
		if steps[i] != steps[i-1]+1 {
			t.Fatal("snapshot steps must be consecutive")
		}
	}
}

func TestRunClusteredStart(t *testing.T) {
	res, err := Run(Config{N: 24, Ratio: ratio211(), Seed: 2, Clustered: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("clustered run did not converge")
	}
}

func TestBeautifyNeverWorsens(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		plain, err := Run(Config{N: 24, Ratio: ratio211(), Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		pretty, err := Run(Config{N: 24, Ratio: ratio211(), Seed: seed, Beautify: true})
		if err != nil {
			t.Fatal(err)
		}
		if pretty.FinalVoC > plain.FinalVoC {
			t.Errorf("seed %d: beautify raised VoC %d -> %d", seed, plain.FinalVoC, pretty.FinalVoC)
		}
	}
}

func TestMaxStepsBackstop(t *testing.T) {
	res, err := Run(Config{N: 24, Ratio: ratio211(), Seed: 1, MaxSteps: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("3 steps cannot be enough to converge from a random start")
	}
	if res.Steps != 3 {
		t.Fatalf("steps = %d, want exactly MaxSteps", res.Steps)
	}
}

func TestTypeStrings(t *testing.T) {
	if TypeOne.String() != "Type1" || TypeSix.String() != "Type6" {
		t.Error("type names")
	}
	if Type(0).String() != "Type(0)" {
		t.Error("invalid type name")
	}
}

func TestQuickPushInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := partition.NewRandom(14, ratio211(), rng)
		voc := g.VoC()
		for i := 0; i < 60; i++ {
			p := partition.Procs[rng.Intn(2)]
			d := geom.AllDirections[rng.Intn(4)]
			ty := AllTypes[rng.Intn(len(AllTypes))]
			Attempt(g, p, d, ty, nil)
			if g.VoC() > voc {
				return false
			}
			voc = g.VoC()
		}
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRunDFA(b *testing.B) {
	for _, n := range []int{40, 80} {
		b.Run("n"+string(rune('0'+n/40)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Run(Config{N: n, Ratio: ratio211(), Seed: int64(i)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAttempt(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := partition.NewRandom(100, ratio211(), rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := partition.Procs[i%2]
		d := geom.AllDirections[i%4]
		AttemptAny(g, p, d, nil, nil)
	}
}
