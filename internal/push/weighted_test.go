package push

import (
	"math/rand"
	"testing"

	"repro/internal/partition"
)

// randomWeights draws a positive weight matrix like the one a random
// LinkMatrix induces: each unordered pair gets a class price in
// [1, 100], with occasional asymmetric splits.
func randomWeights(rng *rand.Rand) partition.Weights {
	var w partition.Weights
	for _, pair := range [3][2]partition.Proc{
		{partition.P, partition.R}, {partition.P, partition.S}, {partition.R, partition.S},
	} {
		f := 1 + 99*rng.Float64()
		r := f
		if rng.Intn(3) == 0 { // asymmetric duplex
			r = 1 + 99*rng.Float64()
		}
		w[pair[0]][pair[1]] = f
		w[pair[1]][pair[0]] = r
	}
	return w
}

// TestWeightedCondenseMonotone is the memoisation-soundness property test
// of the cost-model refactor: under random LinkMatrix-style weight
// matrices, the cost-weighted VoC must be monotone non-increasing across
// every committed Push of a condensation run. The failed-probe memo and
// the plateau-cycle sets key on Zobrist fingerprints, and their
// correctness argument is exactly this monotonicity (a revisited
// fingerprint implies the threshold never dropped in between) — so a
// single increase here would mean the memo can go stale and the search
// can diverge. Runs under -race in verify.sh.
func TestWeightedCondenseMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 30; trial++ {
		w := randomWeights(rng)
		n := 12 + rng.Intn(20)
		ratio := partition.PaperRatios[rng.Intn(len(partition.PaperRatios))]
		seed := rng.Int63()
		last := -1.0
		violated := false
		cfg := Config{
			N:           n,
			Ratio:       ratio,
			Seed:        seed,
			CostWeights: &w,
			Snapshot: func(step int, g *partition.Grid) {
				wc := g.WeightedVoC(w)
				if step > 0 && wc > last {
					t.Errorf("trial %d (n=%d %v seed=%d): weighted VoC rose %v → %v at step %d",
						trial, n, ratio, seed, last, wc, step)
					violated = true
				}
				last = wc
			},
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if violated {
			return
		}
		if !res.Converged {
			t.Fatalf("trial %d: weighted run did not converge in %d steps", trial, res.Steps)
		}
		if got := res.Final.WeightedVoC(w); got != last {
			t.Fatalf("trial %d: final weighted VoC %v, last snapshot %v", trial, got, last)
		}
	}
}

// TestWeightedUniformMatchesInteger pins the routing contract: an
// all-ones weight matrix takes the bit-exact integer path, so a weighted
// run and a legacy run with the same seed produce identical partitions.
func TestWeightedUniformMatchesInteger(t *testing.T) {
	uniform := partition.UniformWeights()
	for seed := int64(1); seed <= 5; seed++ {
		base := Config{N: 20, Ratio: partition.Ratio{Pr: 4, Rr: 2, Sr: 1}, Seed: seed}
		weightedCfg := base
		weightedCfg.CostWeights = &uniform
		want, err := Run(base)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Run(weightedCfg)
		if err != nil {
			t.Fatal(err)
		}
		if got.Final.Fingerprint() != want.Final.Fingerprint() || got.Steps != want.Steps {
			t.Fatalf("seed %d: uniform-weighted run diverged from legacy (steps %d vs %d)",
				seed, got.Steps, want.Steps)
		}
	}
}

// TestWeightedVetoChangesSearch proves the weighted acceptance test is
// live, not decorative: the plain search's trajectory does raise the
// weighted cost at some step (raw-VoC drops can be weighted increases),
// and on those seeds the weighted run — whose trajectory is monotone by
// the veto — must actually diverge from the plain run.
func TestWeightedVetoChangesSearch(t *testing.T) {
	w := partition.UniformWeights()
	w[partition.R][partition.S] = 50
	w[partition.S][partition.R] = 50
	plainRose, diverged := false, false
	for seed := int64(1); seed <= 20 && !(plainRose && diverged); seed++ {
		base := Config{N: 24, Ratio: partition.Ratio{Pr: 3, Rr: 2, Sr: 1}, Seed: seed}
		rose := false
		last := -1.0
		base.Snapshot = func(step int, g *partition.Grid) {
			wc := g.WeightedVoC(w)
			if step > 0 && wc > last {
				rose = true
			}
			last = wc
		}
		plain, err := Run(base)
		if err != nil {
			t.Fatal(err)
		}
		if !rose {
			continue
		}
		plainRose = true
		weightedCfg := Config{N: base.N, Ratio: base.Ratio, Seed: seed, CostWeights: &w}
		weighted, err := Run(weightedCfg)
		if err != nil {
			t.Fatal(err)
		}
		if weighted.Final.Fingerprint() != plain.Final.Fingerprint() || weighted.Steps != plain.Steps {
			diverged = true
		}
	}
	if !plainRose {
		t.Fatal("no seed made the plain search raise the weighted cost; test lost its premise")
	}
	if !diverged {
		t.Fatal("weighted acceptance never changed a search outcome on seeds where it must veto")
	}
}

func TestWeightedConfigValidation(t *testing.T) {
	bad := []partition.Weights{
		func() partition.Weights { w := partition.UniformWeights(); w[partition.R][partition.S] = -1; return w }(),
		func() partition.Weights { w := partition.UniformWeights(); w[partition.P][partition.S] = 0; return w }(),
		func() partition.Weights {
			w := partition.UniformWeights()
			z := 0.0
			w[partition.S][partition.P] = z / z
			return w
		}(),
	}
	for i := range bad {
		cfg := Config{N: 8, Ratio: partition.Ratio{Pr: 2, Rr: 1, Sr: 1}, Seed: 1, CostWeights: &bad[i]}
		_, err := Run(cfg)
		if _, ok := err.(*ConfigError); !ok {
			t.Fatalf("case %d: error %v, want *ConfigError", i, err)
		}
	}
}
