package push

import (
	"context"
	"errors"
	"testing"

	"repro/internal/partition"
)

func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, Config{N: 60, Ratio: partition.MustRatio(3, 1, 1), Seed: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunConfigValidationTyped(t *testing.T) {
	var ce *ConfigError
	if _, err := Run(Config{N: 1, Ratio: partition.MustRatio(3, 1, 1)}); !errors.As(err, &ce) {
		t.Fatalf("N=1: err = %v, want *ConfigError", err)
	}
	if ce.Field != "N" {
		t.Fatalf("Field = %q, want N", ce.Field)
	}
	if _, err := Run(Config{N: 20, Ratio: partition.MustRatio(3, 1, 1), MaxSteps: -1}); !errors.As(err, &ce) {
		t.Fatalf("MaxSteps=-1: err = %v, want *ConfigError", err)
	}
}

// TestRunContextMatchesRun pins that the context plumbing did not perturb
// the DFA: a background-context run equals the legacy entry point.
func TestRunContextMatchesRun(t *testing.T) {
	cfg := Config{N: 40, Ratio: partition.MustRatio(5, 2, 1), Seed: 9, Beautify: true}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Steps != b.Steps || a.FinalVoC != b.FinalVoC || a.InitialVoC != b.InitialVoC {
		t.Fatalf("Run and RunContext diverge: %+v vs %+v", a, b)
	}
}
