// Package push implements the paper's primary contribution: the three-
// processor Push operation (Section IV-A) and the computer-aided search
// program built on it (Sections V–VI).
//
// A Push is an atomic transformation of a partition shape q into q₁ that
// cleans one edge row/column of the active processor's enclosing rectangle,
// relocating the active processor's elements deeper into its rectangle and
// handing the displaced elements' owners the vacated edge cells. Six Push
// types (Section IV-A.1–6) impose progressively weaker occupancy
// constraints; all of them guarantee the Volume of Communication (Eq 1)
// never increases — types 1–4 strictly decrease it, types 5–6 leave it
// unchanged at worst. The engine enforces this guarantee mechanically: a
// tentative Push whose recomputed ΔVoC violates its type's contract is
// rolled back and reported illegal, as is one that enlarges any
// processor's enclosing rectangle.
package push

import (
	"fmt"
	"sync"

	"repro/internal/geom"
	"repro/internal/partition"
)

// Type identifies one of the six Push legality regimes of Section IV-A.
type Type uint8

const (
	// TypeOne strictly decreases VoC: the active processor lands only in
	// rows/columns it already occupies, and the displaced processor must
	// already occupy the cleaned row and the receiving column.
	TypeOne Type = 1 + iota
	// TypeTwo strictly decreases VoC but lets the active processor dirty
	// l fresh rows/columns provided at least l are cleaned; the displaced
	// processor constraint stays strict.
	TypeTwo
	// TypeThree strictly decreases VoC with the strict placement rule but
	// a relaxed displaced-processor rule.
	TypeThree
	// TypeFour strictly decreases VoC with both rules relaxed.
	TypeFour
	// TypeFive leaves VoC unchanged at worst; at most one fresh
	// row/column may be dirtied; strict displaced-processor rule.
	TypeFive
	// TypeSix leaves VoC unchanged at worst with both rules relaxed.
	TypeSix
)

// AllTypes lists the types in the order the search program tries them:
// strongest (guaranteed progress) first.
var AllTypes = []Type{TypeOne, TypeTwo, TypeThree, TypeFour, TypeFive, TypeSix}

func (t Type) String() string {
	if t >= TypeOne && t <= TypeSix {
		return fmt.Sprintf("Type%d", uint8(t))
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// params returns (dirtyLimit, ownerStrict, strictDecrease) for each type.
//   - dirtyLimit: how many rows/columns not previously containing the
//     active processor its elements may move into (-1 = unlimited, the
//     net effect being guarded by the ΔVoC contract);
//   - ownerStrict: whether the displaced processor must already occupy the
//     cleaned row and the receiving column;
//   - strictDecrease: whether the committed Push must strictly lower VoC.
func (t Type) params() (dirtyLimit int, ownerStrict, strictDecrease bool) {
	switch t {
	case TypeOne:
		return 0, true, true
	case TypeTwo:
		return -1, true, true
	case TypeThree:
		return 0, false, true
	case TypeFour:
		return -1, false, true
	case TypeFive:
		return 1, true, false
	case TypeSix:
		return -1, false, false
	}
	panic("push: invalid type")
}

// Result describes a committed Push.
type Result struct {
	Active   partition.Proc
	Dir      geom.Direction
	Type     Type
	Moved    int   // elements of the active processor relocated
	DeltaVoC int64 // VoC(q₁) − VoC(q), never positive
}

// AcceptFunc lets the caller veto a fully-formed Push just before it
// commits (the DFA runner uses this to break VoC-plateau cycles). The grid
// passed in is the tentative post-Push state; returning false rolls the
// Push back.
type AcceptFunc func(g *partition.Grid) bool

// vgrid adapts a Grid to the logical coordinate system of a View, in which
// every Push is a Push Down: the cleaned edge is the logical top row of
// the active processor's enclosing rectangle and elements move to higher
// logical rows.
type vgrid struct {
	g *partition.Grid
	v geom.View
}

func (vg vgrid) set(i, j int, p partition.Proc) {
	pi, pj := vg.v.Apply(i, j)
	vg.g.Set(pi, pj, p)
}

func (vg vgrid) rect(p partition.Proc) geom.Rect {
	return vg.v.InvertRect(vg.g.EnclosingRect(p))
}

// undoLog records logical-cell mutations for rollback.
type undoLog struct {
	cells []undoCell
}

type undoCell struct {
	i, j int
	prev partition.Proc
}

func (u *undoLog) record(i, j int, prev partition.Proc) {
	u.cells = append(u.cells, undoCell{i, j, prev})
}

func (u *undoLog) rollback(vg vgrid) {
	for k := len(u.cells) - 1; k >= 0; k-- {
		c := u.cells[k]
		vg.set(c.i, c.j, c.prev)
	}
	u.cells = u.cells[:0]
}

// cursor is a monotone scan position over the interior rows of an
// enclosing rectangle (everything strictly below the cleaned edge).
type cursor struct {
	g, h   int
	bounds geom.Rect
}

func newCursor(rect geom.Rect) cursor {
	return cursor{g: rect.Top + 1, h: rect.Left, bounds: rect}
}

// traceFn, when set by tests, receives diagnostic messages about why
// Attempt rejected a Push.
var traceFn func(format string, args ...any)

func tracef(format string, args ...any) {
	if traceFn != nil {
		traceFn(format, args...)
	}
}

// undoPool recycles undo logs across Attempt calls: the log's backing
// array survives between attempts, so the hot path stops allocating per
// probe.
var undoPool = sync.Pool{New: func() any { return new(undoLog) }}

// Attempt tries a single Push of the given type on the active processor in
// the given direction. On success the grid is mutated and the Result
// describes the transformation; on failure the grid is untouched.
//
// accept may be nil; when non-nil it can veto the Push (see AcceptFunc).
func Attempt(g *partition.Grid, active partition.Proc, dir geom.Direction, t Type, accept AcceptFunc) (Result, bool) {
	if active == partition.P {
		// Only the slower processors are ever pushed (Section VI-C: a
		// partition is condensed when no processor except the largest
		// may be moved).
		return Result{}, false
	}
	dirtyLimit, ownerStrict, strictDecrease := t.params()

	n := g.N()
	v := geom.NewView(n, dir)
	activeRectBefore := g.EnclosingRect(active)
	rect := v.InvertRect(activeRectBefore)
	if rect.IsEmpty() || rect.Height() < 2 {
		// Nothing to clean, or no rows below the edge to receive elements.
		return Result{}, false
	}

	// Resolve the view once into affine coefficients: the physical line of
	// logical row i is fa·i + fb, and the physical row-major cell index of
	// logical (i, j) is ci·i + cj·j + cb. The placement scan below touches
	// O(rectangle area) cells per attempt; paying a geom.View transform per
	// cell dominated the whole search engine before this.
	fa, fb := 1, 0
	if v.Flipped() {
		fa, fb = -1, n-1
	}
	var ci, cj, cb int
	if v.Transposed() {
		ci, cj, cb = fa, n, fb
	} else {
		ci, cj, cb = n*fa, 1, n*fb
	}

	// Raw counter slices, pre-swapped into logical orientation: lrc answers
	// "count of p in logical row i" at lrc[(fa·i+fb)·NumProcs + p], lcc
	// answers the column question at lcc[j·NumProcs + p]. (A transpose swaps
	// the roles of the physical row/column counters; a flip only remaps row
	// indices, which fa/fb already encode. Columns are never flipped —
	// geom.View composes at most one transpose with one vertical flip.)
	cells, rawRowCnt, rawColCnt := g.Raw()
	lrc, lcc := rawRowCnt, rawColCnt
	if v.Transposed() {
		lrc, lcc = rawColCnt, rawRowCnt
	}
	const np = partition.NumProcs
	ai := int(active)

	top := rect.Top
	topBase := (fa*top + fb) * np

	// O(1) rejection: every cell the active processor owns lies inside its
	// enclosing rectangle, so interior slots exist only if the interior
	// holds cells of other processors. A fully condensed (solid-rectangle)
	// region has none, and every Push type fails without any scan — this is
	// the common case once the search nears a fixed point.
	edgeActive := int(lrc[topBase+ai])
	interior := (rect.Height() - 1) * rect.Width()
	if interior == g.Count(active)-edgeActive {
		return Result{}, false
	}

	// Snapshot the invariant inputs.
	vocBefore := g.VoC()
	vg := vgrid{g: g, v: v}
	undo := undoPool.Get().(*undoLog)
	defer func() {
		undo.cells = undo.cells[:0]
		undoPool.Put(undo)
	}()
	moved := 0
	dirtied := 0

	// Three monotone placement cursors, in the spirit of the paper's
	// findTypeOne pseudocode (the search resumes from the last accepted
	// slot, making a whole Push O(area of the enclosing rectangle)).
	// Tiers, tried in order per edge element:
	//
	//   A (strict)  — the active processor lands where it dirties nothing
	//     and the displaced processor already occupies both the cleaned
	//     line and the receiving line: a Type-One-legal elementary swap
	//     that can never raise VoC.
	//   B (amortised) — the displaced processor occupies the receiving
	//     line but perhaps not the cleaned line. The first such swap
	//     dirties the cleaned line once; because legality is evaluated on
	//     the evolving grid, every later swap displacing the same
	//     processor is tier-A. Only meaningful for the relaxed-owner
	//     types (3, 4, 6).
	//   C (typed)   — this type's literal rules.
	//
	// Preferring cheaper tiers keeps the relaxed types from squandering
	// their ΔVoC budget on placements a clean slot could have served,
	// which is what lets the search condense speckled regions instead of
	// declaring them stuck.
	curA := newCursor(rect)
	curB := newCursor(rect)
	curC := newCursor(rect)

	const (
		tierStrict = iota
		tierAmortised
		tierTyped
	)

	// The two processors the active one can displace.
	var o1, o2 partition.Proc
	if active == partition.R {
		o1, o2 = partition.S, partition.P
	} else {
		o1, o2 = partition.R, partition.P
	}
	o1i, o2i := int(o1), int(o2)
	width := rect.Width()

	place := func(j int, cur *cursor, tier int) bool {
		jBase := j * np

		// qual[p] answers "may processor p be displaced from the slot?" for
		// this tier and edge column j — the owner-side legality collapsed
		// into one table lookup per scanned cell. qual[active] stays false,
		// which also handles the skip-own-cells test. Sized 256 and indexed
		// by the raw Proc byte so the compiler drops the bounds check in the
		// scan loops. The table is stable for the whole call: placements
		// mutate the grid only on success, which returns immediately.
		var qual [256]bool
		switch tier {
		case tierStrict:
			qual[o1] = lrc[topBase+o1i] > 0 && lcc[jBase+o1i] > 0
			qual[o2] = lrc[topBase+o2i] > 0 && lcc[jBase+o2i] > 0
		case tierAmortised:
			qual[o1] = lcc[jBase+o1i] > 0
			qual[o2] = lcc[jBase+o2i] > 0
		default: // tierTyped
			if ownerStrict {
				qual[o1] = lrc[topBase+o1i] > 0 && lcc[jBase+o1i] > 0
				qual[o2] = lrc[topBase+o2i] > 0 && lcc[jBase+o2i] > 0
			} else {
				qual[o1], qual[o2] = true, true
			}
		}
		// No displaceable processor qualifies: the scan would reject every
		// remaining cell one by one, so exhausting the cursor in O(1) is
		// observationally identical.
		if !qual[o1] && !qual[o2] {
			cur.g, cur.h = cur.bounds.Bottom, cur.bounds.Left
			return false
		}

		// needClean: this tier only accepts placements with willDirty == 0
		// (tiers A and B always; tier C when the type's dirty budget is 0).
		needClean := tier != tierTyped || dirtyLimit == 0
		// Rows the active processor does not occupy cost at least one fresh
		// line; when the budget cannot absorb that, skip them whole. dirtied
		// is frozen for the duration of one place call (a successful
		// placement returns immediately).
		skipEmptyRows := needClean || (dirtyLimit >= 0 && dirtied+1 > dirtyLimit)

		cg, ch := cur.g, cur.h
		bottom, left, right := cur.bounds.Bottom, cur.bounds.Left, cur.bounds.Right
		var owner partition.Proc
		willDirty := 0
		found := false
	scan:
		for cg < bottom {
			// A row whose every in-rectangle cell is already active has no
			// slot; skip it whole. (All of the active processor's cells lie
			// inside its enclosing rectangle, so the line count equals the
			// in-rectangle count.)
			rowActive := int(lrc[(fa*cg+fb)*np+ai])
			if rowActive == width || (rowActive == 0 && skipEmptyRows) {
				cg, ch = cg+1, left
				continue
			}
			rowHasActive := rowActive > 0
			idx := ci*cg + cb + cj*ch
			colIdx := ch*np + ai
			switch {
			case needClean:
				// rowHasActive holds (empty rows were skipped), so
				// willDirty == 0 reduces to "column ch has active".
				for ; ch < right; ch, idx, colIdx = ch+1, idx+cj, colIdx+np {
					if qual[cells[idx]] && lcc[colIdx] > 0 {
						owner, willDirty, found = cells[idx], 0, true
						break scan
					}
				}
			case dirtyLimit < 0:
				// Unlimited dirt: owner qualification is the whole test.
				for ; ch < right; ch, idx, colIdx = ch+1, idx+cj, colIdx+np {
					if qual[cells[idx]] {
						owner, found = cells[idx], true
						willDirty = 0
						if !rowHasActive {
							willDirty++
						}
						if lcc[colIdx] == 0 {
							willDirty++
						}
						break scan
					}
				}
			default: // 0 < dirtyLimit: count dirt per cell against the budget
				for ; ch < right; ch, idx, colIdx = ch+1, idx+cj, colIdx+np {
					if !qual[cells[idx]] {
						continue
					}
					wd := 0
					if !rowHasActive {
						wd++
					}
					if lcc[colIdx] == 0 {
						wd++
					}
					if dirtied+wd > dirtyLimit {
						continue
					}
					owner, willDirty, found = cells[idx], wd, true
					break scan
				}
			}
			cg, ch = cg+1, left
		}
		if !found {
			cur.g, cur.h = cg, ch
			return false
		}
		undo.record(top, j, active)
		undo.record(cg, ch, owner)
		vg.set(top, j, owner)
		vg.set(cg, ch, active)
		dirtied += willDirty
		moved++
		if ch+1 < right {
			cur.g, cur.h = cg, ch+1
		} else {
			cur.g, cur.h = cg+1, left
		}
		return true
	}

	for j := rect.Left; j < rect.Right; j++ {
		if cells[ci*top+cj*j+cb] != active {
			continue
		}
		if place(j, &curA, tierStrict) {
			continue
		}
		if !ownerStrict && place(j, &curB, tierAmortised) {
			continue
		}
		if !place(j, &curC, tierTyped) {
			tracef("%v %v %v: no slot for edge element at logical (%d,%d)", active, dir, t, top, j)
			undo.rollback(vg)
			return Result{}, false
		}
	}

	if moved == 0 {
		// Edge row held no elements of the active processor: the
		// enclosing rectangle metadata would say otherwise, so this can
		// only happen for height-1 rectangles already excluded; treat as
		// no-op failure for safety.
		return Result{}, false
	}

	// Contract checks on the committed state.
	delta := g.VoC() - vocBefore
	if delta > 0 || (strictDecrease && delta >= 0) {
		tracef("%v %v %v: contract violated, delta=%d moved=%d", active, dir, t, delta, moved)
		undo.rollback(vg)
		return Result{}, false
	}
	// "A Push may not enlarge the enclosing rectangle of any processor"
	// (Section IV-A). For the active processor this is enforced
	// structurally — all placements stay inside its rectangle — and
	// checked here. For the displaced processors Types 3/4/6 explicitly
	// allow occupying previously-clean rows/columns (which can stretch
	// their rectangles) as long as more rows/columns are cleaned than
	// dirtied; that net effect is exactly the ΔVoC contract above, so no
	// separate geometric veto is applied to them.
	if !activeRectBefore.ContainsRect(g.EnclosingRect(active)) {
		undo.rollback(vg)
		return Result{}, false
	}
	if accept != nil && !accept(g) {
		undo.rollback(vg)
		return Result{}, false
	}
	return Result{Active: active, Dir: dir, Type: t, Moved: moved, DeltaVoC: delta}, true
}

// AttemptAny tries the types in order on (active, dir) and commits the
// first legal Push.
func AttemptAny(g *partition.Grid, active partition.Proc, dir geom.Direction, types []Type, accept AcceptFunc) (Result, bool) {
	if len(types) == 0 {
		types = AllTypes
	}
	for _, t := range types {
		if res, ok := Attempt(g, active, dir, t, accept); ok {
			return res, true
		}
	}
	return Result{}, false
}
