package push

import (
	"sync/atomic"

	"repro/internal/metrics"
)

// Package-wide search counters. They are process-global (not per
// Config) because the interesting production question — "what is the
// memo hit rate / plateau-escape rate across everything pland has
// searched?" — spans runs, and the hot path can afford one atomic add
// per run-phase but not a registry lookup per step. RegisterMetrics
// exposes them on a caller's registry as func-backed series, so
// multiple registries (a server's and a debug listener's) can read
// the same tallies.
var (
	runsTotal      atomic.Int64 // completed RunContext calls
	stepsTotal     atomic.Int64 // committed Pushes across all runs
	plateauMoves   atomic.Int64 // committed Pushes with ΔVoC == 0
	plateauEscapes atomic.Int64 // VoC drops that ended a plateau streak
	memoProbes     atomic.Int64 // (proc, direction) probe opportunities
	memoHits       atomic.Int64 // probes skipped by the failed-probe memo

	// Cumulative wall time per phase, in nanoseconds.
	setupNanos    atomic.Int64
	condenseNanos atomic.Int64
	beautifyNanos atomic.Int64
)

// searchTally is one condense loop's local counts, flushed to the
// package counters in a single batch so the inner loop never touches
// shared cache lines.
type searchTally struct {
	plateauMoves   int64
	plateauEscapes int64
	memoProbes     int64
	memoHits       int64
}

func (t *searchTally) flush(steps int) {
	stepsTotal.Add(int64(steps))
	plateauMoves.Add(t.plateauMoves)
	plateauEscapes.Add(t.plateauEscapes)
	memoProbes.Add(t.memoProbes)
	memoHits.Add(t.memoHits)
}

// RegisterMetrics exposes the push engine's counters on reg:
//
//	push_runs_total            completed search runs
//	push_steps_total           committed Pushes
//	push_plateau_moves_total   ΔVoC=0 Pushes (plateau wandering)
//	push_plateau_escapes_total VoC drops that ended a plateau streak
//	push_memo_probes_total     (proc, direction) probe opportunities
//	push_memo_hits_total       probes skipped by the failed-probe memo
//	push_phase_seconds_total{phase=...}  wall time per phase
func RegisterMetrics(reg *metrics.Registry) {
	reg.CounterFunc("push_runs_total",
		"Completed push-search runs.",
		func() float64 { return float64(runsTotal.Load()) })
	reg.CounterFunc("push_steps_total",
		"Committed Pushes across all runs.",
		func() float64 { return float64(stepsTotal.Load()) })
	reg.CounterFunc("push_plateau_moves_total",
		"Committed Pushes that left VoC unchanged.",
		func() float64 { return float64(plateauMoves.Load()) })
	reg.CounterFunc("push_plateau_escapes_total",
		"VoC decreases that ended a plateau streak of one or more moves.",
		func() float64 { return float64(plateauEscapes.Load()) })
	reg.CounterFunc("push_memo_probes_total",
		"Probe opportunities seen by the failed-probe memo.",
		func() float64 { return float64(memoProbes.Load()) })
	reg.CounterFunc("push_memo_hits_total",
		"Probes skipped because the failed-probe memo matched.",
		func() float64 { return float64(memoHits.Load()) })
	for _, p := range []struct {
		phase string
		v     *atomic.Int64
	}{
		{"setup", &setupNanos},
		{"condense", &condenseNanos},
		{"beautify", &beautifyNanos},
	} {
		v := p.v
		reg.LabeledCounterFunc("push_phase_seconds_total",
			"Cumulative wall time spent in each run phase.",
			"phase", p.phase,
			func() float64 { return float64(v.Load()) / 1e9 })
	}
}
