package push

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/geom"
	"repro/internal/partition"
	"repro/internal/trace"
)

// ConfigError reports an invalid Config field. It is returned (never
// panicked) so a study harness can distinguish caller mistakes from run
// failures.
type ConfigError struct {
	Field  string
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("push: invalid %s: %s", e.Field, e.Reason)
}

// Config parameterises one run of the search program — the DFA of
// Section V whose states are partition shapes, whose alphabet is (active
// processor, direction) pairs and whose transition function is the Push.
type Config struct {
	// N is the matrix dimension (the paper used 1000; the structure of
	// the terminal shapes is scale-free).
	N int
	// Ratio is the processing-speed ratio Pr:Rr:Sr.
	Ratio partition.Ratio
	// Seed drives all randomisation (start state, direction sets, order).
	Seed int64
	// Start overrides the random q₀ when non-nil (the grid is cloned).
	Start *partition.Grid
	// Types restricts the Push types tried; nil means all six.
	Types []Type
	// MaxSteps bounds the number of committed Pushes (a backstop only —
	// runs converge long before; 0 selects a generous default).
	MaxSteps int
	// Beautify applies the Theorem 8.3 cleanup after convergence: keep
	// pushing with *all* directions enabled until fully condensed, which
	// removes Archetype C interlocks left by restricted direction sets.
	Beautify bool
	// Clustered draws q₀ from the clustered random family instead of the
	// paper's uniform one.
	Clustered bool
	// Scratch, when non-nil, is used as the run's working grid instead of
	// allocating a fresh N² grid: it is reset and re-randomised (or
	// overwritten from Start) in place, and RunResult.Final aliases it.
	// Callers pooling grids must finish with Final before reusing Scratch.
	// Seeded runs produce identical results with or without a Scratch.
	Scratch *partition.Grid
	// Snapshot, when non-nil, receives the partition after every
	// committed Push (step counts from 1) plus once for the start state
	// (step 0). Used to regenerate Fig 7.
	Snapshot func(step int, g *partition.Grid)
	// Trace, when non-nil, receives one span per run phase (setup,
	// condense, beautify) with step/VoC annotations. Aggregate
	// counters always flow to the package metrics regardless.
	Trace *trace.Trace
	// CostWeights, when non-nil and non-uniform, makes the acceptance
	// test minimise the cost-weighted VoC Σ w[p][q]·V[p][q] (per-link
	// relative prices, see partition.Weights) instead of the raw integer
	// VoC. Pushes remain the paper's VoC-non-increasing moves; the
	// weighted test is an extra veto on top, so the weighted cost is
	// monotone non-increasing BY CONSTRUCTION — which is exactly what
	// keeps the fingerprint memoisation sound (see condense). A uniform
	// weight matrix is detected and routed through the bit-exact integer
	// path.
	CostWeights *partition.Weights
}

// DirectionPlan is the randomised direction assignment of Section VI-A.1:
// each slow processor is given a random non-empty subset of directions in
// a random order.
type DirectionPlan map[partition.Proc][]geom.Direction

// newPlan draws the per-processor direction sets.
func newPlan(rng *rand.Rand) DirectionPlan {
	plan := make(DirectionPlan, 2)
	for _, p := range [2]partition.Proc{partition.R, partition.S} {
		k := 1 + rng.Intn(geom.NumDirections)
		perm := rng.Perm(geom.NumDirections)
		dirs := make([]geom.Direction, k)
		for i := 0; i < k; i++ {
			dirs[i] = geom.AllDirections[perm[i]]
		}
		plan[p] = dirs
	}
	return plan
}

// FullPlan gives both processors all four directions (used by Beautify and
// by reduction proofs).
func FullPlan() DirectionPlan {
	all := append([]geom.Direction(nil), geom.AllDirections[:]...)
	return DirectionPlan{
		partition.R: all,
		partition.S: append([]geom.Direction(nil), all...),
	}
}

// RunResult reports a completed run.
type RunResult struct {
	// Final is the condensed terminal partition (an accept state of the
	// DFA).
	Final *partition.Grid
	// Steps is the number of committed Pushes.
	Steps int
	// InitialVoC and FinalVoC bracket the communication improvement.
	InitialVoC, FinalVoC int64
	// Plan records the randomised direction sets used.
	Plan DirectionPlan
	// Converged is false only if MaxSteps was exhausted first.
	Converged bool
}

// Run executes the DFA from a random (or supplied) start state until no
// legal Push remains for either slow processor within its direction set —
// the end condition of Section VI-C.
func Run(cfg Config) (*RunResult, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cancellation: the step loop checks ctx between
// Pushes, so a paper-scale run (minutes at N=1000) stops promptly when
// the study around it is interrupted. A cancelled run returns ctx's
// error; no partial RunResult is produced.
func RunContext(ctx context.Context, cfg Config) (*RunResult, error) {
	if cfg.N <= 1 {
		return nil, &ConfigError{Field: "N", Reason: fmt.Sprintf("must be at least 2, got %d", cfg.N)}
	}
	if cfg.MaxSteps < 0 {
		return nil, &ConfigError{Field: "MaxSteps", Reason: fmt.Sprintf("must be non-negative, got %d", cfg.MaxSteps)}
	}
	if err := cfg.Ratio.Validate(); err != nil {
		return nil, err
	}
	weights := cfg.CostWeights
	if weights != nil {
		for _, p := range partition.Procs {
			for _, q := range partition.Procs {
				if p == q {
					continue
				}
				w := (*weights)[p][q]
				if w <= 0 || w != w || w > 1e18 {
					return nil, &ConfigError{Field: "CostWeights", Reason: fmt.Sprintf("weight %s→%s must be positive and finite, got %v", p, q, w)}
				}
			}
		}
		if weights.Uniform() {
			weights = nil // all-ones weighted VoC == integer VoC, bit for bit
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	setupStart := time.Now()
	var setupSpan *trace.Active
	if cfg.Trace != nil {
		setupSpan = cfg.Trace.Start("setup")
	}

	if cfg.Scratch != nil && cfg.Scratch.N() != cfg.N {
		return nil, fmt.Errorf("push: scratch grid is %d×%d, config wants %d", cfg.Scratch.N(), cfg.Scratch.N(), cfg.N)
	}
	var g *partition.Grid
	switch {
	case cfg.Start != nil:
		if cfg.Start.N() != cfg.N {
			return nil, fmt.Errorf("push: start grid is %d×%d, config wants %d", cfg.Start.N(), cfg.Start.N(), cfg.N)
		}
		if cfg.Scratch != nil {
			cfg.Scratch.CopyFrom(cfg.Start)
			g = cfg.Scratch
		} else {
			g = cfg.Start.Clone()
		}
	case cfg.Clustered:
		if cfg.Scratch != nil {
			partition.RandomizeClusteredInto(cfg.Scratch, cfg.Ratio, rng)
			g = cfg.Scratch
		} else {
			g = partition.NewRandomClustered(cfg.N, cfg.Ratio, rng)
		}
	default:
		if cfg.Scratch != nil {
			partition.RandomizeInto(cfg.Scratch, cfg.Ratio, rng)
			g = cfg.Scratch
		} else {
			g = partition.NewRandom(cfg.N, cfg.Ratio, rng)
		}
	}

	plan := newPlan(rng)
	maxSteps := cfg.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 40 * cfg.N // far beyond observed convergence (~2N)
	}

	res := &RunResult{Plan: plan, InitialVoC: g.VoC()}
	if cfg.Snapshot != nil {
		cfg.Snapshot(0, g)
	}
	setupNanos.Add(time.Since(setupStart).Nanoseconds())
	if setupSpan != nil {
		setupSpan.SetDetail("n=%d voc0=%d", cfg.N, res.InitialVoC)
		setupSpan.End()
	}

	condenseStart := time.Now()
	var condenseSpan *trace.Active
	if cfg.Trace != nil {
		condenseSpan = cfg.Trace.Start("condense")
	}
	steps, converged, err := condense(ctx, g, plan, cfg.Types, maxSteps, rng, cfg.Snapshot, weights)
	condenseNanos.Add(time.Since(condenseStart).Nanoseconds())
	if condenseSpan != nil {
		condenseSpan.SetDetail("steps=%d voc=%d", steps, g.VoC())
		condenseSpan.End()
	}
	if err != nil {
		return nil, err
	}
	res.Steps = steps
	res.Converged = converged
	if cfg.Beautify && converged {
		beautifyStart := time.Now()
		var beautifySpan *trace.Active
		if cfg.Trace != nil {
			beautifySpan = cfg.Trace.Start("beautify")
		}
		extra, conv2, err := condense(ctx, g, FullPlan(), cfg.Types, maxSteps, rng, cfg.Snapshot, weights)
		beautifyNanos.Add(time.Since(beautifyStart).Nanoseconds())
		if beautifySpan != nil {
			beautifySpan.SetDetail("steps=%d voc=%d", extra, g.VoC())
			beautifySpan.End()
		}
		if err != nil {
			return nil, err
		}
		res.Steps += extra
		res.Converged = conv2
	}
	res.Final = g
	res.FinalVoC = g.VoC()
	runsTotal.Add(1)
	return res, nil
}

// Condense applies Pushes from the plan until none is legal, returning
// the number of committed Pushes and whether a fixed point was reached
// within maxSteps (0 selects 40·N). It is the convergence loop the DFA
// runner uses, exposed for the Section VIII reductions and the beautify
// cleanup. The grid is mutated in place.
//
// Plateau cycles (sequences of Type 5/6 Pushes that leave VoC unchanged)
// are broken by fingerprinting: a Push that recreates a state already
// visited since the last VoC decrease is vetoed.
func Condense(g *partition.Grid, plan DirectionPlan, types []Type, maxSteps int) (int, bool) {
	if maxSteps <= 0 {
		maxSteps = 40 * g.N()
	}
	steps, converged, _ := condense(context.Background(), g, plan, types, maxSteps, nil, nil, nil)
	return steps, converged
}

// condenseScratch is the reusable working state of one condensation loop.
// Pooling it means the plateau set is cleared — not reallocated — on every
// VoC drop, and its buckets survive across runs.
type condenseScratch struct {
	plateau map[uint64]struct{}
}

var condensePool = sync.Pool{
	New: func() any { return &condenseScratch{plateau: make(map[uint64]struct{}, 64)} },
}

func condense(ctx context.Context, g *partition.Grid, plan DirectionPlan, types []Type, maxSteps int, rng *rand.Rand, snapshot func(int, *partition.Grid), weights *partition.Weights) (steps int, converged bool, err error) {
	sc := condensePool.Get().(*condenseScratch)
	defer condensePool.Put(sc)
	var tally searchTally
	defer func() { tally.flush(steps) }()
	plateau := sc.plateau
	clear(plateau)
	plateau[g.Fingerprint()] = struct{}{}
	lastVoC := g.VoC()
	// Weighted mode: the acceptance test minimises the cost-weighted VoC.
	// curWC tracks the CURRENT grid's weighted cost exactly (it is updated
	// on every commit), and any candidate with a larger weighted cost is
	// vetoed — so the weighted cost is monotone non-increasing over the
	// run by construction, the property the memo argument below leans on
	// (and which TestWeightedCondenseMonotone asserts end to end).
	weighted := weights != nil
	var curWC float64
	if weighted {
		curWC = g.WeightedVoC(*weights)
	}
	accept := func(t *partition.Grid) bool {
		if weighted {
			wc := t.WeightedVoC(*weights)
			if wc < curWC {
				return true
			}
			if wc > curWC {
				return false
			}
		} else if t.VoC() < lastVoC {
			return true
		}
		fp := t.Fingerprint()
		if _, seen := plateau[fp]; seen {
			return false
		}
		plateau[fp] = struct{}{}
		return true
	}

	// Failed-probe memo. A failing AttemptAny has no side effects, and its
	// outcome is a function of the grid plus the plateau state: the cost
	// being minimised (raw VoC, or the weighted VoC in weighted mode)
	// never increases, so revisiting a fingerprint means it never dropped
	// in between — the threshold (lastVoC/curWC, a function of the grid)
	// is unchanged and the plateau set only grew. Every structural failure
	// still fails and every vetoed push is still vetoed. Skipping the
	// re-probe is therefore exactly equivalent, and it eliminates the full
	// verification sweep a fixed point otherwise pays per (processor,
	// direction) pair.
	var failFP [2][geom.NumDirections]uint64
	var failKnown [2][geom.NumDirections]bool

	procs := [2]partition.Proc{partition.R, partition.S}
	plateauStreak := 0 // ΔVoC=0 commits since the last VoC drop
	for steps < maxSteps {
		// The cancellation point of the DFA's step loop: once per sweep
		// plus once per committed Push below, so both fixed-point-probing
		// and actively-condensing runs notice a cancel promptly.
		if err := ctx.Err(); err != nil {
			return steps, false, err
		}
		progressed := false
		// Random processor order each sweep, per the randomised search.
		order := procs
		if rng != nil && rng.Intn(2) == 1 {
			order[0], order[1] = order[1], order[0]
		}
		for _, p := range order {
			pi := int(p)
			for _, d := range plan[p] {
				tally.memoProbes++
				if failKnown[pi][d] && failFP[pi][d] == g.Fingerprint() {
					tally.memoHits++
					continue
				}
				if res, ok := AttemptAny(g, p, d, types, accept); ok {
					steps++
					progressed = true
					drop := res.DeltaVoC < 0
					if weighted {
						// A raw-VoC drop can be a weighted plateau and
						// vice versa; the weighted cost decides which
						// branch this commit is. Accept vetoed any
						// increase, so wcNow ≤ curWC here.
						wcNow := g.WeightedVoC(*weights)
						drop = wcNow < curWC
						curWC = wcNow
					}
					if drop {
						if plateauStreak > 0 {
							tally.plateauEscapes++
							plateauStreak = 0
						}
						lastVoC = g.VoC()
						clear(plateau)
						plateau[g.Fingerprint()] = struct{}{}
					} else {
						tally.plateauMoves++
						plateauStreak++
					}
					if snapshot != nil {
						snapshot(steps, g)
					}
					if steps >= maxSteps {
						return steps, false, nil
					}
					if err := ctx.Err(); err != nil {
						return steps, false, err
					}
				} else {
					failKnown[pi][d] = true
					failFP[pi][d] = g.Fingerprint()
				}
			}
		}
		if !progressed {
			return steps, true, nil
		}
	}
	return steps, false, nil
}

// Condensed reports whether no legal Push remains for either slow
// processor in any of the plan's directions — the paper's definition of a
// fully condensed partition.
//
// Legality is probed in place with an always-reject accept callback:
// Attempt only consults the callback once a fully-formed, contract-clean
// Push is about to commit, so "the callback fired" is exactly "a legal Push
// exists", and the veto's rollback restores the grid (fingerprint included)
// bit-exactly. No clone of the N² cells is ever taken.
func Condensed(g *partition.Grid, plan DirectionPlan, types []Type) bool {
	if len(types) == 0 {
		types = AllTypes
	}
	legal := false
	probe := func(*partition.Grid) bool {
		legal = true
		return false
	}
	for _, p := range [2]partition.Proc{partition.R, partition.S} {
		for _, d := range plan[p] {
			for _, t := range types {
				if _, ok := Attempt(g, p, d, t, probe); ok || legal {
					return false
				}
			}
		}
	}
	return true
}
