package push_test

import (
	"testing"

	"repro/internal/partition"
	"repro/internal/push"
	"repro/internal/shape"
)

// TestPaperScaleRun exercises the search at the paper's own matrix size
// N=1000 (Section VII). It is the capability check that the engine scales
// to the published experiment; skipped under -short.
func TestPaperScaleRun(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run (N=1000)")
	}
	res, err := push.Run(push.Config{N: 1000, Ratio: partition.MustRatio(2, 1, 1), Seed: 1, Beautify: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("N=1000 run did not converge in %d steps", res.Steps)
	}
	if res.FinalVoC > res.InitialVoC {
		t.Fatal("VoC rose")
	}
	drop := 1 - float64(res.FinalVoC)/float64(res.InitialVoC)
	if drop < 0.3 {
		t.Errorf("only %.0f%% VoC reduction at paper scale", 100*drop)
	}
	// The paper reports ~2100 pushes for this configuration; the engine's
	// randomised plans land in the same order of magnitude.
	if res.Steps < 200 || res.Steps > 10000 {
		t.Errorf("push count %d far from the paper's ~2100", res.Steps)
	}
	if a := shape.Classify(res.Final); a == shape.ArchetypeUnknown {
		t.Errorf("paper-scale terminal state unclassified")
	}
	if err := res.Final.Validate(); err != nil {
		t.Fatal(err)
	}
	t.Logf("N=1000: %d pushes, VoC %d → %d (−%.0f%%), archetype %v",
		res.Steps, res.InitialVoC, res.FinalVoC, 100*drop, shape.Classify(res.Final))
}
