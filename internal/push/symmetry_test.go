package push

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/partition"
)

// transposeDir maps a direction to its transpose-conjugate: pushing Down
// on q is pushing Right on qᵀ, and so on.
func transposeDir(d geom.Direction) geom.Direction {
	switch d {
	case geom.Down:
		return geom.Right
	case geom.Up:
		return geom.Left
	case geom.Right:
		return geom.Down
	case geom.Left:
		return geom.Up
	}
	panic("bad direction")
}

// TestPushTransposeSymmetry validates the direction-view machinery end to
// end: a Push in direction d on grid q must be exactly the transpose of a
// Push in the conjugate direction on qᵀ — same ΔVoC, transposed cells.
func TestPushTransposeSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		g := partition.NewRandom(18, partition.MustRatio(3, 2, 1), rng)
		gt := g.Transpose()
		if g.VoC() != gt.VoC() {
			t.Fatal("VoC must be transpose-invariant")
		}
		p := partition.Procs[rng.Intn(2)]
		d := geom.AllDirections[rng.Intn(4)]
		ty := AllTypes[rng.Intn(len(AllTypes))]

		r1, ok1 := Attempt(g, p, d, ty, nil)
		r2, ok2 := Attempt(gt, p, transposeDir(d), ty, nil)
		if ok1 != ok2 {
			t.Fatalf("trial %d: %v %v %v legal=%v but transposed legal=%v", trial, p, d, ty, ok1, ok2)
		}
		if !ok1 {
			continue
		}
		if r1.DeltaVoC != r2.DeltaVoC || r1.Moved != r2.Moved {
			t.Fatalf("trial %d: results differ: %+v vs %+v", trial, r1, r2)
		}
		if !g.Transpose().Equal(gt) {
			t.Fatalf("trial %d: post-push grids are not transposes", trial)
		}
	}
}

// TestVoCTransposeInvariant is the standalone Eq 1 symmetry property.
func TestVoCTransposeInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		g := partition.NewRandom(15, partition.PaperRatios[trial%11], rng)
		if g.VoC() != g.Transpose().VoC() {
			t.Fatalf("trial %d: VoC changed under transpose", trial)
		}
		if !g.Transpose().Transpose().Equal(g) {
			t.Fatalf("trial %d: double transpose is not identity", trial)
		}
	}
}
