package push

import (
	"testing"

	"repro/internal/partition"
)

func TestSmokeRun(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		res, err := Run(Config{N: 40, Ratio: partition.MustRatio(2, 1, 1), Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("seed %d: did not converge after %d steps", seed, res.Steps)
		}
		if res.FinalVoC > res.InitialVoC {
			t.Fatalf("seed %d: VoC increased %d -> %d", seed, res.InitialVoC, res.FinalVoC)
		}
		if err := res.Final.Validate(); err != nil {
			t.Fatal(err)
		}
		t.Logf("seed %d: steps=%d voc %d -> %d plan=%v", seed, res.Steps, res.InitialVoC, res.FinalVoC, res.Plan)
	}
}
