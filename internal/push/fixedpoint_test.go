package push

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/partition"
)

// TestCandidatesArePushFixedPoints closes the paper's loop: the six
// candidate canonical shapes of Section IX are exactly the states the
// Push search is meant to terminate in, so no VoC-*decreasing* Push
// (Types 1–4) may exist on any of them, for any ratio, in any direction.
// (Plateau Pushes of Types 5–6 may shuffle ragged cells at equal VoC;
// that is allowed — the DFA's accept states are defined up to VoC.)
func TestCandidatesArePushFixedPoints(t *testing.T) {
	decreasing := []Type{TypeOne, TypeTwo, TypeThree, TypeFour}
	for _, ratio := range partition.PaperRatios {
		for _, s := range partition.AllShapes {
			if s == partition.RectangleCorner && partition.SquareCornerFeasible(ratio) {
				// The Rectangle-Corner is the Type 1 optimum only when
				// two squares cannot fit (Section IX-B.1); where they
				// can, Push correctly improves it toward the
				// Square-Corner, so it is not a fixed point there.
				continue
			}
			g, err := partition.Build(s, 90, ratio)
			if err != nil {
				continue
			}
			for _, p := range [2]partition.Proc{partition.R, partition.S} {
				for _, d := range geom.AllDirections {
					for _, ty := range decreasing {
						c := g.Clone()
						if res, ok := Attempt(c, p, d, ty, nil); ok {
							t.Errorf("%v (ratio %v): %v %v %v improved a candidate by %d — not a fixed point",
								s, ratio, p, d, ty, res.DeltaVoC)
						}
					}
				}
			}
		}
	}
}

// TestRandomStartsNeverBeatBestCandidate: the search never finds a state
// with lower VoC than the best canonical candidate for the ratio — the
// candidates really are the floor, at test scale.
func TestRandomStartsNeverBeatBestCandidate(t *testing.T) {
	const n = 60
	for _, ratio := range []partition.Ratio{
		partition.MustRatio(2, 1, 1),
		partition.MustRatio(5, 2, 1),
		partition.MustRatio(10, 1, 1),
	} {
		best := int64(1 << 62)
		for _, s := range partition.AllShapes {
			if g, err := partition.Build(s, n, ratio); err == nil && g.VoC() < best {
				best = g.VoC()
			}
		}
		for seed := int64(0); seed < 8; seed++ {
			res, err := Run(Config{N: n, Ratio: ratio, Seed: seed, Beautify: true})
			if err != nil {
				t.Fatal(err)
			}
			if res.FinalVoC < best {
				t.Errorf("ratio %v seed %d: search found VoC %d below the candidate floor %d",
					ratio, seed, res.FinalVoC, best)
			}
		}
	}
}
