package push

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/partition"
)

// snapshotCounters captures every piece of derived state a rollback must
// restore alongside the raw cells.
type counterSnapshot struct {
	fp       uint64
	voc      int64
	total    [partition.NumProcs]int
	rowsWith [partition.NumProcs]int
	colsWith [partition.NumProcs]int
	rects    [partition.NumProcs]geom.Rect
}

func snapshot(g *partition.Grid) counterSnapshot {
	var s counterSnapshot
	s.fp = g.Fingerprint()
	s.voc = g.VoC()
	for _, p := range partition.Procs {
		s.total[p] = g.Count(p)
		s.rowsWith[p] = g.RowsWith(p)
		s.colsWith[p] = g.ColsWith(p)
		s.rects[p] = g.EnclosingRect(p)
	}
	return s
}

// TestUndoLogRestoresEverything is the rollback property: after an
// arbitrary sequence of recorded logical-coordinate mutations through any
// view, rollback restores the cells, the fingerprint, and every occupancy
// counter bit-exactly.
func TestUndoLogRestoresEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	const n = 32
	for trial := 0; trial < 200; trial++ {
		g := partition.NewRandom(n, partition.MustRatio(3, 2, 1), rng)
		ref := g.Clone()
		before := snapshot(g)

		dir := geom.AllDirections[rng.Intn(geom.NumDirections)]
		vg := vgrid{g: g, v: geom.NewView(n, dir)}
		var undo undoLog
		muts := 1 + rng.Intn(60)
		for m := 0; m < muts; m++ {
			i, j := rng.Intn(n), rng.Intn(n)
			pi, pj := vg.v.Apply(i, j)
			undo.record(i, j, g.At(pi, pj))
			vg.set(i, j, partition.Proc(rng.Intn(partition.NumProcs)))
		}
		undo.rollback(vg)

		if !g.Equal(ref) {
			t.Fatalf("trial %d: rollback left different cells", trial)
		}
		if after := snapshot(g); after != before {
			t.Fatalf("trial %d: rollback left different counters:\nbefore %+v\nafter  %+v", trial, before, after)
		}
		if g.Fingerprint() != g.FingerprintRescan() {
			t.Fatalf("trial %d: fingerprint drifted from rescan after rollback", trial)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// TestFailedAttemptRestoresFingerprint drives the real Attempt machinery:
// a vetoed or structurally failing Push must leave the fingerprint (and
// hence the condense loop's plateau bookkeeping) exactly as it was.
func TestFailedAttemptRestoresFingerprint(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const n = 40
	g := partition.NewRandom(n, partition.MustRatio(2, 1, 1), rng)
	veto := func(*partition.Grid) bool { return false }
	for i := 0; i < 400; i++ {
		before := snapshot(g)
		p := partition.Procs[rng.Intn(2)]
		d := geom.AllDirections[rng.Intn(geom.NumDirections)]
		tp := AllTypes[rng.Intn(len(AllTypes))]
		if _, ok := Attempt(g, p, d, tp, veto); ok {
			t.Fatal("vetoing accept must fail the attempt")
		}
		if after := snapshot(g); after != before {
			t.Fatalf("attempt %d (%v %v %v): failed push changed state:\nbefore %+v\nafter  %+v",
				i, p, d, tp, before, after)
		}
	}
}
