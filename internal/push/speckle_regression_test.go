package push_test

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/partition"
	"repro/internal/push"
	"repro/internal/shape"
)

// drain applies pushes with the full direction plan until none remains.
func drain(t *testing.T, g *partition.Grid) {
	t.Helper()
	for {
		moved := false
		for _, p := range [2]partition.Proc{partition.R, partition.S} {
			for _, d := range geom.AllDirections {
				if _, ok := push.AttemptAny(g, p, d, nil, nil); ok {
					moved = true
				}
			}
		}
		if !moved {
			return
		}
	}
}

// TestSpeckleRegression pins the historical failure modes of the Push
// legality search. Early versions of the engine got stuck in heavily
// speckled states because (a) a single greedy cursor spent the ΔVoC
// budget on displaced processors that dirtied fresh lines, and (b) the
// dirtying count treated "row OR column occupied" as free, letting a
// placement silently dirty one line. These seeds reproduced both bugs;
// the condensed states must now classify into the paper's archetypes.
func TestSpeckleRegression(t *testing.T) {
	cases := []struct {
		n     int
		ratio partition.Ratio
		seed  int64
	}{
		{60, partition.MustRatio(2, 1, 1), 3},                    // cursor-tier bug
		{44, partition.MustRatio(10, 1, 1), 7980776588851220643}, // OR-dirtying bug
		{44, partition.MustRatio(5, 2, 1), 1185658667067195305},  // thin-strip speckle
	}
	for _, c := range cases {
		res, err := push.Run(push.Config{N: c.n, Ratio: c.ratio, Seed: c.seed, Beautify: true})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Errorf("ratio %v seed %d: did not converge", c.ratio, c.seed)
		}
		g := res.Final.Clone()
		drain(t, g)
		if a := shape.Classify(g); a == shape.ArchetypeUnknown {
			t.Errorf("ratio %v seed %d: condensed state unclassifiable\n%s",
				c.ratio, c.seed, g.RenderASCII(22))
		}
		// A fully drained state admits no decreasing push at all.
		for _, p := range [2]partition.Proc{partition.R, partition.S} {
			for _, d := range geom.AllDirections {
				for _, ty := range []push.Type{push.TypeOne, push.TypeTwo, push.TypeThree, push.TypeFour} {
					cl := g.Clone()
					if r, ok := push.Attempt(cl, p, d, ty, nil); ok {
						t.Errorf("ratio %v seed %d: drained state still improvable: %+v",
							c.ratio, c.seed, r)
					}
				}
			}
		}
	}
}
