package sim

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/partition"
)

// ConfigError reports an invalid fault-injection parameter with a typed
// error instead of a panic.
type ConfigError struct {
	Field  string
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("sim: invalid %s: %s", e.Field, e.Reason)
}

// Window is a time interval [From, Until) during which a resource is
// degraded: work that would take d seconds at nominal speed takes
// Factor·d seconds inside the window. Factor > 1 models a straggler CPU
// or a bandwidth drop; Factor < 1 (a speedup) is also allowed.
type Window struct {
	From, Until float64
	Factor      float64
}

// Spike adds Extra seconds of one-off latency to any message that starts
// inside [From, Until) — a flapping link's retransmission stall.
type Spike struct {
	From, Until float64
	Extra       float64
}

// FaultPlan describes injected platform faults for a simulation run:
// straggler processors (compute-rate multipliers over time windows) and
// degraded or flapping links (bandwidth drops, latency spikes). Real
// heterogeneous platforms misbehave exactly this way — processor speeds
// fluctuate and links degrade — and the paper's clean model cannot say
// how the candidate shapes cope; SimulateFaults can.
//
// The zero-value plan (or a nil *FaultPlan) injects nothing.
type FaultPlan struct {
	cpu    map[partition.Proc][]Window
	link   map[partition.Proc][]Window
	spikes map[partition.Proc][]Spike
	// fates holds worker-level faults for the real execution engine
	// (internal/exec): kill/hang at a progress fraction, persistent
	// slowdown. See workerfault.go.
	fates map[partition.Proc]workerFault
}

// NewFaultPlan returns an empty plan.
func NewFaultPlan() *FaultPlan {
	return &FaultPlan{
		cpu:    make(map[partition.Proc][]Window),
		link:   make(map[partition.Proc][]Window),
		spikes: make(map[partition.Proc][]Spike),
	}
}

func checkWindow(field string, factor, from, until float64) error {
	if math.IsNaN(factor) || factor <= 0 {
		return &ConfigError{Field: field, Reason: fmt.Sprintf("factor must be positive, got %v", factor)}
	}
	if math.IsNaN(from) || from < 0 {
		return &ConfigError{Field: field, Reason: fmt.Sprintf("window start must be ≥ 0, got %v", from)}
	}
	if math.IsNaN(until) || until <= from {
		return &ConfigError{Field: field, Reason: fmt.Sprintf("window [%v, %v) is empty or inverted", from, until)}
	}
	return nil
}

func insertWindow(field string, ws []Window, w Window) ([]Window, error) {
	for _, x := range ws {
		if w.From < x.Until && x.From < w.Until {
			return nil, &ConfigError{Field: field, Reason: fmt.Sprintf("window [%v, %v) overlaps existing [%v, %v)", w.From, w.Until, x.From, x.Until)}
		}
	}
	ws = append(ws, w)
	sort.Slice(ws, func(i, j int) bool { return ws[i].From < ws[j].From })
	return ws, nil
}

// AddStraggler makes processor p compute Factor× slower during
// [from, until). until may be math.Inf(1) for a persistent fault.
// Windows for the same processor must not overlap.
func (f *FaultPlan) AddStraggler(p partition.Proc, factor, from, until float64) error {
	if !p.Valid() {
		return &ConfigError{Field: "straggler", Reason: fmt.Sprintf("invalid processor %v", p)}
	}
	if err := checkWindow("straggler", factor, from, until); err != nil {
		return err
	}
	ws, err := insertWindow("straggler", f.cpu[p], Window{From: from, Until: until, Factor: factor})
	if err != nil {
		return err
	}
	f.cpu[p] = ws
	return nil
}

// AddLinkDegrade makes processor p's outgoing link Factor× slower
// (bandwidth divided by Factor) during [from, until).
func (f *FaultPlan) AddLinkDegrade(p partition.Proc, factor, from, until float64) error {
	if !p.Valid() {
		return &ConfigError{Field: "link", Reason: fmt.Sprintf("invalid processor %v", p)}
	}
	if err := checkWindow("link", factor, from, until); err != nil {
		return err
	}
	ws, err := insertWindow("link", f.link[p], Window{From: from, Until: until, Factor: factor})
	if err != nil {
		return err
	}
	f.link[p] = ws
	return nil
}

// AddLatencySpike adds extra seconds of stall to any message processor p
// starts sending during [from, until).
func (f *FaultPlan) AddLatencySpike(p partition.Proc, extra, from, until float64) error {
	if !p.Valid() {
		return &ConfigError{Field: "spike", Reason: fmt.Sprintf("invalid processor %v", p)}
	}
	if math.IsNaN(extra) || extra < 0 {
		return &ConfigError{Field: "spike", Reason: fmt.Sprintf("extra latency must be ≥ 0, got %v", extra)}
	}
	if err := checkWindow("spike", 1, from, until); err != nil {
		return err
	}
	f.spikes[p] = append(f.spikes[p], Spike{From: from, Until: until, Extra: extra})
	sort.Slice(f.spikes[p], func(i, j int) bool { return f.spikes[p][i].From < f.spikes[p][j].From })
	return nil
}

// empty reports whether the plan injects nothing for processor p's CPU.
func (f *FaultPlan) hasCPU(p partition.Proc) bool {
	return f != nil && len(f.cpu[p]) > 0
}

func (f *FaultPlan) hasLink(p partition.Proc) bool {
	return f != nil && (len(f.link[p]) > 0 || len(f.spikes[p]) > 0)
}

// stretchOver integrates a piecewise-constant rate profile: work seconds
// of nominal-speed work started at start take longer while inside a
// degradation window (progress rate 1/Factor). Windows are sorted and
// non-overlapping by construction.
func stretchOver(start, work float64, ws []Window) float64 {
	if work <= 0 {
		return work
	}
	t := start
	remaining := work
	for remaining > 0 {
		// Find the active window (if any) and the next boundary.
		rate := 1.0
		next := math.Inf(1)
		for _, w := range ws {
			if t >= w.From && t < w.Until {
				rate = 1 / w.Factor
				next = w.Until
				break
			}
			if w.From > t {
				next = w.From
				break
			}
		}
		if math.IsInf(next, 1) {
			// Constant rate to the end of the work.
			t += remaining / rate
			break
		}
		span := next - t
		if can := span * rate; can >= remaining {
			t += remaining / rate
			remaining = 0
		} else {
			remaining -= can
			t = next
		}
	}
	return t - start
}

// spikeExtra sums the stall of every spike window covering start.
func spikeExtra(start float64, spikes []Spike) float64 {
	extra := 0.0
	for _, s := range spikes {
		if start >= s.From && start < s.Until {
			extra += s.Extra
		}
	}
	return extra
}

// StretchCPU returns the wall-clock seconds that work seconds of
// nominal-speed compute on processor p take when started at time start,
// under the plan's straggler windows. It lets non-simulation callers —
// the serving layer injects planner-CPU stragglers this way — reuse the
// plan's piecewise-constant rate profile. A nil plan or an unaffected
// processor returns work unchanged.
func (f *FaultPlan) StretchCPU(p partition.Proc, start, work float64) float64 {
	if !f.hasCPU(p) {
		return work
	}
	return stretchOver(start, work, f.cpu[p])
}

// cpuStretch returns the stretch hook for compute tasks of processor p,
// or nil when the plan leaves p alone.
func (f *FaultPlan) cpuStretch(p partition.Proc) func(start, nominal float64) float64 {
	if !f.hasCPU(p) {
		return nil
	}
	ws := f.cpu[p]
	return func(start, nominal float64) float64 {
		return stretchOver(start, nominal, ws)
	}
}

// linkStretch returns the stretch hook for send tasks of processor p:
// bandwidth-degradation windows stretch the transfer and latency spikes
// stall its start.
func (f *FaultPlan) linkStretch(p partition.Proc) func(start, nominal float64) float64 {
	if !f.hasLink(p) {
		return nil
	}
	ws := f.link[p]
	spikes := f.spikes[p]
	return func(start, nominal float64) float64 {
		stall := spikeExtra(start, spikes)
		return stall + stretchOver(start+stall, nominal, ws)
	}
}
