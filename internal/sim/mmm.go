package sim

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/partition"
)

// Result reports a simulated MMM execution.
type Result struct {
	Algorithm model.Algorithm
	// TExe is the simulated makespan in seconds.
	TExe float64
	// TComm is the finish time of the last communication task.
	TComm float64
	// TComp is the total non-overlapped computation span (makespan −
	// start of the last compute phase's earliest task, reported as the
	// remainder phase duration for the barrier/bulk algorithms).
	TComp float64
	// Tasks is the number of simulated tasks.
	Tasks int
}

// Simulate runs algorithm a for the partition on the machine and returns
// the simulated timings.
//
// For PIO the per-step granularity is coarsened to at most maxPIOSteps
// pipeline stages (each representing a contiguous block of pivots) to
// bound task counts; pass steps ≤ 0 for the default.
func Simulate(a model.Algorithm, m model.Machine, g *partition.Grid, pioSteps int) (Result, error) {
	return SimulateFaults(a, m, g, pioSteps, nil)
}

// SimulateFaults is Simulate with platform faults injected: task
// durations are stretched by the plan's straggler and link-degradation
// windows, and messages starting inside a latency-spike window stall.
// A nil plan is a clean run; the result is deterministic in (inputs,
// plan).
func SimulateFaults(a model.Algorithm, m model.Machine, g *partition.Grid, pioSteps int, fp *FaultPlan) (Result, error) {
	if err := m.Ratio.Validate(); err != nil {
		return Result{}, err
	}
	snap := g.Snapshot()
	switch a {
	case model.SCB, model.PCB:
		return simBarrier(a, m, snap, fp), nil
	case model.SCO, model.PCO:
		return simBulkOverlap(a, m, snap, fp), nil
	case model.PIO:
		return simPIO(m, snap, pioSteps, fp), nil
	}
	return Result{}, fmt.Errorf("sim: unknown algorithm %v", a)
}

// cpu returns a CPU resource per processor.
func cpus() map[partition.Proc]*Resource {
	return map[partition.Proc]*Resource{
		partition.P: {Name: "cpu-P"},
		partition.R: {Name: "cpu-R"},
		partition.S: {Name: "cpu-S"},
	}
}

// compDuration is the seconds p needs to update count elements across all
// n pivot steps.
func compDuration(m model.Machine, p partition.Proc, count, n int) float64 {
	return float64(count) * float64(n) * m.FlopTime / m.Ratio.Speed(p)
}

// sendDuration is the Hockney time for p's full send volume, including
// the star-relay surcharge on the slow processors.
func sendDuration(m model.Machine, snap partition.Metrics, p partition.Proc) float64 {
	return m.Net.Time(model.SendVolume(snap, p))
}

// simBarrier builds the SCB/PCB task graph: per-processor send tasks on a
// shared bus (SCB) or private links (PCB); compute tasks gated on every
// send. The construction is shared with the Gantt renderer.
func simBarrier(a model.Algorithm, m model.Machine, snap partition.Metrics, fp *FaultPlan) Result {
	var e Engine
	buildBarrierTasks(&e, a, m, snap, fp)
	return finish(&e, a)
}

// simBulkOverlap builds the SCO/PCO task graph: sends as in the barrier
// algorithms, overlap-compute tasks with no dependencies, remainder
// computes gated on all sends and all overlaps (Eqs 7–8).
func simBulkOverlap(a model.Algorithm, m model.Machine, snap partition.Metrics, fp *FaultPlan) Result {
	var e Engine
	buildBulkOverlapTasks(&e, a, m, snap, fp)
	return finish(&e, a)
}

// finish runs the engine and extracts the Result timings.
func finish(e *Engine, a model.Algorithm) Result {
	makespan := e.Run()
	var commFinish float64
	for _, t := range e.Timeline() {
		if len(t.Name) > 4 && t.Name[:4] == "send" && t.Finish > commFinish {
			commFinish = t.Finish
		}
	}
	return Result{Algorithm: a, TExe: makespan, TComm: commFinish, TComp: makespan - commFinish, Tasks: len(e.tasks)}
}

// simPIO builds the pipelined task graph of Eq 9: the pivot steps are
// grouped into `steps` stages; stage k's sends depend on stage k−1's
// sends (links are serially reused anyway) and stage k's computes depend
// on stage k's sends and stage k−1's computes.
func simPIO(m model.Machine, snap partition.Metrics, steps int, fp *FaultPlan) Result {
	n := snap.N
	if steps <= 0 || steps > n {
		steps = n
		if steps > 256 {
			steps = 256
		}
	}
	var e Engine
	procs := cpus()
	links := map[partition.Proc]*Resource{
		partition.P: {Name: "link-P"},
		partition.R: {Name: "link-R"},
		partition.S: {Name: "link-S"},
	}
	// The star topology inflates the carried volume; spread the surcharge
	// proportionally over the per-processor send volumes.
	relayFactor := 1.0
	if snap.VoC > 0 {
		relayFactor = float64(model.CommVolume(m, snap)) / float64(snap.VoC)
	}
	var prevSends, prevComps []*Task
	for k := 0; k < steps; k++ {
		pivots := (k+1)*n/steps - k*n/steps
		frac := float64(pivots) / float64(n)
		var sends []*Task
		for _, p := range partition.Procs {
			stepVol := frac * float64(model.SendVolume(snap, p)) * relayFactor
			if stepVol > 0 {
				// Latency is paid once per pipeline stage and sender —
				// the cost of interleaving N small messages.
				share := m.Net.Alpha*float64(pivots) + m.Net.Beta*stepVol
				t := e.NewTask(fmt.Sprintf("send-%v-%d", p, k), share, links[p], prevSends...)
				t.SetStretch(fp.linkStretch(p))
				sends = append(sends, t)
			}
		}
		var comps []*Task
		for _, p := range partition.Procs {
			d := float64(snap.Elements[p]) * float64(pivots) * m.FlopTime / m.Ratio.Speed(p)
			if d > 0 {
				deps := append(append([]*Task(nil), sends...), prevComps...)
				t := e.NewTask(fmt.Sprintf("comp-%v-%d", p, k), d, procs[p], deps...)
				t.SetStretch(fp.cpuStretch(p))
				comps = append(comps, t)
			}
		}
		prevSends, prevComps = sends, comps
	}
	makespan := e.Run()
	var commFinish float64
	for _, t := range e.Timeline() {
		if len(t.Name) > 4 && t.Name[:4] == "send" && t.Finish > commFinish {
			commFinish = t.Finish
		}
	}
	return Result{Algorithm: model.PIO, TExe: makespan, TComm: commFinish, TComp: makespan - commFinish, Tasks: len(e.tasks)}
}

func starRelay(snap partition.Metrics) int64 {
	dR := model.SendVolume(snap, partition.R)
	dS := model.SendVolume(snap, partition.S)
	if dR < dS {
		return dR
	}
	return dS
}
