package sim

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/partition"
)

func TestEngineSerialResource(t *testing.T) {
	var e Engine
	r := &Resource{Name: "link"}
	a := e.NewTask("a", 2, r)
	b := e.NewTask("b", 3, r)
	makespan := e.Run()
	if makespan != 5 {
		t.Fatalf("makespan = %v, want 5 (serialised)", makespan)
	}
	if a.Finish != 2 || b.Start != 2 || b.Finish != 5 {
		t.Fatalf("timeline wrong: a=[%v,%v] b=[%v,%v]", a.Start, a.Finish, b.Start, b.Finish)
	}
}

func TestEngineParallelResources(t *testing.T) {
	var e Engine
	a := e.NewTask("a", 2, &Resource{})
	b := e.NewTask("b", 3, &Resource{})
	if makespan := e.Run(); makespan != 3 {
		t.Fatalf("makespan = %v, want 3 (parallel)", makespan)
	}
	if a.Start != 0 || b.Start != 0 {
		t.Fatal("independent tasks should both start at 0")
	}
}

func TestEngineDependencies(t *testing.T) {
	var e Engine
	a := e.NewTask("a", 1, nil)
	b := e.NewTask("b", 1, nil, a)
	c := e.NewTask("c", 1, nil, a, b)
	if makespan := e.Run(); makespan != 3 {
		t.Fatalf("makespan = %v, want 3 (chain)", makespan)
	}
	if c.Start != 2 {
		t.Fatalf("c.Start = %v, want 2", c.Start)
	}
}

func TestEngineDiamond(t *testing.T) {
	var e Engine
	src := e.NewTask("src", 1, nil)
	l := e.NewTask("l", 5, nil, src)
	r := e.NewTask("r", 2, nil, src)
	sink := e.NewTask("sink", 1, nil, l, r)
	if makespan := e.Run(); makespan != 7 {
		t.Fatalf("makespan = %v, want 7", makespan)
	}
	if sink.Start != 6 {
		t.Fatalf("sink.Start = %v", sink.Start)
	}
}

func TestEngineZeroDuration(t *testing.T) {
	var e Engine
	a := e.NewTask("a", 0, nil)
	b := e.NewTask("b", 0, nil, a)
	if makespan := e.Run(); makespan != 0 {
		t.Fatalf("makespan = %v, want 0", makespan)
	}
	_ = b
}

func TestEngineNegativeDurationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative duration should panic")
		}
	}()
	var e Engine
	e.NewTask("bad", -1, nil)
}

func TestEngineResourceContentionOrder(t *testing.T) {
	// Two tasks become ready at different times and compete for a link:
	// the earlier-ready one must go first.
	var e Engine
	link := &Resource{}
	gate := e.NewTask("gate", 5, nil)
	early := e.NewTask("early", 10, link)
	late := e.NewTask("late", 1, link, gate)
	e.Run()
	if early.Start != 0 {
		t.Fatalf("early.Start = %v", early.Start)
	}
	if late.Start != 10 {
		t.Fatalf("late.Start = %v, want 10 (after early releases the link)", late.Start)
	}
}

func TestEngineTimelineSorted(t *testing.T) {
	var e Engine
	a := e.NewTask("a", 3, nil)
	e.NewTask("b", 1, nil, a)
	e.NewTask("c", 2, nil)
	e.Run()
	tl := e.Timeline()
	for i := 1; i < len(tl); i++ {
		if tl[i].Start < tl[i-1].Start {
			t.Fatal("timeline not sorted by start")
		}
	}
}

func buildGrid(t testing.TB, s partition.Shape, n int, ratio partition.Ratio) *partition.Grid {
	t.Helper()
	g, err := partition.Build(s, n, ratio)
	if err != nil {
		t.Skipf("shape %v infeasible for %v: %v", s, ratio, err)
	}
	return g
}

func TestSimulateMatchesModelBarrier(t *testing.T) {
	// The simulator and the analytic models must agree for the barrier
	// algorithms (their schedules are exactly the models' formulas).
	for _, ratio := range []partition.Ratio{
		partition.MustRatio(2, 1, 1),
		partition.MustRatio(5, 2, 1),
		partition.MustRatio(10, 1, 1),
	} {
		m := model.DefaultMachine(ratio)
		for _, s := range partition.AllShapes {
			g, err := partition.Build(s, 80, ratio)
			if err != nil {
				continue
			}
			for _, a := range []model.Algorithm{model.SCB, model.PCB} {
				res, err := Simulate(a, m, g, 0)
				if err != nil {
					t.Fatal(err)
				}
				want := model.EvaluateGrid(a, m, g).Total
				if rel := math.Abs(res.TExe-want) / want; rel > 1e-9 {
					t.Errorf("%v %v %v: sim %g vs model %g", a, s, ratio, res.TExe, want)
				}
			}
		}
	}
}

func TestSimulateMatchesModelBulkOverlap(t *testing.T) {
	ratio := partition.MustRatio(5, 2, 1)
	m := model.DefaultMachine(ratio)
	for _, s := range partition.AllShapes {
		g, err := partition.Build(s, 80, ratio)
		if err != nil {
			continue
		}
		for _, a := range []model.Algorithm{model.SCO, model.PCO} {
			res, err := Simulate(a, m, g, 0)
			if err != nil {
				t.Fatal(err)
			}
			want := model.EvaluateGrid(a, m, g).Total
			if rel := math.Abs(res.TExe-want) / want; rel > 1e-9 {
				t.Errorf("%v %v: sim %g vs model %g", a, s, res.TExe, want)
			}
		}
	}
}

func TestSimulatePIOWithinModelBounds(t *testing.T) {
	// PIO's pipeline simulation should land between the no-overlap upper
	// bound (SCB) and the perfect-overlap lower bound.
	ratio := partition.MustRatio(4, 2, 1)
	m := model.DefaultMachine(ratio)
	g := buildGrid(t, partition.BlockRectangle, 100, ratio)
	res, err := Simulate(model.PIO, m, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	scb := model.EvaluateGrid(model.SCB, m, g).Total
	// Lower bound: the slower of total comm and total comp.
	comm := m.Net.Time(g.VoC())
	comp := model.EvaluateGrid(model.SCB, m, g).Comp
	lower := math.Max(comm, comp)
	if res.TExe < lower*0.99 {
		t.Errorf("PIO %g below perfect-overlap bound %g", res.TExe, lower)
	}
	if res.TExe > scb*1.01 {
		t.Errorf("PIO %g above no-overlap bound %g", res.TExe, scb)
	}
}

func TestSimulateOverlapBeatsBarrier(t *testing.T) {
	ratio := partition.MustRatio(10, 1, 1)
	m := model.DefaultMachine(ratio)
	g := buildGrid(t, partition.SquareCorner, 100, ratio)
	scb, _ := Simulate(model.SCB, m, g, 0)
	sco, _ := Simulate(model.SCO, m, g, 0)
	if sco.TExe > scb.TExe+1e-12 {
		t.Errorf("SCO %g should not exceed SCB %g", sco.TExe, scb.TExe)
	}
}

func TestSimulateSquareCornerVsBlockRectangleCrossover(t *testing.T) {
	// Fig 14 in simulation: at ratio 20:1:1 the Square-Corner's simulated
	// SCB communication time beats the Block-Rectangle's; at 3:1:1 it
	// loses.
	check := func(x float64, scWins bool) {
		ratio := partition.MustRatio(x, 1, 1)
		m := model.DefaultMachine(ratio)
		sc, err := partition.Build(partition.SquareCorner, 200, ratio)
		if err != nil {
			t.Fatalf("x=%v: %v", x, err)
		}
		br, err := partition.Build(partition.BlockRectangle, 200, ratio)
		if err != nil {
			t.Fatalf("x=%v: %v", x, err)
		}
		scRes, _ := Simulate(model.SCB, m, sc, 0)
		brRes, _ := Simulate(model.SCB, m, br, 0)
		if scWins && scRes.TComm >= brRes.TComm {
			t.Errorf("x=%v: SC comm %g should beat BR %g", x, scRes.TComm, brRes.TComm)
		}
		if !scWins && scRes.TComm <= brRes.TComm {
			t.Errorf("x=%v: BR comm %g should beat SC %g", x, brRes.TComm, scRes.TComm)
		}
	}
	check(3, false)
	check(20, true)
}

func TestSimulateStarSlower(t *testing.T) {
	ratio := partition.MustRatio(4, 2, 1)
	g := buildGrid(t, partition.BlockRectangle, 80, ratio)
	full := model.DefaultMachine(ratio)
	star := full
	star.Topology = model.Star
	for _, a := range model.AllAlgorithms {
		f, err := Simulate(a, full, g, 0)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Simulate(a, star, g, 0)
		if err != nil {
			t.Fatal(err)
		}
		if s.TExe < f.TExe-1e-12 {
			t.Errorf("%v: star %g faster than full %g", a, s.TExe, f.TExe)
		}
	}
}

func TestSimulateInvalidInputs(t *testing.T) {
	g := partition.NewGrid(10)
	if _, err := Simulate(model.SCB, model.Machine{}, g, 0); err == nil {
		t.Error("zero machine should fail ratio validation")
	}
	m := model.DefaultMachine(partition.MustRatio(2, 1, 1))
	if _, err := Simulate(model.Algorithm(77), m, g, 0); err == nil {
		t.Error("unknown algorithm should error")
	}
}

func TestSimulatePIOStepCoarsening(t *testing.T) {
	ratio := partition.MustRatio(5, 2, 1)
	m := model.DefaultMachine(ratio)
	g := buildGrid(t, partition.TraditionalRectangle, 120, ratio)
	fine, err := Simulate(model.PIO, m, g, 120)
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := Simulate(model.PIO, m, g, 12)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(fine.TExe-coarse.TExe) / fine.TExe; rel > 0.15 {
		t.Errorf("coarsening changed PIO estimate too much: %g vs %g", fine.TExe, coarse.TExe)
	}
	if coarse.Tasks >= fine.Tasks {
		t.Error("coarsening should reduce task count")
	}
}

func BenchmarkSimulateSCB(b *testing.B) {
	ratio := partition.MustRatio(5, 2, 1)
	m := model.DefaultMachine(ratio)
	g, err := partition.Build(partition.BlockRectangle, 200, ratio)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(model.SCB, m, g, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulatePIO(b *testing.B) {
	ratio := partition.MustRatio(5, 2, 1)
	m := model.DefaultMachine(ratio)
	g, err := partition.Build(partition.BlockRectangle, 200, ratio)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(model.PIO, m, g, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func TestGantt(t *testing.T) {
	ratio := partition.MustRatio(10, 1, 1)
	m := model.DefaultMachine(ratio)
	g := buildGrid(t, partition.SquareCorner, 80, ratio)
	for _, a := range []model.Algorithm{model.SCB, model.PCB, model.SCO, model.PCO} {
		chart, err := Gantt(a, m, g, 60)
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if !strings.Contains(chart, "makespan") {
			t.Errorf("%v: header missing:\n%s", a, chart)
		}
		if !strings.Contains(chart, "send-") || !strings.Contains(chart, "█") {
			t.Errorf("%v: bars missing:\n%s", a, chart)
		}
	}
	if _, err := Gantt(model.PIO, m, g, 60); err == nil {
		t.Error("PIO Gantt should be rejected")
	}
	if _, err := Gantt(model.Algorithm(99), m, g, 60); err == nil {
		t.Error("unknown algorithm should be rejected")
	}
	if _, err := Gantt(model.SCB, model.Machine{}, g, 60); err == nil {
		t.Error("invalid machine should be rejected")
	}
}

func TestGanttOverlapVisible(t *testing.T) {
	// SCO on a Square-Corner: P's overlap bar must start at time 0
	// alongside the sends — that is the whole point of bulk overlap.
	ratio := partition.MustRatio(10, 1, 1)
	m := model.DefaultMachine(ratio)
	g := buildGrid(t, partition.SquareCorner, 80, ratio)
	chart, err := Gantt(model.SCO, m, g, 60)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(chart, "\n") {
		if strings.HasPrefix(line, "overlap-P") {
			bar := line[strings.Index(line, "|")+1:]
			if !strings.HasPrefix(bar, "█") {
				t.Errorf("overlap-P should start at t=0:\n%s", chart)
			}
			return
		}
	}
	t.Errorf("no overlap-P row:\n%s", chart)
}

func TestGanttMatchesSimulate(t *testing.T) {
	// The Gantt and Simulate share the task construction; spot-check the
	// makespans agree.
	ratio := partition.MustRatio(4, 2, 1)
	m := model.DefaultMachine(ratio)
	g := buildGrid(t, partition.BlockRectangle, 80, ratio)
	chart, err := Gantt(model.PCB, m, g, 60)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(model.PCB, m, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("makespan %.6fs", res.TExe)
	if !strings.Contains(chart, want) {
		t.Errorf("chart header should contain %q:\n%s", want, chart)
	}
}
