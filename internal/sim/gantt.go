package sim

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/model"
	"repro/internal/partition"
)

// Gantt renders the simulated schedule of an algorithm on a partition as
// a text chart: one row per task (grouped by resource), time on the
// horizontal axis. It is the visual counterpart of the Eq 2–9 formulas —
// barrier gaps, overlap windows and pipeline stages are directly visible.
func Gantt(a model.Algorithm, m model.Machine, g *partition.Grid, width int) (string, error) {
	if width < 20 {
		width = 60
	}
	if err := m.Ratio.Validate(); err != nil {
		return "", err
	}
	snap := g.Snapshot()
	var e Engine
	switch a {
	case model.SCB, model.PCB:
		buildBarrierTasks(&e, a, m, snap, nil)
	case model.SCO, model.PCO:
		buildBulkOverlapTasks(&e, a, m, snap, nil)
	case model.PIO:
		return "", fmt.Errorf("sim: Gantt supports the barrier and bulk-overlap algorithms (PIO has O(N) rows)")
	default:
		return "", fmt.Errorf("sim: unknown algorithm %v", a)
	}
	makespan := e.Run()
	if makespan <= 0 {
		return "(no work)\n", nil
	}
	tasks := e.Timeline()
	sort.SliceStable(tasks, func(i, j int) bool { return tasks[i].Name < tasks[j].Name })

	var sb strings.Builder
	fmt.Fprintf(&sb, "%v on %s topology — makespan %.6fs\n", a, m.Topology, makespan)
	scale := float64(width) / makespan
	for _, t := range tasks {
		s := int(t.Start * scale)
		f := int(t.Finish * scale)
		if f <= s {
			f = s + 1
		}
		if f > width {
			f = width
		}
		bar := strings.Repeat(" ", s) + strings.Repeat("█", f-s) + strings.Repeat(" ", width-f)
		fmt.Fprintf(&sb, "%-14s |%s|\n", t.Name, bar)
	}
	return sb.String(), nil
}

// WriteGantt writes the chart to w.
func WriteGantt(w io.Writer, a model.Algorithm, m model.Machine, g *partition.Grid, width int) error {
	s, err := Gantt(a, m, g, width)
	if err != nil {
		return err
	}
	_, err = io.WriteString(w, s)
	return err
}

// buildBarrierTasks and buildBulkOverlapTasks extract the task-graph
// construction shared with Simulate so the Gantt uses the same schedule.
// fp, when non-nil, attaches the fault plan's duration-stretch hooks.
func buildBarrierTasks(e *Engine, a model.Algorithm, m model.Machine, snap partition.Metrics, fp *FaultPlan) {
	bus := &Resource{Name: "bus"}
	var sends []*Task
	for _, p := range partition.Procs {
		link := bus
		if a == model.PCB {
			link = &Resource{Name: "link-" + p.String()}
		}
		d := sendDuration(m, snap, p)
		if m.Topology == model.Star && p != partition.P {
			d += m.Net.Time(starRelay(snap))
		}
		if d > 0 {
			t := e.NewTask("send-"+p.String(), d, link)
			t.SetStretch(fp.linkStretch(p))
			sends = append(sends, t)
		}
	}
	procs := cpus()
	for _, p := range partition.Procs {
		d := compDuration(m, p, snap.Elements[p], snap.N)
		if d > 0 {
			t := e.NewTask("comp-"+p.String(), d, procs[p], sends...)
			t.SetStretch(fp.cpuStretch(p))
		}
	}
}

func buildBulkOverlapTasks(e *Engine, a model.Algorithm, m model.Machine, snap partition.Metrics, fp *FaultPlan) {
	bus := &Resource{Name: "bus"}
	procs := cpus()
	var phase1 []*Task
	for _, p := range partition.Procs {
		link := bus
		if a == model.PCO {
			link = &Resource{Name: "link-" + p.String()}
		}
		d := sendDuration(m, snap, p)
		if m.Topology == model.Star && p != partition.P {
			d += m.Net.Time(starRelay(snap))
		}
		if d > 0 {
			t := e.NewTask("send-"+p.String(), d, link)
			t.SetStretch(fp.linkStretch(p))
			phase1 = append(phase1, t)
		}
	}
	for _, p := range partition.Procs {
		d := compDuration(m, p, snap.Overlap[p], snap.N)
		if d > 0 {
			t := e.NewTask("overlap-"+p.String(), d, procs[p])
			t.SetStretch(fp.cpuStretch(p))
			phase1 = append(phase1, t)
		}
	}
	for _, p := range partition.Procs {
		d := compDuration(m, p, snap.Elements[p]-snap.Overlap[p], snap.N)
		if d > 0 {
			t := e.NewTask("remainder-"+p.String(), d, procs[p], phase1...)
			t.SetStretch(fp.cpuStretch(p))
		}
	}
}
