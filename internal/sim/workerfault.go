package sim

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/partition"
)

// WorkerFate enumerates what a fault plan does to a real execution
// worker (internal/exec). Unlike the simulator's time-window faults,
// worker fates fire against *progress*: a fraction of the worker's own
// assigned work, so "kill P at 50%" means the same thing at every matrix
// size and pacing rate.
type WorkerFate uint8

const (
	// FateNone leaves the worker alone.
	FateNone WorkerFate = iota
	// FateKill makes the worker exit silently at the trigger point: its
	// heartbeats stop and its queued work is stranded until the
	// supervisor's lease expires — the in-process analogue of a crashed
	// cluster node.
	FateKill
	// FateHang makes the worker block forever at the trigger point while
	// holding its current lease — a deadlocked or livelocked node whose
	// process is alive but makes no progress and sends no heartbeats.
	FateHang
)

func (f WorkerFate) String() string {
	switch f {
	case FateNone:
		return "none"
	case FateKill:
		return "kill"
	case FateHang:
		return "hang"
	}
	return fmt.Sprintf("WorkerFate(%d)", uint8(f))
}

// workerFault is the per-processor worker-level fault state.
type workerFault struct {
	fate WorkerFate
	frac float64 // progress fraction in [0, 1] at which the fate fires
	slow float64 // persistent compute slowdown factor (0 or 1 = none)
}

// AddWorkerKill makes execution worker p die silently once it has
// completed frac (in [0, 1]) of its initially assigned work. Only one
// fate per processor is allowed.
func (f *FaultPlan) AddWorkerKill(p partition.Proc, frac float64) error {
	return f.setFate(p, FateKill, frac)
}

// AddWorkerHang makes execution worker p block forever (heartbeats stop,
// lease held) once it has completed frac of its initially assigned work.
func (f *FaultPlan) AddWorkerHang(p partition.Proc, frac float64) error {
	return f.setFate(p, FateHang, frac)
}

func (f *FaultPlan) setFate(p partition.Proc, fate WorkerFate, frac float64) error {
	if !p.Valid() {
		return &ConfigError{Field: "worker-fate", Reason: fmt.Sprintf("invalid processor %v", p)}
	}
	if math.IsNaN(frac) || frac < 0 || frac > 1 {
		return &ConfigError{Field: "worker-fate", Reason: fmt.Sprintf("progress fraction %v outside [0, 1]", frac)}
	}
	if f.fates == nil {
		f.fates = make(map[partition.Proc]workerFault)
	}
	wf := f.fates[p]
	if wf.fate != FateNone {
		return &ConfigError{Field: "worker-fate", Reason: fmt.Sprintf("processor %v already has a %v fate", p, wf.fate)}
	}
	wf.fate, wf.frac = fate, frac
	f.fates[p] = wf
	return nil
}

// AddWorkerSlowdown makes execution worker p compute factor× slower for
// the whole run — a persistent straggler the supervisor should detect
// and speculate around rather than declare dead (the worker keeps
// heartbeating).
func (f *FaultPlan) AddWorkerSlowdown(p partition.Proc, factor float64) error {
	if !p.Valid() {
		return &ConfigError{Field: "worker-slowdown", Reason: fmt.Sprintf("invalid processor %v", p)}
	}
	if math.IsNaN(factor) || factor < 1 {
		return &ConfigError{Field: "worker-slowdown", Reason: fmt.Sprintf("slowdown factor %v must be ≥ 1", factor)}
	}
	if f.fates == nil {
		f.fates = make(map[partition.Proc]workerFault)
	}
	wf := f.fates[p]
	if wf.slow > 1 {
		return &ConfigError{Field: "worker-slowdown", Reason: fmt.Sprintf("processor %v already has a %gx slowdown", p, wf.slow)}
	}
	wf.slow = factor
	f.fates[p] = wf
	return nil
}

// WorkerFateFor returns the fate configured for worker p and the
// progress fraction at which it fires. A nil plan (or no fate) returns
// (FateNone, 0).
func (f *FaultPlan) WorkerFateFor(p partition.Proc) (WorkerFate, float64) {
	if f == nil || f.fates == nil {
		return FateNone, 0
	}
	wf := f.fates[p]
	return wf.fate, wf.frac
}

// WorkerSlowdown returns worker p's persistent compute slowdown factor
// (1 when none is configured, nil-safe).
func (f *FaultPlan) WorkerSlowdown(p partition.Proc) float64 {
	if f == nil || f.fates == nil {
		return 1
	}
	if wf := f.fates[p]; wf.slow > 1 {
		return wf.slow
	}
	return 1
}

// HasWorkerFaults reports whether any worker-level fault (fate or
// slowdown) is configured.
func (f *FaultPlan) HasWorkerFaults() bool {
	return f != nil && len(f.fates) > 0
}

// ParseWorkerFaults parses a comma-separated worker-fault spec into a
// fault plan, the -fault flag syntax of cmd/mmmsim:
//
//	kill:P@0.5    kill worker P at 50% of its assigned work
//	hang:R@0.3    hang worker R at 30%
//	slow:S@8      slow worker S down 8× for the whole run
//
// Processors are named P, R, S (case-insensitive).
func ParseWorkerFaults(spec string) (*FaultPlan, error) {
	fp := NewFaultPlan()
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		kind, rest, ok := strings.Cut(item, ":")
		if !ok {
			return nil, &ConfigError{Field: "fault-spec", Reason: fmt.Sprintf("%q is not kind:proc@value", item)}
		}
		procStr, valStr, ok := strings.Cut(rest, "@")
		if !ok {
			return nil, &ConfigError{Field: "fault-spec", Reason: fmt.Sprintf("%q is missing the @value part", item)}
		}
		p, err := parseProc(procStr)
		if err != nil {
			return nil, err
		}
		val, err := strconv.ParseFloat(strings.TrimSpace(valStr), 64)
		if err != nil {
			return nil, &ConfigError{Field: "fault-spec", Reason: fmt.Sprintf("bad value in %q: %v", item, err)}
		}
		switch strings.ToLower(strings.TrimSpace(kind)) {
		case "kill":
			err = fp.AddWorkerKill(p, val)
		case "hang":
			err = fp.AddWorkerHang(p, val)
		case "slow":
			err = fp.AddWorkerSlowdown(p, val)
		default:
			err = &ConfigError{Field: "fault-spec", Reason: fmt.Sprintf("unknown fault kind %q (want kill, hang or slow)", kind)}
		}
		if err != nil {
			return nil, err
		}
	}
	return fp, nil
}

func parseProc(s string) (partition.Proc, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "P":
		return partition.P, nil
	case "R":
		return partition.R, nil
	case "S":
		return partition.S, nil
	}
	return 0, &ConfigError{Field: "fault-spec", Reason: fmt.Sprintf("unknown processor %q (want P, R or S)", s)}
}
