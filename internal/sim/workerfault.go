package sim

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/partition"
)

// WorkerFate enumerates what a fault plan does to a real execution
// worker (internal/exec). Unlike the simulator's time-window faults,
// worker fates fire against *progress*: a fraction of the worker's own
// assigned work, so "kill P at 50%" means the same thing at every matrix
// size and pacing rate.
type WorkerFate uint8

const (
	// FateNone leaves the worker alone.
	FateNone WorkerFate = iota
	// FateKill makes the worker exit silently at the trigger point: its
	// heartbeats stop and its queued work is stranded until the
	// supervisor's lease expires — the in-process analogue of a crashed
	// cluster node.
	FateKill
	// FateHang makes the worker block forever at the trigger point while
	// holding its current lease — a deadlocked or livelocked node whose
	// process is alive but makes no progress and sends no heartbeats.
	FateHang
	// FateFlip makes the worker silently corrupt a single cell of each
	// computed block with the configured probability — a transient bit
	// flip (cosmic ray, marginal DRAM) producing silent data corruption
	// the supervisor's ABFT verification must detect and correct.
	FateFlip
	// FateScale makes the worker return every block scaled by a constant
	// factor — a systematic fault (broken FMA unit, wrong-firmware
	// accelerator) whose results are self-consistent, so only independent
	// supervisor-side checksums catch it. A scaling worker keeps failing
	// until the mismatch budget declares it Byzantine.
	FateScale
)

func (f WorkerFate) String() string {
	switch f {
	case FateNone:
		return "none"
	case FateKill:
		return "kill"
	case FateHang:
		return "hang"
	case FateFlip:
		return "flip"
	case FateScale:
		return "scale"
	}
	return fmt.Sprintf("WorkerFate(%d)", uint8(f))
}

// workerFault is the per-processor worker-level fault state. Liveness
// fates (kill/hang), the persistent slowdown and the corruption mode are
// independent slots: a worker can, say, scale its results and later
// hang, but it cannot both kill and hang, flip and scale, or carry two
// slowdowns.
type workerFault struct {
	fate    WorkerFate
	frac    float64 // progress fraction in [0, 1] at which the fate fires
	slow    float64 // persistent compute slowdown factor (1 = none)
	slowSet bool    // a slowdown was configured (guards duplicates even at 1×)
	corrupt WorkerFate
	cval    float64 // flip: per-block probability in (0,1]; scale: factor
}

// AddWorkerKill makes execution worker p die silently once it has
// completed frac (in [0, 1]) of its initially assigned work. Only one
// fate per processor is allowed.
func (f *FaultPlan) AddWorkerKill(p partition.Proc, frac float64) error {
	return f.setFate(p, FateKill, frac)
}

// AddWorkerHang makes execution worker p block forever (heartbeats stop,
// lease held) once it has completed frac of its initially assigned work.
func (f *FaultPlan) AddWorkerHang(p partition.Proc, frac float64) error {
	return f.setFate(p, FateHang, frac)
}

func (f *FaultPlan) setFate(p partition.Proc, fate WorkerFate, frac float64) error {
	if !p.Valid() {
		return &ConfigError{Field: "worker-fate", Reason: fmt.Sprintf("invalid processor %v", p)}
	}
	if math.IsNaN(frac) || frac < 0 || frac > 1 {
		return &ConfigError{Field: "worker-fate", Reason: fmt.Sprintf("progress fraction %v outside [0, 1]", frac)}
	}
	if f.fates == nil {
		f.fates = make(map[partition.Proc]workerFault)
	}
	wf := f.fates[p]
	if wf.fate != FateNone {
		return &ConfigError{Field: "worker-fate", Reason: fmt.Sprintf("processor %v already has a %v fate", p, wf.fate)}
	}
	wf.fate, wf.frac = fate, frac
	f.fates[p] = wf
	return nil
}

// AddWorkerSlowdown makes execution worker p compute factor× slower for
// the whole run — a persistent straggler the supervisor should detect
// and speculate around rather than declare dead (the worker keeps
// heartbeating).
func (f *FaultPlan) AddWorkerSlowdown(p partition.Proc, factor float64) error {
	if !p.Valid() {
		return &ConfigError{Field: "worker-slowdown", Reason: fmt.Sprintf("invalid processor %v", p)}
	}
	if math.IsNaN(factor) || factor < 1 {
		return &ConfigError{Field: "worker-slowdown", Reason: fmt.Sprintf("slowdown factor %v must be ≥ 1", factor)}
	}
	if f.fates == nil {
		f.fates = make(map[partition.Proc]workerFault)
	}
	wf := f.fates[p]
	if wf.slowSet {
		return &ConfigError{Field: "worker-slowdown", Reason: fmt.Sprintf("processor %v already has a %gx slowdown", p, wf.slow)}
	}
	wf.slow, wf.slowSet = factor, true
	f.fates[p] = wf
	return nil
}

// AddWorkerFlip makes execution worker p corrupt one random cell of each
// computed block with probability prob (in (0, 1]) — transient silent
// data corruption. Only one corruption mode per processor is allowed.
func (f *FaultPlan) AddWorkerFlip(p partition.Proc, prob float64) error {
	if math.IsNaN(prob) || prob <= 0 || prob > 1 {
		return &ConfigError{Field: "worker-flip", Reason: fmt.Sprintf("flip probability %v outside (0, 1]", prob)}
	}
	return f.setCorruption(p, FateFlip, prob, "worker-flip")
}

// AddWorkerScale makes execution worker p return every computed block
// scaled by factor — a systematic, self-consistent corruption. factor
// must be finite, positive and ≠ 1.
func (f *FaultPlan) AddWorkerScale(p partition.Proc, factor float64) error {
	if math.IsNaN(factor) || math.IsInf(factor, 0) || factor <= 0 || factor == 1 {
		return &ConfigError{Field: "worker-scale", Reason: fmt.Sprintf("scale factor %v must be finite, positive and ≠ 1", factor)}
	}
	return f.setCorruption(p, FateScale, factor, "worker-scale")
}

func (f *FaultPlan) setCorruption(p partition.Proc, mode WorkerFate, val float64, field string) error {
	if !p.Valid() {
		return &ConfigError{Field: field, Reason: fmt.Sprintf("invalid processor %v", p)}
	}
	if f.fates == nil {
		f.fates = make(map[partition.Proc]workerFault)
	}
	wf := f.fates[p]
	if wf.corrupt != FateNone {
		return &ConfigError{Field: field, Reason: fmt.Sprintf("processor %v already has a %v corruption", p, wf.corrupt)}
	}
	wf.corrupt, wf.cval = mode, val
	f.fates[p] = wf
	return nil
}

// WorkerFateFor returns the fate configured for worker p and the
// progress fraction at which it fires. A nil plan (or no fate) returns
// (FateNone, 0).
func (f *FaultPlan) WorkerFateFor(p partition.Proc) (WorkerFate, float64) {
	if f == nil || f.fates == nil {
		return FateNone, 0
	}
	wf := f.fates[p]
	return wf.fate, wf.frac
}

// WorkerSlowdown returns worker p's persistent compute slowdown factor
// (1 when none is configured, nil-safe).
func (f *FaultPlan) WorkerSlowdown(p partition.Proc) float64 {
	if f == nil || f.fates == nil {
		return 1
	}
	if wf := f.fates[p]; wf.slow > 1 {
		return wf.slow
	}
	return 1
}

// WorkerCorruption returns worker p's configured corruption mode and its
// parameter: (FateFlip, probability) for transient single-cell flips,
// (FateScale, factor) for systematic scaling, (FateNone, 0) when the
// worker is honest. Nil-safe.
func (f *FaultPlan) WorkerCorruption(p partition.Proc) (WorkerFate, float64) {
	if f == nil || f.fates == nil {
		return FateNone, 0
	}
	wf := f.fates[p]
	return wf.corrupt, wf.cval
}

// HasWorkerFaults reports whether any worker-level fault (fate or
// slowdown) is configured.
func (f *FaultPlan) HasWorkerFaults() bool {
	return f != nil && len(f.fates) > 0
}

// ParseWorkerFaults parses a comma-separated worker-fault spec into a
// fault plan, the -fault flag syntax of cmd/mmmsim:
//
//	kill:P@0.5    kill worker P at 50% of its assigned work
//	hang:R@0.3    hang worker R at 30%
//	slow:S@8      slow worker S down 8× for the whole run
//	flip:R@0.5    worker R flips one cell of each block with prob 0.5
//	scale:S@8     worker S scales every block it returns by 8×
//
// Processors are named P, R, S (case-insensitive). Each processor takes
// at most one liveness fate (kill/hang), one slowdown and one corruption
// mode (flip/scale); a duplicate in any slot is a *ConfigError.
func ParseWorkerFaults(spec string) (*FaultPlan, error) {
	fp := NewFaultPlan()
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		kind, rest, ok := strings.Cut(item, ":")
		if !ok {
			return nil, &ConfigError{Field: "fault-spec", Reason: fmt.Sprintf("%q is not kind:proc@value", item)}
		}
		procStr, valStr, ok := strings.Cut(rest, "@")
		if !ok {
			return nil, &ConfigError{Field: "fault-spec", Reason: fmt.Sprintf("%q is missing the @value part", item)}
		}
		p, err := parseProc(procStr)
		if err != nil {
			return nil, err
		}
		val, err := strconv.ParseFloat(strings.TrimSpace(valStr), 64)
		if err != nil {
			return nil, &ConfigError{Field: "fault-spec", Reason: fmt.Sprintf("bad value in %q: %v", item, err)}
		}
		switch strings.ToLower(strings.TrimSpace(kind)) {
		case "kill":
			err = fp.AddWorkerKill(p, val)
		case "hang":
			err = fp.AddWorkerHang(p, val)
		case "slow":
			err = fp.AddWorkerSlowdown(p, val)
		case "flip":
			err = fp.AddWorkerFlip(p, val)
		case "scale":
			err = fp.AddWorkerScale(p, val)
		default:
			err = &ConfigError{Field: "fault-spec", Reason: fmt.Sprintf("unknown fault kind %q (want kill, hang, slow, flip or scale)", kind)}
		}
		if err != nil {
			return nil, err
		}
	}
	return fp, nil
}

func parseProc(s string) (partition.Proc, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "P":
		return partition.P, nil
	case "R":
		return partition.R, nil
	case "S":
		return partition.S, nil
	}
	return 0, &ConfigError{Field: "fault-spec", Reason: fmt.Sprintf("unknown processor %q (want P, R or S)", s)}
}
