package sim

import (
	"errors"
	"testing"

	"repro/internal/partition"
)

func TestParseWorkerFaults(t *testing.T) {
	fp, err := ParseWorkerFaults("kill:P@0.5, hang:r@0.3, slow:S@8")
	if err != nil {
		t.Fatal(err)
	}
	if !fp.HasWorkerFaults() {
		t.Fatal("parsed plan reports no worker faults")
	}
	if fate, frac := fp.WorkerFateFor(partition.P); fate != FateKill || frac != 0.5 {
		t.Errorf("P fate = %v@%g, want kill@0.5", fate, frac)
	}
	if fate, frac := fp.WorkerFateFor(partition.R); fate != FateHang || frac != 0.3 {
		t.Errorf("R fate = %v@%g, want hang@0.3", fate, frac)
	}
	if s := fp.WorkerSlowdown(partition.S); s != 8 {
		t.Errorf("S slowdown = %g, want 8", s)
	}
	if fate, _ := fp.WorkerFateFor(partition.S); fate != FateNone {
		t.Errorf("S fate = %v, want none (slowdown is not a fate)", fate)
	}
}

func TestParseWorkerFaultsCorruption(t *testing.T) {
	fp, err := ParseWorkerFaults("flip:R@0.5, scale:s@8, kill:R@0.9")
	if err != nil {
		t.Fatal(err)
	}
	if mode, p := fp.WorkerCorruption(partition.R); mode != FateFlip || p != 0.5 {
		t.Errorf("R corruption = %v@%g, want flip@0.5", mode, p)
	}
	if mode, f := fp.WorkerCorruption(partition.S); mode != FateScale || f != 8 {
		t.Errorf("S corruption = %v@%g, want scale@8", mode, f)
	}
	// Corruption occupies its own slot: R can still carry a liveness fate.
	if fate, frac := fp.WorkerFateFor(partition.R); fate != FateKill || frac != 0.9 {
		t.Errorf("R fate = %v@%g, want kill@0.9", fate, frac)
	}
	if mode, v := fp.WorkerCorruption(partition.P); mode != FateNone || v != 0 {
		t.Errorf("P corruption = %v@%g, want none", mode, v)
	}
}

func TestParseWorkerFaultsRejects(t *testing.T) {
	for _, spec := range []string{
		"kill:P",                // missing @value
		"P@0.5",                 // missing kind
		"melt:P@0.5",            // unknown kind
		"kill:Q@0.5",            // unknown processor
		"kill:P@1.5",            // fraction out of range
		"slow:P@0.5",            // slowdown below 1
		"kill:P@x",              // unparsable value
		"kill:P@0.2,hang:P@0.4", // two liveness fates for one processor
		"kill:P@0.2,kill:P@0.4", // duplicate kill
		"hang:R@0.1,hang:R@0.9", // duplicate hang
		"slow:S@8,slow:S@2",     // duplicate slowdown
		"slow:S@1,slow:S@8",     // duplicate slowdown even when first is 1×
		"flip:R@0.5,flip:R@0.1", // duplicate flip
		"scale:S@8,scale:S@2",   // duplicate scale
		"flip:P@0.5,scale:P@8",  // two corruption modes for one processor
		"flip:P@0",              // flip probability must be > 0
		"flip:P@1.5",            // flip probability above 1
		"scale:S@1",             // scale factor 1 is a no-op
		"scale:S@0",             // scale factor must be positive
		"scale:S@-2",            // negative scale factor
		"scale:S@+Inf",          // non-finite scale factor
	} {
		if _, err := ParseWorkerFaults(spec); err == nil {
			t.Errorf("spec %q accepted, want error", spec)
		} else {
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Errorf("spec %q: error %v is not a ConfigError", spec, err)
			}
		}
	}
}

func TestWorkerFaultsNilSafe(t *testing.T) {
	var fp *FaultPlan
	if fate, frac := fp.WorkerFateFor(partition.P); fate != FateNone || frac != 0 {
		t.Error("nil plan must report FateNone")
	}
	if s := fp.WorkerSlowdown(partition.P); s != 1 {
		t.Errorf("nil plan slowdown = %g, want 1", s)
	}
	if mode, v := fp.WorkerCorruption(partition.P); mode != FateNone || v != 0 {
		t.Errorf("nil plan corruption = %v@%g, want none", mode, v)
	}
	if fp.HasWorkerFaults() {
		t.Error("nil plan reports worker faults")
	}
	// The zero value (as opposed to NewFaultPlan) must also accept fates.
	var zero FaultPlan
	if err := zero.AddWorkerKill(partition.R, 0.5); err != nil {
		t.Fatal(err)
	}
	if fate, _ := zero.WorkerFateFor(partition.R); fate != FateKill {
		t.Error("zero-value plan dropped the fate")
	}
}
