// Package sim provides a discrete-event simulator for parallel MMM on
// three heterogeneous processors. It is the executable counterpart of the
// analytic models of internal/model: each of the five algorithms of
// Section II is expressed as a task graph over explicit resources
// (network links, CPUs), and the event engine computes when every message
// and compute phase starts and finishes. The simulator and the analytic
// models are cross-validated in tests; the simulator additionally exposes
// per-task timelines that the models collapse into maxima.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// Resource is an exclusive, serially-reusable entity (a network link, a
// CPU). Tasks bound to the same Resource execute one at a time in the
// order the engine dispatches them.
type Resource struct {
	Name   string
	freeAt float64
}

// Task is one unit of simulated work.
type Task struct {
	Name string
	// Duration in seconds.
	Duration float64
	// Deps must all finish before this task may start.
	Deps []*Task
	// Resource, when non-nil, serialises this task against others bound
	// to the same resource.
	Resource *Resource

	// Filled by the engine:
	Start, Finish float64
	scheduled     bool
	remainingDeps int
	dependents    []*Task
	seq           int

	// stretch, when non-nil, maps (start time, nominal duration) to the
	// wall-clock duration actually taken — the hook fault injection uses
	// to model stragglers and degraded links (see fault.go). It must
	// return a value ≥ 0 and is consulted exactly once, when the task is
	// finally scheduled.
	stretch func(start, nominal float64) float64
}

// SetStretch installs a time-varying duration hook on the task.
func (t *Task) SetStretch(fn func(start, nominal float64) float64) { t.stretch = fn }

// Engine is a deterministic discrete-event scheduler: ready tasks are
// dispatched in order of earliest feasible start time, with insertion
// order breaking ties.
type Engine struct {
	tasks []*Task
}

// NewTask registers a task with the engine.
func (e *Engine) NewTask(name string, duration float64, res *Resource, deps ...*Task) *Task {
	if duration < 0 || math.IsNaN(duration) {
		panic(fmt.Sprintf("sim: invalid duration %v for task %s", duration, name))
	}
	t := &Task{Name: name, Duration: duration, Deps: deps, Resource: res, seq: len(e.tasks)}
	e.tasks = append(e.tasks, t)
	return t
}

type readyQueue []*Task

func (q readyQueue) Len() int { return len(q) }
func (q readyQueue) Less(i, j int) bool {
	if q[i].Start != q[j].Start {
		return q[i].Start < q[j].Start
	}
	return q[i].seq < q[j].seq
}
func (q readyQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *readyQueue) Push(x any)   { *q = append(*q, x.(*Task)) }
func (q *readyQueue) Pop() any     { old := *q; n := len(old); t := old[n-1]; *q = old[:n-1]; return t }

// Run schedules every registered task and returns the makespan. It
// panics on dependency cycles (a programming error in the schedule
// builder, not a data condition).
func (e *Engine) Run() float64 {
	var ready readyQueue
	for _, t := range e.tasks {
		t.remainingDeps = len(t.Deps)
		t.scheduled = false
		for _, d := range t.Deps {
			d.dependents = append(d.dependents, t)
		}
	}
	for _, t := range e.tasks {
		if t.remainingDeps == 0 {
			t.Start = 0
			heap.Push(&ready, t)
		}
	}
	makespan := 0.0
	done := 0
	for ready.Len() > 0 {
		t := heap.Pop(&ready).(*Task)
		if t.scheduled {
			continue
		}
		start := t.Start
		if t.Resource != nil && t.Resource.freeAt > start {
			// The resource is busy: requeue at the resource's free time
			// so a task on another resource can run first.
			t.Start = t.Resource.freeAt
			heap.Push(&ready, t)
			continue
		}
		t.scheduled = true
		dur := t.Duration
		if t.stretch != nil {
			dur = t.stretch(start, dur)
			if dur < 0 || math.IsNaN(dur) {
				panic(fmt.Sprintf("sim: stretch hook returned invalid duration %v for task %s", dur, t.Name))
			}
		}
		t.Finish = start + dur
		if t.Resource != nil {
			t.Resource.freeAt = t.Finish
		}
		if t.Finish > makespan {
			makespan = t.Finish
		}
		done++
		for _, d := range t.dependents {
			d.remainingDeps--
			if d.remainingDeps == 0 {
				earliest := 0.0
				for _, dep := range d.Deps {
					if dep.Finish > earliest {
						earliest = dep.Finish
					}
				}
				d.Start = earliest
				heap.Push(&ready, d)
			}
		}
	}
	if done != len(e.tasks) {
		panic(fmt.Sprintf("sim: dependency cycle: scheduled %d of %d tasks", done, len(e.tasks)))
	}
	return makespan
}

// Timeline returns the tasks sorted by start time — useful for traces and
// debugging output.
func (e *Engine) Timeline() []*Task {
	out := append([]*Task(nil), e.tasks...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}
