package sim

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/partition"
)

// FuzzParseWorkerFaults checks the -fault spec parser never panics and
// that every accepted plan is internally consistent: valid ranges for
// each slot, at most one liveness fate / slowdown / corruption mode per
// processor, and every rejection a typed *ConfigError.
func FuzzParseWorkerFaults(f *testing.F) {
	for _, seed := range []string{
		"",
		"kill:P@0.5",
		"kill:P@0.5,hang:R@0.3,slow:S@8",
		"flip:R@0.5",
		"scale:S@8",
		"flip:R@0.5,scale:s@8,kill:R@0.9",
		"flip:P@0.5,scale:P@8",
		"slow:S@1,slow:S@8",
		"kill:P@0.2,kill:P@0.4",
		"scale:S@+Inf",
		"flip:p@1e-9, slow:R@1000",
		"melt:P@0.5",
		"kill:P@NaN",
		":@",
		"kill:P@0.5,,hang:R@0.3,",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		fp, err := ParseWorkerFaults(spec)
		if err != nil {
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("spec %q: error %v is not a *ConfigError", spec, err)
			}
			return
		}
		if fp == nil {
			t.Fatalf("spec %q: nil plan with nil error", spec)
		}
		// A blank spec (only separators/whitespace) must yield an empty plan.
		if strings.TrimFunc(spec, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) == "" && fp.HasWorkerFaults() {
			t.Fatalf("spec %q: blank spec produced worker faults", spec)
		}
		for _, p := range []partition.Proc{partition.P, partition.R, partition.S} {
			fate, frac := fp.WorkerFateFor(p)
			switch fate {
			case FateNone:
				if frac != 0 {
					t.Fatalf("spec %q: %v has no fate but fraction %g", spec, p, frac)
				}
			case FateKill, FateHang:
				if math.IsNaN(frac) || frac < 0 || frac > 1 {
					t.Fatalf("spec %q: %v %v fraction %g outside [0,1]", spec, p, fate, frac)
				}
			default:
				t.Fatalf("spec %q: %v has corruption mode %v in the liveness slot", spec, p, fate)
			}
			if s := fp.WorkerSlowdown(p); math.IsNaN(s) || s < 1 {
				t.Fatalf("spec %q: %v slowdown %g below 1", spec, p, s)
			}
			mode, val := fp.WorkerCorruption(p)
			switch mode {
			case FateNone:
				if val != 0 {
					t.Fatalf("spec %q: %v has no corruption but value %g", spec, p, val)
				}
			case FateFlip:
				if math.IsNaN(val) || val <= 0 || val > 1 {
					t.Fatalf("spec %q: %v flip probability %g outside (0,1]", spec, p, val)
				}
			case FateScale:
				if math.IsNaN(val) || math.IsInf(val, 0) || val <= 0 || val == 1 {
					t.Fatalf("spec %q: %v scale factor %g invalid", spec, p, val)
				}
			default:
				t.Fatalf("spec %q: %v has liveness fate %v in the corruption slot", spec, p, mode)
			}
		}
	})
}
