package sim

import (
	"errors"
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/partition"
)

func TestFaultPlanValidationTyped(t *testing.T) {
	fp := NewFaultPlan()
	var ce *ConfigError
	cases := []struct {
		name string
		err  error
	}{
		{"zero factor", fp.AddStraggler(partition.P, 0, 0, 1)},
		{"negative factor", fp.AddStraggler(partition.P, -2, 0, 1)},
		{"NaN factor", fp.AddStraggler(partition.P, math.NaN(), 0, 1)},
		{"negative start", fp.AddStraggler(partition.P, 2, -1, 1)},
		{"inverted window", fp.AddStraggler(partition.P, 2, 5, 3)},
		{"empty window", fp.AddLinkDegrade(partition.R, 2, 1, 1)},
		{"negative spike", fp.AddLatencySpike(partition.S, -0.1, 0, 1)},
		{"invalid proc", fp.AddStraggler(partition.Proc(99), 2, 0, 1)},
	}
	for _, tc := range cases {
		if !errors.As(tc.err, &ce) {
			t.Errorf("%s: err = %v, want *ConfigError", tc.name, tc.err)
		}
	}
}

func TestFaultPlanRejectsOverlappingWindows(t *testing.T) {
	fp := NewFaultPlan()
	if err := fp.AddStraggler(partition.P, 2, 0, 10); err != nil {
		t.Fatal(err)
	}
	var ce *ConfigError
	if err := fp.AddStraggler(partition.P, 3, 5, 15); !errors.As(err, &ce) {
		t.Fatalf("overlap: err = %v, want *ConfigError", err)
	}
	// Adjacent windows are fine, and another processor is independent.
	if err := fp.AddStraggler(partition.P, 3, 10, 20); err != nil {
		t.Fatal(err)
	}
	if err := fp.AddStraggler(partition.R, 3, 5, 15); err != nil {
		t.Fatal(err)
	}
}

func TestStretchOver(t *testing.T) {
	ws := []Window{{From: 2, Until: 4, Factor: 2}}
	cases := []struct {
		name        string
		start, work float64
		want        float64
	}{
		{"entirely before", 0, 1, 1},
		{"entirely after", 4, 3, 3},
		{"entirely inside", 2, 1, 2},   // 1s of work at half speed
		{"spans the onset", 1, 2, 3},   // 1s clean + 1s at half speed
		{"runs past the end", 2, 3, 4}, // window span 2s completes 1s of work, 2s clean after
		{"zero work", 1, 0, 0},
	}
	for _, tc := range cases {
		if got := stretchOver(tc.start, tc.work, ws); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: stretchOver(%v, %v) = %v, want %v", tc.name, tc.start, tc.work, got, tc.want)
		}
	}
	// An infinite window stretches forever.
	inf := []Window{{From: 0, Until: math.Inf(1), Factor: 3}}
	if got := stretchOver(5, 2, inf); math.Abs(got-6) > 1e-12 {
		t.Errorf("infinite window: got %v, want 6", got)
	}
}

func TestSpikeExtra(t *testing.T) {
	spikes := []Spike{{From: 0, Until: 1, Extra: 0.5}, {From: 0.5, Until: 2, Extra: 0.25}}
	if got := spikeExtra(0.75, spikes); got != 0.75 {
		t.Fatalf("overlapping spikes should add: got %v", got)
	}
	if got := spikeExtra(3, spikes); got != 0 {
		t.Fatalf("outside all spikes: got %v", got)
	}
}

func studyGrid(t *testing.T) (model.Machine, *partition.Grid) {
	t.Helper()
	ratio := partition.MustRatio(5, 2, 1)
	g, err := partition.Build(partition.SquareCorner, 64, ratio)
	if err != nil {
		t.Fatal(err)
	}
	return model.DefaultMachine(ratio), g
}

// TestSimulateFaultsNilAndIdentityPlansMatchClean pins the two no-op
// cases: a nil plan and a Factor=1 plan must reproduce the clean result
// exactly, for every algorithm.
func TestSimulateFaultsNilAndIdentityPlansMatchClean(t *testing.T) {
	m, g := studyGrid(t)
	identity := NewFaultPlan()
	for _, p := range partition.Procs {
		if err := identity.AddStraggler(p, 1, 0, math.Inf(1)); err != nil {
			t.Fatal(err)
		}
		if err := identity.AddLinkDegrade(p, 1, 0, math.Inf(1)); err != nil {
			t.Fatal(err)
		}
	}
	for _, a := range model.AllAlgorithms {
		clean, err := Simulate(a, m, g, 0)
		if err != nil {
			t.Fatal(err)
		}
		viaNil, err := SimulateFaults(a, m, g, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if viaNil != clean {
			t.Errorf("%v: nil plan differs from clean: %+v vs %+v", a, viaNil, clean)
		}
		viaID, err := SimulateFaults(a, m, g, 0, identity)
		if err != nil {
			t.Fatal(err)
		}
		if viaID.TExe != clean.TExe {
			t.Errorf("%v: identity plan TExe %v, clean %v", a, viaID.TExe, clean.TExe)
		}
	}
}

func TestSimulateFaultsStragglerSlowsAndIsDeterministic(t *testing.T) {
	m, g := studyGrid(t)
	fp := NewFaultPlan()
	if err := fp.AddStraggler(partition.P, 3, 0, math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	for _, a := range model.AllAlgorithms {
		clean, err := Simulate(a, m, g, 0)
		if err != nil {
			t.Fatal(err)
		}
		faulted, err := SimulateFaults(a, m, g, 0, fp)
		if err != nil {
			t.Fatal(err)
		}
		if faulted.TExe <= clean.TExe {
			t.Errorf("%v: straggling P did not slow the run: %v vs clean %v", a, faulted.TExe, clean.TExe)
		}
		again, err := SimulateFaults(a, m, g, 0, fp)
		if err != nil {
			t.Fatal(err)
		}
		if again != faulted {
			t.Errorf("%v: fault simulation is not deterministic: %+v vs %+v", a, again, faulted)
		}
	}
}

func TestSimulateFaultsLinkDegradeAndSpike(t *testing.T) {
	m, g := studyGrid(t)
	clean, err := Simulate(model.SCB, m, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	fp := NewFaultPlan()
	// Degrade every link and stall every early message: communication
	// must finish later than on the clean platform.
	for _, p := range partition.Procs {
		if err := fp.AddLinkDegrade(p, 10, 0, math.Inf(1)); err != nil {
			t.Fatal(err)
		}
		if err := fp.AddLatencySpike(p, clean.TExe, 0, math.Inf(1)); err != nil {
			t.Fatal(err)
		}
	}
	faulted, err := SimulateFaults(model.SCB, m, g, 0, fp)
	if err != nil {
		t.Fatal(err)
	}
	if faulted.TComm <= clean.TComm {
		t.Fatalf("degraded links did not delay communication: %v vs %v", faulted.TComm, clean.TComm)
	}
	// The spike alone stalls each send by a full clean makespan.
	if faulted.TExe < clean.TExe+clean.TExe {
		t.Fatalf("latency spike not applied: faulted %v, clean %v", faulted.TExe, clean.TExe)
	}
}

func TestStretchCPUExported(t *testing.T) {
	fp := NewFaultPlan()
	if err := fp.AddStraggler(partition.P, 3, 0, math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	if got := fp.StretchCPU(partition.P, 0, 2); got != 6 {
		t.Fatalf("StretchCPU(P, 0, 2) = %v, want 6 under a persistent 3× straggler", got)
	}
	// Unaffected processor and nil plan pass work through unchanged.
	if got := fp.StretchCPU(partition.R, 0, 2); got != 2 {
		t.Fatalf("StretchCPU(R) = %v, want 2", got)
	}
	var nilPlan *FaultPlan
	if got := nilPlan.StretchCPU(partition.P, 0, 2); got != 2 {
		t.Fatalf("nil plan StretchCPU = %v, want 2", got)
	}
	// A bounded window stretches only the covered span: 1s of work at
	// factor 2 over [0, 1) takes 2s wall, the rest runs at full speed.
	fp2 := NewFaultPlan()
	if err := fp2.AddStraggler(partition.P, 2, 0, 1); err != nil {
		t.Fatal(err)
	}
	if got := fp2.StretchCPU(partition.P, 0, 3); got != 3.5 {
		t.Fatalf("bounded window: got %v, want 3.5 (1s wall does 0.5 work in the window, 2.5 after)", got)
	}
}
