package model

import (
	"math"

	"repro/internal/partition"
)

// This file carries the closed-form communication-volume expressions the
// Section X comparison uses, in the paper's normalised coordinates
// (matrix dimension N = 1). Multiply by N² to obtain element counts for a
// concrete matrix. The exact-grid VoC of a constructed candidate converges
// to these expressions as N grows; the tests verify that.

// NormalizedVoC returns the closed-form Volume of Communication of a
// canonical candidate shape for the given ratio, normalised by N² (so a
// VoC of v means v·N² elements). It returns ok=false when the shape is
// infeasible for the ratio (Thm 9.1) or no closed form is defined.
func NormalizedVoC(s partition.Shape, ratio partition.Ratio) (v float64, ok bool) {
	t := ratio.T()
	fR := ratio.Rr / t
	fS := ratio.Sr / t
	switch s {
	case partition.SquareCorner:
		// Two disjoint squares of sides √fR and √fS: the rows and the
		// columns crossing each square host two processors.
		// VoC = 2N(R_w + S_w) → 2(√fR + √fS) in normalised units.
		if !partition.SquareCornerFeasible(ratio) {
			return 0, false
		}
		return 2 * (math.Sqrt(fR) + math.Sqrt(fS)), true

	case partition.RectangleCorner:
		// Corner rectangles of widths x and 1−x (Section IX-B.1). Rows
		// crossing each rectangle cost its height; every column costs 1
		// (each column meets exactly two processors)... in normalised
		// terms VoC = (hR + hS) + 1 with hR = fR/x, hS = fS/(1−x),
		// minimised over the split x. The row term saturates at 1: once
		// the two rectangles jointly span every row (hR + hS ≥ 1) each
		// row hosts exactly two processors — {R,P}, {R,S} or {S,P} — and
		// costs 1 no matter how much the bands overlap, so VoC = 2. The
		// canonical builder minimises hR + hS and lands in that regime
		// whenever no unsaturated split exists (e.g. ratio 2:2:1).
		best := math.Inf(1)
		for x := 0.01; x < 0.995; x += 0.005 {
			hR := fR / x
			hS := fS / (1 - x)
			if hR > 1 || hS > 1 {
				continue
			}
			if c := hR + hS; c < best {
				best = c
			}
		}
		if math.IsInf(best, 1) {
			return 0, false
		}
		return math.Min(best, 1) + 1, true

	case partition.SquareRectangle:
		// Full-height strip of width fR (columns crossing it cost... its
		// rows meet two processors: strip rows cost nothing extra — the
		// strip spans all rows, so every row hosts {R,P} → each of the N
		// rows costs 1 where the square adds a third processor.
		// Rows: 1 (every row hosts R and P) + side of the square
		// (those rows gain a third processor). Columns: strip columns
		// host only R? No — the strip is full-height so its columns host
		// R alone (cost 0); the square's columns host {S,P} (cost side);
		// remaining columns host P alone... P spans rows above the
		// square in the square's columns too, so square columns cost 1
		// each over side columns.
		// Net normalised VoC = 1 + 2·√fS.
		side := math.Sqrt(fS)
		wR := fR
		if wR+side > 1 {
			return 0, false
		}
		return 1 + 2*side, true

	case partition.BlockRectangle:
		// Bottom band of height h = fR + fS split between R and S:
		// band rows host {R,S} (cost h), every column hosts two
		// processors (cost 1). VoC = h + 1 — the paper's N(R_len + N).
		return fR + fS + 1, true

	case partition.LRectangle:
		// R full-height strip width fR: every row hosts {R,P}… plus the
		// S band of height hS = fS/(1−fR) across the remaining columns:
		// band rows gain S (third processor) → +hS… rows: 1 + hS? Rows
		// crossing the band host {R,S,P}? The band spans columns right
		// of the strip and P is above it, so band rows host R (strip),
		// S (band): the paper's metric counts processors per row:
		// non-band rows {R,P} → 1; band rows {R,S} → 1 — plus P only
		// when the band does not reach the bottom… canonical form has
		// the band at the bottom: band rows host {R,S} → 1. So all rows
		// cost 1. Columns: strip columns {R} → 0; other columns {S,P} →
		// 1 each → (1−fR). VoC = 1 + (1 − fR).
		if fR >= 1 {
			return 0, false
		}
		return 1 + (1 - fR), true

	case partition.TraditionalRectangle:
		// P strip plus an R/S strip of width w = fR + fS: every row
		// hosts ≥2 processors (cost 1); strip columns host {R,S}
		// (cost w). VoC = 1 + (fR + fS).
		return 1 + fR + fS, true
	}
	return 0, false
}

// SCBCommSeconds returns the modelled SCB communication time in seconds
// for a canonical shape on an N×N matrix under the machine's Hockney
// parameters — the quantity plotted in Figs 13 and 14.
func SCBCommSeconds(s partition.Shape, m Machine, n int) (float64, bool) {
	v, ok := NormalizedVoC(s, m.Ratio)
	if !ok {
		return 0, false
	}
	elements := v * float64(n) * float64(n)
	return m.Net.Alpha + m.Net.Beta*elements, true
}
