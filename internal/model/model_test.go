package model

import (
	"math"
	"testing"

	"repro/internal/partition"
)

func mach(ratio partition.Ratio) Machine { return DefaultMachine(ratio) }

func TestAlgorithmStringsAndParse(t *testing.T) {
	for _, a := range AllAlgorithms {
		got, err := ParseAlgorithm(a.String())
		if err != nil || got != a {
			t.Errorf("round trip %v failed: %v %v", a, got, err)
		}
	}
	if _, err := ParseAlgorithm("XXX"); err == nil {
		t.Error("bogus algorithm should not parse")
	}
	if Algorithm(99).String() == "" {
		t.Error("unknown algorithm string")
	}
}

func TestTopologyString(t *testing.T) {
	if FullyConnected.String() != "fully-connected" || Star.String() != "star" {
		t.Error("topology names")
	}
}

func TestHockney(t *testing.T) {
	h := Hockney{Alpha: 1e-6, Beta: 1e-9}
	if h.Time(0) != 0 {
		t.Error("zero-volume message should cost nothing")
	}
	want := 1e-6 + 1000e-9
	if got := h.Time(1000); math.Abs(got-want) > 1e-18 {
		t.Errorf("Time(1000) = %g, want %g", got, want)
	}
	if h.PerElement() != 1e-9 {
		t.Error("PerElement")
	}
}

func TestSendVolumeDefinition(t *testing.T) {
	// Eq 6 on a hand-built partition: R owns a 2×3 block in a 6×6 grid.
	g := partition.NewGrid(6)
	for i := 1; i < 3; i++ {
		for j := 2; j < 5; j++ {
			g.Set(i, j, partition.R)
		}
	}
	snap := g.Snapshot()
	// Exact sends: R's 6 cells each sit in a shared row (+6) and a shared
	// column (+6) → 12.
	if got := SendVolume(snap, partition.R); got != 12 {
		t.Errorf("sends(R) = %d, want 12", got)
	}
	// P's cells in R's 2 rows: 2·(6−3)=6; in R's 3 cols: 3·(6−2)=12 → 18.
	if got := SendVolume(snap, partition.P); got != 18 {
		t.Errorf("sends(P) = %d, want 18", got)
	}
	if got := SendVolume(snap, partition.S); got != 0 {
		t.Errorf("sends(S) = %d, want 0 for empty processor", got)
	}
	// The paper's literal Eq 6 for comparison: d_R = 6·2+6·3−6 = 24.
	if got := SendVolumeEq6(snap, partition.R); got != 24 {
		t.Errorf("Eq6 d_R = %d, want 24", got)
	}
	// Exact sends always sum to the VoC of Eq 1.
	total := SendVolume(snap, partition.P) + SendVolume(snap, partition.R) + SendVolume(snap, partition.S)
	if total != snap.VoC {
		t.Errorf("Σ sends = %d, VoC = %d", total, snap.VoC)
	}
}

func TestEvaluateSingleProcessorNoComm(t *testing.T) {
	// All elements on P: no communication under any algorithm; execution
	// time is pure computation.
	ratio := partition.MustRatio(2, 1, 1)
	g := partition.NewGrid(8)
	m := mach(ratio)
	for _, a := range AllAlgorithms {
		b := EvaluateGrid(a, m, g)
		if b.Comm != 0 {
			t.Errorf("%v: comm = %g, want 0", a, b.Comm)
		}
		wantComp := float64(64*8) * m.FlopTime / ratio.Pr
		if b.Total < wantComp-1e-15 || b.Total > wantComp*1.2+1e-15 {
			t.Errorf("%v: total %g implausible vs pure compute %g", a, b.Total, wantComp)
		}
	}
}

func TestSCBUsesFullVoC(t *testing.T) {
	ratio := partition.MustRatio(5, 2, 1)
	g, err := partition.Build(partition.BlockRectangle, 60, ratio)
	if err != nil {
		t.Fatal(err)
	}
	m := mach(ratio)
	b := EvaluateGrid(SCB, m, g)
	want := m.Net.Time(g.VoC())
	if math.Abs(b.Comm-want) > 1e-15 {
		t.Errorf("SCB comm = %g, want Hockney(VoC) = %g", b.Comm, want)
	}
}

func TestPCBNoSlowerThanSerializedSends(t *testing.T) {
	ratio := partition.MustRatio(5, 2, 1)
	g, err := partition.Build(partition.TraditionalRectangle, 60, ratio)
	if err != nil {
		t.Fatal(err)
	}
	m := mach(ratio)
	pcb := EvaluateGrid(PCB, m, g)
	var serial float64
	for _, p := range partition.Procs {
		serial += m.Net.Time(SendVolume(g.Snapshot(), p))
	}
	if pcb.Comm > serial+1e-15 {
		t.Errorf("parallel comm %g exceeds serialised sends %g", pcb.Comm, serial)
	}
	if pcb.Comm <= 0 {
		t.Error("expected nonzero parallel comm")
	}
}

func TestOverlapAlgorithmsNeverSlower(t *testing.T) {
	// Bulk overlap can only help: T(SCO) ≤ T(SCB), T(PCO) ≤ T(PCB).
	for _, ratio := range partition.PaperRatios {
		for _, s := range partition.AllShapes {
			g, err := partition.Build(s, 80, ratio)
			if err != nil {
				continue
			}
			m := mach(ratio)
			if sco, scb := EvaluateGrid(SCO, m, g), EvaluateGrid(SCB, m, g); sco.Total > scb.Total+1e-12 {
				t.Errorf("%v %v: SCO %g > SCB %g", s, ratio, sco.Total, scb.Total)
			}
			if pco, pcb := EvaluateGrid(PCO, m, g), EvaluateGrid(PCB, m, g); pco.Total > pcb.Total+1e-12 {
				t.Errorf("%v %v: PCO %g > PCB %g", s, ratio, pco.Total, pcb.Total)
			}
		}
	}
}

func TestLowerVoCNeverWorseSCB(t *testing.T) {
	// The Section IV-B assertion underlying the entire Push programme:
	// with computation balanced (identical counts), lower VoC gives
	// equal-or-lower modelled execution time. Compare candidate shapes
	// pairwise under SCB.
	ratio := partition.MustRatio(10, 1, 1)
	m := mach(ratio)
	type entry struct {
		voc   int64
		total float64
	}
	var entries []entry
	for _, s := range partition.AllShapes {
		g, err := partition.Build(s, 100, ratio)
		if err != nil {
			continue
		}
		b := EvaluateGrid(SCB, m, g)
		entries = append(entries, entry{g.VoC(), b.Total})
	}
	for i := range entries {
		for j := range entries {
			if entries[i].voc < entries[j].voc && entries[i].total > entries[j].total+1e-12 {
				t.Errorf("lower VoC (%d vs %d) but higher time (%g vs %g)",
					entries[i].voc, entries[j].voc, entries[i].total, entries[j].total)
			}
		}
	}
}

func TestStarTopologyNeverCheaperThanFull(t *testing.T) {
	ratio := partition.MustRatio(4, 2, 1)
	g, err := partition.Build(partition.BlockRectangle, 60, ratio)
	if err != nil {
		t.Fatal(err)
	}
	full := mach(ratio)
	star := full
	star.Topology = Star
	for _, a := range AllAlgorithms {
		f := EvaluateGrid(a, full, g)
		s := EvaluateGrid(a, star, g)
		if s.Total < f.Total-1e-12 {
			t.Errorf("%v: star %g cheaper than fully connected %g", a, s.Total, f.Total)
		}
	}
}

func TestNormalizedVoCAgainstGrids(t *testing.T) {
	// The closed forms must match the exact VoC of constructed shapes as
	// N grows (within O(1/N) raggedness).
	const n = 400
	for _, ratio := range []partition.Ratio{
		partition.MustRatio(10, 1, 1),
		partition.MustRatio(5, 2, 1),
		partition.MustRatio(4, 2, 1),
	} {
		for _, s := range partition.AllShapes {
			v, ok := NormalizedVoC(s, ratio)
			if !ok {
				continue
			}
			g, err := partition.Build(s, n, ratio)
			if err != nil {
				t.Errorf("%v %v: closed form feasible but construction failed: %v", s, ratio, err)
				continue
			}
			exact := float64(g.VoC()) / float64(n*n)
			if math.Abs(exact-v) > 0.03 {
				t.Errorf("%v %v: closed form %.4f vs exact %.4f", s, ratio, v, exact)
			}
		}
	}
}

func TestSquareCornerBeatsBlockRectangleAtHighHeterogeneity(t *testing.T) {
	// The paper's headline comparison (Fig 13/14): SC loses at low
	// heterogeneity, wins at high.
	low := partition.MustRatio(3, 1, 1)
	high := partition.MustRatio(20, 1, 1)
	scLow, ok1 := NormalizedVoC(partition.SquareCorner, low)
	brLow, ok2 := NormalizedVoC(partition.BlockRectangle, low)
	scHigh, ok3 := NormalizedVoC(partition.SquareCorner, high)
	brHigh, ok4 := NormalizedVoC(partition.BlockRectangle, high)
	if !ok1 || !ok2 || !ok3 || !ok4 {
		t.Fatal("all four closed forms should exist")
	}
	if scLow < brLow {
		t.Errorf("at 3:1:1 Block-Rectangle should win: SC %.3f BR %.3f", scLow, brLow)
	}
	if scHigh > brHigh {
		t.Errorf("at 20:1:1 Square-Corner should win: SC %.3f BR %.3f", scHigh, brHigh)
	}
}

func TestFig14CrossoverLocation(t *testing.T) {
	// For x:1:1 ratios the SCB crossover solves 4/√T = 1 + 2/T, i.e.
	// √T = 2+√2, T ≈ 11.66, x = T−2 ≈ 9.7.
	var crossover float64
	prev := math.Inf(1)
	for x := 2.0; x <= 25; x += 0.25 {
		ratio := partition.MustRatio(x, 1, 1)
		sc, okSC := NormalizedVoC(partition.SquareCorner, ratio)
		br, _ := NormalizedVoC(partition.BlockRectangle, ratio)
		if !okSC {
			continue
		}
		diff := sc - br
		if prev > 0 && diff <= 0 {
			crossover = x
			break
		}
		prev = diff
	}
	if crossover < 9 || crossover > 10.5 {
		t.Errorf("SC/BR crossover at x = %.2f, expected ≈ 9.7", crossover)
	}
}

func TestSCBCommSeconds(t *testing.T) {
	ratio := partition.MustRatio(10, 1, 1)
	m := mach(ratio)
	secs, ok := SCBCommSeconds(partition.SquareCorner, m, 5000)
	if !ok {
		t.Fatal("should be feasible")
	}
	v, _ := NormalizedVoC(partition.SquareCorner, ratio)
	want := v * 25e6 * m.Net.Beta
	if math.Abs(secs-want) > 1e-12 {
		t.Errorf("comm seconds %g, want %g", secs, want)
	}
	if _, ok := SCBCommSeconds(partition.SquareCorner, mach(partition.MustRatio(2, 2, 1)), 100); ok {
		t.Error("infeasible ratio should report !ok")
	}
}

func TestCommVolumeStarAddsRelay(t *testing.T) {
	ratio := partition.MustRatio(4, 2, 1)
	g, err := partition.Build(partition.BlockRectangle, 40, ratio)
	if err != nil {
		t.Fatal(err)
	}
	snap := g.Snapshot()
	full := mach(ratio)
	star := full
	star.Topology = Star
	if CommVolume(star, snap) <= CommVolume(full, snap) {
		t.Error("star volume should exceed fully-connected for shapes with R↔S traffic")
	}
}

func TestEvaluatePanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown algorithm should panic")
		}
	}()
	Evaluate(Algorithm(42), mach(partition.MustRatio(2, 1, 1)), partition.Metrics{N: 4})
}

func BenchmarkEvaluateAll(b *testing.B) {
	ratio := partition.MustRatio(5, 2, 1)
	g, err := partition.Build(partition.BlockRectangle, 200, ratio)
	if err != nil {
		b.Fatal(err)
	}
	m := mach(ratio)
	snap := g.Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, a := range AllAlgorithms {
			Evaluate(a, m, snap)
		}
	}
}

func TestIdealTimeAndEfficiency(t *testing.T) {
	ratio := partition.MustRatio(5, 2, 1)
	m := mach(ratio)
	const n = 100
	// Ideal: n³ updates at aggregate speed T.
	want := float64(n) * float64(n) * float64(n) * m.FlopTime / ratio.T()
	if got := IdealTime(m, n); math.Abs(got-want) > 1e-18 {
		t.Errorf("IdealTime = %g, want %g", got, want)
	}
	// A balanced partition's efficiency is in (0, 1]; a shape with less
	// communication is at least as efficient.
	br, err := partition.Build(partition.BlockRectangle, n, ratio)
	if err != nil {
		t.Fatal(err)
	}
	lr, err := partition.Build(partition.LRectangle, n, ratio)
	if err != nil {
		t.Fatal(err)
	}
	effBR := Efficiency(SCB, m, br.Snapshot())
	effLR := Efficiency(SCB, m, lr.Snapshot())
	if effBR <= 0 || effBR > 1 {
		t.Errorf("efficiency out of range: %g", effBR)
	}
	if br.VoC() < lr.VoC() && effBR < effLR {
		t.Errorf("lower-VoC shape should be at least as efficient: %g vs %g", effBR, effLR)
	}
	// Perfectly communication-free single processor at the aggregate's
	// share: the all-P grid has efficiency Pr/T (only P works).
	allP := partition.NewGrid(n)
	eff := Efficiency(SCB, m, allP.Snapshot())
	want = ratio.Pr / ratio.T()
	if math.Abs(eff-want) > 1e-9 {
		t.Errorf("all-P efficiency %g, want Pr/T = %g", eff, want)
	}
}

func TestParseTopology(t *testing.T) {
	cases := []struct {
		in   string
		want Topology
		ok   bool
	}{
		{"", FullyConnected, true},
		{"fully-connected", FullyConnected, true},
		{"star", Star, true},
		{"ring", 0, false},
	}
	for _, c := range cases {
		got, err := ParseTopology(c.in)
		if (err == nil) != c.ok || (c.ok && got != c.want) {
			t.Errorf("ParseTopology(%q) = %v, %v", c.in, got, err)
		}
	}
}
