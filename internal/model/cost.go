package model

import (
	"fmt"
	"math"

	"repro/internal/partition"
)

// This file extracts the execution-time estimate behind a pluggable cost
// model (ROADMAP item #2). The paper's models price every transfer on one
// uniform Hockney link; real 3-processor platforms are hierarchical — two
// GPUs sharing a node plus one across a rack, or three islands behind WAN
// links — and the partition that wins under a uniform network can lose
// badly when the R↔S link is 10× slower. A CostModel prices each directed
// processor pair separately; Evaluate consults it for every communication
// and computation term.
//
// Compatibility contract: a Machine with a nil Cost, or with an explicit
// UniformHockney, reproduces the pre-CostModel evaluation BIT FOR BIT
// (the seed equivalence goldens enforce this), and a LinkMatrix whose six
// links are all equal reproduces it bit for bit through the general
// per-pair path (TestLinkMatrixUniformExact enforces that, including the
// per-step α amortisation in PIO). The latter works because the general
// path groups links into classes of identical (α, β) and sums each
// class's volume in int64 before touching floats: with one class the
// arithmetic collapses to literally α + β·float64(V), the legacy
// expression.

// ConfigError reports an invalid cost-model or topology configuration
// field. It mirrors the typed config errors of the push and experiment
// layers so wire handlers can map it to a 400 with a field name.
type ConfigError struct {
	Field  string
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("model: %s: %s", e.Field, e.Reason)
}

// CostModel prices communication and computation for the three-processor
// platform. Implementations must be deterministic: equal inputs produce
// bit-equal outputs.
type CostModel interface {
	// Link returns the Hockney parameters of the directed link from→to.
	// The diagonal is meaningless; implementations may return anything.
	Link(from, to partition.Proc) Hockney
	// CommTime returns the serialised communication time of the
	// snapshot's full traffic — every unicast send on its own link, one
	// channel active at a time (the SCB/SCO communication phase).
	CommTime(snap partition.Metrics) float64
	// SendTime returns sender p's communication time when all three
	// processors transmit concurrently: p serialises its own outgoing
	// volume (the PCB/PCO sender term, fully-connected form).
	SendTime(snap partition.Metrics, p partition.Proc) float64
	// StepCommTime returns the per-pivot-step communication time of the
	// interleaved algorithm: the snapshot's volume spread over n steps
	// with per-message latency paid every step (the PIO α sensitivity).
	StepCommTime(snap partition.Metrics, n int) float64
	// CompTime returns the seconds processor p needs to perform updates
	// element-updates of the kij loop.
	CompTime(p partition.Proc, updates int64) float64
	// Weights returns the per-pair acceptance weights for the push
	// engine's cost-weighted VoC: each directed link's β relative to the
	// fastest link, so a uniform network is all ones.
	Weights() partition.Weights
	// Uniform reports whether every directed link is identical, in which
	// case Evaluate takes the legacy single-link path unchanged.
	Uniform() bool
}

// Compute carries the computation side of a cost model: the speed ratio
// and the slowest processor's per-element-update time. Both concrete cost
// models embed it.
type Compute struct {
	Ratio    partition.Ratio
	FlopTime float64
}

// CompTime returns the seconds processor p needs for updates
// element-updates — float64(updates)·FlopTime/Speed(p), the exact legacy
// expression (updates stays below 2⁵³ for any tractable N, so the int64→
// float64 conversion is lossless).
func (c Compute) CompTime(p partition.Proc, updates int64) float64 {
	return float64(updates) * c.FlopTime / c.Ratio.Speed(p)
}

// UniformHockney is the paper's cost model: one Hockney link shared by
// every processor pair. It reproduces the legacy Machine evaluation bit
// for bit.
type UniformHockney struct {
	Net Hockney
	Compute
}

// NewUniformCost packages m's legacy network and compute parameters as an
// explicit cost model. Evaluate(m with Cost=NewUniformCost(m)) is
// bit-identical to Evaluate(m with Cost=nil).
func NewUniformCost(m Machine) UniformHockney {
	return UniformHockney{
		Net:     m.Net,
		Compute: Compute{Ratio: m.Ratio, FlopTime: m.FlopTime},
	}
}

func (u UniformHockney) Link(from, to partition.Proc) Hockney { return u.Net }

func (u UniformHockney) CommTime(snap partition.Metrics) float64 {
	return u.Net.Time(snap.VoC)
}

func (u UniformHockney) SendTime(snap partition.Metrics, p partition.Proc) float64 {
	return u.Net.Time(snap.Sends[p])
}

func (u UniformHockney) StepCommTime(snap partition.Metrics, n int) float64 {
	if snap.VoC <= 0 {
		return 0
	}
	return u.Net.Alpha + u.Net.Beta*float64(snap.VoC)/float64(n)
}

func (u UniformHockney) Weights() partition.Weights { return partition.UniformWeights() }

func (u UniformHockney) Uniform() bool { return true }

// LinkMatrix prices every directed processor pair separately: Links[p][q]
// is the Hockney model of the p→q link. Asymmetric entries model duplex
// imbalance; hierarchical platforms (GPU-node / rack / WAN) set the
// intra-island links fast and the crossing links slow. The diagonal is
// ignored.
type LinkMatrix struct {
	Links [partition.NumProcs][partition.NumProcs]Hockney
	Compute
}

// Validate checks every off-diagonal link: β must be positive and finite,
// α non-negative and finite. It returns a *ConfigError naming the first
// offending link.
func (lm *LinkMatrix) Validate() error {
	for _, p := range partition.Procs {
		for _, q := range partition.Procs {
			if p == q {
				continue
			}
			h := lm.Links[p][q]
			field := fmt.Sprintf("links[%s>%s]", p, q)
			switch {
			case math.IsNaN(h.Beta) || math.IsInf(h.Beta, 0):
				return &ConfigError{Field: field, Reason: fmt.Sprintf("beta must be finite, got %v", h.Beta)}
			case h.Beta <= 0:
				return &ConfigError{Field: field, Reason: fmt.Sprintf("beta must be positive, got %v", h.Beta)}
			case math.IsNaN(h.Alpha) || math.IsInf(h.Alpha, 0):
				return &ConfigError{Field: field, Reason: fmt.Sprintf("alpha must be finite, got %v", h.Alpha)}
			case h.Alpha < 0:
				return &ConfigError{Field: field, Reason: fmt.Sprintf("alpha must be non-negative, got %v", h.Alpha)}
			}
		}
	}
	return nil
}

func (lm *LinkMatrix) Link(from, to partition.Proc) Hockney { return lm.Links[from][to] }

// linkClass is one group of directed links sharing identical (α, β).
type linkClass struct {
	h   Hockney
	vol int64
}

// classify groups the used directed links (vol > 0) by identical Hockney
// parameters, in fixed p-major pair order, summing volumes in int64. The
// fixed order and integer accumulation make the float reduction
// deterministic and, for a single class, exactly the legacy single-link
// expression.
func (lm *LinkMatrix) classify(vols [partition.NumProcs][partition.NumProcs]int64) []linkClass {
	classes := make([]linkClass, 0, partition.NumProcs*(partition.NumProcs-1))
	for p := 0; p < partition.NumProcs; p++ {
		for q := 0; q < partition.NumProcs; q++ {
			v := vols[p][q]
			if p == q || v <= 0 {
				continue
			}
			h := lm.Links[p][q]
			merged := false
			for i := range classes {
				if classes[i].h == h {
					classes[i].vol += v
					merged = true
					break
				}
			}
			if !merged {
				classes = append(classes, linkClass{h: h, vol: v})
			}
		}
	}
	return classes
}

// CommTime serialises the snapshot's traffic across the link classes: one
// bulk message per class, latencies sequential. With one class this is
// α + β·float64(V) — Hockney.Time of the total volume.
func (lm *LinkMatrix) CommTime(snap partition.Metrics) float64 {
	var sum float64
	for _, c := range lm.classify(snap.PairSends) {
		sum += c.h.Alpha + c.h.Beta*float64(c.vol)
	}
	return sum
}

// SendTime returns sender p's communication time when all processors
// transmit concurrently: p serialises its own outgoing volume across its
// link classes (the PCB/PCO sender term).
func (lm *LinkMatrix) SendTime(snap partition.Metrics, p partition.Proc) float64 {
	var vols [partition.NumProcs][partition.NumProcs]int64
	vols[p] = snap.PairSends[p]
	var sum float64
	for _, c := range lm.classify(vols) {
		sum += c.h.Alpha + c.h.Beta*float64(c.vol)
	}
	return sum
}

// StepCommTime returns the per-pivot-step communication time of the
// interleaved algorithm: each class's volume spread over the n steps with
// its per-message latency paid every step (the PIO α sensitivity).
func (lm *LinkMatrix) StepCommTime(snap partition.Metrics, n int) float64 {
	var sum float64
	for _, c := range lm.classify(snap.PairSends) {
		sum += c.h.Alpha + c.h.Beta*float64(c.vol)/float64(n)
	}
	return sum
}

// Weights returns each directed link's β divided by the smallest β — the
// relative per-element prices the push engine's weighted acceptance test
// minimises. Validate guarantees the minimum is positive.
func (lm *LinkMatrix) Weights() partition.Weights {
	minBeta := math.Inf(1)
	for _, p := range partition.Procs {
		for _, q := range partition.Procs {
			if p != q && lm.Links[p][q].Beta < minBeta {
				minBeta = lm.Links[p][q].Beta
			}
		}
	}
	var w partition.Weights
	for _, p := range partition.Procs {
		for _, q := range partition.Procs {
			if p != q {
				w[p][q] = lm.Links[p][q].Beta / minBeta
			}
		}
	}
	return w
}

// Uniform always reports false: even an all-equal LinkMatrix evaluates
// through the general per-pair path, so the equivalence property tests
// exercise that path rather than a shortcut.
func (lm *LinkMatrix) Uniform() bool { return false }

// evalGeneral is the per-pair generalisation of Eqs 2–9: the same five
// algorithm structures as the legacy path, with every communication term
// priced by the cost model and every computation term by its CompTime.
// Machine.Topology is ignored here — a link matrix models the
// interconnect itself, and the topology-spec layer rejects star combined
// with explicit links.
func evalGeneral(a Algorithm, c CostModel, snap partition.Metrics) Breakdown {
	maxComp := func(counts [partition.NumProcs]int, perStep bool) float64 {
		var worst float64
		for _, p := range partition.Procs {
			updates := int64(counts[p])
			if !perStep {
				updates *= int64(snap.N)
			}
			if t := c.CompTime(p, updates); t > worst {
				worst = t
			}
		}
		return worst
	}
	maxSend := func() float64 {
		var comm float64
		for _, p := range partition.Procs {
			if t := c.SendTime(snap, p); t > comm {
				comm = t
			}
		}
		return comm
	}
	switch a {
	case SCB:
		comm := c.CommTime(snap)
		comp := maxComp(snap.Elements, false)
		return Breakdown{Algorithm: SCB, Comm: comm, Comp: comp, Total: comm + comp}
	case PCB:
		comm := maxSend()
		comp := maxComp(snap.Elements, false)
		return Breakdown{Algorithm: PCB, Comm: comm, Comp: comp, Total: comm + comp}
	case SCO, PCO:
		var comm float64
		if a == SCO {
			comm = c.CommTime(snap)
		} else {
			comm = maxSend()
		}
		var overlap float64
		var remainder [partition.NumProcs]int
		for _, p := range partition.Procs {
			if t := c.CompTime(p, int64(snap.Overlap[p])*int64(snap.N)); t > overlap {
				overlap = t
			}
			remainder[p] = snap.Elements[p] - snap.Overlap[p]
		}
		comp := maxComp(remainder, false)
		first := comm
		if overlap > first {
			first = overlap
		}
		return Breakdown{Algorithm: a, Comm: comm, Overlap: overlap, Comp: comp, Total: first + comp}
	case PIO:
		n := snap.N
		if n == 0 {
			return Breakdown{Algorithm: PIO}
		}
		stepComm := c.StepCommTime(snap, n)
		stepComp := maxComp(snap.Elements, true)
		stepMax := stepComm
		if stepComp > stepMax {
			stepMax = stepComp
		}
		total := stepComm + float64(n)*stepMax + stepComp
		return Breakdown{
			Algorithm: PIO,
			Comm:      stepComm * float64(n),
			Comp:      stepComp * float64(n),
			Total:     total,
		}
	}
	panic("model: unknown algorithm")
}
