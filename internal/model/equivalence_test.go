package model

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/partition"
)

var updateEquivalence = flag.Bool("update", false, "rewrite the equivalence golden files with the current output")

// The equivalence suite pins every evaluation path in this package to
// bytes generated from the pre-CostModel seed code. The golden file was
// produced with -update BEFORE the CostModel refactor landed; the
// refactored code must keep reproducing it bit for bit (floats are
// rendered in hex, so "equal bytes" means "equal float64 bits").
//
// Coverage: six shapes × the eleven paper ratios × N ∈ {64, 128, 256},
// all five algorithms, both legacy topologies, plus the closed forms.

// hexF renders a float64 with no loss: equal strings ⇔ equal bits.
func hexF(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

var equivalenceSizes = []int{64, 128, 256}

// seedEvaluate is the evaluation entry point under test. It exists so the
// golden corpus can be replayed against different Machine configurations
// (legacy nil-cost and explicit UniformHockney) that must all agree.
type seedEvaluate func(a Algorithm, ratio partition.Ratio, topo Topology, snap partition.Metrics) Breakdown

func legacyEvaluate(a Algorithm, ratio partition.Ratio, topo Topology, snap partition.Metrics) Breakdown {
	m := DefaultMachine(ratio)
	m.Topology = topo
	return Evaluate(a, m, snap)
}

// writeEquivalenceCorpus renders the full evaluation corpus using eval.
func writeEquivalenceCorpus(t *testing.T, eval seedEvaluate) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, n := range equivalenceSizes {
		for _, ratio := range partition.PaperRatios {
			for _, s := range partition.AllShapes {
				g, err := partition.Build(s, n, ratio)
				if err != nil {
					fmt.Fprintf(&buf, "%s|%s|%d infeasible\n", s, ratio.Key(), n)
					continue
				}
				snap := g.Snapshot()
				fmt.Fprintf(&buf, "%s|%s|%d voc=%d sends=%d,%d,%d\n",
					s, ratio.Key(), n, snap.VoC,
					snap.Sends[partition.P], snap.Sends[partition.R], snap.Sends[partition.S])
				for _, topo := range []Topology{FullyConnected, Star} {
					for _, a := range AllAlgorithms {
						b := eval(a, ratio, topo, snap)
						fmt.Fprintf(&buf, "  %s/%s comm=%s overlap=%s comp=%s total=%s\n",
							topo, a, hexF(b.Comm), hexF(b.Overlap), hexF(b.Comp), hexF(b.Total))
					}
				}
			}
		}
	}
	// Closed forms (NormalizedVoC and the Fig 13/14 SCB seconds at N=5000).
	for _, ratio := range partition.PaperRatios {
		for _, s := range partition.AllShapes {
			v, ok := NormalizedVoC(s, ratio)
			if !ok {
				fmt.Fprintf(&buf, "closed|%s|%s infeasible\n", s, ratio.Key())
				continue
			}
			sec, _ := SCBCommSeconds(s, DefaultMachine(ratio), 5000)
			fmt.Fprintf(&buf, "closed|%s|%s voc=%s scb5000=%s\n", s, ratio.Key(), hexF(v), hexF(sec))
		}
	}
	return buf.Bytes()
}

func checkEquivalenceGolden(t *testing.T, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "seed_equivalence.golden")
	if *updateEquivalence {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update at seed state first): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("evaluation output diverged from the seed golden %s.\n"+
			"If the change is intentional, regenerate with -update and justify the diff;\n"+
			"the UniformHockney path is contractually bit-identical to the seed.", path)
	}
}

// TestSeedEquivalenceLegacy pins the default (legacy) Machine evaluation
// path to the seed golden bytes.
func TestSeedEquivalenceLegacy(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence corpus builds 396 grids; skipped in -short")
	}
	checkEquivalenceGolden(t, writeEquivalenceCorpus(t, legacyEvaluate))
}

// TestSeedEquivalenceUniformCost replays the corpus with an explicit
// UniformHockney cost model installed: the refactored dispatch must
// reproduce the seed bytes bit for bit.
func TestSeedEquivalenceUniformCost(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence corpus builds 396 grids; skipped in -short")
	}
	eval := func(a Algorithm, ratio partition.Ratio, topo Topology, snap partition.Metrics) Breakdown {
		m := DefaultMachine(ratio)
		m.Topology = topo
		m.Cost = NewUniformCost(m)
		// Scramble the legacy fields the cost model must now supply, so
		// the test fails if dispatch silently keeps reading them.
		m.Net = Hockney{Alpha: 999, Beta: 999}
		m.FlopTime = 999
		return Evaluate(a, m, snap)
	}
	checkEquivalenceGolden(t, writeEquivalenceCorpus(t, eval))
}
