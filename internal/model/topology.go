package model

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/partition"
)

// TopologySpec is the parsed form of the wire-level `topology` field. The
// grammar covers the legacy named topologies and the per-link classes the
// cost model supports:
//
//	""                 — fully connected, uniform links (legacy default)
//	"fully-connected"  — same, explicit
//	"star"             — legacy star relaying through P
//	"2+1[:f]"          — P and R share a node; every link touching S
//	                     crosses an interconnect f× slower (default 10)
//	"3-island[:f]"     — each processor is its own island on a
//	                     hierarchical fabric: links touching the head
//	                     island P are f× slower, and the R↔S pair crosses
//	                     an oversubscribed second tier at f²× (default
//	                     f=10). The tiering matters: scaling every link
//	                     by the same factor provably cannot move a single
//	                     winner-map cell (computation time is
//	                     shape-invariant per ratio and a uniform rescale
//	                     preserves the communication ordering), so a flat
//	                     3-island would be the uniform topology in
//	                     disguise.
//	"links:<entries>"  — explicit per-pair β multipliers. Entries are
//	                     comma-separated: "PR=2" prices both directions
//	                     of the P↔R link, "P>R=2" only the directed P→R
//	                     link. Every ordered pair must end up priced
//	                     (symmetric entries count for both directions).
//
// Factors multiply the base machine's β (bandwidth share); α is carried
// over unchanged. All factors must be finite and within [1e-6, 1e6].
type TopologySpec struct {
	kind   specKind
	legacy Topology
	factor float64
	mult   [partition.NumProcs][partition.NumProcs]float64
}

type specKind uint8

const (
	kindLegacy specKind = iota
	kindTwoPlusOne
	kindThreeIsland
	kindLinks
)

// Factor bounds: outside this range a multiplier is either a rounding
// hazard or an input-fuzzing artefact, not a plausible interconnect.
const (
	minFactor = 1e-6
	maxFactor = 1e6
)

// maxSpecLen bounds the accepted spec string; anything longer is rejected
// before parsing (oversized wire input).
const maxSpecLen = 256

// Legacy returns the named topology and true when the spec selects one of
// the two legacy interconnects (no per-link matrix).
func (t TopologySpec) Legacy() (Topology, bool) {
	return t.legacy, t.kind == kindLegacy
}

// HasLinks reports whether the spec prices links individually (any
// non-legacy kind).
func (t TopologySpec) HasLinks() bool { return t.kind != kindLegacy }

// Multipliers returns the per-pair β multipliers (diagonal zero); only
// meaningful when HasLinks.
func (t TopologySpec) Multipliers() [partition.NumProcs][partition.NumProcs]float64 {
	return t.mult
}

func formatFactor(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// String renders the canonical form of the spec: named kinds carry their
// factor explicitly and link lists are ordered PR, PS, RS with directed
// entries only where the directions differ. ParseTopologySpec(String())
// round-trips.
func (t TopologySpec) String() string {
	switch t.kind {
	case kindTwoPlusOne:
		return "2+1:" + formatFactor(t.factor)
	case kindThreeIsland:
		return "3-island:" + formatFactor(t.factor)
	case kindLinks:
		var parts []string
		for _, pair := range linkPairs {
			f, r := t.mult[pair.a][pair.b], t.mult[pair.b][pair.a]
			if f == r {
				parts = append(parts, fmt.Sprintf("%s%s=%s", pair.a, pair.b, formatFactor(f)))
			} else {
				parts = append(parts,
					fmt.Sprintf("%s>%s=%s", pair.a, pair.b, formatFactor(f)),
					fmt.Sprintf("%s>%s=%s", pair.b, pair.a, formatFactor(r)))
			}
		}
		return "links:" + strings.Join(parts, ",")
	}
	return t.legacy.String()
}

// linkPairs is the canonical unordered pair order (P fastest first).
var linkPairs = [3]struct{ a, b partition.Proc }{
	{partition.P, partition.R},
	{partition.P, partition.S},
	{partition.R, partition.S},
}

// Apply configures m for the topology: legacy kinds set m.Topology; link
// kinds install a *LinkMatrix built from m's base network (β scaled per
// link, α unchanged) and compute parameters, recording the canonical spec
// so wire formats echo it back.
func (t TopologySpec) Apply(m Machine) Machine {
	if t.kind == kindLegacy {
		m.Topology = t.legacy
		m.Spec = ""
		m.Cost = nil
		return m
	}
	lm := &LinkMatrix{Compute: Compute{Ratio: m.Ratio, FlopTime: m.FlopTime}}
	for _, p := range partition.Procs {
		for _, q := range partition.Procs {
			if p == q {
				continue
			}
			lm.Links[p][q] = Hockney{Alpha: m.Net.Alpha, Beta: m.Net.Beta * t.mult[p][q]}
		}
	}
	m.Topology = FullyConnected
	m.Cost = lm
	m.Spec = t.String()
	return m
}

func specErr(format string, args ...interface{}) error {
	return &ConfigError{Field: "topology", Reason: fmt.Sprintf(format, args...)}
}

func parseFactor(s, what string) (float64, error) {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, specErr("%s: bad factor %q", what, s)
	}
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0, specErr("%s: factor must be finite, got %v", what, f)
	}
	if f < minFactor || f > maxFactor {
		return 0, specErr("%s: factor %v outside [%g, %g]", what, f, minFactor, maxFactor)
	}
	return f, nil
}

func parseProcName(s string) (partition.Proc, bool) {
	switch strings.ToUpper(s) {
	case "P":
		return partition.P, true
	case "R":
		return partition.R, true
	case "S":
		return partition.S, true
	}
	return 0, false
}

// ParseTopologySpec parses a wire topology string. Errors are always
// *ConfigError with Field "topology" — never a panic — so handlers can
// map them to a 400 naming the offending entry.
func ParseTopologySpec(s string) (TopologySpec, error) {
	if len(s) > maxSpecLen {
		return TopologySpec{}, specErr("spec longer than %d bytes", maxSpecLen)
	}
	switch s {
	case "", FullyConnected.String():
		return TopologySpec{kind: kindLegacy, legacy: FullyConnected}, nil
	case Star.String():
		return TopologySpec{kind: kindLegacy, legacy: Star}, nil
	}
	if rest, ok := strings.CutPrefix(s, "links:"); ok {
		return parseLinkList(rest)
	}
	name, factorStr := s, ""
	hasFactor := false
	if i := strings.IndexByte(s, ':'); i >= 0 {
		name, factorStr = s[:i], s[i+1:]
		hasFactor = true
	}
	var kind specKind
	switch name {
	case "2+1":
		kind = kindTwoPlusOne
	case "3-island":
		kind = kindThreeIsland
	default:
		return TopologySpec{}, specErr("unknown topology %q", s)
	}
	factor := 10.0
	if hasFactor {
		f, err := parseFactor(factorStr, name)
		if err != nil {
			return TopologySpec{}, err
		}
		factor = f
	}
	if sq := factor * factor; kind == kindThreeIsland && (sq > maxFactor || sq < minFactor) {
		return TopologySpec{}, specErr("3-island: factor %v squares outside [%g, %g] on the R↔S tier", factor, float64(minFactor), float64(maxFactor))
	}
	t := TopologySpec{kind: kind, factor: factor}
	for _, p := range partition.Procs {
		for _, q := range partition.Procs {
			if p == q {
				continue
			}
			switch {
			case kind == kindThreeIsland && p != partition.P && q != partition.P:
				// R↔S crosses the oversubscribed second tier.
				t.mult[p][q] = factor * factor
			case kind == kindThreeIsland:
				t.mult[p][q] = factor
			case p == partition.S || q == partition.S:
				// 2+1: only S is off-node.
				t.mult[p][q] = factor
			default:
				t.mult[p][q] = 1
			}
		}
	}
	return t, nil
}

func parseLinkList(list string) (TopologySpec, error) {
	t := TopologySpec{kind: kindLinks}
	var have [partition.NumProcs][partition.NumProcs]bool
	entries := strings.Split(list, ",")
	if len(entries) > 2*partition.NumProcs*(partition.NumProcs-1) {
		return TopologySpec{}, specErr("too many link entries (%d)", len(entries))
	}
	for _, entry := range entries {
		entry = strings.TrimSpace(entry)
		eq := strings.IndexByte(entry, '=')
		if eq < 0 {
			return TopologySpec{}, specErr("link entry %q: missing '='", entry)
		}
		pair, val := entry[:eq], entry[eq+1:]
		f, err := parseFactor(val, "link "+pair)
		if err != nil {
			return TopologySpec{}, err
		}
		var dirs [][2]partition.Proc
		if i := strings.IndexByte(pair, '>'); i >= 0 {
			from, okF := parseProcName(pair[:i])
			to, okT := parseProcName(pair[i+1:])
			if !okF || !okT || from == to {
				return TopologySpec{}, specErr("bad directed link %q", pair)
			}
			dirs = [][2]partition.Proc{{from, to}}
		} else {
			if len(pair) != 2 {
				return TopologySpec{}, specErr("bad link pair %q", pair)
			}
			a, okA := parseProcName(pair[:1])
			b, okB := parseProcName(pair[1:])
			if !okA || !okB || a == b {
				return TopologySpec{}, specErr("bad link pair %q", pair)
			}
			dirs = [][2]partition.Proc{{a, b}, {b, a}}
		}
		for _, d := range dirs {
			if have[d[0]][d[1]] {
				return TopologySpec{}, specErr("link %s>%s priced twice", d[0], d[1])
			}
			have[d[0]][d[1]] = true
			t.mult[d[0]][d[1]] = f
		}
	}
	for _, p := range partition.Procs {
		for _, q := range partition.Procs {
			if p != q && !have[p][q] {
				return TopologySpec{}, specErr("link %s>%s not priced", p, q)
			}
		}
	}
	return t, nil
}
