package model

import (
	"errors"
	"testing"

	"repro/internal/partition"
)

func TestParseTopologySpecLegacy(t *testing.T) {
	for _, s := range []string{"", "fully-connected", "star"} {
		spec, err := ParseTopologySpec(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		topo, legacy := spec.Legacy()
		if !legacy || spec.HasLinks() {
			t.Fatalf("%q parsed as non-legacy", s)
		}
		want := FullyConnected
		if s == "star" {
			want = Star
		}
		if topo != want {
			t.Fatalf("%q → %v, want %v", s, topo, want)
		}
		m := spec.Apply(DefaultMachine(partition.Ratio{Pr: 3, Rr: 2, Sr: 1}))
		if m.Cost != nil || m.Topology != want || m.Spec != "" {
			t.Fatalf("%q Apply: cost=%v topo=%v spec=%q", s, m.Cost, m.Topology, m.Spec)
		}
		if m.TopologyName() != want.String() {
			t.Fatalf("%q TopologyName = %q", s, m.TopologyName())
		}
	}
}

func TestParseTopologySpecNamedClasses(t *testing.T) {
	spec, err := ParseTopologySpec("2+1")
	if err != nil {
		t.Fatal(err)
	}
	if got := spec.String(); got != "2+1:10" {
		t.Fatalf("canonical form %q, want 2+1:10", got)
	}
	mult := spec.Multipliers()
	if mult[partition.P][partition.R] != 1 || mult[partition.R][partition.P] != 1 {
		t.Fatalf("2+1 intra-node P↔R multipliers %v, want 1", mult)
	}
	for _, pair := range [][2]partition.Proc{
		{partition.P, partition.S}, {partition.S, partition.P},
		{partition.R, partition.S}, {partition.S, partition.R},
	} {
		if mult[pair[0]][pair[1]] != 10 {
			t.Fatalf("2+1 %v→%v multiplier %v, want 10", pair[0], pair[1], mult[pair[0]][pair[1]])
		}
	}

	// 3-island is the hierarchical fabric: links touching the head
	// island P pay the factor, the R↔S pair pays it squared.
	spec, err = ParseTopologySpec("3-island:25")
	if err != nil {
		t.Fatal(err)
	}
	mult = spec.Multipliers()
	for _, pair := range [][2]partition.Proc{
		{partition.P, partition.R}, {partition.R, partition.P},
		{partition.P, partition.S}, {partition.S, partition.P},
	} {
		if mult[pair[0]][pair[1]] != 25 {
			t.Fatalf("3-island:25 %v→%v multiplier %v, want 25", pair[0], pair[1], mult[pair[0]][pair[1]])
		}
	}
	if mult[partition.R][partition.S] != 625 || mult[partition.S][partition.R] != 625 {
		t.Fatalf("3-island:25 R↔S multipliers %v/%v, want 625 (second tier)",
			mult[partition.R][partition.S], mult[partition.S][partition.R])
	}
	// A factor whose square leaves the legal range is rejected up front.
	if _, err := ParseTopologySpec("3-island:1500"); err == nil {
		t.Fatal("3-island:1500 accepted; its R↔S tier multiplier exceeds the factor cap")
	}
}

func TestParseTopologySpecLinks(t *testing.T) {
	spec, err := ParseTopologySpec("links:PR=1,PS=10,RS=10")
	if err != nil {
		t.Fatal(err)
	}
	if !spec.HasLinks() {
		t.Fatal("links spec parsed as legacy")
	}
	if got := spec.String(); got != "links:PR=1,PS=10,RS=10" {
		t.Fatalf("canonical form %q", got)
	}
	// Directed overrides: asymmetric entries survive the round trip.
	spec, err = ParseTopologySpec("links:PR=1,PS=10,R>S=4,S>R=2")
	if err != nil {
		t.Fatal(err)
	}
	mult := spec.Multipliers()
	if mult[partition.R][partition.S] != 4 || mult[partition.S][partition.R] != 2 {
		t.Fatalf("directed multipliers %v", mult)
	}
	re, err := ParseTopologySpec(spec.String())
	if err != nil {
		t.Fatalf("canonical %q did not re-parse: %v", spec.String(), err)
	}
	if re.Multipliers() != mult {
		t.Fatalf("round trip changed multipliers: %v vs %v", re.Multipliers(), mult)
	}
}

func TestParseTopologySpecErrors(t *testing.T) {
	bad := []string{
		"ring",                      // unknown name
		"2+1:",                      // empty factor
		"2+1:zero",                  // unparseable factor
		"2+1:-3",                    // negative factor
		"2+1:NaN",                   // NaN
		"2+1:Inf",                   // infinite
		"3-island:1e99",             // oversized factor
		"3-island:1e-99",            // vanishing factor
		"links:",                    // nothing priced
		"links:PR=1",                // missing pairs
		"links:PR=1,PS=1,RS=",       // empty value
		"links:PR=1,PS=1,RS=1,X=1",  // unknown pair
		"links:PR=1,PS=1,RS=1,PR=2", // duplicate
		"links:PP=1,PS=1,RS=1",      // self link
		"links:P>P=1,PS=1,RS=1",     // directed self link
		"links:PR=1,PS=1,R>S=1",     // S>R never priced
	}
	for _, s := range bad {
		_, err := ParseTopologySpec(s)
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Fatalf("%q: error %v, want *ConfigError", s, err)
		}
	}
}

func TestTopologySpecApplyLinks(t *testing.T) {
	ratio := partition.Ratio{Pr: 5, Rr: 2, Sr: 1}
	spec, err := ParseTopologySpec("2+1:10")
	if err != nil {
		t.Fatal(err)
	}
	base := DefaultMachine(ratio)
	m := spec.Apply(base)
	lm, ok := m.Cost.(*LinkMatrix)
	if !ok {
		t.Fatalf("Apply installed %T, want *LinkMatrix", m.Cost)
	}
	if err := lm.Validate(); err != nil {
		t.Fatalf("applied matrix invalid: %v", err)
	}
	if got := lm.Links[partition.P][partition.R].Beta; got != base.Net.Beta {
		t.Fatalf("intra-node β %v, want base %v", got, base.Net.Beta)
	}
	if got := lm.Links[partition.P][partition.S].Beta; got != 10*base.Net.Beta {
		t.Fatalf("cross-node β %v, want 10× base", got)
	}
	if lm.Ratio != ratio || lm.FlopTime != base.FlopTime {
		t.Fatal("compute parameters not carried into the matrix")
	}
	if m.TopologyName() != "2+1:10" {
		t.Fatalf("TopologyName = %q", m.TopologyName())
	}
}

// FuzzParseTopologySpec feeds arbitrary wire strings at the parser: any
// outcome other than success or a typed *ConfigError (above all a panic)
// is a bug. Successful parses must produce a validatable matrix and a
// canonical form that round-trips.
func FuzzParseTopologySpec(f *testing.F) {
	for _, seed := range []string{
		"", "fully-connected", "star", "2+1", "2+1:3.5", "3-island:100",
		"links:PR=1,PS=10,RS=10", "links:P>R=1,R>P=2,PS=1,RS=1",
		"links:PR=-1,PS=NaN,RS=1e300", "2+1:-0", "links:PR=1,PS=1,RS=1,PR=2",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseTopologySpec(s)
		if err != nil {
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("%q: untyped error %v", s, err)
			}
			return
		}
		m := spec.Apply(DefaultMachine(partition.Ratio{Pr: 3, Rr: 2, Sr: 1}))
		if lm, ok := m.Cost.(*LinkMatrix); ok {
			if err := lm.Validate(); err != nil {
				t.Fatalf("%q: parsed spec applied to an invalid matrix: %v", s, err)
			}
		}
		canon := spec.String()
		re, err := ParseTopologySpec(canon)
		if err != nil {
			t.Fatalf("%q: canonical form %q rejected: %v", s, canon, err)
		}
		if re.String() != canon {
			t.Fatalf("%q: canonical form unstable: %q → %q", s, canon, re.String())
		}
	})
}
