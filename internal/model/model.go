// Package model implements the performance models of Section IV-B: total
// execution time of parallel matrix-matrix multiplication on three
// heterogeneous processors under the five MMM algorithms (SCB, PCB, SCO,
// PCO, PIO), driven by the Hockney communication model and the partition
// metrics of Eq 1 / Eq 6.
//
// All models are evaluated exactly on a concrete partition grid (via
// partition.Metrics), so they apply to the candidate canonical shapes and
// to arbitrary non-shapes alike. Closed forms for the canonical shapes
// used in the Section X comparison live in closedform.go.
package model

import (
	"fmt"

	"repro/internal/partition"
)

// Algorithm identifies one of the five parallel MMM algorithms of
// Section II.
type Algorithm uint8

const (
	// SCB — Serial Communication with Barrier: all data sent serially,
	// then computation proceeds in parallel (Eq 2–3).
	SCB Algorithm = iota
	// PCB — Parallel Communication with Barrier: all data sent in
	// parallel, then computation (Eq 4–6).
	PCB
	// SCO — Serial Communication with Bulk Overlap: serial sends overlap
	// with computation of the communication-free elements (Eq 7).
	SCO
	// PCO — Parallel Communication with Bulk Overlap (Eq 8).
	PCO
	// PIO — Parallel Interleaving Overlap: pivot row/column k is sent
	// while step k−1 is computed (Eq 9).
	PIO
	numAlgorithms
)

// NumAlgorithms is the number of modelled MMM algorithms.
const NumAlgorithms = int(numAlgorithms)

// AllAlgorithms lists the algorithms in paper order.
var AllAlgorithms = [NumAlgorithms]Algorithm{SCB, PCB, SCO, PCO, PIO}

func (a Algorithm) String() string {
	switch a {
	case SCB:
		return "SCB"
	case PCB:
		return "PCB"
	case SCO:
		return "SCO"
	case PCO:
		return "PCO"
	case PIO:
		return "PIO"
	}
	return fmt.Sprintf("Algorithm(%d)", uint8(a))
}

// ParseAlgorithm parses an algorithm name.
func ParseAlgorithm(s string) (Algorithm, error) {
	for _, a := range AllAlgorithms {
		if a.String() == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("model: unknown algorithm %q", s)
}

// Topology is the interconnect layout of Section X.
type Topology uint8

const (
	// FullyConnected lets every processor pair communicate directly.
	FullyConnected Topology = iota
	// Star routes all traffic through the fastest processor P: R and S
	// exchange data only via P, doubling the cost of any R↔S volume.
	Star
)

func (t Topology) String() string {
	switch t {
	case FullyConnected:
		return "fully-connected"
	case Star:
		return "star"
	}
	return fmt.Sprintf("Topology(%d)", uint8(t))
}

// ParseTopology parses a topology name as printed by Topology.String.
// The empty string selects FullyConnected (the zero value), so wire
// formats may omit the field.
func ParseTopology(s string) (Topology, error) {
	switch s {
	case "", FullyConnected.String():
		return FullyConnected, nil
	case Star.String():
		return Star, nil
	}
	return 0, fmt.Errorf("model: unknown topology %q", s)
}

// Hockney is the linear communication model T_comm = α + β·M of Hockney
// [12]: α seconds of latency per message plus β seconds per element.
type Hockney struct {
	// Alpha is the per-message latency in seconds.
	Alpha float64
	// Beta is the per-element transfer time in seconds (element size ÷
	// bandwidth).
	Beta float64
}

// Time returns the cost of one message of m elements.
func (h Hockney) Time(m int64) float64 {
	if m <= 0 {
		return 0
	}
	return h.Alpha + h.Beta*float64(m)
}

// PerElement returns the marginal per-element cost β.
func (h Hockney) PerElement() float64 { return h.Beta }

// Machine gathers everything the models need about the platform.
type Machine struct {
	// Ratio is the relative processing-speed ratio.
	Ratio partition.Ratio
	// Net is the communication model.
	Net Hockney
	// FlopTime is the seconds the *slowest* processor (S, speed 1) needs
	// for one element-update (one multiply-add of the kij loop).
	// Processor X performs an element update in FlopTime/Speed(X).
	FlopTime float64
	// Topology selects the interconnect (Section X); the zero value is
	// FullyConnected.
	Topology Topology
	// Cost, when non-nil, prices communication and computation instead
	// of Net/FlopTime/Ratio. A UniformHockney reproduces the legacy
	// single-link evaluation bit for bit; any other CostModel (above all
	// *LinkMatrix) routes through the general per-pair path, which
	// ignores Topology — explicit links subsume the star special case,
	// and the topology-spec layer rejects the combination.
	Cost CostModel
	// Spec is the canonical topology-spec label when Cost was installed
	// by TopologySpec.Apply; empty for legacy machines. Wire formats
	// echo it (see TopologyName).
	Spec string
}

// TopologyName returns the canonical topology label for wire formats: the
// applied spec when one installed a link matrix, else the legacy name.
func (m Machine) TopologyName() string {
	if m.Spec != "" {
		return m.Spec
	}
	return m.Topology.String()
}

// CostModel returns the machine's explicit cost model, or its legacy
// parameters packaged as a UniformHockney when Cost is nil.
func (m Machine) CostModel() CostModel {
	if m.Cost != nil {
		return m.Cost
	}
	return NewUniformCost(m)
}

// PushWeights returns the per-pair acceptance weights the push engine
// should minimise for this machine, or nil when the raw integer VoC is
// the right objective (legacy machines and uniform cost models — the
// bit-exact path).
func (m Machine) PushWeights() *partition.Weights {
	if m.Cost == nil || m.Cost.Uniform() {
		return nil
	}
	w := m.Cost.Weights()
	if w.Uniform() {
		return nil
	}
	return &w
}

// DefaultMachine mirrors the paper's experimental platform of Fig 14:
// 1000 MB/s network, 8-byte elements, negligible latency, and a unit
// element-update time scaled so that compute and communication are
// comparable at N=5000.
func DefaultMachine(ratio partition.Ratio) Machine {
	return Machine{
		Ratio:    ratio,
		Net:      Hockney{Alpha: 0, Beta: 8.0 / 1e9}, // 8 B / (1000 MB/s)
		FlopTime: 1.0 / 1e9,
	}
}

// compTime returns the seconds processor p needs to update count elements
// once per pivot step over all N steps (count · N element-updates).
func (m Machine) compTime(p partition.Proc, count int, n int) float64 {
	return float64(count) * float64(n) * m.FlopTime / m.Ratio.Speed(p)
}

// stepTime returns the seconds processor p needs for a single pivot step
// over count elements.
func (m Machine) stepTime(p partition.Proc, count int) float64 {
	return float64(count) * m.FlopTime / m.Ratio.Speed(p)
}

// Breakdown reports the components of an execution-time estimate.
type Breakdown struct {
	Algorithm Algorithm
	// Comm is the (possibly overlapped) communication time in seconds.
	Comm float64
	// Overlap is the computation time overlapped with communication
	// (zero for barrier algorithms).
	Overlap float64
	// Comp is the non-overlapped computation time.
	Comp float64
	// Total is the modelled execution time (Eqs 2, 4, 7, 8, 9).
	Total float64
}

// Evaluate models the execution time of algorithm a on partition metrics
// snap (Eqs 2–9 for the uniform network; their per-pair generalisation
// when the machine carries a non-uniform cost model).
func Evaluate(a Algorithm, m Machine, snap partition.Metrics) Breakdown {
	if c := m.Cost; c != nil {
		u, ok := c.(UniformHockney)
		if !ok {
			return evalGeneral(a, c, snap)
		}
		// An explicit UniformHockney takes the legacy path below with
		// its parameters substituted, preserving both the star-topology
		// handling and the bit-for-bit seed equivalence contract.
		m.Net, m.Ratio, m.FlopTime = u.Net, u.Ratio, u.FlopTime
	}
	switch a {
	case SCB:
		return evalSCB(m, snap)
	case PCB:
		return evalPCB(m, snap)
	case SCO:
		return evalSCO(m, snap)
	case PCO:
		return evalPCO(m, snap)
	case PIO:
		return evalPIO(m, snap)
	}
	panic("model: unknown algorithm")
}

// EvaluateGrid is Evaluate on a concrete partition.
func EvaluateGrid(a Algorithm, m Machine, g *partition.Grid) Breakdown {
	return Evaluate(a, m, g.Snapshot())
}

// CommVolume returns the total communication volume in elements for the
// given topology. Under the fully connected topology it is Eq 1's VoC.
// Under the star topology every element exchanged between R and S crosses
// two links (via P), so the R↔S share of the volume is doubled; the
// per-processor send volumes d_X (Eq 6) bound that share.
func CommVolume(m Machine, snap partition.Metrics) int64 {
	v := snap.VoC
	if m.Topology == Star {
		v += starRelayVolume(snap)
	}
	return v
}

// starRelayVolume estimates the extra volume the star topology forwards
// through P: the data R needs from S plus the data S needs from R. With
// identically partitioned matrices this is bounded by the smaller of the
// two processors' send volumes; we use that bound as the model.
func starRelayVolume(snap partition.Metrics) int64 {
	dR := sendVolume(snap, partition.R)
	dS := sendVolume(snap, partition.S)
	if dR < dS {
		return dR
	}
	return dS
}

// sendVolume returns the exact unicast send volume of processor p in
// elements: each of p's cells is sent once per other processor in its row
// and once per other processor in its column. Summed over processors this
// equals Eq 1's VoC exactly, and it vanishes when no communication is
// needed. The paper's Eq 6 approximates it as d_X = (N·i_X + N·j_X) − ∈X,
// which over-counts when a processor's rows or columns are unshared (it
// is N² even for a single-processor grid); Eq 6's literal form remains
// available as SendVolumeEq6.
func sendVolume(snap partition.Metrics, p partition.Proc) int64 {
	return snap.Sends[p]
}

// SendVolume exposes the exact per-processor send volume.
func SendVolume(snap partition.Metrics, p partition.Proc) int64 {
	return sendVolume(snap, p)
}

// SendVolumeEq6 is the paper's literal d_X formula (Eq 6):
// (N·i_X + N·j_X) − ∈X.
func SendVolumeEq6(snap partition.Metrics, p partition.Proc) int64 {
	n := int64(snap.N)
	return n*int64(snap.Rows[p]) + n*int64(snap.Cols[p]) - int64(snap.Elements[p])
}

func maxCompTime(m Machine, snap partition.Metrics, counts [partition.NumProcs]int) float64 {
	var worst float64
	for _, p := range partition.Procs {
		if t := m.compTime(p, counts[p], snap.N); t > worst {
			worst = t
		}
	}
	return worst
}

// evalSCB implements Eqs 2–3: serial communication of the whole VoC, then
// a barrier, then parallel computation.
func evalSCB(m Machine, snap partition.Metrics) Breakdown {
	comm := m.Net.Time(CommVolume(m, snap))
	comp := maxCompTime(m, snap, snap.Elements)
	return Breakdown{Algorithm: SCB, Comm: comm, Comp: comp, Total: comm + comp}
}

// evalPCB implements Eqs 4–6: each processor sends its volume d_X in
// parallel; communication time is the slowest sender.
func evalPCB(m Machine, snap partition.Metrics) Breakdown {
	var comm float64
	for _, p := range partition.Procs {
		d := sendVolume(snap, p)
		if m.Topology == Star && p != partition.P {
			// R and S reach each other via P: their traffic to the
			// other slow processor is sent twice (once into P, once
			// out). Model the second hop as P's burden, which is the
			// slowest-link bound.
			d += minInt64(sendVolume(snap, partition.R), sendVolume(snap, partition.S))
		}
		if t := m.Net.Time(d); t > comm {
			comm = t
		}
	}
	comp := maxCompTime(m, snap, snap.Elements)
	return Breakdown{Algorithm: PCB, Comm: comm, Comp: comp, Total: comm + comp}
}

// evalSCO implements Eq 7: serial communication overlapped with the
// computation of the communication-free (overlap) elements; then the
// remainder is computed.
func evalSCO(m Machine, snap partition.Metrics) Breakdown {
	comm := m.Net.Time(CommVolume(m, snap))
	var overlap float64
	var remainder [partition.NumProcs]int
	for _, p := range partition.Procs {
		if t := m.compTime(p, snap.Overlap[p], snap.N); t > overlap {
			overlap = t
		}
		remainder[p] = snap.Elements[p] - snap.Overlap[p]
	}
	comp := maxCompTime(m, snap, remainder)
	first := comm
	if overlap > first {
		first = overlap
	}
	return Breakdown{Algorithm: SCO, Comm: comm, Overlap: overlap, Comp: comp, Total: first + comp}
}

// evalPCO implements Eq 8: parallel communication overlapped with the
// overlap-element computation, then the remainder.
func evalPCO(m Machine, snap partition.Metrics) Breakdown {
	var comm float64
	for _, p := range partition.Procs {
		if t := m.Net.Time(sendVolume(snap, p)); t > comm {
			comm = t
		}
	}
	if m.Topology == Star {
		comm += m.Net.Time(starRelayVolume(snap))
	}
	var overlap float64
	var remainder [partition.NumProcs]int
	for _, p := range partition.Procs {
		if t := m.compTime(p, snap.Overlap[p], snap.N); t > overlap {
			overlap = t
		}
		remainder[p] = snap.Elements[p] - snap.Overlap[p]
	}
	comp := maxCompTime(m, snap, remainder)
	first := comm
	if overlap > first {
		first = overlap
	}
	return Breakdown{Algorithm: PCO, Comm: comm, Overlap: overlap, Comp: comp, Total: first + comp}
}

// evalPIO implements Eq 9: the N pivot steps are pipelined — step k's
// communication (the pivot row and column, costed at the per-step share
// of the VoC) overlaps step k−1's computation; a fill (first send) and a
// drain (last compute) bracket the pipeline.
func evalPIO(m Machine, snap partition.Metrics) Breakdown {
	n := snap.N
	if n == 0 {
		return Breakdown{Algorithm: PIO}
	}
	// Per-step communication: the VoC spread evenly over the N pivots
	// (each pivot step communicates the pivot row and column shares) —
	// but the Hockney latency α is paid per step, not amortised: the
	// interleaved algorithm sends N small messages where the barrier
	// algorithms send one large one. This is the latency sensitivity the
	// paper's conclusion names as future work.
	vol := CommVolume(m, snap)
	stepComm := 0.0
	if vol > 0 {
		stepComm = m.Net.Alpha + m.Net.Beta*float64(vol)/float64(n)
	}
	// Per-step computation: every processor updates its elements once.
	var stepComp float64
	for _, p := range partition.Procs {
		if t := m.stepTime(p, snap.Elements[p]); t > stepComp {
			stepComp = t
		}
	}
	stepMax := stepComm
	if stepComp > stepMax {
		stepMax = stepComp
	}
	total := stepComm + float64(n)*stepMax + stepComp // Send k, pipeline, Compute k+1
	return Breakdown{
		Algorithm: PIO,
		Comm:      stepComm * float64(n),
		Comp:      stepComp * float64(n),
		Total:     total,
	}
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// IdealTime returns the communication-free, perfectly-balanced lower
// bound for the execution time: all N³ element-updates spread across the
// processors in proportion to speed.
func IdealTime(m Machine, n int) float64 {
	updates := float64(n) * float64(n) * float64(n)
	return updates * m.FlopTime / m.Ratio.T()
}

// Efficiency returns IdealTime divided by the modelled execution time of
// algorithm a on the partition — 1.0 means the partition wastes nothing
// on communication or imbalance; lower is worse.
func Efficiency(a Algorithm, m Machine, snap partition.Metrics) float64 {
	total := Evaluate(a, m, snap).Total
	if total <= 0 {
		return 0
	}
	return IdealTime(m, snap.N) / total
}
