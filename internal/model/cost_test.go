package model

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/partition"
)

// allEqualLinkMatrix builds a LinkMatrix whose six links all carry h.
func allEqualLinkMatrix(h Hockney, ratio partition.Ratio, flop float64) *LinkMatrix {
	lm := &LinkMatrix{Compute: Compute{Ratio: ratio, FlopTime: flop}}
	for _, p := range partition.Procs {
		for _, q := range partition.Procs {
			if p != q {
				lm.Links[p][q] = h
			}
		}
	}
	return lm
}

// TestLinkMatrixUniformExact is the equivalence property test of the
// refactor: a LinkMatrix with all links equal must reproduce the legacy
// uniform evaluation EXACTLY — same float64 bits, not approximately — for
// every algorithm, including the per-step α amortisation in PIO. The
// general path earns this by summing link-class volumes in int64 before
// any float arithmetic.
func TestLinkMatrixUniformExact(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	nets := []Hockney{
		{Alpha: 0, Beta: 8.0 / 1e9},    // the default machine
		{Alpha: 1e-5, Beta: 3.7e-9},    // latency-dominant
		{Alpha: 4.2e-4, Beta: 1.1e-7},  // slow WAN-ish link
		{Alpha: 1.0 / 3.0, Beta: 1e-3}, // non-dyadic values
	}
	for trial := 0; trial < 60; trial++ {
		ratio := partition.PaperRatios[rng.Intn(len(partition.PaperRatios))]
		n := 8 + rng.Intn(64)
		s := partition.AllShapes[rng.Intn(partition.NumShapes)]
		g, err := partition.Build(s, n, ratio)
		if err != nil {
			continue
		}
		snap := g.Snapshot()
		net := nets[rng.Intn(len(nets))]
		flop := 1.0 / 1e9
		legacy := Machine{Ratio: ratio, Net: net, FlopTime: flop}
		linked := legacy
		linked.Cost = allEqualLinkMatrix(net, ratio, flop)
		if linked.Cost.Uniform() {
			t.Fatal("LinkMatrix must report Uniform()=false so this test exercises the general path")
		}
		for _, a := range AllAlgorithms {
			want := Evaluate(a, legacy, snap)
			got := Evaluate(a, linked, snap)
			if got != want {
				t.Fatalf("%v %v n=%d %s net=%+v:\n  legacy %+v\n  linked %+v",
					s, ratio, n, a, net, want, got)
			}
		}
	}
}

// TestLinkMatrixUniformWeights checks the weight normalisation: all-equal
// links yield the all-ones matrix, and scaling one link scales only its
// weight.
func TestLinkMatrixUniformWeights(t *testing.T) {
	ratio := partition.Ratio{Pr: 3, Rr: 2, Sr: 1}
	lm := allEqualLinkMatrix(Hockney{Beta: 2e-9}, ratio, 1e-9)
	if w := lm.Weights(); !w.Uniform() {
		t.Fatalf("all-equal LinkMatrix weights = %v, want uniform", w)
	}
	lm.Links[partition.R][partition.S].Beta *= 10
	w := lm.Weights()
	if w[partition.R][partition.S] != 10 {
		t.Fatalf("w[R][S] = %v, want 10", w[partition.R][partition.S])
	}
	if w[partition.S][partition.R] != 1 {
		t.Fatalf("w[S][R] = %v, want 1", w[partition.S][partition.R])
	}
}

// TestLinkMatrixAsymmetric checks that an asymmetric matrix actually
// prices the two directions differently: making R→S expensive while S→R
// stays cheap must raise exactly R's parallel send time.
func TestLinkMatrixAsymmetric(t *testing.T) {
	ratio := partition.Ratio{Pr: 5, Rr: 2, Sr: 1}
	g, err := partition.Build(partition.BlockRectangle, 32, ratio)
	if err != nil {
		t.Fatal(err)
	}
	snap := g.Snapshot()
	base := allEqualLinkMatrix(Hockney{Beta: 1e-9}, ratio, 1e-9)
	asym := allEqualLinkMatrix(Hockney{Beta: 1e-9}, ratio, 1e-9)
	asym.Links[partition.R][partition.S].Beta *= 100
	if snap.PairSends[partition.R][partition.S] == 0 {
		t.Fatal("test shape has no R→S traffic; pick another")
	}
	if got, want := asym.SendTime(snap, partition.R), base.SendTime(snap, partition.R); got <= want {
		t.Fatalf("R send time %v not raised above %v by 100× R→S link", got, want)
	}
	if got, want := asym.SendTime(snap, partition.S), base.SendTime(snap, partition.S); got != want {
		t.Fatalf("S send time changed (%v vs %v) though only R→S was repriced", got, want)
	}
}

func TestLinkMatrixValidate(t *testing.T) {
	ratio := partition.Ratio{Pr: 3, Rr: 2, Sr: 1}
	good := allEqualLinkMatrix(Hockney{Alpha: 1e-6, Beta: 2e-9}, ratio, 1e-9)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid matrix rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*LinkMatrix)
	}{
		{"negative beta", func(lm *LinkMatrix) { lm.Links[partition.P][partition.R].Beta = -1 }},
		{"zero beta", func(lm *LinkMatrix) { lm.Links[partition.R][partition.S].Beta = 0 }},
		{"nan beta", func(lm *LinkMatrix) { lm.Links[partition.S][partition.P].Beta = nan() }},
		{"inf beta", func(lm *LinkMatrix) { lm.Links[partition.S][partition.R].Beta = inf() }},
		{"negative alpha", func(lm *LinkMatrix) { lm.Links[partition.P][partition.S].Alpha = -1e-9 }},
		{"nan alpha", func(lm *LinkMatrix) { lm.Links[partition.R][partition.P].Alpha = nan() }},
	}
	for _, tc := range cases {
		lm := allEqualLinkMatrix(Hockney{Alpha: 1e-6, Beta: 2e-9}, ratio, 1e-9)
		tc.mutate(lm)
		err := lm.Validate()
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Fatalf("%s: error %v, want *ConfigError", tc.name, err)
		}
	}
}

func nan() float64 { z := 0.0; return z / z }
func inf() float64 { z := 0.0; return 1 / z }

// customCost is a CostModel that is neither built-in: it reuses
// UniformHockney's pricing but reports Uniform()=false, forcing Evaluate
// through the general interface path.
type customCost struct{ UniformHockney }

func (c customCost) Uniform() bool { return false }

// TestEvaluateGeneralInterface pins the interface contract: ANY CostModel
// implementation evaluates through the general path, and when its prices
// match the uniform network the result is bit-identical anyway (the
// general structure degenerates to the legacy formulas).
func TestEvaluateGeneralInterface(t *testing.T) {
	ratio := partition.Ratio{Pr: 3, Rr: 2, Sr: 1}
	g, err := partition.Build(partition.TraditionalRectangle, 24, ratio)
	if err != nil {
		t.Fatal(err)
	}
	snap := g.Snapshot()
	m := DefaultMachine(ratio)
	m.Cost = customCost{NewUniformCost(m)}
	for _, a := range AllAlgorithms {
		got := Evaluate(a, m, snap)
		want := Evaluate(a, DefaultMachine(ratio), snap)
		if got != want {
			t.Fatalf("%s: general-path %+v, legacy %+v", a, got, want)
		}
	}
}
