package model

import (
	"errors"
	"math"
	"testing"

	"repro/internal/partition"
)

// This file is the differential harness for the Section X closed forms:
// every formula in NormalizedVoC is checked against the exact Eq 1 VoC of
// the grid the canonical builder actually constructs, across all six
// shapes, all eleven paper ratios, and growing N. The closed forms and the
// builders are independent implementations of the same geometry, so any
// systematic disagreement is a bug in one of them — this suite caught two:
// the Rectangle-Corner formula missing the saturated-rows regime (ratio
// 2:2:1), and the L-Rectangle builder's ragged column creating O(1)-many
// three-processor rows.

// diffTolerance is the allowed |closed form − exact/N²| gap. Construction
// raggedness is O(1/N) — at most a constant number of partial rows and
// columns, each worth ≤ 2N of the N² total — so the budget shrinks
// linearly in N. The constant is ~2.2× the worst deviation measured over
// every feasible (shape, ratio) pair at N ∈ {64, 128, 256}.
func diffTolerance(n int) float64 { return 6.0 / float64(n) }

// TestDifferentialClosedFormsConverge sweeps shapes × paper ratios ×
// N ∈ {64, 128, 256} and checks three things: the closed form and the
// builder agree on feasibility in both directions, the exact grid VoC is
// within diffTolerance(N) of the closed form, and — since the tolerance
// halves as N doubles — the grids converge to the formulas.
func TestDifferentialClosedFormsConverge(t *testing.T) {
	sizes := []int{64, 128, 256}
	feasible, infeasible := 0, 0
	for _, s := range partition.AllShapes {
		for _, ratio := range partition.PaperRatios {
			v, ok := NormalizedVoC(s, ratio)
			for _, n := range sizes {
				g, err := partition.Build(s, n, ratio)
				if !ok {
					infeasible++
					if err == nil {
						t.Errorf("%v %v N=%d: closed form says infeasible but Build succeeded", s, ratio, n)
					} else if !errors.Is(err, partition.ErrInfeasible) {
						t.Errorf("%v %v N=%d: want ErrInfeasible, got %v", s, ratio, n, err)
					}
					continue
				}
				if err != nil {
					t.Errorf("%v %v N=%d: closed form feasible but Build failed: %v", s, ratio, n, err)
					continue
				}
				feasible++
				exact := float64(g.VoC()) / float64(n*n)
				if d := math.Abs(exact - v); d > diffTolerance(n) {
					t.Errorf("%v %v N=%d: closed form %.5f vs exact %.5f (|d|=%.5f > %.5f)",
						s, ratio, n, v, exact, d, diffTolerance(n))
				}
			}
		}
	}
	// Guard the sweep itself: the paper's eleven ratios leave exactly one
	// infeasible pair (Square-Corner at 2:2:1, Thm 9.1) and 65 feasible
	// ones per size. A pruned loop passing vacuously should fail here.
	if want := 65 * len(sizes); feasible != want {
		t.Errorf("sweep covered %d feasible cases, want %d", feasible, want)
	}
	if want := 1 * len(sizes); infeasible != want {
		t.Errorf("sweep covered %d infeasible cases, want %d", infeasible, want)
	}
}

// TestDifferentialInfeasiblePairs pins the feasibility edges: ratios the
// closed forms must reject (and the builders with them), the Thm 9.1
// boundary case that is still feasible, and the unknown-shape fallback.
func TestDifferentialInfeasiblePairs(t *testing.T) {
	cases := []struct {
		name  string
		shape partition.Shape
		ratio partition.Ratio
		ok    bool
	}{
		// √fR + √fS > 1: two squares cannot fit (Thm 9.1).
		{"square-corner 1:1:1", partition.SquareCorner, partition.MustRatio(1, 1, 1), false},
		{"square-corner 2:2:1", partition.SquareCorner, partition.MustRatio(2, 2, 1), false},
		{"square-corner 3:3:2", partition.SquareCorner, partition.MustRatio(3, 3, 2), false},
		{"square-corner 5:5:3", partition.SquareCorner, partition.MustRatio(5, 5, 3), false},
		// Exactly on the boundary: √(1/4) + √(1/4) = 1 still fits.
		{"square-corner 2:1:1 boundary", partition.SquareCorner, partition.MustRatio(2, 1, 1), true},
		// The always-feasible shapes stay feasible even at the most
		// balanced ratio Validate admits.
		{"block-rectangle 1:1:1", partition.BlockRectangle, partition.MustRatio(1, 1, 1), true},
		{"traditional 1:1:1", partition.TraditionalRectangle, partition.MustRatio(1, 1, 1), true},
		{"l-rectangle 1:1:1", partition.LRectangle, partition.MustRatio(1, 1, 1), true},
		{"rectangle-corner 1:1:1", partition.RectangleCorner, partition.MustRatio(1, 1, 1), true},
		{"square-rectangle 1:1:1", partition.SquareRectangle, partition.MustRatio(1, 1, 1), true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			v, ok := NormalizedVoC(c.shape, c.ratio)
			if ok != c.ok {
				t.Fatalf("NormalizedVoC(%v, %v) ok=%v, want %v", c.shape, c.ratio, ok, c.ok)
			}
			if ok && (v <= 0 || v > 4) {
				// Each cell costs at most (3−1)+(3−1): VoC/N² ≤ 4.
				t.Errorf("normalised VoC %v out of (0, 4]", v)
			}
			// The builder must agree at a size big enough to dodge
			// integer raggedness flipping feasibility.
			_, err := partition.Build(c.shape, 128, c.ratio)
			if c.ok && err != nil {
				t.Errorf("closed form feasible but Build failed: %v", err)
			}
			if !c.ok && !errors.Is(err, partition.ErrInfeasible) {
				t.Errorf("closed form infeasible but Build gave %v", err)
			}
		})
	}
	if _, ok := NormalizedVoC(partition.Shape(99), partition.MustRatio(2, 1, 1)); ok {
		t.Error("unknown shape should have no closed form")
	}
}

// TestDifferentialSaturatedRectangleCorner pins the regression the sweep
// first caught: at 2:2:1 no split keeps the corner rectangles' heights
// summing below 1, every row hosts two processors regardless of the
// split, and the VoC saturates at exactly 2 — not the unsaturated
// formula's 2.166. The builder's grids must approach 2 from above.
func TestDifferentialSaturatedRectangleCorner(t *testing.T) {
	ratio := partition.MustRatio(2, 2, 1)
	v, ok := NormalizedVoC(partition.RectangleCorner, ratio)
	if !ok {
		t.Fatal("rectangle-corner must be feasible at 2:2:1")
	}
	if v != 2 {
		t.Fatalf("saturated closed form = %v, want exactly 2", v)
	}
	prev := math.Inf(1)
	for _, n := range []int{64, 128, 256, 512} {
		g, err := partition.Build(partition.RectangleCorner, n, ratio)
		if err != nil {
			t.Fatal(err)
		}
		exact := float64(g.VoC()) / float64(n*n)
		if exact < 2 {
			t.Errorf("N=%d: exact VoC %.5f below the saturated floor 2", n, exact)
		}
		if exact > prev {
			t.Errorf("N=%d: exact VoC %.5f not monotonically approaching 2 (prev %.5f)", n, exact, prev)
		}
		prev = exact
	}
}

// TestDifferentialLRectangleNoTripleRows pins the other caught bug: the
// L-Rectangle builder must not let S's band cross a P segment of R's
// ragged column, which would turn every such row into a three-processor
// row and push the grid VoC O(1) above the closed form (it measured
// +0.14 at 2:2:1, N=128 with the bottom-filled ragged column).
func TestDifferentialLRectangleNoTripleRows(t *testing.T) {
	for _, tc := range []struct {
		ratio partition.Ratio
		n     int
	}{
		{partition.MustRatio(2, 2, 1), 128}, // hS ≫ rPart: the worst historical spike
		{partition.MustRatio(3, 1, 1), 256},
		{partition.MustRatio(4, 2, 1), 256},
		{partition.MustRatio(5, 1, 1), 512},
	} {
		g, err := partition.Build(partition.LRectangle, tc.n, tc.ratio)
		if err != nil {
			t.Fatalf("%v N=%d: %v", tc.ratio, tc.n, err)
		}
		v, ok := NormalizedVoC(partition.LRectangle, tc.ratio)
		if !ok {
			t.Fatalf("%v: closed form infeasible", tc.ratio)
		}
		exact := float64(g.VoC()) / float64(tc.n*tc.n)
		if d := math.Abs(exact - v); d > diffTolerance(tc.n) {
			t.Errorf("%v N=%d: exact %.5f vs closed %.5f (|d|=%.5f > %.5f)",
				tc.ratio, tc.n, exact, v, d, diffTolerance(tc.n))
		}
	}
}
