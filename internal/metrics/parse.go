package metrics

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseText parses a Prometheus text scrape back into a map from
// series (name plus rendered labels, exactly as exposed) to value.
// It understands what WriteText emits — sample lines and # comments —
// which is all the scrape smoke checks and round-trip tests need; it
// is not a general exposition-format parser (no timestamps, no
// exemplars).
func ParseText(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The value is everything after the last space; the series
		// name (with its label block, which may itself contain spaces
		// inside quoted values) is everything before it.
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			return nil, fmt.Errorf("metrics: line %d: no value in %q", lineNo, line)
		}
		name := strings.TrimSpace(line[:i])
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d: bad value in %q: %v", lineNo, line, err)
		}
		if name == "" {
			return nil, fmt.Errorf("metrics: line %d: empty series name", lineNo)
		}
		out[name] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
