package metrics

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry collects metric families and renders them in the
// Prometheus text exposition format. A zero Registry is not usable;
// call NewRegistry. Each component that serves a /metrics endpoint
// owns its own Registry, so tests never fight over global state.
type Registry struct {
	mu       sync.Mutex
	families []*family // registration order, preserved in output
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// family is one named metric with one or more labeled series.
type family struct {
	name    string
	help    string
	kind    string
	buckets []float64 // histograms only

	mu     sync.Mutex
	series []*series
	byKey  map[string]*series
}

// series is one (family, label-set) pair. Exactly one of the value
// fields is set.
type series struct {
	labels string // rendered `key="value",...` without braces, "" for none
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64 // func-backed counter or gauge
}

// register returns the family for name, creating it on first use.
// Re-registering a name with a different kind is a programming error
// and panics immediately: a family that is a counter on one code path
// and a gauge on another would corrupt every scrape.
func (r *Registry) register(name, help, kind string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("metrics: %s re-registered as %s, was %s", name, kind, f.kind))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, byKey: make(map[string]*series)}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

// addSeries inserts a series under key, panicking on duplicates —
// two owners of the same (name, labels) pair would each see half the
// traffic and neither would notice.
func (f *family) addSeries(key string, s *series) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.byKey[key]; dup {
		panic(fmt.Sprintf("metrics: duplicate series %s{%s}", f.name, key))
	}
	s.labels = key
	f.byKey[key] = s
	f.series = append(f.series, s)
}

// getOrAddSeries returns the series under key, creating it with mk on
// first use. Used by the Vec types, where repeated With calls for the
// same label values must return the same instrument.
func (f *family) getOrAddSeries(key string, mk func() *series) *series {
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.byKey[key]; ok {
		return s
	}
	s := mk()
	s.labels = key
	f.byKey[key] = s
	f.series = append(f.series, s)
	return s
}

// ---------------------------------------------------------------------
// plain instruments

// Counter registers (or returns the existing) unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, kindCounter)
	s := f.getOrAddSeries("", func() *series { return &series{c: &Counter{}} })
	if s.c == nil {
		panic(fmt.Sprintf("metrics: %s is not a plain counter", name))
	}
	return s.c
}

// Gauge registers (or returns the existing) unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, kindGauge)
	s := f.getOrAddSeries("", func() *series { return &series{g: &Gauge{}} })
	if s.g == nil {
		panic(fmt.Sprintf("metrics: %s is not a plain gauge", name))
	}
	return s.g
}

// Histogram registers (or returns the existing) unlabeled histogram
// with the given bucket upper bounds (DefBuckets if nil).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.register(name, help, kindHistogram)
	f.buckets = buckets
	s := f.getOrAddSeries("", func() *series { return &series{h: newHistogram(buckets)} })
	if s.h == nil {
		panic(fmt.Sprintf("metrics: %s is not a plain histogram", name))
	}
	return s.h
}

// ---------------------------------------------------------------------
// func-backed series: export state a component already tracks, read
// lazily at scrape time. The callback must be safe to call from any
// goroutine.

// CounterFunc registers a counter whose value is read from fn at
// scrape time. fn must be monotonically non-decreasing.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.register(name, help, kindCounter)
	f.addSeries("", &series{fn: fn})
}

// GaugeFunc registers a gauge whose value is read from fn at scrape
// time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, kindGauge)
	f.addSeries("", &series{fn: fn})
}

// LabeledCounterFunc registers one labeled series of a func-backed
// counter family. Calling it again with the same name and a different
// label value appends a sibling series (how the pool exports one
// series per replica).
func (r *Registry) LabeledCounterFunc(name, help, label, value string, fn func() float64) {
	f := r.register(name, help, kindCounter)
	f.addSeries(renderLabels([]string{label}, []string{value}), &series{fn: fn})
}

// LabeledGaugeFunc is LabeledCounterFunc for gauges.
func (r *Registry) LabeledGaugeFunc(name, help, label, value string, fn func() float64) {
	f := r.register(name, help, kindGauge)
	f.addSeries(renderLabels([]string{label}, []string{value}), &series{fn: fn})
}

// ---------------------------------------------------------------------
// vector instruments: one family, one series per label-value tuple.

// CounterVec is a counter family partitioned by labels.
type CounterVec struct {
	f          *family
	labelNames []string
}

// NewCounterVec registers a labeled counter family.
func (r *Registry) NewCounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, kindCounter), labelNames: labelNames}
}

// With returns the counter for the given label values (created on
// first use). The number of values must match the label names.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.labelNames) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d",
			v.f.name, len(v.labelNames), len(values)))
	}
	key := renderLabels(v.labelNames, values)
	s := v.f.getOrAddSeries(key, func() *series { return &series{c: &Counter{}} })
	return s.c
}

// GaugeVec is a gauge family partitioned by labels.
type GaugeVec struct {
	f          *family
	labelNames []string
}

// NewGaugeVec registers a labeled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, kindGauge), labelNames: labelNames}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if len(values) != len(v.labelNames) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d",
			v.f.name, len(v.labelNames), len(values)))
	}
	key := renderLabels(v.labelNames, values)
	s := v.f.getOrAddSeries(key, func() *series { return &series{g: &Gauge{}} })
	return s.g
}

// HistogramVec is a histogram family partitioned by labels, all
// series sharing one bucket layout.
type HistogramVec struct {
	f          *family
	labelNames []string
	buckets    []float64
}

// NewHistogramVec registers a labeled histogram family (DefBuckets if
// buckets is nil).
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.register(name, help, kindHistogram)
	f.buckets = buckets
	return &HistogramVec{f: f, labelNames: labelNames, buckets: buckets}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.labelNames) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d",
			v.f.name, len(v.labelNames), len(values)))
	}
	key := renderLabels(v.labelNames, values)
	s := v.f.getOrAddSeries(key, func() *series { return &series{h: newHistogram(v.buckets)} })
	return s.h
}

// ---------------------------------------------------------------------
// exposition

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// renderLabels renders `k1="v1",k2="v2"` with Prometheus escaping.
func renderLabels(names, values []string) string {
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(labelEscaper.Replace(values[i]))
		b.WriteByte('"')
	}
	return b.String()
}

// WriteText renders every family in the Prometheus text format.
// Families appear in registration order; series within a family are
// sorted by label string so output is deterministic for golden tests
// and diffs.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()

	bw := &errWriter{w: w}
	for _, f := range fams {
		f.mu.Lock()
		series := append([]*series(nil), f.series...)
		buckets := f.buckets
		f.mu.Unlock()
		sort.Slice(series, func(i, j int) bool { return series[i].labels < series[j].labels })

		bw.printf("# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		bw.printf("# TYPE %s %s\n", f.name, f.kind)
		for _, s := range series {
			switch {
			case s.c != nil:
				bw.printf("%s %d\n", seriesName(f.name, s.labels), s.c.Value())
			case s.g != nil:
				bw.printf("%s %s\n", seriesName(f.name, s.labels), formatFloat(s.g.Value()))
			case s.fn != nil:
				bw.printf("%s %s\n", seriesName(f.name, s.labels), formatFloat(s.fn()))
			case s.h != nil:
				writeHistogram(bw, f.name, s.labels, buckets, s.h)
			}
		}
	}
	return bw.err
}

// writeHistogram emits the cumulative _bucket series plus _sum and
// _count for one histogram series.
func writeHistogram(bw *errWriter, name, labels string, bounds []float64, h *Histogram) {
	var cum uint64
	for i, b := range bounds {
		cum += h.counts[i].Load()
		bw.printf("%s %d\n", seriesName(name+"_bucket", joinLabels(labels, `le="`+formatFloat(b)+`"`)), cum)
	}
	cum += h.counts[len(bounds)].Load()
	bw.printf("%s %d\n", seriesName(name+"_bucket", joinLabels(labels, `le="+Inf"`)), cum)
	bw.printf("%s %s\n", seriesName(name+"_sum", labels), formatFloat(h.Sum()))
	bw.printf("%s %d\n", seriesName(name+"_count", labels), h.Count())
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func seriesName(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// Handler returns an http.Handler serving the registry as a
// Prometheus text scrape.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}
