package metrics

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestHistogramBucketBoundaries pins the inclusive-upper-bound
// semantics: an observation exactly on a bound lands in that bound's
// bucket, one just above it lands in the next.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{0.01, 0.1, 1})
	cases := []struct {
		v    float64
		want int // index into counts
	}{
		{0, 0},
		{0.005, 0},
		{0.01, 0}, // exactly on the bound: inclusive
		{0.010001, 1},
		{0.1, 1},
		{0.5, 2},
		{1, 2},
		{1.0001, 3}, // +Inf bucket
		{1e9, 3},
	}
	for _, c := range cases {
		before := make([]uint64, len(h.counts))
		for i := range h.counts {
			before[i] = h.counts[i].Load()
		}
		h.Observe(c.v)
		for i := range h.counts {
			want := before[i]
			if i == c.want {
				want++
			}
			if got := h.counts[i].Load(); got != want {
				t.Errorf("Observe(%v): bucket %d = %d, want %d", c.v, i, got, want)
			}
		}
	}
	if got, want := h.Count(), uint64(len(cases)); got != want {
		t.Errorf("Count = %d, want %d", got, want)
	}
	var sum float64
	for _, c := range cases {
		sum += c.v
	}
	if got := h.Sum(); math.Abs(got-sum) > 1e-9*sum {
		t.Errorf("Sum = %v, want %v", got, sum)
	}
}

// TestHistogramCumulativeExposition checks the rendered _bucket
// series are cumulative and include +Inf.
func TestHistogramCumulativeExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	got, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("ParseText: %v\n%s", err, b.String())
	}
	want := map[string]float64{
		`lat_seconds_bucket{le="0.1"}`:  2,
		`lat_seconds_bucket{le="1"}`:    3,
		`lat_seconds_bucket{le="+Inf"}`: 4,
		`lat_seconds_count`:             4,
	}
	for k, w := range want {
		if got[k] != w {
			t.Errorf("%s = %v, want %v\n%s", k, got[k], w, b.String())
		}
	}
	if s := got["lat_seconds_sum"]; math.Abs(s-5.6) > 1e-9 {
		t.Errorf("sum = %v, want 5.6", s)
	}
}

// TestConcurrentInstruments hammers every instrument type from many
// goroutines; run under -race this is the data-race gate, and the
// final values prove no increment was lost.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "ops")
	g := r.Gauge("level", "level")
	h := r.Histogram("dur_seconds", "dur", []float64{0.5})
	vec := r.NewCounterVec("by_kind_total", "by kind", "kind")

	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			kind := []string{"a", "b"}[w%2]
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i%2) * 0.75)
				vec.With(kind).Inc()
			}
		}(w)
	}
	// Concurrent scrapes while writers run.
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var b strings.Builder
				if err := r.WriteText(&b); err != nil {
					t.Errorf("WriteText: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %v, want 0", got)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if got := vec.With("a").Value() + vec.With("b").Value(); got != workers*perWorker {
		t.Errorf("vec total = %d, want %d", got, workers*perWorker)
	}
}

// TestScrapeRoundTrip builds a registry with every instrument kind,
// serves it over the HTTP handler, and parses the scrape back.
func TestScrapeRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total", "requests").Add(42)
	r.Gauge("temp", "temperature").Set(-3.25)
	r.GaugeFunc("live", "liveness", func() float64 { return 1 })
	r.CounterFunc("ticks_total", "ticks", func() float64 { return 7 })
	r.LabeledGaugeFunc("replica_in_flight", "in flight", "replica", "http://a:1", func() float64 { return 2 })
	r.LabeledGaugeFunc("replica_in_flight", "in flight", "replica", "http://b:2", func() float64 { return 5 })
	hv := r.NewHistogramVec("lat_seconds", "latency", []float64{0.1, 1}, "endpoint")
	hv.With("plan").Observe(0.05)
	hv.With("plan").Observe(2)
	cv := r.NewCounterVec("codes_total", "codes", "endpoint", "code")
	cv.With("plan", "200").Add(3)
	cv.With("plan", `50"3`).Inc() // label value needing escaping

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	got, err := ParseText(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	want := map[string]float64{
		"reqs_total":  42,
		"temp":        -3.25,
		"live":        1,
		"ticks_total": 7,
		`replica_in_flight{replica="http://a:1"}`:   2,
		`replica_in_flight{replica="http://b:2"}`:   5,
		`lat_seconds_bucket{endpoint="plan",le="0.1"}`:  1,
		`lat_seconds_bucket{endpoint="plan",le="1"}`:    1,
		`lat_seconds_bucket{endpoint="plan",le="+Inf"}`: 2,
		`lat_seconds_count{endpoint="plan"}`:            2,
		`codes_total{endpoint="plan",code="200"}`:       3,
		`codes_total{endpoint="plan",code="50\"3"}`:     1,
	}
	for k, w := range want {
		v, ok := got[k]
		if !ok {
			t.Errorf("scrape missing %s", k)
			continue
		}
		if v != w {
			t.Errorf("%s = %v, want %v", k, v, w)
		}
	}
}

// TestWriteTextDeterministic: two scrapes of the same registry are
// byte-identical, and series within a family come out sorted.
func TestWriteTextDeterministic(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("x_total", "x", "k")
	v.With("zebra").Inc()
	v.With("apple").Inc()
	var a, b strings.Builder
	if err := r.WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("scrapes differ:\n%s\n---\n%s", a.String(), b.String())
	}
	ia := strings.Index(a.String(), `k="apple"`)
	iz := strings.Index(a.String(), `k="zebra"`)
	if ia < 0 || iz < 0 || ia > iz {
		t.Errorf("series not sorted by label:\n%s", a.String())
	}
}

// TestRegisterConflicts pins the fail-fast behavior on misuse.
func TestRegisterConflicts(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a")
	mustPanic(t, "kind conflict", func() { r.Gauge("a_total", "a") })
	mustPanic(t, "vec arity", func() { r.NewCounterVec("b_total", "b", "x", "y").With("only-one") })
	r.LabeledGaugeFunc("rep", "rep", "replica", "u1", func() float64 { return 0 })
	mustPanic(t, "duplicate labeled func", func() {
		r.LabeledGaugeFunc("rep", "rep", "replica", "u1", func() float64 { return 0 })
	})
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

// TestParseTextErrors: malformed scrapes are rejected, not silently
// mis-parsed.
func TestParseTextErrors(t *testing.T) {
	for _, bad := range []string{"novalue", "name abc"} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseText(%q): expected error", bad)
		}
	}
	m, err := ParseText(strings.NewReader("# HELP x y\n\nx 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if m["x"] != 1 {
		t.Errorf("x = %v, want 1", m["x"])
	}
}
