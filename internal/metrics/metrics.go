// Package metrics is a dependency-free instrumentation layer: atomic
// counters, gauges, and fixed-bucket histograms, collected in a
// Registry that renders the Prometheus text exposition format. It
// exists so the planning stack (pland, the replica pool, the push
// engine) can be measured in production without pulling a client
// library into a repo whose roadmap is "no dependencies beyond the
// standard library".
//
// The design is deliberately small:
//
//   - Instruments are lock-free on the hot path (sync/atomic), so a
//     counter increment in the push engine's inner loop costs one
//     atomic add.
//   - The Registry owns naming: families are registered once with a
//     name, help string, and kind, and duplicate registration with a
//     conflicting kind panics at startup rather than corrupting a
//     scrape at runtime.
//   - Func-backed series let a component export state it already
//     tracks (gate occupancy, cache size, breaker state) without
//     double bookkeeping.
package metrics

import (
	"math"
	"sort"
	"sync/atomic"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta. Negative deltas are ignored: counters only go up,
// and silently absorbing a buggy negative add beats corrupting every
// rate() computed over the series.
func (c *Counter) Add(delta int64) {
	if delta > 0 {
		c.v.Add(delta)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (which may be negative) to the gauge.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets. Bucket upper
// bounds are inclusive, matching Prometheus semantics: an observation
// of exactly 0.01 lands in the le="0.01" bucket. Observations above
// the last bound land in the implicit +Inf bucket.
type Histogram struct {
	bounds []float64       // sorted upper bounds, exclusive of +Inf
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum    Gauge           // CAS float accumulator
	count  atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{
		bounds: b,
		counts: make([]atomic.Uint64, len(b)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// SearchFloat64s finds the first bound >= v only when v is exactly
	// on a boundary; for v strictly between bounds it returns the
	// insertion point, which is the first bound > v — exactly the
	// inclusive-upper-bound bucket either way.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// DefBuckets are the default latency buckets in seconds: 1ms to 10s,
// roughly logarithmic. They bracket the serving stack's range — cache
// hits in the hundreds of microseconds, refine searches in the tens
// of milliseconds to seconds, stragglers at the deadline.
var DefBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}
