package exec

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/matrix"
	"repro/internal/model"
	"repro/internal/partition"
)

// MultiplyOverlap computes C = A·B with the bulk-overlap algorithms (SCO
// or PCO, Section II): while the data exchange is in flight each worker
// computes its *overlap* elements — the cells whose full row of A and
// column of B it already owns — and only the remainder waits for the
// exchange, exactly the Eq 7/8 schedule. The product is bit-identical to
// the serial kij kernel and the measured traffic equals Eq 1's VoC. It
// is MultiplyOverlapContext with a background context.
func MultiplyOverlap(cfg Config, g *partition.Grid, a, b *matrix.Dense) (*matrix.Dense, *Stats, error) {
	return MultiplyOverlapContext(context.Background(), cfg, g, a, b)
}

// MultiplyOverlapContext is MultiplyOverlap honouring ctx. The overlap
// schedule has no pacing and its workers never block (every inbox holds
// all inbound packets), so cancellation is checked at the phase
// boundaries: a cancelled context stops the run before it starts or
// discards the result right after the workers drain.
func MultiplyOverlapContext(ctx context.Context, cfg Config, g *partition.Grid, a, b *matrix.Dense) (*matrix.Dense, *Stats, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	n := g.N()
	if a.N() != n || b.N() != n {
		return nil, nil, fmt.Errorf("exec: matrices are %d×%d, partition is %d×%d", a.N(), a.N(), n, n)
	}
	if cfg.Algorithm != model.SCO && cfg.Algorithm != model.PCO {
		return nil, nil, fmt.Errorf("exec: algorithm %v not supported (want SCO or PCO)", cfg.Algorithm)
	}
	if err := cfg.Machine.Ratio.Validate(); err != nil {
		return nil, nil, err
	}

	start := time.Now()
	stats := &Stats{}

	type workerState struct {
		aLocal, bLocal *matrix.Dense
		overlapMask    []bool // cells computable with no communication
		remainderMask  []bool
		inbox          chan packet
	}
	workers := make(map[partition.Proc]*workerState, partition.NumProcs)

	// Fully-owned rows and columns per worker determine the overlap set.
	for _, p := range partition.Procs {
		fullRow := make([]bool, n)
		fullCol := make([]bool, n)
		for i := 0; i < n; i++ {
			fullRow[i] = g.RowCount(i, p) == n
			fullCol[i] = g.ColCount(i, p) == n
		}
		ov := make([]bool, n*n)
		rem := make([]bool, n*n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if g.At(i, j) != p {
					continue
				}
				if fullRow[i] && fullCol[j] {
					ov[i*n+j] = true
				} else {
					rem[i*n+j] = true
				}
			}
		}
		workers[p] = &workerState{
			aLocal:        matrix.New(n),
			bLocal:        matrix.New(n),
			overlapMask:   ov,
			remainderMask: rem,
			inbox:         make(chan packet, partition.NumProcs),
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			p := g.At(i, j)
			workers[p].aLocal.Set(i, j, a.At(i, j))
			workers[p].bLocal.Set(i, j, b.At(i, j))
		}
	}

	rowsNeeded := make(map[partition.Proc][]bool, partition.NumProcs)
	colsNeeded := make(map[partition.Proc][]bool, partition.NumProcs)
	for _, p := range partition.Procs {
		rn := make([]bool, n)
		cn := make([]bool, n)
		for i := 0; i < n; i++ {
			rn[i] = g.RowCount(i, p) > 0
			cn[i] = g.ColCount(i, p) > 0
		}
		rowsNeeded[p] = rn
		colsNeeded[p] = cn
	}
	packets := make(map[partition.Proc]map[partition.Proc]packet, partition.NumProcs)
	for _, w := range partition.Procs {
		packets[w] = make(map[partition.Proc]packet, partition.NumProcs-1)
		for _, v := range partition.Procs {
			if v == w {
				continue
			}
			pk := packet{from: w}
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if g.At(i, j) != w {
						continue
					}
					idx := int32(i*n + j)
					if rowsNeeded[v][i] {
						pk.aIdx = append(pk.aIdx, idx)
						pk.aVal = append(pk.aVal, a.At(i, j))
					}
					if colsNeeded[v][j] {
						pk.bIdx = append(pk.bIdx, idx)
						pk.bVal = append(pk.bVal, b.At(i, j))
					}
				}
			}
			vol := int64(len(pk.aIdx) + len(pk.bIdx))
			stats.PairVolume[w][v] = vol
			stats.TotalVolume += vol
			packets[w][v] = pk
		}
	}

	c := matrix.New(n)
	var wg sync.WaitGroup
	for _, w := range partition.Procs {
		wg.Add(1)
		go func(w partition.Proc) {
			defer wg.Done()
			ws := workers[w]
			// Phase 1a: launch the exchange.
			for _, v := range partition.Procs {
				if v == w {
					continue
				}
				workers[v].inbox <- packets[w][v]
			}
			// Phase 1b: overlap computation while packets are in flight.
			matrix.MulMasked(c, ws.aLocal, ws.bLocal, ws.overlapMask)
			// Barrier on the exchange, then the remainder (Eq 7/8).
			for k := 0; k < partition.NumProcs-1; k++ {
				pk := <-ws.inbox
				for i, idx := range pk.aIdx {
					ws.aLocal.Data()[idx] = pk.aVal[i]
				}
				for i, idx := range pk.bIdx {
					ws.bLocal.Data()[idx] = pk.bVal[i]
				}
			}
			matrix.MulMasked(c, ws.aLocal, ws.bLocal, ws.remainderMask)
			stats.Flops[w] = int64(g.Count(w)) * int64(n)
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}

	bd := model.Evaluate(cfg.Algorithm, cfg.Machine, g.Snapshot())
	stats.VirtualComm = bd.Comm
	stats.VirtualComp = bd.Comp
	stats.VirtualExe = bd.Total
	stats.Wall = time.Since(start)
	return c, stats, nil
}
