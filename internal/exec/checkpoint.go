package exec

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"

	"repro/internal/journal"
	"repro/internal/matrix"
)

// The execution checkpoint is a CRC-framed journal (internal/journal):
// one header record identifying the run, then one record per committed
// C-block. JSON float64 round-trips are bit-exact (shortest-form
// encoding), so a resumed run restores recorded cells byte-identically.
// Replay applies records in order cell-wise, so a duplicate block record
// — possible when a resumed run re-commits work whose record landed just
// before a kill — is benign: last write wins and both writes carry the
// same bits.

// ckptVersion is bumped whenever the record format changes
// incompatibly; resume refuses a mismatched version. v2 added the
// per-record result checksum (Sum).
const ckptVersion = 2

// ckptHeader identifies the run a checkpoint belongs to. Resume refuses
// a checkpoint whose shape, algorithm, ratio or input matrices (FNV-64a
// over the raw float bits) differ from the current run.
type ckptHeader struct {
	Kind  string `json:"kind"`
	V     int    `json:"v"`
	N     int    `json:"n"`
	Alg   string `json:"alg"`
	Ratio string `json:"ratio"`
	AHash uint64 `json:"ahash"`
	BHash uint64 `json:"bhash"`
}

// ckptRecord is one committed block: the C cell indices (row-major,
// ascending) and their exact values. Sum is an FNV-64a over the block
// id, cell indices and raw value bits — an end-to-end result checksum
// on top of the journal's per-frame CRC, so a record whose *content*
// was corrupted after framing (or written from corrupted memory) is
// dropped on resume and its cells recomputed instead of replayed.
type ckptRecord struct {
	Block int       `json:"block"`
	Cells []int32   `json:"cells"`
	Vals  []float64 `json:"vals"`
	Sum   uint64    `json:"sum"`
}

// recordSum is the ckptRecord content checksum.
func recordSum(block int, cells []int32, vals []float64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64, nb int) {
		for i := 0; i < nb; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:nb])
	}
	put(uint64(block), 8)
	for i, idx := range cells {
		put(uint64(uint32(idx)), 4)
		put(math.Float64bits(vals[i]), 8)
	}
	return h.Sum64()
}

// newCkptRecord builds a checksummed record.
func newCkptRecord(block int, cells []int32, vals []float64) ckptRecord {
	return ckptRecord{Block: block, Cells: cells, Vals: vals, Sum: recordSum(block, cells, vals)}
}

// CheckpointError reports an unusable checkpoint file (as opposed to a
// torn or corrupt one, which journal.Recover repairs or quarantines).
type CheckpointError struct {
	Path   string
	Reason string
}

func (e *CheckpointError) Error() string {
	return fmt.Sprintf("exec: checkpoint %s: %s", e.Path, e.Reason)
}

// matrixHash fingerprints a matrix by its raw float bits.
func matrixHash(m *matrix.Dense) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range m.Data() {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

func (e *engine) ckptHeaderFor() ckptHeader {
	return ckptHeader{
		Kind:  "exec-ckpt",
		V:     ckptVersion,
		N:     e.n,
		Alg:   e.cfg.Algorithm.String(),
		Ratio: e.cfg.Machine.Ratio.String(),
		AHash: matrixHash(e.a),
		BHash: matrixHash(e.b),
	}
}

// openCheckpoint prepares the engine's checkpoint journal: with Resume
// it replays an existing file into C and the done mask and reopens it
// for appending; otherwise it creates a fresh journal (refusing to
// clobber an existing file).
func (e *engine) openCheckpoint() error {
	if e.cfg.Checkpoint == "" {
		if e.cfg.Resume {
			return &CheckpointError{Path: "", Reason: "Resume requires a Checkpoint path"}
		}
		return nil
	}
	if !e.cfg.Resume {
		w, err := journal.CreateRaw(e.cfg.Checkpoint, e.ckptHeaderFor())
		if err != nil {
			return fmt.Errorf("exec: checkpoint: %w", err)
		}
		e.ckpt = w
		return nil
	}

	rawHdr, rawRecs, err := journal.RecoverRaw(e.cfg.Checkpoint)
	if err != nil {
		return fmt.Errorf("exec: checkpoint: %w", err)
	}
	var hdr ckptHeader
	if err := json.Unmarshal(rawHdr, &hdr); err != nil {
		return &CheckpointError{Path: e.cfg.Checkpoint, Reason: fmt.Sprintf("undecodable header: %v", err)}
	}
	want := e.ckptHeaderFor()
	if hdr != want {
		return &CheckpointError{Path: e.cfg.Checkpoint,
			Reason: fmt.Sprintf("header %+v does not match this run (%+v)", hdr, want)}
	}
	recs, maxBlock, dropped, err := decodeCkptRecords(e.n, rawRecs)
	if err != nil {
		return &CheckpointError{Path: e.cfg.Checkpoint, Reason: err.Error()}
	}
	e.stats.CheckpointDropped = dropped
	cd := e.c.Data()
	for _, r := range recs {
		for i, idx := range r.Cells {
			cd[idx] = r.Vals[i]
			if !e.doneMask[idx] {
				e.doneMask[idx] = true
				e.doneCells++
			}
		}
	}
	e.stats.BlocksResumed = len(recs)
	e.nextID = maxBlock + 1
	w, err := journal.Append(e.cfg.Checkpoint)
	if err != nil {
		return fmt.Errorf("exec: checkpoint: %w", err)
	}
	e.ckpt = w
	return nil
}

// decodeCkptRecords validates raw checkpoint records for an n×n run.
// Applying them in order is last-write-wins per cell, so duplicate block
// records are accepted. A structurally valid record whose content
// checksum does not match is dropped (not fatal): its cells are simply
// recomputed instead of replayed, and the drop count is returned. The
// largest block id is returned so a resumed run can keep its fresh task
// ids disjoint from the journal's.
func decodeCkptRecords(n int, raw []json.RawMessage) ([]ckptRecord, int, int, error) {
	recs := make([]ckptRecord, 0, len(raw))
	maxBlock := -1
	dropped := 0
	for i, rr := range raw {
		var r ckptRecord
		if err := json.Unmarshal(rr, &r); err != nil {
			return nil, 0, 0, fmt.Errorf("record %d undecodable: %v", i, err)
		}
		if r.Block < 0 {
			return nil, 0, 0, fmt.Errorf("record %d: negative block id %d", i, r.Block)
		}
		if len(r.Cells) != len(r.Vals) {
			return nil, 0, 0, fmt.Errorf("record %d (block %d): %d cells but %d values", i, r.Block, len(r.Cells), len(r.Vals))
		}
		if len(r.Cells) == 0 {
			return nil, 0, 0, fmt.Errorf("record %d (block %d): empty", i, r.Block)
		}
		for _, idx := range r.Cells {
			if idx < 0 || int(idx) >= n*n {
				return nil, 0, 0, fmt.Errorf("record %d (block %d): cell %d outside %d×%d", i, r.Block, idx, n, n)
			}
		}
		if r.Block > maxBlock {
			maxBlock = r.Block
		}
		if r.Sum != recordSum(r.Block, r.Cells, r.Vals) {
			dropped++
			continue
		}
		recs = append(recs, r)
	}
	return recs, maxBlock, dropped, nil
}
