package exec

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/matrix"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/trace"
)

// fastFailover returns fault-detection timings tight enough for tests:
// 1ms heartbeats and a 20ms lease keep a kill-recovery test well under a
// second while staying far above scheduler jitter.
func fastFailover(cfg Config) Config {
	cfg.HeartbeatEvery = time.Millisecond
	cfg.LeaseTimeout = 20 * time.Millisecond
	return cfg
}

func TestMultiplyKillRecoveryBitExact(t *testing.T) {
	// The acceptance chaos proof: a worker killed at {10,50,90}% of its
	// assigned work under SCB and PCB strands its remaining blocks, the
	// lease expires, and the remainder is re-planned on the two survivors
	// with the prior work's optimal two-processor shapes — and the final
	// matrix is still bit-identical to the serial kij kernel.
	const n = 48
	ratio := partition.MustRatio(3, 2, 1)
	a, b := randomMatrices(n, 11)
	want := matrix.New(n)
	matrix.MulKIJ(want, a, b)
	g, err := partition.Build(partition.SquareCorner, n, ratio)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []model.Algorithm{model.SCB, model.PCB} {
		for _, frac := range []float64{0.1, 0.5, 0.9} {
			for _, victim := range []partition.Proc{partition.R, partition.P} {
				t.Run(alg.String()+"/"+victim.String(), func(t *testing.T) {
					fp := sim.NewFaultPlan()
					if err := fp.AddWorkerKill(victim, frac); err != nil {
						t.Fatal(err)
					}
					reg := metrics.NewRegistry()
					cfg := fastFailover(Config{
						Machine:   testMachine(ratio),
						Algorithm: alg,
						BlockSize: 8,
						Faults:    fp,
						Metrics:   reg,
						Trace:     trace.New(),
					})
					c, stats, err := Multiply(cfg, g, a, b)
					if err != nil {
						t.Fatal(err)
					}
					if !c.Equal(want) {
						d, _ := c.MaxDiff(want)
						t.Fatalf("kill %v@%g: product differs from serial kij (max diff %g)", victim, frac, d)
					}
					if len(stats.Lost) != 1 || stats.Lost[0] != victim {
						t.Fatalf("Lost = %v, want [%v]", stats.Lost, victim)
					}
					if stats.Survivors() != 2 {
						t.Fatalf("Survivors() = %d, want 2", stats.Survivors())
					}
					if stats.Recoveries != 1 || len(stats.RecoveryKinds) != 1 || stats.RecoveryKinds[0] != "replan-2proc" {
						t.Fatalf("Recoveries=%d kinds=%v, want one replan-2proc", stats.Recoveries, stats.RecoveryKinds)
					}
					// Planned-exchange accounting is untouched by recovery.
					if stats.TotalVolume != g.VoC() {
						t.Errorf("TotalVolume %d != VoC %d after recovery", stats.TotalVolume, g.VoC())
					}
					// The acceptance bound: redistribution for the re-planned
					// remainder stays under 2× what a from-scratch fault-free
					// redistribution of that remainder would move.
					if stats.RemainderNeed > 0 && stats.RecoveryVolume >= 2*stats.RemainderNeed {
						t.Errorf("RecoveryVolume %d ≥ 2×RemainderNeed %d", stats.RecoveryVolume, stats.RemainderNeed)
					}
					if stats.RecoveryLatency <= 0 {
						t.Error("RecoveryLatency not recorded")
					}
				})
			}
		}
	}
}

func TestMultiplyDoubleKillSerialFallback(t *testing.T) {
	// Losing two workers degrades 3→2→1: the second re-plan is serial and
	// the sole survivor still finishes bit-exactly.
	const n = 32
	ratio := partition.MustRatio(2, 1, 1)
	a, b := randomMatrices(n, 13)
	want := matrix.New(n)
	matrix.MulKIJ(want, a, b)
	g, err := partition.Build(partition.SquareCorner, n, ratio)
	if err != nil {
		t.Fatal(err)
	}
	fp := sim.NewFaultPlan()
	if err := fp.AddWorkerKill(partition.R, 0.2); err != nil {
		t.Fatal(err)
	}
	if err := fp.AddWorkerKill(partition.S, 0.4); err != nil {
		t.Fatal(err)
	}
	cfg := fastFailover(Config{Machine: testMachine(ratio), Algorithm: model.SCB, BlockSize: 8, Faults: fp})
	c, stats, err := Multiply(cfg, g, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Equal(want) {
		t.Fatal("double-kill product differs from serial kij")
	}
	if stats.Survivors() != 1 {
		t.Fatalf("Survivors() = %d, want 1", stats.Survivors())
	}
	kinds := strings.Join(stats.RecoveryKinds, ",")
	if !strings.Contains(kinds, "replan-serial") {
		t.Fatalf("RecoveryKinds = %v, want a replan-serial", stats.RecoveryKinds)
	}
}

func TestMultiplyAllWorkersLost(t *testing.T) {
	// Killing all three workers must fail loudly, not hang.
	const n = 24
	ratio := partition.MustRatio(2, 1, 1)
	a, b := randomMatrices(n, 17)
	g, err := partition.Build(partition.SquareCorner, n, ratio)
	if err != nil {
		t.Fatal(err)
	}
	fp := sim.NewFaultPlan()
	for _, p := range partition.Procs {
		if err := fp.AddWorkerKill(p, 0); err != nil {
			t.Fatal(err)
		}
	}
	cfg := fastFailover(Config{Machine: testMachine(ratio), Algorithm: model.SCB, BlockSize: 8, Faults: fp})
	_, _, err = Multiply(cfg, g, a, b)
	if err == nil || !strings.Contains(err.Error(), "all workers lost") {
		t.Fatalf("err = %v, want all-workers-lost failure", err)
	}
}

func TestMultiplyHangRecovery(t *testing.T) {
	// A hung worker (alive goroutine, no heartbeats, lease held) is
	// treated like a dead one, and its blocked goroutine is released when
	// the run finishes — the -race build would catch a leak-induced
	// write-after-return.
	const n = 32
	ratio := partition.MustRatio(2, 1, 1)
	a, b := randomMatrices(n, 19)
	want := matrix.New(n)
	matrix.MulKIJ(want, a, b)
	g, err := partition.Build(partition.BlockRectangle, n, ratio)
	if err != nil {
		t.Fatal(err)
	}
	fp := sim.NewFaultPlan()
	if err := fp.AddWorkerHang(partition.P, 0.5); err != nil {
		t.Fatal(err)
	}
	cfg := fastFailover(Config{Machine: testMachine(ratio), Algorithm: model.PCB, BlockSize: 8, Faults: fp})
	c, stats, err := Multiply(cfg, g, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Equal(want) {
		t.Fatal("hang-recovery product differs from serial kij")
	}
	if len(stats.Lost) != 1 || stats.Lost[0] != partition.P {
		t.Fatalf("Lost = %v, want [P]", stats.Lost)
	}
}

func TestMultiplySpeculationDedup(t *testing.T) {
	// A straggler (slowed 20×, still heartbeating) is never declared
	// dead; its lagging block is speculatively re-executed on an idle
	// survivor and exactly one result per block id is committed, so the
	// result stays bit-exact and volumes aren't double-counted.
	const n = 32
	ratio := partition.MustRatio(2, 1, 1)
	a, b := randomMatrices(n, 23)
	want := matrix.New(n)
	matrix.MulKIJ(want, a, b)
	g, err := partition.Build(partition.SquareCorner, n, ratio)
	if err != nil {
		t.Fatal(err)
	}
	fp := sim.NewFaultPlan()
	if err := fp.AddWorkerSlowdown(partition.S, 20); err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Machine:         testMachine(ratio),
		Algorithm:       model.SCB,
		BlockSize:       32, // the straggler owns a single large block
		PaceFlopsPerSec: 2e5,
		Faults:          fp,
		HeartbeatEvery:  time.Millisecond,
		LeaseTimeout:    time.Second, // far beyond the run: death must come from silence, not slowness
		StraggleAfter:   10 * time.Millisecond,
	}
	c, stats, err := Multiply(cfg, g, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Equal(want) {
		t.Fatal("speculation product differs from serial kij")
	}
	if len(stats.Lost) != 0 {
		t.Fatalf("straggler was declared lost: %v", stats.Lost)
	}
	if stats.Speculations == 0 {
		t.Fatal("no speculation launched for a 20× straggler")
	}
	if stats.TotalVolume != g.VoC() {
		t.Errorf("TotalVolume %d != VoC %d with speculation", stats.TotalVolume, g.VoC())
	}
}

func TestMultiplyContextCancel(t *testing.T) {
	// Cancelling the context unwinds a paced run promptly — including
	// workers asleep in the throttle — instead of leaking them.
	const n = 48
	ratio := partition.MustRatio(2, 1, 1)
	a, b := randomMatrices(n, 29)
	g, err := partition.Build(partition.SquareCorner, n, ratio)
	if err != nil {
		t.Fatal(err)
	}
	// Paced so slowly the run would take ~minutes if not cancelled.
	cfg := Config{Machine: testMachine(ratio), Algorithm: model.SCB, Pace: true, PaceFlopsPerSec: 1e3}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err = MultiplyContext(ctx, cfg, g, a, b)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("cancellation took %v, want prompt unwind", waited)
	}
}

func TestMultiplyOverlapContextCancelled(t *testing.T) {
	const n = 16
	ratio := partition.MustRatio(2, 1, 1)
	a, b := randomMatrices(n, 31)
	g, err := partition.Build(partition.SquareCorner, n, ratio)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err = MultiplyOverlapContext(ctx, Config{Machine: testMachine(ratio), Algorithm: model.SCO}, g, a, b)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestPairVolumeMatchesVoCProperty(t *testing.T) {
	// Property: on fault-free runs, the measured pair-volume totals equal
	// the model's predicted volume of communication (Eq 1) for every
	// partition — canonical or random — under both barrier algorithms.
	const n = 32
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 8; trial++ {
		rr := float64(1 + rng.Intn(2))
		ratio := partition.MustRatio(rr+float64(rng.Intn(4)), rr, 1)
		var g *partition.Grid
		if trial%2 == 0 {
			var err error
			g, err = partition.Build(partition.AllShapes[trial%len(partition.AllShapes)], n, ratio)
			if err != nil {
				continue
			}
		} else {
			g = partition.NewRandom(n, ratio, rng)
		}
		a, b := randomMatrices(n, int64(100+trial))
		for _, alg := range []model.Algorithm{model.SCB, model.PCB} {
			_, stats, err := Multiply(Config{Machine: testMachine(ratio), Algorithm: alg}, g, a, b)
			if err != nil {
				t.Fatal(err)
			}
			var pairSum int64
			for _, w := range partition.Procs {
				for _, v := range partition.Procs {
					pairSum += stats.PairVolume[w][v]
				}
			}
			if pairSum != stats.TotalVolume {
				t.Fatalf("trial %d %v: PairVolume sum %d != TotalVolume %d", trial, alg, pairSum, stats.TotalVolume)
			}
			if pairSum != g.VoC() {
				t.Fatalf("trial %d %v: PairVolume sum %d != predicted VoC %d", trial, alg, pairSum, g.VoC())
			}
			if stats.RecoveryVolume != 0 || stats.BlocksDiscarded != 0 {
				t.Fatalf("trial %d %v: fault-free run reports recovery volume %d / %d discards",
					trial, alg, stats.RecoveryVolume, stats.BlocksDiscarded)
			}
		}
	}
}

func TestMultiplyCheckpointResume(t *testing.T) {
	// A full checkpointed run, truncated to its first k block records (a
	// process killed mid-journal), resumes bit-identically: recorded
	// blocks are replayed, only the rest is recomputed.
	const n = 32
	ratio := partition.MustRatio(3, 2, 1)
	a, b := randomMatrices(n, 41)
	want := matrix.New(n)
	matrix.MulKIJ(want, a, b)
	g, err := partition.Build(partition.RectangleCorner, n, ratio)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	full := filepath.Join(dir, "full.ckpt")
	cfg := Config{Machine: testMachine(ratio), Algorithm: model.SCB, BlockSize: 8, Checkpoint: full}
	_, stats, err := Multiply(cfg, g, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if stats.BlocksDone == 0 {
		t.Fatal("no blocks committed")
	}

	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	// lines = header + one line per block record (+ empty tail).
	for _, keep := range []int{0, stats.BlocksDone / 2, stats.BlocksDone} {
		part := filepath.Join(dir, "part.ckpt")
		if err := os.WriteFile(part, []byte(strings.Join(lines[:1+keep], "")), 0o644); err != nil {
			t.Fatal(err)
		}
		rcfg := cfg
		rcfg.Checkpoint = part
		rcfg.Resume = true
		c, rs, err := Multiply(rcfg, g, a, b)
		if err != nil {
			t.Fatalf("resume with %d records: %v", keep, err)
		}
		if !c.Equal(want) {
			t.Fatalf("resume with %d records: product differs from serial kij", keep)
		}
		if rs.BlocksResumed != keep {
			t.Fatalf("BlocksResumed = %d, want %d", rs.BlocksResumed, keep)
		}
		if keep == stats.BlocksDone && rs.BlocksDone != 0 {
			t.Fatalf("fully-checkpointed resume recomputed %d blocks", rs.BlocksDone)
		}
		if err := os.Remove(part); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMultiplyCheckpointValidation(t *testing.T) {
	const n = 16
	ratio := partition.MustRatio(2, 1, 1)
	a, b := randomMatrices(n, 43)
	g, err := partition.Build(partition.SquareCorner, n, ratio)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	cfg := Config{Machine: testMachine(ratio), Algorithm: model.SCB, Checkpoint: path}
	if _, _, err := Multiply(cfg, g, a, b); err != nil {
		t.Fatal(err)
	}

	// Creating over an existing checkpoint must refuse, not clobber.
	if _, _, err := Multiply(cfg, g, a, b); err == nil {
		t.Fatal("re-run clobbered an existing checkpoint")
	}

	// Resuming with different inputs must refuse: the header hash pins
	// the run's matrices.
	a2, b2 := randomMatrices(n, 44)
	rcfg := cfg
	rcfg.Resume = true
	var ce *CheckpointError
	if _, _, err := Multiply(rcfg, g, a2, b2); !errors.As(err, &ce) {
		t.Fatalf("resume with wrong matrices: err = %v, want CheckpointError", err)
	}

	// Resume without a path is a config error.
	if _, _, err := Multiply(Config{Machine: testMachine(ratio), Algorithm: model.SCB, Resume: true}, g, a, b); !errors.As(err, &ce) {
		t.Fatalf("resume without path: err = %v, want CheckpointError", err)
	}
}

func TestMultiplyCheckpointAfterKillRecovery(t *testing.T) {
	// Checkpointing composes with loss recovery: a checkpoint written
	// during a faulted run replays into the same bits.
	const n = 32
	ratio := partition.MustRatio(2, 1, 1)
	a, b := randomMatrices(n, 47)
	want := matrix.New(n)
	matrix.MulKIJ(want, a, b)
	g, err := partition.Build(partition.SquareCorner, n, ratio)
	if err != nil {
		t.Fatal(err)
	}
	fp := sim.NewFaultPlan()
	if err := fp.AddWorkerKill(partition.R, 0.5); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "fault.ckpt")
	cfg := fastFailover(Config{Machine: testMachine(ratio), Algorithm: model.SCB, BlockSize: 8, Faults: fp, Checkpoint: path})
	c, _, err := Multiply(cfg, g, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Equal(want) {
		t.Fatal("faulted checkpointed product differs from serial kij")
	}
	rcfg := Config{Machine: testMachine(ratio), Algorithm: model.SCB, BlockSize: 8, Checkpoint: path, Resume: true}
	c2, rs, err := Multiply(rcfg, g, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !c2.Equal(want) {
		t.Fatal("replayed checkpoint differs from serial kij")
	}
	if rs.BlocksDone != 0 {
		t.Fatalf("complete checkpoint still recomputed %d blocks", rs.BlocksDone)
	}
}
