package exec

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/journal"
	"repro/internal/matrix"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/throttle"
	"repro/internal/trace"
	"repro/internal/twoproc"
)

const (
	defaultBlockSize = 32
	defaultHeartbeat = 5 * time.Millisecond
	defaultLease     = 250 * time.Millisecond
)

// blockTask is one schedulable unit: a set of C cells (one partition
// owner's cells inside one tile) plus any A/B fragments the assignee
// must receive before it can compute them (recovery and speculation
// patches). Tasks created by recovery keep fresh ids; a speculative
// re-execution reuses the original id, which is what the commit-side
// dedup keys on.
type blockTask struct {
	id    int
	owner partition.Proc
	cells []int32 // row-major C indices, ascending
	// patch*: A/B fragments delivered with the task. The assignee writes
	// them into its local views before computing; the supervisor never
	// touches worker memory directly.
	patchA, patchB   []int32
	patchAV, patchBV []float64
	speculative      bool
	// prior holds the discarded values (per cells) when this task is an
	// integrity re-lease of a block withdrawn at tile verification, and
	// priorFrom the worker that computed them. Honest blocks recompute
	// bit-identically, so a differing recompute convicts priorFrom of
	// the mismatch — attribution by evidence, not by suspicion.
	prior     []float64
	priorFrom partition.Proc
}

// blockResult is a worker's completed block. injected marks results the
// fault plan actually corrupted; it is ground truth for the stats only
// — the verifier never reads it.
type blockResult struct {
	task     *blockTask
	from     partition.Proc
	vals     []float64 // per task.cells
	injected bool
}

// activeBlock tracks a dispatched, unfinished block.
type activeBlock struct {
	task       *blockTask
	start      time.Time
	speculated bool
}

// workerState is one worker's private view of the matrices.
type workerState struct {
	aLocal, bLocal *matrix.Dense
	inbox          chan packet
}

// execMetrics is the engine's optional instrumentation surface.
type execMetrics struct {
	blocks     *metrics.CounterVec // exec_blocks_total{state}
	recoveries *metrics.CounterVec // exec_recoveries_total{kind}
	recLatency *metrics.Histogram  // exec_recovery_latency_seconds
	integrity  *metrics.Counter    // exec_integrity_checks_total
	corrupted  *metrics.CounterVec // exec_corruptions_total{outcome}
}

func newExecMetrics(reg *metrics.Registry) *execMetrics {
	if reg == nil {
		return nil
	}
	return &execMetrics{
		blocks: reg.NewCounterVec("exec_blocks_total",
			"Block tasks by terminal state (done, resumed, reassigned, speculated, discarded, rejected).", "state"),
		recoveries: reg.NewCounterVec("exec_recoveries_total",
			"Recovery events by kind (replan-2proc, replan-serial, speculate).", "kind"),
		recLatency: reg.Histogram("exec_recovery_latency_seconds",
			"Stall from a lost worker's last heartbeat to its work being re-planned.",
			[]float64{.01, .025, .05, .1, .25, .5, 1, 2.5}),
		integrity: reg.Counter("exec_integrity_checks_total",
			"C tiles ABFT-verified against supervisor-side checksum references."),
		corrupted: reg.NewCounterVec("exec_corruptions_total",
			"Detected result corruptions by outcome (corrected, recomputed, quarantined).", "outcome"),
	}
}

func (m *execMetrics) block(state string, n int) {
	if m != nil {
		m.blocks.With(state).Add(int64(n))
	}
}

func (m *execMetrics) recovery(kind string) {
	if m != nil {
		m.recoveries.With(kind).Inc()
	}
}

func (m *execMetrics) latency(d time.Duration) {
	if m != nil {
		m.recLatency.Observe(d.Seconds())
	}
}

func (m *execMetrics) integrityCheck() {
	if m != nil {
		m.integrity.Inc()
	}
}

func (m *execMetrics) corruption(outcome string) {
	if m != nil {
		m.corrupted.With(outcome).Inc()
	}
}

// engine is the supervised block scheduler behind MultiplyContext. The
// supervisor goroutine owns all scheduling state (pending queues, active
// leases, the C matrix, the checkpoint journal); workers own only their
// local matrix views and communicate through channels, so a worker that
// is killed or hangs mid-run can never corrupt shared state — it just
// stops heartbeating and loses its lease.
type engine struct {
	cfg  Config
	g    *partition.Grid
	a, b *matrix.Dense
	n    int

	c     *matrix.Dense
	stats *Stats

	workers      map[partition.Proc]*workerState
	aHave, bHave map[partition.Proc][]bool // supervisor-side coverage bookkeeping

	doneMask   []bool
	doneCells  int
	totalCells int

	pending   map[partition.Proc][]*blockTask
	active    map[partition.Proc]*activeBlock
	waiting   map[partition.Proc]bool
	alive     map[partition.Proc]bool
	byzantine map[partition.Proc]bool
	committed map[int]bool
	nextID    int

	integ *integrity // nil unless cfg.Verify

	beats [partition.NumProcs]atomic.Int64 // unix nanos of each worker's last heartbeat

	reqCh  chan partition.Proc
	resCh  chan blockResult
	assign map[partition.Proc]chan *blockTask

	runCtx context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	ckpt *journal.Writer

	hb, lease, straggle time.Duration
	em                  *execMetrics
}

func newEngine(ctx context.Context, cfg Config, g *partition.Grid, a, b *matrix.Dense) (*engine, error) {
	n := g.N()
	e := &engine{
		cfg:        cfg,
		g:          g,
		a:          a,
		b:          b,
		n:          n,
		c:          matrix.New(n),
		stats:      &Stats{},
		workers:    make(map[partition.Proc]*workerState, partition.NumProcs),
		aHave:      make(map[partition.Proc][]bool, partition.NumProcs),
		bHave:      make(map[partition.Proc][]bool, partition.NumProcs),
		doneMask:   make([]bool, n*n),
		totalCells: n * n,
		pending:    make(map[partition.Proc][]*blockTask, partition.NumProcs),
		active:     make(map[partition.Proc]*activeBlock, partition.NumProcs),
		waiting:    make(map[partition.Proc]bool, partition.NumProcs),
		alive:      make(map[partition.Proc]bool, partition.NumProcs),
		byzantine:  make(map[partition.Proc]bool, partition.NumProcs),
		committed:  make(map[int]bool),
		reqCh:      make(chan partition.Proc),
		resCh:      make(chan blockResult, 2*partition.NumProcs),
		assign:     make(map[partition.Proc]chan *blockTask, partition.NumProcs),
		hb:         cfg.HeartbeatEvery,
		lease:      cfg.LeaseTimeout,
		straggle:   cfg.StraggleAfter,
		em:         newExecMetrics(cfg.Metrics),
	}
	if e.hb <= 0 {
		e.hb = defaultHeartbeat
	}
	if e.lease <= 0 {
		e.lease = defaultLease
	}
	if e.lease < 2*e.hb {
		e.lease = 2 * e.hb
	}
	if cfg.BlockSize <= 0 {
		e.cfg.BlockSize = defaultBlockSize
	}
	for _, p := range partition.Procs {
		e.workers[p] = &workerState{
			aLocal: matrix.New(n),
			bLocal: matrix.New(n),
			inbox:  make(chan packet, partition.NumProcs),
		}
		e.assign[p] = make(chan *blockTask, 1)
		e.alive[p] = true
	}
	if err := e.openCheckpoint(); err != nil {
		return nil, err
	}
	if cfg.Verify {
		e.integ = newIntegrity(e)
	}
	e.runCtx, e.cancel = context.WithCancel(ctx)
	return e, nil
}

// run drives the whole execution: distribute, exchange, supervise the
// compute phase, and assemble the stats.
func (e *engine) run() (*matrix.Dense, *Stats, error) {
	defer func() {
		if e.ckpt != nil {
			e.ckpt.Close()
		}
	}()
	start := time.Now()
	e.distribute()
	e.exchange()
	e.buildInitialTasks()

	if e.doneCells < e.totalCells {
		if err := e.supervise(); err != nil {
			return nil, nil, err
		}
	}

	// Virtual clocks of the fault-free plan, from the measured volumes
	// and the initial assignment (recovery overhead is reported
	// separately in the stats, not folded into the model times).
	switch e.cfg.Algorithm {
	case model.SCB:
		e.stats.VirtualComm = e.cfg.Machine.Net.Time(topologyVolume(e.cfg.Machine, e.stats))
	case model.PCB:
		for _, w := range partition.Procs {
			var sent int64
			for _, v := range partition.Procs {
				sent += e.stats.PairVolume[w][v]
			}
			if e.cfg.Machine.Topology == model.Star && w != partition.P {
				sent += relayVolume(e.stats)
			}
			if t := e.cfg.Machine.Net.Time(sent); t > e.stats.VirtualComm {
				e.stats.VirtualComm = t
			}
		}
	}
	for _, p := range partition.Procs {
		flops := int64(e.g.Count(p)) * int64(e.n)
		virt := float64(flops) * e.cfg.Machine.FlopTime / e.cfg.Machine.Ratio.Speed(p)
		if virt > e.stats.VirtualComp {
			e.stats.VirtualComp = virt
		}
	}
	e.stats.VirtualExe = e.stats.VirtualComm + e.stats.VirtualComp
	e.stats.Wall = time.Since(start)
	return e.c, e.stats, nil
}

// distribute seeds each worker's local views with its own cells and
// initialises the supervisor's coverage bookkeeping.
func (e *engine) distribute() {
	n := e.n
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			p := e.g.At(i, j)
			e.workers[p].aLocal.Set(i, j, e.a.At(i, j))
			e.workers[p].bLocal.Set(i, j, e.b.At(i, j))
		}
	}
}

// exchange runs the planned all-to-all: w sends to v its A cells in v's
// rows and its B cells in v's columns, through real channels, with every
// element accounted in PairVolume. After it, every worker holds the full
// A rows and B columns its own C cells need. Coverage masks (aHave,
// bHave) record exactly that, so recovery knows what is missing later.
func (e *engine) exchange() {
	n := e.n
	sp := e.tr("exchange")
	rowsNeeded := make(map[partition.Proc][]bool, partition.NumProcs)
	colsNeeded := make(map[partition.Proc][]bool, partition.NumProcs)
	for _, p := range partition.Procs {
		rn := make([]bool, n)
		cn := make([]bool, n)
		for i := 0; i < n; i++ {
			rn[i] = e.g.RowCount(i, p) > 0
			cn[i] = e.g.ColCount(i, p) > 0
		}
		rowsNeeded[p] = rn
		colsNeeded[p] = cn
	}
	packets := make(map[partition.Proc]map[partition.Proc]packet, partition.NumProcs)
	for _, w := range partition.Procs {
		packets[w] = make(map[partition.Proc]packet, partition.NumProcs-1)
		for _, v := range partition.Procs {
			if v == w {
				continue
			}
			pk := packet{from: w}
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if e.g.At(i, j) != w {
						continue
					}
					idx := int32(i*n + j)
					if rowsNeeded[v][i] {
						pk.aIdx = append(pk.aIdx, idx)
						pk.aVal = append(pk.aVal, e.a.At(i, j))
					}
					if colsNeeded[v][j] {
						pk.bIdx = append(pk.bIdx, idx)
						pk.bVal = append(pk.bVal, e.b.At(i, j))
					}
				}
			}
			vol := int64(len(pk.aIdx) + len(pk.bIdx))
			e.stats.PairVolume[w][v] = vol
			e.stats.TotalVolume += vol
			packets[w][v] = pk
		}
	}

	var xwg sync.WaitGroup
	for _, w := range partition.Procs {
		xwg.Add(1)
		go func(w partition.Proc) {
			defer xwg.Done()
			for _, v := range partition.Procs {
				if v == w {
					continue
				}
				e.workers[v].inbox <- packets[w][v]
			}
		}(w)
	}
	xwg.Wait()
	for _, w := range partition.Procs {
		ws := e.workers[w]
		for k := 0; k < partition.NumProcs-1; k++ {
			pk := <-ws.inbox
			for i, idx := range pk.aIdx {
				ws.aLocal.Data()[idx] = pk.aVal[i]
			}
			for i, idx := range pk.bIdx {
				ws.bLocal.Data()[idx] = pk.bVal[i]
			}
		}
	}

	// Coverage after the exchange: worker v holds A cell (i,j) iff row i
	// is one of its rows (then the row is complete) or the cell is its
	// own; symmetrically for B columns.
	for _, v := range partition.Procs {
		ah := make([]bool, n*n)
		bh := make([]bool, n*n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				idx := i*n + j
				own := e.g.At(i, j) == v
				ah[idx] = own || rowsNeeded[v][i]
				bh[idx] = own || colsNeeded[v][j]
			}
		}
		e.aHave[v] = ah
		e.bHave[v] = bh
	}
	if sp != nil {
		sp.SetDetail("moved=%d", e.stats.TotalVolume)
		sp.End()
	}
}

// buildInitialTasks cuts the not-yet-done region (everything, unless a
// checkpoint was resumed) into (tile, owner) block tasks.
func (e *engine) buildInitialTasks() {
	n, bs := e.n, e.cfg.BlockSize
	for tr := 0; tr < n; tr += bs {
		for tc := 0; tc < n; tc += bs {
			var cells [partition.NumProcs][]int32
			for i := tr; i < min(tr+bs, n); i++ {
				for j := tc; j < min(tc+bs, n); j++ {
					idx := i*n + j
					if e.doneMask[idx] {
						continue
					}
					p := e.g.At(i, j)
					cells[p] = append(cells[p], int32(idx))
				}
			}
			for _, p := range partition.Procs {
				if len(cells[p]) == 0 {
					continue
				}
				t := &blockTask{id: e.nextID, owner: p, cells: cells[p]}
				e.nextID++
				e.pending[p] = append(e.pending[p], t)
			}
		}
	}
	for _, p := range partition.Procs {
		e.stats.Blocks += len(e.pending[p])
	}
}

// supervise runs the compute phase: workers pull blocks, the supervisor
// commits results, checkpoints them, and watches leases for losses and
// stragglers.
func (e *engine) supervise() error {
	defer e.cancel()

	now := time.Now().UnixNano()
	for i := range e.beats {
		e.beats[i].Store(now)
	}
	for _, p := range partition.Procs {
		flops := int64(0)
		for _, t := range e.pending[p] {
			flops += int64(len(t.cells)) * int64(e.n)
		}
		e.wg.Add(1)
		go e.workerLoop(p, flops)
	}
	// Whatever happens, release every worker — including hung ones —
	// before returning, so no goroutine outlives the call.
	defer e.wg.Wait()
	defer e.cancel()

	ticker := time.NewTicker(e.hb)
	defer ticker.Stop()
	for e.doneCells < e.totalCells {
		select {
		case <-e.runCtx.Done():
			return e.runCtx.Err()
		case w := <-e.reqCh:
			e.handleRequest(w)
		case r := <-e.resCh:
			if err := e.commit(r); err != nil {
				return err
			}
		case <-ticker.C:
			if err := e.checkHealth(time.Now()); err != nil {
				return err
			}
		}
	}
	// Drain results that raced the finish so the stats see every
	// delivered corruption (a quarantined worker's rejected result, a
	// speculation loser) before the run reports.
	for {
		select {
		case r := <-e.resCh:
			if err := e.commit(r); err != nil {
				return err
			}
		default:
			return nil
		}
	}
}

// workerLoop is one processor: request a block, compute it, report it,
// heartbeat throughout — unless the fault plan kills or hangs it first.
func (e *engine) workerLoop(w partition.Proc, initFlops int64) {
	defer e.wg.Done()
	sp := e.tr("worker " + w.String())
	blocks := 0
	defer func() {
		if sp != nil {
			sp.SetDetail("blocks=%d", blocks)
			sp.End()
		}
	}()

	fate, frac := e.cfg.Faults.WorkerFateFor(w)
	slow := e.cfg.Faults.WorkerSlowdown(w)
	corrupt, cval := e.cfg.Faults.WorkerCorruption(w)
	var crng *rand.Rand
	if corrupt != sim.FateNone {
		crng = rand.New(rand.NewSource(0x1e57 + int64(w)))
	}
	var lim *throttle.Limiter
	if e.cfg.Pace || slow > 1 {
		baseRate := e.cfg.PaceFlopsPerSec
		if baseRate <= 0 {
			baseRate = 5e7
		}
		lim = throttle.MustNew(baseRate * e.cfg.Machine.Ratio.Speed(w) / slow)
	}

	var done int64
	for {
		if fate != sim.FateNone {
			progress := 1.0
			if initFlops > 0 {
				progress = float64(done) / float64(initFlops)
			}
			if progress >= frac {
				if fate == sim.FateHang {
					// Hold the lease, stop heartbeating, block until the
					// run is over.
					<-e.runCtx.Done()
				}
				return
			}
		}
		e.beat(w)
		select {
		case <-e.runCtx.Done():
			return
		case e.reqCh <- w:
		}
		var t *blockTask
		select {
		case <-e.runCtx.Done():
			return
		case t = <-e.assign[w]:
		}
		vals := e.computeBlock(w, t, lim)
		injected := false
		switch corrupt {
		case sim.FateScale:
			// Systematic corruption: every returned value is scaled, a
			// self-consistent wrongness only supervisor-side references
			// catch.
			for i := range vals {
				vals[i] *= cval
			}
			injected = len(vals) > 0
		case sim.FateFlip:
			// Transient corruption: one cell of the block, with the
			// configured per-block probability.
			if len(vals) > 0 && crng.Float64() < cval {
				ci := crng.Intn(len(vals))
				vals[ci] = flipExponent(vals[ci], crng)
				injected = true
			}
		}
		done += int64(len(t.cells)) * int64(e.n)
		blocks++
		select {
		case <-e.runCtx.Done():
			return
		case e.resCh <- blockResult{task: t, from: w, vals: vals, injected: injected}:
		}
	}
}

// computeBlock computes the block's C cells bit-identically to the
// serial kij kernel: each cell accumulates its pivot products in
// strictly ascending k order, chunked so pacing and heartbeats
// interleave with the work.
func (e *engine) computeBlock(w partition.Proc, t *blockTask, lim *throttle.Limiter) []float64 {
	ws := e.workers[w]
	ad, bd := ws.aLocal.Data(), ws.bLocal.Data()
	for i, idx := range t.patchA {
		ad[idx] = t.patchAV[i]
	}
	for i, idx := range t.patchB {
		bd[idx] = t.patchBV[i]
	}
	n := e.n
	vals := make([]float64, len(t.cells))
	const chunk = 64
	cells := int64(len(t.cells))
	for k0 := 0; k0 < n; k0 += chunk {
		k1 := min(k0+chunk, n)
		for ci, idx := range t.cells {
			i, j := int(idx)/n, int(idx)%n
			s := vals[ci]
			arow := ad[i*n : (i+1)*n]
			for k := k0; k < k1; k++ {
				s += arow[k] * bd[k*n+j]
			}
			vals[ci] = s
		}
		e.beat(w)
		if lim != nil {
			e.pacedAcquire(w, lim, cells*int64(k1-k0))
		}
	}
	return vals
}

// pacedAcquire sleeps the worker to its paced rate in slices short
// enough that heartbeats keep flowing — a heavily slowed straggler must
// look slow, not dead. Cancellation interrupts the sleep promptly.
func (e *engine) pacedAcquire(w partition.Proc, lim *throttle.Limiter, flops int64) {
	slice := int64(lim.Rate() * e.hb.Seconds())
	if slice < 1 {
		slice = 1
	}
	for flops > 0 {
		nn := min(flops, slice)
		if err := lim.AcquireContext(e.runCtx, nn); err != nil {
			return
		}
		e.beat(w)
		flops -= nn
	}
}

func (e *engine) beat(w partition.Proc) {
	e.beats[w].Store(time.Now().UnixNano())
}

func (e *engine) lastBeat(w partition.Proc) time.Time {
	return time.Unix(0, e.beats[w].Load())
}

// handleRequest dispatches the worker's next pending block, or parks it
// as idle until recovery or speculation produces more work.
func (e *engine) handleRequest(w partition.Proc) {
	if q := e.pending[w]; len(q) > 0 {
		t := q[0]
		e.pending[w] = q[1:]
		e.active[w] = &activeBlock{task: t, start: time.Now()}
		// The lease clock starts at assignment: a worker that idled while
		// it had no work (not beating, blocked on the assign channel) must
		// not be declared dead the instant recovery hands it a block.
		e.beat(w)
		e.assign[w] <- t // cap 1; the worker is blocked receiving
		return
	}
	e.waiting[w] = true
}

// dispatchWaiting hands newly created work to parked workers.
func (e *engine) dispatchWaiting() {
	for _, w := range partition.Procs {
		if e.waiting[w] && e.alive[w] && len(e.pending[w]) > 0 {
			e.waiting[w] = false
			e.handleRequest(w)
		}
	}
}

// commit applies a block result: first result per block id wins, later
// ones (speculation losers) are discarded so neither C nor the stats
// double-count. Results from a quarantined (Byzantine) worker are
// rejected outright — its in-flight block may be corrupt and its cells
// were already re-planned.
func (e *engine) commit(r blockResult) error {
	if e.byzantine[r.from] {
		e.stats.ByzantineRejected++
		if r.injected {
			e.stats.InjectedCorruptions++
		}
		e.em.block("rejected", 1)
		return nil
	}
	if ab := e.active[r.from]; ab != nil && ab.task.id == r.task.id {
		e.active[r.from] = nil
	}
	if e.committed[r.task.id] {
		e.stats.BlocksDiscarded++
		e.em.block("discarded", 1)
		return nil
	}
	e.committed[r.task.id] = true
	fresh := 0
	var freshCells []int32
	cd := e.c.Data()
	for ci, idx := range r.task.cells {
		if !e.doneMask[idx] {
			e.doneMask[idx] = true
			cd[idx] = r.vals[ci]
			fresh++
			if e.integ != nil {
				freshCells = append(freshCells, idx)
			}
		}
	}
	if fresh == 0 {
		// A re-planned duplicate of work that another path already
		// finished (e.g. a speculated block whose loser was re-planned
		// after a loss): dedup, don't double count.
		e.stats.BlocksDiscarded++
		e.em.block("discarded", 1)
		return nil
	}
	if r.injected {
		e.stats.InjectedCorruptions++
	}
	e.doneCells += fresh
	e.stats.BlocksDone++
	e.stats.Flops[r.from] += int64(len(r.task.cells)) * int64(e.n)
	e.em.block("done", 1)
	if e.integ != nil {
		// Verification is tile-grained; with a checkpoint configured the
		// journal append is deferred until the block's tile verifies.
		return e.integ.blockCommitted(r, freshCells)
	}
	if e.ckpt != nil {
		if err := e.ckpt.AppendPayload(newCkptRecord(r.task.id, r.task.cells, r.vals)); err != nil {
			return fmt.Errorf("exec: checkpoint: %w", err)
		}
	}
	return nil
}

// checkHealth is the lease scan: workers with outstanding work whose
// heartbeat went stale are declared lost; active blocks that outlive the
// straggle threshold (while their worker still beats) are speculated.
func (e *engine) checkHealth(now time.Time) error {
	for _, w := range partition.Procs {
		if !e.alive[w] {
			continue
		}
		if e.active[w] == nil && len(e.pending[w]) == 0 {
			continue // idle workers owe no heartbeat
		}
		if now.Sub(e.lastBeat(w)) > e.lease {
			if err := e.declareLost(w, now); err != nil {
				return err
			}
			continue
		}
		if e.straggle > 0 {
			if ab := e.active[w]; ab != nil && !ab.speculated && now.Sub(ab.start) > e.straggle {
				e.speculate(w, ab, now)
			}
		}
	}
	return nil
}

// declareLost handles permanent fail-stop worker loss (missed-heartbeat
// lease expiry).
func (e *engine) declareLost(w partition.Proc, now time.Time) error {
	return e.evict(w, now, false)
}

// evict removes worker w from the run — either fail-stop lost (lease
// expiry) or declared Byzantine (mismatch budget exceeded) — and
// re-plans: withdraw every unstarted block, re-plan the whole remaining
// uncomputed region on the survivors (3→2 with the prior work's optimal
// two-processor shapes, 2→1 serial), attach the A/B fragments each
// survivor is missing, and let in-flight survivor blocks finish under
// their leases. Idempotent: a worker already evicted (a quarantine
// racing its own heartbeat expiry) is left alone.
func (e *engine) evict(w partition.Proc, now time.Time, byzantine bool) error {
	if !e.alive[w] {
		return nil
	}
	e.alive[w] = false
	e.waiting[w] = false
	var stall time.Duration
	var sp *trace.Active
	if byzantine {
		e.byzantine[w] = true
		e.stats.Byzantine = append(e.stats.Byzantine, w)
		sp = e.tr("quarantine " + w.String())
	} else {
		e.stats.Lost = append(e.stats.Lost, w)
		stall = now.Sub(e.lastBeat(w))
		sp = e.tr("recovery " + w.String())
	}

	// The remaining uncomputed region: the lost worker's active block,
	// plus every pending block of every worker. Blocks a live survivor
	// is computing right now are left in place.
	var remaining []int32
	collect := func(t *blockTask) {
		for _, idx := range t.cells {
			if !e.doneMask[idx] {
				remaining = append(remaining, idx)
			}
		}
	}
	if ab := e.active[w]; ab != nil {
		collect(ab.task)
		e.active[w] = nil
	}
	for _, p := range partition.Procs {
		for _, t := range e.pending[p] {
			collect(t)
			// A withdrawn pending task never delivered its A/B patch: the
			// coverage bits it claimed must be released, or the replacement
			// task would get no patch and its assignee would compute from
			// zeroed local fragments.
			e.unpatch(t)
		}
		e.pending[p] = nil
	}
	sort.Slice(remaining, func(i, j int) bool { return remaining[i] < remaining[j] })

	survivors := e.survivorsBySpeed()
	if len(survivors) == 0 {
		return fmt.Errorf("exec: all workers lost, %d of %d cells uncomputed", e.totalCells-e.doneCells, e.totalCells)
	}
	if len(remaining) == 0 {
		if sp != nil {
			sp.SetDetail("nothing to re-plan")
			sp.End()
		}
		return nil
	}

	// New ownership for the remaining region.
	var kind string
	var ownerOf func(idx int32) partition.Proc
	switch len(survivors) {
	case 1:
		kind = "replan-serial"
		solo := survivors[0]
		ownerOf = func(int32) partition.Proc { return solo }
	default:
		kind = "replan-2proc"
		fast, slowp := survivors[0], survivors[1]
		speed := e.cfg.Machine.Ratio.Speed
		r2, err := twoproc.NewRatio(speed(fast) / speed(slowp))
		if err != nil {
			return fmt.Errorf("exec: replan ratio: %w", err)
		}
		shape := twoproc.Optimal(e.cfg.Algorithm, r2)
		tg, err := twoproc.Build(shape, e.n, r2)
		if err != nil {
			return fmt.Errorf("exec: replan shape %v: %w", shape, err)
		}
		ownerOf = func(idx int32) partition.Proc {
			if tg.AtIndex(int(idx)) == partition.R {
				return slowp
			}
			return fast
		}
	}

	// Re-tile the remaining cells under the new ownership and attach the
	// missing A/B fragments to each new block.
	newTasks := e.retile(remaining, ownerOf)
	for _, t := range newTasks {
		e.buildPatch(t)
		e.pending[t.owner] = append(e.pending[t.owner], t)
	}
	e.accountRemainderNeed(remaining, ownerOf)

	e.stats.BlocksReassigned += len(newTasks)
	e.stats.Recoveries++
	e.stats.RecoveryKinds = append(e.stats.RecoveryKinds, kind)
	e.em.block("reassigned", len(newTasks))
	e.em.recovery(kind)
	if !byzantine {
		// Quarantine is a supervisor decision, not a detected stall:
		// recovery latency measures heartbeat silence only.
		e.stats.RecoveryLatency += stall
		e.em.latency(stall)
	}
	if sp != nil {
		sp.SetDetail("%s: %d blocks on %d survivors, +%d elements", kind, len(newTasks), len(survivors), e.stats.RecoveryVolume)
		sp.End()
	}

	e.dispatchWaiting()
	return nil
}

// speculate re-executes a straggling block on the fastest idle survivor.
// The copy keeps the original block id, so whichever result lands second
// is discarded by commit's dedup.
func (e *engine) speculate(w partition.Proc, ab *activeBlock, now time.Time) {
	var target partition.Proc
	found := false
	for _, v := range e.survivorsBySpeed() {
		if v != w && e.waiting[v] {
			target, found = v, true
			break
		}
	}
	if !found {
		return
	}
	t := ab.task
	nt := &blockTask{id: t.id, owner: target, cells: t.cells, speculative: true}
	e.buildPatch(nt)
	ab.speculated = true
	e.stats.Speculations++
	e.stats.BlocksSpeculated++
	e.em.block("speculated", 1)
	e.em.recovery("speculate")
	e.waiting[target] = false
	e.active[target] = &activeBlock{task: nt, start: now}
	e.beat(target) // lease restarts at assignment, as in handleRequest
	e.assign[target] <- nt
}

// survivorsBySpeed returns the live workers, fastest first.
func (e *engine) survivorsBySpeed() []partition.Proc {
	var s []partition.Proc
	for _, p := range partition.Procs {
		if e.alive[p] {
			s = append(s, p)
		}
	}
	speed := e.cfg.Machine.Ratio.Speed
	sort.SliceStable(s, func(i, j int) bool { return speed(s[i]) > speed(s[j]) })
	return s
}

// retile groups cells into (tile, owner) block tasks with fresh ids.
func (e *engine) retile(cells []int32, ownerOf func(int32) partition.Proc) []*blockTask {
	n, bs := e.n, e.cfg.BlockSize
	tilesPerRow := (n + bs - 1) / bs
	type key struct {
		tile  int
		owner partition.Proc
	}
	group := make(map[key][]int32)
	var order []key
	for _, idx := range cells {
		i, j := int(idx)/n, int(idx)%n
		k := key{tile: (i/bs)*tilesPerRow + j/bs, owner: ownerOf(idx)}
		if _, ok := group[k]; !ok {
			order = append(order, k)
		}
		group[k] = append(group[k], idx)
	}
	sort.Slice(order, func(x, y int) bool {
		if order[x].tile != order[y].tile {
			return order[x].tile < order[y].tile
		}
		return order[x].owner < order[y].owner
	})
	tasks := make([]*blockTask, 0, len(order))
	for _, k := range order {
		t := &blockTask{id: e.nextID, owner: k.owner, cells: group[k]}
		e.nextID++
		tasks = append(tasks, t)
	}
	return tasks
}

// buildPatch attaches to the task every A-row / B-column element its
// assignee needs for the task's cells but does not yet hold, updating
// the coverage masks and the recovery-volume accounting. Fragments the
// worker already holds are never re-sent.
func (e *engine) buildPatch(t *blockTask) {
	n := e.n
	ah, bh := e.aHave[t.owner], e.bHave[t.owner]
	rowSeen := make(map[int]bool)
	colSeen := make(map[int]bool)
	for _, idx := range t.cells {
		i, j := int(idx)/n, int(idx)%n
		if !rowSeen[i] {
			rowSeen[i] = true
			for k := 0; k < n; k++ {
				ai := i*n + k
				if !ah[ai] {
					ah[ai] = true
					t.patchA = append(t.patchA, int32(ai))
					t.patchAV = append(t.patchAV, e.a.Data()[ai])
					e.stats.RecoveryVolume++
				}
			}
		}
		if !colSeen[j] {
			colSeen[j] = true
			for k := 0; k < n; k++ {
				bi := k*n + j
				if !bh[bi] {
					bh[bi] = true
					t.patchB = append(t.patchB, int32(bi))
					t.patchBV = append(t.patchBV, e.b.Data()[bi])
					e.stats.RecoveryVolume++
				}
			}
		}
	}
}

// unpatch releases the coverage claims of a task that was withdrawn
// before its assignee ever received it, reversing buildPatch: the
// fragments ride on the task itself, so an undelivered task means the
// worker does not hold them, whatever the masks say. The recovery
// volume it charged is refunded — those elements never moved.
func (e *engine) unpatch(t *blockTask) {
	ah, bh := e.aHave[t.owner], e.bHave[t.owner]
	for _, idx := range t.patchA {
		ah[idx] = false
	}
	for _, idx := range t.patchB {
		bh[idx] = false
	}
	e.stats.RecoveryVolume -= int64(len(t.patchA) + len(t.patchB))
}

// accountRemainderNeed computes what a from-scratch redistribution of
// the re-planned remainder would move: for each survivor, the A-rows and
// B-columns its newly assigned cells span, minus the cells of those
// lines it owned in the original partition. This is the fault-free
// volume of the re-planned remainder that the recovery study bounds
// RecoveryVolume against.
func (e *engine) accountRemainderNeed(cells []int32, ownerOf func(int32) partition.Proc) {
	n := e.n
	type lines struct{ rows, cols map[int]bool }
	byOwner := make(map[partition.Proc]*lines)
	for _, idx := range cells {
		v := ownerOf(idx)
		l := byOwner[v]
		if l == nil {
			l = &lines{rows: make(map[int]bool), cols: make(map[int]bool)}
			byOwner[v] = l
		}
		l.rows[int(idx)/n] = true
		l.cols[int(idx)%n] = true
	}
	for v, l := range byOwner {
		for i := range l.rows {
			e.stats.RemainderNeed += int64(n - e.g.RowCount(i, v))
		}
		for j := range l.cols {
			e.stats.RemainderNeed += int64(n - e.g.ColCount(j, v))
		}
	}
}

// tr opens a trace span when tracing is enabled.
func (e *engine) tr(name string) *trace.Active {
	if e.cfg.Trace == nil {
		return nil
	}
	return e.cfg.Trace.Start(name)
}
