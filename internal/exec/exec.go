// Package exec runs parallel matrix-matrix multiplication for real on
// three goroutine "processors", with the matrices partitioned by an
// arbitrary (possibly non-rectangular) partition grid. It is the
// repository's substitute for the paper's Open-MPI + ATLAS cluster
// experiment (Section X-B): data actually moves between workers through
// channels, every transferred element is accounted, processor speed
// ratios are imposed with the token-bucket throttle, and the numerical
// result is bit-identical to the serial kij kernel.
package exec

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/matrix"
	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/throttle"
)

// Config parameterises an execution.
type Config struct {
	// Machine supplies the speed ratio, network model and topology.
	Machine model.Machine
	// Algorithm must be a barrier algorithm (SCB or PCB); the bulk- and
	// interleaved-overlap algorithms are modelled by internal/sim.
	Algorithm model.Algorithm
	// Pace, when true, throttles each worker to its relative speed in
	// real time (the paper's CPU-limiter experiment). When false the run
	// goes at full machine speed and only the virtual clocks are paced.
	Pace bool
	// PaceFlopsPerSec is the real flops/s granted to the slowest
	// processor when Pace is set (default 5e7).
	PaceFlopsPerSec float64
}

// packet is one worker-to-worker transfer: matrix cell indices and values.
type packet struct {
	from partition.Proc
	aIdx []int32
	aVal []float64
	bIdx []int32
	bVal []float64
}

// Stats reports what an execution actually did.
type Stats struct {
	// PairVolume[w][v] is the number of elements worker w sent to worker
	// v (A data plus B data).
	PairVolume [partition.NumProcs][partition.NumProcs]int64
	// TotalVolume is the sum of all pair volumes; it equals the
	// partition's VoC (Eq 1) exactly, which tests assert.
	TotalVolume int64
	// Flops[p] counts the multiply-add pairs worker p executed.
	Flops [partition.NumProcs]int64
	// VirtualComm/VirtualComp/VirtualExe are the modelled times of this
	// run derived from the *measured* volumes and flop counts (not from
	// the partition metrics), in seconds.
	VirtualComm, VirtualComp, VirtualExe float64
	// Wall is the real elapsed time.
	Wall time.Duration
}

// Multiply computes C = A·B with the matrices partitioned by g across
// three workers. A and B must be n×n with n = g.N().
func Multiply(cfg Config, g *partition.Grid, a, b *matrix.Dense) (*matrix.Dense, *Stats, error) {
	n := g.N()
	if a.N() != n || b.N() != n {
		return nil, nil, fmt.Errorf("exec: matrices are %d×%d, partition is %d×%d", a.N(), a.N(), n, n)
	}
	if cfg.Algorithm != model.SCB && cfg.Algorithm != model.PCB {
		return nil, nil, fmt.Errorf("exec: algorithm %v not supported (want SCB or PCB)", cfg.Algorithm)
	}
	if err := cfg.Machine.Ratio.Validate(); err != nil {
		return nil, nil, err
	}

	start := time.Now()
	stats := &Stats{}

	// Each worker's view of A and B starts with only its own cells; the
	// exchange fills in the foreign cells it needs. Missing cells stay
	// zero, so a wrong communication pattern produces a wrong product —
	// correctness of the result certifies the pattern.
	type workerState struct {
		aLocal, bLocal *matrix.Dense
		mask           []bool
		inbox          chan packet
	}
	workers := make(map[partition.Proc]*workerState, partition.NumProcs)
	for _, p := range partition.Procs {
		workers[p] = &workerState{
			aLocal: matrix.New(n),
			bLocal: matrix.New(n),
			mask:   g.Mask(p),
			inbox:  make(chan packet, partition.NumProcs),
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			p := g.At(i, j)
			workers[p].aLocal.Set(i, j, a.At(i, j))
			workers[p].bLocal.Set(i, j, b.At(i, j))
		}
	}

	// Precompute which rows/columns each worker owns C cells in.
	rowsNeeded := make(map[partition.Proc][]bool, partition.NumProcs)
	colsNeeded := make(map[partition.Proc][]bool, partition.NumProcs)
	for _, p := range partition.Procs {
		rn := make([]bool, n)
		cn := make([]bool, n)
		for i := 0; i < n; i++ {
			if g.RowCount(i, p) > 0 {
				rn[i] = true
			}
			if g.ColCount(i, p) > 0 {
				cn[i] = true
			}
		}
		rowsNeeded[p] = rn
		colsNeeded[p] = cn
	}

	// Build the packets: w sends to v its A cells in v's rows and its B
	// cells in v's columns.
	packets := make(map[partition.Proc]map[partition.Proc]packet, partition.NumProcs)
	for _, w := range partition.Procs {
		packets[w] = make(map[partition.Proc]packet, partition.NumProcs-1)
		for _, v := range partition.Procs {
			if v == w {
				continue
			}
			pk := packet{from: w}
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if g.At(i, j) != w {
						continue
					}
					idx := int32(i*n + j)
					if rowsNeeded[v][i] {
						pk.aIdx = append(pk.aIdx, idx)
						pk.aVal = append(pk.aVal, a.At(i, j))
					}
					if colsNeeded[v][j] {
						pk.bIdx = append(pk.bIdx, idx)
						pk.bVal = append(pk.bVal, b.At(i, j))
					}
				}
			}
			vol := int64(len(pk.aIdx) + len(pk.bIdx))
			stats.PairVolume[w][v] = vol
			stats.TotalVolume += vol
			packets[w][v] = pk
		}
	}

	// Virtual communication clock per the algorithm's schedule.
	switch cfg.Algorithm {
	case model.SCB:
		stats.VirtualComm = cfg.Machine.Net.Time(topologyVolume(cfg.Machine, stats))
	case model.PCB:
		for _, w := range partition.Procs {
			var sent int64
			for _, v := range partition.Procs {
				sent += stats.PairVolume[w][v]
			}
			if cfg.Machine.Topology == model.Star && w != partition.P {
				sent += relayVolume(stats)
			}
			if t := cfg.Machine.Net.Time(sent); t > stats.VirtualComm {
				stats.VirtualComm = t
			}
		}
	}

	// Exchange phase: real channel transfers.
	var xwg sync.WaitGroup
	for _, w := range partition.Procs {
		xwg.Add(1)
		go func(w partition.Proc) {
			defer xwg.Done()
			for _, v := range partition.Procs {
				if v == w {
					continue
				}
				workers[v].inbox <- packets[w][v]
			}
		}(w)
	}
	xwg.Wait()
	for _, w := range partition.Procs {
		ws := workers[w]
		for k := 0; k < partition.NumProcs-1; k++ {
			pk := <-ws.inbox
			for i, idx := range pk.aIdx {
				ws.aLocal.Data()[idx] = pk.aVal[i]
			}
			for i, idx := range pk.bIdx {
				ws.bLocal.Data()[idx] = pk.bVal[i]
			}
		}
	}

	// Compute phase: barrier semantics — all workers start after the
	// exchange, each multiplying only its masked region, throttled to its
	// relative speed when pacing.
	baseRate := cfg.PaceFlopsPerSec
	if baseRate <= 0 {
		baseRate = 5e7
	}
	c := matrix.New(n)
	var cwg sync.WaitGroup
	var compMu sync.Mutex
	for _, w := range partition.Procs {
		cwg.Add(1)
		go func(w partition.Proc) {
			defer cwg.Done()
			ws := workers[w]
			count := int64(g.Count(w))
			flops := count * int64(n)
			var lim *throttle.Limiter
			if cfg.Pace && flops > 0 {
				lim = throttle.MustNew(baseRate * cfg.Machine.Ratio.Speed(w))
			}
			// Chunk the pivot loop so pacing interleaves with work.
			const chunk = 64
			for k0 := 0; k0 < n; k0 += chunk {
				k1 := min(k0+chunk, n)
				for k := k0; k < k1; k++ {
					matrix.MulMaskedStep(c, ws.aLocal, ws.bLocal, ws.mask, k)
				}
				if lim != nil {
					lim.Acquire(count * int64(k1-k0))
				}
			}
			virt := float64(flops) * cfg.Machine.FlopTime / cfg.Machine.Ratio.Speed(w)
			compMu.Lock()
			stats.Flops[w] = flops
			if virt > stats.VirtualComp {
				stats.VirtualComp = virt
			}
			compMu.Unlock()
		}(w)
	}
	cwg.Wait()

	stats.VirtualExe = stats.VirtualComm + stats.VirtualComp
	stats.Wall = time.Since(start)
	return c, stats, nil
}

// topologyVolume is the total volume crossing the network, with the star
// topology's relay traffic counted twice.
func topologyVolume(m model.Machine, s *Stats) int64 {
	v := s.TotalVolume
	if m.Topology == model.Star {
		v += relayVolume(s)
	}
	return v
}

// relayVolume is the R↔S traffic that the star topology forwards via P.
func relayVolume(s *Stats) int64 {
	return s.PairVolume[partition.R][partition.S] + s.PairVolume[partition.S][partition.R]
}
