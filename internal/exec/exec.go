// Package exec runs parallel matrix-matrix multiplication for real on
// three goroutine "processors", with the matrices partitioned by an
// arbitrary (possibly non-rectangular) partition grid. It is the
// repository's substitute for the paper's Open-MPI + ATLAS cluster
// experiment (Section X-B): data actually moves between workers through
// channels, every transferred element is accounted, processor speed
// ratios are imposed with the token-bucket throttle, and the numerical
// result is bit-identical to the serial kij kernel.
//
// The barrier algorithms (SCB, PCB) run on a supervised block scheduler
// (engine.go): the multiplication is split into block tasks with lease +
// heartbeat tracking, completed C-blocks are journal-checkpointed so a
// killed run resumes byte-identically, and a worker lost mid-multiply is
// survived by re-planning the remaining region on the survivors — 3→2
// with the optimal two-processor shapes of the authors' prior work
// (internal/twoproc), 2→1 with a serial fallback. Stragglers are
// speculatively re-executed on the fastest idle survivor, with results
// deduplicated by block id so the volume accounting stays exact.
package exec

import (
	"context"
	"fmt"
	"time"

	"repro/internal/matrix"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Config parameterises an execution.
type Config struct {
	// Machine supplies the speed ratio, network model and topology.
	Machine model.Machine
	// Algorithm must be a barrier algorithm (SCB or PCB) for Multiply;
	// the bulk-overlap algorithms run through MultiplyOverlap and the
	// interleaved pipeline through MultiplyPIO.
	Algorithm model.Algorithm
	// Pace, when true, throttles each worker to its relative speed in
	// real time (the paper's CPU-limiter experiment). When false the run
	// goes at full machine speed and only the virtual clocks are paced.
	Pace bool
	// PaceFlopsPerSec is the real flops/s granted to the slowest
	// processor when Pace is set (default 5e7).
	PaceFlopsPerSec float64

	// BlockSize is the tile edge of the supervised block scheduler: the
	// C matrix is cut into BlockSize×BlockSize tiles and each (tile,
	// owner) pair becomes one schedulable, checkpointable block task.
	// Defaults to 32.
	BlockSize int
	// Faults injects worker-level faults (kill/hang at a progress
	// fraction, persistent slowdown) into the compute phase. Nil injects
	// nothing. See sim.FaultPlan's AddWorkerKill/AddWorkerHang/
	// AddWorkerSlowdown and sim.ParseWorkerFaults.
	Faults *sim.FaultPlan
	// Checkpoint, when non-empty, journals every committed C-block to
	// this path (internal/journal CRC framing) so a killed run can be
	// resumed byte-identically. Without Resume the file must not exist.
	Checkpoint string
	// Resume replays an existing checkpoint at Checkpoint before
	// computing: recorded blocks are restored bit-exactly and only the
	// remaining cells are scheduled.
	Resume bool
	// HeartbeatEvery is the worker heartbeat period and the supervisor's
	// health-check cadence (default 5ms).
	HeartbeatEvery time.Duration
	// LeaseTimeout is how long a worker with outstanding work may go
	// without a heartbeat before it is declared lost and its remaining
	// work is re-planned on the survivors (default 250ms).
	LeaseTimeout time.Duration
	// StraggleAfter, when positive, speculatively re-executes a block
	// that has been active longer than this on the fastest idle survivor
	// (the original stays running; the first result wins, the loser is
	// discarded by block id). Zero disables speculation.
	StraggleAfter time.Duration

	// Verify turns on ABFT result verification (integrity.go): every
	// completed C tile is checked against checksum references the
	// supervisor derives from its own pristine A and B, a localized
	// single-cell error is corrected in place (bit-exactly, by
	// recomputing the cell), and an uncorrectable mismatch discards the
	// offending blocks and re-leases them to a different worker. With a
	// checkpoint configured, journal appends are deferred until the
	// block's tile verifies, so the journal only ever holds verified
	// results.
	Verify bool
	// MismatchBudget is how many uncorrectable mismatches a worker may
	// cause under Verify before it is declared Byzantine and quarantined
	// like a lost worker (its remaining work re-planned on the
	// survivors, its in-flight results rejected). 0 means the default
	// of 3.
	MismatchBudget int

	// Metrics, when non-nil, receives the engine's instrumentation:
	// exec_blocks_total{state}, exec_recoveries_total{kind} and the
	// exec_recovery_latency_seconds histogram.
	Metrics *metrics.Registry
	// Trace, when non-nil, records per-worker span timelines plus
	// exchange and recovery spans.
	Trace *trace.Trace
}

// packet is one worker-to-worker transfer: matrix cell indices and values.
type packet struct {
	from partition.Proc
	aIdx []int32
	aVal []float64
	bIdx []int32
	bVal []float64
}

// Stats reports what an execution actually did.
type Stats struct {
	// PairVolume[w][v] is the number of elements worker w sent to worker
	// v (A data plus B data) during the planned exchange.
	PairVolume [partition.NumProcs][partition.NumProcs]int64
	// TotalVolume is the sum of all pair volumes; it equals the
	// partition's VoC (Eq 1) exactly, which tests assert. Recovery
	// redistribution is accounted separately in RecoveryVolume, and
	// speculated/retried blocks are deduplicated by block id, so this
	// stays exact under faults.
	TotalVolume int64
	// Flops[p] counts the multiply-add pairs worker p executed for
	// blocks that were committed (speculation losers are excluded; see
	// BlocksDiscarded).
	Flops [partition.NumProcs]int64
	// VirtualComm/VirtualComp/VirtualExe are the modelled times of this
	// run derived from the *measured* volumes and flop counts of the
	// fault-free plan (not from the partition metrics), in seconds.
	// Recovery overhead is reported separately, not folded in.
	VirtualComm, VirtualComp, VirtualExe float64
	// Wall is the real elapsed time.
	Wall time.Duration

	// Blocks is the number of block tasks scheduled at the start of the
	// run (after checkpoint resume, before any recovery).
	Blocks int
	// BlocksDone counts committed blocks, including re-planned and
	// speculated ones (each block id commits exactly once).
	BlocksDone int
	// BlocksResumed counts checkpoint records replayed instead of
	// recomputed.
	BlocksResumed int
	// BlocksReassigned counts block tasks created by loss recovery.
	BlocksReassigned int
	// BlocksSpeculated counts speculative re-executions launched for
	// straggling blocks; BlocksDiscarded counts results thrown away by
	// the block-id dedup (speculation losers).
	BlocksSpeculated, BlocksDiscarded int

	// Lost lists the workers declared dead (missed-heartbeat lease
	// expiry), in detection order.
	Lost []partition.Proc
	// Recoveries counts loss re-plan events; RecoveryKinds records each
	// event's kind ("replan-2proc" or "replan-serial").
	Recoveries    int
	RecoveryKinds []string
	// Speculations counts straggler speculation events.
	Speculations int
	// RecoveryVolume is the number of extra A/B elements redistributed
	// to survivors (and speculation targets) so they could compute work
	// they did not originally own — the communication overhead of
	// recovery. Already-held fragments are not re-sent.
	RecoveryVolume int64
	// RemainderNeed is what a from-scratch redistribution of the
	// re-planned remainder would have moved (no credit for fragments the
	// survivors already held): for every survivor, the A-rows and
	// B-columns its newly assigned cells need, minus its own original
	// partition cells. RecoveryVolume ≤ RemainderNeed by construction;
	// the recovery study asserts RecoveryVolume stays under 2× this.
	RemainderNeed int64
	// RecoveryLatency is the total stall observed across loss events:
	// from each lost worker's final heartbeat to its work being
	// re-planned onto the survivors.
	RecoveryLatency time.Duration

	// IntegrityChecks counts C tiles ABFT-verified under Config.Verify.
	IntegrityChecks int
	// CorruptionsCorrected counts single-cell errors localized by the
	// row×column checksum intersection and corrected in place.
	CorruptionsCorrected int
	// BlocksRecomputed counts blocks discarded at verification
	// (uncorrectable mismatch) and re-leased to a different worker.
	BlocksRecomputed int
	// Byzantine lists workers quarantined for exceeding the mismatch
	// budget, in detection order; ByzantineRejected counts their
	// in-flight results rejected after quarantine.
	Byzantine         []partition.Proc
	ByzantineRejected int
	// InjectedCorruptions is ground truth from the fault plan: how many
	// delivered results the sim corruption fates actually corrupted
	// (committed or Byzantine-rejected; speculation losers that never
	// touched C are excluded). The integrity study's detection rate is
	// (corrected + recomputed + rejected) / injected.
	InjectedCorruptions int
	// CheckpointDropped counts resume records discarded because their
	// content checksum did not match — cells recomputed, not replayed.
	CheckpointDropped int
}

// Survivors returns how many workers were still alive at the end of the
// run (neither fail-stop lost nor quarantined as Byzantine).
func (s *Stats) Survivors() int { return partition.NumProcs - len(s.Lost) - len(s.Byzantine) }

// Multiply computes C = A·B with the matrices partitioned by g across
// three workers. A and B must be n×n with n = g.N(). It is
// MultiplyContext with a background context.
func Multiply(cfg Config, g *partition.Grid, a, b *matrix.Dense) (*matrix.Dense, *Stats, error) {
	return MultiplyContext(context.Background(), cfg, g, a, b)
}

// MultiplyContext computes C = A·B on the supervised block scheduler,
// honouring ctx: cancellation stops the supervisor and unwinds every
// worker promptly, including workers sleeping in the pacing throttle.
func MultiplyContext(ctx context.Context, cfg Config, g *partition.Grid, a, b *matrix.Dense) (*matrix.Dense, *Stats, error) {
	n := g.N()
	if a.N() != n || b.N() != n {
		return nil, nil, fmt.Errorf("exec: matrices are %d×%d, partition is %d×%d", a.N(), a.N(), n, n)
	}
	if cfg.Algorithm != model.SCB && cfg.Algorithm != model.PCB {
		return nil, nil, fmt.Errorf("exec: algorithm %v not supported (want SCB or PCB)", cfg.Algorithm)
	}
	if err := cfg.Machine.Ratio.Validate(); err != nil {
		return nil, nil, err
	}
	e, err := newEngine(ctx, cfg, g, a, b)
	if err != nil {
		return nil, nil, err
	}
	return e.run()
}

// topologyVolume is the total volume crossing the network, with the star
// topology's relay traffic counted twice.
func topologyVolume(m model.Machine, s *Stats) int64 {
	v := s.TotalVolume
	if m.Topology == model.Star {
		v += relayVolume(s)
	}
	return v
}

// relayVolume is the R↔S traffic that the star topology forwards via P.
func relayVolume(s *Stats) int64 {
	return s.PairVolume[partition.R][partition.S] + s.PairVolume[partition.S][partition.R]
}
