package exec

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/matrix"
	"repro/internal/model"
	"repro/internal/partition"
)

// stepPacket carries one pipeline step's pivot data from one worker to
// another: the sender's A cells in the pivot column and B cells in the
// pivot row that the receiver needs.
type stepPacket struct {
	step int
	aIdx []int32
	aVal []float64
	bIdx []int32
	bVal []float64
}

// MultiplyPIO computes C = A·B with the Parallel Interleaving Overlap
// algorithm (Section II, algorithm 5) executed for real: at each pivot
// step k the workers exchange the pivot column of A and pivot row of B
// cell-by-need over channels, then apply the kij update for k to their
// own region. Communication of step k+1 overlaps computation of step k
// through buffered channels, mirroring the algorithm's pipeline.
//
// The returned Stats accounts every transferred element; the total equals
// the partition's VoC exactly, and the product is bit-identical to the
// serial kij kernel.
func MultiplyPIO(cfg Config, g *partition.Grid, a, b *matrix.Dense) (*matrix.Dense, *Stats, error) {
	n := g.N()
	if a.N() != n || b.N() != n {
		return nil, nil, fmt.Errorf("exec: matrices are %d×%d, partition is %d×%d", a.N(), a.N(), n, n)
	}
	if err := cfg.Machine.Ratio.Validate(); err != nil {
		return nil, nil, err
	}

	start := time.Now()
	stats := &Stats{}

	// Per-worker local views seeded with own cells only.
	type workerState struct {
		aLocal, bLocal *matrix.Dense
		mask           []bool
		// inbox[sender] carries that sender's packets in step order; a
		// channel per sender keeps a fast peer's step-k+1 packet from
		// overtaking a slow peer's step-k packet. Capacity 2 admits the
		// pipeline's one step of lookahead without blocking.
		inbox map[partition.Proc]chan stepPacket
	}
	workers := make(map[partition.Proc]*workerState, partition.NumProcs)
	for _, p := range partition.Procs {
		inbox := make(map[partition.Proc]chan stepPacket, partition.NumProcs-1)
		for _, q := range partition.Procs {
			if q != p {
				inbox[q] = make(chan stepPacket, 2)
			}
		}
		workers[p] = &workerState{
			aLocal: matrix.New(n),
			bLocal: matrix.New(n),
			mask:   g.Mask(p),
			inbox:  inbox,
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			p := g.At(i, j)
			workers[p].aLocal.Set(i, j, a.At(i, j))
			workers[p].bLocal.Set(i, j, b.At(i, j))
		}
	}

	rowsNeeded := make(map[partition.Proc][]bool, partition.NumProcs)
	colsNeeded := make(map[partition.Proc][]bool, partition.NumProcs)
	for _, p := range partition.Procs {
		rn := make([]bool, n)
		cn := make([]bool, n)
		for i := 0; i < n; i++ {
			rn[i] = g.RowCount(i, p) > 0
			cn[i] = g.ColCount(i, p) > 0
		}
		rowsNeeded[p] = rn
		colsNeeded[p] = cn
	}

	// stepPacketFor builds w→v's packet for pivot k: w's A cells in
	// column k at rows v needs, and w's B cells in row k at columns v
	// needs.
	stepPacketFor := func(w, v partition.Proc, k int) stepPacket {
		pk := stepPacket{step: k}
		for i := 0; i < n; i++ {
			if g.At(i, k) == w && rowsNeeded[v][i] {
				pk.aIdx = append(pk.aIdx, int32(i*n+k))
				pk.aVal = append(pk.aVal, a.At(i, k))
			}
		}
		for j := 0; j < n; j++ {
			if g.At(k, j) == w && colsNeeded[v][j] {
				pk.bIdx = append(pk.bIdx, int32(k*n+j))
				pk.bVal = append(pk.bVal, b.At(k, j))
			}
		}
		return pk
	}

	c := matrix.New(n)
	var wg sync.WaitGroup
	errs := make(chan error, partition.NumProcs)
	var volMu sync.Mutex
	for _, w := range partition.Procs {
		wg.Add(1)
		go func(w partition.Proc) {
			defer wg.Done()
			ws := workers[w]
			for k := 0; k < n; k++ {
				// Send this step's pivot data to the peers.
				for _, v := range partition.Procs {
					if v == w {
						continue
					}
					pk := stepPacketFor(w, v, k)
					// Empty packets are still sent: they carry the step
					// tag that keeps the pipeline in lockstep.
					workers[v].inbox[w] <- pk
					vol := int64(len(pk.aIdx) + len(pk.bIdx))
					volMu.Lock()
					stats.PairVolume[w][v] += vol
					stats.TotalVolume += vol
					volMu.Unlock()
				}
				// Receive one packet per peer for this step.
				for _, v := range partition.Procs {
					if v == w {
						continue
					}
					pk := <-ws.inbox[v]
					if pk.step != k {
						errs <- fmt.Errorf("exec: worker %v expected step %d from %v, got %d", w, k, v, pk.step)
						return
					}
					for i, idx := range pk.aIdx {
						ws.aLocal.Data()[idx] = pk.aVal[i]
					}
					for i, idx := range pk.bIdx {
						ws.bLocal.Data()[idx] = pk.bVal[i]
					}
				}
				// Compute pivot step k on our region.
				matrix.MulMaskedStep(c, ws.aLocal, ws.bLocal, ws.mask, k)
			}
			volMu.Lock()
			stats.Flops[w] = int64(g.Count(w)) * int64(n)
			volMu.Unlock()
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}

	// Virtual timings per the Eq 9 pipeline on the measured volumes.
	snap := g.Snapshot()
	bd := model.Evaluate(model.PIO, cfg.Machine, snap)
	stats.VirtualComm = bd.Comm
	stats.VirtualComp = bd.Comp
	stats.VirtualExe = bd.Total
	stats.Wall = time.Since(start)
	return c, stats, nil
}
