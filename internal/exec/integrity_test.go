package exec

import (
	"encoding/json"
	"fmt"
	"math"
	"path/filepath"
	"testing"

	"repro/internal/journal"
	"repro/internal/matrix"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/sim"
)

// detected sums every way a corruption is caught so tests can assert
// nothing slipped through: corrected in place, discarded + recomputed,
// or rejected after its sender was quarantined.
func detected(s *Stats) int {
	return s.CorruptionsCorrected + s.BlocksRecomputed + s.ByzantineRejected
}

func TestVerifyCleanRun(t *testing.T) {
	// A fault-free run under Verify checks every tile exactly once,
	// corrects nothing, and stays bit-exact — the integrity layer must
	// never fire on honest float rounding.
	const n, bs = 48, 8
	ratio := partition.MustRatio(3, 2, 1)
	a, b := randomMatrices(n, 7)
	want := matrix.New(n)
	matrix.MulKIJ(want, a, b)
	g, err := partition.Build(partition.BlockRectangle, n, ratio)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	cfg := Config{Machine: testMachine(ratio), Algorithm: model.SCB, BlockSize: bs, Verify: true, Metrics: reg}
	c, stats, err := Multiply(cfg, g, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Equal(want) {
		t.Fatal("verified clean run differs from serial kij")
	}
	tiles := (n / bs) * (n / bs)
	if stats.IntegrityChecks != tiles {
		t.Errorf("IntegrityChecks = %d, want %d (one per tile)", stats.IntegrityChecks, tiles)
	}
	if stats.CorruptionsCorrected != 0 || stats.BlocksRecomputed != 0 || len(stats.Byzantine) != 0 {
		t.Errorf("clean run reported corruption: corrected=%d recomputed=%d byzantine=%v",
			stats.CorruptionsCorrected, stats.BlocksRecomputed, stats.Byzantine)
	}
}

func TestVerifyFlipDetectedAndCorrected(t *testing.T) {
	// A transiently flipping worker: every corruption must be detected
	// (the flip injector always perturbs far beyond tolerance) and the
	// final product must still be bit-identical to serial kij. Most
	// flips are single cells in their tile, so in-place correction must
	// actually fire.
	const n, bs = 64, 16
	ratio := partition.MustRatio(3, 2, 1)
	a, b := randomMatrices(n, 11)
	want := matrix.New(n)
	matrix.MulKIJ(want, a, b)
	g, err := partition.Build(partition.BlockRectangle, n, ratio)
	if err != nil {
		t.Fatal(err)
	}
	fp := sim.NewFaultPlan()
	if err := fp.AddWorkerFlip(partition.R, 1); err != nil {
		t.Fatal(err)
	}
	cfg := fastFailover(Config{Machine: testMachine(ratio), Algorithm: model.SCB, BlockSize: bs, Verify: true, Faults: fp})
	c, stats, err := Multiply(cfg, g, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Equal(want) {
		t.Fatal("flip-faulted product differs from serial kij")
	}
	if stats.InjectedCorruptions == 0 {
		t.Fatal("fault plan injected nothing at flip probability 1")
	}
	if stats.CorruptionsCorrected == 0 {
		t.Error("no single-cell correction fired")
	}
	if d := detected(stats); d < stats.InjectedCorruptions {
		t.Errorf("detected %d of %d injected corruptions", d, stats.InjectedCorruptions)
	}
}

func TestVerifyScaleQuarantinesByzantine(t *testing.T) {
	// A systematically scaling worker produces self-consistent garbage;
	// the supervisor's independent references must catch every block,
	// burn through the mismatch budget, quarantine the worker like a
	// lost one (replan on survivors), and still finish bit-exact.
	const n, bs = 48, 8
	ratio := partition.MustRatio(3, 2, 1)
	a, b := randomMatrices(n, 13)
	want := matrix.New(n)
	matrix.MulKIJ(want, a, b)
	g, err := partition.Build(partition.BlockRectangle, n, ratio)
	if err != nil {
		t.Fatal(err)
	}
	fp := sim.NewFaultPlan()
	if err := fp.AddWorkerScale(partition.S, 8); err != nil {
		t.Fatal(err)
	}
	// Slow the scaler down so it still holds unstarted work when the
	// mismatch budget runs out — the quarantine must then re-plan it.
	if err := fp.AddWorkerSlowdown(partition.S, 8); err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	cfg := fastFailover(Config{Machine: testMachine(ratio), Algorithm: model.SCB, BlockSize: bs, Verify: true, Faults: fp, Metrics: reg})
	c, stats, err := Multiply(cfg, g, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Equal(want) {
		t.Fatal("scale-faulted product differs from serial kij")
	}
	if len(stats.Byzantine) != 1 || stats.Byzantine[0] != partition.S {
		t.Fatalf("Byzantine = %v, want [S]", stats.Byzantine)
	}
	if stats.Survivors() != 2 {
		t.Errorf("Survivors = %d, want 2", stats.Survivors())
	}
	if stats.Recoveries == 0 || stats.RecoveryKinds[0] != "replan-2proc" {
		t.Errorf("quarantine did not trigger the survivor re-plan: %v", stats.RecoveryKinds)
	}
	if stats.BlocksRecomputed <= defaultMismatchBudget {
		t.Errorf("BlocksRecomputed = %d, want > mismatch budget %d", stats.BlocksRecomputed, defaultMismatchBudget)
	}
	if d := detected(stats); d < stats.InjectedCorruptions {
		t.Errorf("detected %d of %d injected corruptions", d, stats.InjectedCorruptions)
	}
}

func TestVerifyCorruptionOnLastOutstandingBlock(t *testing.T) {
	// BlockSize ≥ n makes the whole matrix one tile whose verification
	// fires on the very last committed block — the path where detection,
	// localization, correction and run completion all collapse into the
	// final commit.
	const n = 24
	ratio := partition.MustRatio(3, 2, 1)
	a, b := randomMatrices(n, 17)
	want := matrix.New(n)
	matrix.MulKIJ(want, a, b)
	g, err := partition.Build(partition.BlockRectangle, n, ratio)
	if err != nil {
		t.Fatal(err)
	}
	fp := sim.NewFaultPlan()
	if err := fp.AddWorkerFlip(partition.P, 1); err != nil {
		t.Fatal(err)
	}
	cfg := fastFailover(Config{Machine: testMachine(ratio), Algorithm: model.SCB, BlockSize: n, Verify: true, Faults: fp})
	c, stats, err := Multiply(cfg, g, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Equal(want) {
		t.Fatal("single-tile flip run differs from serial kij")
	}
	if stats.IntegrityChecks == 0 {
		t.Fatal("single tile never verified")
	}
	if stats.InjectedCorruptions != 1 {
		t.Fatalf("InjectedCorruptions = %d, want 1 (P owns one block of the single tile)", stats.InjectedCorruptions)
	}
	if stats.CorruptionsCorrected != 1 {
		t.Errorf("CorruptionsCorrected = %d, want 1 (single cell, localized)", stats.CorruptionsCorrected)
	}
}

func TestVerifyKillFlipMatrix(t *testing.T) {
	// Corruption racing fail-stop loss, in both directions: a flipping
	// worker with a concurrent kill (corruption during an active lease,
	// then the lease re-plan), and a kill racing a scaling worker's
	// quarantine. Run under -race, this is the engine's concurrency
	// drill for the integrity path.
	const n, bs = 48, 8
	ratio := partition.MustRatio(3, 2, 1)
	a, b := randomMatrices(n, 19)
	want := matrix.New(n)
	matrix.MulKIJ(want, a, b)
	g, err := partition.Build(partition.BlockRectangle, n, ratio)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		spec string
	}{
		{"flip-and-kill-same-worker", "flip:R@1,kill:R@0.5"},
		{"flip-survivor-of-kill", "flip:P@0.5,kill:R@0.3"},
		{"scale-with-kill-elsewhere", "scale:S@8,kill:R@0.6"},
		{"flip-everyone-viable", "flip:P@0.3,flip:R@0.3,flip:S@0.3"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fp, err := sim.ParseWorkerFaults(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			cfg := fastFailover(Config{Machine: testMachine(ratio), Algorithm: model.SCB, BlockSize: bs, Verify: true, Faults: fp})
			c, stats, err := Multiply(cfg, g, a, b)
			if err != nil {
				t.Fatal(err)
			}
			if !c.Equal(want) {
				t.Fatalf("%s: product differs from serial kij", tc.spec)
			}
			if d := detected(stats); d < stats.InjectedCorruptions {
				t.Errorf("%s: detected %d of %d injected corruptions", tc.spec, d, stats.InjectedCorruptions)
			}
		})
	}
}

func TestVerifyQuarantineRacesHeartbeatMiss(t *testing.T) {
	// A worker that both scales its results and hangs: the mismatch
	// budget and the lease expiry race to evict it. Whichever wins, the
	// worker must be evicted exactly once (Lost and Byzantine are
	// mutually exclusive) and the run must stay bit-exact.
	const n, bs = 48, 8
	ratio := partition.MustRatio(3, 2, 1)
	a, b := randomMatrices(n, 23)
	want := matrix.New(n)
	matrix.MulKIJ(want, a, b)
	g, err := partition.Build(partition.BlockRectangle, n, ratio)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := sim.ParseWorkerFaults("scale:S@8,hang:S@0.6")
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastFailover(Config{Machine: testMachine(ratio), Algorithm: model.SCB, BlockSize: bs, Verify: true, Faults: fp})
	c, stats, err := Multiply(cfg, g, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Equal(want) {
		t.Fatal("scale+hang product differs from serial kij")
	}
	evictions := 0
	for _, p := range stats.Lost {
		if p == partition.S {
			evictions++
		}
	}
	for _, p := range stats.Byzantine {
		if p == partition.S {
			evictions++
		}
	}
	if evictions != 1 {
		t.Fatalf("S evicted %d times (Lost=%v Byzantine=%v), want exactly once", evictions, stats.Lost, stats.Byzantine)
	}
	if stats.Survivors() != 2 {
		t.Errorf("Survivors = %d, want 2", stats.Survivors())
	}
}

func TestVerifyCheckpointHoldsOnlyVerifiedBlocks(t *testing.T) {
	// Under Verify, journal appends are deferred to tile verification:
	// even with a worker flipping bits the whole run, every record in
	// the checkpoint must carry a valid content checksum and replay to
	// serial-exact values on resume.
	const n, bs = 32, 8
	ratio := partition.MustRatio(3, 2, 1)
	a, b := randomMatrices(n, 29)
	want := matrix.New(n)
	matrix.MulKIJ(want, a, b)
	g, err := partition.Build(partition.BlockRectangle, n, ratio)
	if err != nil {
		t.Fatal(err)
	}
	fp := sim.NewFaultPlan()
	if err := fp.AddWorkerFlip(partition.R, 1); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "verified.ckpt")
	cfg := fastFailover(Config{Machine: testMachine(ratio), Algorithm: model.SCB, BlockSize: bs,
		Verify: true, Faults: fp, Checkpoint: path})
	if _, _, err := Multiply(cfg, g, a, b); err != nil {
		t.Fatal(err)
	}
	_, rawRecs, err := journal.RecoverRaw(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, _, dropped, err := decodeCkptRecords(n, rawRecs)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 {
		t.Fatalf("%d records with bad checksums in a freshly written journal", dropped)
	}
	for _, r := range recs {
		for i, idx := range r.Cells {
			if r.Vals[i] != want.Data()[idx] {
				t.Fatalf("journal holds unverified value %v at cell %d (serial %v)", r.Vals[i], idx, want.Data()[idx])
			}
		}
	}
	// A clean resume replays everything without recomputation.
	rcfg := cfg
	rcfg.Faults = nil
	rcfg.Resume = true
	c, rs, err := Multiply(rcfg, g, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Equal(want) {
		t.Fatal("resume from verified checkpoint differs from serial kij")
	}
	if rs.BlocksDone != 0 {
		t.Errorf("resume recomputed %d blocks, want 0", rs.BlocksDone)
	}
}

func TestCheckpointCorruptRecordRecomputedNotReplayed(t *testing.T) {
	// The resume integrity guarantee: a journal record whose content was
	// silently corrupted (valid CRC framing, stale result checksum) is
	// dropped and its cells recomputed — never replayed into C.
	const n, bs = 32, 8
	ratio := partition.MustRatio(3, 2, 1)
	a, b := randomMatrices(n, 31)
	want := matrix.New(n)
	matrix.MulKIJ(want, a, b)
	g, err := partition.Build(partition.BlockRectangle, n, ratio)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tampered.ckpt")
	cfg := Config{Machine: testMachine(ratio), Algorithm: model.SCB, BlockSize: bs, Checkpoint: path}
	_, stats, err := Multiply(cfg, g, a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the journal with one record's values corrupted but its
	// original Sum kept — a silent post-write corruption that the CRC
	// framing alone cannot catch because the frame is rewritten whole.
	rawHdr, rawRecs, err := journal.RecoverRaw(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, _, _, err := decodeCkptRecords(n, rawRecs)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != stats.BlocksDone {
		t.Fatalf("journal has %d records, run committed %d", len(recs), stats.BlocksDone)
	}
	victim := recs[len(recs)/2]
	w, err := journal.CreateRaw(path+".rebuilt", json.RawMessage(rawHdr))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Block == victim.Block {
			r.Vals = append([]float64(nil), r.Vals...)
			// Flip a mantissa bit (value stays finite and JSON-encodable);
			// r.Sum still describes the original values.
			r.Vals[0] = math.Float64frombits(math.Float64bits(r.Vals[0]) ^ 1<<51)
		}
		if err := w.AppendPayload(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rcfg := cfg
	rcfg.Checkpoint = path + ".rebuilt"
	rcfg.Resume = true
	rcfg.Verify = true
	c, rs, err := Multiply(rcfg, g, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if rs.CheckpointDropped != 1 {
		t.Fatalf("CheckpointDropped = %d, want 1", rs.CheckpointDropped)
	}
	if rs.BlocksResumed != len(recs)-1 {
		t.Errorf("BlocksResumed = %d, want %d", rs.BlocksResumed, len(recs)-1)
	}
	if rs.BlocksDone == 0 {
		t.Error("dropped record's cells were not recomputed")
	}
	if !c.Equal(want) {
		t.Fatal("resume after tampered record differs from serial kij")
	}
}

func TestVerifyFlipRatesStayBitExact(t *testing.T) {
	// The acceptance sweep in miniature: flip rates up to 10% of blocks
	// (and beyond) on every worker, PCB included — C must match serial
	// kij bit for bit in every run, and the detection accounting must
	// cover every delivered corruption.
	const n, bs = 48, 8
	ratio := partition.MustRatio(3, 2, 1)
	a, b := randomMatrices(n, 37)
	want := matrix.New(n)
	matrix.MulKIJ(want, a, b)
	g, err := partition.Build(partition.BlockRectangle, n, ratio)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []model.Algorithm{model.SCB, model.PCB} {
		for _, rate := range []float64{0.05, 0.1, 0.5} {
			t.Run(fmt.Sprintf("%v-%g", alg, rate), func(t *testing.T) {
				fp := sim.NewFaultPlan()
				for _, p := range partition.Procs {
					if err := fp.AddWorkerFlip(p, rate); err != nil {
						t.Fatal(err)
					}
				}
				cfg := fastFailover(Config{Machine: testMachine(ratio), Algorithm: alg, BlockSize: bs, Verify: true, Faults: fp})
				c, stats, err := Multiply(cfg, g, a, b)
				if err != nil {
					t.Fatal(err)
				}
				if !c.Equal(want) {
					t.Fatalf("%v flip@%g differs from serial kij", alg, rate)
				}
				if d := detected(stats); d < stats.InjectedCorruptions {
					t.Errorf("%v flip@%g: detected %d of %d", alg, rate, d, stats.InjectedCorruptions)
				}
			})
		}
	}
}
