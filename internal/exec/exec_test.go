package exec

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/matrix"
	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/push"
)

func testMachine(ratio partition.Ratio) model.Machine {
	return model.DefaultMachine(ratio)
}

func randomMatrices(n int, seed int64) (*matrix.Dense, *matrix.Dense) {
	rng := rand.New(rand.NewSource(seed))
	a := matrix.New(n)
	b := matrix.New(n)
	a.FillRandom(rng)
	b.FillRandom(rng)
	return a, b
}

func TestMultiplyCanonicalShapesBitExact(t *testing.T) {
	// Every canonical shape yields a product bit-identical to the serial
	// kij kernel — non-rectangular partitions included.
	const n = 48
	ratio := partition.MustRatio(5, 2, 1)
	a, b := randomMatrices(n, 1)
	want := matrix.New(n)
	matrix.MulKIJ(want, a, b)
	for _, s := range partition.AllShapes {
		g, err := partition.Build(s, n, ratio)
		if err != nil {
			continue
		}
		c, stats, err := Multiply(Config{Machine: testMachine(ratio), Algorithm: model.SCB}, g, a, b)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !c.Equal(want) {
			d, _ := c.MaxDiff(want)
			t.Errorf("%v: product differs from serial kij (max diff %g)", s, d)
		}
		if stats.TotalVolume != g.VoC() {
			t.Errorf("%v: measured volume %d != VoC %d", s, stats.TotalVolume, g.VoC())
		}
	}
}

func TestMultiplyArbitraryPartitionBitExact(t *testing.T) {
	// A raw random non-shape must also compute correctly.
	const n = 40
	ratio := partition.MustRatio(3, 2, 1)
	rng := rand.New(rand.NewSource(7))
	g := partition.NewRandom(n, ratio, rng)
	a, b := randomMatrices(n, 2)
	want := matrix.New(n)
	matrix.MulKIJ(want, a, b)
	c, stats, err := Multiply(Config{Machine: testMachine(ratio), Algorithm: model.PCB}, g, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Equal(want) {
		t.Error("random-partition product differs from serial kij")
	}
	if stats.TotalVolume != g.VoC() {
		t.Errorf("measured volume %d != VoC %d", stats.TotalVolume, g.VoC())
	}
}

func TestMultiplyDFATerminalState(t *testing.T) {
	// End to end: a condensed partition from the Push search executes
	// correctly and cheaper than its random start.
	const n = 40
	ratio := partition.MustRatio(2, 1, 1)
	res, err := push.Run(push.Config{N: n, Ratio: ratio, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	a, b := randomMatrices(n, 3)
	want := matrix.New(n)
	matrix.MulKIJ(want, a, b)

	cfg := Config{Machine: testMachine(ratio), Algorithm: model.SCB}
	cEnd, statsEnd, err := Multiply(cfg, res.Final, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !cEnd.Equal(want) {
		t.Error("condensed-partition product wrong")
	}
	rng := rand.New(rand.NewSource(3))
	start := partition.NewRandom(n, ratio, rng)
	_, statsStart, err := Multiply(cfg, start, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if statsEnd.TotalVolume >= statsStart.TotalVolume {
		t.Errorf("condensed partition should move less data: %d vs %d",
			statsEnd.TotalVolume, statsStart.TotalVolume)
	}
	if statsEnd.VirtualComm >= statsStart.VirtualComm {
		t.Error("condensed partition should have lower virtual comm time")
	}
}

func TestMultiplyVirtualTimesMatchModel(t *testing.T) {
	const n = 60
	ratio := partition.MustRatio(4, 2, 1)
	g, err := partition.Build(partition.BlockRectangle, n, ratio)
	if err != nil {
		t.Fatal(err)
	}
	a, b := randomMatrices(n, 4)
	m := testMachine(ratio)
	for _, alg := range []model.Algorithm{model.SCB, model.PCB} {
		_, stats, err := Multiply(Config{Machine: m, Algorithm: alg}, g, a, b)
		if err != nil {
			t.Fatal(err)
		}
		want := model.EvaluateGrid(alg, m, g)
		if rel := math.Abs(stats.VirtualComm-want.Comm) / math.Max(want.Comm, 1e-30); rel > 1e-9 {
			t.Errorf("%v: virtual comm %g vs model %g", alg, stats.VirtualComm, want.Comm)
		}
		if rel := math.Abs(stats.VirtualComp-want.Comp) / want.Comp; rel > 1e-9 {
			t.Errorf("%v: virtual comp %g vs model %g", alg, stats.VirtualComp, want.Comp)
		}
		if rel := math.Abs(stats.VirtualExe-want.Total) / want.Total; rel > 1e-9 {
			t.Errorf("%v: virtual exe %g vs model %g", alg, stats.VirtualExe, want.Total)
		}
	}
}

func TestMultiplyStarVolume(t *testing.T) {
	const n = 40
	ratio := partition.MustRatio(4, 2, 1)
	g, err := partition.Build(partition.BlockRectangle, n, ratio)
	if err != nil {
		t.Fatal(err)
	}
	a, b := randomMatrices(n, 5)
	full := testMachine(ratio)
	star := full
	star.Topology = model.Star
	_, fs, err := Multiply(Config{Machine: full, Algorithm: model.SCB}, g, a, b)
	if err != nil {
		t.Fatal(err)
	}
	_, ss, err := Multiply(Config{Machine: star, Algorithm: model.SCB}, g, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if ss.VirtualComm <= fs.VirtualComm {
		t.Error("star topology should cost more comm time for R↔S-adjacent shapes")
	}
}

func TestMultiplyPacedRun(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	const n = 32
	ratio := partition.MustRatio(2, 1, 1)
	g, err := partition.Build(partition.BlockRectangle, n, ratio)
	if err != nil {
		t.Fatal(err)
	}
	a, b := randomMatrices(n, 6)
	want := matrix.New(n)
	matrix.MulKIJ(want, a, b)
	// Slowest worker: n³/T flops at 2e6 flops/s ≈ 6.5k/2e6... keep small.
	c, stats, err := Multiply(Config{
		Machine:         testMachine(ratio),
		Algorithm:       model.SCB,
		Pace:            true,
		PaceFlopsPerSec: 2e5,
	}, g, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Equal(want) {
		t.Error("paced product wrong")
	}
	// S computes ∈S·n = (n²/4)·n = 8192 ops at 2e5/s ≈ 41ms minimum.
	if stats.Wall.Seconds() < 0.02 {
		t.Errorf("paced run finished implausibly fast: %v", stats.Wall)
	}
}

func TestMultiplyArgumentValidation(t *testing.T) {
	ratio := partition.MustRatio(2, 1, 1)
	g := partition.NewGrid(8)
	a, b := randomMatrices(8, 7)
	if _, _, err := Multiply(Config{Machine: testMachine(ratio), Algorithm: model.PIO}, g, a, b); err == nil {
		t.Error("PIO should be rejected")
	}
	small, _ := randomMatrices(4, 7)
	if _, _, err := Multiply(Config{Machine: testMachine(ratio), Algorithm: model.SCB}, g, small, b); err == nil {
		t.Error("dimension mismatch should error")
	}
	if _, _, err := Multiply(Config{Algorithm: model.SCB}, g, a, b); err == nil {
		t.Error("invalid machine ratio should error")
	}
}

func TestMultiplySingleProcessorNoComm(t *testing.T) {
	const n = 16
	ratio := partition.MustRatio(2, 1, 1)
	g := partition.NewGrid(n) // everything on P
	a, b := randomMatrices(n, 8)
	want := matrix.New(n)
	matrix.MulKIJ(want, a, b)
	c, stats, err := Multiply(Config{Machine: testMachine(ratio), Algorithm: model.SCB}, g, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Equal(want) {
		t.Error("single-processor product wrong")
	}
	if stats.TotalVolume != 0 || stats.VirtualComm != 0 {
		t.Errorf("no communication expected: vol=%d comm=%g", stats.TotalVolume, stats.VirtualComm)
	}
}

func BenchmarkMultiplySCB(b *testing.B) {
	const n = 96
	ratio := partition.MustRatio(5, 2, 1)
	g, err := partition.Build(partition.SquareCorner, n, ratio)
	if err != nil {
		b.Fatal(err)
	}
	x, y := randomMatrices(n, 1)
	cfg := Config{Machine: testMachine(ratio), Algorithm: model.SCB}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Multiply(cfg, g, x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMultiplyPIOBitExact(t *testing.T) {
	// The interleaved pipeline must produce the serial kij product
	// bit-exactly for every canonical shape and move exactly VoC elements.
	const n = 40
	ratio := partition.MustRatio(5, 2, 1)
	a, b := randomMatrices(n, 9)
	want := matrix.New(n)
	matrix.MulKIJ(want, a, b)
	for _, s := range partition.AllShapes {
		g, err := partition.Build(s, n, ratio)
		if err != nil {
			continue
		}
		c, stats, err := MultiplyPIO(Config{Machine: testMachine(ratio), Algorithm: model.PIO}, g, a, b)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !c.Equal(want) {
			t.Errorf("%v: PIO product differs from serial kij", s)
		}
		if stats.TotalVolume != g.VoC() {
			t.Errorf("%v: PIO moved %d elements, VoC is %d", s, stats.TotalVolume, g.VoC())
		}
	}
}

func TestMultiplyPIORandomPartition(t *testing.T) {
	const n = 32
	ratio := partition.MustRatio(3, 2, 1)
	rng := rand.New(rand.NewSource(11))
	g := partition.NewRandom(n, ratio, rng)
	a, b := randomMatrices(n, 12)
	want := matrix.New(n)
	matrix.MulKIJ(want, a, b)
	c, stats, err := MultiplyPIO(Config{Machine: testMachine(ratio)}, g, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Equal(want) {
		t.Error("PIO product wrong on a random non-shape")
	}
	if stats.TotalVolume != g.VoC() {
		t.Errorf("volume %d != VoC %d", stats.TotalVolume, g.VoC())
	}
	if stats.VirtualExe <= 0 {
		t.Error("virtual timing missing")
	}
}

func TestMultiplyPIOValidation(t *testing.T) {
	g := partition.NewGrid(8)
	a, b := randomMatrices(4, 1)
	if _, _, err := MultiplyPIO(Config{Machine: testMachine(partition.MustRatio(2, 1, 1))}, g, a, b); err == nil {
		t.Error("dimension mismatch should error")
	}
	a8, b8 := randomMatrices(8, 1)
	if _, _, err := MultiplyPIO(Config{}, g, a8, b8); err == nil {
		t.Error("invalid ratio should error")
	}
}

func TestMultiplyPIOAgreesWithBarrierVolumes(t *testing.T) {
	// PIO and SCB move the same total volume — just on different
	// schedules.
	const n = 36
	ratio := partition.MustRatio(4, 2, 1)
	g, err := partition.Build(partition.LRectangle, n, ratio)
	if err != nil {
		t.Fatal(err)
	}
	a, b := randomMatrices(n, 13)
	_, scb, err := Multiply(Config{Machine: testMachine(ratio), Algorithm: model.SCB}, g, a, b)
	if err != nil {
		t.Fatal(err)
	}
	_, pio, err := MultiplyPIO(Config{Machine: testMachine(ratio)}, g, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if scb.TotalVolume != pio.TotalVolume {
		t.Errorf("SCB moved %d, PIO moved %d", scb.TotalVolume, pio.TotalVolume)
	}
	if scb.PairVolume != pio.PairVolume {
		t.Errorf("pair volumes differ:\nSCB %v\nPIO %v", scb.PairVolume, pio.PairVolume)
	}
}

func TestMultiplyOverlapBitExact(t *testing.T) {
	const n = 44
	ratio := partition.MustRatio(5, 2, 1)
	a, b := randomMatrices(n, 15)
	want := matrix.New(n)
	matrix.MulKIJ(want, a, b)
	for _, alg := range []model.Algorithm{model.SCO, model.PCO} {
		for _, s := range partition.AllShapes {
			g, err := partition.Build(s, n, ratio)
			if err != nil {
				continue
			}
			c, stats, err := MultiplyOverlap(Config{Machine: testMachine(ratio), Algorithm: alg}, g, a, b)
			if err != nil {
				t.Fatalf("%v %v: %v", alg, s, err)
			}
			if !c.Equal(want) {
				t.Errorf("%v %v: overlap product differs from serial kij", alg, s)
			}
			if stats.TotalVolume != g.VoC() {
				t.Errorf("%v %v: moved %d, VoC %d", alg, s, stats.TotalVolume, g.VoC())
			}
		}
	}
}

func TestMultiplyOverlapPartitionsWork(t *testing.T) {
	// The overlap and remainder masks partition the worker's cells: with
	// an all-P grid everything is overlap and no traffic flows.
	const n = 20
	ratio := partition.MustRatio(2, 1, 1)
	g := partition.NewGrid(n)
	a, b := randomMatrices(n, 16)
	want := matrix.New(n)
	matrix.MulKIJ(want, a, b)
	c, stats, err := MultiplyOverlap(Config{Machine: testMachine(ratio), Algorithm: model.SCO}, g, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Equal(want) {
		t.Error("all-P overlap product wrong")
	}
	if stats.TotalVolume != 0 {
		t.Error("no traffic expected")
	}
}

func TestMultiplyOverlapValidation(t *testing.T) {
	g := partition.NewGrid(8)
	a, b := randomMatrices(8, 17)
	if _, _, err := MultiplyOverlap(Config{Machine: testMachine(partition.MustRatio(2, 1, 1)), Algorithm: model.SCB}, g, a, b); err == nil {
		t.Error("SCB must be rejected by the overlap executor")
	}
	small, _ := randomMatrices(4, 17)
	if _, _, err := MultiplyOverlap(Config{Machine: testMachine(partition.MustRatio(2, 1, 1)), Algorithm: model.SCO}, g, small, b); err == nil {
		t.Error("dimension mismatch must be rejected")
	}
	if _, _, err := MultiplyOverlap(Config{Algorithm: model.SCO}, g, a, b); err == nil {
		t.Error("invalid ratio must be rejected")
	}
}

func TestMultiplyOverlapVirtualMatchesModel(t *testing.T) {
	const n = 60
	ratio := partition.MustRatio(10, 1, 1)
	g, err := partition.Build(partition.SquareCorner, n, ratio)
	if err != nil {
		t.Fatal(err)
	}
	a, b := randomMatrices(n, 18)
	m := testMachine(ratio)
	_, stats, err := MultiplyOverlap(Config{Machine: m, Algorithm: model.PCO}, g, a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := model.EvaluateGrid(model.PCO, m, g)
	if stats.VirtualExe != want.Total {
		t.Errorf("virtual exe %g vs model %g", stats.VirtualExe, want.Total)
	}
}
