package exec

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/partition"
)

// ABFT result verification (Huang–Abraham, adapted to the supervised
// block scheduler). The key identity: for a C tile spanning rows
// [r0, r1) and columns [c0, c1),
//
//	Σ_{j∈[c0,c1)} C[i][j] = Σ_k A[i][k] · (Σ_{j∈[c0,c1)} B[k][j])
//
// so with the per-tile-band column sums of B precomputed once (bband),
// the supervisor can check every row of a completed tile against a
// reference it derives from its own pristine A and B in O(n) per row —
// O(n·bs) per tile, an ~1/BlockSize fraction of the tile's 2n·bs²
// compute flops. The symmetric column identity (aband, built lazily —
// only suspect tiles pay for it) localizes a single corrupted cell as
// the intersection of the failing row and failing column; that cell is
// then recomputed *exactly* (same ascending-k order as the kij kernel),
// so correction preserves the engine's bit-exactness guarantee.
//
// Crucially the references never involve worker-computed data: a
// systematically wrong worker (sim.FateScale) produces blocks that are
// self-consistent with any checksum the worker itself could have
// attached, but not with the supervisor's independent bands.
//
// Verification is tile-grained, not block-grained, because a partition
// owner's cells inside a tile form an arbitrary (ragged) subset with no
// checksum identity of its own; the enclosing tile is always a full
// rectangle. Each committed block therefore parks as a "contribution"
// until its tile is complete, and with checkpointing enabled the
// journal append is deferred to tile verification, so the checkpoint
// never contains a block that was not verified.

// defaultMismatchBudget is how many uncorrectable mismatches a worker
// may cause before it is declared Byzantine and quarantined.
const defaultMismatchBudget = 3

// relTol is the relative checksum tolerance: a row (column) sum is
// suspect when it differs from the reference by more than relTol times
// an upper bound on the sum's absolute magnitude. Real kij rounding
// noise is O(n·ε) ≈ 1e-14 of that magnitude at the sizes this engine
// runs, several orders below relTol, while the injected faults (an
// exponent-bit flip, a constant scale factor) overshoot it by many more.
const relTol = 1e-9

// tileContrib is one committed block's freshly written cells inside a
// tile, remembered until the tile verifies so a mismatch can be
// attributed to (and charged against) the worker that computed it.
type tileContrib struct {
	from  partition.Proc
	cells []int32
}

// tileState tracks one BlockSize×BlockSize C tile through verification.
type tileState struct {
	r0, c0, r1, c1 int
	remaining      int // undone cells; 0 triggers verification
	verified       bool
	contrib        map[int]*tileContrib // by block id
}

// integrity is the engine's ABFT layer. It lives entirely on the
// supervisor goroutine: workers never see checksums, so they cannot
// forge them.
type integrity struct {
	e     *engine
	bs    int
	tpr   int // tiles per row
	tiles []*tileState

	// bband[tc][k] = Σ_{j in column band tc} B[k][j]; bbandAbs the same
	// over |B|, with bbandAbsMax[tc] its max over k (for the tolerance
	// bound). Precomputed once, O(n²).
	bband       [][]float64
	bbandAbsMax []float64
	// rowAbsA[i] = Σ_k |A[i][k]|, for the row-tolerance bound.
	rowAbsA []float64

	// aband[tr][k] = Σ_{i in row band tr} A[i][k]; built lazily per row
	// band, because only suspect tiles need column localization.
	aband       map[int][]float64
	abandAbsMax map[int]float64
	// colAbsB[j] = Σ_k |B[k][j]|, built lazily with the first aband.
	colAbsB []float64

	strikes map[partition.Proc]int
	budget  int
}

// newIntegrity builds the tile table and the B-side reference bands.
// Called after checkpoint replay: a tile fully restored from the
// journal was verified before it was flushed (records are appended only
// on tile verification) and its records passed the per-record checksum,
// so it is trusted; partially restored tiles are re-verified whole once
// their remaining cells are computed.
func newIntegrity(e *engine) *integrity {
	n, bs := e.n, e.cfg.BlockSize
	tpr := (n + bs - 1) / bs
	in := &integrity{
		e:           e,
		bs:          bs,
		tpr:         tpr,
		tiles:       make([]*tileState, tpr*tpr),
		bband:       make([][]float64, tpr),
		bbandAbsMax: make([]float64, tpr),
		rowAbsA:     make([]float64, n),
		aband:       make(map[int][]float64),
		abandAbsMax: make(map[int]float64),
		strikes:     make(map[partition.Proc]int),
		budget:      e.cfg.MismatchBudget,
	}
	if in.budget <= 0 {
		in.budget = defaultMismatchBudget
	}
	for ti := range in.tiles {
		r0, c0 := (ti/tpr)*bs, (ti%tpr)*bs
		ts := &tileState{
			r0: r0, c0: c0,
			r1: min(r0+bs, n), c1: min(c0+bs, n),
			contrib: make(map[int]*tileContrib),
		}
		for i := ts.r0; i < ts.r1; i++ {
			for j := ts.c0; j < ts.c1; j++ {
				if !e.doneMask[i*n+j] {
					ts.remaining++
				}
			}
		}
		ts.verified = ts.remaining == 0
		in.tiles[ti] = ts
	}
	ad, bd := e.a.Data(), e.b.Data()
	for i := 0; i < n; i++ {
		s := 0.0
		for k := 0; k < n; k++ {
			s += math.Abs(ad[i*n+k])
		}
		in.rowAbsA[i] = s
	}
	for tc := 0; tc < tpr; tc++ {
		c0, c1 := tc*bs, min(tc*bs+bs, n)
		band := make([]float64, n)
		maxAbs := 0.0
		for k := 0; k < n; k++ {
			s, sa := 0.0, 0.0
			row := bd[k*n : (k+1)*n]
			for j := c0; j < c1; j++ {
				s += row[j]
				sa += math.Abs(row[j])
			}
			band[k] = s
			if sa > maxAbs {
				maxAbs = sa
			}
		}
		in.bband[tc] = band
		in.bbandAbsMax[tc] = maxAbs
	}
	return in
}

func (in *integrity) tileOf(idx int32) int {
	n, bs := in.e.n, in.bs
	i, j := int(idx)/n, int(idx)%n
	return (i/bs)*in.tpr + j/bs
}

// blockCommitted records a committed block's fresh cells against its
// tile and verifies the tile once its last cell lands. When the block
// is an integrity re-lease, the recompute is first compared against the
// discarded values; a difference means at least one of the two parties
// is wrong, so the supervisor settles it by computing the first
// differing cell itself (O(n), and exact — same ascending-k order as
// the workers) and strikes whichever side disagrees with the truth.
// Disagreement alone convicts nobody: a corrupt recomputer must not be
// able to frame the honest worker whose block it re-leased.
func (in *integrity) blockCommitted(r blockResult, fresh []int32) error {
	if r.task.prior != nil {
		for i := range r.task.cells {
			if r.vals[i] != r.task.prior[i] &&
				!(math.IsNaN(r.vals[i]) && math.IsNaN(r.task.prior[i])) {
				truth := in.trueCell(r.task.cells[i])
				if pv := r.task.prior[i]; pv != truth {
					if err := in.strike(r.task.priorFrom); err != nil {
						return err
					}
				}
				if r.vals[i] != truth {
					if err := in.strike(r.from); err != nil {
						return err
					}
				}
				break
			}
		}
	}
	ts := in.tiles[in.tileOf(fresh[0])]
	ts.contrib[r.task.id] = &tileContrib{from: r.from, cells: fresh}
	ts.remaining -= len(fresh)
	if ts.remaining > 0 {
		return nil
	}
	return in.verifyTile(ts)
}

// strike charges worker w one uncorrectable mismatch; past the budget
// it is quarantined as Byzantine — unless it is the last worker
// standing, where eviction would end the run with work unfinished. A
// sole survivor that keeps mismatching far past the budget is a hard
// error: there is no honest worker left to produce a correct product.
func (in *integrity) strike(w partition.Proc) error {
	in.strikes[w]++
	e := in.e
	if in.strikes[w] <= in.budget || !e.alive[w] {
		return nil
	}
	if len(e.survivorsBySpeed()) > 1 {
		e.em.corruption("quarantined")
		return e.evict(w, time.Now(), true)
	}
	if in.strikes[w] > 10*in.budget {
		return fmt.Errorf("exec: sole surviving worker %v exceeded the mismatch budget (%d uncorrectable mismatches)", w, in.strikes[w])
	}
	return nil
}

// checkRows returns the tile rows whose C sums disagree with the
// A·bband reference beyond tolerance.
func (in *integrity) checkRows(ts *tileState) []int {
	e := in.e
	n := e.n
	tc := ts.c0 / in.bs
	band := in.bband[tc]
	cd, ad := e.c.Data(), e.a.Data()
	var bad []int
	for i := ts.r0; i < ts.r1; i++ {
		sum := 0.0
		for j := ts.c0; j < ts.c1; j++ {
			sum += cd[i*n+j]
		}
		ref := 0.0
		arow := ad[i*n : (i+1)*n]
		for k := 0; k < n; k++ {
			ref += arow[k] * band[k]
		}
		tol := relTol * in.rowAbsA[i] * in.bbandAbsMax[tc]
		// NaN compares false against everything: a corrupted cell that
		// went non-finite must still read as suspect.
		if d := math.Abs(sum - ref); d > tol || math.IsNaN(d) {
			bad = append(bad, i)
		}
	}
	return bad
}

// checkCols is the column-side localizer, paid only by suspect tiles.
func (in *integrity) checkCols(ts *tileState) []int {
	e := in.e
	n := e.n
	tr := ts.r0 / in.bs
	band, ok := in.aband[tr]
	if !ok {
		band = make([]float64, n)
		maxAbs := 0.0
		ad := e.a.Data()
		for k := 0; k < n; k++ {
			s, sa := 0.0, 0.0
			for i := ts.r0; i < ts.r1; i++ {
				s += ad[i*n+k]
				sa += math.Abs(ad[i*n+k])
			}
			band[k] = s
			if sa > maxAbs {
				maxAbs = sa
			}
		}
		in.aband[tr] = band
		in.abandAbsMax[tr] = maxAbs
	}
	if in.colAbsB == nil {
		bd := e.b.Data()
		in.colAbsB = make([]float64, n)
		for k := 0; k < n; k++ {
			for j := 0; j < n; j++ {
				in.colAbsB[j] += math.Abs(bd[k*n+j])
			}
		}
	}
	cd, bd := e.c.Data(), e.b.Data()
	var bad []int
	for j := ts.c0; j < ts.c1; j++ {
		sum := 0.0
		for i := ts.r0; i < ts.r1; i++ {
			sum += cd[i*n+j]
		}
		ref := 0.0
		for k := 0; k < n; k++ {
			ref += band[k] * bd[k*n+j]
		}
		tol := relTol * in.colAbsB[j] * in.abandAbsMax[ts.r0/in.bs]
		if d := math.Abs(sum - ref); d > tol || math.IsNaN(d) {
			bad = append(bad, j)
		}
	}
	return bad
}

// verifyTile checks a completed tile, correcting a localized single
// cell in place or discarding and re-leasing the mismatching blocks.
func (in *integrity) verifyTile(ts *tileState) error {
	e := in.e
	e.stats.IntegrityChecks++
	e.em.integrityCheck()

	badRows := in.checkRows(ts)
	if len(badRows) == 0 {
		return in.pass(ts)
	}
	badCols := in.checkCols(ts)
	if len(badRows) == 1 && len(badCols) == 1 {
		// A single suspect cell: recompute it exactly from the
		// supervisor's pristine A/B (same ascending-k order as the kij
		// kernel, so the corrected value is bit-identical to serial).
		in.correctCell(badRows[0], badCols[0])
		if badRows = in.checkRows(ts); len(badRows) == 0 {
			e.stats.CorruptionsCorrected++
			e.em.corruption("corrected")
			return in.pass(ts)
		}
		badCols = in.checkCols(ts)
	}
	return in.discard(ts, badRows, badCols)
}

func (in *integrity) pass(ts *tileState) error {
	ts.verified = true
	err := in.flushTile(ts)
	for id := range ts.contrib {
		delete(ts.contrib, id)
	}
	return err
}

// flushTile appends the tile's verified contributions to the
// checkpoint journal (deferred from commit so the journal only ever
// holds verified blocks).
func (in *integrity) flushTile(ts *tileState) error {
	e := in.e
	if e.ckpt == nil {
		return nil
	}
	ids := make([]int, 0, len(ts.contrib))
	for id := range ts.contrib {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	cd := e.c.Data()
	for _, id := range ids {
		tc := ts.contrib[id]
		vals := make([]float64, len(tc.cells))
		for i, idx := range tc.cells {
			vals[i] = cd[idx]
		}
		if err := e.ckpt.AppendPayload(newCkptRecord(id, tc.cells, vals)); err != nil {
			return fmt.Errorf("exec: checkpoint: %w", err)
		}
	}
	return nil
}

func (in *integrity) correctCell(i, j int) {
	n := in.e.n
	in.e.c.Data()[i*n+j] = in.trueCell(int32(i*n + j))
}

// trueCell computes one C cell exactly from the supervisor's pristine
// A/B, in the same strictly ascending k order as the kij kernel and the
// workers' computeBlock, so it is bit-identical to what an honest
// worker returns.
func (in *integrity) trueCell(idx int32) float64 {
	e := in.e
	n := e.n
	i, j := int(idx)/n, int(idx)%n
	ad, bd := e.a.Data(), e.b.Data()
	s := 0.0
	arow := ad[i*n : (i+1)*n]
	for k := 0; k < n; k++ {
		s += arow[k] * bd[k*n+j]
	}
	return s
}

// discard throws away the tile's mismatching blocks: every contribution
// owning a cell at a suspect (row, column) intersection is withdrawn
// and its cells are re-leased to a different worker, carrying the
// discarded values along — the recompute either reproduces them bit for
// bit (the block was innocent, swept up by a neighbour's corruption) or
// differs, which convicts the original computer and counts toward its
// mismatch budget (see strike). Suspect cells restored from a
// checkpoint (no contribution to blame) are recomputed without
// charging anyone.
func (in *integrity) discard(ts *tileState, badRows, badCols []int) error {
	e := in.e
	n := e.n

	suspect := make(map[int32]bool)
	for _, i := range badRows {
		for _, j := range badCols {
			suspect[int32(i*n+j)] = true
		}
	}
	var discardIDs []int
	for id, tc := range ts.contrib {
		for _, idx := range tc.cells {
			if suspect[idx] {
				discardIDs = append(discardIDs, id)
				break
			}
		}
	}
	if len(discardIDs) == 0 {
		// Mismatch with no localizable intersection (corruptions
		// cancelling across lines): withdraw every contribution in the
		// tile and treat all cells of every suspect line as suspect, so
		// progress is guaranteed.
		for id := range ts.contrib {
			discardIDs = append(discardIDs, id)
		}
		for _, i := range badRows {
			for j := ts.c0; j < ts.c1; j++ {
				suspect[int32(i*n+j)] = true
			}
		}
		for _, j := range badCols {
			for i := ts.r0; i < ts.r1; i++ {
				suspect[int32(i*n+j)] = true
			}
		}
	}
	sort.Ints(discardIDs)

	cd := e.c.Data()
	covered := make(map[int32]bool)
	for _, id := range discardIDs {
		tc := ts.contrib[id]
		delete(ts.contrib, id)
		prior := make([]float64, len(tc.cells))
		for i, idx := range tc.cells {
			prior[i] = cd[idx]
			covered[idx] = true
			e.doneMask[idx] = false
			cd[idx] = 0
			e.doneCells--
			ts.remaining++
		}
		e.stats.BlocksRecomputed++
		e.em.corruption("recomputed")

		nt := &blockTask{id: e.nextID, owner: in.releaseTarget(tc.from), cells: tc.cells,
			prior: prior, priorFrom: tc.from}
		e.nextID++
		e.buildPatch(nt)
		e.pending[nt.owner] = append(e.pending[nt.owner], nt)
		e.stats.BlocksReassigned++
		e.em.block("reassigned", 1)
	}

	// Suspect cells nobody contributed (restored from a checkpoint
	// record whose journal checksum passed, so this is the cancellation
	// fallback above, not silent disk corruption): recompute them too.
	var orphans []int32
	for idx := range suspect {
		if !covered[idx] && e.doneMask[idx] {
			orphans = append(orphans, idx)
		}
	}
	if len(orphans) > 0 {
		sort.Slice(orphans, func(x, y int) bool { return orphans[x] < orphans[y] })
		for _, idx := range orphans {
			e.doneMask[idx] = false
			cd[idx] = 0
			e.doneCells--
			ts.remaining++
		}
		nt := &blockTask{id: e.nextID, owner: e.survivorsBySpeed()[0], cells: orphans}
		e.nextID++
		e.buildPatch(nt)
		e.pending[nt.owner] = append(e.pending[nt.owner], nt)
		e.stats.BlocksReassigned++
		e.em.block("reassigned", 1)
	}

	e.dispatchWaiting()
	return nil
}

// releaseTarget picks the fastest alive worker other than the offender
// to recompute a discarded block; a sole-survivor offender retries its
// own work (a transient flipper may well succeed, and a persistent one
// runs out of mismatch budget).
func (in *integrity) releaseTarget(offender partition.Proc) partition.Proc {
	s := in.e.survivorsBySpeed()
	for _, v := range s {
		if v != offender {
			return v
		}
	}
	return offender
}

// flipExponent returns v with one previously clear high exponent bit
// set (bits 58–62 of the IEEE-754 layout), which multiplies the
// magnitude by at least 2^64 — or turns 0 into 2 — so an injected flip
// is always far outside the checksum tolerance and the drill measures
// the detector, not the injector's luck. If every candidate bit is set
// the top one is cleared instead, an equally massive perturbation.
func flipExponent(v float64, rng *rand.Rand) float64 {
	bits := math.Float64bits(v)
	if v == 0 {
		return math.Float64frombits(bits | 1<<62)
	}
	var clear []uint
	for b := uint(58); b <= 62; b++ {
		if bits&(1<<b) == 0 {
			clear = append(clear, b)
		}
	}
	if len(clear) == 0 {
		return math.Float64frombits(bits &^ (1 << 62))
	}
	return math.Float64frombits(bits | 1<<clear[rng.Intn(len(clear))])
}
