package exec

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/journal"
	"repro/internal/matrix"
	"repro/internal/model"
	"repro/internal/partition"
)

// FuzzCheckpointDecode hardens the checkpoint resume path the way the
// journal fuzz hardens the framing: arbitrary file bytes must either be
// rejected with an error or decode into records that replay
// deterministically — never panic, never index out of bounds, and
// duplicate block records must resolve last-write-wins.
func FuzzCheckpointDecode(f *testing.F) {
	// Seed with a well-formed checkpoint plus its classic failure modes.
	dir := f.TempDir()
	seed := filepath.Join(dir, "seed.ckpt")
	w, err := journal.CreateRaw(seed, ckptHeader{Kind: "exec-ckpt", V: ckptVersion, N: 8, Alg: "SCB", Ratio: "2:1:1"})
	if err != nil {
		f.Fatal(err)
	}
	if err := w.AppendPayload(newCkptRecord(0, []int32{0, 1}, []float64{1.5, -2.25})); err != nil {
		f.Fatal(err)
	}
	// A duplicate of block 0 with different bits: replay must keep these.
	if err := w.AppendPayload(newCkptRecord(0, []int32{1, 9}, []float64{7.75, 0.125})); err != nil {
		f.Fatal(err)
	}
	// A record with a stale content checksum: dropped, not fatal.
	if err := w.AppendPayload(ckptRecord{Block: 1, Cells: []int32{2}, Vals: []float64{3.5}, Sum: 42}); err != nil {
		f.Fatal(err)
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	good, err := os.ReadFile(seed)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:len(good)-3])    // torn tail
	f.Add(append([]byte{}, 'x')) // not a journal
	flipped := append([]byte{}, good...)
	flipped[len(flipped)/2] ^= 0x40 // CRC corruption mid-file
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.ckpt")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, rawRecs, err := journal.RecoverRaw(path)
		if err != nil {
			return // rejected framing is a valid outcome
		}
		const n = 8
		recs, maxBlock, dropped, err := decodeCkptRecords(n, rawRecs)
		if err != nil {
			return // rejected content is a valid outcome
		}
		if len(recs)+dropped != len(rawRecs) {
			t.Fatalf("%d records + %d dropped ≠ %d raw", len(recs), dropped, len(rawRecs))
		}
		apply := func() []float64 {
			buf := make([]float64, n*n)
			for _, r := range recs {
				if r.Block > maxBlock {
					t.Fatalf("record block %d above reported max %d", r.Block, maxBlock)
				}
				for i, idx := range r.Cells {
					buf[idx] = r.Vals[i] // in bounds by decode validation
				}
			}
			return buf
		}
		first := apply()
		second := apply()
		for i := range first {
			if first[i] != second[i] && !(first[i] != first[i] && second[i] != second[i]) {
				t.Fatalf("replay not deterministic at cell %d: %v vs %v", i, first[i], second[i])
			}
		}
	})
}

// TestCheckpointTornTailResumes pins the torn-tail behaviour the fuzz
// target explores: a checkpoint whose final record was half-written by a
// dying process resumes cleanly, replaying every complete record.
func TestCheckpointTornTailResumes(t *testing.T) {
	const n = 16
	ratio := partition.MustRatio(2, 1, 1)
	a, b := randomMatrices(n, 53)
	g, err := partition.Build(partition.SquareCorner, n, ratio)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "torn.ckpt")
	cfg := Config{Machine: testMachine(ratio), Algorithm: model.SCB, BlockSize: 4, Checkpoint: path}
	_, stats, err := Multiply(cfg, g, a, b)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last record mid-line.
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	rcfg := cfg
	rcfg.Resume = true
	c, rs, err := Multiply(rcfg, g, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if rs.BlocksResumed != stats.BlocksDone-1 {
		t.Fatalf("BlocksResumed = %d, want %d (all but the torn record)", rs.BlocksResumed, stats.BlocksDone-1)
	}
	want := matrix.New(n)
	matrix.MulKIJ(want, a, b)
	if !c.Equal(want) {
		t.Fatal("torn-tail resume differs from serial kij")
	}
}

// TestCheckpointDuplicateRecordsLastWriteWins pins duplicate-record
// semantics: replaying a journal with a duplicated block record keeps
// the later write and still resumes bit-identically (both writes carry
// the same bits in practice).
func TestCheckpointDuplicateRecordsLastWriteWins(t *testing.T) {
	const n = 16
	ratio := partition.MustRatio(2, 1, 1)
	a, b := randomMatrices(n, 59)
	g, err := partition.Build(partition.SquareCorner, n, ratio)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "dup.ckpt")
	cfg := Config{Machine: testMachine(ratio), Algorithm: model.SCB, BlockSize: 4, Checkpoint: path}
	_, stats, err := Multiply(cfg, g, a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate the first block record by re-appending its line.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	if len(lines) < 2 {
		t.Fatal("checkpoint has no records")
	}
	if err := os.WriteFile(path, append(data, lines[1]...), 0o644); err != nil {
		t.Fatal(err)
	}
	rcfg := cfg
	rcfg.Resume = true
	c, rs, err := Multiply(rcfg, g, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if rs.BlocksResumed != stats.BlocksDone+1 {
		t.Fatalf("BlocksResumed = %d, want %d (duplicate replayed)", rs.BlocksResumed, stats.BlocksDone+1)
	}
	want := matrix.New(n)
	matrix.MulKIJ(want, a, b)
	if !c.Equal(want) {
		t.Fatal("duplicate-record resume differs from serial kij")
	}
}
