package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock steps a deterministic clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newFake() (*Trace, *fakeClock) {
	c := &fakeClock{t: time.Unix(1000, 0)}
	return newAt(c.t, c.now), c
}

func TestSpansRecordOffsets(t *testing.T) {
	tr, clk := newFake()
	a := tr.Start("setup")
	clk.advance(10 * time.Millisecond)
	a.End()

	b := tr.Start("condense")
	b.SetDetail("steps=%d", 42)
	clk.advance(30 * time.Millisecond)
	b.End()
	b.End() // double End records once

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "setup" || spans[0].Start != 0 || spans[0].End != 10*time.Millisecond {
		t.Errorf("setup span = %+v", spans[0])
	}
	if spans[1].Start != 10*time.Millisecond || spans[1].End != 40*time.Millisecond {
		t.Errorf("condense span = %+v", spans[1])
	}
	if spans[1].Detail != "steps=42" {
		t.Errorf("detail = %q", spans[1].Detail)
	}
	if spans[1].Duration() != 30*time.Millisecond {
		t.Errorf("duration = %v", spans[1].Duration())
	}
}

func TestWriteTimeline(t *testing.T) {
	tr, clk := newFake()
	s1 := tr.Start("setup")
	clk.advance(5 * time.Millisecond)
	s1.End()
	s2 := tr.Start("condense")
	s2.SetDetail("voc=99")
	clk.advance(95 * time.Millisecond)
	s2.End()

	var b strings.Builder
	if err := tr.WriteTimeline(&b, 40); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "setup") || !strings.Contains(lines[0], "=") {
		t.Errorf("setup line missing bar: %q", lines[0])
	}
	// The condense bar should be much longer than setup's (95% vs 5%).
	if strings.Count(lines[1], "=") <= strings.Count(lines[0], "=") {
		t.Errorf("condense bar not longer than setup:\n%s", out)
	}
	if !strings.Contains(lines[1], "voc=99") {
		t.Errorf("detail not rendered: %q", lines[1])
	}
	if !strings.Contains(lines[2], "total") {
		t.Errorf("total line missing: %q", lines[2])
	}
}

// TestWriteTimelineTinySpans: an instantaneous span still gets a
// visible bar, and the degenerate all-zero trace doesn't divide by
// zero.
func TestWriteTimelineTinySpans(t *testing.T) {
	tr, clk := newFake()
	a := tr.Start("instant")
	a.End()
	b := tr.Start("long")
	clk.advance(time.Second)
	b.End()

	var buf strings.Builder
	if err := tr.WriteTimeline(&buf, 40); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(buf.String(), "\n")
	if !strings.Contains(lines[0], "=") {
		t.Errorf("instant span invisible: %q", lines[0])
	}

	zero, _ := newFake()
	z := zero.Start("z")
	z.End()
	var zb strings.Builder
	if err := zero.WriteTimeline(&zb, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(zb.String(), "z") {
		t.Errorf("zero-duration trace not rendered: %q", zb.String())
	}

	empty := New()
	var eb strings.Builder
	if err := empty.WriteTimeline(&eb, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(eb.String(), "no spans") {
		t.Errorf("empty trace output: %q", eb.String())
	}
}

// TestConcurrentSpans: overlapping spans from several goroutines;
// meaningful under -race.
func TestConcurrentSpans(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := tr.Start("work")
			s.SetDetail("d")
			s.End()
		}()
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 8 {
		t.Errorf("got %d spans, want 8", got)
	}
}
