// Package trace is a lightweight span recorder for the search
// pipeline. A Trace collects named, timed spans (setup, condense,
// beautify, …) and renders them as an ASCII timeline, so a single
// `pushsearch -trace` run shows where the wall time went without any
// external tooling. It is intentionally tiny: no context plumbing, no
// sampling, no export format beyond text — per-process aggregates
// belong to internal/metrics, per-run breakdowns belong here.
package trace

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Span is one completed, named interval, with offsets relative to the
// trace's start.
type Span struct {
	Name   string
	Start  time.Duration
	End    time.Duration
	Detail string // optional free-form annotation, shown in the timeline
}

// Duration is the span's length.
func (s Span) Duration() time.Duration { return s.End - s.Start }

// Trace records spans. The zero value is not usable; call New. All
// methods are safe for concurrent use.
type Trace struct {
	mu    sync.Mutex
	t0    time.Time
	spans []Span
	now   func() time.Time // test seam
}

// New returns a trace whose clock starts now.
func New() *Trace {
	return &Trace{t0: time.Now(), now: time.Now}
}

// newAt is the test constructor: a trace with an injected clock.
func newAt(t0 time.Time, now func() time.Time) *Trace {
	return &Trace{t0: t0, now: now}
}

// Active is an in-progress span returned by Start; call End (usually
// deferred) to record it.
type Active struct {
	tr     *Trace
	name   string
	start  time.Duration
	detail string
	done   bool
	mu     sync.Mutex
}

// Start opens a span. Spans may nest or overlap freely; the timeline
// renders them in start order.
func (t *Trace) Start(name string) *Active {
	t.mu.Lock()
	start := t.now().Sub(t.t0)
	t.mu.Unlock()
	return &Active{tr: t, name: name, start: start}
}

// SetDetail attaches an annotation shown next to the span in the
// timeline (e.g. "steps=512 voc=1310").
func (a *Active) SetDetail(format string, args ...any) {
	a.mu.Lock()
	a.detail = fmt.Sprintf(format, args...)
	a.mu.Unlock()
}

// End records the span. Calling End twice records it once.
func (a *Active) End() {
	a.mu.Lock()
	if a.done {
		a.mu.Unlock()
		return
	}
	a.done = true
	detail := a.detail
	a.mu.Unlock()

	a.tr.mu.Lock()
	end := a.tr.now().Sub(a.tr.t0)
	a.tr.spans = append(a.tr.spans, Span{
		Name:   a.name,
		Start:  a.start,
		End:    end,
		Detail: detail,
	})
	a.tr.mu.Unlock()
}

// Spans returns the completed spans in completion order.
func (t *Trace) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// WriteTimeline renders the spans as an ASCII gantt chart scaled so
// the latest span end sits at the given bar width:
//
//	setup     1.2ms  |=                                       |
//	condense  180ms  | ==============================         | steps=512
//	beautify   45ms  |                               ======== | voc=1310
//
// Bars are clamped to at least one character so short phases stay
// visible. width is the bar's interior width in characters (minimum
// 10 is enforced).
func (t *Trace) WriteTimeline(w io.Writer, width int) error {
	if width < 10 {
		width = 10
	}
	spans := t.Spans()
	if len(spans) == 0 {
		_, err := fmt.Fprintln(w, "(no spans recorded)")
		return err
	}
	var total time.Duration
	nameW := 0
	for _, s := range spans {
		if s.End > total {
			total = s.End
		}
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	if total <= 0 {
		total = 1 // degenerate: all spans instantaneous
	}
	scale := func(d time.Duration) int {
		return int(float64(d) / float64(total) * float64(width))
	}
	for _, s := range spans {
		lo, hi := scale(s.Start), scale(s.End)
		if hi >= width {
			hi = width
		}
		if hi <= lo {
			hi = lo + 1 // never render an invisible span
			if hi > width {
				lo, hi = width-1, width
			}
		}
		bar := strings.Repeat(" ", lo) + strings.Repeat("=", hi-lo) + strings.Repeat(" ", width-hi)
		line := fmt.Sprintf("%-*s %9s |%s|", nameW, s.Name, fmtDur(s.Duration()), bar)
		if s.Detail != "" {
			line += " " + s.Detail
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%-*s %9s\n", nameW, "total", fmtDur(total))
	return err
}

// fmtDur rounds a duration to three significant-ish digits so the
// timeline stays narrow.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	}
}
