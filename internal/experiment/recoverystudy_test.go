package experiment

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/partition"
)

func TestRecoveryStudy(t *testing.T) {
	rows, err := RecoveryStudy(context.Background(), RecoveryStudyConfig{
		N:         32,
		KillFracs: []float64{0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 { // SCB and PCB, one kill fraction each
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if !r.BitExact {
			t.Errorf("%s kill@%g: recovered product not bit-exact", r.Algorithm, r.KillFrac)
		}
		if r.Survivors != 2 {
			t.Errorf("%s kill@%g: %d survivors, want 2", r.Algorithm, r.KillFrac, r.Survivors)
		}
		if r.Kind != "replan-2proc" {
			t.Errorf("%s kill@%g: recovery kind %q, want replan-2proc", r.Algorithm, r.KillFrac, r.Kind)
		}
		if !r.BoundOK {
			t.Errorf("%s kill@%g: recovery volume %d ≥ 2×remainder need %d",
				r.Algorithm, r.KillFrac, r.RecoveryVolume, r.RemainderNeed)
		}
		if r.RecoveryVolume <= 0 {
			t.Errorf("%s kill@%g: no recovery volume recorded", r.Algorithm, r.KillFrac)
		}
	}
	var buf bytes.Buffer
	if err := WriteRecoveryTable(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "replan-2proc") {
		t.Error("rendered table is missing the recovery kind")
	}
}

func TestRecoveryStudyValidation(t *testing.T) {
	if _, err := RecoveryStudy(context.Background(), RecoveryStudyConfig{N: 8}); err == nil {
		t.Error("n=8 accepted, want config error")
	}
	bad := RecoveryStudyConfig{Ratio: partition.Ratio{Pr: -1, Rr: 1, Sr: 1}}
	if _, err := RecoveryStudy(context.Background(), bad); err == nil {
		t.Error("negative ratio accepted, want config error")
	}
}
