package experiment

import (
	"context"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/partition"
)

func TestFaultStudyValidationTyped(t *testing.T) {
	ratio := partition.MustRatio(5, 2, 1)
	var ce *ConfigError
	ctx := context.Background()
	if _, err := FaultStudy(ctx, model.SCB, model.FullyConnected, 5, ratio, CanonicalFaultPlan); !errors.As(err, &ce) {
		t.Fatalf("n=5: err = %v, want *ConfigError", err)
	}
	if _, err := FaultStudy(ctx, model.SCB, model.FullyConnected, 64, partition.Ratio{}, CanonicalFaultPlan); !errors.As(err, &ce) {
		t.Fatalf("zero ratio: err = %v, want *ConfigError", err)
	}
	if _, err := FaultStudy(ctx, model.SCB, model.FullyConnected, 64, ratio, nil); !errors.As(err, &ce) {
		t.Fatalf("nil plan: err = %v, want *ConfigError", err)
	}
}

func TestFaultStudyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := FaultStudy(ctx, model.SCB, model.FullyConnected, 64, partition.MustRatio(5, 2, 1), CanonicalFaultPlan)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestFaultStudyDegradationAndDeterminism(t *testing.T) {
	ratio := partition.MustRatio(5, 2, 1)
	rows, err := FaultStudy(context.Background(), model.SCB, model.FullyConnected, 64, ratio, CanonicalFaultPlan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(partition.AllShapes) {
		t.Fatalf("got %d rows, want %d", len(rows), len(partition.AllShapes))
	}
	feasible := 0
	for _, r := range rows {
		if !r.Feasible {
			continue
		}
		feasible++
		if r.Clean <= 0 || r.Faulted <= 0 {
			t.Errorf("%s: non-positive times %+v", r.Shape, r)
		}
		// The canonical plan only slows the platform, so no shape can
		// finish faster than its clean run.
		if r.Degradation < -1e-12 {
			t.Errorf("%s: negative degradation %v", r.Shape, r.Degradation)
		}
	}
	if feasible == 0 {
		t.Fatal("no feasible shapes in the study")
	}
	again, err := FaultStudy(context.Background(), model.SCB, model.FullyConnected, 64, ratio, CanonicalFaultPlan)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, rows) {
		t.Fatalf("fault study is not deterministic:\n got %+v\nwant %+v", again, rows)
	}

	clean, faulted := FaultWinners(rows)
	var sb strings.Builder
	if err := WriteFaultTable(&sb, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), clean.String()) || !strings.Contains(sb.String(), faulted.String()) {
		t.Fatalf("table misses winners:\n%s", sb.String())
	}
}

func TestCanonicalFaultPlanDegenerateHorizon(t *testing.T) {
	for _, h := range []float64{0, -1, math.Inf(-1)} {
		if _, err := CanonicalFaultPlan(h); err != nil {
			t.Fatalf("horizon %v: %v", h, err)
		}
	}
}

func TestFaultStudyStarTopology(t *testing.T) {
	rows, err := FaultStudy(context.Background(), model.PIO, model.Star, 64, partition.MustRatio(3, 2, 1), CanonicalFaultPlan)
	if err != nil {
		t.Fatal(err)
	}
	any := false
	for _, r := range rows {
		if r.Feasible && r.Faulted > r.Clean {
			any = true
		}
	}
	if !any {
		t.Fatal("canonical plan degraded no shape on the star topology")
	}
}
