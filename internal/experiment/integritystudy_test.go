package experiment

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/model"
)

func TestIntegrityStudy(t *testing.T) {
	res, err := IntegrityStudy(context.Background(), IntegrityStudyConfig{
		N:          48,
		BlockSize:  8,
		Algorithms: []model.Algorithm{model.SCB},
		FaultSpecs: []string{"none", "flip:R@0.5", "scale:S@8"},
		// Keep the overhead pass cheap: its percentage is asserted by
		// the bench study, not here.
		OverheadN:         64,
		OverheadBlockSize: 16,
		OverheadReps:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(res.Rows))
	}
	for _, r := range res.Rows {
		if !r.BitExact {
			t.Errorf("%s %q: verified product not bit-exact", r.Algorithm, r.Faults)
		}
		if r.DetectionRate < 1 {
			t.Errorf("%s %q: detection rate %.2f, want 1 (injected %d, caught %d+%d+%d)",
				r.Algorithm, r.Faults, r.DetectionRate, r.Injected, r.Corrected, r.Recomputed, r.Rejected)
		}
		if r.Checks == 0 {
			t.Errorf("%s %q: no integrity checks recorded", r.Algorithm, r.Faults)
		}
	}
	clean, flip, scale := res.Rows[0], res.Rows[1], res.Rows[2]
	if clean.Injected != 0 || clean.Corrected != 0 || clean.Recomputed != 0 {
		t.Errorf("clean row reports corruption activity: %+v", clean)
	}
	if flip.Injected == 0 || flip.Corrected == 0 {
		t.Errorf("flip row: injected %d corrected %d, want both > 0", flip.Injected, flip.Corrected)
	}
	if len(scale.Byzantine) != 1 || scale.Byzantine[0] != "S" {
		t.Errorf("scale row: byzantine %v, want [S]", scale.Byzantine)
	}
	if scale.Survivors != 2 {
		t.Errorf("scale row: %d survivors, want 2", scale.Survivors)
	}
	if scale.ReplanKind != "replan-2proc" {
		t.Errorf("scale row: replan kind %q, want replan-2proc", scale.ReplanKind)
	}
	if res.Overhead.BaseWallMS <= 0 || res.Overhead.VerifiedWallMS <= 0 {
		t.Errorf("overhead walls not measured: %+v", res.Overhead)
	}
	var buf bytes.Buffer
	if err := WriteIntegrityTable(&buf, res); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "S (replan-2proc)") {
		t.Errorf("rendered table missing quarantine annotation:\n%s", out)
	}
	if !strings.Contains(out, "ABFT overhead") {
		t.Errorf("rendered table missing overhead line:\n%s", out)
	}
}

func TestIntegrityStudyValidation(t *testing.T) {
	if _, err := IntegrityStudy(context.Background(), IntegrityStudyConfig{N: 8}); err == nil {
		t.Error("n=8 accepted, want config error")
	}
	bad := IntegrityStudyConfig{FaultSpecs: []string{"flip:R@0.5,flip:R@0.9"}}
	if _, err := IntegrityStudy(context.Background(), bad); err == nil {
		t.Error("duplicate-fate fault spec accepted, want config error")
	}
}
