package experiment

import (
	"context"
	"testing"

	"repro/internal/model"
	"repro/internal/partition"
)

// TestWinnerMapSpecUniformMatchesLegacy: the spec-based sweep under the
// empty (uniform) spec must agree cell-for-cell with the legacy
// ComputeWinnerMap — the experiment-layer half of the differential
// equivalence suite.
func TestWinnerMapSpecUniformMatchesLegacy(t *testing.T) {
	legacy, err := ComputeWinnerMap(model.SCB, model.FullyConnected, 4, 10, 1, 60)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := ComputeWinnerMapSpec(context.Background(), model.SCB, "uniform", "", 4, 10, 1, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Diff(legacy)) != 0 {
		t.Fatalf("uniform spec map disagrees with legacy map at %v", spec.Diff(legacy))
	}
}

// TestUniformRescaleCannotFlip pins the modeling fact the 3-island
// redesign rests on: pricing every link by the same factor is the
// uniform topology in disguise — computation time is shape-invariant
// per ratio and a uniform rescale preserves the communication ordering,
// so not one cell may change winner.
func TestUniformRescaleCannotFlip(t *testing.T) {
	for _, a := range model.AllAlgorithms {
		base, err := ComputeWinnerMapSpec(context.Background(), a, "uniform", "", 4, 10, 1, 60)
		if err != nil {
			t.Fatal(err)
		}
		scaled, err := ComputeWinnerMapSpec(context.Background(), a, "flat", "links:PR=10,PS=10,RS=10", 4, 10, 1, 60)
		if err != nil {
			t.Fatal(err)
		}
		if d := scaled.Diff(base); len(d) != 0 {
			t.Fatalf("%v: flat 10× rescale flipped cells %v", a, d)
		}
	}
}

// TestTopologyClassFlipsKnownCells is the table-driven flip test: a 10×
// inter-node β must flip these specific cells' winners (probed once,
// then pinned — a silent regression in the link-matrix pricing would
// show up here first).
func TestTopologyClassFlipsKnownCells(t *testing.T) {
	const n = 60
	cases := []struct {
		alg      model.Algorithm
		spec     string
		rr, pr   float64
		uniform  partition.Shape
		expected partition.Shape
	}{
		{model.SCB, "2+1:10", 3, 3, partition.BlockRectangle, partition.RectangleCorner},
		{model.SCB, "3-island:10", 3, 4, partition.BlockRectangle, partition.SquareCorner},
		{model.PCB, "2+1:10", 3, 4, partition.BlockRectangle, partition.SquareRectangle},
		{model.PCB, "3-island:10", 3, 3, partition.SquareRectangle, partition.RectangleCorner},
		{model.SCO, "2+1:10", 4, 8, partition.BlockRectangle, partition.SquareCorner},
		{model.PCO, "3-island:10", 2, 2, partition.SquareRectangle, partition.RectangleCorner},
		{model.PIO, "2+1:10", 3, 3, partition.BlockRectangle, partition.RectangleCorner},
		{model.PIO, "3-island:10", 3, 9, partition.BlockRectangle, partition.SquareCorner},
	}
	for _, tc := range cases {
		ratio := partition.MustRatio(tc.pr, tc.rr, 1)
		base, err := EvaluateCell(tc.alg, model.FullyConnected, ratio, n)
		if err != nil {
			t.Fatal(err)
		}
		if base.Winner != tc.uniform {
			t.Errorf("%v %g:%g:1 uniform winner %v, want %v (table stale?)",
				tc.alg, tc.pr, tc.rr, base.Winner, tc.uniform)
			continue
		}
		spec, err := model.ParseTopologySpec(tc.spec)
		if err != nil {
			t.Fatal(err)
		}
		got, err := EvaluateCellSpec(tc.alg, spec, ratio, n)
		if err != nil {
			t.Fatal(err)
		}
		if got.Winner != tc.expected {
			t.Errorf("%v %s %g:%g:1: winner %v, want flip to %v",
				tc.alg, tc.spec, tc.pr, tc.rr, got.Winner, tc.expected)
		}
	}
}

// TestRunTopologyCensus: every non-uniform class must move at least one
// cell on the standard census window — the acceptance criterion of the
// cost-model refactor — and the flip summary must name each one.
func TestRunTopologyCensus(t *testing.T) {
	entries, err := RunTopologyCensus(context.Background(), model.SCB, 4, 12, 1, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 || entries[0].Class.Name != "uniform" || entries[0].Flips != 0 {
		t.Fatalf("unexpected census layout: %+v", entries)
	}
	for _, e := range entries[1:] {
		if e.Flips == 0 {
			t.Errorf("class %s flips no cells — not a distinct topology class", e.Class.Name)
		}
		if got := len(CensusFlipSummary(entries[0], e)); got != e.Flips {
			t.Errorf("class %s: summary has %d lines, Flips=%d", e.Class.Name, got, e.Flips)
		}
	}
}
