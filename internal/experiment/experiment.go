// Package experiment contains the reproduction harness: each function
// regenerates one of the paper's figures or result tables (see DESIGN.md
// §5 for the experiment index). The harness is deliberately deterministic
// — every randomised study takes an explicit base seed — so EXPERIMENTS.md
// numbers can be regenerated exactly.
package experiment

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/journal"
	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/push"
	"repro/internal/shape"
	"repro/internal/sim"
)

// CensusConfig parameterises the Section VII archetype census.
type CensusConfig struct {
	// N is the matrix dimension (paper: 1000; tests use smaller).
	N int
	// RunsPerRatio is the number of DFA runs per ratio (paper: ~10,000).
	RunsPerRatio int
	// Ratios defaults to the paper's eleven ratios.
	Ratios []partition.Ratio
	// Seed drives all runs deterministically.
	Seed int64
	// Beautify applies the paper's cleanup pass before classification
	// (the paper's program used one for Archetype C, Thm 8.3).
	Beautify bool
	// Workers bounds parallelism (0 = GOMAXPROCS).
	Workers int
	// Journal, when non-empty, is the path of an append-only run journal
	// (internal/journal): every completed run is flushed to it as workers
	// finish, so an interrupted census loses at most the runs in flight.
	Journal string
	// Resume allows Journal to point at an existing journal from an
	// interrupted census with the same configuration: its completed runs
	// are replayed and only the remainder is dispatched. Because run
	// seeds derive from (Seed, ratio, run), the resumed census is
	// bit-identical to an uninterrupted one.
	Resume bool
	// MaxRetries is the per-run retry budget after a worker panic
	// (default 1 retry; negative means no retries). A run that panics on
	// every attempt is quarantined — recorded as a structured failure,
	// excluded from the aggregates — and the census keeps going.
	MaxRetries int
	// RetryBackoff is the base of the exponential backoff between retry
	// attempts (default 10ms; negative disables the sleep).
	RetryBackoff time.Duration

	// runHook, when set (by tests), runs before every DFA attempt; a
	// panic inside it simulates a worker crash.
	runHook func(ratioIndex, run, attempt int)
}

// validate rejects malformed configurations with typed errors.
func (cfg CensusConfig) validate() error {
	if cfg.N < 10 {
		return &ConfigError{Field: "N", Reason: fmt.Sprintf("census N must be ≥ 10, got %d", cfg.N)}
	}
	if cfg.RunsPerRatio <= 0 {
		return &ConfigError{Field: "RunsPerRatio", Reason: fmt.Sprintf("must be positive, got %d", cfg.RunsPerRatio)}
	}
	for i, r := range cfg.Ratios {
		if err := r.Validate(); err != nil {
			return &ConfigError{Field: fmt.Sprintf("Ratios[%d]", i), Reason: err.Error()}
		}
	}
	if cfg.Resume && cfg.Journal == "" {
		return &ConfigError{Field: "Resume", Reason: "requires Journal to be set"}
	}
	return nil
}

// CensusRow is the outcome for one ratio.
type CensusRow struct {
	Ratio  partition.Ratio
	Counts map[shape.Archetype]int
	// MeanSteps is the average number of Push operations per run.
	MeanSteps float64
	// MeanVoCDrop is the average fractional VoC reduction start→end.
	MeanVoCDrop float64
	// Completed is the number of runs aggregated into this row (equals
	// the configured runs unless the census was interrupted).
	Completed int
	// Failed counts quarantined runs (panicked on every attempt); they
	// are excluded from Counts and the means.
	Failed int
}

// Census runs the DFA many times per ratio and classifies every terminal
// state — the experimental support for Postulate 1 (Fig 5, §VII). It is
// CensusContext with a background context.
func Census(cfg CensusConfig) ([]CensusRow, error) {
	return CensusContext(context.Background(), cfg)
}

// CensusContext runs the census under ctx.
//
// The harness is a fixed pool of worker goroutines (cfg.Workers, default
// GOMAXPROCS) pulling run indices from an atomic counter, not a goroutine
// per run: each worker owns one pooled scratch grid that every run it
// executes condenses in place (push.Config.Scratch), so a census allocates
// O(workers) grids instead of O(runs). Outcomes stream to the aggregator
// as workers finish; the aggregator journals each one (when cfg.Journal is
// set) and stores it into a per-run table that is summed in run-index
// order once the ratio completes. The first run error cancels the census:
// no further runs are dispatched for this or any later ratio.
//
// Results are deterministic in cfg.Seed: run r of ratio i is seeded with
// Seed + i·1_000_003 + r regardless of which worker executes it, and the
// run-order aggregation makes even the float means independent of worker
// count, completion order, and interruption/resume.
//
// Resilience:
//
//   - Cancelling ctx stops the census promptly (workers check between
//     runs and inside the DFA step loop). The rows aggregated so far —
//     including a partial row for the interrupted ratio — are returned
//     alongside the wrapped context error, so hours of completed work
//     survive a SIGINT.
//   - A worker panic is recovered, retried up to cfg.MaxRetries times
//     with exponential backoff, then quarantined: the run is journaled as
//     a structured failure, counted in CensusRow.Failed, and the census
//     continues. A completed census with quarantined runs returns its
//     rows plus a *QuarantineError.
func CensusContext(ctx context.Context, cfg CensusConfig) ([]CensusRow, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ratios := cfg.Ratios
	if len(ratios) == 0 {
		ratios = partition.PaperRatios
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	workers = min(workers, cfg.RunsPerRatio)
	maxRetries := cfg.MaxRetries
	if maxRetries == 0 {
		maxRetries = 1
	} else if maxRetries < 0 {
		maxRetries = 0
	}
	backoff := cfg.RetryBackoff
	if backoff == 0 {
		backoff = 10 * time.Millisecond
	}

	// The per-run outcome table; completed journal records replay into it
	// and finished runs land in it, keyed by (ratio, run).
	table := make([][]censusSlot, len(ratios))
	for i := range table {
		table[i] = make([]censusSlot, cfg.RunsPerRatio)
	}
	var jw *journal.Writer
	if cfg.Journal != "" {
		w, err := openCensusJournal(cfg, ratios, table)
		if err != nil {
			return nil, err
		}
		jw = w
		defer jw.Close()
	}

	// Scratch grids, one held per live worker, reused across every run and
	// every ratio. push.Run re-randomises them in place.
	gridPool := sync.Pool{New: func() any { return partition.NewGrid(cfg.N) }}

	var (
		cancel   atomic.Bool
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		cancel.Store(true)
	}

	seedOf := func(ri, run int) int64 {
		return cfg.Seed + int64(ri)*1_000_003 + int64(run)
	}

	type indexedOutcome struct {
		run  int
		slot censusSlot
	}

	var failures []RunFailure
	rows := make([]CensusRow, len(ratios))
	done := 0
	for ri, ratio := range ratios {
		if cancel.Load() {
			break
		}
		// Dispatch only the runs the journal has not already replayed.
		var pending []int
		for run := 0; run < cfg.RunsPerRatio; run++ {
			if !table[ri][run].seen {
				pending = append(pending, run)
			}
		}
		if len(pending) > 0 {
			results := make(chan indexedOutcome, workers)
			var next atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < min(workers, len(pending)); w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					scratch := gridPool.Get().(*partition.Grid)
					defer gridPool.Put(scratch)
					for {
						k := int(next.Add(1)) - 1
						// Check cancellation before every dispatch so an
						// error or interrupt stops the census instead of
						// draining the backlog.
						if k >= len(pending) || cancel.Load() {
							return
						}
						if err := ctx.Err(); err != nil {
							fail(fmt.Errorf("experiment: census interrupted: %w", err))
							return
						}
						run := pending[k]
						slot, err := censusRun(ctx, cfg, ratio, ri, run, seedOf(ri, run), scratch, maxRetries, backoff)
						if err != nil {
							fail(err)
							return
						}
						results <- indexedOutcome{run: run, slot: slot}
					}
				}()
			}
			go func() {
				wg.Wait()
				close(results)
			}()
			// Aggregate on the census goroutine: it owns the table and the
			// journal, so appends need no locking and happen as each run
			// completes — an interrupted census has already flushed every
			// finished run.
			for o := range results {
				table[ri][o.run] = o.slot
				if jw != nil {
					if err := jw.AppendRecord(slotRecord(ri, o.run, seedOf(ri, o.run), o.slot)); err != nil {
						fail(err)
					}
				}
			}
		}

		// Sum in run-index order for bit-identical means on any schedule.
		row := CensusRow{Ratio: ratio, Counts: make(map[shape.Archetype]int)}
		var steps, drop float64
		for run := 0; run < cfg.RunsPerRatio; run++ {
			s := table[ri][run]
			if !s.seen {
				continue
			}
			if s.failed {
				row.Failed++
				failures = append(failures, RunFailure{
					Ratio: ratio, RatioIndex: ri, Run: run,
					Seed: seedOf(ri, run), Err: s.errMsg, Attempts: s.attempts,
				})
				continue
			}
			row.Counts[s.arch]++
			steps += float64(s.steps)
			drop += s.drop
		}
		row.Completed = row.Failed
		for _, c := range row.Counts {
			row.Completed += c
		}
		if n := row.Completed - row.Failed; n > 0 {
			row.MeanSteps = steps / float64(n)
			row.MeanVoCDrop = drop / float64(n)
		}
		rows[ri] = row
		done = ri + 1
	}
	if firstErr != nil {
		// Interruption and run errors still surface the completed rows so
		// partial results can be flushed by the caller.
		return rows[:done], firstErr
	}
	if len(failures) > 0 {
		return rows, &QuarantineError{Failures: failures}
	}
	return rows, nil
}

// censusRun executes one (ratio, run) cell with panic isolation: each
// attempt that panics is retried after an exponential backoff until the
// retry budget is spent, at which point the run is quarantined as a
// structured failure. Run errors other than panics are returned as-is
// (they are deterministic configuration failures, not worker crashes).
func censusRun(ctx context.Context, cfg CensusConfig, ratio partition.Ratio, ri, run int, seed int64, scratch *partition.Grid, maxRetries int, backoff time.Duration) (censusSlot, error) {
	var lastPanic *PanicError
	for attempt := 0; attempt <= maxRetries; attempt++ {
		if attempt > 0 {
			if err := retrySleep(ctx, backoff, attempt-1); err != nil {
				return censusSlot{}, fmt.Errorf("experiment: census interrupted: %w", err)
			}
		}
		var hook func()
		if cfg.runHook != nil {
			hook = func() { cfg.runHook(ri, run, attempt) }
		}
		res, err := runDFAOnce(ctx, push.Config{
			N:        cfg.N,
			Ratio:    ratio,
			Seed:     seed,
			Beautify: cfg.Beautify,
			Scratch:  scratch,
		}, hook)
		if err == nil {
			drop := 0.0
			if res.InitialVoC > 0 {
				drop = 1 - float64(res.FinalVoC)/float64(res.InitialVoC)
			}
			// Classify before returning: res.Final aliases scratch, which
			// the worker's next run overwrites.
			return censusSlot{seen: true, arch: shape.Classify(res.Final), steps: res.Steps, drop: drop}, nil
		}
		var pe *PanicError
		if !errors.As(err, &pe) {
			return censusSlot{}, err
		}
		lastPanic = pe
	}
	return censusSlot{
		seen: true, failed: true,
		errMsg:   lastPanic.Value,
		attempts: maxRetries + 1,
	}, nil
}

// CensusCounterexamples returns the total number of terminal states that
// fell outside the four archetypes — zero supports Postulate 1.
func CensusCounterexamples(rows []CensusRow) int {
	total := 0
	for _, r := range rows {
		total += r.Counts[shape.ArchetypeUnknown]
	}
	return total
}

// WriteCensusTable renders the census as a markdown table (the Fig 5 /
// §VII-C summary).
func WriteCensusTable(w io.Writer, rows []CensusRow) error {
	if _, err := fmt.Fprintln(w, "| ratio | A | B | C | D | other | mean pushes | mean VoC drop |"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "|---|---|---|---|---|---|---|---|"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "| %s | %d | %d | %d | %d | %d | %.1f | %.1f%% |\n",
			r.Ratio, r.Counts[shape.ArchetypeA], r.Counts[shape.ArchetypeB],
			r.Counts[shape.ArchetypeC], r.Counts[shape.ArchetypeD],
			r.Counts[shape.ArchetypeUnknown], r.MeanSteps, 100*r.MeanVoCDrop); err != nil {
			return err
		}
	}
	return nil
}

// SurfacePoint is one sample of the Fig 13 cost surfaces.
type SurfacePoint struct {
	Rr, Pr   float64
	SC, BR   float64 // normalised SCB communication costs
	Feasible bool    // Square-Corner feasibility (the vertical wall)
}

// Fig13Surface samples the Square-Corner and Block-Rectangle SCB cost
// functions over Rr ∈ [1, rrMax], Pr ∈ [1, prMax] (paper: 10 and 20),
// with Sr = 1.
func Fig13Surface(rrMax, prMax float64, step float64) []SurfacePoint {
	if step <= 0 {
		step = 0.5
	}
	var pts []SurfacePoint
	for rr := 1.0; rr <= rrMax+1e-9; rr += step {
		for pr := 1.0; pr <= prMax+1e-9; pr += step {
			if pr < rr {
				continue // ratio ordering Pr ≥ Rr
			}
			ratio := partition.MustRatio(pr, rr, 1)
			br, _ := model.NormalizedVoC(partition.BlockRectangle, ratio)
			pt := SurfacePoint{Rr: rr, Pr: pr, BR: br}
			if sc, ok := model.NormalizedVoC(partition.SquareCorner, ratio); ok {
				pt.SC = sc
				pt.Feasible = true
			}
			pts = append(pts, pt)
		}
	}
	return pts
}

// WriteSurfaceCSV emits the Fig 13 samples as CSV.
func WriteSurfaceCSV(w io.Writer, pts []SurfacePoint) error {
	if _, err := fmt.Fprintln(w, "Rr,Pr,squarecorner,blockrectangle,feasible"); err != nil {
		return err
	}
	for _, p := range pts {
		sc := ""
		if p.Feasible {
			sc = fmt.Sprintf("%.6f", p.SC)
		}
		if _, err := fmt.Fprintf(w, "%.3f,%.3f,%s,%.6f,%v\n", p.Rr, p.Pr, sc, p.BR, p.Feasible); err != nil {
			return err
		}
	}
	return nil
}

// Fig14Row is one point of the Fig 14 communication-time comparison.
type Fig14Row struct {
	X float64 // heterogeneity: ratio x:1:1
	// Closed-form Hockney communication seconds (N, bandwidth from the
	// machine), NaN-free: SCFeasible gates SC.
	SCModel, BRModel float64
	SCFeasible       bool
	// Simulated communication seconds on a concrete N-cell grid.
	SCSim, BRSim float64
}

// Fig14Sweep reproduces Fig 14: SCB communication time for Square-Corner
// vs Block-Rectangle on a fully connected network as heterogeneity x
// (ratio x:1:1) grows. n is the matrix dimension used for the simulated
// series (the closed forms use nModel, the paper's 5000).
func Fig14Sweep(xs []float64, nModel, nSim int) ([]Fig14Row, error) {
	return Fig14SweepContext(context.Background(), xs, nModel, nSim)
}

// Fig14SweepContext is Fig14Sweep with cancellation between sample
// points.
func Fig14SweepContext(ctx context.Context, xs []float64, nModel, nSim int) ([]Fig14Row, error) {
	if len(xs) == 0 {
		for x := 2.0; x <= 25; x++ {
			xs = append(xs, x)
		}
	}
	rows := make([]Fig14Row, 0, len(xs))
	for _, x := range xs {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("experiment: Fig 14 sweep interrupted: %w", err)
		}
		ratio := partition.MustRatio(x, 1, 1)
		m := model.DefaultMachine(ratio)
		row := Fig14Row{X: x}
		if sc, ok := model.SCBCommSeconds(partition.SquareCorner, m, nModel); ok {
			row.SCModel = sc
			row.SCFeasible = true
		}
		br, ok := model.SCBCommSeconds(partition.BlockRectangle, m, nModel)
		if !ok {
			return nil, fmt.Errorf("experiment: block-rectangle closed form missing at x=%v", x)
		}
		row.BRModel = br

		if nSim > 0 {
			if row.SCFeasible {
				g, err := partition.Build(partition.SquareCorner, nSim, ratio)
				if err == nil {
					res, err := sim.Simulate(model.SCB, m, g, 0)
					if err != nil {
						return nil, err
					}
					// Scale the simulated comm time from nSim to nModel
					// (volume scales with N²).
					row.SCSim = res.TComm * float64(nModel) * float64(nModel) / (float64(nSim) * float64(nSim))
				}
			}
			g, err := partition.Build(partition.BlockRectangle, nSim, ratio)
			if err != nil {
				return nil, err
			}
			res, err := sim.Simulate(model.SCB, m, g, 0)
			if err != nil {
				return nil, err
			}
			row.BRSim = res.TComm * float64(nModel) * float64(nModel) / (float64(nSim) * float64(nSim))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Crossover returns the smallest x at which the Square-Corner's modelled
// communication time beats the Block-Rectangle's, or 0 if none.
func Crossover(rows []Fig14Row) float64 {
	for _, r := range rows {
		if r.SCFeasible && r.SCModel < r.BRModel {
			return r.X
		}
	}
	return 0
}

// WriteFig14Table renders the sweep as a markdown table.
func WriteFig14Table(w io.Writer, rows []Fig14Row) error {
	if _, err := fmt.Fprintln(w, "| x (ratio x:1:1) | SC model (s) | BR model (s) | SC sim (s) | BR sim (s) | winner |"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "|---|---|---|---|---|---|"); err != nil {
		return err
	}
	for _, r := range rows {
		sc := "infeasible"
		winner := "Block-Rectangle"
		if r.SCFeasible {
			sc = fmt.Sprintf("%.4f", r.SCModel)
			if r.SCModel < r.BRModel {
				winner = "Square-Corner"
			}
		}
		scSim := "-"
		if r.SCSim > 0 {
			scSim = fmt.Sprintf("%.4f", r.SCSim)
		}
		brSim := "-"
		if r.BRSim > 0 {
			brSim = fmt.Sprintf("%.4f", r.BRSim)
		}
		if _, err := fmt.Fprintf(w, "| %.0f | %s | %.4f | %s | %s | %s |\n",
			r.X, sc, r.BRModel, scSim, brSim, winner); err != nil {
			return err
		}
	}
	return nil
}

// ShapeCost is one candidate's modelled cost for a scenario.
type ShapeCost struct {
	Shape    partition.Shape
	Feasible bool
	VoC      int64
	Total    float64 // modelled execution seconds
	SimTotal float64 // simulated execution seconds
}

// OptimalRow reports the per-candidate costs and the winner for one
// (ratio, algorithm, topology) scenario — the Section X methodology
// applied across all six candidates.
type OptimalRow struct {
	Ratio     partition.Ratio
	Algorithm model.Algorithm
	Topology  model.Topology
	Costs     []ShapeCost
	Best      partition.Shape
}

// OptimalShapes evaluates all six candidates for each ratio × algorithm
// under the given topology, using both the analytic models and the
// simulator, and reports the winner by modelled execution time.
func OptimalShapes(n int, ratios []partition.Ratio, topo model.Topology) ([]OptimalRow, error) {
	return OptimalShapesContext(context.Background(), n, ratios, topo)
}

// OptimalShapesContext is OptimalShapes with cancellation between ratios.
func OptimalShapesContext(ctx context.Context, n int, ratios []partition.Ratio, topo model.Topology) ([]OptimalRow, error) {
	if len(ratios) == 0 {
		ratios = partition.PaperRatios
	}
	var rows []OptimalRow
	for _, ratio := range ratios {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("experiment: optimal-shape sweep interrupted: %w", err)
		}
		m := model.DefaultMachine(ratio)
		m.Topology = topo
		for _, alg := range model.AllAlgorithms {
			row := OptimalRow{Ratio: ratio, Algorithm: alg, Topology: topo}
			best := -1
			for _, s := range partition.AllShapes {
				sc := ShapeCost{Shape: s}
				g, err := partition.Build(s, n, ratio)
				if err == nil {
					sc.Feasible = true
					sc.VoC = g.VoC()
					sc.Total = model.EvaluateGrid(alg, m, g).Total
					res, err := sim.Simulate(alg, m, g, 0)
					if err != nil {
						return nil, err
					}
					sc.SimTotal = res.TExe
					if best < 0 || sc.Total < row.Costs[best].Total {
						best = len(row.Costs)
					}
				}
				row.Costs = append(row.Costs, sc)
			}
			if best < 0 {
				return nil, fmt.Errorf("experiment: no feasible shape for %v", ratio)
			}
			row.Best = row.Costs[best].Shape
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// WriteOptimalTable renders the winners grid: one line per ratio, one
// column per algorithm.
func WriteOptimalTable(w io.Writer, rows []OptimalRow) error {
	byRatio := map[string]map[model.Algorithm]partition.Shape{}
	var order []string
	for _, r := range rows {
		key := r.Ratio.String()
		if byRatio[key] == nil {
			byRatio[key] = map[model.Algorithm]partition.Shape{}
			order = append(order, key)
		}
		byRatio[key][r.Algorithm] = r.Best
	}
	sort.Strings(order)
	header := "| ratio |"
	sep := "|---|"
	for _, a := range model.AllAlgorithms {
		header += " " + a.String() + " |"
		sep += "---|"
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, sep); err != nil {
		return err
	}
	for _, key := range order {
		line := "| " + key + " |"
		for _, a := range model.AllAlgorithms {
			line += " " + strings.TrimSuffix(byRatio[key][a].String(), "") + " |"
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

// ExampleRun reproduces Fig 7: a single seeded DFA run whose partition is
// rendered (at the paper's coarse granularity) at the requested snapshot
// steps plus the final state. Returned keys are the step numbers.
func ExampleRun(n int, ratio partition.Ratio, seed int64, at []int, boxes int) (map[int]string, *push.RunResult, error) {
	want := make(map[int]bool, len(at))
	for _, s := range at {
		want[s] = true
	}
	frames := make(map[int]string)
	res, err := push.Run(push.Config{
		N:     n,
		Ratio: ratio,
		Seed:  seed,
		Snapshot: func(step int, g *partition.Grid) {
			if want[step] {
				frames[step] = g.RenderASCII(boxes)
			}
		},
	})
	if err != nil {
		return nil, nil, err
	}
	frames[res.Steps] = res.Final.RenderASCII(boxes)
	return frames, res, nil
}
