// Package experiment contains the reproduction harness: each function
// regenerates one of the paper's figures or result tables (see DESIGN.md
// §5 for the experiment index). The harness is deliberately deterministic
// — every randomised study takes an explicit base seed — so EXPERIMENTS.md
// numbers can be regenerated exactly.
package experiment

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/push"
	"repro/internal/shape"
	"repro/internal/sim"
)

// CensusConfig parameterises the Section VII archetype census.
type CensusConfig struct {
	// N is the matrix dimension (paper: 1000; tests use smaller).
	N int
	// RunsPerRatio is the number of DFA runs per ratio (paper: ~10,000).
	RunsPerRatio int
	// Ratios defaults to the paper's eleven ratios.
	Ratios []partition.Ratio
	// Seed drives all runs deterministically.
	Seed int64
	// Beautify applies the paper's cleanup pass before classification
	// (the paper's program used one for Archetype C, Thm 8.3).
	Beautify bool
	// Workers bounds parallelism (0 = GOMAXPROCS).
	Workers int
}

// CensusRow is the outcome for one ratio.
type CensusRow struct {
	Ratio  partition.Ratio
	Counts map[shape.Archetype]int
	// MeanSteps is the average number of Push operations per run.
	MeanSteps float64
	// MeanVoCDrop is the average fractional VoC reduction start→end.
	MeanVoCDrop float64
}

// censusOutcome is what one DFA run contributes to its ratio's row.
type censusOutcome struct {
	arch  shape.Archetype
	steps int
	drop  float64
}

// Census runs the DFA many times per ratio and classifies every terminal
// state — the experimental support for Postulate 1 (Fig 5, §VII).
//
// The harness is a fixed pool of worker goroutines (cfg.Workers, default
// GOMAXPROCS) pulling run indices from an atomic counter, not a goroutine
// per run: each worker owns one pooled scratch grid that every run it
// executes condenses in place (push.Config.Scratch), so a census allocates
// O(workers) grids instead of O(runs). Outcomes stream to the aggregator
// over a channel and are reduced to counts and running sums as they
// arrive; no per-run slice is materialised. The first run error cancels
// the census: no further runs are dispatched for this or any later ratio.
//
// Results are deterministic in cfg.Seed: run r of ratio i is seeded with
// Seed + i·1_000_003 + r regardless of which worker executes it, archetype
// counts are order-independent, and the mean aggregation is over the same
// multiset of outcomes whatever the completion order.
func Census(cfg CensusConfig) ([]CensusRow, error) {
	if cfg.N < 10 {
		return nil, fmt.Errorf("experiment: census N must be ≥ 10, got %d", cfg.N)
	}
	if cfg.RunsPerRatio <= 0 {
		return nil, fmt.Errorf("experiment: RunsPerRatio must be positive")
	}
	ratios := cfg.Ratios
	if len(ratios) == 0 {
		ratios = partition.PaperRatios
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	workers = min(workers, cfg.RunsPerRatio)

	// Scratch grids, one held per live worker, reused across every run and
	// every ratio. push.Run re-randomises them in place.
	gridPool := sync.Pool{New: func() any { return partition.NewGrid(cfg.N) }}

	var (
		cancel   atomic.Bool
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		cancel.Store(true)
	}

	rows := make([]CensusRow, len(ratios))
	for ri, ratio := range ratios {
		if cancel.Load() {
			break
		}
		row := CensusRow{Ratio: ratio, Counts: make(map[shape.Archetype]int)}
		results := make(chan censusOutcome, workers)
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				scratch := gridPool.Get().(*partition.Grid)
				defer gridPool.Put(scratch)
				for {
					run := int(next.Add(1)) - 1
					// Check cancellation before every dispatch so an error
					// stops the census instead of draining the backlog.
					if run >= cfg.RunsPerRatio || cancel.Load() {
						return
					}
					res, err := push.Run(push.Config{
						N:        cfg.N,
						Ratio:    ratio,
						Seed:     cfg.Seed + int64(ri)*1_000_003 + int64(run),
						Beautify: cfg.Beautify,
						Scratch:  scratch,
					})
					if err != nil {
						fail(err)
						return
					}
					drop := 0.0
					if res.InitialVoC > 0 {
						drop = 1 - float64(res.FinalVoC)/float64(res.InitialVoC)
					}
					// Classify before looping: res.Final aliases scratch,
					// which the next run overwrites.
					results <- censusOutcome{shape.Classify(res.Final), res.Steps, drop}
				}
			}()
		}
		go func() {
			wg.Wait()
			close(results)
		}()
		var steps, drop float64
		count := 0
		for o := range results {
			row.Counts[o.arch]++
			steps += float64(o.steps)
			drop += o.drop
			count++
		}
		if count > 0 {
			row.MeanSteps = steps / float64(count)
			row.MeanVoCDrop = drop / float64(count)
		}
		rows[ri] = row
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return rows, nil
}

// CensusCounterexamples returns the total number of terminal states that
// fell outside the four archetypes — zero supports Postulate 1.
func CensusCounterexamples(rows []CensusRow) int {
	total := 0
	for _, r := range rows {
		total += r.Counts[shape.ArchetypeUnknown]
	}
	return total
}

// WriteCensusTable renders the census as a markdown table (the Fig 5 /
// §VII-C summary).
func WriteCensusTable(w io.Writer, rows []CensusRow) error {
	if _, err := fmt.Fprintln(w, "| ratio | A | B | C | D | other | mean pushes | mean VoC drop |"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "|---|---|---|---|---|---|---|---|"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "| %s | %d | %d | %d | %d | %d | %.1f | %.1f%% |\n",
			r.Ratio, r.Counts[shape.ArchetypeA], r.Counts[shape.ArchetypeB],
			r.Counts[shape.ArchetypeC], r.Counts[shape.ArchetypeD],
			r.Counts[shape.ArchetypeUnknown], r.MeanSteps, 100*r.MeanVoCDrop); err != nil {
			return err
		}
	}
	return nil
}

// SurfacePoint is one sample of the Fig 13 cost surfaces.
type SurfacePoint struct {
	Rr, Pr   float64
	SC, BR   float64 // normalised SCB communication costs
	Feasible bool    // Square-Corner feasibility (the vertical wall)
}

// Fig13Surface samples the Square-Corner and Block-Rectangle SCB cost
// functions over Rr ∈ [1, rrMax], Pr ∈ [1, prMax] (paper: 10 and 20),
// with Sr = 1.
func Fig13Surface(rrMax, prMax float64, step float64) []SurfacePoint {
	if step <= 0 {
		step = 0.5
	}
	var pts []SurfacePoint
	for rr := 1.0; rr <= rrMax+1e-9; rr += step {
		for pr := 1.0; pr <= prMax+1e-9; pr += step {
			if pr < rr {
				continue // ratio ordering Pr ≥ Rr
			}
			ratio := partition.MustRatio(pr, rr, 1)
			br, _ := model.NormalizedVoC(partition.BlockRectangle, ratio)
			pt := SurfacePoint{Rr: rr, Pr: pr, BR: br}
			if sc, ok := model.NormalizedVoC(partition.SquareCorner, ratio); ok {
				pt.SC = sc
				pt.Feasible = true
			}
			pts = append(pts, pt)
		}
	}
	return pts
}

// WriteSurfaceCSV emits the Fig 13 samples as CSV.
func WriteSurfaceCSV(w io.Writer, pts []SurfacePoint) error {
	if _, err := fmt.Fprintln(w, "Rr,Pr,squarecorner,blockrectangle,feasible"); err != nil {
		return err
	}
	for _, p := range pts {
		sc := ""
		if p.Feasible {
			sc = fmt.Sprintf("%.6f", p.SC)
		}
		if _, err := fmt.Fprintf(w, "%.3f,%.3f,%s,%.6f,%v\n", p.Rr, p.Pr, sc, p.BR, p.Feasible); err != nil {
			return err
		}
	}
	return nil
}

// Fig14Row is one point of the Fig 14 communication-time comparison.
type Fig14Row struct {
	X float64 // heterogeneity: ratio x:1:1
	// Closed-form Hockney communication seconds (N, bandwidth from the
	// machine), NaN-free: SCFeasible gates SC.
	SCModel, BRModel float64
	SCFeasible       bool
	// Simulated communication seconds on a concrete N-cell grid.
	SCSim, BRSim float64
}

// Fig14Sweep reproduces Fig 14: SCB communication time for Square-Corner
// vs Block-Rectangle on a fully connected network as heterogeneity x
// (ratio x:1:1) grows. n is the matrix dimension used for the simulated
// series (the closed forms use nModel, the paper's 5000).
func Fig14Sweep(xs []float64, nModel, nSim int) ([]Fig14Row, error) {
	if len(xs) == 0 {
		for x := 2.0; x <= 25; x++ {
			xs = append(xs, x)
		}
	}
	rows := make([]Fig14Row, 0, len(xs))
	for _, x := range xs {
		ratio := partition.MustRatio(x, 1, 1)
		m := model.DefaultMachine(ratio)
		row := Fig14Row{X: x}
		if sc, ok := model.SCBCommSeconds(partition.SquareCorner, m, nModel); ok {
			row.SCModel = sc
			row.SCFeasible = true
		}
		br, ok := model.SCBCommSeconds(partition.BlockRectangle, m, nModel)
		if !ok {
			return nil, fmt.Errorf("experiment: block-rectangle closed form missing at x=%v", x)
		}
		row.BRModel = br

		if nSim > 0 {
			if row.SCFeasible {
				g, err := partition.Build(partition.SquareCorner, nSim, ratio)
				if err == nil {
					res, err := sim.Simulate(model.SCB, m, g, 0)
					if err != nil {
						return nil, err
					}
					// Scale the simulated comm time from nSim to nModel
					// (volume scales with N²).
					row.SCSim = res.TComm * float64(nModel) * float64(nModel) / (float64(nSim) * float64(nSim))
				}
			}
			g, err := partition.Build(partition.BlockRectangle, nSim, ratio)
			if err != nil {
				return nil, err
			}
			res, err := sim.Simulate(model.SCB, m, g, 0)
			if err != nil {
				return nil, err
			}
			row.BRSim = res.TComm * float64(nModel) * float64(nModel) / (float64(nSim) * float64(nSim))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Crossover returns the smallest x at which the Square-Corner's modelled
// communication time beats the Block-Rectangle's, or 0 if none.
func Crossover(rows []Fig14Row) float64 {
	for _, r := range rows {
		if r.SCFeasible && r.SCModel < r.BRModel {
			return r.X
		}
	}
	return 0
}

// WriteFig14Table renders the sweep as a markdown table.
func WriteFig14Table(w io.Writer, rows []Fig14Row) error {
	if _, err := fmt.Fprintln(w, "| x (ratio x:1:1) | SC model (s) | BR model (s) | SC sim (s) | BR sim (s) | winner |"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "|---|---|---|---|---|---|"); err != nil {
		return err
	}
	for _, r := range rows {
		sc := "infeasible"
		winner := "Block-Rectangle"
		if r.SCFeasible {
			sc = fmt.Sprintf("%.4f", r.SCModel)
			if r.SCModel < r.BRModel {
				winner = "Square-Corner"
			}
		}
		scSim := "-"
		if r.SCSim > 0 {
			scSim = fmt.Sprintf("%.4f", r.SCSim)
		}
		brSim := "-"
		if r.BRSim > 0 {
			brSim = fmt.Sprintf("%.4f", r.BRSim)
		}
		if _, err := fmt.Fprintf(w, "| %.0f | %s | %.4f | %s | %s | %s |\n",
			r.X, sc, r.BRModel, scSim, brSim, winner); err != nil {
			return err
		}
	}
	return nil
}

// ShapeCost is one candidate's modelled cost for a scenario.
type ShapeCost struct {
	Shape    partition.Shape
	Feasible bool
	VoC      int64
	Total    float64 // modelled execution seconds
	SimTotal float64 // simulated execution seconds
}

// OptimalRow reports the per-candidate costs and the winner for one
// (ratio, algorithm, topology) scenario — the Section X methodology
// applied across all six candidates.
type OptimalRow struct {
	Ratio     partition.Ratio
	Algorithm model.Algorithm
	Topology  model.Topology
	Costs     []ShapeCost
	Best      partition.Shape
}

// OptimalShapes evaluates all six candidates for each ratio × algorithm
// under the given topology, using both the analytic models and the
// simulator, and reports the winner by modelled execution time.
func OptimalShapes(n int, ratios []partition.Ratio, topo model.Topology) ([]OptimalRow, error) {
	if len(ratios) == 0 {
		ratios = partition.PaperRatios
	}
	var rows []OptimalRow
	for _, ratio := range ratios {
		m := model.DefaultMachine(ratio)
		m.Topology = topo
		for _, alg := range model.AllAlgorithms {
			row := OptimalRow{Ratio: ratio, Algorithm: alg, Topology: topo}
			best := -1
			for _, s := range partition.AllShapes {
				sc := ShapeCost{Shape: s}
				g, err := partition.Build(s, n, ratio)
				if err == nil {
					sc.Feasible = true
					sc.VoC = g.VoC()
					sc.Total = model.EvaluateGrid(alg, m, g).Total
					res, err := sim.Simulate(alg, m, g, 0)
					if err != nil {
						return nil, err
					}
					sc.SimTotal = res.TExe
					if best < 0 || sc.Total < row.Costs[best].Total {
						best = len(row.Costs)
					}
				}
				row.Costs = append(row.Costs, sc)
			}
			if best < 0 {
				return nil, fmt.Errorf("experiment: no feasible shape for %v", ratio)
			}
			row.Best = row.Costs[best].Shape
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// WriteOptimalTable renders the winners grid: one line per ratio, one
// column per algorithm.
func WriteOptimalTable(w io.Writer, rows []OptimalRow) error {
	byRatio := map[string]map[model.Algorithm]partition.Shape{}
	var order []string
	for _, r := range rows {
		key := r.Ratio.String()
		if byRatio[key] == nil {
			byRatio[key] = map[model.Algorithm]partition.Shape{}
			order = append(order, key)
		}
		byRatio[key][r.Algorithm] = r.Best
	}
	sort.Strings(order)
	header := "| ratio |"
	sep := "|---|"
	for _, a := range model.AllAlgorithms {
		header += " " + a.String() + " |"
		sep += "---|"
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, sep); err != nil {
		return err
	}
	for _, key := range order {
		line := "| " + key + " |"
		for _, a := range model.AllAlgorithms {
			line += " " + strings.TrimSuffix(byRatio[key][a].String(), "") + " |"
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

// ExampleRun reproduces Fig 7: a single seeded DFA run whose partition is
// rendered (at the paper's coarse granularity) at the requested snapshot
// steps plus the final state. Returned keys are the step numbers.
func ExampleRun(n int, ratio partition.Ratio, seed int64, at []int, boxes int) (map[int]string, *push.RunResult, error) {
	want := make(map[int]bool, len(at))
	for _, s := range at {
		want[s] = true
	}
	frames := make(map[int]string)
	res, err := push.Run(push.Config{
		N:     n,
		Ratio: ratio,
		Seed:  seed,
		Snapshot: func(step int, g *partition.Grid) {
			if want[step] {
				frames[step] = g.RenderASCII(boxes)
			}
		},
	})
	if err != nil {
		return nil, nil, err
	}
	frames[res.Steps] = res.Final.RenderASCII(boxes)
	return frames, res, nil
}
