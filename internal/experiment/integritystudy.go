package experiment

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"repro/internal/exec"
	"repro/internal/matrix"
	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/sim"
)

// IntegrityRow reports one corruption scenario of the integrity study:
// a run under an injected silent-corruption fault plan with ABFT
// verification on, checked bit-exact against the serial kij kernel.
type IntegrityRow struct {
	Algorithm string `json:"algorithm"`
	// Faults is the worker fault spec ("none" for the clean baseline).
	Faults string `json:"faults"`
	// BitExact records whether the verified product matched the serial
	// kij kernel bit for bit — the study's primary acceptance criterion.
	BitExact bool `json:"bit_exact"`
	// Injected is ground truth from the fault plan: delivered results
	// the sim corruption fates actually corrupted. Corrected counts
	// single-cell errors fixed in place, Recomputed counts blocks
	// discarded at verification and re-leased, Rejected counts results
	// refused from quarantined workers.
	Injected   int `json:"injected"`
	Corrected  int `json:"corrected"`
	Recomputed int `json:"recomputed"`
	Rejected   int `json:"rejected"`
	// DetectionRate is (corrected+recomputed+rejected)/injected, capped
	// at 1 (a discarded block can cover several injected corruptions);
	// 1.0 when nothing was injected.
	DetectionRate float64 `json:"detection_rate"`
	// Checks counts C tiles ABFT-verified during the run.
	Checks int `json:"integrity_checks"`
	// Byzantine lists workers quarantined for exceeding the mismatch
	// budget; ReplanKind is the re-plan triggered by the quarantine
	// ("replan-2proc"), empty when nobody was quarantined.
	Byzantine  []string `json:"byzantine,omitempty"`
	ReplanKind string   `json:"replan_kind,omitempty"`
	Survivors  int      `json:"survivors"`
	WallMS     float64  `json:"wall_ms"`
}

// IntegrityOverhead reports the cost of ABFT verification on a clean
// run: minimum wall time over Reps runs with Verify off and on, at a
// production-ish block size where the O(tile) checksum work amortises.
type IntegrityOverhead struct {
	N              int     `json:"n"`
	BlockSize      int     `json:"block_size"`
	Reps           int     `json:"reps"`
	BaseWallMS     float64 `json:"base_wall_ms"`
	VerifiedWallMS float64 `json:"verified_wall_ms"`
	// OverheadPct is VerifiedWallMS/BaseWallMS − 1, in percent. The
	// acceptance target is < 5% at BlockSize ≥ 64.
	OverheadPct float64 `json:"overhead_pct"`
}

// IntegrityStudyResult bundles the corruption rows with the clean-run
// overhead measurement.
type IntegrityStudyResult struct {
	Rows     []IntegrityRow    `json:"rows"`
	Overhead IntegrityOverhead `json:"overhead"`
}

// IntegrityStudyConfig parameterises IntegrityStudy. The zero value is
// completed with the defaults documented per field.
type IntegrityStudyConfig struct {
	// N is the matrix dimension of the corruption rows (default 96).
	N int
	// BlockSize is the tile edge of the corruption rows (default 16).
	BlockSize int
	// Ratio is the processor speed ratio (default 3:2:1).
	Ratio partition.Ratio
	// Shape is the candidate partition shape; honoured only when
	// ShapeSet is true (Square-Corner is the Shape zero value). Unset,
	// the study uses Block-Rectangle, feasible at every ratio and size.
	Shape    partition.Shape
	ShapeSet bool
	// Algorithms are the barrier algorithms to study (default SCB, PCB).
	Algorithms []model.Algorithm
	// FaultSpecs are the sim.ParseWorkerFaults specs to drill, with
	// "none" meaning a fault-free run. Default: none, single-cell flips
	// on R at 5% and 10% of its blocks, a deterministic ×8 scaling of
	// every S result (the Byzantine-quarantine case), and a combined
	// flip+scale drill.
	FaultSpecs []string
	// OverheadN, OverheadBlockSize and OverheadReps parameterise the
	// clean-run overhead measurement (defaults 256, 64, 3).
	OverheadN         int
	OverheadBlockSize int
	OverheadReps      int
	// Seed seeds the input matrices (default 1).
	Seed int64
}

func (c *IntegrityStudyConfig) fill() error {
	if c.N == 0 {
		c.N = 96
	}
	if c.N < 16 {
		return &ConfigError{Field: "n", Reason: fmt.Sprintf("integrity study needs n ≥ 16, got %d", c.N)}
	}
	if c.BlockSize == 0 {
		c.BlockSize = 16
	}
	if c.BlockSize < 2 {
		return &ConfigError{Field: "block", Reason: fmt.Sprintf("integrity study needs block size ≥ 2, got %d", c.BlockSize)}
	}
	if c.Ratio == (partition.Ratio{}) {
		c.Ratio = partition.MustRatio(3, 2, 1)
	}
	if err := c.Ratio.Validate(); err != nil {
		return &ConfigError{Field: "ratio", Reason: err.Error()}
	}
	if !c.ShapeSet {
		c.Shape = partition.BlockRectangle
	}
	if len(c.Algorithms) == 0 {
		c.Algorithms = []model.Algorithm{model.SCB, model.PCB}
	}
	if len(c.FaultSpecs) == 0 {
		c.FaultSpecs = []string{
			"none",
			"flip:R@0.05",
			"flip:R@0.1",
			"scale:S@8",
			"flip:P@0.1,scale:S@8",
		}
	}
	if c.OverheadN == 0 {
		c.OverheadN = 256
	}
	if c.OverheadBlockSize == 0 {
		c.OverheadBlockSize = 64
	}
	if c.OverheadReps == 0 {
		c.OverheadReps = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return nil
}

// IntegrityStudy is the silent-corruption chaos drill: for each
// (algorithm, fault spec) it runs the multiplication with ABFT
// verification on and the spec's corruption fates injected, and reports
// what the checksums caught — corrections, block recomputations,
// Byzantine quarantines — with every product checked bit-exact against
// the serial kij kernel. A separate clean-run pass measures the
// verification overhead at a production block size.
func IntegrityStudy(ctx context.Context, cfg IntegrityStudyConfig) (*IntegrityStudyResult, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	g, err := partition.Build(cfg.Shape, cfg.N, cfg.Ratio)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	a := matrix.New(cfg.N)
	b := matrix.New(cfg.N)
	a.FillRandom(rng)
	b.FillRandom(rng)
	want := matrix.New(cfg.N)
	matrix.MulKIJ(want, a, b)

	base := exec.Config{
		Machine:        model.DefaultMachine(cfg.Ratio),
		BlockSize:      cfg.BlockSize,
		HeartbeatEvery: time.Millisecond,
		LeaseTimeout:   20 * time.Millisecond,
		Verify:         true,
	}
	res := &IntegrityStudyResult{}
	for _, alg := range cfg.Algorithms {
		for _, spec := range cfg.FaultSpecs {
			fcfg := base
			fcfg.Algorithm = alg
			if spec != "" && spec != "none" {
				fp, err := sim.ParseWorkerFaults(spec)
				if err != nil {
					return nil, &ConfigError{Field: "faults", Reason: err.Error()}
				}
				fcfg.Faults = fp
			}
			c, stats, err := exec.MultiplyContext(ctx, fcfg, g, a, b)
			if err != nil {
				return nil, fmt.Errorf("experiment: integrity study %q (%v): %w", spec, alg, err)
			}
			row := IntegrityRow{
				Algorithm:  alg.String(),
				Faults:     spec,
				BitExact:   c.Equal(want),
				Injected:   stats.InjectedCorruptions,
				Corrected:  stats.CorruptionsCorrected,
				Recomputed: stats.BlocksRecomputed,
				Rejected:   stats.ByzantineRejected,
				Checks:     stats.IntegrityChecks,
				Survivors:  stats.Survivors(),
				WallMS:     float64(stats.Wall.Microseconds()) / 1e3,
			}
			row.DetectionRate = 1
			if row.Injected > 0 {
				row.DetectionRate = float64(row.Corrected+row.Recomputed+row.Rejected) / float64(row.Injected)
				if row.DetectionRate > 1 {
					row.DetectionRate = 1
				}
			}
			for _, p := range stats.Byzantine {
				row.Byzantine = append(row.Byzantine, p.String())
			}
			if len(stats.Byzantine) > 0 && len(stats.RecoveryKinds) > 0 {
				row.ReplanKind = stats.RecoveryKinds[0]
			}
			res.Rows = append(res.Rows, row)
		}
	}

	oh, err := measureOverhead(ctx, cfg)
	if err != nil {
		return nil, err
	}
	res.Overhead = *oh
	return res, nil
}

// measureOverhead times Verify off vs on over clean runs, taking the
// minimum wall of OverheadReps repetitions each to shed scheduler noise.
func measureOverhead(ctx context.Context, cfg IntegrityStudyConfig) (*IntegrityOverhead, error) {
	g, err := partition.Build(cfg.Shape, cfg.OverheadN, cfg.Ratio)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	a := matrix.New(cfg.OverheadN)
	b := matrix.New(cfg.OverheadN)
	a.FillRandom(rng)
	b.FillRandom(rng)

	minWall := func(verify bool) (time.Duration, error) {
		best := time.Duration(0)
		for rep := 0; rep < cfg.OverheadReps; rep++ {
			c := exec.Config{
				Machine:   model.DefaultMachine(cfg.Ratio),
				Algorithm: model.SCB,
				BlockSize: cfg.OverheadBlockSize,
				Verify:    verify,
			}
			_, stats, err := exec.MultiplyContext(ctx, c, g, a, b)
			if err != nil {
				return 0, fmt.Errorf("experiment: integrity overhead (verify=%v): %w", verify, err)
			}
			if best == 0 || stats.Wall < best {
				best = stats.Wall
			}
		}
		return best, nil
	}
	baseWall, err := minWall(false)
	if err != nil {
		return nil, err
	}
	verWall, err := minWall(true)
	if err != nil {
		return nil, err
	}
	oh := &IntegrityOverhead{
		N:              cfg.OverheadN,
		BlockSize:      cfg.OverheadBlockSize,
		Reps:           cfg.OverheadReps,
		BaseWallMS:     float64(baseWall.Microseconds()) / 1e3,
		VerifiedWallMS: float64(verWall.Microseconds()) / 1e3,
	}
	if baseWall > 0 {
		oh.OverheadPct = (float64(verWall)/float64(baseWall) - 1) * 100
	}
	return oh, nil
}

// WriteIntegrityTable renders the study as markdown: the corruption
// rows as a table, the overhead measurement as a trailing line.
func WriteIntegrityTable(w io.Writer, res *IntegrityStudyResult) error {
	if _, err := fmt.Fprintln(w, "| alg | faults | injected | corrected | recomputed | rejected | detection | byzantine | survivors | bit-exact |"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "|---|---|---|---|---|---|---|---|---|---|"); err != nil {
		return err
	}
	for _, r := range res.Rows {
		exact := "yes"
		if !r.BitExact {
			exact = "NO"
		}
		byz := "-"
		if len(r.Byzantine) > 0 {
			byz = strings.Join(r.Byzantine, ",")
			if r.ReplanKind != "" {
				byz += " (" + r.ReplanKind + ")"
			}
		}
		if _, err := fmt.Fprintf(w, "| %s | %s | %d | %d | %d | %d | %.0f%% | %s | %d | %s |\n",
			r.Algorithm, r.Faults, r.Injected, r.Corrected, r.Recomputed, r.Rejected,
			100*r.DetectionRate, byz, r.Survivors, exact); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "\nABFT overhead at n=%d, block=%d (min of %d reps): %.1f ms → %.1f ms (%+.1f%%)\n",
		res.Overhead.N, res.Overhead.BlockSize, res.Overhead.Reps,
		res.Overhead.BaseWallMS, res.Overhead.VerifiedWallMS, res.Overhead.OverheadPct)
	return err
}
