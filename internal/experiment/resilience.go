package experiment

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime/debug"
	"time"

	"repro/internal/journal"
	"repro/internal/partition"
	"repro/internal/push"
	"repro/internal/shape"
)

// ConfigError reports an invalid study-configuration field with a typed
// error instead of a panic or an endless loop.
type ConfigError struct {
	Field  string
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("experiment: invalid %s: %s", e.Field, e.Reason)
}

// PanicError wraps a panic recovered from a study worker, preserving the
// stack for the quarantine report.
type PanicError struct {
	Value string
	Stack string
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("worker panic: %s", e.Value)
}

// RunFailure identifies one quarantined run: every attempt panicked, so
// the run was excluded from the study's aggregates and recorded as a
// structured failure.
type RunFailure struct {
	Ratio      partition.Ratio
	RatioIndex int
	Run        int
	Seed       int64
	Err        string
	Attempts   int
}

// QuarantineError is the typed aggregate error a census returns when it
// completed but had to quarantine runs. The returned rows are still
// valid: they aggregate every non-quarantined run.
type QuarantineError struct {
	Failures []RunFailure
}

func (e *QuarantineError) Error() string {
	f := e.Failures[0]
	return fmt.Sprintf("experiment: %d run(s) quarantined after repeated worker panics; first: ratio %s run %d (seed %d, %d attempts): %s",
		len(e.Failures), f.Ratio, f.Run, f.Seed, f.Attempts, f.Err)
}

// ErrJournalMismatch marks a resume attempt against a journal written by
// a differently-configured study.
var ErrJournalMismatch = errors.New("experiment: journal header does not match this census configuration")

// censusSlot is the per-run cell of the deterministic aggregation table.
// Rows are summed in run-index order over these slots, which is what
// makes an interrupted-then-resumed census bit-identical to an
// uninterrupted one regardless of worker count or completion order.
type censusSlot struct {
	seen     bool
	failed   bool
	arch     shape.Archetype
	steps    int
	drop     float64
	errMsg   string
	attempts int
}

// censusHeader derives the journal identity of a census configuration.
func censusHeader(cfg CensusConfig, ratios []partition.Ratio) journal.Header {
	rs := make([]string, len(ratios))
	for i, r := range ratios {
		rs[i] = r.String()
	}
	return journal.Header{
		Kind:     "census",
		N:        cfg.N,
		Runs:     cfg.RunsPerRatio,
		Seed:     cfg.Seed,
		Beautify: cfg.Beautify,
		Ratios:   rs,
	}
}

// openCensusJournal creates or resumes the journal at cfg.Journal and
// replays any completed records into table. It returns the open writer.
func openCensusJournal(cfg CensusConfig, ratios []partition.Ratio, table [][]censusSlot) (*journal.Writer, error) {
	hdr := censusHeader(cfg, ratios)
	if !cfg.Resume {
		w, err := journal.Create(cfg.Journal, hdr)
		if err != nil && errors.Is(err, os.ErrExist) {
			return nil, fmt.Errorf("%w (set Resume to continue it, or remove the file)", err)
		}
		return w, err
	}
	prev, recs, err := journal.Recover(cfg.Journal)
	if errors.Is(err, os.ErrNotExist) {
		return journal.Create(cfg.Journal, hdr)
	}
	if err != nil {
		return nil, err
	}
	if !journal.HeaderMatches(prev, hdr) {
		return nil, fmt.Errorf("%w: journal %+v vs config %+v", ErrJournalMismatch, prev, hdr)
	}
	for _, rec := range recs {
		if rec.RatioIndex < 0 || rec.RatioIndex >= len(ratios) || rec.Run < 0 || rec.Run >= cfg.RunsPerRatio {
			return nil, fmt.Errorf("experiment: journal record (%d,%d) out of range", rec.RatioIndex, rec.Run)
		}
		table[rec.RatioIndex][rec.Run] = censusSlot{
			seen:     true,
			failed:   rec.Failed,
			arch:     shape.Archetype(rec.Archetype),
			steps:    rec.Steps,
			drop:     rec.VoCDrop,
			errMsg:   rec.Error,
			attempts: rec.Attempts,
		}
	}
	return journal.Append(cfg.Journal)
}

// slotRecord converts a completed slot back to its journal record.
func slotRecord(ri, run int, seed int64, s censusSlot) journal.Record {
	return journal.Record{
		RatioIndex: ri,
		Run:        run,
		Seed:       seed,
		Archetype:  int(s.arch),
		Steps:      s.steps,
		VoCDrop:    s.drop,
		Failed:     s.failed,
		Error:      s.errMsg,
		Attempts:   s.attempts,
	}
}

// runDFAOnce executes a single DFA run, converting a worker panic into a
// *PanicError instead of killing the whole study.
func runDFAOnce(ctx context.Context, cfg push.Config, hook func()) (res *push.RunResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: fmt.Sprint(r), Stack: string(debug.Stack())}
		}
	}()
	if hook != nil {
		hook()
	}
	return push.RunContext(ctx, cfg)
}

// retrySleep waits for the exponential-backoff delay of the given attempt
// (base, 2·base, 4·base, …), returning early if ctx is cancelled.
func retrySleep(ctx context.Context, base time.Duration, attempt int) error {
	if base <= 0 {
		return ctx.Err()
	}
	d := base << attempt
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}
