package experiment

import (
	"math"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/shape"
)

func TestCensusSmall(t *testing.T) {
	rows, err := Census(CensusConfig{
		N:            36,
		RunsPerRatio: 6,
		Ratios:       []partition.Ratio{partition.MustRatio(2, 1, 1), partition.MustRatio(5, 2, 1)},
		Seed:         1,
		Beautify:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		total := 0
		for _, c := range r.Counts {
			total += c
		}
		if total != 6 {
			t.Errorf("ratio %v: classified %d of 6 runs", r.Ratio, total)
		}
		if r.MeanSteps <= 0 {
			t.Errorf("ratio %v: mean steps %v", r.Ratio, r.MeanSteps)
		}
		if r.MeanVoCDrop <= 0 || r.MeanVoCDrop > 1 {
			t.Errorf("ratio %v: mean VoC drop %v", r.Ratio, r.MeanVoCDrop)
		}
	}
	if n := CensusCounterexamples(rows); n != 0 {
		t.Errorf("found %d counterexamples to Postulate 1", n)
	}
	var sb strings.Builder
	if err := WriteCensusTable(&sb, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "| 2:1:1 |") {
		t.Errorf("table missing ratio row:\n%s", sb.String())
	}
}

func TestCensusValidation(t *testing.T) {
	if _, err := Census(CensusConfig{N: 2, RunsPerRatio: 1}); err == nil {
		t.Error("tiny N should error")
	}
	if _, err := Census(CensusConfig{N: 30, RunsPerRatio: 0}); err == nil {
		t.Error("zero runs should error")
	}
}

func TestCensusDeterministic(t *testing.T) {
	cfg := CensusConfig{
		N: 30, RunsPerRatio: 4,
		Ratios: []partition.Ratio{partition.MustRatio(3, 1, 1)},
		Seed:   7,
	}
	a, err := Census(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Census(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, arch := range []shape.Archetype{shape.ArchetypeA, shape.ArchetypeB, shape.ArchetypeC, shape.ArchetypeD} {
		if a[0].Counts[arch] != b[0].Counts[arch] {
			t.Fatalf("census not deterministic for %v", arch)
		}
	}
}

func TestFig13Surface(t *testing.T) {
	pts := Fig13Surface(10, 20, 1)
	if len(pts) == 0 {
		t.Fatal("no surface points")
	}
	sawWall := false
	for _, p := range pts {
		if p.Pr < p.Rr {
			t.Fatalf("ordering violated at %+v", p)
		}
		if p.BR <= 0 {
			t.Fatalf("BR cost must be positive: %+v", p)
		}
		ratio := partition.MustRatio(p.Pr, p.Rr, 1)
		if p.Feasible != partition.SquareCornerFeasible(ratio) {
			t.Fatalf("feasibility wall wrong at %+v", p)
		}
		if !p.Feasible {
			sawWall = true
		}
		// High-heterogeneity corner: SC below BR.
		if p.Feasible && p.Rr == 1 && p.Pr == 20 && p.SC >= p.BR {
			t.Errorf("at Rr=1 Pr=20 SC %.3f should beat BR %.3f", p.SC, p.BR)
		}
	}
	if !sawWall {
		t.Error("expected some infeasible region (the Fig 13 wall)")
	}
	var sb strings.Builder
	if err := WriteSurfaceCSV(&sb, pts); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "Rr,Pr,") {
		t.Error("CSV header missing")
	}
	if lines := strings.Count(sb.String(), "\n"); lines != len(pts)+1 {
		t.Errorf("CSV lines %d, want %d", lines, len(pts)+1)
	}
}

func TestFig14SweepShape(t *testing.T) {
	rows, err := Fig14Sweep(nil, 5000, 120)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	// Paper's shape: BR roughly flat-to-slowly-falling; SC falls with x
	// and eventually overtakes.
	x := Crossover(rows)
	if x < 9 || x > 11 {
		t.Errorf("crossover at x=%v, want ≈ 9.7 (within the sampled integers)", x)
	}
	for _, r := range rows {
		if !r.SCFeasible {
			continue
		}
		// Simulated and modelled series must agree in ordering near the
		// extremes.
		if r.X >= 15 && !(r.SCSim < r.BRSim) {
			t.Errorf("x=%v: simulated SC %g should beat BR %g", r.X, r.SCSim, r.BRSim)
		}
		if r.X <= 5 && !(r.SCSim > r.BRSim) {
			t.Errorf("x=%v: simulated BR %g should beat SC %g", r.X, r.BRSim, r.SCSim)
		}
		// Sim within 15%% of the closed form (raggedness at nSim=120).
		if rel := math.Abs(r.SCSim-r.SCModel) / r.SCModel; rel > 0.15 {
			t.Errorf("x=%v: SC sim %g vs model %g (rel %.2f)", r.X, r.SCSim, r.SCModel, rel)
		}
	}
	var sb strings.Builder
	if err := WriteFig14Table(&sb, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Square-Corner") {
		t.Error("table should name a Square-Corner winner somewhere")
	}
}

func TestOptimalShapes(t *testing.T) {
	rows, err := OptimalShapes(60, []partition.Ratio{
		partition.MustRatio(2, 1, 1),
		partition.MustRatio(10, 1, 1),
	}, model.FullyConnected)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*model.NumAlgorithms {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		feasible := 0
		for _, c := range r.Costs {
			if c.Feasible {
				feasible++
				if c.Total <= 0 || c.SimTotal <= 0 {
					t.Errorf("%v %v %v: non-positive cost", r.Ratio, r.Algorithm, c.Shape)
				}
			}
		}
		if feasible < 4 {
			t.Errorf("%v %v: only %d feasible candidates", r.Ratio, r.Algorithm, feasible)
		}
		// Winner must be the argmin of the modelled totals.
		bestTotal := math.Inf(1)
		var bestShape partition.Shape
		for _, c := range r.Costs {
			if c.Feasible && c.Total < bestTotal {
				bestTotal = c.Total
				bestShape = c.Shape
			}
		}
		if r.Best != bestShape {
			t.Errorf("%v %v: winner %v, argmin %v", r.Ratio, r.Algorithm, r.Best, bestShape)
		}
	}
	var sb strings.Builder
	if err := WriteOptimalTable(&sb, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "| ratio | SCB | PCB | SCO | PCO | PIO |") {
		t.Errorf("header wrong:\n%s", sb.String())
	}
}

func TestOptimalShapesStarDiffers(t *testing.T) {
	full, err := OptimalShapes(60, []partition.Ratio{partition.MustRatio(5, 2, 1)}, model.FullyConnected)
	if err != nil {
		t.Fatal(err)
	}
	star, err := OptimalShapes(60, []partition.Ratio{partition.MustRatio(5, 2, 1)}, model.Star)
	if err != nil {
		t.Fatal(err)
	}
	// Star must never be cheaper than fully connected for the same shape.
	for i := range full {
		for j := range full[i].Costs {
			f, s := full[i].Costs[j], star[i].Costs[j]
			if f.Feasible && s.Feasible && s.Total < f.Total-1e-12 {
				t.Errorf("%v %v %v: star cheaper than full", full[i].Ratio, full[i].Algorithm, f.Shape)
			}
		}
	}
}

func TestExampleRun(t *testing.T) {
	frames, res, err := ExampleRun(50, partition.MustRatio(2, 1, 1), 42, []int{0, 10, 20}, 25)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("example run did not converge")
	}
	for _, step := range []int{0, 10, 20, res.Steps} {
		f, ok := frames[step]
		if !ok {
			t.Fatalf("missing frame for step %d", step)
		}
		if lines := strings.Count(f, "\n"); lines != 25 {
			t.Errorf("frame %d has %d lines", step, lines)
		}
	}
}

func TestTraceRunMonotoneAndRoundTrip(t *testing.T) {
	tr, err := TraceRun(36, partition.MustRatio(3, 2, 1), 5)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Converged {
		t.Fatal("run did not converge")
	}
	if !tr.Monotone() {
		t.Fatal("VoC trace must never increase")
	}
	if len(tr.Points) < 10 {
		t.Fatalf("trace too short: %d points", len(tr.Points))
	}
	if tr.Points[0].Step != 0 {
		t.Fatal("trace should start at step 0")
	}
	if tr.Archetype == "Unknown" {
		t.Error("terminal state unclassified")
	}
	var buf strings.Builder
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Points) != len(tr.Points) || back.Ratio != tr.Ratio {
		t.Error("trace round trip lost data")
	}
	spark := tr.Sparkline(40)
	if len([]rune(spark)) != 40 {
		t.Errorf("sparkline length %d", len([]rune(spark)))
	}
	// The curve decays: first glyph should be the tallest level.
	if []rune(spark)[0] != '█' {
		t.Errorf("sparkline should start at the maximum: %q", spark)
	}
}

func TestReadTraceError(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("{bad")); err == nil {
		t.Error("bad trace JSON should error")
	}
}

func TestSparklineEdgeCases(t *testing.T) {
	empty := &Trace{}
	if empty.Sparkline(10) != "" {
		t.Error("empty trace sparkline should be empty")
	}
	flat := &Trace{Points: []TracePoint{{0, 5}, {1, 5}}}
	if s := flat.Sparkline(4); len([]rune(s)) != 4 {
		t.Errorf("flat sparkline %q", s)
	}
}

// TestCensusStopsOnError: the first failing run cancels the census — the
// error surfaces instead of the harness grinding through the remaining
// runs and ratios.
func TestCensusStopsOnError(t *testing.T) {
	bad := partition.Ratio{Pr: -1, Rr: 1, Sr: 1} // rejected by push.Run
	_, err := Census(CensusConfig{
		N:            16,
		RunsPerRatio: 4,
		Ratios:       []partition.Ratio{bad, partition.MustRatio(2, 1, 1)},
		Seed:         1,
	})
	if err == nil {
		t.Fatal("census swallowed the run error")
	}
	if !strings.Contains(err.Error(), "positive") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestCensusWorkerCountInvariance: the worker-pool size is a throughput
// knob only — archetype counts are identical for any worker count.
func TestCensusWorkerCountInvariance(t *testing.T) {
	base := CensusConfig{
		N:            24,
		RunsPerRatio: 10,
		Ratios:       []partition.Ratio{partition.MustRatio(3, 2, 1)},
		Seed:         9,
		Beautify:     true,
	}
	var want map[shape.Archetype]int
	for _, workers := range []int{1, 2, 7, 32} {
		cfg := base
		cfg.Workers = workers
		rows, err := Census(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = rows[0].Counts
			continue
		}
		for a, c := range want {
			if rows[0].Counts[a] != c {
				t.Fatalf("workers=%d: counts diverge: %v vs %v", workers, rows[0].Counts, want)
			}
		}
	}
}
