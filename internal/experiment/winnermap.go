package experiment

import (
	"context"
	"fmt"
	"io"

	"repro/internal/model"
	"repro/internal/partition"
)

// WinnerMap extends the Fig 13 comparison from two shapes to all six
// candidates: for every sampled ratio (Pr, Rr, Sr=1) it reports which
// candidate minimises the given algorithm's modelled execution time — a
// phase diagram of the optimal-shape problem over the ratio plane.
type WinnerMap struct {
	Algorithm model.Algorithm
	Topology  model.Topology
	RrMax     float64
	PrMax     float64
	Step      float64
	// Cells maps "Rr,Pr" sample coordinates to the winning shape.
	Cells map[[2]float64]partition.Shape
}

// ComputeWinnerMap samples the ratio plane on an n-cell grid basis (the
// shapes are constructed concretely so integral effects are included).
func ComputeWinnerMap(a model.Algorithm, topo model.Topology, rrMax, prMax, step float64, n int) (*WinnerMap, error) {
	return ComputeWinnerMapContext(context.Background(), a, topo, rrMax, prMax, step, n)
}

// ComputeWinnerMapContext is ComputeWinnerMap with cancellation between
// sampled rows of the ratio plane.
func ComputeWinnerMapContext(ctx context.Context, a model.Algorithm, topo model.Topology, rrMax, prMax, step float64, n int) (*WinnerMap, error) {
	if step <= 0 {
		step = 1
	}
	if n < 10 {
		return nil, &ConfigError{Field: "n", Reason: fmt.Sprintf("winner map needs n ≥ 10, got %d", n)}
	}
	wm := &WinnerMap{
		Algorithm: a, Topology: topo,
		RrMax: rrMax, PrMax: prMax, Step: step,
		Cells: make(map[[2]float64]partition.Shape),
	}
	for rr := 1.0; rr <= rrMax+1e-9; rr += step {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("experiment: winner map interrupted: %w", err)
		}
		for pr := rr; pr <= prMax+1e-9; pr += step {
			ratio := partition.MustRatio(pr, rr, 1)
			m := model.DefaultMachine(ratio)
			m.Topology = topo
			bestTotal := -1.0
			var best partition.Shape
			for _, s := range partition.AllShapes {
				g, err := partition.Build(s, n, ratio)
				if err != nil {
					continue
				}
				total := model.EvaluateGrid(a, m, g).Total
				if bestTotal < 0 || total < bestTotal {
					bestTotal, best = total, s
				}
			}
			if bestTotal < 0 {
				return nil, fmt.Errorf("experiment: no feasible shape at Pr=%v Rr=%v", pr, rr)
			}
			wm.Cells[[2]float64{rr, pr}] = best
		}
	}
	return wm, nil
}

// shapeGlyph assigns one letter per candidate for the ASCII phase diagram.
func shapeGlyph(s partition.Shape) byte {
	switch s {
	case partition.SquareCorner:
		return 'C' // square-Corner
	case partition.RectangleCorner:
		return 'r'
	case partition.SquareRectangle:
		return 'Q'
	case partition.BlockRectangle:
		return 'B'
	case partition.LRectangle:
		return 'L'
	case partition.TraditionalRectangle:
		return 'T'
	}
	return '?'
}

// Write renders the phase diagram: Pr increases downward, Rr rightward;
// '.' marks the Pr < Rr region excluded by the ratio ordering.
func (wm *WinnerMap) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "winner map: %v, %v topology (C=Square-Corner r=Rectangle-Corner Q=Square-Rectangle B=Block-Rectangle L=L-Rectangle T=Traditional)\n",
		wm.Algorithm, wm.Topology); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "rows: Pr = 1..%g (top to bottom); cols: Rr = 1..%g (left to right); step %g\n",
		wm.PrMax, wm.RrMax, wm.Step); err != nil {
		return err
	}
	for pr := 1.0; pr <= wm.PrMax+1e-9; pr += wm.Step {
		line := make([]byte, 0, int(wm.RrMax/wm.Step)+2)
		for rr := 1.0; rr <= wm.RrMax+1e-9; rr += wm.Step {
			if s, ok := wm.Cells[[2]float64{rr, pr}]; ok {
				line = append(line, shapeGlyph(s))
			} else {
				line = append(line, '.')
			}
		}
		if _, err := fmt.Fprintf(w, "Pr=%5.1f %s\n", pr, line); err != nil {
			return err
		}
	}
	return nil
}

// Count returns how many sampled cells each shape wins.
func (wm *WinnerMap) Count() map[partition.Shape]int {
	out := make(map[partition.Shape]int)
	for _, s := range wm.Cells {
		out[s]++
	}
	return out
}
