package experiment

import (
	"context"
	"fmt"
	"io"

	"repro/internal/model"
	"repro/internal/partition"
)

// WinnerMap extends the Fig 13 comparison from two shapes to all six
// candidates: for every sampled ratio (Pr, Rr, Sr=1) it reports which
// candidate minimises the given algorithm's modelled execution time — a
// phase diagram of the optimal-shape problem over the ratio plane.
type WinnerMap struct {
	Algorithm model.Algorithm
	Topology  model.Topology
	RrMax     float64
	PrMax     float64
	Step      float64
	// Cells maps "Rr,Pr" sample coordinates to the winning shape.
	Cells map[[2]float64]partition.Shape
}

// ComputeWinnerMap samples the ratio plane on an n-cell grid basis (the
// shapes are constructed concretely so integral effects are included).
func ComputeWinnerMap(a model.Algorithm, topo model.Topology, rrMax, prMax, step float64, n int) (*WinnerMap, error) {
	return ComputeWinnerMapContext(context.Background(), a, topo, rrMax, prMax, step, n)
}

// ComputeWinnerMapContext is ComputeWinnerMap with cancellation between
// sampled rows of the ratio plane.
func ComputeWinnerMapContext(ctx context.Context, a model.Algorithm, topo model.Topology, rrMax, prMax, step float64, n int) (*WinnerMap, error) {
	if step <= 0 {
		step = 1
	}
	if n < 10 {
		return nil, &ConfigError{Field: "n", Reason: fmt.Sprintf("winner map needs n ≥ 10, got %d", n)}
	}
	wm := &WinnerMap{
		Algorithm: a, Topology: topo,
		RrMax: rrMax, PrMax: prMax, Step: step,
		Cells: make(map[[2]float64]partition.Shape),
	}
	for rr := 1.0; rr <= rrMax+1e-9; rr += step {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("experiment: winner map interrupted: %w", err)
		}
		for pr := rr; pr <= prMax+1e-9; pr += step {
			cell, err := EvaluateCell(a, topo, partition.MustRatio(pr, rr, 1), n)
			if err != nil {
				return nil, fmt.Errorf("experiment: no feasible shape at Pr=%v Rr=%v", pr, rr)
			}
			wm.Cells[[2]float64{rr, pr}] = cell.Winner
		}
	}
	return wm, nil
}

// CellResult is the optimal-candidate decision at one sampled ratio: the
// winning canonical shape with its communication volume and modelled
// execution-time breakdown.
type CellResult struct {
	Winner    partition.Shape
	VoC       int64
	Breakdown model.Breakdown
}

// EvaluateCell compares the six candidate canonical shapes at one ratio
// sample and returns the winner by modelled execution time — the per-cell
// kernel shared by the winner map and the shape-atlas sweep
// (internal/atlas). Candidate order and strict-less tie-breaking match
// the Section X methodology (heteropart.Optimal), so a cell's winner here
// is the same shape an online plan request would be served.
func EvaluateCell(a model.Algorithm, topo model.Topology, ratio partition.Ratio, n int) (CellResult, error) {
	m := model.DefaultMachine(ratio)
	m.Topology = topo
	res := CellResult{}
	bestTotal := -1.0
	for _, s := range partition.AllShapes {
		g, err := partition.Build(s, n, ratio)
		if err != nil {
			continue
		}
		br := model.EvaluateGrid(a, m, g)
		if bestTotal < 0 || br.Total < bestTotal {
			bestTotal = br.Total
			res.Winner, res.VoC, res.Breakdown = s, g.VoC(), br
		}
	}
	if bestTotal < 0 {
		return CellResult{}, fmt.Errorf("experiment: no feasible shape for ratio %v", ratio)
	}
	return res, nil
}

// ShapeGlyph assigns one letter per candidate for ASCII phase diagrams
// (the winner map here and the atlas dump in internal/atlas).
func ShapeGlyph(s partition.Shape) byte {
	switch s {
	case partition.SquareCorner:
		return 'C' // square-Corner
	case partition.RectangleCorner:
		return 'r'
	case partition.SquareRectangle:
		return 'Q'
	case partition.BlockRectangle:
		return 'B'
	case partition.LRectangle:
		return 'L'
	case partition.TraditionalRectangle:
		return 'T'
	}
	return '?'
}

// Write renders the phase diagram: Pr increases downward, Rr rightward;
// '.' marks the Pr < Rr region excluded by the ratio ordering.
func (wm *WinnerMap) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "winner map: %v, %v topology (C=Square-Corner r=Rectangle-Corner Q=Square-Rectangle B=Block-Rectangle L=L-Rectangle T=Traditional)\n",
		wm.Algorithm, wm.Topology); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "rows: Pr = 1..%g (top to bottom); cols: Rr = 1..%g (left to right); step %g\n",
		wm.PrMax, wm.RrMax, wm.Step); err != nil {
		return err
	}
	for pr := 1.0; pr <= wm.PrMax+1e-9; pr += wm.Step {
		line := make([]byte, 0, int(wm.RrMax/wm.Step)+2)
		for rr := 1.0; rr <= wm.RrMax+1e-9; rr += wm.Step {
			if s, ok := wm.Cells[[2]float64{rr, pr}]; ok {
				line = append(line, ShapeGlyph(s))
			} else {
				line = append(line, '.')
			}
		}
		if _, err := fmt.Fprintf(w, "Pr=%5.1f %s\n", pr, line); err != nil {
			return err
		}
	}
	return nil
}

// Count returns how many sampled cells each shape wins.
func (wm *WinnerMap) Count() map[partition.Shape]int {
	out := make(map[partition.Shape]int)
	for _, s := range wm.Cells {
		out[s]++
	}
	return out
}
