package experiment

import (
	"context"
	"fmt"
	"io"

	"repro/internal/model"
	"repro/internal/partition"
)

// WinnerMap extends the Fig 13 comparison from two shapes to all six
// candidates: for every sampled ratio (Pr, Rr, Sr=1) it reports which
// candidate minimises the given algorithm's modelled execution time — a
// phase diagram of the optimal-shape problem over the ratio plane.
type WinnerMap struct {
	Algorithm model.Algorithm
	Topology  model.Topology
	// Label names the topology class when the map was computed under a
	// topology spec (ComputeWinnerMapSpec); empty for the legacy maps,
	// which label themselves with Topology.
	Label string
	RrMax float64
	PrMax float64
	Step  float64
	// Cells maps "Rr,Pr" sample coordinates to the winning shape.
	Cells map[[2]float64]partition.Shape
}

// TopologyClass is one interconnect scenario of the §IX–X re-run: a
// human-readable name plus the topology spec that prices it.
type TopologyClass struct {
	// Name labels the class in reports and golden files.
	Name string
	// Spec is the wire-grammar topology ("", "2+1:10", ...).
	Spec string
}

// TopologyClasses are the three interconnect classes the winner-map
// census re-runs the Section IX–X methodology over: the paper's uniform
// fully connected network, a 2+1 placement (P and R share a node, S is
// 10× farther), and three islands (every link 10× slower than the base).
func TopologyClasses() []TopologyClass {
	return []TopologyClass{
		{Name: "uniform", Spec: ""},
		{Name: "2+1", Spec: "2+1:10"},
		{Name: "3-island", Spec: "3-island:10"},
	}
}

// ComputeWinnerMap samples the ratio plane on an n-cell grid basis (the
// shapes are constructed concretely so integral effects are included).
func ComputeWinnerMap(a model.Algorithm, topo model.Topology, rrMax, prMax, step float64, n int) (*WinnerMap, error) {
	return ComputeWinnerMapContext(context.Background(), a, topo, rrMax, prMax, step, n)
}

// ComputeWinnerMapContext is ComputeWinnerMap with cancellation between
// sampled rows of the ratio plane.
func ComputeWinnerMapContext(ctx context.Context, a model.Algorithm, topo model.Topology, rrMax, prMax, step float64, n int) (*WinnerMap, error) {
	wm := &WinnerMap{Algorithm: a, Topology: topo, RrMax: rrMax, PrMax: prMax, Step: step}
	err := fillWinnerMap(ctx, wm, n, func(ratio partition.Ratio) (CellResult, error) {
		return EvaluateCell(a, topo, ratio, n)
	})
	if err != nil {
		return nil, err
	}
	return wm, nil
}

// ComputeWinnerMapSpec samples the ratio plane under a topology spec —
// the per-link cost-model generalisation of ComputeWinnerMap. The label
// names the class in the rendered diagram.
func ComputeWinnerMapSpec(ctx context.Context, a model.Algorithm, label, spec string, rrMax, prMax, step float64, n int) (*WinnerMap, error) {
	ts, err := model.ParseTopologySpec(spec)
	if err != nil {
		return nil, err
	}
	topo := model.FullyConnected
	if legacy, ok := ts.Legacy(); ok {
		topo = legacy
	}
	wm := &WinnerMap{Algorithm: a, Topology: topo, Label: label, RrMax: rrMax, PrMax: prMax, Step: step}
	err = fillWinnerMap(ctx, wm, n, func(ratio partition.Ratio) (CellResult, error) {
		return EvaluateCellSpec(a, ts, ratio, n)
	})
	if err != nil {
		return nil, err
	}
	return wm, nil
}

// fillWinnerMap runs the ratio-plane sweep shared by the legacy and the
// spec-based winner maps.
func fillWinnerMap(ctx context.Context, wm *WinnerMap, n int, cell func(partition.Ratio) (CellResult, error)) error {
	if wm.Step <= 0 {
		wm.Step = 1
	}
	if n < 10 {
		return &ConfigError{Field: "n", Reason: fmt.Sprintf("winner map needs n ≥ 10, got %d", n)}
	}
	wm.Cells = make(map[[2]float64]partition.Shape)
	for rr := 1.0; rr <= wm.RrMax+1e-9; rr += wm.Step {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("experiment: winner map interrupted: %w", err)
		}
		for pr := rr; pr <= wm.PrMax+1e-9; pr += wm.Step {
			res, err := cell(partition.MustRatio(pr, rr, 1))
			if err != nil {
				return fmt.Errorf("experiment: no feasible shape at Pr=%v Rr=%v", pr, rr)
			}
			wm.Cells[[2]float64{rr, pr}] = res.Winner
		}
	}
	return nil
}

// CellResult is the optimal-candidate decision at one sampled ratio: the
// winning canonical shape with its communication volume and modelled
// execution-time breakdown.
type CellResult struct {
	Winner    partition.Shape
	VoC       int64
	Breakdown model.Breakdown
}

// EvaluateCell compares the six candidate canonical shapes at one ratio
// sample and returns the winner by modelled execution time — the per-cell
// kernel shared by the winner map and the shape-atlas sweep
// (internal/atlas). Candidate order and strict-less tie-breaking match
// the Section X methodology (heteropart.Optimal), so a cell's winner here
// is the same shape an online plan request would be served.
func EvaluateCell(a model.Algorithm, topo model.Topology, ratio partition.Ratio, n int) (CellResult, error) {
	m := model.DefaultMachine(ratio)
	m.Topology = topo
	return evaluateCellMachine(a, m, ratio, n)
}

// EvaluateCellSpec is EvaluateCell under a topology spec: the machine is
// the default platform with the spec applied (per-link cost model for the
// non-legacy classes), so the winner reflects the priced interconnect.
func EvaluateCellSpec(a model.Algorithm, spec model.TopologySpec, ratio partition.Ratio, n int) (CellResult, error) {
	m := spec.Apply(model.DefaultMachine(ratio))
	return evaluateCellMachine(a, m, ratio, n)
}

func evaluateCellMachine(a model.Algorithm, m model.Machine, ratio partition.Ratio, n int) (CellResult, error) {
	res := CellResult{}
	bestTotal := -1.0
	for _, s := range partition.AllShapes {
		g, err := partition.Build(s, n, ratio)
		if err != nil {
			continue
		}
		br := model.EvaluateGrid(a, m, g)
		if bestTotal < 0 || br.Total < bestTotal {
			bestTotal = br.Total
			res.Winner, res.VoC, res.Breakdown = s, g.VoC(), br
		}
	}
	if bestTotal < 0 {
		return CellResult{}, fmt.Errorf("experiment: no feasible shape for ratio %v", ratio)
	}
	return res, nil
}

// ShapeGlyph assigns one letter per candidate for ASCII phase diagrams
// (the winner map here and the atlas dump in internal/atlas).
func ShapeGlyph(s partition.Shape) byte {
	switch s {
	case partition.SquareCorner:
		return 'C' // square-Corner
	case partition.RectangleCorner:
		return 'r'
	case partition.SquareRectangle:
		return 'Q'
	case partition.BlockRectangle:
		return 'B'
	case partition.LRectangle:
		return 'L'
	case partition.TraditionalRectangle:
		return 'T'
	}
	return '?'
}

// topoLabel names the interconnect in the rendered diagram: the class
// label for spec-based maps, the legacy topology name otherwise (so the
// legacy output bytes are unchanged).
func (wm *WinnerMap) topoLabel() string {
	if wm.Label != "" {
		return wm.Label
	}
	return wm.Topology.String()
}

// Write renders the phase diagram: Pr increases downward, Rr rightward;
// '.' marks the Pr < Rr region excluded by the ratio ordering.
func (wm *WinnerMap) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "winner map: %v, %v topology (C=Square-Corner r=Rectangle-Corner Q=Square-Rectangle B=Block-Rectangle L=L-Rectangle T=Traditional)\n",
		wm.Algorithm, wm.topoLabel()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "rows: Pr = 1..%g (top to bottom); cols: Rr = 1..%g (left to right); step %g\n",
		wm.PrMax, wm.RrMax, wm.Step); err != nil {
		return err
	}
	for pr := 1.0; pr <= wm.PrMax+1e-9; pr += wm.Step {
		line := make([]byte, 0, int(wm.RrMax/wm.Step)+2)
		for rr := 1.0; rr <= wm.RrMax+1e-9; rr += wm.Step {
			if s, ok := wm.Cells[[2]float64{rr, pr}]; ok {
				line = append(line, ShapeGlyph(s))
			} else {
				line = append(line, '.')
			}
		}
		if _, err := fmt.Fprintf(w, "Pr=%5.1f %s\n", pr, line); err != nil {
			return err
		}
	}
	return nil
}

// Count returns how many sampled cells each shape wins.
func (wm *WinnerMap) Count() map[partition.Shape]int {
	out := make(map[partition.Shape]int)
	for _, s := range wm.Cells {
		out[s]++
	}
	return out
}

// Diff returns the sample coordinates at which the two maps disagree on
// the winner (cells present in either map; a cell missing from one map
// counts as a disagreement). Used by the topology census to quantify how
// an interconnect class moves the phase boundaries.
func (wm *WinnerMap) Diff(other *WinnerMap) [][2]float64 {
	var out [][2]float64
	for c, s := range wm.Cells {
		if o, ok := other.Cells[c]; !ok || o != s {
			out = append(out, c)
		}
	}
	for c := range other.Cells {
		if _, ok := wm.Cells[c]; !ok {
			out = append(out, c)
		}
	}
	return out
}
