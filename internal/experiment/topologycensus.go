package experiment

import (
	"context"
	"fmt"
	"io"
	"sort"

	"repro/internal/model"
)

// The topology census re-runs the Section IX–X winner-map methodology
// once per interconnect class (TopologyClasses) and quantifies how each
// class moves the phase boundaries relative to the paper's uniform
// network. It is the experiment behind the winner-map-by-topology table
// in EXPERIMENTS.md and the CI census smoke step.

// CensusEntry is one class's winner map plus its disagreement with the
// uniform baseline.
type CensusEntry struct {
	Class TopologyClass
	Map   *WinnerMap
	// Flips counts sampled cells whose winner differs from the uniform
	// baseline (zero for the baseline itself).
	Flips int
}

// RunTopologyCensus computes the winner map for every topology class
// over the same ratio-plane sample. The first entry is always the
// uniform baseline.
func RunTopologyCensus(ctx context.Context, a model.Algorithm, rrMax, prMax, step float64, n int) ([]CensusEntry, error) {
	var out []CensusEntry
	for _, tc := range TopologyClasses() {
		wm, err := ComputeWinnerMapSpec(ctx, a, tc.Name, tc.Spec, rrMax, prMax, step, n)
		if err != nil {
			return nil, fmt.Errorf("experiment: census class %s: %w", tc.Name, err)
		}
		e := CensusEntry{Class: tc, Map: wm}
		if len(out) > 0 {
			e.Flips = len(wm.Diff(out[0].Map))
		}
		out = append(out, e)
	}
	return out, nil
}

// WriteCensus renders the census: each class's phase diagram followed by
// a per-class flip summary against the uniform baseline.
func WriteCensus(w io.Writer, entries []CensusEntry) error {
	for _, e := range entries {
		if err := e.Map.Write(w); err != nil {
			return err
		}
	}
	for _, e := range entries[1:] {
		if _, err := fmt.Fprintf(w, "class %s: %d cells change winner vs uniform\n", e.Class.Name, e.Flips); err != nil {
			return err
		}
	}
	return nil
}

// CensusFlipSummary returns, for one non-baseline entry, the flipped
// cells in deterministic (Rr, then Pr) order as "Rr=… Pr=… old→new"
// lines — the census's evidence trail.
func CensusFlipSummary(base, e CensusEntry) []string {
	cells := e.Map.Diff(base.Map)
	sort.Slice(cells, func(i, j int) bool {
		if cells[i][0] != cells[j][0] {
			return cells[i][0] < cells[j][0]
		}
		return cells[i][1] < cells[j][1]
	})
	out := make([]string, 0, len(cells))
	for _, c := range cells {
		out = append(out, fmt.Sprintf("Rr=%g Pr=%g %v→%v",
			c[0], c[1], base.Map.Cells[c], e.Map.Cells[c]))
	}
	return out
}
