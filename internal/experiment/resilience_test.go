package experiment

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/partition"
)

// censusTestConfig is a small census every resilience test shares: one
// ratio, few runs, tiny N, fixed worker count so schedules vary but
// results must not.
func censusTestConfig() CensusConfig {
	return CensusConfig{
		N:            16,
		RunsPerRatio: 8,
		Ratios:       []partition.Ratio{partition.MustRatio(3, 1, 1)},
		Seed:         42,
		Beautify:     true,
		Workers:      3,
		RetryBackoff: -1, // no sleeping in tests
	}
}

func TestCensusValidationTyped(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*CensusConfig)
	}{
		{"small N", func(c *CensusConfig) { c.N = 5 }},
		{"zero runs", func(c *CensusConfig) { c.RunsPerRatio = 0 }},
		{"negative runs", func(c *CensusConfig) { c.RunsPerRatio = -3 }},
		{"bad ratio", func(c *CensusConfig) { c.Ratios = []partition.Ratio{{}} }},
		{"resume without journal", func(c *CensusConfig) { c.Resume = true; c.Journal = "" }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := censusTestConfig()
			tc.mut(&cfg)
			_, err := Census(cfg)
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("err = %v, want *ConfigError", err)
			}
		})
	}
}

func TestPushAblationValidationTyped(t *testing.T) {
	var ce *ConfigError
	if _, err := PushAblation(20, partition.MustRatio(2, 1, 1), 0, 1); !errors.As(err, &ce) {
		t.Fatalf("runs=0: err = %v, want *ConfigError", err)
	}
	if _, err := PushAblation(20, partition.Ratio{}, 3, 1); !errors.As(err, &ce) {
		t.Fatalf("zero ratio: err = %v, want *ConfigError", err)
	}
}

func TestCensusCancelledReturnsPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rows, err := CensusContext(ctx, censusTestConfig())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// At most the first ratio's (empty) partial row can come back.
	for _, r := range rows {
		if r.Completed != 0 {
			t.Fatalf("pre-cancelled census completed %d runs", r.Completed)
		}
	}
}

// TestCensusJournalResumeBitIdentical is the acceptance scenario: a
// journaled census interrupted mid-flight and resumed must reproduce the
// uninterrupted rows bit for bit, including the float means.
func TestCensusJournalResumeBitIdentical(t *testing.T) {
	baseline, err := Census(censusTestConfig())
	if err != nil {
		t.Fatal(err)
	}

	for _, chop := range []int{0, 7} {
		t.Run(fmt.Sprintf("chop=%d", chop), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "census.jsonl")

			// Interrupt the census after three runs have been dispatched:
			// the hook cancels the context, so in-flight runs abort and
			// only journaled completions survive.
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var calls atomic.Int64
			cfg := censusTestConfig()
			cfg.Journal = path
			cfg.runHook = func(_, _, _ int) {
				if calls.Add(1) == 4 {
					cancel()
				}
			}
			if _, err := CensusContext(ctx, cfg); !errors.Is(err, context.Canceled) {
				t.Fatalf("interrupted census: err = %v, want context.Canceled", err)
			}

			if chop > 0 {
				// Simulate a SIGKILL torn write: chop bytes off the tail.
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if len(data) > chop {
					if err := os.WriteFile(path, data[:len(data)-chop], 0o644); err != nil {
						t.Fatal(err)
					}
				}
			}

			resumed := censusTestConfig()
			resumed.Journal = path
			resumed.Resume = true
			rows, err := Census(resumed)
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			if !reflect.DeepEqual(rows, baseline) {
				t.Fatalf("resumed rows differ from uninterrupted census:\n got %+v\nwant %+v", rows, baseline)
			}
		})
	}
}

func TestCensusResumeRejectsMismatchedJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "census.jsonl")
	cfg := censusTestConfig()
	cfg.Journal = path
	if _, err := Census(cfg); err != nil {
		t.Fatal(err)
	}
	other := censusTestConfig()
	other.Journal = path
	other.Resume = true
	other.Seed++ // different study identity
	if _, err := Census(other); !errors.Is(err, ErrJournalMismatch) {
		t.Fatalf("err = %v, want ErrJournalMismatch", err)
	}
}

func TestCensusJournalRefusesOverwrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "census.jsonl")
	cfg := censusTestConfig()
	cfg.Journal = path
	if _, err := Census(cfg); err != nil {
		t.Fatal(err)
	}
	// Without Resume, an existing journal must not be clobbered.
	if _, err := Census(cfg); !errors.Is(err, os.ErrExist) {
		t.Fatalf("err = %v, want os.ErrExist", err)
	}
}

// TestCensusPanicRetrySucceeds injects a one-shot worker crash: the run
// panics on its first attempt, succeeds on the retry, and the census
// output is indistinguishable from a clean one.
func TestCensusPanicRetrySucceeds(t *testing.T) {
	baseline, err := Census(censusTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := censusTestConfig()
	cfg.runHook = func(ri, run, attempt int) {
		if ri == 0 && run == 2 && attempt == 0 {
			panic("injected transient crash")
		}
	}
	rows, err := Census(cfg)
	if err != nil {
		t.Fatalf("census with transient panic: %v", err)
	}
	if !reflect.DeepEqual(rows, baseline) {
		t.Fatalf("retried census differs from clean run:\n got %+v\nwant %+v", rows, baseline)
	}
}

// TestCensusPanicQuarantine injects a deterministic crash: every attempt
// of one run panics, the run is quarantined, and the census still
// completes with a typed aggregate error.
func TestCensusPanicQuarantine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "census.jsonl")
	cfg := censusTestConfig()
	cfg.Journal = path
	cfg.runHook = func(ri, run, attempt int) {
		if ri == 0 && run == 5 {
			panic("injected permanent crash")
		}
	}
	rows, err := Census(cfg)
	var qe *QuarantineError
	if !errors.As(err, &qe) {
		t.Fatalf("err = %v, want *QuarantineError", err)
	}
	if len(qe.Failures) != 1 {
		t.Fatalf("quarantined %d runs, want 1", len(qe.Failures))
	}
	f := qe.Failures[0]
	if f.RatioIndex != 0 || f.Run != 5 {
		t.Fatalf("quarantined (%d,%d), want (0,5)", f.RatioIndex, f.Run)
	}
	if f.Attempts != 2 { // default budget: 1 retry → 2 attempts
		t.Fatalf("Attempts = %d, want 2", f.Attempts)
	}
	if f.Seed != cfg.Seed+5 {
		t.Fatalf("Seed = %d, want %d", f.Seed, cfg.Seed+5)
	}
	if f.Err == "" || f.Err != "injected permanent crash" {
		t.Fatalf("Err = %q", f.Err)
	}

	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1 (census must survive the quarantine)", len(rows))
	}
	row := rows[0]
	if row.Failed != 1 {
		t.Fatalf("row.Failed = %d, want 1", row.Failed)
	}
	if row.Completed != cfg.RunsPerRatio {
		t.Fatalf("row.Completed = %d, want %d", row.Completed, cfg.RunsPerRatio)
	}
	total := 0
	for _, c := range row.Counts {
		total += c
	}
	if total != cfg.RunsPerRatio-1 {
		t.Fatalf("aggregated %d runs, want %d (quarantined run excluded)", total, cfg.RunsPerRatio-1)
	}

	// The quarantine is durable: a resume replays it from the journal
	// without re-running the crashing seed (no hook installed here).
	resumed := censusTestConfig()
	resumed.Journal = path
	resumed.Resume = true
	rows2, err := Census(resumed)
	if !errors.As(err, &qe) {
		t.Fatalf("resumed err = %v, want *QuarantineError", err)
	}
	if !reflect.DeepEqual(rows2, rows) {
		t.Fatalf("resumed rows differ:\n got %+v\nwant %+v", rows2, rows)
	}
}

func TestCensusRetryBudgetExhaustedOnlyAfterRetries(t *testing.T) {
	// MaxRetries=3 → 4 attempts; a run that stops panicking on its last
	// attempt must not be quarantined.
	cfg := censusTestConfig()
	cfg.MaxRetries = 3
	cfg.runHook = func(ri, run, attempt int) {
		if ri == 0 && run == 1 && attempt < 3 {
			panic("crashes thrice")
		}
	}
	rows, err := Census(cfg)
	if err != nil {
		t.Fatalf("err = %v, want success on the 4th attempt", err)
	}
	if rows[0].Failed != 0 {
		t.Fatalf("Failed = %d, want 0", rows[0].Failed)
	}
}

func TestFig14SweepContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Fig14SweepContext(ctx, nil, 1000, 40); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestOptimalShapesContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := OptimalShapesContext(ctx, 40, nil, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
