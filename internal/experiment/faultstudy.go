package experiment

import (
	"context"
	"fmt"
	"io"
	"math"

	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/sim"
)

// FaultRow reports one candidate shape's simulated execution time on a
// clean platform and under a fault plan — the robustness counterpart of
// the Section X optimal-shape comparison. The paper's clean model picks
// a winner assuming speeds and links hold; this study asks which shapes
// keep their advantage when a processor straggles or a link degrades.
type FaultRow struct {
	Shape    partition.Shape
	Feasible bool
	// Clean and Faulted are simulated TExe seconds.
	Clean, Faulted float64
	// Degradation is Faulted/Clean − 1 (0 = unaffected).
	Degradation float64
}

// FaultStudy simulates all six candidate shapes for (algorithm, ratio,
// topology) twice — once clean, once under the fault plan returned by
// plan — and reports each shape's degradation. plan receives the horizon
// (the largest clean makespan across feasible shapes) so fault windows
// can be phrased relative to the study's own time scale.
func FaultStudy(ctx context.Context, a model.Algorithm, topo model.Topology, n int, ratio partition.Ratio, plan func(horizon float64) (*sim.FaultPlan, error)) ([]FaultRow, error) {
	if n < 10 {
		return nil, &ConfigError{Field: "n", Reason: fmt.Sprintf("fault study needs n ≥ 10, got %d", n)}
	}
	if err := ratio.Validate(); err != nil {
		return nil, &ConfigError{Field: "ratio", Reason: err.Error()}
	}
	if plan == nil {
		return nil, &ConfigError{Field: "plan", Reason: "fault-plan factory must be non-nil"}
	}
	m := model.DefaultMachine(ratio)
	m.Topology = topo

	// Pass 1: clean baselines and the horizon.
	rows := make([]FaultRow, 0, len(partition.AllShapes))
	horizon := 0.0
	for _, s := range partition.AllShapes {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("experiment: fault study interrupted: %w", err)
		}
		row := FaultRow{Shape: s}
		g, err := partition.Build(s, n, ratio)
		if err == nil {
			res, err := sim.Simulate(a, m, g, 0)
			if err != nil {
				return nil, err
			}
			row.Feasible = true
			row.Clean = res.TExe
			horizon = math.Max(horizon, res.TExe)
		}
		rows = append(rows, row)
	}

	fp, err := plan(horizon)
	if err != nil {
		return nil, err
	}

	// Pass 2: the same shapes under the plan.
	for i := range rows {
		if !rows[i].Feasible {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("experiment: fault study interrupted: %w", err)
		}
		g, err := partition.Build(rows[i].Shape, n, ratio)
		if err != nil {
			return nil, err
		}
		res, err := sim.SimulateFaults(a, m, g, 0, fp)
		if err != nil {
			return nil, err
		}
		rows[i].Faulted = res.TExe
		if rows[i].Clean > 0 {
			rows[i].Degradation = rows[i].Faulted/rows[i].Clean - 1
		}
	}
	return rows, nil
}

// CanonicalFaultPlan is the default fault scenario of the study: the
// fastest processor P straggles at half speed for the whole run, R's
// link carries a quarter of its bandwidth during the middle half of the
// clean horizon (a flapping link), and S suffers a latency spike worth
// 2% of the horizon early in the run.
func CanonicalFaultPlan(horizon float64) (*sim.FaultPlan, error) {
	if horizon <= 0 {
		// Degenerate studies (no feasible shape, zero makespan) get a
		// plan that can never fire.
		horizon = 1
	}
	fp := sim.NewFaultPlan()
	if err := fp.AddStraggler(partition.P, 2, 0, math.Inf(1)); err != nil {
		return nil, err
	}
	if err := fp.AddLinkDegrade(partition.R, 4, 0.25*horizon, 0.75*horizon); err != nil {
		return nil, err
	}
	if err := fp.AddLatencySpike(partition.S, 0.02*horizon, 0, 0.5*horizon); err != nil {
		return nil, err
	}
	return fp, nil
}

// FaultWinners returns the best feasible shape by clean and by faulted
// simulated time — a changed winner is the study's headline finding.
func FaultWinners(rows []FaultRow) (clean, faulted partition.Shape) {
	bestClean, bestFaulted := math.Inf(1), math.Inf(1)
	for _, r := range rows {
		if !r.Feasible {
			continue
		}
		if r.Clean < bestClean {
			bestClean, clean = r.Clean, r.Shape
		}
		if r.Faulted < bestFaulted {
			bestFaulted, faulted = r.Faulted, r.Shape
		}
	}
	return clean, faulted
}

// WriteFaultTable renders the study as a markdown table.
func WriteFaultTable(w io.Writer, rows []FaultRow) error {
	if _, err := fmt.Fprintln(w, "| shape | clean (s) | faulted (s) | degradation |"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "|---|---|---|---|"); err != nil {
		return err
	}
	for _, r := range rows {
		if !r.Feasible {
			if _, err := fmt.Fprintf(w, "| %s | infeasible | - | - |\n", r.Shape); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "| %s | %.6f | %.6f | %+.1f%% |\n",
			r.Shape, r.Clean, r.Faulted, 100*r.Degradation); err != nil {
			return err
		}
	}
	clean, faulted := FaultWinners(rows)
	if _, err := fmt.Fprintf(w, "\nwinner clean: %s; winner under faults: %s\n", clean, faulted); err != nil {
		return err
	}
	return nil
}
