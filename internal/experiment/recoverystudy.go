package experiment

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/exec"
	"repro/internal/matrix"
	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/sim"
)

// RecoveryRow reports one fault scenario of the recovery study: a worker
// killed at a progress fraction mid-multiply, the run completing on the
// survivors via the engine's 3→2 re-plan.
type RecoveryRow struct {
	Algorithm string  `json:"algorithm"`
	Victim    string  `json:"victim"`
	KillFrac  float64 `json:"kill_frac"`
	// BitExact records whether the recovered product matched the serial
	// kij kernel bit for bit.
	BitExact bool `json:"bit_exact"`
	// Survivors is how many workers finished the run; Kind is the
	// recovery re-plan kind ("replan-2proc" for a single loss).
	Survivors int    `json:"survivors"`
	Kind      string `json:"kind"`
	// CleanVolume is the planned exchange volume (= the partition's VoC);
	// RecoveryVolume is the extra elements redistributed to survivors;
	// RemainderNeed is what a from-scratch redistribution of the
	// re-planned remainder would move. The acceptance bound is
	// RecoveryVolume < 2×RemainderNeed.
	CleanVolume    int64 `json:"clean_volume"`
	RecoveryVolume int64 `json:"recovery_volume"`
	RemainderNeed  int64 `json:"remainder_need"`
	BoundOK        bool  `json:"bound_ok"`
	// CleanWallMS and FaultedWallMS are real elapsed milliseconds of the
	// fault-free and faulted runs; WallPenalty is their ratio − 1.
	CleanWallMS   float64 `json:"clean_wall_ms"`
	FaultedWallMS float64 `json:"faulted_wall_ms"`
	WallPenalty   float64 `json:"wall_penalty"`
	// RecoveryLatencyMS is the stall between the victim's final heartbeat
	// and its work being re-planned onto the survivors.
	RecoveryLatencyMS float64 `json:"recovery_latency_ms"`
}

// RecoveryStudyConfig parameterises RecoveryStudy. The zero value is
// completed with the defaults documented per field.
type RecoveryStudyConfig struct {
	// N is the matrix dimension (default 64).
	N int
	// Ratio is the processor speed ratio (default 3:2:1).
	Ratio partition.Ratio
	// Shape is the candidate partition shape; it is honoured only when
	// ShapeSet is true, because Square-Corner is the Shape zero value.
	// Unset, the study uses Block-Rectangle, which is feasible at every
	// ratio and size.
	Shape    partition.Shape
	ShapeSet bool
	// Victim is the worker to kill (default R, the middle processor).
	Victim partition.Proc
	// KillFracs are the progress fractions at which the victim dies
	// (default 0.1, 0.5, 0.9).
	KillFracs []float64
	// Algorithms are the barrier algorithms to study (default SCB, PCB).
	Algorithms []model.Algorithm
	// Seed seeds the input matrices (default 1).
	Seed int64
}

func (c *RecoveryStudyConfig) fill() error {
	if c.N == 0 {
		c.N = 64
	}
	if c.N < 16 {
		return &ConfigError{Field: "n", Reason: fmt.Sprintf("recovery study needs n ≥ 16, got %d", c.N)}
	}
	if c.Ratio == (partition.Ratio{}) {
		c.Ratio = partition.MustRatio(3, 2, 1)
	}
	if err := c.Ratio.Validate(); err != nil {
		return &ConfigError{Field: "ratio", Reason: err.Error()}
	}
	if !c.ShapeSet {
		c.Shape = partition.BlockRectangle
	}
	if len(c.KillFracs) == 0 {
		c.KillFracs = []float64{0.1, 0.5, 0.9}
	}
	if len(c.Algorithms) == 0 {
		c.Algorithms = []model.Algorithm{model.SCB, model.PCB}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return nil
}

// RecoveryStudy measures the execution engine's fault-recovery overhead:
// for each (algorithm, kill fraction) it runs the multiplication once
// clean and once with the victim killed mid-run, and reports the
// redistribution volume, the wall-clock penalty and the recovery
// latency, with every faulted product checked bit-exact against the
// serial kij kernel. It is the §X-B experiment under induced node loss.
func RecoveryStudy(ctx context.Context, cfg RecoveryStudyConfig) ([]RecoveryRow, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	g, err := partition.Build(cfg.Shape, cfg.N, cfg.Ratio)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	a := matrix.New(cfg.N)
	b := matrix.New(cfg.N)
	a.FillRandom(rng)
	b.FillRandom(rng)
	want := matrix.New(cfg.N)
	matrix.MulKIJ(want, a, b)

	base := exec.Config{
		Machine:        model.DefaultMachine(cfg.Ratio),
		BlockSize:      8,
		HeartbeatEvery: time.Millisecond,
		LeaseTimeout:   20 * time.Millisecond,
	}
	var rows []RecoveryRow
	for _, alg := range cfg.Algorithms {
		cleanCfg := base
		cleanCfg.Algorithm = alg
		_, clean, err := exec.MultiplyContext(ctx, cleanCfg, g, a, b)
		if err != nil {
			return nil, fmt.Errorf("experiment: recovery study clean run (%v): %w", alg, err)
		}
		for _, frac := range cfg.KillFracs {
			fp := sim.NewFaultPlan()
			if err := fp.AddWorkerKill(cfg.Victim, frac); err != nil {
				return nil, err
			}
			fcfg := base
			fcfg.Algorithm = alg
			fcfg.Faults = fp
			c, stats, err := exec.MultiplyContext(ctx, fcfg, g, a, b)
			if err != nil {
				return nil, fmt.Errorf("experiment: recovery study kill %v@%g (%v): %w", cfg.Victim, frac, alg, err)
			}
			kind := ""
			if len(stats.RecoveryKinds) > 0 {
				kind = stats.RecoveryKinds[0]
			}
			row := RecoveryRow{
				Algorithm:         alg.String(),
				Victim:            cfg.Victim.String(),
				KillFrac:          frac,
				BitExact:          c.Equal(want),
				Survivors:         stats.Survivors(),
				Kind:              kind,
				CleanVolume:       clean.TotalVolume,
				RecoveryVolume:    stats.RecoveryVolume,
				RemainderNeed:     stats.RemainderNeed,
				BoundOK:           stats.RecoveryVolume < 2*stats.RemainderNeed,
				CleanWallMS:       float64(clean.Wall.Microseconds()) / 1e3,
				FaultedWallMS:     float64(stats.Wall.Microseconds()) / 1e3,
				RecoveryLatencyMS: float64(stats.RecoveryLatency.Microseconds()) / 1e3,
			}
			if clean.Wall > 0 {
				row.WallPenalty = float64(stats.Wall)/float64(clean.Wall) - 1
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// WriteRecoveryTable renders the study as a markdown table.
func WriteRecoveryTable(w io.Writer, rows []RecoveryRow) error {
	if _, err := fmt.Fprintln(w, "| alg | kill | survivors | re-plan | recovery vol / need | bound | latency (ms) | wall penalty | bit-exact |"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "|---|---|---|---|---|---|---|---|---|"); err != nil {
		return err
	}
	for _, r := range rows {
		bound, exact := "<2x", "yes"
		if !r.BoundOK {
			bound = "VIOLATED"
		}
		if !r.BitExact {
			exact = "NO"
		}
		if _, err := fmt.Fprintf(w, "| %s | %s@%.0f%% | %d | %s | %d / %d | %s | %.1f | %+.0f%% | %s |\n",
			r.Algorithm, r.Victim, 100*r.KillFrac, r.Survivors, r.Kind,
			r.RecoveryVolume, r.RemainderNeed, bound, r.RecoveryLatencyMS, 100*r.WallPenalty, exact); err != nil {
			return err
		}
	}
	return nil
}
