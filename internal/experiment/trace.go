package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/partition"
	"repro/internal/push"
	"repro/internal/shape"
)

// TracePoint is one step of a recorded Push search.
type TracePoint struct {
	Step int   `json:"step"`
	VoC  int64 `json:"voc"`
}

// Trace is a recorded Push-search run: the VoC decay curve plus the run's
// identity, serialisable to JSON for offline analysis.
type Trace struct {
	N         int          `json:"n"`
	Ratio     string       `json:"ratio"`
	Seed      int64        `json:"seed"`
	Points    []TracePoint `json:"points"`
	Converged bool         `json:"converged"`
	Archetype string       `json:"archetype"`
}

// TraceRun executes a Push search and records the VoC after every
// committed Push — the convergence curve behind Fig 7.
func TraceRun(n int, ratio partition.Ratio, seed int64) (*Trace, error) {
	tr := &Trace{N: n, Ratio: ratio.String(), Seed: seed}
	res, err := push.Run(push.Config{
		N:     n,
		Ratio: ratio,
		Seed:  seed,
		Snapshot: func(step int, g *partition.Grid) {
			tr.Points = append(tr.Points, TracePoint{Step: step, VoC: g.VoC()})
		},
	})
	if err != nil {
		return nil, err
	}
	tr.Converged = res.Converged
	tr.Archetype = shape.Classify(res.Final).String()
	return tr, nil
}

// WriteJSON serialises the trace.
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// ReadTrace parses a JSON trace.
func ReadTrace(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("experiment: trace decode: %w", err)
	}
	return &t, nil
}

// Monotone reports whether the recorded VoC never increases — the Push
// guarantee as visible in the trace.
func (t *Trace) Monotone() bool {
	for i := 1; i < len(t.Points); i++ {
		if t.Points[i].VoC > t.Points[i-1].VoC {
			return false
		}
	}
	return true
}

// Sparkline renders the VoC decay as a one-line unicode sparkline of the
// given width.
func (t *Trace) Sparkline(width int) string {
	if len(t.Points) == 0 || width <= 0 {
		return ""
	}
	glyphs := []rune("▁▂▃▄▅▆▇█")
	lo, hi := t.Points[len(t.Points)-1].VoC, t.Points[0].VoC
	for _, p := range t.Points {
		if p.VoC < lo {
			lo = p.VoC
		}
		if p.VoC > hi {
			hi = p.VoC
		}
	}
	span := hi - lo
	var sb strings.Builder
	for i := 0; i < width; i++ {
		idx := i * (len(t.Points) - 1) / max(width-1, 1)
		v := t.Points[idx].VoC
		level := 0
		if span > 0 {
			level = int((v - lo) * int64(len(glyphs)-1) / span)
		}
		sb.WriteRune(glyphs[level])
	}
	return sb.String()
}
