package experiment

import (
	"context"
	"fmt"
	"io"

	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/push"
)

// AblationRow reports the search quality of one engine configuration —
// the design-choice ablations DESIGN.md calls out.
type AblationRow struct {
	Name string
	// MeanFinalVoC is the average terminal VoC across the runs.
	MeanFinalVoC float64
	// MeanSteps is the average committed-Push count.
	MeanSteps float64
	// Converged counts runs that reached a fixed point.
	Converged int
	// Runs is the sample size.
	Runs int
}

// PushAblation compares the Push-search configurations:
//
//   - "types 1 only": just the strictest (guaranteed-progress) type;
//   - "types 1–4": the VoC-decreasing types without the plateau moves;
//   - "all types": the full engine (types 5–6 escape VoC plateaus);
//   - "all types + beautify": plus the Theorem 8.3 cleanup pass;
//   - "clustered starts": the adversarial clustered q₀ family.
//
// Lower mean terminal VoC = better condensation. The plateau types and
// the beautify pass are the design choices the ablation isolates.
func PushAblation(n int, ratio partition.Ratio, runs int, seed int64) ([]AblationRow, error) {
	return PushAblationContext(context.Background(), n, ratio, runs, seed)
}

// PushAblationContext is PushAblation with cancellation between runs.
func PushAblationContext(ctx context.Context, n int, ratio partition.Ratio, runs int, seed int64) ([]AblationRow, error) {
	if runs <= 0 {
		return nil, &ConfigError{Field: "runs", Reason: fmt.Sprintf("ablation needs runs > 0, got %d", runs)}
	}
	if err := ratio.Validate(); err != nil {
		return nil, &ConfigError{Field: "ratio", Reason: err.Error()}
	}
	configs := []struct {
		name      string
		types     []push.Type
		beautify  bool
		clustered bool
	}{
		{name: "types 1 only", types: []push.Type{push.TypeOne}},
		{name: "types 1-4", types: []push.Type{push.TypeOne, push.TypeTwo, push.TypeThree, push.TypeFour}},
		{name: "all types"},
		{name: "all types + beautify", beautify: true},
		{name: "clustered starts", beautify: true, clustered: true},
	}
	var rows []AblationRow
	for _, cfg := range configs {
		row := AblationRow{Name: cfg.name, Runs: runs}
		for run := 0; run < runs; run++ {
			res, err := push.RunContext(ctx, push.Config{
				N:         n,
				Ratio:     ratio,
				Seed:      seed + int64(run),
				Types:     cfg.types,
				Beautify:  cfg.beautify,
				Clustered: cfg.clustered,
			})
			if err != nil {
				return nil, err
			}
			row.MeanFinalVoC += float64(res.FinalVoC)
			row.MeanSteps += float64(res.Steps)
			if res.Converged {
				row.Converged++
			}
		}
		row.MeanFinalVoC /= float64(runs)
		row.MeanSteps /= float64(runs)
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteAblationTable renders the ablation as markdown.
func WriteAblationTable(w io.Writer, rows []AblationRow) error {
	if _, err := fmt.Fprintln(w, "| configuration | mean terminal VoC | mean pushes | converged |"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "|---|---|---|---|"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "| %s | %.0f | %.1f | %d/%d |\n",
			r.Name, r.MeanFinalVoC, r.MeanSteps, r.Converged, r.Runs); err != nil {
			return err
		}
	}
	return nil
}

// LatencyRow reports modelled execution times at one Hockney latency.
type LatencyRow struct {
	Alpha float64
	// Per-algorithm totals for the Block-Rectangle partition.
	Totals [model.NumAlgorithms]float64
}

// LatencySweep studies the communication-latency sensitivity the paper's
// conclusion defers to future work: as the per-message latency α grows,
// the interleaved algorithm (PIO), which sends N small messages, loses to
// the barrier algorithms, which send one large one.
func LatencySweep(alphas []float64, ratio partition.Ratio, n int) ([]LatencyRow, error) {
	if len(alphas) == 0 {
		alphas = []float64{0, 1e-7, 1e-6, 1e-5, 1e-4}
	}
	g, err := partition.Build(partition.BlockRectangle, n, ratio)
	if err != nil {
		return nil, err
	}
	var rows []LatencyRow
	for _, alpha := range alphas {
		m := model.DefaultMachine(ratio)
		m.Net.Alpha = alpha
		row := LatencyRow{Alpha: alpha}
		for i, a := range model.AllAlgorithms {
			row.Totals[i] = model.EvaluateGrid(a, m, g).Total
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteLatencyTable renders the sweep as markdown.
func WriteLatencyTable(w io.Writer, rows []LatencyRow) error {
	header := "| α (s) |"
	sep := "|---|"
	for _, a := range model.AllAlgorithms {
		header += " " + a.String() + " (s) |"
		sep += "---|"
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, sep); err != nil {
		return err
	}
	for _, r := range rows {
		line := fmt.Sprintf("| %.0e |", r.Alpha)
		for _, t := range r.Totals {
			line += fmt.Sprintf(" %.6f |", t)
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}
