package experiment

import (
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/partition"
)

func TestPushAblation(t *testing.T) {
	rows, err := PushAblation(36, partition.MustRatio(3, 1, 1), 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Name] = r
		if r.Converged != r.Runs {
			t.Errorf("%s: %d/%d converged", r.Name, r.Converged, r.Runs)
		}
		if r.MeanFinalVoC <= 0 || r.MeanSteps <= 0 {
			t.Errorf("%s: degenerate stats %+v", r.Name, r)
		}
	}
	// The richer configurations must never condense worse on average:
	// each added mechanism only adds legal moves.
	if byName["all types"].MeanFinalVoC > byName["types 1 only"].MeanFinalVoC+1e-9 {
		t.Errorf("all types (%.0f) should beat types-1-only (%.0f)",
			byName["all types"].MeanFinalVoC, byName["types 1 only"].MeanFinalVoC)
	}
	if byName["all types + beautify"].MeanFinalVoC > byName["all types"].MeanFinalVoC+1e-9 {
		t.Errorf("beautify (%.0f) should not worsen all-types (%.0f)",
			byName["all types + beautify"].MeanFinalVoC, byName["all types"].MeanFinalVoC)
	}
	var sb strings.Builder
	if err := WriteAblationTable(&sb, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "| all types |") {
		t.Error("table missing configuration row")
	}
}

func TestPushAblationValidation(t *testing.T) {
	if _, err := PushAblation(30, partition.MustRatio(2, 1, 1), 0, 1); err == nil {
		t.Error("zero runs should error")
	}
}

func TestLatencySweep(t *testing.T) {
	rows, err := LatencySweep(nil, partition.MustRatio(5, 2, 1), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	pioIdx, scbIdx := -1, -1
	for i, a := range model.AllAlgorithms {
		switch a {
		case model.PIO:
			pioIdx = i
		case model.SCB:
			scbIdx = i
		}
	}
	// At zero latency PIO (pipelined) must not lose badly; at high latency
	// it must fall behind SCB (it pays N latencies vs 1).
	zero, high := rows[0], rows[len(rows)-1]
	if zero.Alpha != 0 {
		t.Fatal("first row should be α=0")
	}
	if high.Totals[pioIdx] <= high.Totals[scbIdx] {
		t.Errorf("at α=%g PIO (%g) should lose to SCB (%g): N messages vs 1",
			high.Alpha, high.Totals[pioIdx], high.Totals[scbIdx])
	}
	// Totals must be non-decreasing in α for every algorithm.
	for i := 1; i < len(rows); i++ {
		for k := range rows[i].Totals {
			if rows[i].Totals[k] < rows[i-1].Totals[k]-1e-12 {
				t.Errorf("%v: total decreased as α grew", model.AllAlgorithms[k])
			}
		}
	}
	var sb strings.Builder
	if err := WriteLatencyTable(&sb, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "PIO") {
		t.Error("latency table missing PIO column")
	}
}

func TestWinnerMap(t *testing.T) {
	wm, err := ComputeWinnerMap(model.SCB, model.FullyConnected, 4, 16, 1, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(wm.Cells) == 0 {
		t.Fatal("no cells")
	}
	// Ratio ordering: no cell below the Pr ≥ Rr diagonal.
	for key := range wm.Cells {
		if key[1] < key[0] {
			t.Fatalf("cell with Pr < Rr: %v", key)
		}
	}
	counts := wm.Count()
	// The high-heterogeneity corner must belong to the Square-Corner and
	// the moderate region to a rectangular candidate.
	if got := wm.Cells[[2]float64{1, 16}]; got != partition.SquareCorner {
		t.Errorf("at Rr=1 Pr=16 winner = %v, want Square-Corner", got)
	}
	if got := wm.Cells[[2]float64{1, 2}]; got == partition.SquareCorner {
		t.Errorf("at Rr=1 Pr=2 Square-Corner should not win")
	}
	if counts[partition.SquareCorner] == 0 {
		t.Error("Square-Corner should win somewhere")
	}
	var sb strings.Builder
	if err := wm.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "winner map: SCB") {
		t.Errorf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "C") {
		t.Error("diagram missing Square-Corner region")
	}
}

func TestWinnerMapValidation(t *testing.T) {
	if _, err := ComputeWinnerMap(model.SCB, model.FullyConnected, 4, 8, 1, 2); err == nil {
		t.Error("tiny n should error")
	}
}
