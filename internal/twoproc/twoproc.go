// Package twoproc implements the two-processor baseline of the authors'
// prior work [8] ("Partitioning for parallel matrix-matrix multiplication
// with heterogeneous processors: The optimal solution", HCW 2012), which
// this paper extends to three processors. It provides the two-processor
// candidate shapes (Straight-Line, Square-Corner, Rectangle-Corner), their
// closed-form communication volumes, and the prior work's optimality rule:
//
//   - under the bulk-overlap algorithms (SCO, PCO) the Square-Corner is
//     optimal for all ratios;
//   - under the barrier and interleaved algorithms (SCB, PCB, PIO) the
//     Square-Corner is optimal exactly when the speed ratio exceeds 3:1,
//     the Straight-Line otherwise.
//
// Two-processor partitions are represented on the same grid type with the
// fast processor P and the slow processor R (S owns nothing), so all the
// three-processor machinery (Push, models, simulator, executor) applies
// unchanged.
package twoproc

import (
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/partition"
)

// Shape identifies a two-processor candidate partition.
type Shape uint8

const (
	// StraightLine splits the matrix into two full-height vertical
	// strips — the traditional rectangular partition.
	StraightLine Shape = iota
	// SquareCorner gives the slow processor a square in a corner; the
	// fast processor computes the non-rectangular remainder.
	SquareCorner
	// RectangleCorner gives the slow processor a non-square corner
	// rectangle (dominated by the other two; kept as the baseline the
	// prior work eliminated).
	RectangleCorner
	numShapes
)

// NumShapes is the number of two-processor candidate shapes.
const NumShapes = int(numShapes)

// AllShapes lists the candidates.
var AllShapes = [NumShapes]Shape{StraightLine, SquareCorner, RectangleCorner}

func (s Shape) String() string {
	switch s {
	case StraightLine:
		return "Straight-Line"
	case SquareCorner:
		return "Square-Corner"
	case RectangleCorner:
		return "Rectangle-Corner"
	}
	return fmt.Sprintf("Shape(%d)", uint8(s))
}

// Ratio is the two-processor speed ratio fast:slow (slow normalised to 1).
type Ratio struct {
	Fast float64
}

// NewRatio validates a two-processor ratio.
func NewRatio(fast float64) (Ratio, error) {
	if fast < 1 {
		return Ratio{}, fmt.Errorf("twoproc: fast ratio %v must be ≥ 1", fast)
	}
	return Ratio{Fast: fast}, nil
}

// SlowFraction is the slow processor's share of the matrix.
func (r Ratio) SlowFraction() float64 { return 1 / (1 + r.Fast) }

// counts apportions n² cells between fast (P) and slow (R).
func (r Ratio) counts(n int) (fast, slow int) {
	slow = int(math.Round(float64(n*n) * r.SlowFraction()))
	if slow < 1 {
		slow = 1
	}
	if slow > n*n-1 {
		slow = n*n - 1
	}
	return n*n - slow, slow
}

// Build constructs the canonical two-processor shape on an n×n grid with
// the slow processor as R and the fast processor as P.
func Build(s Shape, n int, ratio Ratio) (*partition.Grid, error) {
	if n < 2 {
		return nil, fmt.Errorf("twoproc: n must be ≥ 2, got %d", n)
	}
	if _, err := NewRatio(ratio.Fast); err != nil {
		return nil, err
	}
	_, slow := ratio.counts(n)
	g := partition.NewGrid(n)
	switch s {
	case StraightLine:
		// Slow processor: left vertical strip, column by column.
		fillColumns(g, slow)
	case SquareCorner:
		side := int(math.Ceil(math.Sqrt(float64(slow))))
		if side > n {
			return nil, fmt.Errorf("twoproc: square side %d exceeds N=%d", side, n)
		}
		// Bottom-left near-square.
		fillBlock(g, slow, side)
	case RectangleCorner:
		// A deliberately elongated corner rectangle: twice as wide as
		// tall (the shape the prior work proved dominated).
		w := int(math.Ceil(math.Sqrt(2 * float64(slow))))
		if w > n {
			w = n
		}
		fillBlock(g, slow, w)
	default:
		return nil, fmt.Errorf("twoproc: unknown shape %v", s)
	}
	return g, nil
}

// fillColumns assigns the first count cells column-major to R.
func fillColumns(g *partition.Grid, count int) {
	n := g.N()
	for c := 0; c < count; c++ {
		g.Set(c%n, c/n, partition.R)
	}
}

// fillBlock assigns count cells to R in a bottom-left block of the given
// width, row by row from the bottom.
func fillBlock(g *partition.Grid, count, width int) {
	n := g.N()
	for c := 0; c < count; c++ {
		g.Set(n-1-c/width, c%width, partition.R)
	}
}

// NormalizedVoC returns the closed-form communication volume of shape s,
// normalised by N² (prior work [8]):
//
//	Straight-Line:    1           (every row hosts both processors)
//	Square-Corner:    2·√f        (f = slow fraction; rows+cols crossing the square)
//	Rectangle-Corner: w + f/w     (w = rectangle width fraction)
func NormalizedVoC(s Shape, ratio Ratio) float64 {
	f := ratio.SlowFraction()
	switch s {
	case StraightLine:
		return 1
	case SquareCorner:
		return 2 * math.Sqrt(f)
	case RectangleCorner:
		w := math.Sqrt(2 * f)
		if w >= 1 {
			// The 2:1 rectangle no longer fits: it degenerates to a
			// full-width band, i.e. a Straight-Line.
			return 1
		}
		return w + f/w
	}
	panic("twoproc: unknown shape")
}

// Optimal returns the optimal two-processor shape for the given algorithm
// and ratio per the prior work's result.
func Optimal(a model.Algorithm, ratio Ratio) Shape {
	switch a {
	case model.SCO, model.PCO:
		// Bulk overlap: the Square-Corner wins for all ratios (its
		// corner square leaves the fast processor a fully-owned region
		// to overlap with communication).
		return SquareCorner
	default:
		// Barrier / interleaved: Square-Corner wins iff 2√f < 1, i.e.
		// f < 1/4, i.e. fast > 3.
		if ratio.Fast > 3 {
			return SquareCorner
		}
		return StraightLine
	}
}

// CrossoverRatio is the fast:slow ratio above which the Square-Corner
// beats the Straight-Line under the barrier algorithms (2√(1/(1+r)) < 1).
const CrossoverRatio = 3.0
