package twoproc

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/push"
)

func TestNewRatioValidation(t *testing.T) {
	if _, err := NewRatio(0.5); err == nil {
		t.Error("ratio < 1 should error")
	}
	r, err := NewRatio(3)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.SlowFraction(); got != 0.25 {
		t.Errorf("SlowFraction = %v, want 0.25", got)
	}
}

func TestBuildShapes(t *testing.T) {
	const n = 60
	ratio := Ratio{Fast: 3}
	for _, s := range AllShapes {
		g, err := Build(s, n, ratio)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if g.Count(partition.S) != 0 {
			t.Errorf("%v: two-processor build must leave S empty", s)
		}
		wantSlow := int(math.Round(float64(n*n) * ratio.SlowFraction()))
		if g.Count(partition.R) != wantSlow {
			t.Errorf("%v: slow count %d, want %d", s, g.Count(partition.R), wantSlow)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(StraightLine, 1, Ratio{Fast: 2}); err == nil {
		t.Error("n=1 should error")
	}
	if _, err := Build(StraightLine, 10, Ratio{Fast: 0.1}); err == nil {
		t.Error("bad ratio should error")
	}
	if _, err := Build(Shape(9), 10, Ratio{Fast: 2}); err == nil {
		t.Error("unknown shape should error")
	}
}

func TestStraightLineGeometry(t *testing.T) {
	g, err := Build(StraightLine, 40, Ratio{Fast: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Slow strip: 400 cells = 10 full columns.
	r := g.EnclosingRect(partition.R)
	if r.Top != 0 || r.Bottom != 40 || r.Left != 0 {
		t.Errorf("strip rect %v", r)
	}
	if r.Width() != 10 {
		t.Errorf("strip width %d, want 10", r.Width())
	}
}

func TestSquareCornerGeometry(t *testing.T) {
	g, err := Build(SquareCorner, 40, Ratio{Fast: 3})
	if err != nil {
		t.Fatal(err)
	}
	r := g.EnclosingRect(partition.R)
	if r.Bottom != 40 || r.Left != 0 {
		t.Errorf("corner square should anchor bottom-left: %v", r)
	}
	if skew := r.Width() - r.Height(); skew < -1 || skew > 1 {
		t.Errorf("not square-ish: %v", r)
	}
}

func TestNormalizedVoCMatchesGrids(t *testing.T) {
	const n = 400
	for _, fast := range []float64{1, 2, 3, 5, 10, 24} {
		ratio := Ratio{Fast: fast}
		for _, s := range AllShapes {
			g, err := Build(s, n, ratio)
			if err != nil {
				t.Fatalf("%v fast=%v: %v", s, fast, err)
			}
			exact := float64(g.VoC()) / float64(n*n)
			closed := NormalizedVoC(s, ratio)
			if math.Abs(exact-closed) > 0.03 {
				t.Errorf("%v fast=%v: closed %.4f vs exact %.4f", s, fast, closed, exact)
			}
		}
	}
}

func TestRectangleCornerDominated(t *testing.T) {
	// Prior work: the Straight-Line and Square-Corner are always superior
	// to the Rectangle-Corner (min of the two never loses to it).
	for fast := 1.0; fast <= 25; fast += 0.5 {
		ratio := Ratio{Fast: fast}
		best := math.Min(NormalizedVoC(SquareCorner, ratio), NormalizedVoC(StraightLine, ratio))
		if best > NormalizedVoC(RectangleCorner, ratio)+1e-12 {
			t.Errorf("fast=%v: RC should be dominated", fast)
		}
	}
}

func TestOptimalRule(t *testing.T) {
	cases := []struct {
		alg  model.Algorithm
		fast float64
		want Shape
	}{
		{model.SCB, 2, StraightLine},
		{model.SCB, 3, StraightLine}, // boundary: strictly greater than 3
		{model.SCB, 3.5, SquareCorner},
		{model.PCB, 10, SquareCorner},
		{model.PIO, 2, StraightLine},
		{model.PIO, 5, SquareCorner},
		{model.SCO, 1, SquareCorner},
		{model.SCO, 2, SquareCorner},
		{model.PCO, 25, SquareCorner},
	}
	for _, c := range cases {
		if got := Optimal(c.alg, Ratio{Fast: c.fast}); got != c.want {
			t.Errorf("Optimal(%v, %v) = %v, want %v", c.alg, c.fast, got, c.want)
		}
	}
}

func TestOptimalRuleMatchesClosedForms(t *testing.T) {
	// The rule must agree with the closed forms: under barrier
	// algorithms, SC wins exactly when its VoC is lower.
	for fast := 1.0; fast <= 25; fast += 0.25 {
		ratio := Ratio{Fast: fast}
		ruleSC := Optimal(model.SCB, ratio) == SquareCorner
		formSC := NormalizedVoC(SquareCorner, ratio) < NormalizedVoC(StraightLine, ratio)
		if ruleSC != formSC && math.Abs(fast-CrossoverRatio) > 0.26 {
			t.Errorf("fast=%v: rule says SC=%v, closed forms say %v", fast, ruleSC, formSC)
		}
	}
}

func TestCrossoverRatioExact(t *testing.T) {
	// 2√(1/(1+r)) = 1 ⟺ r = 3 exactly.
	ratio := Ratio{Fast: CrossoverRatio}
	if d := NormalizedVoC(SquareCorner, ratio) - NormalizedVoC(StraightLine, ratio); math.Abs(d) > 1e-12 {
		t.Errorf("at the crossover the forms should tie, diff %g", d)
	}
}

func TestModelsApplyToTwoProcGrids(t *testing.T) {
	// The three-processor models work unchanged on two-processor grids
	// and reproduce the prior work's ordering.
	n := 120
	fast := 10.0
	m := model.DefaultMachine(partition.MustRatio(fast, 1, 1))
	// Use the real 2-proc machine: S's speed never matters (it owns 0).
	sc, err := Build(SquareCorner, n, Ratio{Fast: fast})
	if err != nil {
		t.Fatal(err)
	}
	sl, err := Build(StraightLine, n, Ratio{Fast: fast})
	if err != nil {
		t.Fatal(err)
	}
	scT := model.EvaluateGrid(model.SCB, m, sc)
	slT := model.EvaluateGrid(model.SCB, m, sl)
	if scT.Comm >= slT.Comm {
		t.Errorf("at 10:1 Square-Corner comm %g should beat Straight-Line %g", scT.Comm, slT.Comm)
	}
}

func TestShapeStrings(t *testing.T) {
	if StraightLine.String() != "Straight-Line" ||
		SquareCorner.String() != "Square-Corner" ||
		RectangleCorner.String() != "Rectangle-Corner" {
		t.Error("shape names")
	}
}

func TestPushSearchReducesTwoProcPartitions(t *testing.T) {
	// The three-processor Push engine, run on a two-processor partition
	// (S empty), is the prior work's two-processor Push: random R cells
	// condense into a compact region whose VoC approaches the better of
	// the two-processor candidates.
	const n = 40
	fast := 10.0
	rng := rand.New(rand.NewSource(6))
	start := partition.NewGrid(n)
	slow := int(float64(n*n) / (1 + fast))
	for placed := 0; placed < slow; {
		i, j := rng.Intn(n), rng.Intn(n)
		if start.At(i, j) == partition.P {
			start.Set(i, j, partition.R)
			placed++
		}
	}
	res, err := push.Run(push.Config{
		N: n, Ratio: partition.MustRatio(fast, 1, 1), Seed: 2,
		Start: start, Beautify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("two-proc push search did not converge")
	}
	if res.FinalVoC >= res.InitialVoC {
		t.Fatal("expected VoC reduction")
	}
	// The best 2-processor candidate VoC at 10:1 is the Square-Corner's
	// 2√f·N² ≈ 0.603·N². The condensed state should be within 2× of it.
	best := NormalizedVoC(Optimal(model.SCB, Ratio{Fast: fast}), Ratio{Fast: fast}) * float64(n*n)
	if float64(res.FinalVoC) > 2*best {
		t.Errorf("condensed VoC %d far above candidate floor %.0f", res.FinalVoC, best)
	}
}
