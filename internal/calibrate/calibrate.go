// Package calibrate closes the loop between serving and measurement.
//
// The paper's optimal shapes are optimal only for the *measured* speed
// ratio Pr:Rr:Sr and link bandwidth β — quantities that drift in a live
// fleet as replicas slow down, thermal-throttle, or share links. A
// Calibrator re-measures them continuously: each round it runs a
// micro-benchmark of the internal/matrix multiply kernel once per
// logical processor, optionally probes the link, folds the samples into
// EWMA estimates with confidence intervals, and — when the estimate has
// drifted past a configurable threshold from what was last published —
// publishes a new quantized scenario ratio. The serving layer subscribes
// via OnPublish to invalidate caches and re-plan (see internal/serve).
//
// Heterogeneity is injected, not assumed: all three logical processors
// bench the same kernel on the same host, so the raw measurement is
// ~1:1:1 until the Stretch hook (usually sim.FaultPlan.StretchCPU, the
// same fault model the search path bills against) slows one of them.
// That keeps calibration honest — it measures real kernel time — while
// letting tests and drills induce drift deterministically.
package calibrate

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/matrix"
	"repro/internal/partition"
)

// Config parameterises a Calibrator. Zero values select the documented
// defaults.
type Config struct {
	// Interval is the calibration period of the background loop
	// (default 1s).
	Interval time.Duration
	// BenchN is the micro-benchmark matrix size (default 64 — big
	// enough to swamp timer noise, small enough to be negligible load).
	BenchN int
	// Alpha is the EWMA smoothing factor in (0,1] (default 0.4). Larger
	// reacts faster; smaller rides out noise.
	Alpha float64
	// DriftThreshold is the relative change in any normalized ratio
	// component (or in β) that triggers a publish (default 0.25).
	DriftThreshold float64
	// Quantum is the grid the published ratio is rounded to (default
	// 0.25): measured speeds are normalized by the slowest and each
	// component rounded to the nearest multiple. Coarser quanta mean
	// fewer distinct scenarios (better cache/atlas reuse), finer quanta
	// track the hardware closer.
	Quantum float64

	// Bench measures one micro-benchmark run for logical processor p at
	// size n and returns the elapsed seconds. Default: time one
	// matrix.MulBlocked multiply. Tests substitute synthetic times.
	Bench func(p partition.Proc, n int) float64
	// Stretch, if set, maps measured kernel seconds to effective
	// seconds, injecting heterogeneity — wire it to
	// sim.FaultPlan.StretchCPU so the calibrator sees the same
	// stragglers the search path bills. start is seconds since the
	// calibrator was created.
	Stretch func(p partition.Proc, start, work float64) float64
	// Probe, if set, measures the link and returns β in seconds/byte.
	// See HTTPLinkProbe for a probe that measures an HTTP fetch (and
	// therefore feels chaos-proxy faults in tests).
	Probe func(ctx context.Context) (float64, error)

	// OnPublish is called (from the calibrating goroutine) each time a
	// new estimate is published, including the first.
	OnPublish func(Estimate)
	// Logf, if set, receives one line per publish and per probe error.
	Logf func(format string, args ...any)

	now func() time.Time // test hook
}

func (cfg Config) withDefaults() Config {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.BenchN <= 0 {
		cfg.BenchN = 64
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		cfg.Alpha = 0.4
	}
	if cfg.DriftThreshold <= 0 {
		cfg.DriftThreshold = 0.25
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = 0.25
	}
	if cfg.Bench == nil {
		cfg.Bench = kernelBench
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	return cfg
}

// Estimate is one published calibration result.
type Estimate struct {
	// Ratio is the quantized scenario ratio: speeds sorted fastest to
	// slowest, normalized so the slowest is 1, rounded to Quantum. It
	// always satisfies partition.Ratio's Pr ≥ Rr ≥ Sr invariant
	// regardless of which physical processor is currently fastest.
	Ratio partition.Ratio
	// Speeds are the EWMA relative speeds per logical processor
	// (index partition.Proc), normalized so the slowest is 1.
	Speeds [partition.NumProcs]float64
	// CI are 95% confidence half-widths on Speeds, same normalization.
	CI [partition.NumProcs]float64
	// Beta is the EWMA link estimate in seconds/byte (0 if no Probe).
	Beta float64
	// Generation increments on every publish; the serving layer stamps
	// cache entries with it so anything planned under an older
	// generation is identifiably stale.
	Generation uint64
	// Rounds is how many calibration rounds fed this estimate.
	Rounds uint64
	// When is the publish time.
	When time.Time
}

// Calibrator maintains the EWMA speed and link estimates. Create with
// New, drive with Start/Close (background) or RunOnce (tests, drills).
type Calibrator struct {
	cfg   Config
	epoch time.Time

	mu        sync.Mutex
	ewma      [partition.NumProcs]float64 // seconds per bench run
	ewvar     [partition.NumProcs]float64
	beta      float64
	rounds    uint64
	published Estimate
	haveEst   bool
	drifts    uint64

	startOnce sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// New returns a Calibrator; nothing is measured until RunOnce or Start.
func New(cfg Config) *Calibrator {
	cfg = cfg.withDefaults()
	return &Calibrator{
		cfg:   cfg,
		epoch: cfg.now(),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
}

// Start launches the background calibration loop. Idempotent.
func (c *Calibrator) Start() {
	c.startOnce.Do(func() {
		go func() {
			defer close(c.done)
			t := time.NewTicker(c.cfg.Interval)
			defer t.Stop()
			for {
				c.RunOnce(context.Background())
				select {
				case <-c.stop:
					return
				case <-t.C:
				}
			}
		}()
	})
}

// Close stops the background loop and waits for it to exit. Safe to
// call even if Start never ran.
func (c *Calibrator) Close() {
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	c.startOnce.Do(func() { close(c.done) })
	<-c.done
}

// RunOnce performs one calibration round: bench every processor, probe
// the link, update the EWMAs, and publish if the estimate has drifted
// past the threshold (the first round always publishes). It returns the
// current estimate (published or not).
func (c *Calibrator) RunOnce(ctx context.Context) Estimate {
	start := c.cfg.now().Sub(c.epoch).Seconds()
	var samples [partition.NumProcs]float64
	for _, p := range partition.Procs {
		t := c.cfg.Bench(p, c.cfg.BenchN)
		if c.cfg.Stretch != nil {
			t = c.cfg.Stretch(p, start, t)
		}
		if t <= 0 || math.IsNaN(t) || math.IsInf(t, 0) {
			t = math.SmallestNonzeroFloat64
		}
		samples[p] = t
	}
	var betaSample float64
	if c.cfg.Probe != nil {
		b, err := c.cfg.Probe(ctx)
		if err != nil || b <= 0 {
			if err != nil && c.cfg.Logf != nil {
				c.cfg.Logf("calibrate: link probe: %v", err)
			}
		} else {
			betaSample = b
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	a := c.cfg.Alpha
	first := c.rounds == 0
	for i := range samples {
		if first {
			c.ewma[i], c.ewvar[i] = samples[i], 0
			continue
		}
		d := samples[i] - c.ewma[i]
		c.ewma[i] += a * d
		c.ewvar[i] = (1 - a) * (c.ewvar[i] + a*d*d)
	}
	if betaSample > 0 {
		if c.beta == 0 {
			c.beta = betaSample
		} else {
			c.beta += a * (betaSample - c.beta)
		}
	}
	c.rounds++

	est := c.estimateLocked()
	if c.shouldPublishLocked(est) {
		if !first {
			c.drifts++
		}
		est.Generation = c.published.Generation + 1
		est.When = c.cfg.now()
		c.published, c.haveEst = est, true
		if c.cfg.Logf != nil {
			c.cfg.Logf("calibrate: publish gen=%d ratio=%s beta=%.3g (round %d)",
				est.Generation, est.Ratio, est.Beta, est.Rounds)
		}
		if c.cfg.OnPublish != nil {
			// Call without the lock: the subscriber may call back in.
			cb, snap := c.cfg.OnPublish, est
			c.mu.Unlock()
			cb(snap)
			c.mu.Lock()
		}
	}
	return est
}

// estimateLocked derives the Estimate from the current EWMA state.
// Speed is inverse time; everything is normalized by the slowest.
func (c *Calibrator) estimateLocked() Estimate {
	var speeds, ci [partition.NumProcs]float64
	// 95% CI half-width of an EWMA with smoothing α over samples with
	// variance v is 1.96·sqrt(v·α/(2−α)).
	sf := math.Sqrt(c.cfg.Alpha / (2 - c.cfg.Alpha))
	for i, t := range c.ewma {
		speeds[i] = 1 / t
		// Propagate the time CI to the speed scale: δ(1/t) ≈ δt/t².
		ci[i] = 1.96 * sf * math.Sqrt(c.ewvar[i]) / (t * t)
	}
	min := math.Inf(1)
	for _, s := range speeds {
		if s < min {
			min = s
		}
	}
	if min <= 0 || math.IsInf(min, 1) {
		min = 1
	}
	for i := range speeds {
		speeds[i] /= min
		ci[i] /= min
	}
	return Estimate{
		Ratio:  quantizeRatio(speeds, c.cfg.Quantum),
		Speeds: speeds,
		CI:     ci,
		Beta:   c.beta,
		Rounds: c.rounds,
	}
}

// shouldPublishLocked implements the drift gate: publish on the first
// estimate; afterwards when the quantized ratio actually changed
// (quantization is the flap filter) AND the move is believable — some
// component shifted by at least DriftThreshold relative, or shifted
// beyond twice its confidence interval (so a slow asymptotic
// convergence still lands once the estimate settles, while noisy input
// keeps the CI wide and the gate shut) — or β drifted past the
// threshold.
func (c *Calibrator) shouldPublishLocked(est Estimate) bool {
	if !c.haveEst {
		return true
	}
	pub := c.published
	if pub.Beta > 0 && est.Beta > 0 {
		if rel := math.Abs(est.Beta-pub.Beta) / pub.Beta; rel >= c.cfg.DriftThreshold {
			return true
		}
	}
	if est.Ratio == pub.Ratio {
		return false
	}
	for i := range est.Speeds {
		if pub.Speeds[i] <= 0 {
			return true
		}
		shift := math.Abs(est.Speeds[i] - pub.Speeds[i])
		if shift/pub.Speeds[i] >= c.cfg.DriftThreshold || shift > 2*est.CI[i] {
			return true
		}
	}
	return false
}

// Current returns the last published estimate and whether one exists.
func (c *Calibrator) Current() (Estimate, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.published, c.haveEst
}

// Rounds returns how many calibration rounds have run.
func (c *Calibrator) Rounds() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rounds
}

// DriftEvents returns how many publishes were drift-triggered (the
// initial publish is not counted).
func (c *Calibrator) DriftEvents() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.drifts
}

// quantizeRatio sorts the normalized speeds fastest-first, rounds each
// to the quantum, and pins the slowest to 1 so the result is a valid
// scenario ratio (Pr ≥ Rr ≥ Sr = 1).
func quantizeRatio(speeds [partition.NumProcs]float64, quantum float64) partition.Ratio {
	s := speeds[:]
	sorted := append([]float64(nil), s...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	q := func(v float64) float64 {
		r := math.Round(v/quantum) * quantum
		if r < 1 {
			r = 1
		}
		return r
	}
	pr, rr := q(sorted[0]), q(sorted[1])
	if rr > pr {
		rr = pr
	}
	return partition.MustRatio(pr, rr, 1)
}

// kernelBench is the default Bench: time a blocked multiply at size n.
// The processor argument is unused on purpose — on a homogeneous host
// every logical processor runs the same silicon, and heterogeneity is
// the Stretch hook's job. One untimed warmup run pulls the code and
// data paths into cache, and the sample is the minimum of three timed
// runs: the minimum is the run with the least scheduler/GC interference,
// which is the quantity the speed ratio is actually about.
func kernelBench(_ partition.Proc, n int) float64 {
	rng := rand.New(rand.NewSource(1))
	a, b, dst := matrix.New(n), matrix.New(n), matrix.New(n)
	a.FillRandom(rng)
	b.FillRandom(rng)
	matrix.MulBlocked(dst, a, b, matrix.DefaultBlock) // warmup
	best := math.Inf(1)
	for i := 0; i < 3; i++ {
		t0 := time.Now()
		matrix.MulBlocked(dst, a, b, matrix.DefaultBlock)
		if d := time.Since(t0).Seconds(); d < best {
			best = d
		}
	}
	return best
}

// HTTPLinkProbe returns a Probe that measures achieved link β by
// fetching url and timing the transfer: β = elapsed / bytes. Routed
// through a chaos proxy (internal/chaos) the probe feels latency,
// trickle, and reset faults, which is how tests induce link drift.
func HTTPLinkProbe(client *http.Client, url string) func(context.Context) (float64, error) {
	if client == nil {
		client = http.DefaultClient
	}
	return func(ctx context.Context) (float64, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return 0, err
		}
		t0 := time.Now()
		resp, err := client.Do(req)
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		n, err := io.Copy(io.Discard, resp.Body)
		if err != nil {
			return 0, err
		}
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("calibrate: probe %s: status %d", url, resp.StatusCode)
		}
		if n == 0 {
			return 0, fmt.Errorf("calibrate: probe %s: empty body", url)
		}
		return time.Since(t0).Seconds() / float64(n), nil
	}
}
