package calibrate

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/partition"
	"repro/internal/sim"
)

// synthetic bench: proc p takes base[p] seconds, adjustable per test.
type benchTable struct {
	mu   sync.Mutex
	base [partition.NumProcs]float64
}

func (b *benchTable) bench(p partition.Proc, _ int) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.base[p]
}

func (b *benchTable) set(p partition.Proc, v float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.base[p] = v
}

func TestFirstRoundPublishesHomogeneous(t *testing.T) {
	bt := &benchTable{base: [partition.NumProcs]float64{1e-3, 1e-3, 1e-3}}
	var published []Estimate
	c := New(Config{
		Bench:     bt.bench,
		OnPublish: func(e Estimate) { published = append(published, e) },
	})
	c.RunOnce(context.Background())
	if len(published) != 1 {
		t.Fatalf("publishes = %d, want 1 (first round always publishes)", len(published))
	}
	want := partition.MustRatio(1, 1, 1)
	if published[0].Ratio != want {
		t.Fatalf("ratio = %s, want %s", published[0].Ratio, want)
	}
	if published[0].Generation != 1 {
		t.Fatalf("generation = %d, want 1", published[0].Generation)
	}
	if c.DriftEvents() != 0 {
		t.Fatalf("drift events = %d, want 0 for the initial publish", c.DriftEvents())
	}
}

func TestDriftTriggersRepublish(t *testing.T) {
	bt := &benchTable{base: [partition.NumProcs]float64{1e-3, 1e-3, 1e-3}}
	var published []Estimate
	c := New(Config{
		Alpha:          0.5,
		DriftThreshold: 0.25,
		Quantum:        0.5,
		Bench:          bt.bench,
		OnPublish:      func(e Estimate) { published = append(published, e) },
	})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		c.RunOnce(ctx)
	}
	if len(published) != 1 {
		t.Fatalf("stable inputs must not republish: publishes = %d", len(published))
	}

	// Slow R and S 4×: P becomes the 4:1:1-fastest processor. The EWMA
	// converges over several rounds, publishing intermediate estimates
	// as each quantum boundary is crossed confidently; what matters is
	// that it lands on 4:1:1 within the window and each publish bumps
	// the generation.
	bt.set(partition.R, 4e-3)
	bt.set(partition.S, 4e-3)
	for i := 0; i < 12; i++ {
		c.RunOnce(ctx)
	}
	if len(published) < 2 {
		t.Fatalf("drift did not trigger a republish: publishes = %d", len(published))
	}
	got := published[len(published)-1]
	want := partition.MustRatio(4, 1, 1)
	if got.Ratio != want {
		t.Fatalf("drifted ratio = %s, want %s", got.Ratio, want)
	}
	for i := 1; i < len(published); i++ {
		if published[i].Generation != published[i-1].Generation+1 {
			t.Fatalf("generations not consecutive: %d after %d",
				published[i].Generation, published[i-1].Generation)
		}
	}
	if c.DriftEvents() == 0 {
		t.Fatal("drift events = 0, want > 0")
	}

	// Noise below the quantum must not flap the published estimate.
	stable := len(published)
	bt.set(partition.R, 4.2e-3)
	for i := 0; i < 8; i++ {
		c.RunOnce(ctx)
	}
	if len(published) != stable {
		t.Fatalf("sub-quantum noise republished: publishes %d -> %d", stable, len(published))
	}
}

func TestStretchHookInjectsStraggler(t *testing.T) {
	fp := sim.NewFaultPlan()
	if err := fp.AddStraggler(partition.P, 3, 0, 1e12); err != nil {
		t.Fatal(err)
	}
	bt := &benchTable{base: [partition.NumProcs]float64{1e-3, 1e-3, 1e-3}}
	c := New(Config{
		Quantum: 0.5,
		Bench:   bt.bench,
		Stretch: fp.StretchCPU,
	})
	est := c.RunOnce(context.Background())
	// P is stretched 3× slower, so R and S are the 3:3:1-fast pair.
	want := partition.MustRatio(3, 3, 1)
	if est.Ratio != want {
		t.Fatalf("ratio under 3× P-straggler = %s, want %s", est.Ratio, want)
	}
	if est.Speeds[partition.P] != 1 {
		t.Fatalf("stretched P must be the slowest (speed 1), got %v", est.Speeds)
	}
}

func TestConfidenceIntervalNarrowsOnStableInput(t *testing.T) {
	bt := &benchTable{base: [partition.NumProcs]float64{1e-3, 1e-3, 1e-3}}
	c := New(Config{Bench: bt.bench})
	ctx := context.Background()
	c.RunOnce(ctx)
	bt.set(partition.R, 1.5e-3) // one noisy sample widens R's CI
	c.RunOnce(ctx)
	bt.set(partition.R, 1e-3)
	wide := c.RunOnce(ctx).CI[partition.R]
	if wide <= 0 {
		t.Fatalf("CI after a noisy sample = %v, want > 0", wide)
	}
	var narrow float64
	for i := 0; i < 30; i++ {
		narrow = c.RunOnce(ctx).CI[partition.R]
	}
	if narrow >= wide {
		t.Fatalf("CI did not narrow on stable input: %v -> %v", wide, narrow)
	}
}

// TestChaosLinkProbeDrift routes the HTTP link probe through a chaos
// proxy and injects latency: the β estimate must rise past the drift
// threshold and force a republish — the "link got slow" half of the
// self-tuning story, induced exactly the way production drift arrives
// (on the wire), not by poking internals.
func TestChaosLinkProbeDrift(t *testing.T) {
	payload := make([]byte, 64<<10)
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(payload)
	}))
	defer origin.Close()

	proxy, err := chaos.New("127.0.0.1:0", origin.Listener.Addr().String(), chaos.Faults{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	bt := &benchTable{base: [partition.NumProcs]float64{1e-3, 1e-3, 1e-3}}
	var published []Estimate
	c := New(Config{
		Alpha:          0.9, // near-instant tracking: the test wants few rounds
		DriftThreshold: 0.5,
		Bench:          bt.bench,
		// Keep-alives off: chaos latency is injected per connection, so
		// each probe must dial fresh to feel it (as the doc on
		// chaos.Faults.Latency prescribes).
		Probe: HTTPLinkProbe(&http.Client{
			Timeout:   5 * time.Second,
			Transport: &http.Transport{DisableKeepAlives: true},
		}, proxy.URL()+"/blob"),
		OnPublish:      func(e Estimate) { published = append(published, e) },
	})
	// Several baseline rounds: the first fetch pays connection setup,
	// so β needs a moment to settle (and may republish while it does).
	ctx := context.Background()
	var base Estimate
	for i := 0; i < 6; i++ {
		base = c.RunOnce(ctx)
	}
	if len(published) == 0 || base.Beta <= 0 {
		t.Fatalf("no baseline publish with β > 0 (publishes=%d β=%v)", len(published), base.Beta)
	}
	before := len(published)

	// 50ms of injected latency on a ~64KiB localhost transfer dominates
	// the transfer time: β must jump well past the 0.5 drift threshold.
	proxy.SetFaults(chaos.Faults{Latency: 50 * time.Millisecond})
	for i := 0; i < 10 && len(published) == before; i++ {
		c.RunOnce(ctx)
	}
	if len(published) == before {
		t.Fatal("link drift did not trigger a republish")
	}
	if got := published[len(published)-1].Beta; got < 2*base.Beta {
		t.Fatalf("β after chaos latency = %v, want ≥ 2× baseline %v", got, base.Beta)
	}
}

func TestStartCloseIdempotent(t *testing.T) {
	bt := &benchTable{base: [partition.NumProcs]float64{1e-3, 1e-3, 1e-3}}
	c := New(Config{Interval: time.Hour, Bench: bt.bench})
	c.Start()
	c.Start()
	deadline := time.Now().Add(5 * time.Second)
	for c.Rounds() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if c.Rounds() == 0 {
		t.Fatal("background loop never ran a round")
	}
	c.Close()
	c.Close()
}

func TestCloseWithoutStart(t *testing.T) {
	c := New(Config{})
	c.Close()
}

func TestDefaultKernelBenchMeasuresSomething(t *testing.T) {
	if testing.Short() {
		t.Skip("real kernel bench")
	}
	c := New(Config{BenchN: 32})
	est := c.RunOnce(context.Background())
	if err := est.Ratio.Validate(); err != nil {
		t.Fatalf("default bench produced invalid ratio: %v", err)
	}
}
